// Snir's (p+1)-ary parallel search on the CREW PRAM.
//
// Given a sorted array of N keys and a search key, p processors locate the
// key's lower bound in Theta(log N / log(p+1)) rounds: each round the
// current candidate interval is split into p+1 subranges, processor i
// probes the boundary of subrange i, and the unique processor that sees the
// predicate flip announces the new interval (an exclusive write — only one
// processor can own the flip because the probe results are monotone).
//
// This is exactly the search that LeafElection's SplitSearch simulates on
// the multi-channel MAC: cohort members play the processors, CheckLevel
// plays the probe, and the cNode channel plays the announcement cell.
#pragma once

#include <cstdint>
#include <span>

#include "pram/crew_pram.h"

namespace crmc::pram {

struct SearchStats {
  std::int64_t pram_steps = 0;  // synchronous PRAM steps consumed
  std::int64_t iterations = 0;  // interval-shrinking rounds
};

// Returns the index of the first element of `sorted` that is >= `key`
// (i.e. std::lower_bound), computed by `p` processors on a CrewPram.
// `stats`, when provided, receives the cost of the search.
std::size_t ParallelLowerBound(std::span<const std::int64_t> sorted,
                               std::int64_t key, std::int32_t p,
                               SearchStats* stats = nullptr);

// The predicted iteration bound from Snir's analysis:
// ceil(log2(N + 1) / log2(p + 1)).
std::int64_t PredictedIterations(std::size_t n, std::int32_t p);

}  // namespace crmc::pram
