#include "pram/crew_pram.h"

#include <algorithm>
#include <sstream>

namespace crmc::pram {

CrewPram::CrewPram(std::int32_t num_processors, std::size_t memory_cells) {
  CRMC_REQUIRE(num_processors >= 1);
  CRMC_REQUIRE(memory_cells >= 1);
  num_processors_ = num_processors;
  memory_.assign(memory_cells, 0);
}

Cell CrewPram::Peek(std::size_t addr) const {
  CRMC_REQUIRE(addr < memory_.size());
  return memory_[addr];
}

void CrewPram::Poke(std::size_t addr, Cell value) {
  CRMC_REQUIRE(addr < memory_.size());
  memory_[addr] = value;
}

Cell CrewPram::ProcessorView::Read(std::size_t addr) const {
  CRMC_REQUIRE(addr < pram_.memory_.size());
  ++pram_.reads_;
  return pram_.memory_[addr];
}

void CrewPram::ProcessorView::Write(std::size_t addr, Cell value) {
  CRMC_REQUIRE(addr < pram_.memory_.size());
  ++pram_.writes_;
  pram_.pending_.push_back({addr, value, id_});
}

void CrewPram::Step(const StepFn& fn) {
  CRMC_REQUIRE(fn != nullptr);
  pending_.clear();
  for (std::int32_t p = 0; p < num_processors_; ++p) {
    ProcessorView view(*this, p);
    fn(view);
  }
  // Exclusive write: any two writes to the same address conflict.
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingWrite& a, const PendingWrite& b) {
              return a.addr < b.addr;
            });
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    if (pending_[i].addr == pending_[i - 1].addr) {
      std::ostringstream os;
      os << "CREW exclusive-write violation: processors "
         << pending_[i - 1].writer << " and " << pending_[i].writer
         << " both wrote cell " << pending_[i].addr << " in step " << steps_;
      throw CrewViolation(os.str());
    }
  }
  for (const PendingWrite& w : pending_) memory_[w.addr] = w.value;
  ++steps_;
}

}  // namespace crmc::pram
