// A small CREW PRAM simulator.
//
// The paper's LeafElection step simulates Snir's (p+1)-ary parallel search
// from the CREW PRAM model [Snir, SIAM J. Comput. 1985]. We build that
// substrate explicitly: a shared memory of int64 cells and p processors
// advancing in synchronous steps. Within a step every processor sees the
// memory as of the step's start (reads are buffered-by-construction) and
// writes are applied at the end of the step. Concurrent reads are allowed;
// two writes to the same cell in one step — even of equal values — violate
// the Exclusive-Write rule and throw CrewViolation.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "support/assert.h"

namespace crmc::pram {

using Cell = std::int64_t;

class CrewViolation : public std::logic_error {
 public:
  explicit CrewViolation(const std::string& what) : std::logic_error(what) {}
};

class CrewPram {
 public:
  CrewPram(std::int32_t num_processors, std::size_t memory_cells);

  std::int32_t num_processors() const { return num_processors_; }
  std::size_t memory_size() const { return memory_.size(); }
  std::int64_t steps_executed() const { return steps_; }
  std::int64_t total_reads() const { return reads_; }
  std::int64_t total_writes() const { return writes_; }

  // Host-side (outside the PRAM) memory access, for setup and inspection.
  Cell Peek(std::size_t addr) const;
  void Poke(std::size_t addr, Cell value);

  // What one processor sees during a step.
  class ProcessorView {
   public:
    std::int32_t id() const { return id_; }
    std::int32_t num_processors() const { return pram_.num_processors_; }
    // Read a cell (start-of-step snapshot).
    Cell Read(std::size_t addr) const;
    // Buffer a write; applied after all processors finish the step.
    void Write(std::size_t addr, Cell value);

   private:
    friend class CrewPram;
    ProcessorView(CrewPram& pram, std::int32_t id) : pram_(pram), id_(id) {}
    CrewPram& pram_;
    std::int32_t id_;
  };

  using StepFn = std::function<void(ProcessorView&)>;

  // Execute one synchronous step: `fn` runs once per processor, then all
  // buffered writes are applied. Throws CrewViolation on write conflicts.
  void Step(const StepFn& fn);

 private:
  struct PendingWrite {
    std::size_t addr;
    Cell value;
    std::int32_t writer;
  };

  std::int32_t num_processors_;
  std::vector<Cell> memory_;
  std::vector<PendingWrite> pending_;
  std::int64_t steps_ = 0;
  std::int64_t reads_ = 0;
  std::int64_t writes_ = 0;
};

}  // namespace crmc::pram
