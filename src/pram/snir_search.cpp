#include "pram/snir_search.h"

#include <cmath>

#include "support/assert.h"
#include "support/bits.h"

namespace crmc::pram {
namespace {

// Shared-memory layout.
constexpr std::size_t kLo = 0;    // invariant: answer in (lo, hi]
constexpr std::size_t kHi = 1;
constexpr std::size_t kProbe0 = 2;  // probe results t_0 .. t_{p+1}
std::size_t ArrayBase(std::int32_t p) {
  return kProbe0 + static_cast<std::size_t>(p) + 2;
}

}  // namespace

std::int64_t PredictedIterations(std::size_t n, std::int32_t p) {
  if (n == 0) return 0;
  const double num = std::log2(static_cast<double>(n) + 1.0);
  const double den = std::log2(static_cast<double>(p) + 1.0);
  return static_cast<std::int64_t>(std::ceil(num / den));
}

std::size_t ParallelLowerBound(std::span<const std::int64_t> sorted,
                               std::int64_t key, std::int32_t p,
                               SearchStats* stats) {
  CRMC_REQUIRE(p >= 1);
  const auto n = static_cast<std::int64_t>(sorted.size());
  const std::size_t base = ArrayBase(p);
  CrewPram pram(p, base + sorted.size() + 1);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    pram.Poke(base + i, sorted[i]);
  }
  // Invariant: answer in (lo, hi]. t(q) := "answer > q" is monotone
  // non-increasing in q; t(lo) = true and t(hi) = false by the invariant
  // (with the convention that the virtual probes at the interval endpoints
  // need not be evaluated).
  pram.Poke(kLo, -1);
  pram.Poke(kHi, n);

  std::int64_t iterations = 0;
  while (pram.Peek(kHi) - pram.Peek(kLo) > 1) {
    ++iterations;
    // Step A: probe. Processor i evaluates t at boundary
    //   q_i = lo + ceil(width * i / (p + 1)),   i in [1, p],
    // and records it. Virtual results t_0 = true, t_{p+1} = false.
    pram.Step([&](CrewPram::ProcessorView& v) {
      const Cell lo = v.Read(kLo);
      const Cell hi = v.Read(kHi);
      const Cell width = hi - lo;
      const std::int64_t i = v.id() + 1;
      const Cell q =
          lo + support::CeilDiv(width * i, static_cast<std::int64_t>(
                                               v.num_processors()) +
                                               1);
      // t(q): answer > q  <=>  q < n and a[q] < key.
      bool t;
      if (q >= hi) {
        t = false;  // beyond the interval: t(hi) is false by invariant
      } else {
        const Cell a_q = v.Read(base + static_cast<std::size_t>(q));
        t = a_q < key;
      }
      if (v.id() == 0) {
        v.Write(kProbe0, 1);  // virtual t_0 = true
        v.Write(kProbe0 + static_cast<std::size_t>(v.num_processors()) + 1,
                0);  // virtual t_{p+1} = false
      }
      v.Write(kProbe0 + static_cast<std::size_t>(i), t ? 1 : 0);
    });
    // Step B: the unique processor that sees the true->false flip between
    // its own result and its right neighbour announces the new interval.
    pram.Step([&](CrewPram::ProcessorView& v) {
      const Cell lo = v.Read(kLo);
      const Cell hi = v.Read(kHi);
      const Cell width = hi - lo;
      const std::int64_t pp = v.num_processors();
      auto boundary = [&](std::int64_t i) -> Cell {
        if (i <= 0) return lo;
        if (i >= pp + 1) return hi;
        const Cell q = lo + support::CeilDiv(width * i, pp + 1);
        return q < hi ? q : hi;
      };
      // Processor i owns flips at positions i (between t_i and t_{i+1})
      // and, for processor 0 only, also position 0 is impossible to flip
      // exclusively... each processor i in [0, p-1] checks pair (i, i+1)
      // and processor p-1 additionally checks pair (p, p+1).
      for (std::int64_t pair = v.id();
           pair <= (v.id() == pp - 1 ? pp : v.id()); ++pair) {
        const Cell t_left = v.Read(kProbe0 + static_cast<std::size_t>(pair));
        const Cell t_right =
            v.Read(kProbe0 + static_cast<std::size_t>(pair) + 1);
        const Cell b_left = boundary(pair);
        const Cell b_right = boundary(pair + 1);
        if (t_left == 1 && t_right == 0 && b_left != b_right) {
          v.Write(kLo, b_left);
          v.Write(kHi, b_right);
        }
      }
    });
  }

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->pram_steps = pram.steps_executed();
  }
  return static_cast<std::size_t>(pram.Peek(kHi));
}

}  // namespace crmc::pram
