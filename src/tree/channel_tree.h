// The canonical complete binary tree of channels.
//
// Both TwoActive's SplitCheck (Section 4) and LeafElection (Section 5.3)
// work on a complete binary tree whose leaves are labelled 1..L for a power
// of two L. Levels are counted from the root: the root is level 0, leaves
// are level h = lg L. Tree nodes are identified by their 1-based heap index
// (root = 1, children of t are 2t and 2t+1), which doubles as the channel
// assigned to the tree node: a tree with L leaves has 2L - 1 nodes, so a
// tree over L = C/2 leaves fits in C channels, as the paper requires. The
// root's channel is heap index 1 — the primary channel — which is what lets
// the final lone broadcast "on the root" solve contention resolution.
#pragma once

#include <cstdint>

#include "mac/channel.h"
#include "support/assert.h"
#include "support/bits.h"

namespace crmc::tree {

class ChannelTree {
 public:
  // `num_leaves` must be a power of two >= 1.
  explicit ChannelTree(std::int32_t num_leaves)
      : num_leaves_(ValidatedLeafCount(num_leaves)),
        height_(support::FloorLog2(static_cast<std::uint64_t>(num_leaves))) {}

  std::int32_t num_leaves() const { return num_leaves_; }
  // h = lg(num_leaves): the level of the leaves.
  std::int32_t height() const { return height_; }
  // Total tree nodes == channels consumed by the tree.
  std::int32_t num_tree_nodes() const { return 2 * num_leaves_ - 1; }

  // Heap index of the leaf labelled `leaf` (1-based label in [1, L]).
  std::int32_t LeafHeapIndex(std::int32_t leaf) const {
    CheckLeaf(leaf);
    return num_leaves_ + leaf - 1;
  }

  // Heap index of the level-`level` ancestor of leaf `leaf` (level 0 is the
  // root; level == height() returns the leaf itself).
  std::int32_t AncestorAtLevel(std::int32_t leaf, std::int32_t level) const {
    CheckLeaf(leaf);
    CRMC_REQUIRE(level >= 0 && level <= height_);
    return LeafHeapIndex(leaf) >> (height_ - level);
  }

  // 1-based position of the level-`level` ancestor of `leaf` within its
  // level, i.e. the paper's ceil(id / 2^(h - level)) from SplitCheck.
  std::int32_t IndexWithinLevel(std::int32_t leaf, std::int32_t level) const {
    return AncestorAtLevel(leaf, level) - (std::int32_t{1} << level) + 1;
  }

  // Channel assigned to a tree node (identity on heap indices).
  mac::ChannelId ChannelOf(std::int32_t heap_index) const {
    CRMC_REQUIRE(heap_index >= 1 && heap_index <= num_tree_nodes());
    return static_cast<mac::ChannelId>(heap_index);
  }

  // The representative ("row") channel of a level: its leftmost tree node.
  mac::ChannelId RowChannel(std::int32_t level) const {
    CRMC_REQUIRE(level >= 0 && level <= height_);
    return static_cast<mac::ChannelId>(std::int32_t{1} << level);
  }

  // Whether a (non-root) tree node is its parent's left child.
  static bool IsLeftChild(std::int32_t heap_index) {
    CRMC_REQUIRE(heap_index >= 2);
    return (heap_index & 1) == 0;
  }

  // Whether the level-`level` ancestor of `leaf` sits in the left subtree
  // of its parent (level >= 1).
  bool AncestorIsLeftChild(std::int32_t leaf, std::int32_t level) const {
    CRMC_REQUIRE(level >= 1);
    return IsLeftChild(AncestorAtLevel(leaf, level));
  }

 private:
  static std::int32_t ValidatedLeafCount(std::int32_t num_leaves) {
    CRMC_REQUIRE_MSG(num_leaves >= 1 &&
                         support::IsPowerOfTwo(
                             static_cast<std::uint64_t>(num_leaves)),
                     "num_leaves must be a power of two, got " << num_leaves);
    return num_leaves;
  }

  void CheckLeaf(std::int32_t leaf) const {
    CRMC_REQUIRE_MSG(leaf >= 1 && leaf <= num_leaves_,
                     "leaf label " << leaf << " outside [1, " << num_leaves_
                                   << "]");
  }

  std::int32_t num_leaves_;
  std::int32_t height_;
};

}  // namespace crmc::tree
