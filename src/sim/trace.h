// Structured execution traces.
//
// When EngineConfig::record_trace is set, the engine records what happened
// on every touched channel in every round. RenderTrace draws the classic
// rounds-x-channels activity diagram used to illustrate contention
// resolution executions:
//   '.' silence (or untouched), 'm' lone transmission, 'X' collision,
//   'l' listeners only. A lone transmission on channel 1 — the solving
//   event — is capitalized as 'M'.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "mac/channel.h"

namespace crmc::sim {

struct ChannelTraceEvent {
  mac::ChannelId channel = 0;
  std::int32_t transmitters = 0;
  std::int32_t listeners = 0;
};

struct RoundTrace {
  std::int64_t round = 0;
  std::vector<ChannelTraceEvent> events;  // touched channels only
};

// Renders rounds (rows) against channels 1..max_channel (columns). Rounds
// and channels beyond the given caps are elided with a summary line.
void RenderTrace(const std::vector<RoundTrace>& trace,
                 mac::ChannelId max_channel, std::int64_t max_rounds,
                 std::ostream& os);

}  // namespace crmc::sim
