// Explicit per-round state machines ("step programs") for the batch engine.
//
// The coroutine engine (sim/engine.h) is the reference semantics: protocols
// read like the paper's pseudocode, at the cost of a heap-allocated frame
// and an indirect resume per node per round. A StepProgram is the same
// protocol flattened into columnar state: per-node registers live in flat
// arrays owned by the program, and each round is two linear sweeps over the
// alive prefix (EmitActions, then Advance). BatchEngine (sim/batch_engine.h)
// drives the sweeps; mac::Resolver keeps channel resolution O(alive) via its
// touched_channels scratch.
//
// Every program shipped here is *draw-order identical* to its coroutine
// twin: it makes exactly the RNG draws the coroutine makes, in the same
// order, on the same per-node stream — so a BatchEngine run is bit-exact
// against Engine::Run for the same EngineConfig, which is what the parity
// suite (tests/batch_engine_test.cpp) enforces.
//
// Programs provided: TwoActive, Reduce, IDReduction, LeafElection, the
// single-channel CD knockout, and the composed general algorithm
// (Reduce -> IDReduction -> LeafElection with the C = O(1) fallback).
#pragma once

#include <cstdint>
#include <memory>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "core/params.h"
#include "mac/channel.h"
#include "support/rng.h"

namespace crmc::sim {

using NodeId = std::int32_t;

// Read-only model parameters plus the engine-owned per-node columns a
// program may use. Spans stay valid for the duration of one BatchEngine
// run; `rng[slot]` is the same stream the coroutine engine hands node
// `slot` (ForStream(seed, slot + 1)).
struct BatchContext {
  std::int64_t population = 0;
  std::int32_t num_active = 0;
  std::int32_t channels = 1;
  std::int64_t round = 0;  // 0-based index of the round being executed
  std::span<support::RandomSource> rng;
  std::span<const std::int64_t> unique_ids;  // distinct IDs from [1, n]
};

// What one fused fast round did to the world — the slice of
// mac::RoundSummary the engine's result accounting needs.
struct FastRoundEffects {
  std::int64_t transmissions = 0;       // total transmissions this round
  std::int64_t lone_deliveries = 0;     // channels with exactly 1 transmitter
  bool primary_lone_delivered = false;  // primary channel had exactly 1
};

// ---------------------------------------------------------------------------
// Trial-parallel execution (sim/trial_engine.h): lanes are whole trials.
//
// Within one trial the SIMD kernels can only vectorize across alive nodes,
// which in the small-|A| regimes the paper cares about (two_active is |A|=2)
// leaves vector units mostly idle. With counter-based Philox streams, draw i
// of stream s is a pure function of (key, s, i), so W *independent trials*
// can instead run in lockstep: per-(lane, node) streams live in one flat
// [lane * num_active + node] plane and each round's draws are gathered into
// slot lists spanning all lanes, which the existing simd:: kernels then
// evaluate in one vectorized pass. A TrialProgram is the protocol's
// lane-parallel twin: it owns [lane][node] state planes and executes one
// lockstep round for every live lane per call.

// Read-only parameters plus the engine-owned flat planes for one
// trial-parallel run. `rng[lane * num_active + node]` is the stream the
// coroutine engine hands node `node` of the trial seeded seeds[lane]
// (ForStream(seed, node + 1)). Spans stay valid for one TrialBatchEngine
// chunk. There is no unique_ids plane: no shipped lane program consumes
// sampled IDs (two_active's draws live on per-node streams), and the
// engine's results do not depend on the separate ID stream.
struct TrialContext {
  std::int64_t population = 0;
  std::int32_t num_active = 0;
  std::int32_t channels = 1;
  std::int64_t round = 0;  // 0-based lockstep round being executed
  std::span<support::RandomSource> rng;
};

// What one lockstep round did to one lane — FastRoundEffects plus the
// lane-lifecycle bits the trial engine needs for retirement.
struct LaneEffects {
  std::int64_t transmissions = 0;
  std::int64_t lone_deliveries = 0;
  bool primary_lone_delivered = false;
  // Every node of the lane terminated this round (shipped lane programs
  // finish all-or-nothing; a program whose nodes retire gradually keeps
  // per-lane alive counts internally and sets this on the last node).
  bool finished = false;
  // The lane left the lockstep-representable state set. The trial engine
  // retires it and re-runs that seed from scratch on the per-trial batch
  // path (with freshly seeded streams, so partial draw consumption in the
  // aborted round is harmless) — results stay bit-exact because every run
  // is a pure function of its config. A diverged lane's other effect
  // fields are ignored.
  bool diverged = false;
};

// One protocol over [lane][node] state planes, executing W independent
// trials in lockstep. Instances come from StepProgram::MakeTrialProgram and
// are reusable (Reset) but not thread-safe, like their per-trial twins.
//
// Draw-order contract: within each lane, the per-node streams are consumed
// exactly as the per-trial FastRound/EmitActions path would consume them —
// lanes touch disjoint stream slots, so cross-lane kernel batching cannot
// reorder draws within a stream and every lane stays bit-exact against a
// solo run of its seed.
class TrialProgram {
 public:
  virtual ~TrialProgram() = default;

  virtual std::string_view name() const = 0;

  // Sizes the state planes for `lanes` lanes of ctx.num_active nodes each
  // and sets every lane to its initial state. Returns false when the shape
  // is outside the program's lockstep-representable set (e.g. two_active
  // with num_active != 2 outside duel mode); the engine then runs every
  // trial on the per-trial fallback path instead.
  virtual bool Reset(const TrialContext& ctx, std::int32_t lanes) = 0;

  // Executes one lockstep round for every lane in `lanes` (live lane
  // indices, ascending). Writes effects[k] for lane lanes[k] (`effects`
  // arrives zeroed) and charges transmissions into the flat
  // node_tx[lane * num_active + node] plane.
  virtual void Round(const TrialContext& ctx,
                     std::span<const std::int32_t> lanes,
                     std::span<std::int64_t> node_tx,
                     std::span<LaneEffects> effects) = 0;
};

// One protocol as an explicit state machine over columnar node state.
//
// Contract (mirrors one engine round):
//   Reset(ctx)        — size the columns for ctx.num_active nodes and set
//                       initial state; called once per run, reusing
//                       capacity across runs.
//   EmitActions(...)  — write actions[k] (the round action of node
//                       alive[k]) for every k; RNG draws happen here, in
//                       alive order, so per-node draw order matches the
//                       coroutine (one resume per round).
//   Advance(...)      — consume feedback[k] for node alive[k], transition
//                       its state, and set finished[k] = 1 when the node's
//                       protocol terminated this round.
//   FastRound(...)    — optional fused round: EmitActions + channel
//                       resolution + Advance in one pass, skipping the
//                       Action/Feedback arrays and mac::Resolver entirely
//                       (src/simd/ kernels do the heavy loops). Only called
//                       on pristine strong-CD untraced rounds.
//
// A program instance is reusable (Reset) but not thread-safe; use one
// instance per thread.
class StepProgram {
 public:
  virtual ~StepProgram() = default;

  virtual std::string_view name() const = 0;

  // True when the program documents bit-exact draw order against its
  // coroutine twin (all programs in this file do). Parity tests compare
  // per-seed results when set; distributions otherwise.
  virtual bool identical_draw_order() const { return true; }

  virtual void Reset(const BatchContext& ctx) = 0;
  virtual void EmitActions(const BatchContext& ctx,
                           std::span<const NodeId> alive,
                           std::span<mac::Action> actions) = 0;
  virtual void Advance(const BatchContext& ctx,
                       std::span<const NodeId> alive,
                       std::span<const mac::Action> actions,
                       std::span<const mac::Feedback> feedback,
                       std::span<std::uint8_t> finished) = 0;

  // Executes the whole round — the draws EmitActions would make (same
  // streams, same order), strong-CD channel resolution, and the Advance
  // transitions — writing per-slot transmission charges into
  // node_tx[alive[k]]'s slot, termination into finished[k], and the round's
  // channel summary into *effects. Returns false to decline (the engine
  // then runs the generic materialized path); a declining implementation
  // must be side-effect-free. The engine only calls this when no fault
  // injection is active, cd_model == kStrong, and no trace is recorded, so
  // feedback is a pure function of the emitted actions. `finished` arrives
  // zeroed.
  virtual bool FastRound(const BatchContext& ctx, std::span<const NodeId> alive,
                         std::span<std::int64_t> node_tx,
                         std::span<std::uint8_t> finished,
                         FastRoundEffects* effects) {
    (void)ctx;
    (void)alive;
    (void)node_tx;
    (void)finished;
    (void)effects;
    return false;
  }

  // True iff the survivors' state currently satisfies every lockstep
  // invariant FastRound assumes, so the engine may (re-)enter the fused
  // path. A materialized jam can split previously-lockstep node states; the
  // engine queries this after jam-free materialized rounds to detect that
  // the split healed (e.g. two_active's duel has no cross-node invariant at
  // all, and its search pair re-syncs once both nodes share bounds again).
  // Must be side-effect-free. The conservative default keeps a perturbed
  // run pinned to the generic path forever — correct for programs whose
  // invariants span rounds that already happened (the composed general
  // program's stage bookkeeping).
  virtual bool LockstepRestored(const BatchContext& ctx,
                                std::span<const NodeId> alive) {
    (void)ctx;
    (void)alive;
    return false;
  }

  // Returns the protocol's trial-parallel twin (a fresh instance carrying
  // the same parameters), or nullptr when the protocol has none — the
  // trial engine (sim/trial_engine.h) then falls back to per-trial
  // BatchEngine runs, which stay bit-exact by construction.
  virtual std::unique_ptr<TrialProgram> MakeTrialProgram() const {
    return nullptr;
  }
};

using StepProgramFactory = std::function<std::unique_ptr<StepProgram>()>;

// Factories, one per registered protocol. Parameters mirror the coroutine
// factories in core/.
std::unique_ptr<StepProgram> MakeTwoActiveProgram(
    core::TwoActiveParams params = {});
std::unique_ptr<StepProgram> MakeReduceProgram(core::ReduceParams params = {});
std::unique_ptr<StepProgram> MakeIdReductionProgram(
    core::IdReductionParams params = {});
std::unique_ptr<StepProgram> MakeLeafElectionProgram(
    std::vector<std::int32_t> leaves, std::int32_t num_leaves,
    core::LeafElectionParams params = {});
std::unique_ptr<StepProgram> MakeKnockoutCdProgram();
std::unique_ptr<StepProgram> MakeGeneralProgram(core::GeneralParams params = {});

}  // namespace crmc::sim
