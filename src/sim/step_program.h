// Explicit per-round state machines ("step programs") for the batch engine.
//
// The coroutine engine (sim/engine.h) is the reference semantics: protocols
// read like the paper's pseudocode, at the cost of a heap-allocated frame
// and an indirect resume per node per round. A StepProgram is the same
// protocol flattened into columnar state: per-node registers live in flat
// arrays owned by the program, and each round is two linear sweeps over the
// alive prefix (EmitActions, then Advance). BatchEngine (sim/batch_engine.h)
// drives the sweeps; mac::Resolver keeps channel resolution O(alive) via its
// touched_channels scratch.
//
// Every program shipped here is *draw-order identical* to its coroutine
// twin: it makes exactly the RNG draws the coroutine makes, in the same
// order, on the same per-node stream — so a BatchEngine run is bit-exact
// against Engine::Run for the same EngineConfig, which is what the parity
// suite (tests/batch_engine_test.cpp) enforces.
//
// Programs provided: TwoActive, Reduce, IDReduction, LeafElection, the
// single-channel CD knockout, and the composed general algorithm
// (Reduce -> IDReduction -> LeafElection with the C = O(1) fallback).
#pragma once

#include <cstdint>
#include <memory>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "core/params.h"
#include "mac/channel.h"
#include "support/rng.h"

namespace crmc::sim {

using NodeId = std::int32_t;

// Read-only model parameters plus the engine-owned per-node columns a
// program may use. Spans stay valid for the duration of one BatchEngine
// run; `rng[slot]` is the same stream the coroutine engine hands node
// `slot` (ForStream(seed, slot + 1)).
struct BatchContext {
  std::int64_t population = 0;
  std::int32_t num_active = 0;
  std::int32_t channels = 1;
  std::int64_t round = 0;  // 0-based index of the round being executed
  std::span<support::RandomSource> rng;
  std::span<const std::int64_t> unique_ids;  // distinct IDs from [1, n]
};

// What one fused fast round did to the world — the slice of
// mac::RoundSummary the engine's result accounting needs.
struct FastRoundEffects {
  std::int64_t transmissions = 0;       // total transmissions this round
  std::int64_t lone_deliveries = 0;     // channels with exactly 1 transmitter
  bool primary_lone_delivered = false;  // primary channel had exactly 1
};

// One protocol as an explicit state machine over columnar node state.
//
// Contract (mirrors one engine round):
//   Reset(ctx)        — size the columns for ctx.num_active nodes and set
//                       initial state; called once per run, reusing
//                       capacity across runs.
//   EmitActions(...)  — write actions[k] (the round action of node
//                       alive[k]) for every k; RNG draws happen here, in
//                       alive order, so per-node draw order matches the
//                       coroutine (one resume per round).
//   Advance(...)      — consume feedback[k] for node alive[k], transition
//                       its state, and set finished[k] = 1 when the node's
//                       protocol terminated this round.
//   FastRound(...)    — optional fused round: EmitActions + channel
//                       resolution + Advance in one pass, skipping the
//                       Action/Feedback arrays and mac::Resolver entirely
//                       (src/simd/ kernels do the heavy loops). Only called
//                       on pristine strong-CD untraced rounds.
//
// A program instance is reusable (Reset) but not thread-safe; use one
// instance per thread.
class StepProgram {
 public:
  virtual ~StepProgram() = default;

  virtual std::string_view name() const = 0;

  // True when the program documents bit-exact draw order against its
  // coroutine twin (all programs in this file do). Parity tests compare
  // per-seed results when set; distributions otherwise.
  virtual bool identical_draw_order() const { return true; }

  virtual void Reset(const BatchContext& ctx) = 0;
  virtual void EmitActions(const BatchContext& ctx,
                           std::span<const NodeId> alive,
                           std::span<mac::Action> actions) = 0;
  virtual void Advance(const BatchContext& ctx,
                       std::span<const NodeId> alive,
                       std::span<const mac::Action> actions,
                       std::span<const mac::Feedback> feedback,
                       std::span<std::uint8_t> finished) = 0;

  // Executes the whole round — the draws EmitActions would make (same
  // streams, same order), strong-CD channel resolution, and the Advance
  // transitions — writing per-slot transmission charges into
  // node_tx[alive[k]]'s slot, termination into finished[k], and the round's
  // channel summary into *effects. Returns false to decline (the engine
  // then runs the generic materialized path); a declining implementation
  // must be side-effect-free. The engine only calls this when no fault
  // injection is active, cd_model == kStrong, and no trace is recorded, so
  // feedback is a pure function of the emitted actions. `finished` arrives
  // zeroed.
  virtual bool FastRound(const BatchContext& ctx, std::span<const NodeId> alive,
                         std::span<std::int64_t> node_tx,
                         std::span<std::uint8_t> finished,
                         FastRoundEffects* effects) {
    (void)ctx;
    (void)alive;
    (void)node_tx;
    (void)finished;
    (void)effects;
    return false;
  }
};

using StepProgramFactory = std::function<std::unique_ptr<StepProgram>()>;

// Factories, one per registered protocol. Parameters mirror the coroutine
// factories in core/.
std::unique_ptr<StepProgram> MakeTwoActiveProgram(
    core::TwoActiveParams params = {});
std::unique_ptr<StepProgram> MakeReduceProgram(core::ReduceParams params = {});
std::unique_ptr<StepProgram> MakeIdReductionProgram(
    core::IdReductionParams params = {});
std::unique_ptr<StepProgram> MakeLeafElectionProgram(
    std::vector<std::int32_t> leaves, std::int32_t num_leaves,
    core::LeafElectionParams params = {});
std::unique_ptr<StepProgram> MakeKnockoutCdProgram();
std::unique_ptr<StepProgram> MakeGeneralProgram(core::GeneralParams params = {});

}  // namespace crmc::sim
