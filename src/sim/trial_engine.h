// Trial-parallel executor: SIMD lanes are whole trials.
//
// TrialBatchEngine runs W independent trials of one (config, protocol)
// point in lockstep — per-(lane, node) state and RNG streams live in flat
// [lane * num_active + node] planes, and each round's draws across every
// lane are gathered into slot lists and evaluated by the simd:: kernels in
// one vectorized pass (see TrialProgram in sim/step_program.h). Within a
// trial the kernels can only vectorize across alive nodes, which in the
// paper's small-|A| regimes (two_active is |A| = 2) leaves vector units
// mostly idle and per-trial setup dominating; across trials the lanes are
// arbitrarily many and embarrassingly independent.
//
// Philox-only: lockstep lanes need counter-based streams, where draw i of
// stream s is a pure function of (key, s, i) and a SIMD group of lanes can
// be evaluated with no cross-draw dependency. Xoshiro streams are
// sequential by construction — batching them across lanes would still be
// scalar per draw and the historical bit streams gain nothing — so
// RngKind::kXoshiro is rejected with a distinct std::invalid_argument
// rather than silently degrading.
//
// Every trial stays bit-exact against BatchEngine::Run (and hence the
// coroutine oracle) on the same per-trial config. Configs outside the
// lockstep-fusible set — faults, adversaries, weak CD, traces, the robust
// layer, or a protocol without a trial program — fall back to per-trial
// BatchEngine runs, one lane at a time; a lane that diverges mid-run (a
// state the per-trial path would reject) is re-run from scratch the same
// way, which reproduces the per-trial behaviour exactly because every run
// is a pure function of its config.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/step_program.h"
#include "support/rng.h"

namespace crmc::sim {

class TrialBatchEngine {
 public:
  // Lanes per lockstep chunk. 32 lanes of a two-node protocol feed the
  // draw kernels 64-slot batches — deep enough to fill AVX2 Philox groups
  // and amortize the per-round gather, small enough that the retirement
  // tail (the last unsolved lanes of a chunk) stays short.
  static constexpr std::int32_t kDefaultLaneWidth = 32;

  explicit TrialBatchEngine(std::int32_t lane_width = kDefaultLaneWidth);

  std::int32_t lane_width() const { return lane_width_; }

  // Mirrors BatchEngine::set_fused_rounds: off forces every trial onto the
  // per-trial generic materialized path (results bit-identical either way).
  void set_fused_rounds(bool enabled);

  // Runs seeds.size() independent trials of `program` under `config`
  // (config.seed is ignored; trial i runs with seed seeds[i]) and writes
  // results[i]. Seeds beyond lane_width() are processed in lane_width()
  // sized chunks. Throws std::invalid_argument on bad config and on
  // config.rng != kPhilox. The engine owns all scratch and reuses it
  // across calls; one instance per thread.
  void Run(const EngineConfig& config, StepProgram& program,
           std::span<const std::uint64_t> seeds, std::span<RunResult> results);

 private:
  void RunLaneChunk(const EngineConfig& config, StepProgram& program,
                    TrialProgram& trial, std::span<const std::uint64_t> seeds,
                    std::span<RunResult> results);
  // Per-trial BatchEngine reruns for `lanes` (chunk lane ids).
  void RunFallback(const EngineConfig& config, StepProgram& program,
                   std::span<const std::uint64_t> seeds,
                   std::span<RunResult> results,
                   std::span<const std::int32_t> lanes);

  std::int32_t lane_width_;
  bool fused_rounds_enabled_ = true;
  BatchEngine fallback_;

  // The cached trial-parallel twin of the last program Run was handed
  // (program instances are per-thread and long-lived in sweeps, so this
  // almost always hits).
  StepProgram* trial_source_ = nullptr;
  std::unique_ptr<TrialProgram> trial_;

  // Flat per-chunk planes and scratch, reused across chunks and calls.
  std::vector<support::RandomSource> rng_;  // [lane * num_active + node]
  std::vector<std::int64_t> node_tx_;       // [lane * num_active + node]
  std::vector<std::int32_t> live_;          // live lane ids, ascending
  std::vector<std::uint8_t> drop_;
  std::vector<LaneEffects> effects_;
  std::vector<std::int64_t> stall_;  // per-lane trailing stall streak
  std::vector<std::int32_t> fallback_lanes_;
};

}  // namespace crmc::sim
