// Per-node API handed to protocol coroutines.
//
// A protocol interacts with the world exclusively through its NodeContext:
//   co_await ctx.Transmit(ch, msg)  — transmit on channel ch this round
//   co_await ctx.Listen(ch)         — receive on channel ch this round
//   co_await ctx.Sleep()            — do not participate this round
// Each returns the mac::Feedback the node observed. Everything else on the
// context is local information (indices, RNG, metrics).
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mac/channel.h"
#include "support/assert.h"
#include "support/rng.h"

namespace crmc::sim {

class Engine;

using NodeId = std::int32_t;

class NodeContext {
 public:
  NodeContext(NodeId index, std::int64_t population, std::int32_t num_active,
              std::int32_t channels, std::int64_t unique_id,
              support::RandomSource rng)
      : index_(index),
        population_(population),
        num_active_(num_active),
        channels_(channels),
        unique_id_(unique_id),
        rng_(std::move(rng)) {}

  NodeContext(const NodeContext&) = delete;
  NodeContext& operator=(const NodeContext&) = delete;

  // --- identity & model parameters -------------------------------------

  // Index of this node among the activated nodes: 0 .. num_active()-1.
  // Protocols must NOT use this to break symmetry (the model is anonymous);
  // it exists for instrumentation and for oracle baselines, which say so.
  NodeId index() const { return index_; }

  // n: the maximum possible number of nodes (the "w.h.p." parameter).
  std::int64_t population() const { return population_; }

  // |A|: how many nodes were actually activated. Knowing this is *not*
  // part of the model; only oracle baselines may consult it.
  std::int32_t num_active_oracle() const { return num_active_; }

  // C: number of available channels.
  std::int32_t channels() const { return channels_; }

  // A unique identifier from [1, population], distinct across activated
  // nodes. The paper's algorithms do not need IDs (and do not use them);
  // the classic single-channel binary-descent baseline does.
  std::int64_t unique_id() const { return unique_id_; }

  // Round index of the round about to execute (0-based).
  std::int64_t round() const { return round_; }

  support::RandomSource& rng() { return rng_; }

  // --- participating in rounds ------------------------------------------

  class RoundAwaiter {
   public:
    RoundAwaiter(NodeContext& ctx, mac::Action action)
        : ctx_(ctx), action_(action) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      ctx_.pending_action_ = action_;
      ctx_.has_pending_ = true;
      ctx_.resume_point_ = h;
    }
    mac::Feedback await_resume() const { return ctx_.feedback_; }

   private:
    NodeContext& ctx_;
    mac::Action action_;
  };

  [[nodiscard]] RoundAwaiter Round(mac::Action action) {
    return RoundAwaiter(*this, action);
  }
  [[nodiscard]] RoundAwaiter Transmit(mac::ChannelId ch, mac::Message m = {}) {
    return RoundAwaiter(*this, mac::Action::Transmit(ch, m));
  }
  [[nodiscard]] RoundAwaiter Listen(mac::ChannelId ch) {
    return RoundAwaiter(*this, mac::Action::Listen(ch));
  }
  [[nodiscard]] RoundAwaiter Sleep() {
    return RoundAwaiter(*this, mac::Action::Idle());
  }

  // --- wakeup-transform support -------------------------------------------

  // While enabled, the engine inserts a beacon round (a transmission on the
  // primary channel) after every round this node's protocol executes,
  // without resuming the protocol in between. Used by the Section 3
  // non-simultaneous wakeup transform: the wrapped protocol runs on even
  // relative rounds and the beacon fills the odd ones.
  void SetAutoBeacon(bool enabled) { auto_beacon_ = enabled; }
  bool auto_beacon() const { return auto_beacon_; }

  // --- instrumentation ---------------------------------------------------

  // Record that a named phase boundary was reached this round (first write
  // wins; phases are entered once).
  void MarkPhase(const std::string& name) {
    phase_marks_.emplace(name, round_);
  }

  // Append a named numeric observation (e.g., per-phase search cost).
  void RecordMetric(const std::string& name, std::int64_t value) {
    metrics_.emplace_back(name, value);
  }

  const std::map<std::string, std::int64_t>& phase_marks() const {
    return phase_marks_;
  }
  const std::vector<std::pair<std::string, std::int64_t>>& metrics() const {
    return metrics_;
  }

 private:
  friend class Engine;

  NodeId index_;
  std::int64_t population_;
  std::int32_t num_active_;
  std::int32_t channels_;
  std::int64_t unique_id_;
  support::RandomSource rng_;

  // Engine-side mailbox.
  mac::Action pending_action_{};
  bool has_pending_ = false;
  mac::Feedback feedback_{};
  std::coroutine_handle<> resume_point_;
  std::int64_t round_ = 0;
  bool auto_beacon_ = false;

  std::map<std::string, std::int64_t> phase_marks_;
  std::vector<std::pair<std::string, std::int64_t>> metrics_;
};

}  // namespace crmc::sim
