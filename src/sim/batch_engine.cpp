#include "sim/batch_engine.h"

#include <algorithm>

#include "simd/kernels.h"
#include "support/assert.h"

namespace crmc::sim {

RunResult BatchEngine::Run(const EngineConfig& config, StepProgram& program) {
  const std::int64_t population = ValidateEngineConfig(config);

  const auto n = static_cast<std::size_t>(config.num_active);

  // Same ID and per-node stream derivation as Engine::Run, so a program
  // that consumes ctx.rng[s] sees the bit stream node s's coroutine would.
  // Same ID derivation as Engine::Run. Sampled once from the original
  // seed: a node keeps its identity across robust epoch restarts.
  support::RandomSource id_rng =
      support::RandomSource::ForStream(config.seed, 0x1d5eed, config.rng);
  support::SampleWithoutReplacement(population, config.num_active, id_rng,
                                    sample_scratch_, unique_ids_);

  robust::EpochDriver epochs(config.robust, population, config.channels);

  BatchContext ctx;
  ctx.population = population;
  ctx.num_active = config.num_active;
  ctx.channels = config.channels;
  ctx.unique_ids = unique_ids_;

  node_tx_.assign(n, 0);
  crashed_.assign(n, 0);

  if (!resolver_ || resolver_->num_channels() != config.channels ||
      resolver_->cd_model() != config.cd_model) {
    resolver_.emplace(config.channels, config.cd_model);
  }

  RunResult result;
  mac::FaultInjector injector(EffectiveFaultSpec(config), config.seed);
  mac::FaultInjector* const fault_ptr =
      injector.active() ? &injector : nullptr;
  adversary::AdversaryRun adversary(config.adversary, config.seed);
  std::int64_t round = 0;
  std::int64_t stall_streak = 0;
  bool aborted = false;
  // True iff the run hit max_rounds inside a between-epoch backoff pause
  // (folded into timed_out below, same as Engine::Run).
  bool out_of_rounds = false;
  // Fused-round gate: FastRound assumes feedback is a pure function of the
  // emitted actions (strong CD, no faults) and produces no trace. The
  // conditions are per-run constants, so the whole run takes one path —
  // except a program may decline a specific round (e.g. the general
  // algorithm's LeafElection stage), which falls through to the generic
  // materialized round below. An observation-reading adversary pins the
  // whole run to materialized rounds (FastRound never runs the resolver it
  // would eavesdrop on), and so does the robust layer: epoch boundaries,
  // confirmation echoes and watchdog bookkeeping all need materialized
  // rounds, and a wrapped run is only interesting under adversarial
  // pressure anyway. Wrapped pristine runs stay bit-identical regardless —
  // the fused path's contract is bit-exactness with the generic one.
  const bool fast_rounds = fused_rounds_enabled_ && !injector.active() &&
                           config.cd_model == mac::CdModel::kStrong &&
                           !config.record_trace &&
                           !adversary.needs_observation() &&
                           !config.robust.enabled;
  // FastRound implementations also lean on lockstep invariants ("survivors
  // share identical bounds/phase") that only hold while every past round
  // was pristine: a single jam can split previously-lockstep node states
  // (one node sees a forced collision where its peer saw a clean delivery),
  // and the programs do not re-verify the invariant per round. A
  // materialized jam therefore drops the run to the generic path — but only
  // until the program reports the split healed: on every later jam-free
  // round the engine asks LockstepRestored whether the survivors are back
  // in a fused-representable shape and re-fuses when they are, so a
  // budget-k adversary costs O(k) materialized windows instead of pinning
  // the whole run (an observation-free adversary with budget 0, or one
  // that never fires, still fuses every round).
  bool adv_perturbed = false;

  // Shared accounting for every resolved round, protocol and fabricated
  // alike — mirrors Engine::Run's lambda exactly.
  const auto account_round = [&](const mac::RoundSummary& summary) {
    result.total_transmissions += summary.total_transmissions;
    result.adv_jams_spent += summary.adv_jams;
    result.adv_jams_effective += summary.adv_jams_effective;
    if (config.record_trace) {
      RoundTrace rt;
      rt.round = round;
      for (const mac::ChannelId ch : resolver_->touched_channels()) {
        const mac::ChannelActivity& act = resolver_->ActivityOf(ch);
        rt.events.push_back(
            ChannelTraceEvent{ch, act.transmitters, act.listeners});
      }
      result.trace.push_back(std::move(rt));
    }
    if (summary.primary_lone_delivered) {
      if (!result.solved) {
        result.solved = true;
        result.solved_round = round;
      }
      result.all_solved_rounds.push_back(round);
    }
    ++round;
  };

  // One engine-fabricated round, bit-exact with Engine::Run's: the dense
  // alive-ordered action array carries the same non-idle actions in the
  // same ascending-node order as the coroutine engine's full array, so the
  // resolver touches channels — and draws faults — identically. Crash
  // draws are skipped and the program does not advance. `winner_slot`
  // >= 0 indexes alive_ and fabricates a confirmation echo; -1 fabricates
  // an all-idle backoff round. Returns the round summary so the call sites
  // can feed the adaptive policy and the echo/backoff spend breakdown.
  const auto fabricated_round =
      [&](std::int32_t winner_slot) -> mac::RoundSummary {
    const std::size_t m = alive_.size();
    if (config.record_active_counts) {
      result.active_counts.push_back(static_cast<std::int64_t>(m));
    }
    fab_actions_.assign(m, mac::Action::Listen(mac::kPrimaryChannel));
    if (winner_slot >= 0) {
      fab_actions_[static_cast<std::size_t>(winner_slot)] =
          mac::Action::Transmit(
              mac::kPrimaryChannel,
              actions_[static_cast<std::size_t>(winner_slot)].message);
      ++node_tx_[static_cast<std::size_t>(
          alive_[static_cast<std::size_t>(winner_slot)])];
    } else {
      fab_actions_.clear();  // backoff: nobody participates
    }
    const std::span<const mac::ChannelId> adv_jams =
        adversary.PlanRound(round, config.channels);
    adv_perturbed = adv_perturbed || !adv_jams.empty();
    const mac::RoundSummary summary =
        resolver_->Resolve(fab_actions_, fab_feedback_, fault_ptr, adv_jams);
    adversary.ObserveRound(*resolver_, round);
    account_round(summary);
    return summary;
  };

  while (true) {  // one iteration per robust epoch (single pass when off)
    // Bounded exponential backoff before every retry epoch — all-idle
    // rounds the adversary still plans against (and, being reactive,
    // typically wastes budget on).
    for (std::int64_t pause = epochs.PauseRounds();
         pause > 0 && round < config.max_rounds; --pause) {
      const mac::RoundSummary pause_summary = fabricated_round(-1);
      ++result.backoff_rounds;
      result.adv_jams_backoff += pause_summary.adv_jams;
      epochs.NoteBackoffRound(pause_summary.adv_jams);
    }
    if (round >= config.max_rounds) {
      out_of_rounds = true;
      break;
    }

    // (Re)seed per-node streams and reset program state for this epoch.
    // Epoch 0 uses the unsalted seed — the historical construction — and
    // crashed nodes are excluded from the rebuilt alive set for good.
    rng_.resize(n);
    simd::SeedStreams(epochs.SeedFor(config.seed), 1, config.rng, rng_);
    ctx.rng = rng_;
    program.Reset(ctx);

    alive_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!crashed_[i]) alive_.push_back(static_cast<NodeId>(i));
    }
    stall_streak = 0;

    bool epoch_failed = false;
    while (!alive_.empty() && round < config.max_rounds) {
      // Crash-stop sweep, bit-exact with Engine::Run: one draw per alive
      // node in ascending node order at the start of the round.
      if (injector.has_crashes()) {
        std::size_t write = 0;
        for (std::size_t read = 0; read < alive_.size(); ++read) {
          if (injector.DrawCrash()) {
            crashed_[static_cast<std::size_t>(alive_[read])] = 1;
          } else {
            alive_[write++] = alive_[read];
          }
        }
        alive_.resize(write);
        if (alive_.empty()) break;
      }
      const std::size_t m = alive_.size();
      if (config.record_active_counts) {
        result.active_counts.push_back(static_cast<std::int64_t>(m));
      }
      ctx.round = round;

      // Planned before the round resolves, from strictly earlier
      // observations — same call point as Engine::Run, so strategy, ledger
      // and RNG state advance in lockstep across executors.
      const std::span<const mac::ChannelId> adv_jams =
          adversary.PlanRound(round, config.channels);
      adv_perturbed = adv_perturbed || !adv_jams.empty();
      if (fast_rounds && adv_perturbed && adv_jams.empty() &&
          program.LockstepRestored(ctx, alive_)) {
        adv_perturbed = false;  // the jam-induced split healed: re-fuse
      }

      if (fast_rounds && !adv_perturbed) {
        finished_.assign(m, 0);
        FastRoundEffects fx;
        if (program.FastRound(ctx, alive_, node_tx_, finished_, &fx)) {
          ++result.fused_rounds;
          result.total_transmissions += fx.transmissions;
          if (fx.primary_lone_delivered) {
            if (!result.solved) {
              result.solved = true;
              result.solved_round = round;
            }
            result.all_solved_rounds.push_back(round);
          }
          ++round;
          // Same order as the generic path: the solving round ends the run
          // before the alive set is compacted.
          if (result.solved && config.stop_when_solved) break;
          const std::size_t write = simd::CompactKeep(alive_, finished_);
          alive_.resize(write);
          const bool progress = fx.lone_deliveries > 0 || write < m;
          stall_streak = progress ? 0 : stall_streak + 1;
          continue;
        }
      }

      actions_.resize(m);
      program.EmitActions(ctx, alive_, actions_);

      for (std::size_t k = 0; k < m; ++k) {
        if (actions_[k].channel != mac::kIdleChannel && actions_[k].transmit) {
          ++node_tx_[static_cast<std::size_t>(alive_[k])];
        }
      }

      // Dense alive-only span: the resolver's sparse touched_channels path
      // makes this O(m), independent of num_active and C.
      const mac::RoundSummary summary =
          resolver_->Resolve(actions_, feedback_, fault_ptr, adv_jams);
      adversary.ObserveRound(*resolver_, round);
      account_round(summary);
      epochs.CountRound();

      // Delivery confirmation, mirroring Engine::Run: a suppressed
      // candidate (lone primary transmitter, delivery jammed/erased)
      // triggers echo rounds until one delivers or attempts run out.
      if (epochs.enabled() && !result.solved &&
          summary.primary_transmitters == 1 &&
          !summary.primary_lone_delivered) {
        const std::int32_t winner_slot = robust::FindPrimaryWinner(actions_);
        CRMC_CHECK(winner_slot >= 0);
        epochs.NoteCandidate();
        // Bound re-evaluated after every echo — the adaptive quorum
        // escalates in place, same as Engine::Run.
        for (std::int32_t attempt = 0;
             attempt < epochs.confirm_attempts() &&
             round < config.max_rounds && !result.solved;
             ++attempt) {
          const mac::RoundSummary echo = fabricated_round(winner_slot);
          ++result.confirm_rounds;
          result.adv_jams_echo += echo.adv_jams;
          epochs.NoteEchoRound(echo.primary_lone_delivered, echo.adv_jams);
          epochs.CountRound();
        }
      }
      if (result.solved && config.stop_when_solved) break;

      finished_.assign(m, 0);
      // All step-program assumption checks fire in Advance (Emit paths use
      // hard CRMC_CHECKs only), so wrapping Advance alone keeps the
      // graceful abort bit-exact with the coroutine engine's resume loop.
      try {
        program.Advance(ctx, alive_, actions_, feedback_, finished_);
      } catch (const support::ProtocolAssumptionViolation&) {
        // Same graceful-abort rule as Engine::Run: an active adversary
        // layer (oblivious faults or adaptive jammer) legitimately breaks
        // protocol model assumptions. Under the robust layer the violation
        // fails the epoch and retries instead.
        if (!injector.active() && !adversary.active()) throw;
        if (epochs.CanRetry()) {
          epoch_failed = true;
          break;
        }
        result.assumption_violated = true;
        aborted = true;
        break;
      }
      const std::size_t write = simd::CompactKeep(alive_, finished_);
      alive_.resize(write);
      // Livelock watchdog, identical to Engine::Run: progress means a lone
      // message got through somewhere or a node terminated.
      const bool progress = summary.lone_deliveries > 0 || write < m;
      stall_streak = progress ? 0 : stall_streak + 1;

      // Phase watchdogs (see Engine::Run): the final permitted epoch runs
      // to its natural end.
      if (!result.solved && epochs.CanRetry() &&
          epochs.WatchdogExpired(stall_streak)) {
        epoch_failed = true;
        break;
      }
    }

    // Deluded exit: every node terminated (or crashed) without a confirmed
    // delivery. Retry iff someone is left to restart.
    if (!epoch_failed && !aborted && !result.solved && alive_.empty() &&
        epochs.CanRetry()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!crashed_[i]) {
          epoch_failed = true;
          break;
        }
      }
    }
    if (!epoch_failed || round >= config.max_rounds) break;
    epochs.BeginNextEpoch();
    alive_.clear();
  }

  result.rounds_executed = round;
  const mac::FaultCounters& fc = injector.counters();
  result.jams_injected = fc.jams;
  result.erasures_injected = fc.erasures;
  result.cd_flips_injected = fc.cd_flips;
  result.faults_injected = fc.Total();
  result.crashed_nodes = static_cast<std::int32_t>(fc.crashes);
  result.stall_rounds = stall_streak;
  result.all_terminated =
      !aborted && !out_of_rounds && alive_.empty() && fc.crashes == 0;
  for (const std::int64_t tx : node_tx_) {
    result.max_node_transmissions = std::max(result.max_node_transmissions, tx);
    result.mean_node_transmissions += static_cast<double>(tx);
  }
  result.mean_node_transmissions /= static_cast<double>(config.num_active);
  if (config.record_node_transmissions) {
    result.node_transmissions = node_tx_;
  }
  result.timed_out = (!alive_.empty() && round >= config.max_rounds &&
                      !(result.solved && config.stop_when_solved)) ||
                     out_of_rounds;
  result.wedged =
      result.timed_out && stall_streak * 2 >= result.rounds_executed;
  result.adv_rounds_held = adversary.rounds_held();
  if (epochs.enabled()) {
    result.epochs_used = epochs.epoch() + 1;
    result.retries = epochs.epoch();
    result.confirmed = result.solved;
    result.adaptive_confirm_extra = epochs.adaptive_confirm_extra();
    result.adaptive_backoff_trimmed = epochs.adaptive_backoff_trimmed();
    result.confirm_quorum_peak = epochs.confirm_quorum_peak();
  }
  return result;
}

}  // namespace crmc::sim
