#include "sim/batch_engine.h"

#include <algorithm>

#include "support/assert.h"

namespace crmc::sim {

RunResult BatchEngine::Run(const EngineConfig& config, StepProgram& program) {
  CRMC_REQUIRE_MSG(config.num_active >= 1,
                   "need at least one activated node");
  CRMC_REQUIRE(config.channels >= 1);
  CRMC_REQUIRE(config.max_rounds >= 1);
  const std::int64_t population =
      config.population == 0 ? config.num_active : config.population;
  CRMC_REQUIRE_MSG(population >= config.num_active,
                   "population " << population << " < activated nodes "
                                 << config.num_active);

  const auto n = static_cast<std::size_t>(config.num_active);

  // Same ID and per-node stream derivation as Engine::Run, so a program
  // that consumes ctx.rng[s] sees the bit stream node s's coroutine would.
  support::RandomSource id_rng =
      support::RandomSource::ForStream(config.seed, 0x1d5eed);
  unique_ids_ =
      support::SampleWithoutReplacement(population, config.num_active, id_rng);
  rng_.clear();
  rng_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rng_.push_back(support::RandomSource::ForStream(
        config.seed, static_cast<std::uint64_t>(i) + 1));
  }

  BatchContext ctx;
  ctx.population = population;
  ctx.num_active = config.num_active;
  ctx.channels = config.channels;
  ctx.rng = rng_;
  ctx.unique_ids = unique_ids_;
  program.Reset(ctx);

  alive_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alive_[i] = static_cast<NodeId>(i);
  node_tx_.assign(n, 0);

  if (!resolver_ || resolver_->num_channels() != config.channels ||
      resolver_->cd_model() != config.cd_model) {
    resolver_.emplace(config.channels, config.cd_model);
  }

  RunResult result;
  std::int64_t round = 0;
  while (!alive_.empty() && round < config.max_rounds) {
    const std::size_t m = alive_.size();
    if (config.record_active_counts) {
      result.active_counts.push_back(static_cast<std::int64_t>(m));
    }
    ctx.round = round;

    actions_.resize(m);
    program.EmitActions(ctx, alive_, actions_);

    for (std::size_t k = 0; k < m; ++k) {
      if (actions_[k].channel != mac::kIdleChannel && actions_[k].transmit) {
        ++node_tx_[static_cast<std::size_t>(alive_[k])];
      }
    }

    // Dense alive-only span: the resolver's sparse touched_channels path
    // makes this O(m), independent of num_active and C.
    const mac::RoundSummary summary = resolver_->Resolve(actions_, feedback_);
    result.total_transmissions += summary.total_transmissions;
    if (config.record_trace) {
      RoundTrace rt;
      rt.round = round;
      for (const mac::ChannelId ch : resolver_->touched_channels()) {
        const mac::ChannelActivity& act = resolver_->ActivityOf(ch);
        rt.events.push_back(
            ChannelTraceEvent{ch, act.transmitters, act.listeners});
      }
      result.trace.push_back(std::move(rt));
    }
    if (summary.primary_transmitters == 1) {
      if (!result.solved) {
        result.solved = true;
        result.solved_round = round;
      }
      result.all_solved_rounds.push_back(round);
    }
    ++round;
    if (result.solved && config.stop_when_solved) break;

    finished_.assign(m, 0);
    program.Advance(ctx, alive_, actions_, feedback_, finished_);
    std::size_t write = 0;
    for (std::size_t k = 0; k < m; ++k) {
      if (!finished_[k]) alive_[write++] = alive_[k];
    }
    alive_.resize(write);
  }

  result.rounds_executed = round;
  result.all_terminated = alive_.empty();
  for (const std::int64_t tx : node_tx_) {
    result.max_node_transmissions = std::max(result.max_node_transmissions, tx);
    result.mean_node_transmissions += static_cast<double>(tx);
  }
  result.mean_node_transmissions /= static_cast<double>(config.num_active);
  if (config.record_node_transmissions) {
    result.node_transmissions = node_tx_;
  }
  result.timed_out = !alive_.empty() && round >= config.max_rounds &&
                     !(result.solved && config.stop_when_solved);
  return result;
}

}  // namespace crmc::sim
