#include "sim/trace.h"

#include <algorithm>
#include <iomanip>
#include <string>

#include "support/assert.h"

namespace crmc::sim {

void RenderTrace(const std::vector<RoundTrace>& trace,
                 mac::ChannelId max_channel, std::int64_t max_rounds,
                 std::ostream& os) {
  CRMC_REQUIRE(max_channel >= 1);
  CRMC_REQUIRE(max_rounds >= 1);

  // Header: channel labels, tens then units for readability.
  os << "round |";
  for (mac::ChannelId ch = 1; ch <= max_channel; ++ch) {
    os << (ch % 10 == 0 ? std::to_string((ch / 10) % 10) : std::string(" "));
  }
  os << "\n      |";
  for (mac::ChannelId ch = 1; ch <= max_channel; ++ch) {
    os << ch % 10;
  }
  os << "\n------+" << std::string(static_cast<std::size_t>(max_channel), '-')
     << "\n";

  const auto rows = std::min<std::int64_t>(
      max_rounds, static_cast<std::int64_t>(trace.size()));
  for (std::int64_t r = 0; r < rows; ++r) {
    const RoundTrace& rt = trace[static_cast<std::size_t>(r)];
    std::string row(static_cast<std::size_t>(max_channel), '.');
    for (const ChannelTraceEvent& ev : rt.events) {
      if (ev.channel < 1 || ev.channel > max_channel) continue;
      char mark;
      if (ev.transmitters >= 2) {
        mark = 'X';
      } else if (ev.transmitters == 1) {
        mark = ev.channel == mac::kPrimaryChannel ? 'M' : 'm';
      } else {
        mark = ev.listeners > 0 ? 'l' : '.';
      }
      row[static_cast<std::size_t>(ev.channel - 1)] = mark;
    }
    os << std::setw(5) << rt.round + 1 << " |" << row << "\n";
  }
  if (static_cast<std::int64_t>(trace.size()) > rows) {
    os << "  ... " << static_cast<std::int64_t>(trace.size()) - rows
       << " more rounds elided\n";
  }
  os << "legend: M lone primary tx (solves), m lone tx, X collision, "
        "l listeners only, . silence\n";
}

}  // namespace crmc::sim
