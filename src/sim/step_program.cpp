#include "sim/step_program.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/channel_budget.h"
#include "simd/kernels.h"
#include "support/assert.h"
#include "support/bits.h"
#include "tree/channel_tree.h"

namespace crmc::sim {
namespace {

using mac::Action;
using mac::Feedback;
using mac::kPrimaryChannel;
using support::BatchBernoulli;
using support::BatchUniformInt;
using tree::ChannelTree;

// ---------------------------------------------------------------------------
// Fused-round helpers. FastRound implementations below execute a whole
// pristine strong-CD round — draws, resolution, transitions — without
// materializing Action/Feedback arrays; the SIMD kernels (src/simd/) do the
// per-lane loops. Draw order per lane is identical to EmitActions, so the
// fused and generic paths are bit-exact (the engine parity suite runs both).

// One all-on-primary coin round: mask[k] = coin.Draw(rng[alive[k]]),
// transmitters charged to node_tx, channel effects recorded. Returns the
// number of transmitters.
std::int64_t PrimaryCoinRound(const BatchBernoulli& coin,
                              const BatchContext& ctx,
                              std::span<const NodeId> alive,
                              std::span<std::int64_t> node_tx,
                              std::vector<std::uint8_t>& mask,
                              FastRoundEffects* fx) {
  mask.resize(alive.size());
  const std::int64_t tx = simd::CoinMask(coin, ctx.rng, alive, mask);
  for (std::size_t k = 0; k < alive.size(); ++k) {
    node_tx[static_cast<std::size_t>(alive[k])] += mask[k];
  }
  fx->transmissions += tx;
  if (tx == 1) {
    fx->lone_deliveries += 1;
    fx->primary_lone_delivered = true;
  }
  return tx;
}

// Strong-CD knockout finish rule (CD knockout, Reduce rounds, IDReduction
// knock round): one transmitter ends everyone (the lone leader plus every
// listener that heard it), two or more end the listeners only, zero end no
// one. Returns true when every alive node finished — callers can skip their
// survivor transitions.
bool KnockoutFinish(std::int64_t tx, std::span<const std::uint8_t> mask,
                    std::span<std::uint8_t> finished) {
  if (tx == 1) {
    std::fill(finished.begin(), finished.end(), std::uint8_t{1});
    return true;
  }
  if (tx >= 2) {
    for (std::size_t k = 0; k < mask.size(); ++k) {
      finished[k] = static_cast<std::uint8_t>(!mask[k]);
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// TwoActive (core/two_active.cpp flattened). Phase tags mirror the
// coroutine's control flow: uniform renaming, SplitCheck binary search,
// final primary-channel round — or the single-channel coin-flip duel.

class TwoActiveProgram final : public StepProgram {
 public:
  explicit TwoActiveProgram(core::TwoActiveParams params) : params_(params) {}

  std::string_view name() const override { return "two_active"; }

  void Reset(const BatchContext& ctx) override {
    channels_ = core::EffectiveChannels(ctx.channels, ctx.population);
    if (params_.channel_cap > 0) {
      channels_ = std::min(
          channels_, static_cast<std::int32_t>(support::FloorPow2(
                         static_cast<std::uint64_t>(params_.channel_cap))));
    }
    duel_ = channels_ < 2;
    if (!duel_) {
      tree_.emplace(channels_);
      rename_draw_.emplace(1, channels_);
    }
    const auto n = static_cast<std::size_t>(ctx.num_active);
    phase_.assign(n, duel_ ? kDuel : kRename);
    id_.assign(n, 0);
    lo_.assign(n, 0);
    hi_.assign(n, 0);
  }

  void EmitActions(const BatchContext& ctx, std::span<const NodeId> alive,
                   std::span<Action> actions) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      support::RandomSource& rng = ctx.rng[s];
      switch (phase_[s]) {
        case kDuel:
          actions[k] = coin_.Draw(rng) ? Action::Transmit(kPrimaryChannel)
                                       : Action::Listen(kPrimaryChannel);
          break;
        case kRename:
          id_[s] = static_cast<std::int32_t>(rename_draw_->Draw(rng));
          actions[k] = Action::Transmit(static_cast<mac::ChannelId>(id_[s]));
          break;
        case kSearch: {
          const std::int32_t mid = (lo_[s] + hi_[s]) / 2;
          actions[k] = Action::Transmit(static_cast<mac::ChannelId>(
              tree_->IndexWithinLevel(id_[s], mid)));
          break;
        }
        case kFinalTx:
          actions[k] = Action::Transmit(kPrimaryChannel);
          break;
        case kFinalListen:
          actions[k] = Action::Listen(kPrimaryChannel);
          break;
      }
    }
  }

  void Advance(const BatchContext&, std::span<const NodeId> alive,
               std::span<const Action> actions,
               std::span<const Feedback> feedback,
               std::span<std::uint8_t> finished) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      const Feedback& fb = feedback[k];
      switch (phase_[s]) {
        case kDuel:
          // Winner hears itself alone; loser hears the winner's message.
          if (fb.MessageHeard()) finished[k] = 1;
          break;
        case kRename:
          CRMC_PROTO_CHECK(!fb.Silence());
          if (fb.MessageHeard()) {  // alone: channel label becomes the ID
            phase_[s] = kSearch;
            lo_[s] = 0;
            hi_[s] = tree_->height();
          }
          break;
        case kSearch: {
          CRMC_PROTO_CHECK(!fb.Silence());
          const std::int32_t mid = (lo_[s] + hi_[s]) / 2;
          if (fb.Collision()) {
            lo_[s] = mid + 1;  // still shared at `mid`: divergence is deeper
          } else {
            hi_[s] = mid;
          }
          if (lo_[s] >= hi_[s]) {
            const std::int32_t split = lo_[s];
            CRMC_PROTO_CHECK_MSG(split >= 1,
                                 "paths cannot diverge at the root");
            phase_[s] = tree_->AncestorIsLeftChild(id_[s], split)
                            ? kFinalTx
                            : kFinalListen;
          }
          break;
        }
        case kFinalTx:
          CRMC_PROTO_CHECK_MSG(
              fb.MessageHeard(),
              "two-active winner was not alone on the primary channel");
          finished[k] = 1;
          break;
        case kFinalListen:
          finished[k] = 1;
          break;
      }
      (void)actions;
    }
  }

  // The two-active run is fully lockstep: in duel mode every round is a
  // primary-channel coin round; otherwise the two nodes share lo/hi bounds
  // and move through kRename -> kSearch together (they either both rename
  // or both stay; every search round updates both bounds identically), and
  // the run ends on a {kFinalTx, kFinalListen} pair. Anything else — more
  // or fewer than two nodes outside duel mode, or a same-final-phase pair,
  // which the generic path rejects with a CRMC_PROTO_CHECK — declines.
  bool FastRound(const BatchContext& ctx, std::span<const NodeId> alive,
                 std::span<std::int64_t> node_tx,
                 std::span<std::uint8_t> finished,
                 FastRoundEffects* fx) override {
    if (duel_) {
      const std::int64_t tx =
          PrimaryCoinRound(coin_, ctx, alive, node_tx, mask_, fx);
      if (tx == 1) {  // everyone heard the lone duel winner
        std::fill(finished.begin(), finished.end(), std::uint8_t{1});
      }
      return true;
    }
    if (alive.size() != 2) return false;
    const auto s0 = static_cast<std::size_t>(alive[0]);
    const auto s1 = static_cast<std::size_t>(alive[1]);
    if (phase_[s0] != phase_[s1]) {
      const bool final_pair =
          (phase_[s0] == kFinalTx && phase_[s1] == kFinalListen) ||
          (phase_[s0] == kFinalListen && phase_[s1] == kFinalTx);
      if (!final_pair) return false;
      ++node_tx[phase_[s0] == kFinalTx ? s0 : s1];
      fx->transmissions += 1;
      fx->lone_deliveries += 1;
      fx->primary_lone_delivered = true;
      finished[0] = 1;
      finished[1] = 1;
      return true;
    }
    switch (phase_[s0]) {
      case kRename: {
        const auto id0 =
            static_cast<std::int32_t>(rename_draw_->Draw(ctx.rng[s0]));
        const auto id1 =
            static_cast<std::int32_t>(rename_draw_->Draw(ctx.rng[s1]));
        id_[s0] = id0;
        id_[s1] = id1;
        ++node_tx[s0];
        ++node_tx[s1];
        fx->transmissions += 2;
        if (id0 != id1) {  // both alone: renamed, and maybe solved outright
          fx->lone_deliveries += 2;
          fx->primary_lone_delivered =
              id0 == kPrimaryChannel || id1 == kPrimaryChannel;
          for (const std::size_t s : {s0, s1}) {
            phase_[s] = kSearch;
            lo_[s] = 0;
            hi_[s] = tree_->height();
          }
        }
        return true;
      }
      case kSearch: {
        const std::int32_t mid = (lo_[s0] + hi_[s0]) / 2;
        const std::int32_t ch0 = tree_->IndexWithinLevel(id_[s0], mid);
        const std::int32_t ch1 = tree_->IndexWithinLevel(id_[s1], mid);
        ++node_tx[s0];
        ++node_tx[s1];
        fx->transmissions += 2;
        if (ch0 == ch1) {  // still shared at `mid`: divergence is deeper
          lo_[s0] = lo_[s1] = mid + 1;
        } else {
          fx->lone_deliveries += 2;
          fx->primary_lone_delivered =
              ch0 == kPrimaryChannel || ch1 == kPrimaryChannel;
          hi_[s0] = hi_[s1] = mid;
        }
        if (lo_[s0] >= hi_[s0]) {
          const std::int32_t split = lo_[s0];
          CRMC_PROTO_CHECK_MSG(split >= 1, "paths cannot diverge at the root");
          for (const std::size_t s : {s0, s1}) {
            phase_[s] = tree_->AncestorIsLeftChild(id_[s], split)
                            ? kFinalTx
                            : kFinalListen;
          }
        }
        return true;
      }
      default:
        return false;  // same-phase final pair: let the generic check fire
    }
  }

  // Duel rounds have no cross-node invariant (any number of nodes flip
  // independent coins), so a jammed duel re-fuses immediately. Otherwise
  // FastRound needs exactly the two-node lockstep it documents above: a
  // shared non-final phase with shared search bounds, or the terminal
  // {kFinalTx, kFinalListen} pair. A same-phase final pair also reports
  // restored — FastRound declines it side-effect-free and the generic
  // path's CRMC_PROTO_CHECK fires exactly as it would have unfused.
  bool LockstepRestored(const BatchContext&,
                        std::span<const NodeId> alive) override {
    if (duel_) return true;
    if (alive.size() != 2) return false;
    const auto s0 = static_cast<std::size_t>(alive[0]);
    const auto s1 = static_cast<std::size_t>(alive[1]);
    if (phase_[s0] != phase_[s1]) {
      return (phase_[s0] == kFinalTx && phase_[s1] == kFinalListen) ||
             (phase_[s0] == kFinalListen && phase_[s1] == kFinalTx);
    }
    if (phase_[s0] == kSearch) return lo_[s0] == lo_[s1] && hi_[s0] == hi_[s1];
    return true;
  }

  std::unique_ptr<TrialProgram> MakeTrialProgram() const override;

 private:
  enum Phase : std::uint8_t { kDuel, kRename, kSearch, kFinalTx, kFinalListen };

  core::TwoActiveParams params_;
  std::int32_t channels_ = 0;
  bool duel_ = false;
  std::optional<ChannelTree> tree_;
  std::optional<BatchUniformInt> rename_draw_;
  BatchBernoulli coin_{0.5};

  std::vector<std::uint8_t> phase_;
  std::vector<std::int32_t> id_;  // renamed channel label / duel unused
  std::vector<std::int32_t> lo_;
  std::vector<std::int32_t> hi_;
  std::vector<std::uint8_t> mask_;  // FastRound coin-mask scratch
};

// ---------------------------------------------------------------------------
// TwoActive's trial-parallel twin: W independent trials ("lanes") in
// lockstep, per-lane state in flat planes, per-round draws batched across
// lanes into one slot list per draw kind and evaluated by the simd::
// kernels in a single vectorized pass. The per-(lane, node) streams sit in
// the ctx.rng[lane * num_active + node] plane, so a lane's draw order is
// exactly the per-trial FastRound's — lanes touch disjoint slots and each
// stream is drawn at most once per round, making every lane bit-exact
// against a solo run of its seed.
//
// The run is fully lockstep per lane (see TwoActiveProgram::FastRound), so
// a pristine lane never diverges; the `diverged` escape hatch only fires on
// states the per-trial path would reject with a CRMC_PROTO_CHECK, and the
// trial engine's fallback rerun reproduces that exception bit-exactly.

class TwoActiveTrialProgram final : public TrialProgram {
 public:
  explicit TwoActiveTrialProgram(core::TwoActiveParams params)
      : params_(params) {}

  std::string_view name() const override { return "two_active"; }

  bool Reset(const TrialContext& ctx, std::int32_t lanes) override {
    channels_ = core::EffectiveChannels(ctx.channels, ctx.population);
    if (params_.channel_cap > 0) {
      channels_ = std::min(
          channels_, static_cast<std::int32_t>(support::FloorPow2(
                         static_cast<std::uint64_t>(params_.channel_cap))));
    }
    duel_ = channels_ < 2;
    num_active_ = ctx.num_active;
    if (!duel_) {
      // The tree walk is only lockstep-representable for the paper's
      // |A| = 2 shape (the per-trial FastRound declines anything else).
      if (ctx.num_active != 2) return false;
      tree_.emplace(channels_);
      rename_draw_.emplace(1, channels_);
    }
    const auto w = static_cast<std::size_t>(lanes);
    phase_.assign(w, duel_ ? kDuel : kRename);
    id0_.assign(w, 0);
    id1_.assign(w, 0);
    lo_.assign(w, 0);
    hi_.assign(w, 0);
    tx0_.assign(w, 0);
    return true;
  }

  void Round(const TrialContext& ctx, std::span<const std::int32_t> lanes,
             std::span<std::int64_t> node_tx,
             std::span<LaneEffects> effects) override {
    if (duel_) {
      DuelRound(ctx, lanes, node_tx, effects);
      return;
    }
    // Pass 1: gather the stream slots of every lane that draws this round
    // (only renaming lanes do; search and final rounds are pure bit math).
    rename_slots_.clear();
    for (const std::int32_t lane : lanes) {
      if (phase_[static_cast<std::size_t>(lane)] == kRename) {
        rename_slots_.push_back(lane * 2);
        rename_slots_.push_back(lane * 2 + 1);
      }
    }
    rename_out_.resize(rename_slots_.size());
    simd::UniformFill(*rename_draw_, ctx.rng, rename_slots_, rename_out_);

    // Pass 2: per-lane transitions off the batched draws.
    std::size_t rj = 0;  // read cursor into rename_out_ (pairs, lane order)
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      const auto lane = static_cast<std::size_t>(lanes[k]);
      const std::size_t base = lane * 2;
      LaneEffects& fx = effects[k];
      switch (phase_[lane]) {
        case kRename: {
          const std::int32_t id0 = rename_out_[rj];
          const std::int32_t id1 = rename_out_[rj + 1];
          rj += 2;
          id0_[lane] = id0;
          id1_[lane] = id1;
          ++node_tx[base];
          ++node_tx[base + 1];
          fx.transmissions = 2;
          if (id0 != id1) {  // both alone: renamed, and maybe solved outright
            fx.lone_deliveries = 2;
            fx.primary_lone_delivered =
                id0 == kPrimaryChannel || id1 == kPrimaryChannel;
            phase_[lane] = kSearch;
            lo_[lane] = 0;
            hi_[lane] = tree_->height();
          }
          break;
        }
        case kSearch: {
          const std::int32_t mid = (lo_[lane] + hi_[lane]) / 2;
          const std::int32_t ch0 = tree_->IndexWithinLevel(id0_[lane], mid);
          const std::int32_t ch1 = tree_->IndexWithinLevel(id1_[lane], mid);
          ++node_tx[base];
          ++node_tx[base + 1];
          fx.transmissions = 2;
          if (ch0 == ch1) {  // still shared at `mid`: divergence is deeper
            lo_[lane] = mid + 1;
          } else {
            fx.lone_deliveries = 2;
            fx.primary_lone_delivered =
                ch0 == kPrimaryChannel || ch1 == kPrimaryChannel;
            hi_[lane] = mid;
          }
          if (lo_[lane] >= hi_[lane]) {
            const std::int32_t split = lo_[lane];
            if (split < 1) {  // per-trial path: "cannot diverge at the root"
              fx.diverged = true;
              break;
            }
            const bool t0 = tree_->AncestorIsLeftChild(id0_[lane], split);
            const bool t1 = tree_->AncestorIsLeftChild(id1_[lane], split);
            if (t0 == t1) {  // same-final pair: generic-path check territory
              fx.diverged = true;
              break;
            }
            phase_[lane] = kFinalPair;
            tx0_[lane] = static_cast<std::uint8_t>(t0);
          }
          break;
        }
        case kFinalPair:
          ++node_tx[base + (tx0_[lane] ? 0 : 1)];
          fx.transmissions = 1;
          fx.lone_deliveries = 1;
          fx.primary_lone_delivered = true;
          fx.finished = true;
          break;
        default:
          fx.diverged = true;
          break;
      }
    }
  }

 private:
  enum Phase : std::uint8_t { kDuel, kRename, kSearch, kFinalPair };

  // All-on-primary coin rounds for every lane at once: one CoinMask call
  // over the concatenated per-lane slot segments, then a per-lane popcount
  // of its segment. A lone transmitter ends the lane (everyone heard it).
  void DuelRound(const TrialContext& ctx, std::span<const std::int32_t> lanes,
                 std::span<std::int64_t> node_tx,
                 std::span<LaneEffects> effects) {
    const auto n = static_cast<std::size_t>(num_active_);
    duel_slots_.clear();
    for (const std::int32_t lane : lanes) {
      for (std::int32_t j = 0; j < num_active_; ++j) {
        duel_slots_.push_back(lane * num_active_ + j);
      }
    }
    mask_.resize(duel_slots_.size());
    simd::CoinMask(coin_, ctx.rng, duel_slots_, mask_);
    std::size_t base = 0;
    for (std::size_t k = 0; k < lanes.size(); ++k, base += n) {
      std::int64_t tx = 0;
      for (std::size_t j = 0; j < n; ++j) {
        node_tx[static_cast<std::size_t>(duel_slots_[base + j])] +=
            mask_[base + j];
        tx += mask_[base + j];
      }
      LaneEffects& fx = effects[k];
      fx.transmissions = tx;
      if (tx == 1) {  // everyone heard the lone duel winner
        fx.lone_deliveries = 1;
        fx.primary_lone_delivered = true;
        fx.finished = true;
      }
    }
  }

  core::TwoActiveParams params_;
  std::int32_t channels_ = 0;
  std::int32_t num_active_ = 0;
  bool duel_ = false;
  std::optional<ChannelTree> tree_;
  std::optional<BatchUniformInt> rename_draw_;
  BatchBernoulli coin_{0.5};

  // Per-lane state planes, indexed by lane id.
  std::vector<std::uint8_t> phase_;
  std::vector<std::int32_t> id0_;  // renamed labels of the lane's two nodes
  std::vector<std::int32_t> id1_;
  std::vector<std::int32_t> lo_;  // shared SplitCheck bounds
  std::vector<std::int32_t> hi_;
  std::vector<std::uint8_t> tx0_;  // final round: node 0 is the transmitter

  // Per-round gather scratch, reused across rounds.
  std::vector<std::int32_t> rename_slots_;
  std::vector<std::int32_t> rename_out_;
  std::vector<std::int32_t> duel_slots_;
  std::vector<std::uint8_t> mask_;
};

std::unique_ptr<TrialProgram> TwoActiveProgram::MakeTrialProgram() const {
  return std::make_unique<TwoActiveTrialProgram>(params_);
}

// ---------------------------------------------------------------------------
// The Reduce knockout schedule (Figure 2): two rounds per iteration at
// probability 1/n_hat, n_hat square-rooted between iterations. Shared by
// the standalone Reduce program and the composed general program; the
// prepared Bernoullis amortize the threshold computation across all nodes
// of a round.

std::vector<BatchBernoulli> BuildReduceSchedule(std::int64_t population,
                                                core::ReduceParams params) {
  const std::int32_t iterations =
      support::CeilLgLg(
          static_cast<std::uint64_t>(population < 2 ? 2 : population)) +
      params.extra_iterations;
  std::vector<BatchBernoulli> sched;
  sched.reserve(static_cast<std::size_t>(iterations) * 2);
  double n_hat = static_cast<double>(population);
  for (std::int32_t iter = 0; iter < iterations; ++iter) {
    const BatchBernoulli b(1.0 / n_hat);
    sched.push_back(b);
    sched.push_back(b);
    n_hat = std::sqrt(n_hat);
    if (n_hat < 2.0) n_hat = 2.0;
  }
  return sched;
}

class ReduceProgram final : public StepProgram {
 public:
  explicit ReduceProgram(core::ReduceParams params) : params_(params) {}

  std::string_view name() const override { return "reduce"; }

  void Reset(const BatchContext& ctx) override {
    sched_ = BuildReduceSchedule(ctx.population, params_);
    step_.assign(static_cast<std::size_t>(ctx.num_active), 0);
  }

  void EmitActions(const BatchContext& ctx, std::span<const NodeId> alive,
                   std::span<Action> actions) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      const bool tx =
          sched_[static_cast<std::size_t>(step_[s])].Draw(ctx.rng[s]);
      actions[k] = tx ? Action::Transmit(kPrimaryChannel)
                      : Action::Listen(kPrimaryChannel);
    }
  }

  void Advance(const BatchContext&, std::span<const NodeId> alive,
               std::span<const Action> actions,
               std::span<const Feedback> feedback,
               std::span<std::uint8_t> finished) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      const Feedback& fb = feedback[k];
      if (actions[k].transmit) {
        CRMC_PROTO_CHECK(!fb.Silence());
        if (fb.MessageHeard()) {  // alone: leader, problem solved
          finished[k] = 1;
          continue;
        }
      } else if (!fb.Silence()) {  // heard a survivor: knocked out
        finished[k] = 1;
        continue;
      }
      if (static_cast<std::size_t>(++step_[s]) == sched_.size()) {
        finished[k] = 1;  // schedule over: survivor terminates
      }
    }
  }

  // Every alive node is at the same schedule step (survivors advance one
  // step per round in lockstep), so one coin round covers them all.
  bool FastRound(const BatchContext& ctx, std::span<const NodeId> alive,
                 std::span<std::int64_t> node_tx,
                 std::span<std::uint8_t> finished,
                 FastRoundEffects* fx) override {
    const auto step =
        static_cast<std::size_t>(step_[static_cast<std::size_t>(alive[0])]);
    const std::int64_t tx =
        PrimaryCoinRound(sched_[step], ctx, alive, node_tx, mask_, fx);
    if (KnockoutFinish(tx, mask_, finished)) return true;
    const auto next = static_cast<std::int32_t>(step + 1);
    if (static_cast<std::size_t>(next) == sched_.size()) {
      std::fill(finished.begin(), finished.end(), std::uint8_t{1});
    }
    for (std::size_t k = 0; k < alive.size(); ++k) {
      step_[static_cast<std::size_t>(alive[k])] = next;
    }
    return true;
  }

  // FastRound's only cross-node assumption is the shared schedule step. A
  // jam can break it (a knocked-out-looking survivor keeps stepping while
  // an erased one repeats), so verify it directly over the survivors.
  bool LockstepRestored(const BatchContext&,
                        std::span<const NodeId> alive) override {
    const std::int32_t step = step_[static_cast<std::size_t>(alive[0])];
    for (const NodeId s : alive.subspan(1)) {
      if (step_[static_cast<std::size_t>(s)] != step) return false;
    }
    return true;
  }

 private:
  core::ReduceParams params_;
  std::vector<BatchBernoulli> sched_;
  std::vector<std::int32_t> step_;  // index into sched_
  std::vector<std::uint8_t> mask_;  // FastRound coin-mask scratch
};

// ---------------------------------------------------------------------------
// IDReduction (core/id_reduction.cpp flattened): a three-round cycle of
// spread / confirm / knockout until renaming succeeds.

class IdReductionProgram final : public StepProgram {
 public:
  explicit IdReductionProgram(core::IdReductionParams params)
      : params_(params) {}

  std::string_view name() const override { return "id_reduction"; }

  void Reset(const BatchContext& ctx) override {
    const std::int32_t eff =
        core::EffectiveChannels(ctx.channels, ctx.population);
    CRMC_REQUIRE_MSG(eff >= 4,
                     "IDReduction needs at least 4 effective channels, got "
                         << eff);
    spread_.emplace(1, eff / 2);
    const double knock_k =
        std::max(2.0, std::sqrt(static_cast<double>(eff)) /
                          params_.knock_divisor);
    knock_.emplace(1.0 / knock_k);
    const auto n = static_cast<std::size_t>(ctx.num_active);
    cycle_.assign(n, 0);
    chan_.assign(n, 0);
    renamed_.assign(n, 0);
    pairs_.assign(n, 0);
    // ClassifyChannels scratch: spread channels lie in [1, eff/2], the +3
    // covers the gather padding; must start (and is kept) all-zero.
    counts_.assign(static_cast<std::size_t>(eff / 2) + 3, 0);
  }

  void EmitActions(const BatchContext& ctx, std::span<const NodeId> alive,
                   std::span<Action> actions) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      switch (cycle_[s]) {
        case 0:  // spread over [C'/2]
          CRMC_CHECK_MSG(pairs_[s] < params_.max_pairs,
                         "IDReduction exceeded max_pairs — probability of "
                         "this is superpolynomially small; check parameters");
          chan_[s] = static_cast<std::int32_t>(spread_->Draw(ctx.rng[s]));
          actions[k] = Action::Transmit(static_cast<mac::ChannelId>(chan_[s]));
          break;
        case 1:  // confirm on the primary channel
          actions[k] = renamed_[s] ? Action::Transmit(kPrimaryChannel)
                                   : Action::Listen(kPrimaryChannel);
          break;
        default:  // knockout with probability 1/k
          actions[k] = knock_->Draw(ctx.rng[s])
                           ? Action::Transmit(kPrimaryChannel)
                           : Action::Listen(kPrimaryChannel);
          break;
      }
    }
  }

  void Advance(const BatchContext&, std::span<const NodeId> alive,
               std::span<const Action> actions,
               std::span<const Feedback> feedback,
               std::span<std::uint8_t> finished) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      const Feedback& fb = feedback[k];
      switch (cycle_[s]) {
        case 0:
          CRMC_PROTO_CHECK(!fb.Silence());
          renamed_[s] = fb.MessageHeard() ? 1 : 0;  // alone on the channel
          cycle_[s] = 1;
          break;
        case 1:
          if (renamed_[s]) {
            finished[k] = 1;  // kActive with new_id = chan_[s]
          } else if (!fb.Silence()) {
            finished[k] = 1;  // someone renamed and we did not
          } else {
            cycle_[s] = 2;
          }
          break;
        default:
          if (actions[k].transmit) {
            CRMC_PROTO_CHECK(!fb.Silence());
            if (fb.MessageHeard()) {  // alone on primary: solved outright
              finished[k] = 1;
              break;
            }
          } else if (!fb.Silence()) {
            finished[k] = 1;
            break;
          }
          cycle_[s] = 0;
          ++pairs_[s];
          break;
      }
    }
  }

  // Alive nodes move through the spread/confirm/knock cycle in lockstep
  // (every transition in Advance applies to all survivors of a round), so
  // the first lane's cycle position is everyone's. pairs_ is uniform for
  // the same reason, so the max_pairs check needs only one lane.
  bool FastRound(const BatchContext& ctx, std::span<const NodeId> alive,
                 std::span<std::int64_t> node_tx,
                 std::span<std::uint8_t> finished,
                 FastRoundEffects* fx) override {
    const std::size_t m = alive.size();
    const auto s0 = static_cast<std::size_t>(alive[0]);
    switch (cycle_[s0]) {
      case 0: {  // spread over [C'/2]: everyone transmits on its pick
        CRMC_CHECK_MSG(pairs_[s0] < params_.max_pairs,
                       "IDReduction exceeded max_pairs — probability of "
                       "this is superpolynomially small; check parameters");
        chan_scratch_.resize(m);
        simd::UniformFill(*spread_, ctx.rng, alive, chan_scratch_);
        lone_scratch_.resize(m);
        const simd::Occupancy occ = simd::ClassifyChannels(
            chan_scratch_, kPrimaryChannel, counts_, touched_, lone_scratch_);
        for (std::size_t k = 0; k < m; ++k) {
          const auto s = static_cast<std::size_t>(alive[k]);
          ++node_tx[s];
          chan_[s] = chan_scratch_[k];
          renamed_[s] = lone_scratch_[k];
          cycle_[s] = 1;
        }
        fx->transmissions += static_cast<std::int64_t>(m);
        fx->lone_deliveries += occ.lone_channels;
        fx->primary_lone_delivered = occ.primary_lone;
        return true;
      }
      case 1: {  // confirm: renamed nodes transmit on the primary channel
        std::int64_t r = 0;
        for (std::size_t k = 0; k < m; ++k) {
          const auto s = static_cast<std::size_t>(alive[k]);
          r += renamed_[s];
          node_tx[s] += renamed_[s];
        }
        fx->transmissions += r;
        if (r == 1) {
          fx->lone_deliveries += 1;
          fx->primary_lone_delivered = true;
        }
        if (r >= 1) {
          // Renamed nodes finish as kActive; everyone else heard them.
          std::fill(finished.begin(), finished.end(), std::uint8_t{1});
        } else {
          for (std::size_t k = 0; k < m; ++k) {
            cycle_[static_cast<std::size_t>(alive[k])] = 2;
          }
        }
        return true;
      }
      default: {  // knockout with probability 1/k
        const std::int64_t tx =
            PrimaryCoinRound(*knock_, ctx, alive, node_tx, mask_, fx);
        if (KnockoutFinish(tx, mask_, finished)) return true;
        for (std::size_t k = 0; k < m; ++k) {
          const auto s = static_cast<std::size_t>(alive[k]);
          cycle_[s] = 0;
          ++pairs_[s];
        }
        return true;
      }
    }
  }

 private:
  core::IdReductionParams params_;
  std::optional<BatchUniformInt> spread_;
  std::optional<BatchBernoulli> knock_;
  std::vector<std::uint8_t> cycle_;  // 0 spread, 1 confirm, 2 knock
  std::vector<std::int32_t> chan_;   // channel picked in the spread round
  std::vector<std::uint8_t> renamed_;
  std::vector<std::int64_t> pairs_;
  // FastRound scratch: coin mask, channel picks, per-lane lone flags, and
  // the ClassifyChannels histogram (all-zero between rounds) + dirty list.
  std::vector<std::uint8_t> mask_;
  std::vector<std::int32_t> chan_scratch_;
  std::vector<std::uint8_t> lone_scratch_;
  std::vector<std::uint16_t> counts_;
  std::vector<std::int32_t> touched_;
};

// ---------------------------------------------------------------------------
// LeafElection (core/leaf_election.cpp + core/split_primitives.cpp
// flattened). The per-node micro program counter walks root check ->
// SplitSearch refinements (CheckLevel pairs + announce) -> pairing, with
// the zero-round refinement bookkeeping folded into Advance. Shared
// between the standalone program and the composed general program.

struct LeafMachine {
  enum Pc : std::uint8_t { kRoot, kProbe, kVerdict, kIdleRounds, kAnnounce,
                           kPair };

  std::optional<ChannelTree> tree;
  bool force_binary = false;

  // Columns, indexed by node slot.
  std::vector<std::int32_t> leaf, cid, csize, cnode_heap, cnode_level;
  std::vector<std::int32_t> l_min, l_max, probe_dist, k_bound;
  std::vector<std::uint8_t> pc, which, probe_collided, first_res, second_res,
      idle_left;

  void Init(std::int32_t num_leaves, bool force_binary_in, std::size_t n) {
    tree.emplace(num_leaves);
    force_binary = force_binary_in;
    for (auto* col : {&leaf, &cid, &csize, &cnode_heap, &cnode_level, &l_min,
                      &l_max, &probe_dist, &k_bound}) {
      col->assign(n, 0);
    }
    for (auto* col : {&pc, &which, &probe_collided, &first_res, &second_res,
                      &idle_left}) {
      col->assign(n, 0);
    }
  }

  // Place node slot `s` on `leaf_label` as a singleton cohort; its next
  // round is the phase-1 root check.
  void Enter(std::size_t s, std::int32_t leaf_label) {
    leaf[s] = leaf_label;
    cid[s] = 1;
    csize[s] = 1;
    cnode_heap[s] = tree->LeafHeapIndex(leaf_label);
    cnode_level[s] = tree->height();
    pc[s] = kRoot;
  }

  // Boundary level l_i of the current refinement (SplitSearch).
  std::int32_t Boundary(std::size_t s, std::int32_t i) const {
    return i >= k_bound[s] ? l_max[s] : l_min[s] + i * probe_dist[s];
  }

  // Zero-round transition after the root check or an announce: either set
  // up the next (p+1)-ary refinement or conclude SplitSearch and move to
  // pairing at split_level == l_max.
  void EnterRefinementOrPair(std::size_t s) {
    if (l_max[s] > l_min[s] + 1) {
      const std::int32_t range = l_max[s] - l_min[s];
      const std::int32_t arity = force_binary ? 2 : csize[s] + 1;
      probe_dist[s] =
          static_cast<std::int32_t>(support::CeilDiv(range, arity));
      k_bound[s] =
          static_cast<std::int32_t>(support::CeilDiv(range, probe_dist[s]));
      CRMC_CHECK(k_bound[s] >= 2 && k_bound[s] <= arity);
      if (cid[s] < k_bound[s]) {
        pc[s] = kProbe;  // this member probes levels l_cid and l_(cid+1)
        which[s] = 0;
      } else {
        pc[s] = kIdleRounds;  // idle through the 4 CheckLevel rounds
        idle_left[s] = 4;
      }
    } else {
      CRMC_PROTO_CHECK(l_max[s] >= 1 && l_max[s] <= cnode_level[s]);
      pc[s] = kPair;
    }
  }

  Action Emit(std::size_t s) const {
    const ChannelTree& tr = *tree;
    switch (pc[s]) {
      case kRoot:
        return cid[s] == 1 ? Action::Transmit(kPrimaryChannel)
                           : Action::Listen(kPrimaryChannel);
      case kProbe: {
        const std::int32_t lvl =
            Boundary(s, which[s] == 0 ? cid[s] : cid[s] + 1);
        return Action::Transmit(
            tr.ChannelOf(tr.AncestorAtLevel(leaf[s], lvl)));
      }
      case kVerdict: {
        const std::int32_t lvl =
            Boundary(s, which[s] == 0 ? cid[s] : cid[s] + 1);
        return probe_collided[s] ? Action::Transmit(tr.RowChannel(lvl))
                                 : Action::Listen(tr.RowChannel(lvl));
      }
      case kIdleRounds:
        return Action::Idle();
      case kAnnounce: {
        const mac::ChannelId ch = tr.ChannelOf(cnode_heap[s]);
        if (cid[s] < k_bound[s] && cid[s] == 1 && !first_res[s]) {
          return Action::Transmit(ch, mac::Message{0});
        }
        if (cid[s] < k_bound[s] && first_res[s] && !second_res[s]) {
          return Action::Transmit(
              ch, mac::Message{static_cast<std::uint64_t>(cid[s])});
        }
        return Action::Listen(ch);
      }
      case kPair: {
        const std::int32_t parent =
            tr.AncestorAtLevel(leaf[s], l_max[s] - 1);
        return cid[s] == 1 ? Action::Transmit(tr.ChannelOf(parent))
                           : Action::Listen(tr.ChannelOf(parent));
      }
    }
    CRMC_CHECK(false);  // unreachable
    return Action::Idle();
  }

  // Returns true when node slot `s` leaves the election this round (as the
  // leader or as a partner-less cohort going inactive).
  bool Advance(std::size_t s, const Action& action, const Feedback& fb) {
    switch (pc[s]) {
      case kRoot:
        CRMC_PROTO_CHECK(!fb.Silence());  // every cohort has a master
        if (fb.MessageHeard()) return true;  // lone master broadcast: done
        l_min[s] = 0;
        l_max[s] = cnode_level[s];
        EnterRefinementOrPair(s);
        return false;
      case kProbe:
        CRMC_PROTO_CHECK(!fb.Silence());
        probe_collided[s] = fb.Collision() ? 1 : 0;
        pc[s] = kVerdict;
        return false;
      case kVerdict: {
        // CheckLevel verdict: a collided probe already decided "shared";
        // otherwise the row channel spreads the other probers' verdict.
        const std::uint8_t result =
            probe_collided[s] ? 1 : (fb.Silence() ? 0 : 1);
        if (which[s] == 0) {
          first_res[s] = result;
          which[s] = 1;
          pc[s] = kProbe;
        } else {
          second_res[s] = result;
          pc[s] = kAnnounce;
        }
        return false;
      }
      case kIdleRounds:
        if (--idle_left[s] == 0) pc[s] = kAnnounce;
        return false;
      case kAnnounce: {
        std::int32_t subrange;
        if (action.transmit) {
          CRMC_PROTO_CHECK_MSG(fb.MessageHeard(),
                               "two announcers in one cohort (subrange "
                                   << action.message.payload << ")");
          subrange = static_cast<std::int32_t>(action.message.payload);
        } else {
          CRMC_PROTO_CHECK_MSG(fb.MessageHeard(),
                               "cohort announcement missing on channel "
                                   << tree->ChannelOf(cnode_heap[s]));
          subrange = static_cast<std::int32_t>(fb.message.payload);
        }
        CRMC_PROTO_CHECK(subrange >= 0 && subrange < k_bound[s]);
        // Compute both bounds before assigning: Boundary reads l_min.
        const std::int32_t new_min = Boundary(s, subrange);
        const std::int32_t new_max = Boundary(s, subrange + 1);
        l_min[s] = new_min;
        l_max[s] = new_max;
        EnterRefinementOrPair(s);
        return false;
      }
      case kPair: {
        CRMC_PROTO_CHECK(!fb.Silence());  // our own master transmitted
        if (!fb.Collision()) return true;  // no partner cohort: inactive
        const std::int32_t split = l_max[s];
        if (!tree->AncestorIsLeftChild(leaf[s], split)) {
          cid[s] += csize[s];  // right-subtree cohort shifts its IDs up
        }
        csize[s] *= 2;
        cnode_heap[s] = tree->AncestorAtLevel(leaf[s], split - 1);
        cnode_level[s] = split - 1;
        pc[s] = kRoot;
        return false;
      }
    }
    CRMC_CHECK(false);  // unreachable
    return true;
  }
};

class LeafElectionProgram final : public StepProgram {
 public:
  LeafElectionProgram(std::vector<std::int32_t> leaves,
                      std::int32_t num_leaves,
                      core::LeafElectionParams params)
      : leaves_(std::move(leaves)), num_leaves_(num_leaves), params_(params) {}

  std::string_view name() const override { return "leaf_election"; }

  void Reset(const BatchContext& ctx) override {
    CRMC_REQUIRE(static_cast<std::size_t>(ctx.num_active) == leaves_.size());
    CRMC_REQUIRE_MSG(2 * num_leaves_ - 1 <= ctx.channels,
                     "tree with " << num_leaves_ << " leaves needs "
                                  << 2 * num_leaves_ - 1
                                  << " channels, have " << ctx.channels);
    machine_.Init(num_leaves_, params_.force_binary_search, leaves_.size());
    for (std::size_t s = 0; s < leaves_.size(); ++s) {
      machine_.Enter(s, leaves_[s]);
    }
  }

  void EmitActions(const BatchContext&, std::span<const NodeId> alive,
                   std::span<Action> actions) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      actions[k] = machine_.Emit(static_cast<std::size_t>(alive[k]));
    }
  }

  void Advance(const BatchContext&, std::span<const NodeId> alive,
               std::span<const Action> actions,
               std::span<const Feedback> feedback,
               std::span<std::uint8_t> finished) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      if (machine_.Advance(static_cast<std::size_t>(alive[k]), actions[k],
                           feedback[k])) {
        finished[k] = 1;
      }
    }
  }

 private:
  std::vector<std::int32_t> leaves_;
  std::int32_t num_leaves_;
  core::LeafElectionParams params_;
  LeafMachine machine_;
};

// ---------------------------------------------------------------------------
// The classic single-channel CD knockout (core/reduce.cpp, RunKnockoutCd):
// also the general algorithm's C = O(1) fallback.

class KnockoutCdProgram final : public StepProgram {
 public:
  std::string_view name() const override { return "knockout_cd"; }

  void Reset(const BatchContext&) override {}

  void EmitActions(const BatchContext& ctx, std::span<const NodeId> alive,
                   std::span<Action> actions) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      actions[k] = coin_.Draw(ctx.rng[s]) ? Action::Transmit(kPrimaryChannel)
                                          : Action::Listen(kPrimaryChannel);
    }
  }

  void Advance(const BatchContext&, std::span<const NodeId> alive,
               std::span<const Action> actions,
               std::span<const Feedback> feedback,
               std::span<std::uint8_t> finished) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const Feedback& fb = feedback[k];
      if (actions[k].transmit) {
        CRMC_PROTO_CHECK(!fb.Silence());
        if (fb.MessageHeard()) finished[k] = 1;  // transmitted alone: leader
      } else if (!fb.Silence()) {
        finished[k] = 1;  // heard someone: knocked out
      }
    }
    (void)alive;
  }

  bool FastRound(const BatchContext& ctx, std::span<const NodeId> alive,
                 std::span<std::int64_t> node_tx,
                 std::span<std::uint8_t> finished,
                 FastRoundEffects* fx) override {
    const std::int64_t tx =
        PrimaryCoinRound(coin_, ctx, alive, node_tx, mask_, fx);
    KnockoutFinish(tx, mask_, finished);
    return true;
  }

  // The knockout carries no per-node state at all, so any surviving set is
  // lockstep-representable and a jammed run re-fuses immediately.
  bool LockstepRestored(const BatchContext&,
                        std::span<const NodeId>) override {
    return true;
  }

 private:
  BatchBernoulli coin_{0.5};
  std::vector<std::uint8_t> mask_;  // FastRound coin-mask scratch
};

// ---------------------------------------------------------------------------
// The composed general algorithm (core/general.cpp): Reduce -> IDReduction
// -> LeafElection, with the single-channel knockout fallback for C = O(1).
// Stage transitions replicate the coroutine step composition: Reduce
// survivors all enter IDReduction in the same round, and the nodes renamed
// by IDReduction all enter LeafElection (on leaf = new ID) in the same
// round.

class GeneralProgram final : public StepProgram {
 public:
  explicit GeneralProgram(core::GeneralParams params) : params_(params) {}

  std::string_view name() const override { return "general"; }

  void Reset(const BatchContext& ctx) override {
    eff_ = core::EffectiveChannels(ctx.channels, ctx.population);
    fallback_ = eff_ < params_.min_channels;
    const auto n = static_cast<std::size_t>(ctx.num_active);
    stage_.assign(n, fallback_ ? kFallback : kReduce);
    step_.assign(n, 0);
    chan_.assign(n, 0);
    renamed_.assign(n, 0);
    pairs_.assign(n, 0);
    if (fallback_) return;
    CRMC_REQUIRE_MSG(eff_ >= 4,
                     "IDReduction needs at least 4 effective channels, got "
                         << eff_);
    reduce_sched_ = BuildReduceSchedule(ctx.population, params_.reduce);
    spread_.emplace(1, eff_ / 2);
    const double knock_k =
        std::max(2.0, std::sqrt(static_cast<double>(eff_)) /
                          params_.id_reduction.knock_divisor);
    knock_.emplace(1.0 / knock_k);
    leaf_.Init(eff_ / 2, params_.leaf_election.force_binary_search, n);
    // ClassifyChannels scratch: spread channels lie in [1, eff/2], the +3
    // covers the gather padding; must start (and is kept) all-zero.
    counts_.assign(static_cast<std::size_t>(eff_ / 2) + 3, 0);
  }

  void EmitActions(const BatchContext& ctx, std::span<const NodeId> alive,
                   std::span<Action> actions) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      support::RandomSource& rng = ctx.rng[s];
      switch (stage_[s]) {
        case kFallback:
          actions[k] = coin_.Draw(rng) ? Action::Transmit(kPrimaryChannel)
                                       : Action::Listen(kPrimaryChannel);
          break;
        case kReduce: {
          const bool tx =
              reduce_sched_[static_cast<std::size_t>(step_[s])].Draw(rng);
          actions[k] = tx ? Action::Transmit(kPrimaryChannel)
                          : Action::Listen(kPrimaryChannel);
          break;
        }
        case kIdr:
          switch (step_[s]) {
            case 0:
              CRMC_CHECK_MSG(pairs_[s] < params_.id_reduction.max_pairs,
                             "IDReduction exceeded max_pairs — probability "
                             "of this is superpolynomially small; check "
                             "parameters");
              chan_[s] = static_cast<std::int32_t>(spread_->Draw(rng));
              actions[k] =
                  Action::Transmit(static_cast<mac::ChannelId>(chan_[s]));
              break;
            case 1:
              actions[k] = renamed_[s] ? Action::Transmit(kPrimaryChannel)
                                       : Action::Listen(kPrimaryChannel);
              break;
            default:
              actions[k] = knock_->Draw(rng)
                               ? Action::Transmit(kPrimaryChannel)
                               : Action::Listen(kPrimaryChannel);
              break;
          }
          break;
        case kLeaf:
          actions[k] = leaf_.Emit(s);
          break;
      }
    }
  }

  void Advance(const BatchContext&, std::span<const NodeId> alive,
               std::span<const Action> actions,
               std::span<const Feedback> feedback,
               std::span<std::uint8_t> finished) override {
    for (std::size_t k = 0; k < alive.size(); ++k) {
      const auto s = static_cast<std::size_t>(alive[k]);
      const Feedback& fb = feedback[k];
      switch (stage_[s]) {
        case kFallback:
          if (actions[k].transmit) {
            CRMC_PROTO_CHECK(!fb.Silence());
            if (fb.MessageHeard()) finished[k] = 1;
          } else if (!fb.Silence()) {
            finished[k] = 1;
          }
          break;
        case kReduce:
          if (actions[k].transmit) {
            CRMC_PROTO_CHECK(!fb.Silence());
            if (fb.MessageHeard()) {  // alone: leader, problem solved
              finished[k] = 1;
              break;
            }
          } else if (!fb.Silence()) {
            finished[k] = 1;  // knocked out
            break;
          }
          if (static_cast<std::size_t>(++step_[s]) == reduce_sched_.size()) {
            stage_[s] = kIdr;  // survivor: IDReduction starts next round
            step_[s] = 0;
          }
          break;
        case kIdr:
          switch (step_[s]) {
            case 0:
              CRMC_PROTO_CHECK(!fb.Silence());
              renamed_[s] = fb.MessageHeard() ? 1 : 0;
              step_[s] = 1;
              break;
            case 1:
              if (renamed_[s]) {
                stage_[s] = kLeaf;  // kActive: elect over leaf = new ID
                leaf_.Enter(s, chan_[s]);
              } else if (!fb.Silence()) {
                finished[k] = 1;  // someone renamed and we did not
              } else {
                step_[s] = 2;
              }
              break;
            default:
              if (actions[k].transmit) {
                CRMC_PROTO_CHECK(!fb.Silence());
                if (fb.MessageHeard()) {  // alone on primary: solved
                  finished[k] = 1;
                  break;
                }
              } else if (!fb.Silence()) {
                finished[k] = 1;
                break;
              }
              step_[s] = 0;
              ++pairs_[s];
              break;
          }
          break;
        case kLeaf:
          if (leaf_.Advance(s, actions[k], fb)) finished[k] = 1;
          break;
      }
    }
  }

  // Stages stay uniform across the alive set right up to LeafElection:
  // every node starts in kReduce (or kFallback for the whole run), Reduce
  // survivors all enter kIdr in the same round, and a confirm round either
  // moves every renamed node to kLeaf while finishing the rest, or keeps
  // everyone in kIdr. The kLeaf stage itself declines — its per-cohort
  // control flow has no batched win — and the engine falls back to the
  // generic path for the remainder of the run's rounds.
  bool FastRound(const BatchContext& ctx, std::span<const NodeId> alive,
                 std::span<std::int64_t> node_tx,
                 std::span<std::uint8_t> finished,
                 FastRoundEffects* fx) override {
    const std::size_t m = alive.size();
    const auto s0 = static_cast<std::size_t>(alive[0]);
    switch (stage_[s0]) {
      case kFallback: {
        const std::int64_t tx =
            PrimaryCoinRound(coin_, ctx, alive, node_tx, mask_, fx);
        KnockoutFinish(tx, mask_, finished);
        return true;
      }
      case kReduce: {
        const auto step = static_cast<std::size_t>(step_[s0]);
        const std::int64_t tx = PrimaryCoinRound(reduce_sched_[step], ctx,
                                                 alive, node_tx, mask_, fx);
        if (KnockoutFinish(tx, mask_, finished)) return true;
        const auto next = static_cast<std::int32_t>(step + 1);
        if (static_cast<std::size_t>(next) == reduce_sched_.size()) {
          for (std::size_t k = 0; k < m; ++k) {
            const auto s = static_cast<std::size_t>(alive[k]);
            stage_[s] = kIdr;  // survivor: IDReduction starts next round
            step_[s] = 0;
          }
        } else {
          for (std::size_t k = 0; k < m; ++k) {
            step_[static_cast<std::size_t>(alive[k])] = next;
          }
        }
        return true;
      }
      case kIdr:
        switch (step_[s0]) {
          case 0: {  // spread over [C'/2]
            CRMC_CHECK_MSG(pairs_[s0] < params_.id_reduction.max_pairs,
                           "IDReduction exceeded max_pairs — probability "
                           "of this is superpolynomially small; check "
                           "parameters");
            chan_scratch_.resize(m);
            simd::UniformFill(*spread_, ctx.rng, alive, chan_scratch_);
            lone_scratch_.resize(m);
            const simd::Occupancy occ =
                simd::ClassifyChannels(chan_scratch_, kPrimaryChannel, counts_,
                                       touched_, lone_scratch_);
            for (std::size_t k = 0; k < m; ++k) {
              const auto s = static_cast<std::size_t>(alive[k]);
              ++node_tx[s];
              chan_[s] = chan_scratch_[k];
              renamed_[s] = lone_scratch_[k];
              step_[s] = 1;
            }
            fx->transmissions += static_cast<std::int64_t>(m);
            fx->lone_deliveries += occ.lone_channels;
            fx->primary_lone_delivered = occ.primary_lone;
            return true;
          }
          case 1: {  // confirm on the primary channel
            std::int64_t r = 0;
            for (std::size_t k = 0; k < m; ++k) {
              const auto s = static_cast<std::size_t>(alive[k]);
              r += renamed_[s];
              node_tx[s] += renamed_[s];
            }
            fx->transmissions += r;
            if (r == 1) {
              fx->lone_deliveries += 1;
              fx->primary_lone_delivered = true;
            }
            if (r >= 1) {
              for (std::size_t k = 0; k < m; ++k) {
                const auto s = static_cast<std::size_t>(alive[k]);
                if (renamed_[s]) {
                  stage_[s] = kLeaf;  // kActive: elect over leaf = new ID
                  leaf_.Enter(s, chan_[s]);
                } else {
                  finished[k] = 1;  // someone renamed and we did not
                }
              }
            } else {
              for (std::size_t k = 0; k < m; ++k) {
                step_[static_cast<std::size_t>(alive[k])] = 2;
              }
            }
            return true;
          }
          default: {  // knockout with probability 1/k
            const std::int64_t tx =
                PrimaryCoinRound(*knock_, ctx, alive, node_tx, mask_, fx);
            if (KnockoutFinish(tx, mask_, finished)) return true;
            for (std::size_t k = 0; k < m; ++k) {
              const auto s = static_cast<std::size_t>(alive[k]);
              step_[s] = 0;
              ++pairs_[s];
            }
            return true;
          }
        }
      case kLeaf:
      default:
        return false;
    }
  }

 private:
  enum Stage : std::uint8_t { kFallback, kReduce, kIdr, kLeaf };

  core::GeneralParams params_;
  std::int32_t eff_ = 0;
  bool fallback_ = false;
  std::vector<BatchBernoulli> reduce_sched_;
  std::optional<BatchUniformInt> spread_;
  std::optional<BatchBernoulli> knock_;
  BatchBernoulli coin_{0.5};
  LeafMachine leaf_;

  std::vector<std::uint8_t> stage_;
  std::vector<std::int32_t> step_;  // reduce schedule index / IDR cycle pos
  std::vector<std::int32_t> chan_;  // IDR spread channel (leaf label later)
  std::vector<std::uint8_t> renamed_;
  std::vector<std::int64_t> pairs_;
  // FastRound scratch (see IdReductionProgram).
  std::vector<std::uint8_t> mask_;
  std::vector<std::int32_t> chan_scratch_;
  std::vector<std::uint8_t> lone_scratch_;
  std::vector<std::uint16_t> counts_;
  std::vector<std::int32_t> touched_;
};

}  // namespace

std::unique_ptr<StepProgram> MakeTwoActiveProgram(
    core::TwoActiveParams params) {
  return std::make_unique<TwoActiveProgram>(params);
}

std::unique_ptr<StepProgram> MakeReduceProgram(core::ReduceParams params) {
  return std::make_unique<ReduceProgram>(params);
}

std::unique_ptr<StepProgram> MakeIdReductionProgram(
    core::IdReductionParams params) {
  return std::make_unique<IdReductionProgram>(params);
}

std::unique_ptr<StepProgram> MakeLeafElectionProgram(
    std::vector<std::int32_t> leaves, std::int32_t num_leaves,
    core::LeafElectionParams params) {
  return std::make_unique<LeafElectionProgram>(std::move(leaves), num_leaves,
                                               params);
}

std::unique_ptr<StepProgram> MakeKnockoutCdProgram() {
  return std::make_unique<KnockoutCdProgram>();
}

std::unique_ptr<StepProgram> MakeGeneralProgram(core::GeneralParams params) {
  return std::make_unique<GeneralProgram>(params);
}

}  // namespace crmc::sim
