// Coroutine task type used to express protocols.
//
// A protocol is an ordinary C++20 coroutine returning Task<T>. The only
// leaf awaitable is NodeContext::Round(action) — suspending there hands the
// node's action for the current round to the engine, and resumption delivers
// the channel feedback. Tasks compose: a step of the paper's algorithm
// (Reduce, IDReduction, LeafElection) is a Task<StepResult> that a parent
// protocol simply `co_await`s, so the C++ reads like the paper's pseudocode.
//
// Tasks are lazy (start when awaited) and use symmetric transfer for
// completion, so arbitrarily deep step nesting costs no stack.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "support/assert.h"

namespace crmc::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed when this task finishes
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool Valid() const { return static_cast<bool>(handle_); }
  bool Done() const { return !handle_ || handle_.done(); }

  // Resume from outside a coroutine (engine only — for the top-level task).
  void Resume() {
    CRMC_CHECK(handle_ && !handle_.done());
    handle_.resume();
  }

  // Rethrow any exception that escaped the coroutine body.
  void RethrowIfFailed() {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  // Awaitable interface (start-on-await, symmetric transfer back on finish).
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;
  }
  T await_resume() {
    CRMC_CHECK(handle_);
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    CRMC_CHECK_MSG(handle_.promise().value.has_value(),
                   "task finished without a co_return value");
    return std::move(*handle_.promise().value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool Valid() const { return static_cast<bool>(handle_); }
  bool Done() const { return !handle_ || handle_.done(); }

  void Resume() {
    CRMC_CHECK(handle_ && !handle_.done());
    handle_.resume();
  }

  void RethrowIfFailed() {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {
    CRMC_CHECK(handle_);
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

// A protocol: the full per-node behaviour for a run.
using ProtocolTask = Task<void>;

}  // namespace crmc::sim
