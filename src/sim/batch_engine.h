// Columnar fast-path executor for step programs.
//
// BatchEngine::Run executes the same model as Engine::Run (sim/engine.h)
// but drives a StepProgram (sim/step_program.h) instead of per-node
// coroutines: node state lives in flat arrays, each round is two linear
// sweeps over the alive prefix, and only alive nodes' actions are handed to
// mac::Resolver — whose touched_channels scratch keeps resolution O(alive)
// per round instead of O(num_active) or O(C).
//
// The engine instance owns all scratch (RNG columns, action/feedback
// buffers, the resolver) and reuses it across Run calls, so a Monte-Carlo
// sweep of trials is allocation-free after the first trial of a given
// shape. One instance per thread; Run is not reentrant.
//
// For programs with identical_draw_order() (all shipped ones), the
// RunResult is bit-exact against Engine::Run on the same EngineConfig:
// solved/solved_round/all_solved_rounds, rounds_executed, timed_out,
// all_terminated, total_transmissions, the node-transmission summaries,
// active_counts and trace all match. node_reports stays empty — step
// programs carry no per-node instrumentation — and the coroutine engine's
// auto-beacon (wakeup transform) mode has no step-program counterpart.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mac/resolver.h"
#include "sim/engine.h"
#include "sim/step_program.h"
#include "support/rng.h"

namespace crmc::sim {

class BatchEngine {
 public:
  // Runs one execution of `program` under `config`. The program is Reset
  // at the start of the run; it must outlive the call.
  RunResult Run(const EngineConfig& config, StepProgram& program);

  // One-shot convenience mirroring Engine::Run (pays the scratch
  // allocations every call; sweeps should hold a BatchEngine instead).
  static RunResult RunOnce(const EngineConfig& config, StepProgram& program) {
    BatchEngine engine;
    return engine.Run(config, program);
  }

  // Fused rounds (StepProgram::FastRound) skip the Action/Feedback arrays
  // and the resolver on pristine strong-CD untraced rounds. On by default;
  // off forces the generic materialized path on every round — the results
  // are bit-identical either way (the parity suite runs both), this exists
  // for that suite and for debugging.
  void set_fused_rounds(bool enabled) { fused_rounds_enabled_ = enabled; }

 private:
  std::optional<mac::Resolver> resolver_;
  std::vector<support::RandomSource> rng_;
  std::vector<std::int64_t> unique_ids_;
  std::vector<NodeId> alive_;
  std::vector<mac::Action> actions_;
  std::vector<mac::Feedback> feedback_;
  // Scratch for engine-fabricated rounds under the robust layer
  // (confirmation echoes, backoff pauses): kept separate so the protocol
  // round held in actions_/feedback_ survives for Advance.
  std::vector<mac::Action> fab_actions_;
  std::vector<mac::Feedback> fab_feedback_;
  std::vector<std::uint8_t> finished_;
  // Crash-stop is permanent across robust epochs: marked nodes are never
  // re-included in the alive set on epoch restart.
  std::vector<std::uint8_t> crashed_;
  std::vector<std::int64_t> node_tx_;
  support::SampleScratch sample_scratch_;
  bool fused_rounds_enabled_ = true;
};

}  // namespace crmc::sim
