#include "sim/engine.h"

#include <algorithm>
#include <deque>

#include "mac/resolver.h"
#include "support/assert.h"
#include "support/rng.h"

namespace crmc::sim {

namespace {

// Below this many node_reports a direct scan beats building the index.
constexpr std::size_t kReportIndexThreshold = 16;

}  // namespace

const RunResult::ReportIndex& RunResult::Index() const {
  if (!report_index_) {
    auto idx = std::make_shared<ReportIndex>();
    for (const NodeReport& r : node_reports) {
      for (const auto& [key, value] : r.phase_marks) {
        auto [it, inserted] = idx->last_phase_marks.try_emplace(key, value);
        if (!inserted && value > it->second) it->second = value;
      }
      for (const auto& [key, value] : r.metrics) {
        idx->metric_values[key].push_back(value);  // node order preserved
      }
    }
    report_index_ = std::move(idx);
  }
  return *report_index_;
}

std::int64_t RunResult::LastPhaseMark(const std::string& name) const {
  if (node_reports.size() >= kReportIndexThreshold) {
    const ReportIndex& idx = Index();
    const auto it = idx.last_phase_marks.find(name);
    return it == idx.last_phase_marks.end() ? -1 : it->second;
  }
  std::int64_t best = -1;
  for (const NodeReport& r : node_reports) {
    auto it = r.phase_marks.find(name);
    if (it != r.phase_marks.end() && it->second > best) best = it->second;
  }
  return best;
}

std::vector<std::int64_t> RunResult::MetricValues(
    const std::string& name) const {
  if (node_reports.size() >= kReportIndexThreshold) {
    const ReportIndex& idx = Index();
    const auto it = idx.metric_values.find(name);
    return it == idx.metric_values.end() ? std::vector<std::int64_t>{}
                                         : it->second;
  }
  std::vector<std::int64_t> out;
  for (const NodeReport& r : node_reports) {
    for (const auto& [key, value] : r.metrics) {
      if (key == name) out.push_back(value);
    }
  }
  return out;
}

std::int64_t ValidateEngineConfig(const EngineConfig& config) {
  CRMC_REQUIRE_MSG(config.num_active >= 1,
                   "need at least one activated node, got "
                       << config.num_active);
  CRMC_REQUIRE_MSG(config.channels >= 1,
                   "need at least one channel, got " << config.channels);
  CRMC_REQUIRE_MSG(config.max_rounds >= 1,
                   "max_rounds must be at least 1, got " << config.max_rounds);
  const std::int64_t population =
      config.population == 0 ? config.num_active : config.population;
  CRMC_REQUIRE_MSG(population >= config.num_active,
                   "num_active " << config.num_active
                                 << " exceeds population " << population);
  config.faults.Validate();
  config.adversary.Validate();
  config.robust.Validate();
  // One jamming source at a time: an adversary (reactive *or* oblivious)
  // combined with an explicit jam_rate would silently double-jam — the
  // oblivious_rate case would even draw twice from one stream. Distinct
  // message, unit-tested.
  CRMC_REQUIRE_MSG(
      !config.adversary.Active() || config.faults.jam_rate == 0.0,
      "conflicting fault configuration: --adversary "
          << adversary::ToString(config.adversary.kind)
          << " cannot be combined with an explicit --jam-rate "
          << config.faults.jam_rate
          << " (use --adversary-rate for oblivious_rate)");
  for (const adversary::ScriptEntry& e : config.adversary.script) {
    CRMC_REQUIRE_MSG(e.channel <= config.channels,
                     "scripted adversary jams channel "
                         << e.channel << " but the network has only "
                         << config.channels << " channels");
  }
  return population;
}

mac::FaultSpec EffectiveFaultSpec(const EngineConfig& config) {
  mac::FaultSpec spec = config.faults;
  if (config.adversary.kind == adversary::Kind::kObliviousRate) {
    spec.jam_rate = config.adversary.rate;
  }
  return spec;
}

RunResult Engine::Run(const EngineConfig& config,
                      const ProtocolFactory& protocol) {
  const std::int64_t population = ValidateEngineConfig(config);
  CRMC_REQUIRE(protocol != nullptr);

  // Unique IDs for baselines that assume them (sampled from [1, n]).
  // Sampled once from the original seed: a node keeps its identity across
  // robust epoch restarts.
  support::RandomSource id_rng =
      support::RandomSource::ForStream(config.seed, 0x1d5eed, config.rng);
  const std::vector<std::int64_t> unique_ids = support::SampleWithoutReplacement(
      population, config.num_active, id_rng);

  robust::EpochDriver epochs(config.robust, population, config.channels);

  std::deque<NodeContext> contexts;
  std::vector<ProtocolTask> tasks;
  std::vector<NodeId> alive;
  alive.reserve(static_cast<std::size_t>(config.num_active));
  // Crash-stop is permanent across epochs: a crashed node never restarts.
  std::vector<std::uint8_t> crashed(
      static_cast<std::size_t>(config.num_active), 0);

  RunResult result;
  mac::FaultInjector injector(EffectiveFaultSpec(config), config.seed);
  mac::FaultInjector* const fault_ptr =
      injector.active() ? &injector : nullptr;
  adversary::AdversaryRun adversary(config.adversary, config.seed);
  mac::Resolver resolver(config.channels, config.cd_model);
  std::vector<mac::Action> actions(
      static_cast<std::size_t>(config.num_active));
  std::vector<mac::Feedback> feedback;
  // Scratch for engine-fabricated rounds (confirmation echoes and backoff
  // pauses): they must not clobber `actions`/`feedback`, which still hold
  // the protocol round the suspended coroutines are waiting on.
  std::vector<mac::Action> fab_actions;
  std::vector<mac::Feedback> fab_feedback;
  std::vector<std::int64_t> node_tx(
      static_cast<std::size_t>(config.num_active), 0);
  // Wakeup-transform bookkeeping: a node in auto-beacon mode transmits on
  // the primary channel in the round *before* each of its protocol rounds.
  // beacon_emitted[i] == 1 means the beacon for node i's currently pending
  // action already went out, so the action itself runs next.
  std::vector<std::uint8_t> beacon_emitted(
      static_cast<std::size_t>(config.num_active), 0);

  std::int64_t round = 0;
  std::int64_t stall_streak = 0;
  bool aborted = false;
  // True iff the run hit max_rounds inside a between-epoch backoff pause
  // (folded into timed_out below; the round loop's own timeout leaves
  // alive nonempty and is detected the historical way).
  bool out_of_rounds = false;

  // Shared accounting for every resolved round, protocol and fabricated
  // alike: totals, trace, solved-detection, round advance.
  const auto account_round = [&](const mac::RoundSummary& summary) {
    result.total_transmissions += summary.total_transmissions;
    result.adv_jams_spent += summary.adv_jams;
    result.adv_jams_effective += summary.adv_jams_effective;
    if (config.record_trace) {
      RoundTrace rt;
      rt.round = round;
      for (const mac::ChannelId ch : resolver.touched_channels()) {
        const mac::ChannelActivity& act = resolver.ActivityOf(ch);
        rt.events.push_back(
            ChannelTraceEvent{ch, act.transmitters, act.listeners});
      }
      result.trace.push_back(std::move(rt));
    }
    if (summary.primary_lone_delivered) {
      if (!result.solved) {
        result.solved = true;
        result.solved_round = round;
      }
      result.all_solved_rounds.push_back(round);
    }
    ++round;
  };

  // One engine-fabricated round. The adversary plans and observes it like
  // any protocol round (backoff silence is a honeypot: a reactive jammer
  // cannot tell it from an all-listen round), but crash draws are skipped
  // and no coroutine advances — node state is frozen while the engine
  // holds the floor. `winner` >= 0 fabricates a confirmation echo (the
  // candidate retransmits its message on the primary channel, every other
  // live node listens there); -1 fabricates an all-idle backoff round.
  // Returns the round summary so the call sites can feed the adaptive
  // policy and the echo/backoff spend breakdown.
  const auto fabricated_round = [&](std::int32_t winner) -> mac::RoundSummary {
    if (config.record_active_counts) {
      result.active_counts.push_back(
          static_cast<std::int64_t>(alive.size()));
    }
    fab_actions.assign(static_cast<std::size_t>(config.num_active),
                       mac::Action::Idle());
    if (winner >= 0) {
      for (const NodeId idx : alive) {
        fab_actions[static_cast<std::size_t>(idx)] =
            mac::Action::Listen(mac::kPrimaryChannel);
      }
      fab_actions[static_cast<std::size_t>(winner)] = mac::Action::Transmit(
          mac::kPrimaryChannel,
          actions[static_cast<std::size_t>(winner)].message);
      ++node_tx[static_cast<std::size_t>(winner)];
    }
    const std::span<const mac::ChannelId> adv_jams =
        adversary.PlanRound(round, config.channels);
    const mac::RoundSummary summary =
        resolver.Resolve(fab_actions, fab_feedback, fault_ptr, adv_jams);
    adversary.ObserveRound(resolver, round);
    account_round(summary);
    return summary;
  };

  while (true) {  // one iteration per robust epoch (single pass when off)
    // Bounded exponential backoff before every retry epoch (epoch 0 starts
    // immediately). All-idle rounds: the protocol is silent, but the
    // adversary still plans and observes — and every reactive strategy
    // falls back to camping the primary channel on silence, so the pause
    // drains its budget.
    for (std::int64_t pause = epochs.PauseRounds();
         pause > 0 && round < config.max_rounds; --pause) {
      const mac::RoundSummary pause_summary = fabricated_round(-1);
      ++result.backoff_rounds;
      result.adv_jams_backoff += pause_summary.adv_jams;
      epochs.NoteBackoffRound(pause_summary.adv_jams);
    }
    if (round >= config.max_rounds) {
      out_of_rounds = true;
      break;
    }

    // (Re)build node state for this epoch. Epoch 0 uses the unsalted seed
    // — byte-for-byte the historical construction — so a wrapped pristine
    // run stays bit-identical to an unwrapped one. Later epochs re-salt
    // every per-node stream; unique IDs persist (sampled once above) and
    // crashed slots hold finished placeholder tasks.
    const std::uint64_t epoch_seed = epochs.SeedFor(config.seed);
    contexts.clear();
    tasks.clear();
    alive.clear();
    for (NodeId i = 0; i < config.num_active; ++i) {
      contexts.emplace_back(
          i, population, config.num_active, config.channels,
          unique_ids[static_cast<std::size_t>(i)],
          support::RandomSource::ForStream(
              epoch_seed, static_cast<std::uint64_t>(i) + 1, config.rng));
    }
    for (NodeId i = 0; i < config.num_active; ++i) {
      if (crashed[static_cast<std::size_t>(i)]) {
        tasks.emplace_back();
        continue;
      }
      tasks.push_back(protocol(contexts[static_cast<std::size_t>(i)]));
      CRMC_CHECK_MSG(tasks.back().Valid(), "protocol factory returned no task");
    }
    std::fill(actions.begin(), actions.end(), mac::Action::Idle());
    std::fill(beacon_emitted.begin(), beacon_emitted.end(), 0);
    stall_streak = 0;

    // Kick every coroutine to its first round request (or completion).
    for (NodeId i = 0; i < config.num_active; ++i) {
      if (crashed[static_cast<std::size_t>(i)]) continue;
      auto& task = tasks[static_cast<std::size_t>(i)];
      task.Resume();
      if (task.Done()) {
        task.RethrowIfFailed();
      } else {
        CRMC_CHECK_MSG(contexts[static_cast<std::size_t>(i)].has_pending_,
                       "protocol suspended without submitting a round action");
        alive.push_back(i);
      }
    }

    bool epoch_failed = false;
    while (!alive.empty() && round < config.max_rounds) {
      // Crash-stop sweep: one draw per alive node in ascending node order,
      // at the start of the round, before the node gets to act. A crashed
      // node's action slot is reset so a stale transmission cannot leak
      // into this round's resolution.
      if (injector.has_crashes()) {
        std::size_t write = 0;
        for (std::size_t read = 0; read < alive.size(); ++read) {
          const NodeId idx = alive[read];
          if (injector.DrawCrash()) {
            crashed[static_cast<std::size_t>(idx)] = 1;
            actions[static_cast<std::size_t>(idx)] = mac::Action::Idle();
          } else {
            alive[write++] = idx;
          }
        }
        alive.resize(write);
        if (alive.empty()) break;
      }
      if (config.record_active_counts) {
        result.active_counts.push_back(
            static_cast<std::int64_t>(alive.size()));
      }

      // Idle out slots owned by finished nodes, then collect live actions.
      // (Finished slots keep Action::Idle from initialization or from the
      // explicit reset below.)
      for (const NodeId idx : alive) {
        const auto s = static_cast<std::size_t>(idx);
        NodeContext& ctx = contexts[s];
        if (ctx.auto_beacon_ && !beacon_emitted[s]) {
          actions[s] = mac::Action::Transmit(mac::kPrimaryChannel);
          beacon_emitted[s] = 1;  // the held action runs next round
          continue;
        }
        actions[s] = ctx.pending_action_;
        ctx.has_pending_ = false;
        beacon_emitted[s] = 0;
      }

      for (const NodeId idx : alive) {
        const auto s = static_cast<std::size_t>(idx);
        if (actions[s].channel != mac::kIdleChannel && actions[s].transmit) {
          ++node_tx[s];
        }
      }

      // Plan this round's adversary jams from rounds < round only (the
      // observation recorded after the previous Resolve) — jamming is a bet
      // on where activity will land, never a reaction to it.
      const std::span<const mac::ChannelId> adv_jams =
          adversary.PlanRound(round, config.channels);
      const mac::RoundSummary summary =
          resolver.Resolve(actions, feedback, fault_ptr, adv_jams);
      adversary.ObserveRound(resolver, round);
      account_round(summary);
      epochs.CountRound();

      // Delivery confirmation: exactly one primary-channel transmitter
      // whose message was suppressed is a *candidate* — insert echo rounds
      // until one delivers or attempts run out. A delivered candidate needs
      // no echo (strong CD already acked it: the transmitter observed its
      // own kMessage), and a delivered echo is itself the solving lone
      // delivery.
      if (epochs.enabled() && !result.solved &&
          summary.primary_transmitters == 1 &&
          !summary.primary_lone_delivered) {
        const std::int32_t winner = robust::FindPrimaryWinner(actions);
        CRMC_CHECK(winner >= 0);
        epochs.NoteCandidate();
        // The loop bound is re-evaluated after every echo: under the
        // adaptive policy a suppressed echo raises the quorum, so the
        // exchange escalates in place until an echo delivers or
        // kMaxConfirmQuorum caps it.
        for (std::int32_t attempt = 0;
             attempt < epochs.confirm_attempts() &&
             round < config.max_rounds && !result.solved;
             ++attempt) {
          const mac::RoundSummary echo = fabricated_round(winner);
          ++result.confirm_rounds;
          result.adv_jams_echo += echo.adv_jams;
          epochs.NoteEchoRound(echo.primary_lone_delivered, echo.adv_jams);
          epochs.CountRound();
        }
      }
      if (result.solved && config.stop_when_solved) break;

      // Deliver feedback and advance every live coroutine to its next round
      // request (or completion). A node that spent this round on an engine-
      // issued beacon is not resumed: its protocol action is still pending.
      // When faults are active, a ProtocolAssumptionViolation raised by a
      // protocol fed fault-corrupted feedback aborts the run gracefully
      // instead of propagating (the model guarantee it checks really was
      // broken — by the adversary, not by a bug); under the robust layer
      // the violation instead fails the epoch and retries.
      const std::size_t alive_before_advance = alive.size();
      std::size_t write = 0;
      try {
        for (std::size_t read = 0; read < alive.size(); ++read) {
          const NodeId idx = alive[read];
          const auto s = static_cast<std::size_t>(idx);
          NodeContext& ctx = contexts[s];
          ctx.round_ = round;
          if (beacon_emitted[s]) {
            alive[write++] = idx;  // beacon round: protocol runs next round
            continue;
          }
          ctx.feedback_ = feedback[s];
          CRMC_CHECK(ctx.resume_point_);
          ctx.resume_point_.resume();
          auto& task = tasks[s];
          if (task.Done()) {
            task.RethrowIfFailed();
            actions[s] = mac::Action::Idle();
          } else {
            CRMC_CHECK_MSG(
                ctx.has_pending_,
                "protocol suspended without submitting a round action");
            alive[write++] = idx;
          }
        }
      } catch (const support::ProtocolAssumptionViolation&) {
        // Graceful abort only when some adversarial layer really did break
        // the model guarantee the protocol checks — oblivious faults or an
        // adaptive jammer. Otherwise it is a bug and must propagate.
        if (!injector.active() && !adversary.active()) throw;
        if (epochs.CanRetry()) {
          epoch_failed = true;  // retry instead of aborting
          break;
        }
        result.assumption_violated = true;
        aborted = true;
        break;
      }
      alive.resize(write);
      // Livelock watchdog: a round made progress iff some channel delivered
      // a lone message or some node terminated. (Crashes are not progress.)
      const bool progress =
          summary.lone_deliveries > 0 || write < alive_before_advance;
      stall_streak = progress ? 0 : stall_streak + 1;

      // Phase watchdogs: a jammed stage restarts the epoch instead of
      // stalling to max_rounds. The final permitted epoch runs to its
      // natural end (CanRetry gates the check), preserving the historical
      // timeout/wedge diagnostics when retries are exhausted.
      if (!result.solved && epochs.CanRetry() &&
          epochs.WatchdogExpired(stall_streak)) {
        epoch_failed = true;
        break;
      }
    }

    // Deluded exit: every node terminated (or crashed) without a confirmed
    // delivery — the silent failure E23 measures. Retry iff someone is
    // left to restart.
    if (!epoch_failed && !aborted && !result.solved && alive.empty() &&
        epochs.CanRetry()) {
      for (NodeId i = 0; i < config.num_active; ++i) {
        if (!crashed[static_cast<std::size_t>(i)]) {
          epoch_failed = true;
          break;
        }
      }
    }
    if (!epoch_failed || round >= config.max_rounds) break;
    epochs.BeginNextEpoch();
    // A watchdog-failed epoch leaves mid-flight nodes behind; they are
    // discarded (the backoff pause and the next epoch rebuild see an empty
    // network, not half-restarted stragglers).
    alive.clear();
  }

  result.rounds_executed = round;
  const mac::FaultCounters& fc = injector.counters();
  result.jams_injected = fc.jams;
  result.erasures_injected = fc.erasures;
  result.cd_flips_injected = fc.cd_flips;
  result.faults_injected = fc.Total();
  result.crashed_nodes = static_cast<std::int32_t>(fc.crashes);
  result.stall_rounds = stall_streak;
  result.all_terminated =
      !aborted && !out_of_rounds && alive.empty() && fc.crashes == 0;
  for (const std::int64_t tx : node_tx) {
    result.max_node_transmissions =
        std::max(result.max_node_transmissions, tx);
    result.mean_node_transmissions += static_cast<double>(tx);
  }
  result.mean_node_transmissions /= static_cast<double>(config.num_active);
  if (config.record_node_transmissions) {
    result.node_transmissions = std::move(node_tx);
  }
  result.timed_out = (!alive.empty() && round >= config.max_rounds &&
                      !(result.solved && config.stop_when_solved)) ||
                     out_of_rounds;
  result.wedged =
      result.timed_out && stall_streak * 2 >= result.rounds_executed;
  result.adv_rounds_held = adversary.rounds_held();
  if (epochs.enabled()) {
    result.epochs_used = epochs.epoch() + 1;
    result.retries = epochs.epoch();
    result.confirmed = result.solved;
    result.adaptive_confirm_extra = epochs.adaptive_confirm_extra();
    result.adaptive_backoff_trimmed = epochs.adaptive_backoff_trimmed();
    result.confirm_quorum_peak = epochs.confirm_quorum_peak();
  }

  for (const NodeContext& ctx : contexts) {
    if (ctx.phase_marks().empty() && ctx.metrics().empty()) continue;
    NodeReport report;
    report.index = ctx.index();
    report.finished =
        tasks[static_cast<std::size_t>(ctx.index())].Done();
    report.phase_marks = ctx.phase_marks();
    report.metrics = ctx.metrics();
    result.node_reports.push_back(std::move(report));
  }
  return result;
}

}  // namespace crmc::sim
