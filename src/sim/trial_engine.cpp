#include "sim/trial_engine.h"

#include <algorithm>
#include <stdexcept>

#include "simd/kernels.h"
#include "support/assert.h"

namespace crmc::sim {

TrialBatchEngine::TrialBatchEngine(std::int32_t lane_width)
    : lane_width_(lane_width) {
  CRMC_REQUIRE_MSG(lane_width >= 1, "lane_width must be >= 1, got "
                                        << lane_width);
}

void TrialBatchEngine::set_fused_rounds(bool enabled) {
  fused_rounds_enabled_ = enabled;
  fallback_.set_fused_rounds(enabled);
}

void TrialBatchEngine::Run(const EngineConfig& config, StepProgram& program,
                           std::span<const std::uint64_t> seeds,
                           std::span<RunResult> results) {
  ValidateEngineConfig(config);
  CRMC_REQUIRE(seeds.size() == results.size());
  if (config.rng != support::RngKind::kPhilox) {
    throw std::invalid_argument(
        "trial-parallel executor requires rng == philox: lockstep lanes "
        "need counter-based streams, xoshiro draws are sequential by "
        "construction");
  }
  if (seeds.empty()) return;

  if (trial_source_ != &program) {
    trial_ = program.MakeTrialProgram();
    trial_source_ = &program;
  }

  // The lane-fusible gate: BatchEngine's fast_rounds conditions (feedback
  // must be a pure function of the emitted actions, and nothing may need
  // the materialized resolver) plus a trial program to run the lanes.
  // Everything else runs per trial on the fallback engine — bit-exact, one
  // lane at a time. Any adversary kind forces fallback: even a plan that
  // never fires advances adversary/ledger state the lane path does not
  // model. record_active_counts is per-round instrumentation the retiring
  // lane loop does not keep.
  const bool lane_fusible =
      trial_ != nullptr && fused_rounds_enabled_ &&
      config.cd_model == mac::CdModel::kStrong && !config.record_trace &&
      !config.record_active_counts && !config.robust.enabled &&
      !EffectiveFaultSpec(config).Any() &&
      config.adversary.kind == adversary::Kind::kNone;
  if (!lane_fusible) {
    EngineConfig solo = config;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      solo.seed = seeds[i];
      results[i] = fallback_.Run(solo, program);
    }
    return;
  }

  for (std::size_t offset = 0; offset < seeds.size();
       offset += static_cast<std::size_t>(lane_width_)) {
    const std::size_t w = std::min(static_cast<std::size_t>(lane_width_),
                                   seeds.size() - offset);
    RunLaneChunk(config, program, *trial_, seeds.subspan(offset, w),
                 results.subspan(offset, w));
  }
}

void TrialBatchEngine::RunFallback(const EngineConfig& config,
                                   StepProgram& program,
                                   std::span<const std::uint64_t> seeds,
                                   std::span<RunResult> results,
                                   std::span<const std::int32_t> lanes) {
  EngineConfig solo = config;
  for (const std::int32_t lane : lanes) {
    const auto i = static_cast<std::size_t>(lane);
    solo.seed = seeds[i];
    results[i] = fallback_.Run(solo, program);
  }
}

void TrialBatchEngine::RunLaneChunk(const EngineConfig& config,
                                    StepProgram& program, TrialProgram& trial,
                                    std::span<const std::uint64_t> seeds,
                                    std::span<RunResult> results) {
  const std::int64_t population = ValidateEngineConfig(config);
  const auto n = static_cast<std::size_t>(config.num_active);
  const auto w = seeds.size();

  TrialContext ctx;
  ctx.population = population;
  ctx.num_active = config.num_active;
  ctx.channels = config.channels;
  ctx.round = 0;

  // One philox stream per (lane, node) plane slot; node `node` of lane
  // `lane` gets exactly the stream the coroutine engine would hand it for
  // seed seeds[lane] (ForStream(seed, node + 1)). The separate ID-sampling
  // stream (0x1d5eed) is not materialized: no trial program consumes
  // sampled IDs and no result field depends on that stream.
  rng_.resize(w * n);
  for (std::size_t lane = 0; lane < w; ++lane) {
    simd::SeedStreams(seeds[lane], 1, config.rng,
                      std::span<support::RandomSource>(rng_).subspan(
                          lane * n, n));
  }
  ctx.rng = rng_;

  fallback_lanes_.clear();
  if (!trial.Reset(ctx, static_cast<std::int32_t>(w))) {
    live_.resize(w);
    for (std::size_t lane = 0; lane < w; ++lane) {
      live_[lane] = static_cast<std::int32_t>(lane);
    }
    RunFallback(config, program, seeds, results, live_);
    return;
  }

  node_tx_.assign(w * n, 0);
  stall_.assign(w, 0);
  live_.resize(w);
  for (std::size_t lane = 0; lane < w; ++lane) {
    live_[lane] = static_cast<std::int32_t>(lane);
    results[lane] = RunResult{};
  }

  // Finalizes one retired lane's result. Every executed lane round is a
  // fused round; the energy summaries mirror BatchEngine's epilogue.
  const auto finalize = [&](std::int32_t lane, std::int64_t rounds,
                            bool terminated, bool timed_out) {
    RunResult& r = results[static_cast<std::size_t>(lane)];
    r.rounds_executed = rounds;
    r.fused_rounds = rounds;
    r.all_terminated = terminated;
    r.stall_rounds = stall_[static_cast<std::size_t>(lane)];
    const std::size_t base = static_cast<std::size_t>(lane) * n;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t tx = node_tx_[base + j];
      r.max_node_transmissions = std::max(r.max_node_transmissions, tx);
      r.mean_node_transmissions += static_cast<double>(tx);
    }
    r.mean_node_transmissions /= static_cast<double>(config.num_active);
    if (config.record_node_transmissions) {
      r.node_transmissions.assign(
          node_tx_.begin() + static_cast<std::ptrdiff_t>(base),
          node_tx_.begin() + static_cast<std::ptrdiff_t>(base + n));
    }
    r.timed_out = timed_out;
    r.wedged = timed_out && r.stall_rounds * 2 >= r.rounds_executed;
  };

  std::int64_t round = 0;
  while (!live_.empty() && round < config.max_rounds) {
    ctx.round = round;
    effects_.assign(live_.size(), LaneEffects{});
    trial.Round(ctx, live_, node_tx_, effects_);

    drop_.assign(live_.size(), 0);
    for (std::size_t k = 0; k < live_.size(); ++k) {
      const std::int32_t lane = live_[k];
      const LaneEffects& fx = effects_[k];
      if (fx.diverged) {
        drop_[k] = 1;
        fallback_lanes_.push_back(lane);
        continue;
      }
      RunResult& r = results[static_cast<std::size_t>(lane)];
      r.total_transmissions += fx.transmissions;
      if (fx.primary_lone_delivered) {
        if (!r.solved) {
          r.solved = true;
          r.solved_round = round;
        }
        r.all_solved_rounds.push_back(round);
      }
      // Retirement order mirrors BatchEngine's fused path: the solving
      // round ends the run *before* the alive set is compacted (so
      // all_terminated stays false and the stall streak keeps its
      // pre-round value), and only then do finished lanes terminate
      // (post-compaction: alive empty, progress resets the streak).
      if (r.solved && config.stop_when_solved) {
        drop_[k] = 1;
        finalize(lane, round + 1, /*terminated=*/false, /*timed_out=*/false);
      } else if (fx.finished) {
        drop_[k] = 1;
        stall_[static_cast<std::size_t>(lane)] = 0;
        finalize(lane, round + 1, /*terminated=*/true, /*timed_out=*/false);
      } else {
        stall_[static_cast<std::size_t>(lane)] =
            fx.lone_deliveries > 0
                ? 0
                : stall_[static_cast<std::size_t>(lane)] + 1;
      }
    }
    live_.resize(simd::CompactKeep(live_, drop_));
    ++round;
  }

  // Lanes still live hit max_rounds. timed_out is unconditional here: the
  // stop_when_solved carve-out retired its lanes above, and a solved
  // !stop_when_solved lane that never terminated times out exactly as it
  // would per-trial.
  for (const std::int32_t lane : live_) {
    finalize(lane, round, /*terminated=*/false, /*timed_out=*/true);
  }

  if (!fallback_lanes_.empty()) {
    RunFallback(config, program, seeds, results, fallback_lanes_);
  }
}

}  // namespace crmc::sim
