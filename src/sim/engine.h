// The lockstep round executor.
//
// Engine::Run simulates one execution: it activates `num_active` nodes (out
// of a population of `population` possible nodes), hands each a protocol
// coroutine, and advances synchronous rounds until the protocol terminates
// everywhere, the problem is solved (optional), or a round limit is hit.
//
// Solved-detection is the model-level ground truth from Section 3 of the
// paper: the run is solved in the first round in which *exactly one* node
// transmits on the primary channel — and, when fault injection is active,
// that lone transmission is actually delivered (not jammed or erased) —
// whether or not the protocol knows it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "mac/channel.h"
#include "mac/faults.h"
#include "robust/robust.h"
#include "sim/node_context.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "support/rng.h"
#include "support/small_vector.h"

namespace crmc::sim {

// Builds the behaviour of one activated node.
using ProtocolFactory = std::function<ProtocolTask(NodeContext&)>;

struct EngineConfig {
  // n: the w.h.p. parameter — the maximum number of nodes that might be
  // activated. Defaults to num_active when left at 0.
  std::int64_t population = 0;
  // |A|: how many nodes are actually activated.
  std::int32_t num_active = 0;
  // C: number of channels.
  std::int32_t channels = 1;
  // Master seed; the run is a pure function of this config.
  std::uint64_t seed = 1;
  // Hard stop (protocols like decay run until stopped).
  std::int64_t max_rounds = 4'000'000;
  // Stop as soon as contention resolution is solved (the usual metric).
  bool stop_when_solved = true;
  // Record the number of still-running nodes at the start of every round
  // (used by the Reduce-dynamics experiment; costs one int64 per round).
  bool record_active_counts = false;
  // Collision-detection capability (Section 3 assumes kStrong; the weaker
  // models serve the no-CD baselines and the CD-ablation experiment).
  mac::CdModel cd_model = mac::CdModel::kStrong;
  // Record per-round channel activity into RunResult::trace.
  bool record_trace = false;
  // Record per-node transmission counts into RunResult::node_transmissions
  // (the summary fields are filled either way).
  bool record_node_transmissions = false;
  // Adversarial fault injection (mac/faults.h). All rates default to zero,
  // in which case the run is bit-identical to one without a fault layer.
  mac::FaultSpec faults;
  // Adaptive (budgeted, reactive) jamming adversary (adversary/adversary.h).
  // kNone (the default) — and any budgeted kind with budget 0 — leaves the
  // run bit-identical to one without the adversary layer. kObliviousRate is
  // lowered onto the fault injector's jam stream (see EffectiveFaultSpec),
  // so it is bit-identical to the equivalent faults.jam_rate run; combining
  // an adversary with an explicit faults.jam_rate is a config error.
  adversary::AdversarySpec adversary;
  // Robust execution layer (robust/robust.h): delivery-confirmation echo
  // rounds, epoch retry with bounded exponential backoff, and phase
  // watchdogs. Disabled (the default) leaves the run bit-identical to one
  // without the layer; enabled over a pristine run likewise (epoch 0 uses
  // the unsalted seed and a delivered candidate confirms at zero cost).
  robust::RobustSpec robust;
  // Core generator for the per-node (and ID-sampling) streams. kXoshiro
  // keeps the historical bit streams; kPhilox is counter-based and lets the
  // batch engine's SIMD kernels (src/simd/) vectorize the draws. Either
  // kind, both engines stay bit-exact against each other — the parity
  // suite runs in both modes. Fault-injection streams are unaffected.
  support::RngKind rng = support::RngKind::kXoshiro;
};

// Validates `config` (distinct std::invalid_argument message per violated
// constraint, fault rates included) and returns the effective population
// (population == 0 defaults to num_active). Shared by both engines so their
// rejection behaviour cannot drift.
std::int64_t ValidateEngineConfig(const EngineConfig& config);

// The fault spec the injector actually runs: config.faults, with an
// oblivious_rate adversary lowered onto jam_rate. Lowering — rather than
// driving oblivious jams through AdversaryRun — keeps such runs bit-
// identical to the equivalent --jam-rate runs (the resolver interleaves jam
// and erasure draws on one stream; an external jam source could not
// replicate that sequence). Shared by both engines.
mac::FaultSpec EffectiveFaultSpec(const EngineConfig& config);

// Instrumentation emitted by one node (only nodes that produced any).
struct NodeReport {
  NodeId index = 0;
  bool finished = false;
  std::map<std::string, std::int64_t> phase_marks;
  std::vector<std::pair<std::string, std::int64_t>> metrics;
};

struct RunResult {
  bool solved = false;
  // 0-based index of the first round with a lone primary-channel
  // transmitter; -1 if never solved.
  std::int64_t solved_round = -1;
  // Every round with a lone primary-channel transmitter, in order. For
  // one-shot contention resolution only the first matters; repeated-use
  // protocols (k-selection) solve once per instance. Inline storage keeps
  // the common one-entry case malloc-free (support/small_vector.h).
  support::SmallVector<std::int64_t, 2> all_solved_rounds;
  // Rounds actually executed before the run stopped.
  std::int64_t rounds_executed = 0;
  // True if the run stopped because max_rounds was reached.
  bool timed_out = false;
  // True if every protocol coroutine ran to completion.
  bool all_terminated = false;
  std::int64_t total_transmissions = 0;
  // Rounds executed on a fused fast path (StepProgram::FastRound in
  // BatchEngine, lockstep lane rounds in TrialBatchEngine). Executor
  // diagnostics, not model output: the coroutine engine materializes every
  // round and always leaves this 0, so it is excluded from cross-engine
  // parity comparisons. The jammed-run regression test uses it to pin down
  // that a perturbed run re-enters the fused path once lockstep restores.
  std::int64_t fused_rounds = 0;
  // Energy accounting: the largest and mean number of transmissions any
  // single node performed (the radio-network energy metric).
  std::int64_t max_node_transmissions = 0;
  double mean_node_transmissions = 0.0;
  // ---- Fault-layer accounting (all zero on pristine runs) ----
  // Faults actually injected, by kind and in total.
  std::int64_t jams_injected = 0;
  std::int64_t erasures_injected = 0;
  std::int64_t cd_flips_injected = 0;
  std::int64_t faults_injected = 0;
  // Nodes removed by crash-stop failures (they never terminate, so
  // all_terminated is false whenever this is nonzero).
  std::int32_t crashed_nodes = 0;
  // ---- Adaptive-adversary accounting (adversary/adversary.h) ----
  // Budget the adversary spent (channel-rounds jammed) and how many of
  // those jams suppressed a lone delivery. Zero for kNone and for
  // kObliviousRate (whose jams land in jams_injected above instead).
  std::int64_t adv_jams_spent = 0;
  std::int64_t adv_jams_effective = 0;
  // Hold/spend breakdown. rounds_held counts rounds in which a budgeted
  // adversary had a positive allowance but planned no jam — the deliberate
  // patience of the phase-tracking/lookahead/learning strategies. The
  // jams_echo/jams_backoff split says where spend landed when the robust
  // layer fabricated the round: confirmation echoes (forced spend — every
  // echo the adversary declines to jam confirms the claim) vs backoff
  // honeypots (wasted spend — nothing was there to suppress). Both zero
  // without the robust layer.
  std::int64_t adv_rounds_held = 0;
  std::int64_t adv_jams_echo = 0;
  std::int64_t adv_jams_backoff = 0;
  // Livelock watchdog: length of the trailing streak of rounds in which
  // nothing happened — no channel delivered a lone message and no node
  // terminated. A Las Vegas protocol fed corrupted feedback can spin
  // forever; this distinguishes "still grinding toward a solution" from
  // "wedged" without waiting out max_rounds by eye.
  std::int64_t stall_rounds = 0;
  // True iff the run timed out AND at least half of it was trailing stall:
  // the protocol had stopped making any observable progress.
  bool wedged = false;
  // ---- Robust-execution accounting (robust/robust.h) ----
  // All zero/false when the robust layer is disabled. node_reports come
  // from the final epoch's nodes (earlier epochs' protocol state is
  // discarded on restart).
  // Epochs entered (>= 1 whenever the layer ran).
  std::int32_t epochs_used = 0;
  // Epoch restarts taken (= epochs_used - 1, kept explicit for reporting).
  std::int32_t retries = 0;
  // Engine-inserted confirmation echo rounds actually executed.
  std::int64_t confirm_rounds = 0;
  // Engine-inserted all-idle backoff rounds between epochs.
  std::int64_t backoff_rounds = 0;
  // True iff the run solved under the robust layer's confirmation
  // contract: the solving lone primary delivery either acked directly
  // (strong-CD kMessage feedback to the winner) or was re-established by a
  // confirmation echo round. With the layer on, every solve is confirmed;
  // the flag distinguishes robust-confirmed solves in mixed reporting.
  bool confirmed = false;
  // ---- Adaptive-policy accounting (robust::PolicyKind::kAdaptive; all
  // zero under the static policy) ----
  // Echo rounds executed beyond the static confirm_attempts schedule (the
  // quorum escalation's extra spend-forcing rounds).
  std::int64_t adaptive_confirm_extra = 0;
  // Backoff honeypot rounds trimmed relative to the static schedule (the
  // pause rounds NOT spent because the adversary was not feeding on them).
  std::int64_t adaptive_backoff_trimmed = 0;
  // Largest confirmation quorum that was in force during any exchange.
  std::int32_t confirm_quorum_peak = 0;
  // True iff a protocol raised support::ProtocolAssumptionViolation while
  // faults were active (e.g. a strong-CD protocol observing the
  // "impossible" feedback an erasure produces) and the run was aborted
  // gracefully. Without active faults the exception propagates as before.
  bool assumption_violated = false;
  std::vector<std::int64_t> active_counts;  // iff record_active_counts
  std::vector<std::int64_t> node_transmissions;  // iff requested
  std::vector<RoundTrace> trace;                 // iff record_trace

  std::vector<NodeReport> node_reports;

  // Largest round recorded for `name` across nodes, or -1 if nobody
  // marked it. (Phase boundaries in the paper's algorithm are reached by
  // all surviving nodes in the same round; taking the max is robust to
  // nodes that went inactive earlier.)
  std::int64_t LastPhaseMark(const std::string& name) const;
  // All values recorded under `name`, in node order.
  std::vector<std::int64_t> MetricValues(const std::string& name) const;

 private:
  // Both accessors scan every node_report per call; experiments query a
  // handful of names over thousands of nodes, so once node_reports is
  // large the accessors build this name-keyed index in one pass and answer
  // from it. shared_ptr keeps RunResult cheaply copyable; the index is
  // derived data, safe to share between copies (node_reports is only
  // written while the engine builds the result, before any accessor call).
  struct ReportIndex {
    std::map<std::string, std::int64_t> last_phase_marks;
    std::map<std::string, std::vector<std::int64_t>> metric_values;
  };
  const ReportIndex& Index() const;
  mutable std::shared_ptr<const ReportIndex> report_index_;
};

class Engine {
 public:
  // Runs one execution. Throws std::invalid_argument on bad config and
  // propagates exceptions escaping protocol coroutines.
  static RunResult Run(const EngineConfig& config,
                       const ProtocolFactory& protocol);
};

}  // namespace crmc::sim
