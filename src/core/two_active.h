// The TwoActive algorithm (Section 4 of the paper).
//
// Solves contention resolution for the restricted case |A| = 2 in
// O(log n / log C + log log n) rounds w.h.p. — exactly matching the lower
// bound of [Newport, DISC 2014]. Two steps:
//
//   Step 1 (ID reduction): both nodes repeatedly pick a uniform channel in
//   [C'] and transmit; strong collision detection tells each whether it was
//   alone. They stop — necessarily in the same round — once they hold
//   distinct channels, whose labels become their new IDs.
//
//   Step 2 (SplitCheck): binary search over the lg C' levels of the
//   canonical binary tree with C' leaves for the first level at which the
//   two root-to-leaf paths diverge. At level m both nodes transmit on
//   channel ceil(ID / 2^(lg C' - m)); a collision means the paths still
//   share that level's tree node. At the divergence level exactly one node
//   is a left child of the common parent: it wins and transmits alone on
//   the primary channel.
//
// For C' = 1 (a single usable channel) the algorithm degrades, as the paper
// notes it must, to a coin-flipping duel on the primary channel: Theta(log n)
// w.h.p., which is optimal for one channel.
#pragma once

#include "core/params.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

// The protocol body for one node. Behaviour is specified only for runs with
// exactly two activated nodes.
sim::Task<void> TwoActiveProtocol(sim::NodeContext& ctx,
                                  TwoActiveParams params);

// Factory for Engine::Run.
sim::ProtocolFactory MakeTwoActive(TwoActiveParams params = {});

}  // namespace crmc::core
