// Estimating |A|: how many nodes are actually active.
//
// Contention resolution's sibling problem in the multiple-access literature
// (and the engine behind expected-time algorithms like Willard's): produce
// a constant-factor estimate of the number of active nodes, agreed by all
// of them. Two estimators in the paper's model:
//
//   Geometric (multichannel): every node samples a geometric level
//   g (P(g = i) ~ 2^-i) over L = min(C, lg n + 1) channels and transmits
//   on channel g. The highest "loud" level concentrates around lg |A|.
//   A binary search over levels — one round per probe, because everyone
//   not assigned to the probed level listens there, so verdicts are global
//   — pins it down in O(log L) = O(loglog n) rounds per sample. Several
//   samples are combined by a (globally agreed) median.
//
//   Density (single channel): Willard-style binary search over the
//   transmission-probability exponent d: collisions push d up, silence
//   pulls it down, and the final d estimates lg |A|. O(loglog n) rounds
//   per sample.
//
// Both return the *exponent*: the estimate of |A| is 2^exponent. Estimates
// are constant-factor-accurate with constant probability per sample;
// medians over `samples` sharpen the failure probability exponentially.
// All active nodes return the same exponent in the same round.
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

struct EstimationParams {
  // Independent samples combined by median (odd values avoid ties).
  std::int32_t samples = 5;
};

// Multichannel geometric estimator; requires C >= 2 (with fewer levels the
// estimate saturates at lg C — documented, not an error).
sim::Task<std::int32_t> RunGeometricEstimate(sim::NodeContext& ctx,
                                             EstimationParams params);

// Single-channel density estimator.
sim::Task<std::int32_t> RunDensityEstimate(sim::NodeContext& ctx,
                                           EstimationParams params);

// Standalone protocols for tests/benches: run the estimator and record the
// exponent as metric "estimate_log2".
sim::ProtocolFactory MakeGeometricEstimateOnly(EstimationParams params = {});
sim::ProtocolFactory MakeDensityEstimateOnly(EstimationParams params = {});

}  // namespace crmc::core
