#include "core/split_primitives.h"

#include "mac/channel.h"
#include "support/assert.h"
#include "support/bits.h"

namespace crmc::core {

using mac::Feedback;
using mac::Message;
using sim::NodeContext;
using sim::Task;
using tree::ChannelTree;

Task<bool> CheckLevel(NodeContext& ctx, const ChannelTree& tr,
                      std::int32_t level, std::int32_t leaf) {
  CRMC_CHECK(level >= 1 && level <= tr.height());
  // Round 1: probe — one member per cohort broadcasts on its own
  // level-`level` ancestor's channel; cohorts sharing the ancestor collide.
  const mac::ChannelId ancestor_channel =
      tr.ChannelOf(tr.AncestorAtLevel(leaf, level));
  const Feedback probe = co_await ctx.Transmit(ancestor_channel);
  CRMC_PROTO_CHECK(!probe.Silence());
  if (probe.Collision()) {
    // Round 2: spread the verdict on the level's row channel so members
    // that probed a private ancestor also learn of the collision.
    co_await ctx.Transmit(tr.RowChannel(level));
    co_return true;
  }
  const Feedback row = co_await ctx.Listen(tr.RowChannel(level));
  co_return !row.Silence();
}

Task<std::int32_t> SplitSearch(NodeContext& ctx, const ChannelTree& tr,
                               CohortView view, bool force_binary,
                               std::int64_t* refinements_out) {
  CRMC_REQUIRE(view.cohort_size >= 1);
  CRMC_REQUIRE(view.cid >= 1 && view.cid <= view.cohort_size);
  CRMC_REQUIRE(view.cnode_level >= 0 && view.cnode_level <= tr.height());

  std::int32_t l_min = 0;
  std::int32_t l_max = view.cnode_level;
  std::int64_t refinements = 0;
  while (l_max > l_min + 1) {
    ++refinements;
    const std::int32_t range = l_max - l_min;
    const std::int32_t arity = force_binary ? 2 : view.cohort_size + 1;
    const auto probe_dist =
        static_cast<std::int32_t>(support::CeilDiv(range, arity));
    // k = smallest value with l_min + k * probe_dist >= l_max; boundary
    // levels l_0 = l_min < l_1 < ... < l_k = l_max, with
    // l_i = l_min + i * probe_dist for i < k.
    const auto k =
        static_cast<std::int32_t>(support::CeilDiv(range, probe_dist));
    CRMC_CHECK(k >= 2 && k <= arity);
    auto boundary_level = [&](std::int32_t i) {
      return i >= k ? l_max : l_min + i * probe_dist;
    };

    // Rounds 1-4: members with cID < k probe their two boundary levels;
    // everyone else idles to stay in lockstep.
    bool first_collides = false;
    bool second_collides = false;
    if (view.cid < k) {
      first_collides =
          co_await CheckLevel(ctx, tr, boundary_level(view.cid), view.leaf);
      second_collides = co_await CheckLevel(
          ctx, tr, boundary_level(view.cid + 1), view.leaf);
    } else {
      for (int r = 0; r < 4; ++r) co_await ctx.Sleep();
    }

    // Round 5: the unique member that witnessed the collision/no-collision
    // flip announces the surviving subrange on the cohort's own channel.
    const mac::ChannelId cnode_channel = tr.ChannelOf(view.cnode_heap);
    std::int32_t subrange;
    if (view.cid < k && view.cid == 1 && !first_collides) {
      const Feedback fb = co_await ctx.Transmit(cnode_channel, Message{0});
      CRMC_PROTO_CHECK_MSG(fb.MessageHeard(),
                           "two announcers in one cohort (subrange 0)");
      subrange = 0;
    } else if (view.cid < k && first_collides && !second_collides) {
      const Feedback fb = co_await ctx.Transmit(
          cnode_channel, Message{static_cast<std::uint64_t>(view.cid)});
      CRMC_PROTO_CHECK_MSG(
          fb.MessageHeard(),
          "two announcers in one cohort (subrange " << view.cid << ")");
      subrange = view.cid;
    } else {
      const Feedback fb = co_await ctx.Listen(cnode_channel);
      CRMC_PROTO_CHECK_MSG(fb.MessageHeard(),
                           "cohort announcement missing on channel "
                               << cnode_channel);
      subrange = static_cast<std::int32_t>(fb.message.payload);
    }
    CRMC_PROTO_CHECK(subrange >= 0 && subrange < k);
    // Compute both bounds before assigning: boundary_level reads l_min.
    const std::int32_t new_min = boundary_level(subrange);
    const std::int32_t new_max = boundary_level(subrange + 1);
    l_min = new_min;
    l_max = new_max;
  }
  if (refinements_out != nullptr) *refinements_out = refinements;
  co_return l_max;
}

}  // namespace crmc::core
