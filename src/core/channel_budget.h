// Normalization of the raw channel count C into the power-of-two budget the
// algorithms actually use.
//
// Section 4: "we assume C is a power of 2 (the strategies are easily
// modified to handle other values). We also assume C <= n" — for C > n the
// algorithm runs on the first n channels and no optimality is lost (the
// lower bound is Omega(log log n) there). We round down to a power of two
// and cap at a small multiple of the population.
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/bits.h"

namespace crmc::core {

// The number of channels TwoActive / the general algorithm's tree machinery
// will use: the largest power of two that is <= min(C, cap), where the cap
// is 2 * population rounded up to a power of two (so C <= n keeps all of
// its power-of-two budget). Always >= 1.
inline std::int32_t EffectiveChannels(std::int32_t channels,
                                      std::int64_t population) {
  const std::int64_t cap =
      2 * static_cast<std::int64_t>(
              support::CeilPow2(static_cast<std::uint64_t>(
                  std::max<std::int64_t>(population, 2))));
  const std::int64_t usable =
      std::min<std::int64_t>(static_cast<std::int64_t>(channels), cap);
  return static_cast<std::int32_t>(
      support::FloorPow2(static_cast<std::uint64_t>(std::max<std::int64_t>(
          usable, 1))));
}

}  // namespace crmc::core
