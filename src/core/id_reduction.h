// Step #2 of the general algorithm: IDReduction (Section 5.2).
//
// Starting from O(log n) active nodes, alternates *renaming* phases (a pair
// of rounds) with *reduction* phases (one knockout round) until renaming
// succeeds. Terminates in O(log n / log C) rounds w.h.p. (Theorem 6) with
// at most C'/2 survivors, each holding a distinct ID from [C'/2].
//
//   Renaming, round 1: every active node picks a channel uniformly from
//   [C'/2] and transmits; a node alone on its channel (it hears its own
//   message back — strong collision detection) adopts the channel label as
//   its unique ID.
//   Renaming, round 2: everyone converges on the primary channel; freshly
//   renamed nodes transmit. Any non-silence tells the whole active set that
//   renaming succeeded: renamed nodes proceed, the rest go inactive.
//   Reduction: transmit with probability 1/k on the primary channel
//   (k = max(2, sqrt(C)/knock_divisor)); if anyone transmitted, the
//   listeners go inactive.
//
// Note: if exactly one node renames, its confirmation broadcast is a lone
// transmission on the primary channel — contention resolution is solved on
// the spot. Likewise a lone reduction-round transmitter has solved the
// problem and is reported as kLeader.
#pragma once

#include <cstdint>

#include "core/params.h"
#include "core/reduce.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

struct IdReductionResult {
  StepOutcome outcome = StepOutcome::kInactive;
  // Valid iff outcome == kActive: the adopted unique ID in [1, C'/2].
  std::int32_t new_id = 0;
};

// Runs IDReduction on `effective_channels` (a power of two >= 4; the tree
// machinery downstream uses effective_channels/2 leaves). All nodes that
// return kActive do so in the same round, holding distinct IDs.
sim::Task<IdReductionResult> RunIdReduction(sim::NodeContext& ctx,
                                            std::int32_t effective_channels,
                                            IdReductionParams params);

// IDReduction as a standalone protocol for tests/benches: runs the step and
// records "idr_renamed" (phase mark) plus metric "idr_id" for survivors.
sim::ProtocolFactory MakeIdReductionOnly(IdReductionParams params = {});

}  // namespace crmc::core
