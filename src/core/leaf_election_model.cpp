#include "core/leaf_election_model.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/assert.h"
#include "tree/channel_tree.h"

namespace crmc::core {

LeafElectionPrediction PredictLeafElection(
    const std::vector<std::int32_t>& leaves, std::int32_t num_leaves) {
  const tree::ChannelTree tr(num_leaves);
  CRMC_REQUIRE(!leaves.empty());
  {
    std::set<std::int32_t> distinct(leaves.begin(), leaves.end());
    CRMC_REQUIRE_MSG(distinct.size() == leaves.size(),
                     "occupied leaves must be distinct");
  }

  struct Cohort {
    std::int32_t cnode_heap;
    std::int32_t leader_leaf;
  };
  std::vector<Cohort> cohorts;
  cohorts.reserve(leaves.size());
  for (const std::int32_t leaf : leaves) {
    cohorts.push_back(Cohort{tr.LeafHeapIndex(leaf), leaf});
  }
  std::int32_t level = tr.height();

  std::int64_t phase = 0;
  for (;;) {
    ++phase;
    if (cohorts.size() == 1) {
      return LeafElectionPrediction{cohorts.front().leader_leaf, phase};
    }

    // Smallest level at which all cohort ancestors are distinct. Cohort
    // nodes sit at `level`; the ancestor of heap index x at level l is
    // x >> (level - l).
    std::int32_t split = level;
    for (std::int32_t l = 1; l <= level; ++l) {
      std::set<std::int32_t> ancestors;
      bool distinct = true;
      for (const Cohort& c : cohorts) {
        if (!ancestors.insert(c.cnode_heap >> (level - l)).second) {
          distinct = false;
          break;
        }
      }
      if (distinct) {
        split = l;
        break;
      }
    }
    CRMC_CHECK(split >= 1);

    // Pair cohorts sharing a level-(split-1) parent; drop the unpaired.
    std::map<std::int32_t, std::vector<Cohort>> by_parent;
    for (const Cohort& c : cohorts) {
      by_parent[c.cnode_heap >> (level - (split - 1))].push_back(c);
    }
    std::vector<Cohort> next;
    for (auto& [parent, group] : by_parent) {
      if (group.size() < 2) continue;  // unpaired: inactive
      CRMC_CHECK_MSG(group.size() == 2,
                     "a parent one level below the all-distinct level can "
                     "host at most two cohorts");
      // The merged cohort's master is the left subtree's master.
      const std::int32_t a0 = group[0].cnode_heap >> (level - split);
      const Cohort& left = (a0 % 2 == 0) ? group[0] : group[1];
      next.push_back(Cohort{parent, left.leader_leaf});
    }
    CRMC_CHECK_MSG(!next.empty(), "at least one pair must form");
    cohorts = std::move(next);
    level = split - 1;
  }
}

}  // namespace crmc::core
