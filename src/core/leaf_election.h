// Step #3 of the general algorithm: LeafElection with coalescing cohorts
// (Section 5.3, Figure 3).
//
// Input: x <= L active nodes sitting at distinct leaves of the canonical
// binary tree with L leaves (L a power of two; the tree's 2L - 1 nodes are
// assigned channels by heap index, so the root *is* the primary channel).
// Deterministically elects a leader in O(log h * log log x) rounds, where
// h = lg L (Theorem 17).
//
// Each phase maintains Property 11: every active node belongs to a cohort;
// all cohorts have the same size cSize = 2^(i-1); members hold distinct
// cIDs in [cSize]; each cohort's cNode is the LCA of its members and all
// cNodes are distinct tree nodes on one common level.
//
//   1. Cohort masters (cID = 1) broadcast on the root channel. A lone
//      broadcast means one cohort is left: its master is the leader (and
//      the broadcast itself solved contention resolution).
//   2. SplitSearch finds the level l closest to the root at which all
//      cohorts occupy distinct ancestors. With cohorts of size p it is a
//      (p+1)-ary search — Snir's CREW-PRAM parallel search transplanted to
//      channels: member cID probes boundary levels l_cID and l_(cID+1) via
//      CheckLevel (2 rounds each: probe the ancestor channel, then spread
//      the verdict on the level's row channel), and the unique member that
//      sees the collision/no-collision flip announces the surviving
//      subrange on the cohort's cNode channel. 5 rounds per refinement,
//      O(log h / log(p+1)) refinements.
//   3. Masters broadcast on their level-(l-1) ancestor's channel. A
//      collision pairs the two cohorts under that ancestor (the paper shows
//      there are exactly two): right-subtree members add cSize to their
//      cID, cSize doubles, cNode moves up to the common ancestor. A lone
//      broadcast means the cohort found no partner: it goes inactive.
//
// The ablation flag LeafElectionParams::force_binary_search replaces the
// (p+1)-ary search with a plain binary search, which degrades the total
// round count from O(log h log log x) to O(log h log x) — this isolates the
// contribution of coalescing cohorts (experiment E12).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

struct LeafElectionResult {
  bool leader = false;   // this node won
  std::int64_t phases = 0;  // phases this node participated in
};

// Runs LeafElection for a node occupying leaf `leaf` (1-based) of the tree
// with `num_leaves` leaves. Distinct active nodes must occupy distinct
// leaves. Uses channels 1 .. 2*num_leaves - 1.
sim::Task<LeafElectionResult> RunLeafElection(sim::NodeContext& ctx,
                                              std::int32_t leaf,
                                              std::int32_t num_leaves,
                                              LeafElectionParams params);

// Standalone protocol for tests/benches: node i occupies the (i+1)-th leaf
// of `leaves` (a caller-chosen assignment), runs LeafElection, and the
// winner marks phase "le_leader".
sim::ProtocolFactory MakeLeafElectionOnly(std::vector<std::int32_t> leaves,
                                          std::int32_t num_leaves,
                                          LeafElectionParams params = {});

}  // namespace crmc::core
