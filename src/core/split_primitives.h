// The reusable communication primitives of Section 5.3.
//
// The paper's "Impact" discussion conjectures that coalescing cohorts and
// the channel-tree searches they accelerate are applicable beyond leader
// election; this header exposes them as standalone, protocol-composable
// primitives. LeafElection is implemented on top of these, and tests
// exercise them in isolation with synthetic cohort layouts.
//
// All primitives assume Property 11's synchrony discipline: every active
// node calls the same primitive in the same round, all cohorts share the
// same size, members hold distinct cIDs in [cohort_size], and each
// cohort's cNode is a distinct tree node on one common level.
#pragma once

#include <cstdint>

#include "sim/node_context.h"
#include "sim/task.h"
#include "tree/channel_tree.h"

namespace crmc::core {

// One node's view of its cohort.
struct CohortView {
  std::int32_t leaf = 0;         // this node's leaf label in [1, L]
  std::int32_t cid = 1;          // distinct ID within the cohort (1-based)
  std::int32_t cohort_size = 1;  // common size of every active cohort
  std::int32_t cnode_heap = 0;   // heap index of this cohort's tree node
  std::int32_t cnode_level = 0;  // level of all cohort nodes
};

// CheckLevel (Figure 3): two rounds deciding — consistently across all
// cohorts — whether any two cohorts share a level-`level` ancestor.
// Exactly one member per cohort must call it for a given level in a given
// round pair; `level` must be in [1, tree height].
sim::Task<bool> CheckLevel(sim::NodeContext& ctx,
                           const tree::ChannelTree& tr, std::int32_t level,
                           std::int32_t leaf);

// SplitSearch (Figure 3): the (p+1)-ary cohort-parallel level search —
// Snir's CREW parallel search transplanted onto the tree of channels.
// Returns the smallest level l in (0, view.cnode_level] at which all
// cohorts occupy distinct ancestors. Every active node must call it in the
// same round with consistent views. Costs exactly 5 rounds per refinement,
// ceil(log(h)/log(cohort_size + 1)) refinements. `force_binary` discards
// the cohort acceleration (ablation); `refinements_out` receives the
// refinement count.
sim::Task<std::int32_t> SplitSearch(sim::NodeContext& ctx,
                                    const tree::ChannelTree& tr,
                                    CohortView view,
                                    bool force_binary = false,
                                    std::int64_t* refinements_out = nullptr);

}  // namespace crmc::core
