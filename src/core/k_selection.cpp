#include "core/k_selection.h"

#include <algorithm>
#include <cmath>

#include "core/general.h"
#include "mac/channel.h"
#include "support/assert.h"

namespace crmc::core {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;

std::int64_t DefaultInstanceRounds(std::int64_t population,
                                   std::int32_t channels) {
  const double n = static_cast<double>(std::max<std::int64_t>(population, 4));
  const double c = static_cast<double>(std::max<std::int32_t>(channels, 2));
  const double lg_n = std::log2(n);
  const double lglg = std::log2(std::max(lg_n, 2.0));
  const double bound = lg_n / std::log2(c) + lglg * std::log2(lglg + 2.0);
  // A multiple of the Theorem 4 bound plus a log n cushion that also
  // covers the single-channel fallback's Theta(log n) tail. Empirically
  // ~2.5-3x the worst completion observed over 30k runs (see E7); the
  // protocol checks the budget and fails loudly rather than desync.
  return static_cast<std::int64_t>(4.0 * bound + 2.0 * lg_n) + 30;
}

Task<void> KSelectionProtocol(NodeContext& ctx, KSelectionParams params) {
  const std::int64_t instance_rounds =
      params.instance_rounds > 0
          ? params.instance_rounds
          : DefaultInstanceRounds(ctx.population(), ctx.channels());
  CRMC_REQUIRE(instance_rounds >= 2);
  const std::int64_t max_instances =
      params.max_instances > 0 ? params.max_instances
                               : 2 * ctx.population() + 16;

  for (std::int64_t instance = 1; instance <= max_instances; ++instance) {
    const std::int64_t start = ctx.round();

    // Elect one of the still-undelivered nodes.
    const bool leader =
        co_await RunGeneralLeaderElection(ctx, params.general);

    // Pad to the instance's delivery round so every remaining node is
    // aligned regardless of when it went inactive inside the election.
    const std::int64_t used = ctx.round() - start;
    CRMC_PROTO_CHECK_MSG(
        used <= instance_rounds - 1,
        "election exceeded the instance budget: " << used << " rounds of "
                                                  << instance_rounds);
    for (std::int64_t r = used; r < instance_rounds - 1; ++r) {
      co_await ctx.Sleep();
    }

    // Delivery round: the instance leader transmits its packet alone on
    // the primary channel; everyone else observes it.
    if (leader) {
      const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
      CRMC_PROTO_CHECK_MSG(fb.MessageHeard(),
                           "two instance leaders delivered at once");
      ctx.RecordMetric("delivered_instance", instance);
      co_return;  // packet delivered; this node leaves the queue
    }
    const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
    CRMC_PROTO_CHECK_MSG(fb.MessageHeard(),
                         "instance " << instance
                                     << " ended without a delivery");
  }
  CRMC_CHECK_MSG(false, "k-selection exceeded max_instances");
}

sim::ProtocolFactory MakeKSelection(KSelectionParams params) {
  return [params](NodeContext& ctx) {
    return KSelectionProtocol(ctx, params);
  };
}

}  // namespace crmc::core
