#include "core/general.h"

#include "core/channel_budget.h"
#include "core/id_reduction.h"
#include "core/leaf_election.h"
#include "core/reduce.h"
#include "support/assert.h"

namespace crmc::core {

using sim::NodeContext;
using sim::Task;

Task<bool> RunGeneralLeaderElection(NodeContext& ctx, GeneralParams params) {
  const std::int32_t channels =
      EffectiveChannels(ctx.channels(), ctx.population());
  if (channels < params.min_channels) {
    // C = O(1): the lower bound degenerates to Omega(log n); use the
    // optimal single-channel algorithm (Section 5.2, analysis preamble).
    const bool leader = co_await RunKnockoutCd(ctx);
    co_return leader;
  }

  // --- Step 1: Reduce to O(log n) active nodes. -------------------------
  const StepOutcome reduce_outcome =
      co_await RunReduce(ctx, params.reduce);
  ctx.MarkPhase("reduce_done");
  if (reduce_outcome == StepOutcome::kLeader) co_return true;
  if (reduce_outcome == StepOutcome::kInactive) co_return false;

  // --- Step 2: rename into [C'/2]. ---------------------------------------
  const IdReductionResult renamed =
      co_await RunIdReduction(ctx, channels, params.id_reduction);
  ctx.MarkPhase("rename_done");
  if (renamed.outcome == StepOutcome::kLeader) co_return true;
  if (renamed.outcome == StepOutcome::kInactive) co_return false;

  // --- Step 3: elect a leader over the tree of channels. -----------------
  const LeafElectionResult elected = co_await RunLeafElection(
      ctx, renamed.new_id, channels / 2, params.leaf_election);
  ctx.MarkPhase("elect_done");
  co_return elected.leader;
}

Task<void> GeneralProtocol(NodeContext& ctx, GeneralParams params) {
  const bool leader = co_await RunGeneralLeaderElection(ctx, params);
  if (leader) ctx.MarkPhase("leader");
}

sim::ProtocolFactory MakeGeneral(GeneralParams params) {
  return [params](NodeContext& ctx) { return GeneralProtocol(ctx, params); };
}

}  // namespace crmc::core
