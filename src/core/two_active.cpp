#include "core/two_active.h"

#include <algorithm>

#include "core/channel_budget.h"
#include "mac/channel.h"
#include "support/assert.h"
#include "support/bits.h"
#include "tree/channel_tree.h"

namespace crmc::core {
namespace {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;

// Single-channel degradation: coin-flipping duel on the primary channel.
// Each round a node transmits with probability 1/2; with two active nodes
// the round succeeds (one lone transmitter) with probability 1/2, so the
// duel ends in Theta(log n) rounds w.h.p. — the single-channel optimum.
Task<void> CoinFlipDuel(NodeContext& ctx) {
  for (;;) {
    if (ctx.rng().Bernoulli(0.5)) {
      const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
      if (fb.MessageHeard()) {
        ctx.MarkPhase("solved");
        co_return;  // transmitted alone: problem solved, this node won
      }
    } else {
      const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
      if (fb.MessageHeard()) co_return;  // the other node won
    }
  }
}

}  // namespace

Task<void> TwoActiveProtocol(NodeContext& ctx, TwoActiveParams params) {
  std::int32_t channels = EffectiveChannels(ctx.channels(), ctx.population());
  if (params.channel_cap > 0) {
    channels = std::min(
        channels, static_cast<std::int32_t>(support::FloorPow2(
                      static_cast<std::uint64_t>(params.channel_cap))));
  }
  if (channels < 2) {
    co_await CoinFlipDuel(ctx);
    co_return;
  }

  // --- Step 1: ID reduction — rename into [channels]. -------------------
  std::int32_t id = 0;
  for (;;) {
    id = static_cast<std::int32_t>(ctx.rng().UniformInt(1, channels));
    const Feedback fb =
        co_await ctx.Transmit(static_cast<mac::ChannelId>(id));
    CRMC_PROTO_CHECK(!fb.Silence());  // we transmitted, the channel was not silent
    if (fb.MessageHeard()) break;  // alone: adopt the channel label as ID
  }
  ctx.MarkPhase("rename_done");

  // --- Step 2: SplitCheck — find the divergence level. -------------------
  // B[m] = 1 iff both paths share their level-m tree node; B[0] = 1 (the
  // root is shared), B[h] = 0 (the IDs are distinct leaves). Binary-search
  // for the first 0. Testing level m: both nodes transmit on the channel
  // numbered by their level-m ancestor's position within the level; a
  // collision means the ancestor is shared.
  const tree::ChannelTree channel_tree(channels);
  std::int32_t lo = 0;
  std::int32_t hi = channel_tree.height();
  while (lo < hi) {
    const std::int32_t mid = (lo + hi) / 2;
    const Feedback fb = co_await ctx.Transmit(static_cast<mac::ChannelId>(
        channel_tree.IndexWithinLevel(id, mid)));
    CRMC_PROTO_CHECK(!fb.Silence());
    if (fb.Collision()) {
      lo = mid + 1;  // still shared at `mid`: divergence is deeper
    } else {
      hi = mid;  // already diverged at `mid`
    }
  }
  const std::int32_t split_level = lo;
  CRMC_PROTO_CHECK_MSG(split_level >= 1,
                       "paths cannot diverge at the root");
  ctx.MarkPhase("search_done");

  // The node whose path goes left at the divergence wins.
  if (channel_tree.AncestorIsLeftChild(id, split_level)) {
    const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
    CRMC_PROTO_CHECK_MSG(
        fb.MessageHeard(),
        "two-active winner was not alone on the primary channel");
    ctx.MarkPhase("solved");
  } else {
    co_await ctx.Listen(kPrimaryChannel);
  }
}

sim::ProtocolFactory MakeTwoActive(TwoActiveParams params) {
  return [params](NodeContext& ctx) { return TwoActiveProtocol(ctx, params); };
}

}  // namespace crmc::core
