#include "core/estimation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mac/channel.h"
#include "support/assert.h"
#include "support/bits.h"

namespace crmc::core {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;

namespace {

std::int32_t MaxExponent(const NodeContext& ctx) {
  return std::max<std::int32_t>(
      1, support::CeilLog2(static_cast<std::uint64_t>(
             std::max<std::int64_t>(ctx.population(), 2))));
}

// Globally-agreed median: every node computed the same per-sample values
// (all verdicts were observed by everyone), so sorting locally agrees.
std::int32_t Median(std::vector<std::int32_t> values) {
  CRMC_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

Task<std::int32_t> RunGeometricEstimate(NodeContext& ctx,
                                        EstimationParams params) {
  CRMC_REQUIRE(params.samples >= 1);
  const std::int32_t levels = std::max<std::int32_t>(
      2, std::min<std::int32_t>(ctx.channels(), MaxExponent(ctx) + 1));

  std::vector<std::int32_t> estimates;
  estimates.reserve(static_cast<std::size_t>(params.samples));
  for (std::int32_t sample = 0; sample < params.samples; ++sample) {
    // Sample this node's geometric level once per sample; the loud-level
    // set is then fixed for the whole binary search.
    std::int32_t my_level = 1;
    while (my_level < levels && ctx.rng().Bernoulli(0.5)) ++my_level;

    // Binary search for the top of the loud prefix. Probing level m costs
    // one round: nodes with my_level == m transmit on channel m, everyone
    // else listens on channel m, so the verdict (silent or not) is common
    // knowledge immediately.
    std::int32_t lo = 0;  // invariant-ish: levels <= lo believed loud
    std::int32_t hi = levels;
    while (lo < hi) {
      const std::int32_t mid = (lo + hi + 1) / 2;
      Feedback fb;
      if (my_level == mid) {
        fb = co_await ctx.Transmit(static_cast<mac::ChannelId>(mid));
      } else {
        fb = co_await ctx.Listen(static_cast<mac::ChannelId>(mid));
      }
      if (fb.Silence()) {
        hi = mid - 1;  // quiet: the occupied levels end below mid
      } else {
        lo = mid;  // loud at mid: occupied at least this high
      }
    }
    estimates.push_back(lo);
  }
  co_return Median(std::move(estimates));
}

Task<std::int32_t> RunDensityEstimate(NodeContext& ctx,
                                      EstimationParams params) {
  CRMC_REQUIRE(params.samples >= 1);
  const std::int32_t max_exponent = MaxExponent(ctx);

  std::vector<std::int32_t> estimates;
  estimates.reserve(static_cast<std::size_t>(params.samples));
  for (std::int32_t sample = 0; sample < params.samples; ++sample) {
    std::int32_t lo = 0;
    std::int32_t hi = max_exponent;
    std::int32_t estimate = 0;
    while (lo <= hi) {
      const std::int32_t d = (lo + hi) / 2;
      const double p = std::ldexp(1.0, -d);
      Feedback fb;
      if (ctx.rng().Bernoulli(p)) {
        fb = co_await ctx.Transmit(kPrimaryChannel);
      } else {
        fb = co_await ctx.Listen(kPrimaryChannel);
      }
      if (fb.Collision()) {
        lo = d + 1;  // too dense: |A| * 2^-d >> 1
        estimate = d + 1;
      } else if (fb.MessageHeard()) {
        estimate = d;  // a lone transmission: density ~ 1, d ~ lg |A|
        break;
      } else {
        hi = d - 1;  // silence: too sparse
        estimate = d;
      }
    }
    estimates.push_back(estimate);
  }
  co_return Median(std::move(estimates));
}

namespace {

Task<void> GeometricOnly(NodeContext& ctx, EstimationParams params) {
  const std::int32_t e = co_await RunGeometricEstimate(ctx, params);
  ctx.RecordMetric("estimate_log2", e);
}

Task<void> DensityOnly(NodeContext& ctx, EstimationParams params) {
  const std::int32_t e = co_await RunDensityEstimate(ctx, params);
  ctx.RecordMetric("estimate_log2", e);
}

}  // namespace

sim::ProtocolFactory MakeGeometricEstimateOnly(EstimationParams params) {
  return [params](NodeContext& ctx) { return GeometricOnly(ctx, params); };
}

sim::ProtocolFactory MakeDensityEstimateOnly(EstimationParams params) {
  return [params](NodeContext& ctx) { return DensityOnly(ctx, params); };
}

}  // namespace crmc::core
