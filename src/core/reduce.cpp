#include "core/reduce.h"

#include <cmath>

#include "mac/channel.h"
#include "support/assert.h"
#include "support/bits.h"

namespace crmc::core {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;

Task<StepOutcome> RunReduce(NodeContext& ctx, ReduceParams params) {
  const double n = static_cast<double>(ctx.population());
  const std::int32_t iterations =
      support::CeilLgLg(static_cast<std::uint64_t>(
          ctx.population() < 2 ? 2 : ctx.population())) +
      params.extra_iterations;

  double n_hat = n;
  for (std::int32_t iter = 0; iter < iterations; ++iter) {
    for (int rep = 0; rep < 2; ++rep) {
      if (ctx.rng().Bernoulli(1.0 / n_hat)) {
        const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
        CRMC_PROTO_CHECK(!fb.Silence());
        if (fb.MessageHeard()) co_return StepOutcome::kLeader;  // alone
        // Collision: this transmitter survives the knockout.
      } else {
        const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
        if (!fb.Silence()) co_return StepOutcome::kInactive;
      }
    }
    n_hat = std::sqrt(n_hat);
    if (n_hat < 2.0) n_hat = 2.0;
  }
  co_return StepOutcome::kActive;
}

namespace {

// Named coroutine (not a coroutine lambda) so `params` is copied into the
// frame rather than living in a closure the caller might destroy.
Task<void> ReduceOnlyProtocol(NodeContext& ctx, ReduceParams params) {
  const StepOutcome outcome = co_await RunReduce(ctx, params);
  if (outcome == StepOutcome::kActive) ctx.MarkPhase("reduce_survivor");
  if (outcome == StepOutcome::kLeader) ctx.MarkPhase("reduce_leader");
}

}  // namespace

sim::ProtocolFactory MakeReduceOnly(ReduceParams params) {
  return [params](NodeContext& ctx) { return ReduceOnlyProtocol(ctx, params); };
}

Task<bool> RunKnockoutCd(NodeContext& ctx) {
  for (;;) {
    if (ctx.rng().Bernoulli(0.5)) {
      const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
      CRMC_PROTO_CHECK(!fb.Silence());
      if (fb.MessageHeard()) co_return true;  // transmitted alone: leader
      // Collision: stay in the game.
    } else {
      const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
      if (!fb.Silence()) co_return false;  // heard someone: knocked out
    }
  }
}

Task<void> KnockoutCdProtocol(NodeContext& ctx) {
  const bool leader = co_await RunKnockoutCd(ctx);
  if (leader) ctx.MarkPhase("solved");
}

sim::ProtocolFactory MakeKnockoutCd() {
  return [](NodeContext& ctx) { return KnockoutCdProtocol(ctx); };
}

}  // namespace crmc::core
