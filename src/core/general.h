// The paper's main algorithm (Section 5): contention resolution for any
// number of active nodes in O(log n / log C + log log n * log log log n)
// rounds w.h.p. (Theorem 4).
//
// Three synchronized steps executed back to back:
//   Step 1 — Reduce (Figure 2): knock the active count down to O(log n)
//            in O(log log n) rounds on the primary channel alone.
//   Step 2 — IDReduction: rename survivors with unique IDs from [C'/2]
//            (interleaving further knockouts) in O(log n / log C) rounds.
//   Step 3 — LeafElection: deterministic coalescing-cohorts election over
//            the tree of channels in O(log log n * log log log n) rounds.
//
// For C below a constant the algorithm falls back to the classic
// single-channel O(log n) collision-detection knockout, exactly as the
// paper prescribes for C = O(1).
//
// Nodes mark phases "reduce_done", "rename_done", "elect_done" for the
// step-breakdown experiment.
#pragma once

#include "core/params.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

sim::Task<void> GeneralProtocol(sim::NodeContext& ctx, GeneralParams params);

// Step form: runs the same algorithm and reports whether this node ended
// as the leader — composable into larger protocols (k-selection runs one
// of these per instance).
sim::Task<bool> RunGeneralLeaderElection(sim::NodeContext& ctx,
                                         GeneralParams params);

sim::ProtocolFactory MakeGeneral(GeneralParams params = {});

}  // namespace crmc::core
