#include "core/id_reduction.h"

#include <cmath>

#include "core/channel_budget.h"
#include "mac/channel.h"
#include "support/assert.h"

namespace crmc::core {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;

Task<IdReductionResult> RunIdReduction(NodeContext& ctx,
                                       std::int32_t effective_channels,
                                       IdReductionParams params) {
  CRMC_REQUIRE_MSG(effective_channels >= 4,
                   "IDReduction needs at least 4 effective channels, got "
                       << effective_channels);
  const std::int32_t half = effective_channels / 2;
  const double k = std::max(
      2.0, std::sqrt(static_cast<double>(effective_channels)) /
               params.knock_divisor);

  for (std::int64_t pair = 0; pair < params.max_pairs; ++pair) {
    // --- Renaming, round 1: spread over [C'/2]. -------------------------
    const auto channel =
        static_cast<std::int32_t>(ctx.rng().UniformInt(1, half));
    const Feedback spread =
        co_await ctx.Transmit(static_cast<mac::ChannelId>(channel));
    CRMC_PROTO_CHECK(!spread.Silence());
    const bool renamed = spread.MessageHeard();  // alone on the channel

    // --- Renaming, round 2: confirm on the primary channel. -------------
    Feedback confirm;
    if (renamed) {
      confirm = co_await ctx.Transmit(kPrimaryChannel);
    } else {
      confirm = co_await ctx.Listen(kPrimaryChannel);
    }
    if (renamed) {
      co_return IdReductionResult{StepOutcome::kActive, channel};
    }
    if (!confirm.Silence()) {
      // Someone renamed and we did not: leave the game.
      co_return IdReductionResult{StepOutcome::kInactive, 0};
    }

    // --- Reduction round: knockout with probability 1/k. ----------------
    if (ctx.rng().Bernoulli(1.0 / k)) {
      const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
      CRMC_PROTO_CHECK(!fb.Silence());
      if (fb.MessageHeard()) {
        // Alone on the primary channel: the problem is solved outright.
        co_return IdReductionResult{StepOutcome::kLeader, 0};
      }
    } else {
      const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
      if (!fb.Silence()) {
        co_return IdReductionResult{StepOutcome::kInactive, 0};
      }
    }
  }
  CRMC_CHECK_MSG(false, "IDReduction exceeded max_pairs — probability of "
                        "this is superpolynomially small; check parameters");
  co_return IdReductionResult{};  // unreachable
}

namespace {

Task<void> IdReductionOnlyProtocol(NodeContext& ctx,
                                   IdReductionParams params) {
  const std::int32_t channels =
      EffectiveChannels(ctx.channels(), ctx.population());
  const IdReductionResult result =
      co_await RunIdReduction(ctx, channels, params);
  if (result.outcome == StepOutcome::kActive) {
    ctx.MarkPhase("idr_renamed");
    ctx.RecordMetric("idr_id", result.new_id);
  } else if (result.outcome == StepOutcome::kLeader) {
    ctx.MarkPhase("idr_leader");
  }
}

}  // namespace

sim::ProtocolFactory MakeIdReductionOnly(IdReductionParams params) {
  return [params](NodeContext& ctx) {
    return IdReductionOnlyProtocol(ctx, params);
  };
}

}  // namespace crmc::core
