// Tunable parameters of the paper's algorithms.
//
// Every constant the paper fixes for analysis purposes is exposed here with
// the paper's value documented; where the paper's constant is impractical
// at simulation scale (it only needs to make an asymptotic argument go
// through), the default is a practical value and the deviation is recorded
// in DESIGN.md.
#pragma once

#include <cstdint>

namespace crmc::core {

struct TwoActiveParams {
  // Use at most this many channels even if more exist (0 = no cap beyond
  // the paper's C <= n normalization). Mainly for experiments.
  std::int32_t channel_cap = 0;
};

struct ReduceParams {
  // The paper runs ceil(lg lg n) knockout iterations (Figure 2), each a
  // pair of rounds at the same probability. `extra_iterations` adds
  // fixed-probability (1/2) iterations at the end — useful for studying
  // the survivor distribution; 0 reproduces the paper.
  std::int32_t extra_iterations = 0;
};

struct IdReductionParams {
  // Knock probability is 1/k with k = max(2, sqrt(C)/knock_divisor).
  // Paper: 144 (Section 5.2) — chosen so 24*k*log k < C/6 in the analysis;
  // that needs C >= ~186k channels to even give k >= 3. Default 4 keeps the
  // same sqrt(C) scaling at simulation sizes. Any k >= 2 is correct (the
  // loop is Las Vegas); only the round-count constant changes.
  double knock_divisor = 4.0;
  // Safety valve for the (w.h.p. unreachable) non-termination path.
  std::int64_t max_pairs = 1'000'000;
};

struct LeafElectionParams {
  // Ablation: force every SplitSearch to be binary regardless of cohort
  // size, i.e. discard the coalescing-cohorts speedup. Turns the
  // O(log h * log log x) bound into O(log h * log x).
  bool force_binary_search = false;
  // Record per-phase metrics (cohort size, SplitSearch recursions, rounds)
  // through NodeContext::RecordMetric, keyed "le_csize", "le_recursions",
  // "le_rounds", one entry per phase in order, recorded by cohort masters.
  bool record_phase_stats = false;
};

struct GeneralParams {
  ReduceParams reduce{};
  IdReductionParams id_reduction{};
  LeafElectionParams leaf_election{};
  // Below this many (power-of-two) channels, fall back to the classic
  // single-channel O(log n) collision-detection algorithm, exactly as the
  // paper prescribes for C = O(1).
  std::int32_t min_channels = 8;
};

}  // namespace crmc::core
