// Pure reference model of LeafElection.
//
// LeafElection is deterministic given the occupied leaf set, so its outcome
// can be predicted without simulating any channels: this model replays the
// cohort dynamics of Section 5.3 (find the shallowest all-distinct level,
// pair cohorts under shared parents, drop the unpaired) directly on heap
// indices. Tests compare the MAC simulation — with all of its channel
// choreography — against this model, which checks far more than "some
// winner emerged".
#pragma once

#include <cstdint>
#include <vector>

namespace crmc::core {

struct LeafElectionPrediction {
  std::int32_t winner_leaf = 0;
  std::int64_t phases = 0;  // phases the winner participates in
};

// `leaves`: distinct occupied leaf labels in [1, num_leaves]; num_leaves a
// power of two. Throws std::invalid_argument on bad input.
LeafElectionPrediction PredictLeafElection(
    const std::vector<std::int32_t>& leaves, std::int32_t num_leaves);

}  // namespace crmc::core
