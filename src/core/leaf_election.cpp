#include "core/leaf_election.h"

#include <utility>
#include <vector>

#include "core/split_primitives.h"
#include "mac/channel.h"
#include "support/assert.h"
#include "support/bits.h"
#include "tree/channel_tree.h"

namespace crmc::core {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;
using tree::ChannelTree;

Task<LeafElectionResult> RunLeafElection(NodeContext& ctx, std::int32_t leaf,
                                         std::int32_t num_leaves,
                                         LeafElectionParams params) {
  CRMC_REQUIRE(num_leaves >= 1 &&
               support::IsPowerOfTwo(static_cast<std::uint64_t>(num_leaves)));
  const ChannelTree tr(num_leaves);
  CRMC_REQUIRE_MSG(tr.num_tree_nodes() <= ctx.channels(),
                   "tree with " << num_leaves << " leaves needs "
                                << tr.num_tree_nodes() << " channels, have "
                                << ctx.channels());
  CRMC_REQUIRE(leaf >= 1 && leaf <= num_leaves);

  CohortView view;
  view.leaf = leaf;
  view.cid = 1;
  view.cohort_size = 1;
  view.cnode_heap = tr.LeafHeapIndex(leaf);
  view.cnode_level = tr.height();
  std::int64_t phase = 0;

  for (;;) {
    ++phase;
    const std::int64_t phase_start_round = ctx.round();

    // --- Root check: are we the last cohort standing? -------------------
    Feedback root_fb;
    if (view.cid == 1) {
      root_fb = co_await ctx.Transmit(kPrimaryChannel);
    } else {
      root_fb = co_await ctx.Listen(kPrimaryChannel);
    }
    CRMC_PROTO_CHECK(!root_fb.Silence());  // every cohort has a master
    if (root_fb.MessageHeard()) {
      // A single master broadcast alone on the primary channel: done.
      co_return LeafElectionResult{view.cid == 1, phase};
    }

    // --- SplitSearch for the shallowest all-distinct level. -------------
    std::int64_t refinements = 0;
    const std::int32_t split_level = co_await SplitSearch(
        ctx, tr, view, params.force_binary_search, &refinements);
    CRMC_PROTO_CHECK(split_level >= 1 && split_level <= view.cnode_level);

    if (params.record_phase_stats && view.cid == 1) {
      ctx.RecordMetric("le_csize", view.cohort_size);
      ctx.RecordMetric("le_recursions", refinements);
      ctx.RecordMetric("le_rounds", ctx.round() - phase_start_round + 1);
    }

    // --- Pairing at level split_level - 1. -------------------------------
    const std::int32_t parent_heap =
        tr.AncestorAtLevel(leaf, split_level - 1);
    Feedback pair_fb;
    if (view.cid == 1) {
      pair_fb = co_await ctx.Transmit(tr.ChannelOf(parent_heap));
    } else {
      pair_fb = co_await ctx.Listen(tr.ChannelOf(parent_heap));
    }
    CRMC_PROTO_CHECK(!pair_fb.Silence());  // our own master transmitted
    if (!pair_fb.Collision()) {
      // Our master was alone under this ancestor: no partner cohort.
      co_return LeafElectionResult{false, phase};
    }
    // Exactly two cohorts share the ancestor — one per subtree. The
    // right-subtree cohort shifts its IDs up by the (common) cohort size.
    if (!tr.AncestorIsLeftChild(leaf, split_level)) {
      view.cid += view.cohort_size;
    }
    view.cohort_size *= 2;
    view.cnode_heap = parent_heap;
    view.cnode_level = split_level - 1;
  }
}

namespace {

Task<void> LeafElectionOnlyProtocol(NodeContext& ctx,
                                    std::vector<std::int32_t> leaves,
                                    std::int32_t num_leaves,
                                    LeafElectionParams params) {
  CRMC_REQUIRE(static_cast<std::size_t>(ctx.num_active_oracle()) ==
               leaves.size());
  const std::int32_t leaf =
      leaves[static_cast<std::size_t>(ctx.index())];
  const LeafElectionResult result =
      co_await RunLeafElection(ctx, leaf, num_leaves, params);
  if (result.leader) {
    ctx.MarkPhase("le_leader");
    ctx.RecordMetric("le_winner_leaf", leaf);
    ctx.RecordMetric("le_phases", result.phases);
  }
}

}  // namespace

sim::ProtocolFactory MakeLeafElectionOnly(std::vector<std::int32_t> leaves,
                                          std::int32_t num_leaves,
                                          LeafElectionParams params) {
  return [leaves = std::move(leaves), num_leaves,
          params](NodeContext& ctx) {
    return LeafElectionOnlyProtocol(ctx, leaves, num_leaves, params);
  };
}

}  // namespace crmc::core
