#include "core/wakeup_transform.h"

#include <utility>
#include <vector>

#include "mac/channel.h"
#include "support/assert.h"

namespace crmc::core {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;

Task<void> WakeupTransformProtocol(NodeContext& ctx, std::int64_t wake_delay,
                                   sim::ProtocolFactory inner) {
  CRMC_REQUIRE(wake_delay >= 0);
  CRMC_REQUIRE(inner != nullptr);
  for (std::int64_t i = 0; i < wake_delay; ++i) co_await ctx.Sleep();

  // Two listening rounds on the primary channel. Any activity means an
  // earlier batch of starters is running (their beacons occupy every other
  // round), so this node bows out; the starters will solve the problem.
  const Feedback first = co_await ctx.Listen(kPrimaryChannel);
  if (!first.Silence()) co_return;
  const Feedback second = co_await ctx.Listen(kPrimaryChannel);
  if (!second.Silence()) co_return;

  // Both silent: no beacon is on the air, so every node that woke in the
  // same round makes the same decision — the starters begin the underlying
  // protocol simultaneously, with the engine interleaving a beacon before
  // each protocol round.
  ctx.SetAutoBeacon(true);
  co_await inner(ctx);
  ctx.SetAutoBeacon(false);
}

sim::ProtocolFactory MakeWakeupTransform(std::vector<std::int64_t> delays,
                                         sim::ProtocolFactory inner) {
  return [delays = std::move(delays),
          inner = std::move(inner)](NodeContext& ctx) {
    CRMC_REQUIRE_MSG(
        static_cast<std::size_t>(ctx.num_active_oracle()) == delays.size(),
        "wakeup transform needs one delay per activated node");
    return WakeupTransformProtocol(
        ctx, delays[static_cast<std::size_t>(ctx.index())], inner);
  };
}

}  // namespace crmc::core
