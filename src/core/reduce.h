// Step #1 of the general algorithm: the Reduce knockout (Figure 2).
//
// Reduces the number of active nodes from up to n down to O(log n) in
// O(log log n) rounds, w.h.p. (Theorem 5), using only the primary channel.
// The knockout schedule transmits with probability 1/n-hat for two rounds,
// then square-roots n-hat, for ceil(lg lg n) iterations. In any round with
// at least one transmitter, listeners that hear it (message or collision)
// become inactive; a node that transmits *alone* has — by definition —
// already solved contention resolution and becomes the leader.
#pragma once

#include <cstdint>

#include "core/params.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

enum class StepOutcome : std::uint8_t {
  kActive,    // still in the game when the step ended
  kInactive,  // knocked out; the node must stop participating
  kLeader     // transmitted alone on the primary channel: problem solved
};

// Runs the Reduce schedule for this node. The schedule length is a fixed
// function of n, so all nodes leave the step in the same round.
sim::Task<StepOutcome> RunReduce(sim::NodeContext& ctx, ReduceParams params);

// Reduce as a standalone protocol (terminates after the fixed schedule),
// for unit tests and the survivor-dynamics experiment.
sim::ProtocolFactory MakeReduceOnly(ReduceParams params = {});

// The classic single-channel collision-detection contention-resolution
// loop: every active node transmits with probability 1/2; listeners that
// hear anything drop out; a lone transmitter wins. Theta(log n) w.h.p.
// This is the paper's prescribed fallback for C = O(1) and also serves as
// a baseline.
sim::Task<void> KnockoutCdProtocol(sim::NodeContext& ctx);
// Step form: returns true iff this node won (transmitted alone).
sim::Task<bool> RunKnockoutCd(sim::NodeContext& ctx);
sim::ProtocolFactory MakeKnockoutCd();

}  // namespace crmc::core
