// k-selection: repeated contention resolution.
//
// The one-shot problem this paper studies descends from the queue-draining
// setting of the ALOHA literature (Section 2): every active node holds a
// packet, and the execution ends when all |A| packets have been delivered —
// i.e. every active node has at some point transmitted alone on the primary
// channel. This module drains the queue by running the paper's general
// algorithm in fixed-length *instances*:
//
//   - every instance spans exactly `instance_rounds` rounds (a generous
//     multiple of the Theorem 4 bound), so all nodes agree on instance
//     boundaries without extra communication;
//   - within an instance, the still-undelivered nodes run GeneralProtocol;
//     whoever ends it as the leader transmits alone on the primary channel
//     in the instance's dedicated *delivery round* (the last round), marks
//     its packet delivered, and leaves; everyone else hears the delivery
//     (or its absence) on the primary channel and continues.
//
// The delivery round makes the per-instance outcome observable by every
// remaining node (they all listen on channel 1), which is what keeps the
// instances synchronized even though nodes go inactive at different times
// inside an instance. Each delivery is itself a lone primary-channel
// transmission, so the engine's all_solved_rounds records one entry per
// delivered packet (at least; the algorithm usually also solves mid-
// instance).
//
// Cost: O(|A| * instance_rounds) rounds; with the Theorem 4 bound this is
// O(k (log n / log C + loglog n logloglog n)) for k packets.
#pragma once

#include <cstdint>

#include "core/params.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

struct KSelectionParams {
  GeneralParams general{};
  // Rounds per instance, *including* the final delivery round. 0 derives a
  // generous default from the Theorem 4 bound for (n, C).
  std::int64_t instance_rounds = 0;
  // Safety valve on the number of instances (0 = 4 * |A| + 16).
  std::int64_t max_instances = 0;
};

// Computes the default instance length for a given population and channel
// count (exposed for tests and benches).
std::int64_t DefaultInstanceRounds(std::int64_t population,
                                   std::int32_t channels);

// The per-node protocol: terminates once this node's packet is delivered.
// Records metric "delivered_instance" (1-based instance index) on success.
sim::Task<void> KSelectionProtocol(sim::NodeContext& ctx,
                                   KSelectionParams params);

sim::ProtocolFactory MakeKSelection(KSelectionParams params = {});

}  // namespace crmc::core
