// The non-simultaneous wakeup transform (Section 3).
//
// The paper's algorithms assume all active nodes start in the same round.
// Section 3 sketches a factor-2 transform to the harder model where nodes
// can wake in different rounds: on waking, a node listens on the primary
// channel for two rounds. If both are silent, it becomes a *starter*: it
// runs the underlying protocol on even (relative) rounds and beacons on the
// primary channel on odd rounds. If it instead hears a beacon, message, or
// collision, it stops participating — some earlier cohort of starters is
// already running and will solve the problem.
//
// Why two listening rounds: a node might wake during a starter's protocol
// round (no beacon audible); the second round is guaranteed to hit a beacon
// round if any starter exists. All starters woke in the same round (they
// all heard two silent rounds, which cannot happen once a beacon is on the
// air), so the underlying protocol's simultaneous-start assumption holds
// for exactly the set of starters.
//
// The beacon rounds deliberately put >= 1 transmitters on the primary
// channel in every odd round, so a lone *protocol* transmission on an even
// round is what solves the problem; with >= 2 starters beacons collide and
// never accidentally solve it, and with exactly 1 starter the very first
// beacon solves it legitimately.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::core {

// A step that runs `inner` under the wakeup transform, waking this node
// after `wake_delay` rounds of sleep. The inner factory is invoked only if
// the node becomes a starter.
sim::Task<void> WakeupTransformProtocol(sim::NodeContext& ctx,
                                        std::int64_t wake_delay,
                                        sim::ProtocolFactory inner);

// Factory: node i wakes after delays[i] rounds (delays.size() must equal
// the number of activated nodes).
sim::ProtocolFactory MakeWakeupTransform(std::vector<std::int64_t> delays,
                                         sim::ProtocolFactory inner);

}  // namespace crmc::core
