// Always-on invariant checking for the crmc library.
//
// CRMC_CHECK is used for internal invariants whose violation indicates a bug
// in the library itself; it aborts with a diagnostic. CRMC_REQUIRE is used to
// validate caller-supplied arguments at API boundaries and throws
// std::invalid_argument so callers can recover.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace crmc::support {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& detail) {
  std::fprintf(stderr, "CRMC_CHECK failed: %s at %s:%d %s\n", expr, file, line,
               detail.c_str());
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void RequireFailed(const char* expr, const char* file,
                                       int line, const std::string& detail) {
  std::ostringstream os;
  os << "precondition violated: " << expr << " at " << file << ":" << line;
  if (!detail.empty()) os << " (" << detail << ")";
  throw std::invalid_argument(os.str());
}

// Thrown by CRMC_PROTO_CHECK: a protocol observed channel feedback that is
// impossible under its assumed model (e.g. a strong-CD algorithm run on a
// receiver-only-CD network). Recoverable — it aborts the run, not the
// process.
class ProtocolAssumptionViolation : public std::logic_error {
 public:
  explicit ProtocolAssumptionViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void ProtoCheckFailed(const char* expr, const char* file,
                                          int line,
                                          const std::string& detail) {
  std::ostringstream os;
  os << "protocol model assumption violated: " << expr << " at " << file
     << ":" << line;
  if (!detail.empty()) os << " (" << detail << ")";
  throw ProtocolAssumptionViolation(os.str());
}

}  // namespace crmc::support

#define CRMC_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::crmc::support::CheckFailed(#expr, __FILE__, __LINE__, "");       \
    }                                                                    \
  } while (false)

#define CRMC_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream crmc_check_os;                                  \
      crmc_check_os << msg;                                              \
      ::crmc::support::CheckFailed(#expr, __FILE__, __LINE__,            \
                                   crmc_check_os.str());                 \
    }                                                                    \
  } while (false)

#define CRMC_PROTO_CHECK(expr)                                           \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::crmc::support::ProtoCheckFailed(#expr, __FILE__, __LINE__, "");  \
    }                                                                    \
  } while (false)

#define CRMC_PROTO_CHECK_MSG(expr, msg)                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream crmc_proto_os;                                  \
      crmc_proto_os << msg;                                              \
      ::crmc::support::ProtoCheckFailed(#expr, __FILE__, __LINE__,       \
                                        crmc_proto_os.str());            \
    }                                                                    \
  } while (false)

#define CRMC_REQUIRE(expr)                                               \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::crmc::support::RequireFailed(#expr, __FILE__, __LINE__, "");     \
    }                                                                    \
  } while (false)

#define CRMC_REQUIRE_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream crmc_req_os;                                    \
      crmc_req_os << msg;                                                \
      ::crmc::support::RequireFailed(#expr, __FILE__, __LINE__,          \
                                     crmc_req_os.str());                 \
    }                                                                    \
  } while (false)
