// Deterministic random number generation for reproducible simulations.
//
// Every node in a simulation owns an independent RandomSource derived from
// (master seed, node index) via SplitMix64, so a run is a pure function of
// the engine configuration. The core generator is xoshiro256++ (Blackman &
// Vigna), implemented from scratch — no std::mt19937 so that results are
// bit-identical across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "support/assert.h"

namespace crmc::support {

// SplitMix64: used for seeding and for cheap stateless mixing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256++ 1.0.
class Xoshiro256pp {
 public:
  explicit Xoshiro256pp(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

// High-level random source with the distributions the protocols need.
class RandomSource {
 public:
  explicit RandomSource(std::uint64_t seed) : gen_(seed) {}

  // Derive an independent stream (e.g., per node) from a master seed.
  static RandomSource ForStream(std::uint64_t master_seed,
                                std::uint64_t stream) {
    SplitMix64 sm(master_seed ^ (0xa0761d6478bd642fULL * (stream + 1)));
    return RandomSource(sm.Next());
  }

  std::uint64_t NextU64() { return gen_.Next(); }

  // Uniform integer in [lo, hi], inclusive. Unbiased (Lemire's method).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    CRMC_CHECK(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(NextU64());  // full range
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

 private:
  Xoshiro256pp gen_;
};

// Precomputed-range uniform sampler for batch draws.
//
// RandomSource::UniformInt recomputes Lemire's rejection threshold on every
// (rejecting) call. When a whole round of a simulation draws from the same
// [lo, hi] — one draw per active node — the threshold is a loop invariant;
// this class hoists it. Draw(rs) consumes rs exactly like
// rs.UniformInt(lo, hi) and returns the bit-identical result, so batched
// and scalar code paths stay interchangeable in parity tests.
class BatchUniformInt {
 public:
  BatchUniformInt(std::int64_t lo, std::int64_t hi) : lo_(lo) {
    CRMC_CHECK(lo <= hi);
    range_ = static_cast<std::uint64_t>(hi - lo) + 1;
    threshold_ = range_ == 0 ? 0 : (0 - range_) % range_;
  }

  std::int64_t Draw(RandomSource& rs) const {
    std::uint64_t x = rs.NextU64();
    if (range_ == 0) return static_cast<std::int64_t>(x);  // full range
    __uint128_t m = static_cast<__uint128_t>(x) * range_;
    auto low = static_cast<std::uint64_t>(m);
    // Rejection fires iff low < threshold_ (threshold_ < range_, so this
    // is exactly UniformInt's nested low < range_ / low < threshold test).
    while (low < threshold_) {
      x = rs.NextU64();
      m = static_cast<__uint128_t>(x) * range_;
      low = static_cast<std::uint64_t>(m);
    }
    return lo_ + static_cast<std::int64_t>(m >> 64);
  }

 private:
  std::int64_t lo_;
  std::uint64_t range_;
  std::uint64_t threshold_;
};

// Precomputed-probability Bernoulli sampler for batch draws.
//
// RandomSource::Bernoulli(p) compares a 53-bit uniform double against p;
// this class precomputes the equivalent integer threshold so the per-draw
// work is one generator step and one integer compare. Draw(rs) consumes rs
// exactly like rs.Bernoulli(p) (including consuming no draw for p outside
// (0, 1)) and returns the bit-identical result.
class BatchBernoulli {
 public:
  explicit BatchBernoulli(double p) {
    if (p <= 0.0) {
      fixed_ = 0;
    } else if (p >= 1.0) {
      fixed_ = 1;
    } else {
      fixed_ = -1;
      // (x >> 11) * 2^-53 < p  <=>  (x >> 11) < ceil(p * 2^53), exactly:
      // both sides of the original compare are exact doubles, and scaling
      // p by a power of two is lossless.
      threshold_ = static_cast<std::uint64_t>(__builtin_ceil(p * 0x1.0p53));
    }
  }

  bool Draw(RandomSource& rs) const {
    if (fixed_ >= 0) return fixed_ != 0;
    return (rs.NextU64() >> 11) < threshold_;
  }

 private:
  int fixed_ = -1;  // -1: sample; 0/1: constant outcome, no draw consumed
  std::uint64_t threshold_ = 0;
};

// Sample `k` distinct values from [1, population] uniformly at random.
// Uses a sparse Fisher–Yates so it is O(k) time/space even for huge
// populations (used to hand baseline protocols unique IDs from [n]).
// The full-population case returns the identity permutation outright: the
// simulated nodes are anonymous, so which node holds which ID is already
// an arbitrary labelling and the shuffle (plus its displacement table)
// would be pure overhead on the per-trial setup path.
//
// The displaced-entry table is split: slots below k live in a dense array
// (every i < k is read exactly once, in order), slots >= k in a flat
// linear-probe map at load factor <= 1/2. This runs ~10x faster than the
// obvious unordered_map, which dominated per-trial engine setup. The draw
// sequence and output are unchanged.
inline std::vector<std::int64_t> SampleWithoutReplacement(
    std::int64_t population, std::int64_t k, RandomSource& rng) {
  CRMC_REQUIRE(k >= 0 && k <= population);
  if (k == population) {
    std::vector<std::int64_t> out(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      out[static_cast<std::size_t>(i)] = i + 1;
    }
    return out;
  }
  const auto uk = static_cast<std::size_t>(k);
  std::vector<std::int64_t> low(uk);
  for (std::size_t i = 0; i < uk; ++i) low[i] = static_cast<std::int64_t>(i);
  std::size_t cap = 16;
  while (cap < uk * 2) cap <<= 1;
  const std::size_t mask = cap - 1;
  std::vector<std::int64_t> keys(cap, -1);
  std::vector<std::int64_t> vals(cap);
  std::vector<std::int64_t> out;
  out.reserve(uk);
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j = rng.UniformInt(i, population - 1);
    const std::int64_t value_i = low[static_cast<std::size_t>(i)];
    std::int64_t value_j;
    if (j < k) {
      value_j = low[static_cast<std::size_t>(j)];
      low[static_cast<std::size_t>(j)] = value_i;
    } else {
      std::size_t s = static_cast<std::size_t>(
                          static_cast<std::uint64_t>(j) *
                          0x9e3779b97f4a7c15ULL >> 32) &
                      mask;
      while (keys[s] != -1 && keys[s] != j) s = (s + 1) & mask;
      value_j = keys[s] == -1 ? j : vals[s];
      keys[s] = j;
      vals[s] = value_i;
    }
    out.push_back(value_j + 1);  // shift to 1-based
  }
  return out;
}

}  // namespace crmc::support
