// Deterministic random number generation for reproducible simulations.
//
// Every node in a simulation owns an independent RandomSource derived from
// (master seed, node index) via SplitMix64, so a run is a pure function of
// the engine configuration. The core generator is xoshiro256++ (Blackman &
// Vigna), implemented from scratch — no std::mt19937 so that results are
// bit-identical across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "support/assert.h"

namespace crmc::support {

// SplitMix64: used for seeding and for cheap stateless mixing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256++ 1.0.
class Xoshiro256pp {
 public:
  explicit Xoshiro256pp(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

// High-level random source with the distributions the protocols need.
class RandomSource {
 public:
  explicit RandomSource(std::uint64_t seed) : gen_(seed) {}

  // Derive an independent stream (e.g., per node) from a master seed.
  static RandomSource ForStream(std::uint64_t master_seed,
                                std::uint64_t stream) {
    SplitMix64 sm(master_seed ^ (0xa0761d6478bd642fULL * (stream + 1)));
    return RandomSource(sm.Next());
  }

  std::uint64_t NextU64() { return gen_.Next(); }

  // Uniform integer in [lo, hi], inclusive. Unbiased (Lemire's method).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    CRMC_CHECK(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(NextU64());  // full range
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

 private:
  Xoshiro256pp gen_;
};

// Sample `k` distinct values from [1, population] uniformly at random.
// Uses a sparse Fisher–Yates so it is O(k) time/space even for huge
// populations (used to hand baseline protocols unique IDs from [n]).
inline std::vector<std::int64_t> SampleWithoutReplacement(
    std::int64_t population, std::int64_t k, RandomSource& rng) {
  CRMC_REQUIRE(k >= 0 && k <= population);
  std::unordered_map<std::int64_t, std::int64_t> swapped;
  swapped.reserve(static_cast<std::size_t>(k) * 2);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j = rng.UniformInt(i, population - 1);
    auto it_j = swapped.find(j);
    const std::int64_t value_j = (it_j == swapped.end()) ? j : it_j->second;
    auto it_i = swapped.find(i);
    const std::int64_t value_i = (it_i == swapped.end()) ? i : it_i->second;
    swapped[j] = value_i;
    out.push_back(value_j + 1);  // shift to 1-based
  }
  return out;
}

}  // namespace crmc::support
