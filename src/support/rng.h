// Deterministic random number generation for reproducible simulations.
//
// Every node in a simulation owns an independent RandomSource derived from
// (master seed, node index) via SplitMix64, so a run is a pure function of
// the engine configuration. Two core generators are available:
//
//   - xoshiro256++ (Blackman & Vigna), implemented from scratch — no
//     std::mt19937 so that results are bit-identical across standard
//     libraries. Sequential state: draw i+1 depends on draw i.
//   - Philox4x32-10 (Salmon et al., "Parallel Random Numbers: As Easy as
//     1, 2, 3", SC'11): a counter-based generator. Draw i of a stream is a
//     pure function of (key, stream, i), so any lane of a batched
//     simulation is independently reproducible and whole blocks of draws
//     vectorize (src/simd/). The scalar path here and the SIMD kernels
//     compute the identical block function, so they agree draw-for-draw.
//
// RandomSource::ForStream selects the generator via RngKind; the default
// stays xoshiro so existing seeds keep their historical bit streams.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "support/assert.h"

namespace crmc::support {

// SplitMix64: used for seeding and for cheap stateless mixing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256++ 1.0.
class Xoshiro256pp {
 public:
  // Unseeded (all-zero state): a placeholder that is never drawn from.
  constexpr Xoshiro256pp() = default;

  explicit Xoshiro256pp(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  // Raw-state constructor for the simd stream-seeding kernel, which runs
  // the SplitMix64 expansion above for several streams at once and must
  // land on the identical state words.
  explicit Xoshiro256pp(const std::uint64_t state[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

// Which core generator a RandomSource stream runs on.
enum class RngKind : std::uint8_t {
  kXoshiro = 0,  // sequential xoshiro256++ (historical bit streams)
  kPhilox = 1,   // counter-based Philox4x32-10 (vectorizable)
};

inline const char* ToString(RngKind kind) {
  return kind == RngKind::kPhilox ? "philox" : "xoshiro";
}

inline std::optional<RngKind> ParseRngKind(std::string_view name) {
  if (name == "xoshiro") return RngKind::kXoshiro;
  if (name == "philox") return RngKind::kPhilox;
  return std::nullopt;
}

// Philox4x32-10 block function (Salmon et al., SC'11). One block maps a
// 128-bit counter and a 64-bit key through 10 multiply/xor rounds to four
// statistically independent 32-bit words (Crush-resistant per the paper).
// Everything here is constexpr-friendly pure math: the SIMD kernels
// (src/simd/kernels_*.cpp) re-implement exactly this function 4/8 blocks at
// a time, and tests/rng_test.cpp pins the Random123 known-answer vectors.
struct Philox4x32 {
  static constexpr std::uint32_t kMult0 = 0xD2511F53u;
  static constexpr std::uint32_t kMult1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1
  static constexpr int kRounds = 10;

  static constexpr void Block(std::uint32_t c0, std::uint32_t c1,
                              std::uint32_t c2, std::uint32_t c3,
                              std::uint32_t k0, std::uint32_t k1,
                              std::uint32_t out[4]) {
    std::uint32_t x0 = c0;
    std::uint32_t x1 = c1;
    std::uint32_t x2 = c2;
    std::uint32_t x3 = c3;
    for (int round = 0; round < kRounds; ++round) {
      const std::uint64_t p0 = static_cast<std::uint64_t>(kMult0) * x0;
      const std::uint64_t p1 = static_cast<std::uint64_t>(kMult1) * x2;
      const std::uint32_t y0 = static_cast<std::uint32_t>(p1 >> 32) ^ x1 ^ k0;
      const std::uint32_t y1 = static_cast<std::uint32_t>(p1);
      const std::uint32_t y2 = static_cast<std::uint32_t>(p0 >> 32) ^ x3 ^ k1;
      const std::uint32_t y3 = static_cast<std::uint32_t>(p0);
      x0 = y0;
      x1 = y1;
      x2 = y2;
      x3 = y3;
      k0 += kWeyl0;
      k1 += kWeyl1;
    }
    out[0] = x0;
    out[1] = x1;
    out[2] = x2;
    out[3] = x3;
  }

  // The two uint64 draws of block `block` of stream (key, stream): counter
  // words are (block_lo, block_hi, stream_lo, stream_hi) and key words are
  // (key_lo, key_hi). Draws 2i and 2i+1 of the stream are the [0] and [1]
  // halves of block i — the contract RandomSource::NextU64 and every SIMD
  // kernel share.
  static constexpr void BlockU64(std::uint64_t key, std::uint64_t stream,
                                 std::uint64_t block, std::uint64_t out[2]) {
    std::uint32_t words[4] = {};
    Block(static_cast<std::uint32_t>(block),
          static_cast<std::uint32_t>(block >> 32),
          static_cast<std::uint32_t>(stream),
          static_cast<std::uint32_t>(stream >> 32),
          static_cast<std::uint32_t>(key),
          static_cast<std::uint32_t>(key >> 32), words);
    out[0] = words[0] | (static_cast<std::uint64_t>(words[1]) << 32);
    out[1] = words[2] | (static_cast<std::uint64_t>(words[3]) << 32);
  }
};

// High-level random source with the distributions the protocols need.
//
// In xoshiro mode the stream is the generator state. In philox mode the
// stream is (key, stream id, next draw index) plus a one-block memo: the
// memo caches the two draws of one block keyed by block index, so it can
// never go stale — block values are pure functions of (key, stream, block),
// and a SIMD kernel that advances draw_index out-of-line leaves any cached
// block just as valid as before.
class RandomSource {
 public:
  // Unseeded placeholder (xoshiro mode, all-zero state). Exists so scratch
  // slots that are never drawn from — e.g. the fault injector's streams on
  // a pristine run — skip the seeding work.
  RandomSource() = default;

  explicit RandomSource(std::uint64_t seed) : gen_(seed) {}

  // Derive an independent stream (e.g., per node) from a master seed. Both
  // kinds mix (master_seed, stream) identically; philox uses the mixed
  // value as the block-function key and keeps the raw stream id in the
  // upper counter words as collision insurance.
  static RandomSource ForStream(std::uint64_t master_seed,
                                std::uint64_t stream,
                                RngKind kind = RngKind::kXoshiro) {
    SplitMix64 sm(master_seed ^ (0xa0761d6478bd642fULL * (stream + 1)));
    if (kind == RngKind::kXoshiro) return RandomSource(sm.Next());
    RandomSource rs;
    rs.kind_ = RngKind::kPhilox;
    rs.philox_key_ = sm.Next();
    rs.philox_stream_ = stream;
    return rs;
  }

  // Raw-state factories for the simd stream-seeding kernel (bit-exact with
  // ForStream given the same expansion; see simd/kernels.h).
  static RandomSource FromXoshiroState(const std::uint64_t state[4]) {
    RandomSource rs;
    rs.gen_ = Xoshiro256pp(state);
    return rs;
  }
  static RandomSource FromPhiloxKey(std::uint64_t key, std::uint64_t stream) {
    RandomSource rs;
    rs.kind_ = RngKind::kPhilox;
    rs.philox_key_ = key;
    rs.philox_stream_ = stream;
    return rs;
  }

  std::uint64_t NextU64() {
    if (kind_ == RngKind::kXoshiro) return gen_.Next();
    const std::uint64_t block = philox_draws_ >> 1;
    if (block != cached_block_) {
      Philox4x32::BlockU64(philox_key_, philox_stream_, block, cached_);
      cached_block_ = block;
    }
    return cached_[philox_draws_++ & 1];
  }

  // Uniform integer in [lo, hi], inclusive. Unbiased (Lemire's method).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    CRMC_CHECK(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(NextU64());  // full range
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  // ---- Philox state, exposed for the SIMD kernels (src/simd/). ----
  RngKind kind() const { return kind_; }
  std::uint64_t philox_key() const { return philox_key_; }
  std::uint64_t philox_stream() const { return philox_stream_; }
  std::uint64_t philox_draws() const { return philox_draws_; }
  // A kernel that generated this stream's next `n` draws out-of-line
  // advances the counter here; the block memo stays valid (see above).
  void SkipPhiloxDraws(std::uint64_t n) { philox_draws_ += n; }

 private:
  Xoshiro256pp gen_;
  std::uint64_t philox_key_ = 0;
  std::uint64_t philox_stream_ = 0;
  std::uint64_t philox_draws_ = 0;  // index of the next draw
  std::uint64_t cached_[2] = {};
  std::uint64_t cached_block_ = ~0ULL;  // no block memoized
  RngKind kind_ = RngKind::kXoshiro;
};

// Precomputed-range uniform sampler for batch draws.
//
// RandomSource::UniformInt recomputes Lemire's rejection threshold on every
// (rejecting) call. When a whole round of a simulation draws from the same
// [lo, hi] — one draw per active node — the threshold is a loop invariant;
// this class hoists it. Draw(rs) consumes rs exactly like
// rs.UniformInt(lo, hi) and returns the bit-identical result, so batched
// and scalar code paths stay interchangeable in parity tests.
class BatchUniformInt {
 public:
  BatchUniformInt(std::int64_t lo, std::int64_t hi) : lo_(lo) {
    CRMC_CHECK(lo <= hi);
    range_ = static_cast<std::uint64_t>(hi - lo) + 1;
    threshold_ = range_ == 0 ? 0 : (0 - range_) % range_;
  }

  std::int64_t Draw(RandomSource& rs) const {
    std::uint64_t x = rs.NextU64();
    if (range_ == 0) return static_cast<std::int64_t>(x);  // full range
    __uint128_t m = static_cast<__uint128_t>(x) * range_;
    auto low = static_cast<std::uint64_t>(m);
    // Rejection fires iff low < threshold_ (threshold_ < range_, so this
    // is exactly UniformInt's nested low < range_ / low < threshold test).
    while (low < threshold_) {
      x = rs.NextU64();
      m = static_cast<__uint128_t>(x) * range_;
      low = static_cast<std::uint64_t>(m);
    }
    return lo_ + static_cast<std::int64_t>(m >> 64);
  }

  // Parameters, exposed for the SIMD kernels (which must replicate the
  // rejection test bit-for-bit).
  std::int64_t lo() const { return lo_; }
  std::uint64_t range() const { return range_; }
  std::uint64_t threshold() const { return threshold_; }

 private:
  std::int64_t lo_;
  std::uint64_t range_;
  std::uint64_t threshold_;
};

// Precomputed-probability Bernoulli sampler for batch draws.
//
// RandomSource::Bernoulli(p) compares a 53-bit uniform double against p;
// this class precomputes the equivalent integer threshold so the per-draw
// work is one generator step and one integer compare. Draw(rs) consumes rs
// exactly like rs.Bernoulli(p) (including consuming no draw for p outside
// (0, 1)) and returns the bit-identical result.
class BatchBernoulli {
 public:
  explicit BatchBernoulli(double p) {
    if (p <= 0.0) {
      fixed_ = 0;
    } else if (p >= 1.0) {
      fixed_ = 1;
    } else {
      fixed_ = -1;
      // (x >> 11) * 2^-53 < p  <=>  (x >> 11) < ceil(p * 2^53), exactly:
      // both sides of the original compare are exact doubles, and scaling
      // p by a power of two is lossless.
      threshold_ = static_cast<std::uint64_t>(__builtin_ceil(p * 0x1.0p53));
    }
  }

  bool Draw(RandomSource& rs) const {
    if (fixed_ >= 0) return fixed_ != 0;
    return (rs.NextU64() >> 11) < threshold_;
  }

  // Parameters, exposed for the SIMD kernels. fixed() in {-1, 0, 1}: -1
  // samples one draw, 0/1 are constant outcomes that consume no draw.
  int fixed() const { return fixed_; }
  std::uint64_t threshold() const { return threshold_; }

 private:
  int fixed_ = -1;  // -1: sample; 0/1: constant outcome, no draw consumed
  std::uint64_t threshold_ = 0;
};

// Reusable scratch for SampleWithoutReplacement: the dense low-slot array
// plus the flat linear-probe displacement table. A caller that samples once
// per trial (the engines) keeps one of these per thread so the per-trial
// cost is draws plus O(k) writes — no allocation, no O(capacity) clears
// (dirty table slots are tracked and reset individually).
struct SampleScratch {
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> keys;
  std::vector<std::int64_t> vals;
  std::vector<std::size_t> dirty;  // table slots holding a live key
};

// Sample `k` distinct values from [1, population] uniformly at random into
// `out`. Uses a sparse Fisher–Yates so it is O(k) time even for huge
// populations (used to hand baseline protocols unique IDs from [n]).
// The full-population case returns the identity permutation outright: the
// simulated nodes are anonymous, so which node holds which ID is already
// an arbitrary labelling and the shuffle (plus its displacement table)
// would be pure overhead on the per-trial setup path.
//
// The displaced-entry table is split: slots below k live in a dense array
// (every i < k is read exactly once, in order), slots >= k in a flat
// linear-probe map at load factor <= 1/2. This runs ~10x faster than the
// obvious unordered_map, which dominated per-trial engine setup. The draw
// sequence and output are identical for every table capacity >= 2k, so
// scratch reuse across calls with different k cannot change results.
inline void SampleWithoutReplacement(std::int64_t population, std::int64_t k,
                                     RandomSource& rng, SampleScratch& scratch,
                                     std::vector<std::int64_t>& out) {
  CRMC_REQUIRE(k >= 0 && k <= population);
  const auto uk = static_cast<std::size_t>(k);
  out.resize(uk);
  if (k == population) {
    for (std::int64_t i = 0; i < k; ++i) {
      out[static_cast<std::size_t>(i)] = i + 1;
    }
    return;
  }
  if (k <= 2) {
    // Hand-unrolled tiny-k path (the two_active engine setup): identical
    // draws and outputs as the general loop below — low[] starts as the
    // identity, so the swap bookkeeping collapses to the j1-collision
    // cases — but no scratch-table traffic.
    if (k >= 1) {
      out[0] = rng.UniformInt(0, population - 1) + 1;
    }
    if (k == 2) {
      const std::int64_t j0 = out[0] - 1;
      const std::int64_t j1 = rng.UniformInt(1, population - 1);
      std::int64_t value;
      if (j1 == 1) {
        value = j0 == 1 ? 0 : 1;  // low[1] after the first swap
      } else if (j1 == j0) {
        value = 0;  // displaced entry: the table would hold low[0]
      } else {
        value = j1;
      }
      out[1] = value + 1;
    }
    return;
  }
  scratch.low.resize(uk);
  for (std::size_t i = 0; i < uk; ++i) {
    scratch.low[i] = static_cast<std::int64_t>(i);
  }
  std::size_t cap = scratch.keys.size();
  if (cap < uk * 2 || cap < 16) {
    cap = 16;
    while (cap < uk * 2) cap <<= 1;
    scratch.keys.assign(cap, -1);
    scratch.vals.resize(cap);
    scratch.dirty.clear();
  } else {
    for (const std::size_t s : scratch.dirty) scratch.keys[s] = -1;
    scratch.dirty.clear();
  }
  const std::size_t mask = cap - 1;
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j = rng.UniformInt(i, population - 1);
    const std::int64_t value_i = scratch.low[static_cast<std::size_t>(i)];
    std::int64_t value_j;
    if (j < k) {
      value_j = scratch.low[static_cast<std::size_t>(j)];
      scratch.low[static_cast<std::size_t>(j)] = value_i;
    } else {
      std::size_t s = static_cast<std::size_t>(
                          static_cast<std::uint64_t>(j) *
                          0x9e3779b97f4a7c15ULL >> 32) &
                      mask;
      while (scratch.keys[s] != -1 && scratch.keys[s] != j) s = (s + 1) & mask;
      if (scratch.keys[s] == -1) {
        value_j = j;
        scratch.dirty.push_back(s);
      } else {
        value_j = scratch.vals[s];
      }
      scratch.keys[s] = j;
      scratch.vals[s] = value_i;
    }
    out[static_cast<std::size_t>(i)] = value_j + 1;  // shift to 1-based
  }
}

// One-shot convenience (pays the scratch allocations every call).
inline std::vector<std::int64_t> SampleWithoutReplacement(
    std::int64_t population, std::int64_t k, RandomSource& rng) {
  SampleScratch scratch;
  std::vector<std::int64_t> out;
  SampleWithoutReplacement(population, k, rng, scratch, out);
  return out;
}

}  // namespace crmc::support
