// Inline-storage vector for per-trial result fields.
//
// A Monte-Carlo sweep materializes one RunResult per trial, and a one-shot
// contention-resolution trial appends exactly one solved round — so a
// std::vector field costs every trial a malloc (the first push_back) and a
// free (when the result slot is reused), a constant that dominates the
// per-trial epilogue at batch-engine throughputs. SmallVector keeps up to
// N elements inline and only touches the heap past that; repeated-use
// protocols (k-selection records one entry per delivered packet) spill and
// behave like a plain vector.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>

namespace crmc::support {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "inline storage relies on memcpy relocation");
  static_assert(N > 0);

 public:
  SmallVector() = default;
  SmallVector(const SmallVector& other) { CopyFrom(other); }
  SmallVector(SmallVector&& other) noexcept { MoveFrom(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~SmallVector() { Release(); }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow();
    data_[size_++] = value;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void CopyFrom(const SmallVector& other) {
    size_ = other.size_;
    if (size_ > N) {
      capacity_ = other.capacity_;
      data_ = new T[capacity_];
    } else {
      capacity_ = N;
      data_ = inline_;
    }
    std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  // Leaves `other` empty and pointing at its inline storage.
  void MoveFrom(SmallVector& other) {
    size_ = other.size_;
    if (other.data_ != other.inline_) {  // steal the heap buffer
      data_ = other.data_;
      capacity_ = other.capacity_;
    } else {
      data_ = inline_;
      capacity_ = N;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    }
    other.data_ = other.inline_;
    other.capacity_ = N;
    other.size_ = 0;
  }

  void Release() {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    capacity_ = N;
    size_ = 0;
  }

  void Grow() {
    const std::size_t next = capacity_ * 2;
    T* grown = new T[next];
    std::memcpy(grown, data_, size_ * sizeof(T));
    if (data_ != inline_) delete[] data_;
    data_ = grown;
    capacity_ = next;
  }

  T inline_[N];
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace crmc::support
