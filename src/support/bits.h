// Small integer/bit helpers used throughout the library.
//
// The paper's algorithms are phrased in terms of lg C, lg lg n, powers of
// two, and tree-level index arithmetic; these helpers centralize that math
// so every module computes it the same way.
#pragma once

#include <bit>
#include <cstdint>

#include "support/assert.h"

namespace crmc::support {

// floor(log2(x)) for x >= 1.
constexpr int FloorLog2(std::uint64_t x) {
  CRMC_CHECK(x >= 1);
  return 63 - std::countl_zero(x);
}

// ceil(log2(x)) for x >= 1. CeilLog2(1) == 0.
constexpr int CeilLog2(std::uint64_t x) {
  CRMC_CHECK(x >= 1);
  return (x == 1) ? 0 : 64 - std::countl_zero(x - 1);
}

constexpr bool IsPowerOfTwo(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

// Largest power of two <= x, for x >= 1.
constexpr std::uint64_t FloorPow2(std::uint64_t x) {
  return std::uint64_t{1} << FloorLog2(x);
}

// Smallest power of two >= x, for x >= 1.
constexpr std::uint64_t CeilPow2(std::uint64_t x) {
  return std::uint64_t{1} << CeilLog2(x);
}

// ceil(a / b) for a >= 0, b >= 1.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  CRMC_CHECK(a >= 0 && b >= 1);
  return (a + b - 1) / b;
}

// ceil(lg lg n): the iteration count used by the Reduce step (Figure 2 of
// the paper). Defined for n >= 2; n in {2} yields 0 so we clamp to >= 1
// (a single iteration) to keep the knockout schedule non-degenerate.
constexpr int CeilLgLg(std::uint64_t n) {
  CRMC_CHECK(n >= 2);
  const int lg = CeilLog2(n);
  const int lglg = CeilLog2(static_cast<std::uint64_t>(lg < 1 ? 1 : lg));
  return lglg < 1 ? 1 : lglg;
}

// Natural-log-free helpers for benchmark bookkeeping.
constexpr double Log2d(double x) { return x <= 1.0 ? 0.0 : __builtin_log2(x); }

}  // namespace crmc::support
