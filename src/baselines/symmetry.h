// The symmetry-breaking cap behind the lower bound.
//
// The paper matches the lower bound Omega(log n / log C + loglog n) of
// [Newport, DISC 2014]. The log n / log C term has a clean one-round core
// in the restricted two-node case: two anonymous nodes running the same
// randomized algorithm act i.i.d. each round, choosing a channel c and an
// action (transmit or listen). The round *detectably breaks symmetry* only
// in these outcomes:
//
//   - same channel, one transmits / one listens (a clean message, and each
//     node knows which side it was on);
//   - different channels, at least one transmitter (a transmitter hears
//     itself alone and can adopt its channel label — the renaming event).
//
// Same-channel collisions, and any outcome where both listen, leave the
// nodes in identical or unverifiable states. Writing tau_c / lambda_c for
// the per-channel transmit / listen probabilities, the break probability
// is
//
//   P(break) = 1 - (sum_c lambda_c)^2 - sum_c tau_c^2,
//
// which is maximized by uniform transmission with a small listening
// reserve: total listen mass 1/(C+1) and tau_c = 1/(C+1) per channel,
// giving P* = C / (C+1). (All-transmit-uniform achieves only 1 - 1/C; the
// numeric search in bench E21 originally exposed that gap.) Hence any
// algorithm fails to break symmetry for t rounds with probability at
// least (C+1)^-t, and w.h.p. correctness needs
// t = Omega(log n / log(C+1)) = Omega(log n / log C) — the first term of
// the bound. (The loglog n term needs the full adaptive argument of [14];
// see DESIGN.md.)
//
// This module evaluates P(break) exactly for a given strategy and searches
// for better strategies numerically (none beat C/(C+1) — bench E21).
#pragma once

#include <cstdint>
#include <vector>

namespace crmc::baselines {

// One round of a (memoryless, anonymous) two-node strategy: per channel,
// the probability of transmitting there and of listening there. Sums must
// total 1 (+-1e-9).
struct RoundStrategy {
  std::vector<double> transmit;  // tau_c, c = 0..C-1
  std::vector<double> listen;    // lambda_c

  static RoundStrategy UniformTransmit(std::int32_t channels);
  // The optimal strategy: tau_c = 1/(C+1), total listen mass 1/(C+1).
  static RoundStrategy Optimal(std::int32_t channels);
};

// Exact probability that one round of `s` detectably breaks symmetry
// between two i.i.d. nodes (see file comment for the outcome calculus).
double BreakProbability(const RoundStrategy& s);

// The analytic optimum C / (C + 1).
double OptimalBreakProbability(std::int32_t channels);

// Hill-climbing search over strategies starting from random points;
// returns the best break probability found (should converge to the
// analytic optimum from below). Deterministic in `seed`.
double SearchBestBreakProbability(std::int32_t channels,
                                  std::int32_t restarts, std::int32_t steps,
                                  std::uint64_t seed = 0x10e7);

// Rounds needed to break symmetry with probability >= 1 - 1/n when every
// round succeeds with probability at most p: ceil(log(n) / -log(1 - p)).
double ImpliedRoundLowerBound(double n, double p);

}  // namespace crmc::baselines
