// Baseline contention-resolution algorithms from the literature the paper
// compares against (Section 2, Related Work), plus the analytic lower-bound
// curve. These populate the cross-model comparison experiments.
//
// Model discipline: the simulator always reports full strong-CD feedback,
// so "no-CD" baselines enforce their weaker model on themselves — receivers
// may act only on a cleanly received message (collision and silence are
// indistinguishable "noise"), and transmitters learn nothing from their own
// rounds.
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::baselines {

// --- Single channel, collision detection, probability 1 -----------------
// The classic O(log n) descent (Related Work: "active nodes use collisions
// to guide a descent through a binary search tree over the n possible ids
// to identify the smallest id of an active node"). Requires the unique IDs
// from [n] that NodeContext provides. Deterministic given the ID
// assignment; optimal for a single channel w.h.p. per [Newport 2014].
sim::Task<void> BinaryDescentCdProtocol(sim::NodeContext& ctx);
sim::ProtocolFactory MakeBinaryDescentCd();

// --- Single channel, no collision detection ------------------------------
// Bar-Yehuda-style decay: sweep transmission probabilities 2^-1 .. 2^-lg n
// forever. Solves (a lone transmission happens) in O(log^2 n) rounds
// w.h.p. — the single-channel no-CD optimum [Jurdzinski-Stachowiak 2002,
// Farach-Colton et al. 2006, Newport 2014]. Nodes never terminate on their
// own; run with stop_when_solved.
sim::Task<void> DecayNoCdProtocol(sim::NodeContext& ctx);
sim::ProtocolFactory MakeDecayNoCd();

// --- Multiple channels, no collision detection ---------------------------
// A Daum-et-al.-2012-flavoured algorithm (our construction, see DESIGN.md):
// odd rounds run decay on the primary channel; even rounds run elimination
// lotteries spread across channels 2..C, where hearing a clean message
// knocks the listener out. Exhibits the O(log^2 n / C + log n) shape of
// the multi-channel no-CD bound.
sim::Task<void> DaumStyleProtocol(sim::NodeContext& ctx);
sim::ProtocolFactory MakeDaumStyle();

// --- Expected-time algorithms ---------------------------------------------
// Willard's log-logarithmic selection-resolution strategy [Willard, SIAM
// J. Comput. 1986] — single channel, strong CD: binary-search the density
// exponent d in [0, lg n], transmitting with probability 2^-d; collision
// means too dense (raise d), silence too sparse (lower d), a message ends
// the run. O(log log n) *expected* rounds; the w.h.p. time is worse than
// the knockout's — the expected/w.h.p. trade-off the paper's conclusion
// discusses.
sim::Task<void> WillardCdProtocol(sim::NodeContext& ctx);
sim::ProtocolFactory MakeWillardCd();

// The conclusion's remark that without collision detection, "the best
// expected time solutions ... reach O(1) expected complexity with as few
// as log n channels": a geometric channel lottery with an echo-confirm
// handshake. Each 3-round epoch: (1) pick channel g with P(g = i) ~ 2^-i
// and shout a random nonce with probability 1/2 (others listen on a
// geometric channel); (2) listeners that heard a clean nonce echo it back
// with probability 1/2; (3) a shouter that hears its own nonce echoed was
// provably alone on its channel and claims the primary channel. With
// ~lg |A| channels some level hosts exactly one shouter with constant
// probability, so the expected number of epochs is O(1). Runs correctly
// in the no-CD model (only clean messages are acted upon).
sim::Task<void> ExpectedO1MultichannelProtocol(sim::NodeContext& ctx);
sim::ProtocolFactory MakeExpectedO1Multichannel();

// --- Oracle reference -----------------------------------------------------
// Slotted ALOHA that cheats by knowing |A| exactly: every round, transmit
// on the primary channel with probability 1/|A|. Expected O(1)/e^-1 success
// rate per round; Theta(log n) w.h.p. Useful as the "how fast could a
// clairvoyant randomized strategy be" reference line.
sim::Task<void> AlohaOracleProtocol(sim::NodeContext& ctx);
sim::ProtocolFactory MakeAlohaOracle();

// --- Analytic bounds -------------------------------------------------------
// The Newport 2014 lower bound the paper matches:
//   Omega(log n / log C + log log n)   (w.h.p., C channels, strong CD).
// Returned without hidden constants, as a reference curve for plots.
double LowerBoundRounds(double n, double channels);

// The upper bounds proved by the paper, again constant-free:
//   two-active:  log n / log C + log log n          (Theorem 1)
//   general:     log n / log C + log log n * log log log n   (Theorem 4)
double TwoActiveBoundRounds(double n, double channels);
double GeneralBoundRounds(double n, double channels);

}  // namespace crmc::baselines
