#include "baselines/symmetry.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace crmc::baselines {

RoundStrategy RoundStrategy::UniformTransmit(std::int32_t channels) {
  CRMC_REQUIRE(channels >= 1);
  RoundStrategy s;
  s.transmit.assign(static_cast<std::size_t>(channels),
                    1.0 / static_cast<double>(channels));
  s.listen.assign(static_cast<std::size_t>(channels), 0.0);
  return s;
}

double BreakProbability(const RoundStrategy& s) {
  CRMC_REQUIRE(s.transmit.size() == s.listen.size());
  CRMC_REQUIRE(!s.transmit.empty());
  double total = 0.0;
  double listen_sum = 0.0;
  double tx_sq = 0.0;
  for (std::size_t c = 0; c < s.transmit.size(); ++c) {
    CRMC_REQUIRE(s.transmit[c] >= -1e-12 && s.listen[c] >= -1e-12);
    total += s.transmit[c] + s.listen[c];
    listen_sum += s.listen[c];
    tx_sq += s.transmit[c] * s.transmit[c];
  }
  CRMC_REQUIRE_MSG(std::abs(total - 1.0) < 1e-9,
                   "strategy probabilities must sum to 1, got " << total);
  // Unbroken outcomes: both listen (anywhere), or both transmit on the
  // same channel. Everything else is a detectable asymmetry.
  return 1.0 - listen_sum * listen_sum - tx_sq;
}

RoundStrategy RoundStrategy::Optimal(std::int32_t channels) {
  CRMC_REQUIRE(channels >= 1);
  RoundStrategy s;
  const double unit = 1.0 / static_cast<double>(channels + 1);
  s.transmit.assign(static_cast<std::size_t>(channels), unit);
  // Only the total listening mass matters; park it on channel 1.
  s.listen.assign(static_cast<std::size_t>(channels), 0.0);
  s.listen[0] = unit;
  return s;
}

double OptimalBreakProbability(std::int32_t channels) {
  CRMC_REQUIRE(channels >= 1);
  // Minimize (sum lambda)^2 + sum tau_c^2 subject to total mass 1: with
  // lambda = L and tau uniform over C channels, L^2 + (1-L)^2/C is
  // minimized at L = 1/(C+1), giving unbroken mass 1/(C+1).
  return static_cast<double>(channels) / static_cast<double>(channels + 1);
}

namespace {

// Project a raw non-negative weight vector onto the probability simplex.
void Normalize(RoundStrategy& s) {
  double total = 0.0;
  for (std::size_t c = 0; c < s.transmit.size(); ++c) {
    s.transmit[c] = std::max(0.0, s.transmit[c]);
    s.listen[c] = std::max(0.0, s.listen[c]);
    total += s.transmit[c] + s.listen[c];
  }
  CRMC_CHECK(total > 0.0);
  for (std::size_t c = 0; c < s.transmit.size(); ++c) {
    s.transmit[c] /= total;
    s.listen[c] /= total;
  }
}

}  // namespace

double SearchBestBreakProbability(std::int32_t channels,
                                  std::int32_t restarts, std::int32_t steps,
                                  std::uint64_t seed) {
  CRMC_REQUIRE(channels >= 1 && restarts >= 1 && steps >= 1);
  support::RandomSource rng(seed);
  double best = 0.0;
  for (std::int32_t r = 0; r < restarts; ++r) {
    RoundStrategy s;
    s.transmit.resize(static_cast<std::size_t>(channels));
    s.listen.resize(static_cast<std::size_t>(channels));
    for (std::size_t c = 0; c < s.transmit.size(); ++c) {
      s.transmit[c] = rng.UniformDouble();
      s.listen[c] = rng.UniformDouble();
    }
    Normalize(s);
    double current = BreakProbability(s);
    double step_size = 0.25;
    for (std::int32_t i = 0; i < steps; ++i) {
      RoundStrategy candidate = s;
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, 2 * channels - 1));
      const double delta = (rng.UniformDouble() - 0.5) * step_size;
      if (idx < static_cast<std::size_t>(channels)) {
        candidate.transmit[idx] += delta;
      } else {
        candidate.listen[idx - static_cast<std::size_t>(channels)] += delta;
      }
      Normalize(candidate);
      const double value = BreakProbability(candidate);
      if (value > current) {
        s = candidate;
        current = value;
      } else {
        step_size *= 0.995;  // cool down
      }
    }
    best = std::max(best, current);
  }
  return best;
}

double ImpliedRoundLowerBound(double n, double p) {
  CRMC_REQUIRE(n >= 2.0 && p > 0.0 && p < 1.0);
  return std::ceil(std::log(n) / -std::log(1.0 - p));
}

}  // namespace crmc::baselines
