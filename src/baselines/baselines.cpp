#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>

#include "mac/channel.h"
#include "support/assert.h"
#include "support/bits.h"

namespace crmc::baselines {

using mac::Feedback;
using mac::kPrimaryChannel;
using sim::NodeContext;
using sim::Task;

// ---------------------------------------------------------------------------
// Single channel + CD: binary descent over the ID space [1, n].
// Invariant: the interval [lo, hi] contains the smallest active ID, and
// every active node knows the interval (all information flows through the
// shared channel, which everyone observes). Each round the nodes whose IDs
// lie in the left half transmit:
//   collision -> at least two in the left half: descend left;
//   message   -> exactly one in the left half: it transmitted alone on the
//                primary channel, so the problem is solved;
//   silence   -> left half empty: descend right.
// The interval halves every round, so at most ceil(lg n) + 1 rounds.
Task<void> BinaryDescentCdProtocol(NodeContext& ctx) {
  std::int64_t lo = 1;
  std::int64_t hi = ctx.population();
  const std::int64_t my_id = ctx.unique_id();
  for (;;) {
    const std::int64_t mid = lo + (hi - lo) / 2;  // left half = [lo, mid]
    const bool in_left = my_id >= lo && my_id <= mid;
    const Feedback fb = in_left ? co_await ctx.Transmit(kPrimaryChannel)
                                : co_await ctx.Listen(kPrimaryChannel);
    if (fb.MessageHeard()) co_return;  // lone transmission: solved
    if (fb.Collision()) {
      hi = mid;  // >= 2 active IDs in the left half
    } else {
      lo = mid + 1;  // left half empty
    }
    // A model assumption, not an internal invariant: jamming can misreport
    // an empty half as a collision and walk the descent off the interval.
    // PROTO_CHECK lets the engines abort the run gracefully when an
    // adversarial layer is active (and still crash loudly on pristine runs,
    // where this really would be a bug).
    CRMC_PROTO_CHECK_MSG(lo <= hi, "descent lost the smallest active ID");
  }
}

sim::ProtocolFactory MakeBinaryDescentCd() {
  return [](NodeContext& ctx) { return BinaryDescentCdProtocol(ctx); };
}

// ---------------------------------------------------------------------------
// Single channel, no CD: decay sweeps.
Task<void> DecayNoCdProtocol(NodeContext& ctx) {
  const int max_exponent = std::max(
      1, support::CeilLog2(static_cast<std::uint64_t>(ctx.population())));
  for (;;) {
    for (int d = 1; d <= max_exponent; ++d) {
      const double p = std::ldexp(1.0, -d);  // 2^-d
      if (ctx.rng().Bernoulli(p)) {
        (void)co_await ctx.Transmit(kPrimaryChannel);
        // No CD: a transmitter learns nothing actionable; keep sweeping.
      } else {
        (void)co_await ctx.Listen(kPrimaryChannel);
        // No CD: collision is indistinguishable from silence; a clean
        // message would mean the problem is solved, but the protocol has
        // no termination obligation — the engine detects the solution.
      }
    }
  }
}

sim::ProtocolFactory MakeDecayNoCd() {
  return [](NodeContext& ctx) { return DecayNoCdProtocol(ctx); };
}

// ---------------------------------------------------------------------------
// Multiple channels, no CD: decay on the primary channel interleaved with
// elimination lotteries on channels 2..C.
Task<void> DaumStyleProtocol(NodeContext& ctx) {
  const int max_exponent = std::max(
      1, support::CeilLog2(static_cast<std::uint64_t>(ctx.population())));
  const std::int32_t side_channels = ctx.channels() - 1;
  if (side_channels <= 0) {
    // Degenerates to plain decay with one channel.
    co_await DecayNoCdProtocol(ctx);
    co_return;
  }
  for (;;) {
    for (int d = 1; d <= max_exponent; ++d) {
      // Odd slot: decay attempt on the primary channel.
      const double p = std::ldexp(1.0, -d);
      if (ctx.rng().Bernoulli(p)) {
        (void)co_await ctx.Transmit(kPrimaryChannel);
      } else {
        (void)co_await ctx.Listen(kPrimaryChannel);
      }
      // Even slot: elimination lottery. Half the nodes shout at the
      // current density on a random side channel; the other half listen on
      // a random side channel and drop out if they hear a *clean* message
      // (the only feedback a no-CD receiver can act on).
      const auto side = static_cast<mac::ChannelId>(
          2 + ctx.rng().UniformInt(0, side_channels - 1));
      if (ctx.rng().Bernoulli(0.5)) {
        if (ctx.rng().Bernoulli(p)) {
          (void)co_await ctx.Transmit(side);
        } else {
          (void)co_await ctx.Sleep();
        }
      } else {
        const Feedback fb = co_await ctx.Listen(side);
        if (fb.MessageHeard()) co_return;  // knocked out by a lone shouter
      }
    }
  }
}

sim::ProtocolFactory MakeDaumStyle() {
  return [](NodeContext& ctx) { return DaumStyleProtocol(ctx); };
}

// ---------------------------------------------------------------------------
// Willard-style expected-O(log log n) density search (single channel, CD).
Task<void> WillardCdProtocol(NodeContext& ctx) {
  const int max_exponent = std::max(
      1, support::CeilLog2(static_cast<std::uint64_t>(ctx.population())));
  for (;;) {
    int lo = 0;
    int hi = max_exponent;
    while (lo <= hi) {
      const int d = (lo + hi) / 2;
      const double p = std::ldexp(1.0, -d);
      Feedback fb;
      if (ctx.rng().Bernoulli(p)) {
        fb = co_await ctx.Transmit(kPrimaryChannel);
      } else {
        fb = co_await ctx.Listen(kPrimaryChannel);
      }
      if (fb.MessageHeard()) co_return;     // someone was alone: solved
      if (fb.Collision()) {
        lo = d + 1;  // too dense: thin the density
      } else {
        hi = d - 1;  // silence: too sparse
      }
    }
    // Search collapsed without a lone transmission (noisy observations);
    // restart. Each search succeeds with constant probability, so the
    // expected number of restarts is O(1).
  }
}

sim::ProtocolFactory MakeWillardCd() {
  return [](NodeContext& ctx) { return WillardCdProtocol(ctx); };
}

// ---------------------------------------------------------------------------
// Expected-O(1) multichannel lottery with echo confirmation (no CD).
Task<void> ExpectedO1MultichannelProtocol(NodeContext& ctx) {
  const std::int32_t levels = std::max<std::int32_t>(
      1, std::min<std::int32_t>(
             ctx.channels(),
             support::CeilLog2(static_cast<std::uint64_t>(
                 std::max<std::int64_t>(ctx.population(), 2))) +
                 1));
  for (;;) {
    // Geometric channel choice: P(g = i) = 2^-i, leftovers on the top.
    std::int32_t g = 1;
    while (g < levels && ctx.rng().Bernoulli(0.5)) ++g;
    const auto lottery = static_cast<mac::ChannelId>(g);
    const std::uint64_t nonce = ctx.rng().NextU64();

    if (ctx.rng().Bernoulli(0.5)) {
      // Shouter: if alone on the channel, the echo proves it.
      (void)co_await ctx.Transmit(lottery, mac::Message{nonce});
      const Feedback echo = co_await ctx.Listen(lottery);
      if (echo.MessageHeard() && echo.message.payload == nonce) {
        (void)co_await ctx.Transmit(kPrimaryChannel, mac::Message{nonce});
        co_return;  // claimed the primary channel (collides if another
                    // level also confirmed; then nobody was solved and the
                    // claimants simply exit — remaining nodes continue)
      }
      (void)co_await ctx.Sleep();
    } else {
      // Listener: a clean message means exactly one shouter; echo it.
      const Feedback heard = co_await ctx.Listen(lottery);
      if (heard.MessageHeard() && ctx.rng().Bernoulli(0.5)) {
        (void)co_await ctx.Transmit(lottery, heard.message);
      } else {
        (void)co_await ctx.Sleep();
      }
      const Feedback claim = co_await ctx.Listen(kPrimaryChannel);
      if (claim.MessageHeard()) co_return;  // a confirmed winner claimed
    }
  }
}

sim::ProtocolFactory MakeExpectedO1Multichannel() {
  return [](NodeContext& ctx) {
    return ExpectedO1MultichannelProtocol(ctx);
  };
}

// ---------------------------------------------------------------------------
// Oracle ALOHA.
Task<void> AlohaOracleProtocol(NodeContext& ctx) {
  const double p = 1.0 / static_cast<double>(ctx.num_active_oracle());
  for (;;) {
    if (ctx.rng().Bernoulli(p)) {
      const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
      if (fb.MessageHeard()) co_return;  // alone: solved (oracle uses CD)
    } else {
      const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
      if (fb.MessageHeard()) co_return;
    }
  }
}

sim::ProtocolFactory MakeAlohaOracle() {
  return [](NodeContext& ctx) { return AlohaOracleProtocol(ctx); };
}

// ---------------------------------------------------------------------------
// Analytic curves.
namespace {
double SafeLog2(double x) { return std::log2(std::max(x, 2.0)); }
}  // namespace

double LowerBoundRounds(double n, double channels) {
  return SafeLog2(n) / SafeLog2(channels) + SafeLog2(SafeLog2(n));
}

double TwoActiveBoundRounds(double n, double channels) {
  return LowerBoundRounds(n, channels);
}

double GeneralBoundRounds(double n, double channels) {
  const double lglg = SafeLog2(SafeLog2(n));
  return SafeLog2(n) / SafeLog2(channels) + lglg * SafeLog2(lglg);
}

}  // namespace crmc::baselines
