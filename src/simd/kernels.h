// Vector kernels for the batch engine's three dominant loops: knockout
// Bernoulli masking, channel-choice histogramming with lone/collision
// classification, and active-set stream compaction.
//
// Every kernel has a scalar reference implementation and (on x86 builds)
// SSE4.2 / AVX2 variants selected at runtime through simd::ActiveBackend()
// (dispatch.h). All variants are bit-identical: the draw kernels consume
// each lane's RandomSource exactly as the scalar Draw() path would — same
// per-lane draw count and order — so the batch engine stays draw-for-draw
// parity-exact against the coroutine oracle under every backend.
//
// The draw kernels only vectorize the generator math for Philox-mode lanes
// (support::RngKind::kPhilox), where a lane's next draws are a pure
// function of (key, stream, draw index) and a whole SIMD group can be
// computed with no cross-draw dependency. Xoshiro-mode lanes are sequential
// by construction and take the scalar loop regardless of backend — the
// kernels accept them so callers need no mode check.
//
// Slot lists are just indices into the caller's RandomSource span; nothing
// requires them to address one trial. The trial-parallel executor
// (sim/trial_engine.h) exploits exactly this: it flattens W independent
// trials' per-node streams into one [lane * num_active + node] plane and
// hands the draw kernels slot lists spanning every lane, so a single
// CoinMask/UniformFill call vectorizes Philox evaluation *across trials* —
// the regime where per-trial batches are too short to fill vector lanes.
// Per-slot draw order is unchanged (each slot is an independent stream),
// so every lane stays bit-exact against a solo run of its seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace crmc::simd {

namespace internal {
std::size_t CompactKeepDispatch(std::span<std::int32_t> ids,
                                std::span<const std::uint8_t> drop);
}  // namespace internal

// Seeds out[k] = support::RandomSource::ForStream(master_seed,
// first_stream + k, kind) for every k, bit-exact with the scalar factory.
// The engines re-derive one stream per node on every trial, which made
// per-node stream construction a measurable slice of Monte-Carlo setup for
// large active sets; this kernel fills the array in place (no per-stream
// construction/copy). All backends share the scalar SplitMix64 expansion —
// see the dispatch note in kernels.cpp for the measured reason.
void SeedStreams(std::uint64_t master_seed, std::uint64_t first_stream,
                 support::RngKind kind,
                 std::span<support::RandomSource> out);

// Draws one Bernoulli per lane: mask[k] = coin.Draw(rng[alive[k]]) for
// every k, bit-exact with the scalar call (including consuming no draw for
// fixed-outcome coins). Returns the number of successes.
std::int64_t CoinMask(const support::BatchBernoulli& coin,
                      std::span<support::RandomSource> rng,
                      std::span<const std::int32_t> alive,
                      std::span<std::uint8_t> mask);

// Draws one bounded uniform integer per lane:
// out[k] = int32(dist.Draw(rng[alive[k]])), bit-exact with the scalar call
// (Lemire rejection included). Requires dist.range() to fit in int32 — the
// channel-pick use case; enforced with a check.
void UniformFill(const support::BatchUniformInt& dist,
                 std::span<support::RandomSource> rng,
                 std::span<const std::int32_t> alive,
                 std::span<std::int32_t> out);

// In-place stream compaction: keeps ids[k] where drop[k] == 0, preserving
// order, and returns the new length. drop.size() must equal ids.size().
// Tiny inputs skip dispatch entirely: the endgame of every trial (and the
// whole of two_active) compacts a handful of lanes per round, where the
// dispatch switch itself outweighed the copy.
inline std::size_t CompactKeep(std::span<std::int32_t> ids,
                               std::span<const std::uint8_t> drop) {
  CRMC_CHECK(ids.size() == drop.size());
  if (ids.size() <= 16) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < ids.size(); ++read) {
      ids[write] = ids[read];
      write += drop[read] == 0;
    }
    return write;
  }
  return internal::CompactKeepDispatch(ids, drop);
}

// Outcome of one all-transmitter round over chosen channels (the
// IDReduction spread round): per-channel occupancy plus the summary the
// MAC resolver would report.
struct Occupancy {
  std::int64_t lone_channels = 0;  // channels with exactly 1 transmitter
  bool primary_lone = false;       // channel `primary` had exactly 1
};

// Histograms channels[0..m) into `counts` (packed 16-bit counters,
// saturating at 2 — lone/collision classification only needs 0/1/2+) and
// classifies each lane: lone[k] = 1 iff channels[k] had exactly one
// transmitter. `counts` is caller-owned scratch sized >= max channel + 3
// (two padding entries for the vector gather) and must be all-zero on
// entry; it is sparsely re-zeroed before returning. `touched` is reusable
// scratch for the dirty-channel list.
Occupancy ClassifyChannels(std::span<const std::int32_t> channels,
                           std::int32_t primary,
                           std::span<std::uint16_t> counts,
                           std::vector<std::int32_t>& touched,
                           std::span<std::uint8_t> lone);

}  // namespace crmc::simd
