// Backend entry points behind simd/kernels.h. Internal to src/simd/: the
// scalar reference lives in kernels.cpp; the SSE4.2 / AVX2 variants live in
// their own translation units compiled with the matching -m flags, and must
// only be called when dispatch.h says the backend is available.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simd/kernels.h"
#include "support/rng.h"

namespace crmc::simd::internal {

std::int64_t CoinMaskScalar(const support::BatchBernoulli& coin,
                            std::span<support::RandomSource> rng,
                            std::span<const std::int32_t> alive,
                            std::span<std::uint8_t> mask);
void UniformFillScalar(const support::BatchUniformInt& dist,
                       std::span<support::RandomSource> rng,
                       std::span<const std::int32_t> alive,
                       std::span<std::int32_t> out);
std::size_t CompactKeepScalar(std::span<std::int32_t> ids,
                              std::span<const std::uint8_t> drop);
Occupancy ClassifyChannelsScalar(std::span<const std::int32_t> channels,
                                 std::int32_t primary,
                                 std::span<std::uint16_t> counts,
                                 std::vector<std::int32_t>& touched,
                                 std::span<std::uint8_t> lone);
void SeedStreamsScalar(std::uint64_t master_seed, std::uint64_t first_stream,
                       support::RngKind kind,
                       std::span<support::RandomSource> out);

// True when the draw kernels can vectorize this call: all lanes must be
// Philox-mode (the engines derive every node stream with one RngKind, so
// checking the first lane suffices).
inline bool PhiloxLanes(std::span<support::RandomSource> rng,
                        std::span<const std::int32_t> alive) {
  return !alive.empty() &&
         rng[static_cast<std::size_t>(alive.front())].kind() ==
             support::RngKind::kPhilox;
}

#if defined(CRMC_SIMD_HAS_SSE42)
std::int64_t CoinMaskSse42(const support::BatchBernoulli& coin,
                           std::span<support::RandomSource> rng,
                           std::span<const std::int32_t> alive,
                           std::span<std::uint8_t> mask);
void UniformFillSse42(const support::BatchUniformInt& dist,
                      std::span<support::RandomSource> rng,
                      std::span<const std::int32_t> alive,
                      std::span<std::int32_t> out);
std::size_t CompactKeepSse42(std::span<std::int32_t> ids,
                             std::span<const std::uint8_t> drop);
#endif

#if defined(CRMC_SIMD_HAS_AVX2)
std::int64_t CoinMaskAvx2(const support::BatchBernoulli& coin,
                          std::span<support::RandomSource> rng,
                          std::span<const std::int32_t> alive,
                          std::span<std::uint8_t> mask);
void UniformFillAvx2(const support::BatchUniformInt& dist,
                     std::span<support::RandomSource> rng,
                     std::span<const std::int32_t> alive,
                     std::span<std::int32_t> out);
std::size_t CompactKeepAvx2(std::span<std::int32_t> ids,
                            std::span<const std::uint8_t> drop);
Occupancy ClassifyChannelsAvx2(std::span<const std::int32_t> channels,
                               std::int32_t primary,
                               std::span<std::uint16_t> counts,
                               std::vector<std::int32_t>& touched,
                               std::span<std::uint8_t> lone);
#endif

}  // namespace crmc::simd::internal
