// Scalar reference implementations plus the runtime dispatch front doors.
//
// The scalar kernels are the semantics: every vector variant must produce
// identical masks, values, counters, and per-lane RNG states (enforced by
// tests/simd_test.cpp across all available backends).
#include <algorithm>
#include <limits>

#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "simd/kernels_impl.h"
#include "support/assert.h"

namespace crmc::simd {
namespace internal {

std::int64_t CoinMaskScalar(const support::BatchBernoulli& coin,
                            std::span<support::RandomSource> rng,
                            std::span<const std::int32_t> alive,
                            std::span<std::uint8_t> mask) {
  if (coin.fixed() >= 0) {
    const auto v = static_cast<std::uint8_t>(coin.fixed() != 0);
    std::fill(mask.begin(), mask.end(), v);
    return v ? static_cast<std::int64_t>(alive.size()) : 0;
  }
  const std::uint64_t threshold = coin.threshold();
  std::int64_t successes = 0;
  for (std::size_t k = 0; k < alive.size(); ++k) {
    const auto s = static_cast<std::size_t>(alive[k]);
    const bool hit = (rng[s].NextU64() >> 11) < threshold;
    mask[k] = static_cast<std::uint8_t>(hit);
    successes += hit;
  }
  return successes;
}

void UniformFillScalar(const support::BatchUniformInt& dist,
                       std::span<support::RandomSource> rng,
                       std::span<const std::int32_t> alive,
                       std::span<std::int32_t> out) {
  for (std::size_t k = 0; k < alive.size(); ++k) {
    out[k] = static_cast<std::int32_t>(
        dist.Draw(rng[static_cast<std::size_t>(alive[k])]));
  }
}

std::size_t CompactKeepScalar(std::span<std::int32_t> ids,
                              std::span<const std::uint8_t> drop) {
  std::size_t write = 0;
  for (std::size_t read = 0; read < ids.size(); ++read) {
    if (!drop[read]) ids[write++] = ids[read];
  }
  return write;
}

void SeedStreamsScalar(std::uint64_t master_seed, std::uint64_t first_stream,
                       support::RngKind kind,
                       std::span<support::RandomSource> out) {
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = support::RandomSource::ForStream(
        master_seed, first_stream + static_cast<std::uint64_t>(k), kind);
  }
}

Occupancy ClassifyChannelsScalar(std::span<const std::int32_t> channels,
                                 std::int32_t primary,
                                 std::span<std::uint16_t> counts,
                                 std::vector<std::int32_t>& touched,
                                 std::span<std::uint8_t> lone) {
  touched.clear();
  for (const std::int32_t ch : channels) {
    std::uint16_t& cnt = counts[static_cast<std::size_t>(ch)];
    if (cnt == 0) touched.push_back(ch);
    if (cnt < 2) ++cnt;  // saturate: only 0 / 1 / 2+ matter
  }
  for (std::size_t k = 0; k < channels.size(); ++k) {
    lone[k] = static_cast<std::uint8_t>(
        counts[static_cast<std::size_t>(channels[k])] == 1);
  }
  Occupancy occ;
  for (const std::int32_t ch : touched) {
    std::uint16_t& cnt = counts[static_cast<std::size_t>(ch)];
    if (cnt == 1) {
      ++occ.lone_channels;
      if (ch == primary) occ.primary_lone = true;
    }
    cnt = 0;  // restore the all-zero scratch invariant
  }
  return occ;
}

}  // namespace internal

namespace {

void CheckUniformFitsInt32(const support::BatchUniformInt& dist) {
  CRMC_CHECK_MSG(dist.range() != 0 &&
                     dist.range() <= static_cast<std::uint64_t>(
                                         std::numeric_limits<std::int32_t>::max()) &&
                     dist.lo() >= std::numeric_limits<std::int32_t>::min() &&
                     dist.lo() + static_cast<std::int64_t>(dist.range()) - 1 <=
                         std::numeric_limits<std::int32_t>::max(),
                 "UniformFill is for int32 channel picks; range ["
                     << dist.lo() << ", "
                     << dist.lo() + static_cast<std::int64_t>(dist.range() - 1)
                     << "] does not fit");
}

}  // namespace

std::int64_t CoinMask(const support::BatchBernoulli& coin,
                      std::span<support::RandomSource> rng,
                      std::span<const std::int32_t> alive,
                      std::span<std::uint8_t> mask) {
  CRMC_CHECK(mask.size() == alive.size());
  switch (ActiveBackend()) {
#if defined(CRMC_SIMD_HAS_AVX2)
    case Backend::kAvx2:
      return internal::CoinMaskAvx2(coin, rng, alive, mask);
#endif
#if defined(CRMC_SIMD_HAS_SSE42)
    case Backend::kSse42:
      return internal::CoinMaskSse42(coin, rng, alive, mask);
#endif
    default:
      return internal::CoinMaskScalar(coin, rng, alive, mask);
  }
}

void UniformFill(const support::BatchUniformInt& dist,
                 std::span<support::RandomSource> rng,
                 std::span<const std::int32_t> alive,
                 std::span<std::int32_t> out) {
  CRMC_CHECK(out.size() == alive.size());
  CheckUniformFitsInt32(dist);
  switch (ActiveBackend()) {
#if defined(CRMC_SIMD_HAS_AVX2)
    case Backend::kAvx2:
      return internal::UniformFillAvx2(dist, rng, alive, out);
#endif
#if defined(CRMC_SIMD_HAS_SSE42)
    case Backend::kSse42:
      return internal::UniformFillSse42(dist, rng, alive, out);
#endif
    default:
      return internal::UniformFillScalar(dist, rng, alive, out);
  }
}

std::size_t internal::CompactKeepDispatch(std::span<std::int32_t> ids,
                                          std::span<const std::uint8_t> drop) {
  switch (ActiveBackend()) {
#if defined(CRMC_SIMD_HAS_AVX2)
    case Backend::kAvx2:
      return internal::CompactKeepAvx2(ids, drop);
#endif
#if defined(CRMC_SIMD_HAS_SSE42)
    case Backend::kSse42:
      return internal::CompactKeepSse42(ids, drop);
#endif
    default:
      return internal::CompactKeepScalar(ids, drop);
  }
}

void SeedStreams(std::uint64_t master_seed, std::uint64_t first_stream,
                 support::RngKind kind,
                 std::span<support::RandomSource> out) {
  // Every backend takes the scalar expansion. An AVX2 four-stream variant
  // was benchmarked at 0.6x (xoshiro) / 0.3x (philox) of scalar on the
  // reference machine: SplitMix64 is 64-bit-multiply-bound and pre-AVX-512
  // vector units emulate that multiply with three 32-bit ones plus
  // shifts, losing to scalar `imul`. The kernel's win over the old
  // per-node push_back loop is the in-place batch fill, not vector math.
  internal::SeedStreamsScalar(master_seed, first_stream, kind, out);
}

Occupancy ClassifyChannels(std::span<const std::int32_t> channels,
                           std::int32_t primary,
                           std::span<std::uint16_t> counts,
                           std::vector<std::int32_t>& touched,
                           std::span<std::uint8_t> lone) {
  CRMC_CHECK(lone.size() == channels.size());
  switch (ActiveBackend()) {
#if defined(CRMC_SIMD_HAS_AVX2)
    case Backend::kAvx2:
      return internal::ClassifyChannelsAvx2(channels, primary, counts, touched,
                                            lone);
#endif
    default:
      // SSE4.2 has no gather; the histogram is conflict-bound either way,
      // so that backend shares the scalar classification.
      return internal::ClassifyChannelsScalar(channels, primary, counts,
                                              touched, lone);
  }
}

}  // namespace crmc::simd
