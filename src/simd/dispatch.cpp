#include "simd/dispatch.h"

#include <atomic>

namespace crmc::simd {
namespace {

bool CpuSupports(Backend backend) {
#if defined(__x86_64__) || defined(__i386__)
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse42:
      return __builtin_cpu_supports("sse4.2") != 0;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
  }
#endif
  return backend == Backend::kScalar;
}

bool CompiledIn(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse42:
#if defined(CRMC_SIMD_HAS_SSE42)
      return true;
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(CRMC_SIMD_HAS_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::atomic<Backend>& ActiveSlot() {
  static std::atomic<Backend> active{DetectBackend()};
  return active;
}

}  // namespace

const char* ToString(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse42:
      return "sse4.2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "?";
}

bool BackendAvailable(Backend backend) {
  return CompiledIn(backend) && CpuSupports(backend);
}

Backend DetectBackend() {
  static const Backend detected = [] {
    if (BackendAvailable(Backend::kAvx2)) return Backend::kAvx2;
    if (BackendAvailable(Backend::kSse42)) return Backend::kSse42;
    return Backend::kScalar;
  }();
  return detected;
}

Backend ActiveBackend() {
  return ActiveSlot().load(std::memory_order_relaxed);
}

bool SetBackend(Backend backend) {
  if (!BackendAvailable(backend)) return false;
  ActiveSlot().store(backend, std::memory_order_relaxed);
  return true;
}

std::optional<Backend> ParseBackend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "sse4.2" || name == "sse42") return Backend::kSse42;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "auto") return DetectBackend();
  return std::nullopt;
}

}  // namespace crmc::simd
