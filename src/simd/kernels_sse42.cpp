// SSE4.2 backend: 4-lane Philox4x32-10 draw kernels and pshufb-based stream
// compaction. ClassifyChannels has no SSE4.2 variant (no gather; the
// histogram is conflict-bound either way) — kernels.cpp routes that one to
// the scalar reference.
//
// Compiled with -msse4.2; only reached through the dispatch in kernels.cpp
// after a cpuid probe. Bit-exact with the scalar reference.
#include <nmmintrin.h>
#include <smmintrin.h>

#include <array>
#include <bit>

#include "simd/kernels_impl.h"

#if !defined(CRMC_SIMD_HAS_SSE42)
#error "kernels_sse42.cpp requires CRMC_SIMD_HAS_SSE42"
#endif

namespace crmc::simd::internal {
namespace {

// Per-32-bit-lane high product: hi32(a[i] * b[i]) for 4 unsigned lanes.
inline __m128i MulHi32(__m128i a, __m128i b) {
  const __m128i even = _mm_srli_epi64(_mm_mul_epu32(a, b), 32);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32));
  const __m128i hi_mask =
      _mm_set1_epi64x(static_cast<long long>(0xFFFFFFFF00000000ULL));
  return _mm_or_si128(even, _mm_and_si128(odd, hi_mask));
}

// Four independent Philox4x32-10 blocks (SoA), matching BlockU64.
inline void PhiloxBlocks4(const std::uint32_t c0[4], const std::uint32_t c1[4],
                          const std::uint32_t c2[4], const std::uint32_t c3[4],
                          const std::uint32_t k0in[4],
                          const std::uint32_t k1in[4], std::uint64_t out0[4],
                          std::uint64_t out1[4]) {
  __m128i x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0));
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c1));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c2));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c3));
  __m128i k0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(k0in));
  __m128i k1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(k1in));
  const __m128i m0 =
      _mm_set1_epi32(static_cast<int>(support::Philox4x32::kMult0));
  const __m128i m1 =
      _mm_set1_epi32(static_cast<int>(support::Philox4x32::kMult1));
  const __m128i w0 =
      _mm_set1_epi32(static_cast<int>(support::Philox4x32::kWeyl0));
  const __m128i w1 =
      _mm_set1_epi32(static_cast<int>(support::Philox4x32::kWeyl1));
  for (int round = 0; round < support::Philox4x32::kRounds; ++round) {
    const __m128i p0_hi = MulHi32(x0, m0);
    const __m128i p0_lo = _mm_mullo_epi32(x0, m0);
    const __m128i p1_hi = MulHi32(x2, m1);
    const __m128i p1_lo = _mm_mullo_epi32(x2, m1);
    const __m128i y0 = _mm_xor_si128(_mm_xor_si128(p1_hi, x1), k0);
    const __m128i y2 = _mm_xor_si128(_mm_xor_si128(p0_hi, x3), k1);
    x0 = y0;
    x1 = p1_lo;
    x2 = y2;
    x3 = p0_lo;
    k0 = _mm_add_epi32(k0, w0);
    k1 = _mm_add_epi32(k1, w1);
  }
  alignas(16) std::uint32_t w0s[4], w1s[4], w2s[4], w3s[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(w0s), x0);
  _mm_store_si128(reinterpret_cast<__m128i*>(w1s), x1);
  _mm_store_si128(reinterpret_cast<__m128i*>(w2s), x2);
  _mm_store_si128(reinterpret_cast<__m128i*>(w3s), x3);
  for (int j = 0; j < 4; ++j) {
    out0[j] = w0s[j] | (static_cast<std::uint64_t>(w1s[j]) << 32);
    out1[j] = w2s[j] | (static_cast<std::uint64_t>(w3s[j]) << 32);
  }
}

// Each lane's next draw without advancing any lane (see NextDraws8).
inline void NextDraws4(std::span<support::RandomSource> rng,
                       const std::int32_t* lanes, std::uint64_t draws[4]) {
  std::uint32_t c0[4], c1[4], c2[4], c3[4], k0[4], k1[4];
  for (int j = 0; j < 4; ++j) {
    const auto& rs = rng[static_cast<std::size_t>(lanes[j])];
    const std::uint64_t block = rs.philox_draws() >> 1;
    const std::uint64_t stream = rs.philox_stream();
    const std::uint64_t key = rs.philox_key();
    c0[j] = static_cast<std::uint32_t>(block);
    c1[j] = static_cast<std::uint32_t>(block >> 32);
    c2[j] = static_cast<std::uint32_t>(stream);
    c3[j] = static_cast<std::uint32_t>(stream >> 32);
    k0[j] = static_cast<std::uint32_t>(key);
    k1[j] = static_cast<std::uint32_t>(key >> 32);
  }
  std::uint64_t d0[4], d1[4];
  PhiloxBlocks4(c0, c1, c2, c3, k0, k1, d0, d1);
  for (int j = 0; j < 4; ++j) {
    const auto& rs = rng[static_cast<std::size_t>(lanes[j])];
    draws[j] = (rs.philox_draws() & 1) ? d1[j] : d0[j];
  }
}

struct ShufRow {
  std::uint8_t idx[16];
};

// lut[mask] is the pshufb pattern that packs the kept 4-byte lanes of mask
// to the front.
constexpr std::array<ShufRow, 16> MakeCompactLut() {
  std::array<ShufRow, 16> lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int write = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (mask & (1 << lane)) {
        for (int b = 0; b < 4; ++b) {
          lut[static_cast<std::size_t>(mask)].idx[write * 4 + b] =
              static_cast<std::uint8_t>(lane * 4 + b);
        }
        ++write;
      }
    }
  }
  return lut;
}

constexpr std::array<ShufRow, 16> kCompactLut = MakeCompactLut();

}  // namespace

std::int64_t CoinMaskSse42(const support::BatchBernoulli& coin,
                           std::span<support::RandomSource> rng,
                           std::span<const std::int32_t> alive,
                           std::span<std::uint8_t> mask) {
  if (coin.fixed() >= 0 || !PhiloxLanes(rng, alive)) {
    return CoinMaskScalar(coin, rng, alive, mask);
  }
  const std::uint64_t threshold = coin.threshold();
  const std::size_t m = alive.size();
  std::int64_t successes = 0;
  std::size_t k = 0;
  std::uint64_t draws[4];
  for (; k + 4 <= m; k += 4) {
    NextDraws4(rng, alive.data() + k, draws);
    for (int j = 0; j < 4; ++j) {
      rng[static_cast<std::size_t>(alive[k + static_cast<std::size_t>(j)])]
          .SkipPhiloxDraws(1);
      const bool hit = (draws[j] >> 11) < threshold;
      mask[k + static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(hit);
      successes += hit;
    }
  }
  for (; k < m; ++k) {
    const bool hit =
        (rng[static_cast<std::size_t>(alive[k])].NextU64() >> 11) < threshold;
    mask[k] = static_cast<std::uint8_t>(hit);
    successes += hit;
  }
  return successes;
}

void UniformFillSse42(const support::BatchUniformInt& dist,
                      std::span<support::RandomSource> rng,
                      std::span<const std::int32_t> alive,
                      std::span<std::int32_t> out) {
  if (!PhiloxLanes(rng, alive)) {
    return UniformFillScalar(dist, rng, alive, out);
  }
  const std::uint64_t range = dist.range();
  const std::uint64_t threshold = dist.threshold();
  const std::int64_t lo = dist.lo();
  const std::size_t m = alive.size();
  std::size_t k = 0;
  std::uint64_t draws[4];
  for (; k + 4 <= m; k += 4) {
    NextDraws4(rng, alive.data() + k, draws);
    for (int j = 0; j < 4; ++j) {
      auto& rs =
          rng[static_cast<std::size_t>(alive[k + static_cast<std::size_t>(j)])];
      rs.SkipPhiloxDraws(1);
      __uint128_t prod = static_cast<__uint128_t>(draws[j]) * range;
      auto low = static_cast<std::uint64_t>(prod);
      while (low < threshold) {  // P[reject] < 2^-33: effectively never
        prod = static_cast<__uint128_t>(rs.NextU64()) * range;
        low = static_cast<std::uint64_t>(prod);
      }
      out[k + static_cast<std::size_t>(j)] =
          static_cast<std::int32_t>(lo + static_cast<std::int64_t>(prod >> 64));
    }
  }
  for (; k < m; ++k) {
    out[k] = static_cast<std::int32_t>(
        dist.Draw(rng[static_cast<std::size_t>(alive[k])]));
  }
}

std::size_t CompactKeepSse42(std::span<std::int32_t> ids,
                             std::span<const std::uint8_t> drop) {
  const std::size_t m = ids.size();
  std::size_t write = 0;
  std::size_t read = 0;
  // In-place safe: lanes are loaded before the overlapping store and
  // write + 4 <= read + 4 <= m.
  for (; read + 4 <= m; read += 4) {
    const __m128i bytes = _mm_cvtsi32_si128(static_cast<int>(
        static_cast<std::uint32_t>(drop[read]) |
        (static_cast<std::uint32_t>(drop[read + 1]) << 8) |
        (static_cast<std::uint32_t>(drop[read + 2]) << 16) |
        (static_cast<std::uint32_t>(drop[read + 3]) << 24)));
    const unsigned keep_bits =
        static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(bytes, _mm_setzero_si128()))) &
        0xFu;
    const __m128i vals =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids.data() + read));
    const __m128i shuf = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kCompactLut[keep_bits].idx));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ids.data() + write),
                     _mm_shuffle_epi8(vals, shuf));
    write += static_cast<std::size_t>(std::popcount(keep_bits));
  }
  for (; read < m; ++read) {
    if (!drop[read]) ids[write++] = ids[read];
  }
  return write;
}

}  // namespace crmc::simd::internal
