// Runtime CPU dispatch for the vector kernels (src/simd/kernels.h).
//
// Three backends, all bit-identical: a portable scalar reference, SSE4.2,
// and AVX2. The x86 backends are compiled into separate translation units
// with per-file -msse4.2 / -mavx2 (only when the compiler supports the flag
// and CRMC_SIMD is ON), and are only ever *called* after a cpuid probe says
// the instruction set exists — so the binary runs everywhere the scalar
// build would. The probe runs once; the active backend is process-global
// and overridable (--simd=scalar|sse4.2|avx2|auto on the CLI, SetBackend
// here) so the bit-exactness suite can force every backend on one machine.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace crmc::simd {

enum class Backend : std::uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

const char* ToString(Backend backend);

// True when `backend` is both compiled into this binary and supported by
// the running CPU. kScalar is always available.
bool BackendAvailable(Backend backend);

// Best available backend for this binary/CPU (cpuid probe, memoized).
Backend DetectBackend();

// The backend the kernels currently dispatch to. Starts at DetectBackend().
Backend ActiveBackend();

// Forces dispatch to `backend`. Returns false (active backend unchanged)
// when the backend is not available in this build or on this CPU.
bool SetBackend(Backend backend);

// "scalar" | "sse4.2" | "avx2" | "auto"; auto means DetectBackend().
// Returns nullopt for anything else.
std::optional<Backend> ParseBackend(std::string_view name);

}  // namespace crmc::simd
