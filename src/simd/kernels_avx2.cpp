// AVX2 backend: 8-lane Philox4x32-10 for the draw kernels, permutevar-based
// stream compaction, and gather-based lone-channel classification.
//
// Compiled with -mavx2 (see src/CMakeLists.txt); only reached through the
// dispatch in kernels.cpp after a cpuid probe. Bit-exact with the scalar
// reference: the vector Philox computes the identical block function, lanes
// consume the identical number of draws, and the Lemire rejection test is
// replicated exactly (rejections are ~2^-33 rare and finish scalar).
#include <immintrin.h>

#include <array>
#include <bit>
#include <cstring>

#include "simd/kernels_impl.h"

#if !defined(CRMC_SIMD_HAS_AVX2)
#error "kernels_avx2.cpp requires CRMC_SIMD_HAS_AVX2"
#endif

namespace crmc::simd::internal {
namespace {

// Per-32-bit-lane high product: hi32(a[i] * b[i]) for 8 unsigned lanes.
inline __m256i MulHi32(__m256i a, __m256i b) {
  const __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(a, b), 32);
  const __m256i odd =
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), _mm256_srli_epi64(b, 32));
  const __m256i hi_mask =
      _mm256_set1_epi64x(static_cast<long long>(0xFFFFFFFF00000000ULL));
  return _mm256_or_si256(even, _mm256_and_si256(odd, hi_mask));
}

// Eight independent Philox4x32-10 blocks, structure-of-arrays: lane j uses
// counter (c0[j], c1[j], c2[j], c3[j]) and key (k0[j], k1[j]). Outputs the
// two uint64 draws of each lane's block, matching Philox4x32::BlockU64.
inline void PhiloxBlocks8(const std::uint32_t c0[8], const std::uint32_t c1[8],
                          const std::uint32_t c2[8], const std::uint32_t c3[8],
                          const std::uint32_t k0in[8],
                          const std::uint32_t k1in[8], std::uint64_t out0[8],
                          std::uint64_t out1[8]) {
  __m256i x0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c0));
  __m256i x1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c1));
  __m256i x2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c2));
  __m256i x3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c3));
  __m256i k0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k0in));
  __m256i k1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k1in));
  const __m256i m0 = _mm256_set1_epi32(
      static_cast<int>(support::Philox4x32::kMult0));
  const __m256i m1 = _mm256_set1_epi32(
      static_cast<int>(support::Philox4x32::kMult1));
  const __m256i w0 = _mm256_set1_epi32(
      static_cast<int>(support::Philox4x32::kWeyl0));
  const __m256i w1 = _mm256_set1_epi32(
      static_cast<int>(support::Philox4x32::kWeyl1));
  for (int round = 0; round < support::Philox4x32::kRounds; ++round) {
    const __m256i p0_hi = MulHi32(x0, m0);
    const __m256i p0_lo = _mm256_mullo_epi32(x0, m0);
    const __m256i p1_hi = MulHi32(x2, m1);
    const __m256i p1_lo = _mm256_mullo_epi32(x2, m1);
    const __m256i y0 =
        _mm256_xor_si256(_mm256_xor_si256(p1_hi, x1), k0);
    const __m256i y2 =
        _mm256_xor_si256(_mm256_xor_si256(p0_hi, x3), k1);
    x0 = y0;
    x1 = p1_lo;
    x2 = y2;
    x3 = p0_lo;
    k0 = _mm256_add_epi32(k0, w0);
    k1 = _mm256_add_epi32(k1, w1);
  }
  alignas(32) std::uint32_t w0s[8], w1s[8], w2s[8], w3s[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(w0s), x0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(w1s), x1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(w2s), x2);
  _mm256_store_si256(reinterpret_cast<__m256i*>(w3s), x3);
  for (int j = 0; j < 8; ++j) {
    out0[j] = w0s[j] | (static_cast<std::uint64_t>(w1s[j]) << 32);
    out1[j] = w2s[j] | (static_cast<std::uint64_t>(w3s[j]) << 32);
  }
}

// Loads eight lanes' philox state into SoA counter/key arrays and produces
// each lane's *next* draw (block = draws >> 1, half = draws & 1), without
// advancing any lane. Callers advance via SkipPhiloxDraws afterwards.
inline void NextDraws8(std::span<support::RandomSource> rng,
                       const std::int32_t* lanes, std::uint64_t draws[8]) {
  std::uint32_t c0[8], c1[8], c2[8], c3[8], k0[8], k1[8];
  for (int j = 0; j < 8; ++j) {
    const auto& rs = rng[static_cast<std::size_t>(lanes[j])];
    const std::uint64_t block = rs.philox_draws() >> 1;
    const std::uint64_t stream = rs.philox_stream();
    const std::uint64_t key = rs.philox_key();
    c0[j] = static_cast<std::uint32_t>(block);
    c1[j] = static_cast<std::uint32_t>(block >> 32);
    c2[j] = static_cast<std::uint32_t>(stream);
    c3[j] = static_cast<std::uint32_t>(stream >> 32);
    k0[j] = static_cast<std::uint32_t>(key);
    k1[j] = static_cast<std::uint32_t>(key >> 32);
  }
  std::uint64_t d0[8], d1[8];
  PhiloxBlocks8(c0, c1, c2, c3, k0, k1, d0, d1);
  for (int j = 0; j < 8; ++j) {
    const auto& rs = rng[static_cast<std::size_t>(lanes[j])];
    draws[j] = (rs.philox_draws() & 1) ? d1[j] : d0[j];
  }
}

struct PermRow {
  std::uint32_t idx[8];
};

// lut[mask] lists the set-bit positions of `mask` in ascending order — the
// permutevar8x32 pattern that packs kept lanes to the front.
constexpr std::array<PermRow, 256> MakeCompactLut() {
  std::array<PermRow, 256> lut{};
  for (int mask = 0; mask < 256; ++mask) {
    int write = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (mask & (1 << bit)) {
        lut[static_cast<std::size_t>(mask)].idx[write++] =
            static_cast<std::uint32_t>(bit);
      }
    }
  }
  return lut;
}

constexpr std::array<PermRow, 256> kCompactLut = MakeCompactLut();

}  // namespace

std::int64_t CoinMaskAvx2(const support::BatchBernoulli& coin,
                          std::span<support::RandomSource> rng,
                          std::span<const std::int32_t> alive,
                          std::span<std::uint8_t> mask) {
  if (coin.fixed() >= 0 || !PhiloxLanes(rng, alive)) {
    return CoinMaskScalar(coin, rng, alive, mask);
  }
  const std::uint64_t threshold = coin.threshold();
  const std::size_t m = alive.size();
  std::int64_t successes = 0;
  std::size_t k = 0;
  std::uint64_t draws[8];
  for (; k + 8 <= m; k += 8) {
    NextDraws8(rng, alive.data() + k, draws);
    for (int j = 0; j < 8; ++j) {
      rng[static_cast<std::size_t>(alive[k + static_cast<std::size_t>(j)])]
          .SkipPhiloxDraws(1);
      const bool hit = (draws[j] >> 11) < threshold;
      mask[k + static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(hit);
      successes += hit;
    }
  }
  for (; k < m; ++k) {
    const bool hit =
        (rng[static_cast<std::size_t>(alive[k])].NextU64() >> 11) < threshold;
    mask[k] = static_cast<std::uint8_t>(hit);
    successes += hit;
  }
  return successes;
}

void UniformFillAvx2(const support::BatchUniformInt& dist,
                     std::span<support::RandomSource> rng,
                     std::span<const std::int32_t> alive,
                     std::span<std::int32_t> out) {
  if (!PhiloxLanes(rng, alive)) {
    return UniformFillScalar(dist, rng, alive, out);
  }
  const std::uint64_t range = dist.range();
  const std::uint64_t threshold = dist.threshold();
  const std::int64_t lo = dist.lo();
  const std::size_t m = alive.size();
  std::size_t k = 0;
  std::uint64_t draws[8];
  for (; k + 8 <= m; k += 8) {
    NextDraws8(rng, alive.data() + k, draws);
    for (int j = 0; j < 8; ++j) {
      auto& rs =
          rng[static_cast<std::size_t>(alive[k + static_cast<std::size_t>(j)])];
      rs.SkipPhiloxDraws(1);
      __uint128_t prod = static_cast<__uint128_t>(draws[j]) * range;
      auto low = static_cast<std::uint64_t>(prod);
      while (low < threshold) {  // P[reject] < 2^-33: effectively never
        prod = static_cast<__uint128_t>(rs.NextU64()) * range;
        low = static_cast<std::uint64_t>(prod);
      }
      out[k + static_cast<std::size_t>(j)] =
          static_cast<std::int32_t>(lo + static_cast<std::int64_t>(prod >> 64));
    }
  }
  for (; k < m; ++k) {
    out[k] = static_cast<std::int32_t>(
        dist.Draw(rng[static_cast<std::size_t>(alive[k])]));
  }
}

std::size_t CompactKeepAvx2(std::span<std::int32_t> ids,
                            std::span<const std::uint8_t> drop) {
  const std::size_t m = ids.size();
  std::size_t write = 0;
  std::size_t read = 0;
  // In-place is safe: write <= read, the 8 source lanes are loaded before
  // the (possibly overlapping) store, and write + 8 <= read + 8 <= m.
  for (; read + 8 <= m; read += 8) {
    const __m128i bytes = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(drop.data() + read));
    const unsigned keep_bits =
        static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(bytes, _mm_setzero_si128()))) &
        0xFFu;
    const __m256i vals =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids.data() + read));
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kCompactLut[keep_bits].idx));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ids.data() + write),
                        _mm256_permutevar8x32_epi32(vals, perm));
    write += static_cast<std::size_t>(std::popcount(keep_bits));
  }
  for (; read < m; ++read) {
    if (!drop[read]) ids[write++] = ids[read];
  }
  return write;
}

Occupancy ClassifyChannelsAvx2(std::span<const std::int32_t> channels,
                               std::int32_t primary,
                               std::span<std::uint16_t> counts,
                               std::vector<std::int32_t>& touched,
                               std::span<std::uint8_t> lone) {
  // Histogramming is conflict-bound (same-channel lanes collide), so it
  // stays scalar; the win is the gather-based classification pass.
  touched.clear();
  for (const std::int32_t ch : channels) {
    std::uint16_t& cnt = counts[static_cast<std::size_t>(ch)];
    if (cnt == 0) touched.push_back(ch);
    if (cnt < 2) ++cnt;
  }
  const std::size_t m = channels.size();
  std::size_t k = 0;
  const auto* base = reinterpret_cast<const int*>(counts.data());
  const __m256i low16 = _mm256_set1_epi32(0xFFFF);
  const __m256i one = _mm256_set1_epi32(1);
  // Gathers 32 bits at counts + 2*channel (scale 2): the counter in the low
  // half, its neighbour in the high half — hence the +2 entries of padding
  // the scratch contract requires.
  for (; k + 8 <= m; k += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(channels.data() + k));
    const __m256i gathered = _mm256_i32gather_epi32(base, idx, 2);
    const __m256i cnt = _mm256_and_si256(gathered, low16);
    const unsigned bits = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(cnt, one))));
    for (int j = 0; j < 8; ++j) {
      lone[k + static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>((bits >> j) & 1u);
    }
  }
  for (; k < m; ++k) {
    lone[k] = static_cast<std::uint8_t>(
        counts[static_cast<std::size_t>(channels[k])] == 1);
  }
  Occupancy occ;
  for (const std::int32_t ch : touched) {
    std::uint16_t& cnt = counts[static_cast<std::size_t>(ch)];
    if (cnt == 1) {
      ++occ.lone_channels;
      if (ch == primary) occ.primary_lone = true;
    }
    cnt = 0;
  }
  return occ;
}

}  // namespace crmc::simd::internal
