#include "mac/resolver.h"

#include "support/assert.h"

namespace crmc::mac {

Resolver::Resolver(std::int32_t num_channels, CdModel cd_model)
    : num_channels_(num_channels), cd_model_(cd_model) {
  CRMC_REQUIRE_MSG(num_channels >= 1,
                   "a network needs at least one channel, got "
                       << num_channels);
  activity_.resize(static_cast<std::size_t>(num_channels) + 1);
  channel_fault_.resize(static_cast<std::size_t>(num_channels) + 1,
                        ChannelFault::kClean);
  touched_channels_.reserve(64);
}

RoundSummary Resolver::Resolve(std::span<const Action> actions,
                               std::vector<Feedback>& feedback,
                               FaultInjector* faults,
                               std::span<const ChannelId> adversary_jams) {
  // Clear only the channels dirtied last round: rounds usually touch a
  // handful of channels even in huge networks. Adversary jams on untouched
  // channels are tracked in adv_marked_ so their marks get cleared too.
  for (const ChannelId ch : touched_channels_) {
    activity_[static_cast<std::size_t>(ch)] = ChannelActivity{};
    channel_fault_[static_cast<std::size_t>(ch)] = ChannelFault::kClean;
  }
  touched_channels_.clear();
  for (const ChannelId ch : adv_marked_) {
    channel_fault_[static_cast<std::size_t>(ch)] = ChannelFault::kClean;
  }
  adv_marked_.clear();

  const bool inject = faults != nullptr && faults->active();
  const bool adv = !adversary_jams.empty();

  RoundSummary summary;
  for (const Action& a : actions) {
    if (a.channel == kIdleChannel) continue;
    CRMC_CHECK_MSG(a.channel >= 1 && a.channel <= num_channels_,
                   "protocol used channel " << a.channel << " of "
                                            << num_channels_);
    ChannelActivity& act = activity_[static_cast<std::size_t>(a.channel)];
    if (act.transmitters == 0 && act.listeners == 0) {
      touched_channels_.push_back(a.channel);
    }
    ++summary.total_participants;
    if (a.transmit) {
      ++summary.total_transmissions;
      if (++act.transmitters == 1) act.lone_message = a.message;
    } else {
      ++act.listeners;
    }
  }
  summary.primary_transmitters =
      activity_[static_cast<std::size_t>(kPrimaryChannel)].transmitters;

  // The adaptive adversary's jams land before any oblivious draw: it spends
  // budget with certainty, the fault layer only with probability. A jam is
  // "effective" iff it suppressed a lone delivery.
  if (adv) {
    for (const ChannelId ch : adversary_jams) {
      CRMC_CHECK_MSG(ch >= 1 && ch <= num_channels_,
                     "adversary jammed channel " << ch << " of "
                                                 << num_channels_);
      ChannelFault& fault = channel_fault_[static_cast<std::size_t>(ch)];
      CRMC_CHECK_MSG(fault == ChannelFault::kClean,
                     "adversary jammed channel " << ch << " twice");
      fault = ChannelFault::kJammed;
      adv_marked_.push_back(ch);
      ++summary.adv_jams;
      if (activity_[static_cast<std::size_t>(ch)].transmitters == 1) {
        ++summary.adv_jams_effective;
      }
    }
  }

  // Pristine strong-CD rounds — the Monte-Carlo hot path — skip the fault
  // bookkeeping and the per-action fault/capability branches entirely. The
  // general loop below computes the identical feedback for this case; this
  // variant just hoists the conditions out of the per-action loop.
  if (!inject && !adv && cd_model_ == CdModel::kStrong) {
    for (const ChannelId ch : touched_channels_) {
      if (activity_[static_cast<std::size_t>(ch)].transmitters == 1) {
        ++summary.lone_deliveries;
      }
    }
    summary.primary_lone_delivered = summary.primary_transmitters == 1;
    feedback.resize(actions.size());
    for (std::size_t i = 0; i < actions.size(); ++i) {
      const Action& a = actions[i];
      Feedback& fb = feedback[i];
      if (a.channel == kIdleChannel) {
        fb = Feedback{};
        continue;
      }
      const ChannelActivity& act =
          activity_[static_cast<std::size_t>(a.channel)];
      if (act.transmitters == 0) {
        fb.observation = Observation::kSilence;
        fb.message = Message{};
      } else if (act.transmitters == 1) {
        fb.observation = Observation::kMessage;
        fb.message = act.lone_message;
      } else {
        fb.observation = Observation::kCollision;
        fb.message = Message{};
      }
    }
    return summary;
  }

  // Channel-level faults: one jam draw per touched channel, then — for
  // surviving lone-transmitter channels — one erasure draw. First-touched
  // order keeps the draw sequence a function of the action sequence alone.
  if (inject) {
    for (const ChannelId ch : touched_channels_) {
      // The adversary got here first: no oblivious draw on this channel, so
      // the fault draw sequence depends only on (actions, jam set).
      if (channel_fault_[static_cast<std::size_t>(ch)] !=
          ChannelFault::kClean) {
        continue;
      }
      const ChannelActivity& act = activity_[static_cast<std::size_t>(ch)];
      if (faults->DrawJam()) {
        channel_fault_[static_cast<std::size_t>(ch)] = ChannelFault::kJammed;
      } else if (act.transmitters == 1 && faults->DrawErasure()) {
        channel_fault_[static_cast<std::size_t>(ch)] = ChannelFault::kErased;
      }
    }
  }
  for (const ChannelId ch : touched_channels_) {
    if (activity_[static_cast<std::size_t>(ch)].transmitters == 1 &&
        channel_fault_[static_cast<std::size_t>(ch)] == ChannelFault::kClean) {
      ++summary.lone_deliveries;
    }
  }
  summary.primary_lone_delivered =
      summary.primary_transmitters == 1 &&
      channel_fault_[static_cast<std::size_t>(kPrimaryChannel)] ==
          ChannelFault::kClean;

  feedback.resize(actions.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    Feedback& fb = feedback[i];
    if (a.channel == kIdleChannel) {
      fb = Feedback{};  // idle nodes learn nothing
      continue;
    }
    const ChannelActivity& act = activity_[static_cast<std::size_t>(a.channel)];
    const ChannelFault fault =
        channel_fault_[static_cast<std::size_t>(a.channel)];
    if (fault == ChannelFault::kJammed) {
      fb.observation = Observation::kCollision;  // jamming drowns everything
      fb.message = Message{};
    } else if (fault == ChannelFault::kErased) {
      fb.observation = Observation::kSilence;  // lone message lost in transit
      fb.message = Message{};
    } else if (act.transmitters == 0) {
      fb.observation = Observation::kSilence;
      fb.message = Message{};
    } else if (act.transmitters == 1) {
      fb.observation = Observation::kMessage;
      fb.message = act.lone_message;
    } else {
      fb.observation = Observation::kCollision;
      fb.message = Message{};
    }
    // Flaky CD: each participant's detector may independently misreport the
    // channel. Drawn per non-idle action in order, before the capability
    // filter below (a node without CD has no detector left to misfire).
    if (inject && faults->DrawCdFlip()) {
      switch (fb.observation) {
        case Observation::kSilence:
          fb.observation = Observation::kCollision;
          break;
        case Observation::kCollision:
          fb.observation = Observation::kSilence;
          break;
        case Observation::kMessage:
          fb.observation = Observation::kCollision;  // payload corrupted
          fb.message = Message{};
          break;
      }
    }
    // Degrade feedback per the collision-detection model.
    switch (cd_model_) {
      case CdModel::kStrong:
        break;
      case CdModel::kReceiverOnly:
        // Half-duplex: a transmitter learns nothing about its channel.
        if (a.transmit) fb = Feedback{};
        break;
      case CdModel::kNone:
        if (a.transmit) {
          fb = Feedback{};  // transmitters learn nothing
        } else if (fb.observation == Observation::kCollision) {
          fb = Feedback{};  // collisions read as silence
        }
        break;
    }
  }
  return summary;
}

const ChannelActivity& Resolver::ActivityOf(ChannelId ch) const {
  CRMC_REQUIRE(ch >= 1 && ch <= num_channels_);
  return activity_[static_cast<std::size_t>(ch)];
}

}  // namespace crmc::mac
