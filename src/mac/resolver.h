// Per-round resolution of channel activity into per-node feedback.
//
// Factored out of the engine so the MAC semantics can be unit-tested in
// isolation and reused by alternative executors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mac/channel.h"
#include "mac/faults.h"

namespace crmc::mac {

// Aggregate activity observed on one channel during one round.
struct ChannelActivity {
  std::int32_t transmitters = 0;
  std::int32_t listeners = 0;
  Message lone_message{};  // valid iff transmitters == 1
};

// Summary of a resolved round, for metrics and solved-detection.
struct RoundSummary {
  std::int64_t total_transmissions = 0;
  std::int64_t total_participants = 0;   // non-idle actions
  std::int32_t primary_transmitters = 0;  // transmitters on channel 1
  // Channels whose lone transmission was actually delivered this round
  // (exactly one transmitter, channel neither jammed nor erased). With no
  // fault layer this is simply the count of lone-transmitter channels.
  std::int32_t lone_deliveries = 0;
  // True iff channel 1 had exactly one transmitter AND the message got
  // through. This — not primary_transmitters == 1 — is the solved
  // condition: a jammed or erased lone transmission resolves nothing.
  bool primary_lone_delivered = false;
  // ---- Adaptive-adversary accounting (adversary/adversary.h) ----
  // Budget the adversary spent this round (one unit per jammed channel).
  std::int32_t adv_jams = 0;
  // Of those, jams that actually suppressed a lone delivery (the jammed
  // channel had exactly one transmitter). Spent-but-ineffective jams are
  // the resource-competitive win the benchmarks measure.
  std::int32_t adv_jams_effective = 0;
};

// Resolves one synchronous round. `actions[i]` is node i's decision;
// `feedback[i]` receives what node i observes. `num_channels` bounds the
// legal channel labels; out-of-range channels trip a CRMC_CHECK (protocol
// bug). Scratch state is kept inside the resolver so repeated rounds do not
// reallocate.
class Resolver {
 public:
  explicit Resolver(std::int32_t num_channels,
                    CdModel cd_model = CdModel::kStrong);

  std::int32_t num_channels() const { return num_channels_; }
  CdModel cd_model() const { return cd_model_; }

  // Resolve `actions` into `feedback` (resized to actions.size()). When
  // `faults` is non-null and active, channel-level faults (jamming, lone-
  // message erasure) and per-participant CD flips are injected before the
  // CdModel capability filter; fault draws happen in first-touched channel
  // order then action order, so identical action sequences yield identical
  // faults regardless of executor.
  //
  // `adversary_jams` is the adaptive adversary's jam set for this round
  // (adversary/adversary.h): distinct channels in [1, num_channels], applied
  // before any oblivious fault draw. Participants on a jammed channel
  // observe kCollision and nothing is delivered there; the oblivious jam/
  // erasure draws skip already-jammed channels, so the fault draw sequence
  // stays a pure function of (actions, jam set) regardless of executor.
  // Jamming an untouched channel spends budget but affects nobody.
  RoundSummary Resolve(std::span<const Action> actions,
                       std::vector<Feedback>& feedback,
                       FaultInjector* faults = nullptr,
                       std::span<const ChannelId> adversary_jams = {});

  // Activity of a single channel in the most recent Resolve call. Intended
  // for tests and tracing.
  const ChannelActivity& ActivityOf(ChannelId ch) const;

  // Channels with at least one participant in the most recent round,
  // in first-touched order. Intended for tracing.
  const std::vector<ChannelId>& touched_channels() const {
    return touched_channels_;
  }

 private:
  enum class ChannelFault : std::uint8_t { kClean = 0, kJammed, kErased };

  std::int32_t num_channels_;
  CdModel cd_model_;
  std::vector<ChannelActivity> activity_;    // index 0 unused, 1..C
  std::vector<ChannelFault> channel_fault_;  // parallel to activity_
  std::vector<ChannelId> touched_channels_;  // channels dirtied this round
  // Adversary-jammed channels this round. Tracked separately from
  // touched_channels_ because the adversary may jam a channel no node
  // touched — its fault mark must still be cleared next round.
  std::vector<ChannelId> adv_marked_;
};

}  // namespace crmc::mac
