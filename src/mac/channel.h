// The multiple-access-channel (MAC) model from Section 3 of the paper.
//
// A network has C channels labelled 1..C. In each synchronous round every
// participating node picks one channel and either transmits a message or
// receives. Each channel independently behaves as a MAC with *strong*
// collision detection:
//   - 0 transmitters  -> every participant observes kSilence;
//   - 1 transmitter   -> every participant (including the transmitter, which
//                        thereby learns it was alone) observes kMessage and
//                        receives the payload;
//   - 2+ transmitters -> every participant observes kCollision.
// Channel 1 is the *primary* channel: the contention-resolution problem is
// solved in the first round in which exactly one node transmits on it.
#pragma once

#include <cstdint>
#include <string>

namespace crmc::mac {

// Collision-detection capability of the network (Section 2 discusses all
// three). The paper's algorithms assume kStrong; the weaker models exist to
// run no-CD baselines honestly and to demonstrate by ablation that strong
// CD is what the paper's algorithms actually rely on.
enum class CdModel : std::uint8_t {
  // Classical strong CD: every participant on a channel — transmitters
  // included — learns silence / message / collision.
  kStrong = 0,
  // Receiver collision detection (half-duplex transmitters): receivers get
  // full feedback, transmitters learn nothing (they observe silence).
  kReceiverOnly = 1,
  // No collision detection: a receiver hears a message iff exactly one
  // node transmitted; otherwise it observes silence (collisions are
  // indistinguishable from an idle channel). Transmitters learn nothing.
  kNone = 2,
};

inline const char* ToString(CdModel m) {
  switch (m) {
    case CdModel::kStrong:
      return "strong-cd";
    case CdModel::kReceiverOnly:
      return "receiver-cd";
    case CdModel::kNone:
      return "no-cd";
  }
  return "?";
}

// 1-based channel label. kIdleChannel means "do not participate this round".
using ChannelId = std::int32_t;
inline constexpr ChannelId kIdleChannel = 0;
inline constexpr ChannelId kPrimaryChannel = 1;

// Message payload. The algorithms in the paper only ever need to carry a
// small integer (e.g., the subrange index announced during SplitSearch).
struct Message {
  std::uint64_t payload = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

// What a participant observed on its channel this round.
enum class Observation : std::uint8_t {
  kSilence = 0,   // no transmitter on the channel
  kMessage = 1,   // exactly one transmitter; payload delivered
  kCollision = 2  // two or more transmitters
};

inline const char* ToString(Observation o) {
  switch (o) {
    case Observation::kSilence:
      return "silence";
    case Observation::kMessage:
      return "message";
    case Observation::kCollision:
      return "collision";
  }
  return "?";
}

// A node's decision for one round.
struct Action {
  ChannelId channel = kIdleChannel;  // 0 = sleep this round
  bool transmit = false;
  Message message{};

  static Action Idle() { return Action{}; }
  static Action Transmit(ChannelId ch, Message m = {}) {
    return Action{ch, true, m};
  }
  static Action Listen(ChannelId ch) { return Action{ch, false, Message{}}; }
};

// What the node learns at the end of the round. Idle nodes observe silence
// by convention (they learn nothing).
struct Feedback {
  Observation observation = Observation::kSilence;
  Message message{};  // valid iff observation == kMessage

  bool Silence() const { return observation == Observation::kSilence; }
  bool MessageHeard() const { return observation == Observation::kMessage; }
  bool Collision() const { return observation == Observation::kCollision; }
};

}  // namespace crmc::mac
