#include "mac/faults.h"

#include "support/assert.h"

namespace crmc::mac {
namespace {

bool IsProbability(double p) {
  // NaN fails both comparisons, so this also rejects non-finite garbage.
  return p >= 0.0 && p <= 1.0;
}

// Derive the fault master seed from (run seed, fault_seed). The multiplier
// keeps fault streams disjoint from the per-node protocol streams
// (RandomSource::ForStream over small stream indices) and from the engine's
// ID stream for every realistic configuration.
std::uint64_t FaultMasterSeed(const FaultSpec& spec, std::uint64_t run_seed) {
  return support::SplitMix64(run_seed ^
                             (0xFA171C0DE5EED5ULL * (spec.fault_seed + 1)))
      .Next();
}

}  // namespace

void FaultSpec::Validate() const {
  CRMC_REQUIRE_MSG(IsProbability(jam_rate),
                   "jam_rate must be in [0, 1], got " << jam_rate);
  CRMC_REQUIRE_MSG(IsProbability(erasure_rate),
                   "erasure_rate must be in [0, 1], got " << erasure_rate);
  CRMC_REQUIRE_MSG(IsProbability(flaky_cd_rate),
                   "flaky_cd_rate must be in [0, 1], got " << flaky_cd_rate);
  CRMC_REQUIRE_MSG(IsProbability(crash_rate),
                   "crash_rate must be in [0, 1], got " << crash_rate);
}

FaultInjector::FaultInjector(const FaultSpec& spec, std::uint64_t run_seed)
    : jam_(spec.jam_rate),
      erasure_(spec.erasure_rate),
      flip_(spec.flaky_cd_rate),
      crash_(spec.crash_rate),
      active_(spec.Any()),
      has_crashes_(spec.crash_rate > 0.0) {
  spec.Validate();
  // Pristine runs never draw from the fault streams, so leave them as
  // unseeded placeholders: engines construct one injector per trial, and
  // seeding three streams nobody reads dominated small-trial setup. Active
  // runs derive exactly the streams the seeded constructor always has.
  if (!active_) return;
  const std::uint64_t master = FaultMasterSeed(spec, run_seed);
  channel_rng_ = support::RandomSource::ForStream(master, 0xC4A77ELL);
  observer_rng_ = support::RandomSource::ForStream(master, 0x0B5E12ULL);
  crash_rng_ = support::RandomSource::ForStream(master, 0xC1A54ULL);
}

}  // namespace crmc::mac
