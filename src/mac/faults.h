// Adversarial fault injection for the MAC substrate.
//
// The paper's algorithms assume the pristine strong-CD channel of Section 3.
// The robustness literature the repo cites (Jiang & Zheng; Bender et al.)
// asks what happens when that assumption is chipped away: slots are jammed,
// messages are lost, collision detectors misfire, nodes die. This header
// defines the fault taxonomy and the injector that realises it:
//
//   - jamming:   a channel is jammed for one round; every participant
//                observes kCollision and nothing is delivered (a lone
//                transmission on a jammed primary channel does NOT solve
//                contention resolution).
//   - erasure:   a lone transmitter's message is dropped; every participant
//                (the transmitter included) observes kSilence. Under strong
//                CD this is feedback the paper's model declares impossible,
//                so strong-CD protocols surface it as a
//                ProtocolAssumptionViolation (the engines turn that into a
//                graceful per-run abort when faults are active).
//   - flaky CD:  each participant's collision detector independently
//                misfires: kSilence <-> kCollision, kMessage -> kCollision
//                (payload lost). Applied before the CdModel capability
//                filter — a no-CD transmitter has no detector to be flaky.
//   - crash:     crash-stop node failures, sampled per node per round at
//                the start of the round; a crashed node never acts again.
//
// All decisions are drawn from dedicated fault RNG streams derived from
// (run seed, FaultSpec::fault_seed), fully independent of the per-node
// protocol streams — so a faulty run is still a pure function of its
// EngineConfig, and a run with all rates at zero is bit-identical to one
// with no fault layer at all (zero-probability draws consume no generator
// state; see support::BatchBernoulli).
#pragma once

#include <cstdint>

#include "support/rng.h"

namespace crmc::mac {

// Per-round fault probabilities. All zero (the default) means the pristine
// Section 3 channel.
struct FaultSpec {
  double jam_rate = 0.0;       // per touched channel per round
  double erasure_rate = 0.0;   // per lone-transmitter channel per round
  double flaky_cd_rate = 0.0;  // per participant per round
  double crash_rate = 0.0;     // per alive node per round
  // Dedicated fault stream selector: two runs with the same engine seed but
  // different fault_seed face different adversaries over the same protocol
  // randomness.
  std::uint64_t fault_seed = 0;

  bool Any() const {
    return jam_rate > 0.0 || erasure_rate > 0.0 || flaky_cd_rate > 0.0 ||
           crash_rate > 0.0;
  }

  // Throws std::invalid_argument (distinct message per field) unless every
  // rate is a finite probability in [0, 1].
  void Validate() const;
};

// Tallies of faults actually injected during one run.
struct FaultCounters {
  std::int64_t jams = 0;
  std::int64_t erasures = 0;
  std::int64_t cd_flips = 0;
  std::int64_t crashes = 0;

  std::int64_t Total() const { return jams + erasures + cd_flips + crashes; }
};

// Draws fault decisions for one run. Construct one per run (cheap); the
// engines own it and hand it to mac::Resolver::Resolve each round. Draw
// order is part of the execution contract: engines draw crashes once per
// alive node in ascending node order at the start of each round, and the
// resolver draws jam/erasure per touched channel in first-touched order,
// then CD flips per participant in action order — so the coroutine and
// batch engines stay bit-exact under faults.
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, std::uint64_t run_seed);

  bool active() const { return active_; }
  bool has_crashes() const { return has_crashes_; }

  bool DrawCrash() {
    const bool crash = crash_.Draw(crash_rng_);
    if (crash) ++counters_.crashes;
    return crash;
  }
  bool DrawJam() {
    const bool jam = jam_.Draw(channel_rng_);
    if (jam) ++counters_.jams;
    return jam;
  }
  bool DrawErasure() {
    const bool erase = erasure_.Draw(channel_rng_);
    if (erase) ++counters_.erasures;
    return erase;
  }
  bool DrawCdFlip() {
    const bool flip = flip_.Draw(observer_rng_);
    if (flip) ++counters_.cd_flips;
    return flip;
  }

  const FaultCounters& counters() const { return counters_; }

 private:
  support::BatchBernoulli jam_;
  support::BatchBernoulli erasure_;
  support::BatchBernoulli flip_;
  support::BatchBernoulli crash_;
  support::RandomSource channel_rng_;   // jam + erasure draws
  support::RandomSource observer_rng_;  // CD-flip draws
  support::RandomSource crash_rng_;     // crash draws
  FaultCounters counters_;
  bool active_ = false;
  bool has_crashes_ = false;
};

}  // namespace crmc::mac
