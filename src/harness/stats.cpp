#include "harness/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "support/assert.h"
#include "support/rng.h"

namespace crmc::harness {

namespace {
double QuantileSorted(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return static_cast<double>(sorted[0]);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}
}  // namespace

Summary Summarize(const std::vector<std::int64_t>& values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<std::int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.count = static_cast<std::int64_t>(sorted.size());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (const std::int64_t v : sorted) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(sorted.size());
  double ss = 0.0;
  for (const std::int64_t v : sorted) {
    const double d = static_cast<double>(v) - s.mean;
    ss += d * d;
  }
  s.stddev = sorted.size() > 1
                 ? std::sqrt(ss / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.median = QuantileSorted(sorted, 0.5);
  s.p95 = QuantileSorted(sorted, 0.95);
  s.p99 = QuantileSorted(sorted, 0.99);
  return s;
}

double Quantile(std::vector<std::int64_t> values, double q) {
  CRMC_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  CRMC_REQUIRE(x.size() == y.size());
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

ConfidenceInterval BootstrapMeanCi(const std::vector<std::int64_t>& values,
                                   double alpha, std::int32_t resamples,
                                   std::uint64_t seed) {
  CRMC_REQUIRE(alpha > 0.0 && alpha < 1.0);
  CRMC_REQUIRE(resamples >= 10);
  ConfidenceInterval ci;
  if (values.empty()) return ci;
  support::RandomSource rng(seed);
  const auto n = static_cast<std::int64_t>(values.size());
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (std::int32_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      sum += static_cast<double>(
          values[static_cast<std::size_t>(rng.UniformInt(0, n - 1))]);
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(means.size() - 1));
    return means[idx];
  };
  ci.lower = at(alpha / 2.0);
  ci.upper = at(1.0 - alpha / 2.0);
  return ci;
}

std::string AsciiHistogram(const std::vector<std::int64_t>& values,
                           std::int32_t bins, std::int32_t max_bar_width) {
  CRMC_REQUIRE(max_bar_width >= 1);
  if (values.empty()) return "(no data)\n";
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const std::int64_t lo = *min_it;
  const std::int64_t hi = *max_it;
  if (bins <= 0) {
    bins = static_cast<std::int32_t>(
        std::max(1.0, std::round(std::sqrt(
                          static_cast<double>(values.size())))));
    bins = std::min(bins, 20);
  }
  const std::int64_t span = hi - lo + 1;
  bins = static_cast<std::int32_t>(
      std::min<std::int64_t>(bins, span));
  const std::int64_t width = (span + bins - 1) / bins;

  std::vector<std::int64_t> counts(static_cast<std::size_t>(bins), 0);
  for (const std::int64_t v : values) {
    auto b = static_cast<std::size_t>((v - lo) / width);
    if (b >= counts.size()) b = counts.size() - 1;
    ++counts[b];
  }
  const std::int64_t peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream os;
  for (std::int32_t b = 0; b < bins; ++b) {
    const std::int64_t from = lo + b * width;
    const std::int64_t to = std::min<std::int64_t>(from + width - 1, hi);
    const std::int64_t count = counts[static_cast<std::size_t>(b)];
    const auto bar = static_cast<std::int32_t>(
        peak == 0 ? 0 : (count * max_bar_width + peak - 1) / peak);
    os << std::setw(8) << from;
    if (to != from) {
      os << "-" << std::left << std::setw(8) << to << std::right;
    } else {
      os << std::string(9, ' ');
    }
    os << " |" << std::string(static_cast<std::size_t>(bar), '#')
       << std::string(static_cast<std::size_t>(max_bar_width - bar), ' ')
       << ' ' << count << '\n';
  }
  return os.str();
}

}  // namespace crmc::harness
