#include "harness/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "support/assert.h"

namespace crmc::harness {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent(std::size_t depth) {
  for (std::size_t i = 0; i < depth; ++i) os_ << "  ";
}

void JsonWriter::BeforeValue() {
  CRMC_REQUIRE_MSG(!done_, "JsonWriter: write after Finish()");
  if (stack_.empty()) {
    // Document root: only a single top-level value is allowed.
    CRMC_REQUIRE_MSG(!pending_key_, "JsonWriter: Key() at document root");
    return;
  }
  Scope& top = stack_.back();
  if (top.is_object) {
    CRMC_REQUIRE_MSG(pending_key_,
                     "JsonWriter: value inside an object needs a Key()");
    pending_key_ = false;
  } else {
    CRMC_REQUIRE_MSG(!pending_key_, "JsonWriter: Key() inside an array");
    if (!top.empty) os_ << ',';
    os_ << '\n';
    Indent(stack_.size());
  }
  top.empty = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  os_ << '{';
  stack_.push_back(Scope{/*is_object=*/true});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CRMC_REQUIRE_MSG(!stack_.empty() && stack_.back().is_object,
                   "JsonWriter: EndObject with no open object");
  CRMC_REQUIRE_MSG(!pending_key_, "JsonWriter: EndObject after dangling Key");
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) {
    os_ << '\n';
    Indent(stack_.size());
  }
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  os_ << '[';
  stack_.push_back(Scope{/*is_object=*/false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CRMC_REQUIRE_MSG(!stack_.empty() && !stack_.back().is_object,
                   "JsonWriter: EndArray with no open array");
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) {
    os_ << '\n';
    Indent(stack_.size());
  }
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  CRMC_REQUIRE_MSG(!stack_.empty() && stack_.back().is_object,
                   "JsonWriter: Key() outside an object");
  CRMC_REQUIRE_MSG(!pending_key_, "JsonWriter: two Key() calls in a row");
  Scope& top = stack_.back();
  if (!top.empty) os_ << ',';
  os_ << '\n';
  Indent(stack_.size());
  os_ << '"' << JsonEscape(name) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  os_ << '"' << JsonEscape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  BeforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  CRMC_REQUIRE_MSG(std::isfinite(v), "JsonWriter: non-finite double");
  BeforeValue();
  // Shortest representation that round-trips: consumers check exact
  // invariants (e.g. success_rate == solved / trials) against these values.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  os_ << (v ? "true" : "false");
  return *this;
}

void JsonWriter::Finish() {
  CRMC_REQUIRE_MSG(stack_.empty(), "JsonWriter: Finish() with open scopes");
  CRMC_REQUIRE_MSG(!done_, "JsonWriter: Finish() called twice");
  os_ << '\n';
  done_ = true;
}

}  // namespace crmc::harness
