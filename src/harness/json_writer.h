// Minimal streaming JSON writer for machine-readable bench artifacts
// (e.g. BENCH_engine.json). No external dependency: the writer tracks the
// open object/array nesting and handles commas, indentation, and string
// escaping so call sites only state structure.
//
// Usage:
//   JsonWriter w(os);
//   w.BeginObject();
//   w.Key("schema").Value("crmc.bench_engine.v1");
//   w.Key("points").BeginArray();
//   ...
//   w.EndArray();
//   w.EndObject();
//
// Mis-nesting (EndObject inside an array, a Value with no pending Key
// inside an object, two Keys in a row, ...) trips a CRMC_REQUIRE.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crmc::harness {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Inside an object: names the next value. Must be followed by exactly
  // one Value/Begin* call.
  JsonWriter& Key(const std::string& name);

  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(std::int32_t v) {
    return Value(static_cast<std::int64_t>(v));
  }
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);

  // Finishes the document: requires all scopes closed, emits the trailing
  // newline.
  void Finish();

 private:
  // Emits the comma/newline/indent that precedes a new element, and
  // consumes a pending Key if one is open.
  void BeforeValue();
  void Indent(std::size_t depth);

  std::ostream& os_;
  struct Scope {
    bool is_object;
    bool empty = true;
  };
  std::vector<Scope> stack_;
  bool pending_key_ = false;
  bool done_ = false;
};

// Escapes a string for inclusion in a JSON document (adds no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace crmc::harness
