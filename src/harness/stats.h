// Summary statistics for experiment results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace crmc::harness {

struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::int64_t min = 0;
  std::int64_t max = 0;
};

// Computes order statistics and moments of `values` (copied and sorted
// internally). Empty input yields a zero Summary.
Summary Summarize(const std::vector<std::int64_t>& values);

// Quantile by linear interpolation on the sorted copy; q in [0, 1].
double Quantile(std::vector<std::int64_t> values, double q);

// Least-squares fit of y ~ a*x + b; returns {a, b}. Used to check scaling
// shapes (e.g., rounds vs log n / log C should be linear with slope ~const).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y);

// Percentile-bootstrap confidence interval for the mean: resamples
// `values` with replacement `resamples` times (deterministically, from
// `seed`) and returns the [alpha/2, 1-alpha/2] band of resampled means.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
};
ConfidenceInterval BootstrapMeanCi(const std::vector<std::int64_t>& values,
                                   double alpha = 0.05,
                                   std::int32_t resamples = 1000,
                                   std::uint64_t seed = 0xb007);

// Fixed-width ASCII histogram of `values` ("12-14 | #### 37"-style rows),
// for distribution-shaped bench output. `bins` <= 0 picks ~sqrt(count).
std::string AsciiHistogram(const std::vector<std::int64_t>& values,
                           std::int32_t bins = 0,
                           std::int32_t max_bar_width = 50);

}  // namespace crmc::harness
