// Multi-trial experiment runner.
//
// Runs many independent Engine executions (different seeds) of a protocol
// on a fixed (n, |A|, C) point, in parallel across hardware threads, and
// collects the solved-round distribution. Every bench binary is built on
// this.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/stats.h"
#include "sim/engine.h"

namespace crmc::harness {

struct TrialSpec {
  std::int64_t population = 0;  // n (0 -> num_active)
  std::int32_t num_active = 0;  // |A|
  std::int32_t channels = 1;    // C
  std::int64_t max_rounds = 4'000'000;
  std::uint64_t base_seed = 0x5eedULL;
  bool record_active_counts = false;
  bool stop_when_solved = true;
};

struct TrialSetResult {
  std::vector<std::int64_t> solved_rounds;  // per solved trial (1-based count)
  std::int32_t unsolved = 0;                // trials that hit max_rounds
  Summary summary;                          // over solved_rounds
  std::vector<sim::RunResult> runs;         // iff keep_runs was requested
};

// Runs `trials` executions with seeds base_seed + t. `keep_runs` retains
// the full RunResult per trial (costs memory; used by instrumentation-heavy
// experiments). Trials are distributed over up to `threads` std::threads
// (0 = hardware concurrency). The solved-round metric is reported as
// solved_round + 1, i.e. "the problem was solved in the R-th round".
TrialSetResult RunTrials(const TrialSpec& spec,
                         const sim::ProtocolFactory& protocol,
                         std::int32_t trials, bool keep_runs = false,
                         std::int32_t threads = 0);

// Convenience: mean solved rounds (asserts all trials solved).
double MeanSolvedRounds(const TrialSpec& spec,
                        const sim::ProtocolFactory& protocol,
                        std::int32_t trials);

}  // namespace crmc::harness
