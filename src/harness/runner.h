// Multi-trial experiment runner.
//
// Runs many independent Engine executions (different seeds) of a protocol
// on a fixed (n, |A|, C) point, in parallel across hardware threads, and
// collects the solved-round distribution. Every bench binary is built on
// this.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/stats.h"
#include "sim/engine.h"
#include "sim/step_program.h"

namespace crmc::harness {

struct TrialSpec {
  std::int64_t population = 0;  // n (0 -> num_active)
  std::int32_t num_active = 0;  // |A|
  std::int32_t channels = 1;    // C
  std::int64_t max_rounds = 4'000'000;
  std::uint64_t base_seed = 0x5eedULL;
  bool record_active_counts = false;
  bool stop_when_solved = true;
  // Opt-out for the BatchEngine fast path: when false, trials always run
  // on the coroutine engine even if the protocol ships a step program.
  bool use_batch_engine = true;
  // Trials per lockstep chunk of the trial-parallel executor
  // (sim/trial_engine.h). 1 (the default) keeps the per-trial batch path;
  // > 1 makes each worker claim blocks of this many consecutive trials and
  // run them as SIMD lanes — requires rng == kPhilox (the executor rejects
  // xoshiro) and a step program. Results are bit-identical to lane width 1
  // for any width and thread count: every trial is a pure function of its
  // per-trial config, so sharding changes nothing but wall-clock.
  std::int32_t lane_width = 1;
  // Opt-out for fused fast rounds (BatchEngine::set_fused_rounds, and the
  // trial executor's lane rounds): when false every trial runs the generic
  // materialized path — bit-identical results, for debugging (--no-fused).
  bool fused_rounds = true;
  // Core generator for every trial's draw streams. Either kind keeps the
  // batch/coroutine engines bit-identical; philox draws are counter-based
  // (lane-reproducible and SIMD-vectorizable), xoshiro keeps the
  // historical sequential bit streams.
  support::RngKind rng = support::RngKind::kXoshiro;
  // Adversarial fault injection, forwarded to every trial's EngineConfig.
  mac::FaultSpec faults;
  // Budgeted adaptive jamming adversary, likewise forwarded per trial (the
  // trial seed doubles as the run seed, so every trial faces a fresh but
  // reproducible jamming schedule).
  adversary::AdversarySpec adversary;
  // Robust execution layer (robust/robust.h), forwarded per trial.
  robust::RobustSpec robust;
};

// A protocol as the harness runs it: the coroutine factory (always present
// — the reference semantics) plus an optional step-program factory that
// enables the BatchEngine fast path. Implicitly constructible from a bare
// ProtocolFactory so existing call sites keep the coroutine engine.
struct ProtocolHandle {
  sim::ProtocolFactory coroutine;
  sim::StepProgramFactory step_program;  // null: coroutine engine only

  // NOLINTNEXTLINE(google-explicit-constructor): deliberate adapter
  ProtocolHandle(sim::ProtocolFactory coroutine_in)
      : coroutine(std::move(coroutine_in)) {}
  ProtocolHandle(sim::ProtocolFactory coroutine_in,
                 sim::StepProgramFactory step_program_in)
      : coroutine(std::move(coroutine_in)),
        step_program(std::move(step_program_in)) {}
};

struct TrialSetResult {
  std::vector<std::int64_t> solved_rounds;  // per solved trial (1-based count)
  // Trials that did not solve, by cause. `unsolved` is the total; the
  // breakdown below keeps failed trials out of the solved-round statistics
  // instead of letting a max_rounds-capped round count poison the mean.
  std::int32_t unsolved = 0;
  std::int32_t timed_out = 0;  // hit max_rounds
  std::int32_t aborted = 0;    // assumption_violated (fault-induced)
  std::int32_t wedged = 0;     // timed out with a stalled trailing half
  // Silent failures: every node terminated believing the problem solved,
  // yet no lone primary delivery ever landed. Counted uniformly for every
  // protocol (the TwoActive shape included — its jammed both-terminated
  // runs land here, not in timed_out).
  std::int32_t deluded = 0;
  // Trials that solved with the robust layer's delivery confirmation
  // (RunResult::confirmed). Equals solved_rounds.size() when the layer is
  // on; 0 when it is off.
  std::int32_t confirmed = 0;
  // Robust-execution aggregates summed over every trial (solved or not).
  std::int64_t epochs_used = 0;
  std::int64_t retries = 0;
  std::int64_t confirm_rounds = 0;
  std::int64_t backoff_rounds = 0;
  // Adaptive-policy aggregates (robust::PolicyKind::kAdaptive): summed
  // extra echo rounds and trimmed honeypot rounds vs the static schedule;
  // confirm_quorum_peak is the max over trials, not a sum.
  std::int64_t adaptive_confirm_extra = 0;
  std::int64_t adaptive_backoff_trimmed = 0;
  std::int32_t confirm_quorum_peak = 0;
  // Fault-layer aggregates summed over every trial (solved or not).
  std::int64_t faults_injected = 0;
  std::int64_t crashed_nodes = 0;
  // Adaptive-adversary aggregates, likewise summed over every trial.
  std::int64_t adv_jams_spent = 0;
  std::int64_t adv_jams_effective = 0;
  // Hold/spend breakdown summed over every trial (sim::RunResult docs).
  std::int64_t adv_rounds_held = 0;
  std::int64_t adv_jams_echo = 0;
  std::int64_t adv_jams_backoff = 0;
  // Rounds executed summed over every trial, solved and failed alike (a
  // failed trial contributes its max_rounds cap). The bench layer's
  // wrapper-overhead ratios are built on this total cost measure.
  std::int64_t rounds_total = 0;
  Summary summary;             // over solved_rounds only
  std::vector<sim::RunResult> runs;  // iff keep_runs was requested
};

// Runs `trials` executions with seeds base_seed + t. `keep_runs` retains
// the full RunResult per trial (costs memory; used by instrumentation-heavy
// experiments). Trials are distributed over up to `threads` std::threads
// (0 = hardware concurrency). The solved-round metric is reported as
// solved_round + 1, i.e. "the problem was solved in the R-th round".
//
// When the handle carries a step program, spec.use_batch_engine holds, and
// keep_runs is off (step programs emit no node_reports), trials dispatch to
// BatchEngine — one engine + program instance per worker thread, so a sweep
// is allocation-free after its first trial. Identical results either way:
// the shipped step programs are draw-order identical to their coroutines.
TrialSetResult RunTrials(const TrialSpec& spec, const ProtocolHandle& protocol,
                         std::int32_t trials, bool keep_runs = false,
                         std::int32_t threads = 0);

// Convenience: mean solved rounds (asserts all trials solved).
double MeanSolvedRounds(const TrialSpec& spec, const ProtocolHandle& protocol,
                        std::int32_t trials);

}  // namespace crmc::harness
