// Name-indexed registry of all contention-resolution algorithms in the
// library, for examples and cross-algorithm benches.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.h"

namespace crmc::harness {

struct AlgorithmInfo {
  std::string name;
  std::string description;
  // Model requirements / caveats surfaced in example output.
  bool requires_two_active = false;  // TwoActive is specified for |A| = 2
  bool oracle = false;               // cheats (knows |A|)
  bool self_terminating = false;     // nodes detect completion themselves
  sim::ProtocolFactory (*make)() = nullptr;
};

// All registered algorithms (paper algorithms first, then baselines).
const std::vector<AlgorithmInfo>& Algorithms();

// Lookup by name; throws std::invalid_argument listing valid names.
const AlgorithmInfo& AlgorithmByName(const std::string& name);

}  // namespace crmc::harness
