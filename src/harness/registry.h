// Name-indexed registry of all contention-resolution algorithms in the
// library, for examples and cross-algorithm benches.
#pragma once

#include <string>
#include <vector>

#include "harness/runner.h"
#include "sim/engine.h"
#include "sim/step_program.h"

namespace crmc::harness {

struct AlgorithmInfo {
  std::string name;
  std::string description;
  // Model requirements / caveats surfaced in example output.
  bool requires_two_active = false;  // TwoActive is specified for |A| = 2
  bool oracle = false;               // cheats (knows |A|)
  bool self_terminating = false;     // nodes detect completion themselves
  sim::ProtocolFactory (*make)() = nullptr;
  // Columnar twin for the BatchEngine fast path; null when the algorithm
  // has no step program (it then always runs on the coroutine engine).
  sim::StepProgramFactory (*make_step)() = nullptr;
};

// All registered algorithms (paper algorithms first, then baselines).
const std::vector<AlgorithmInfo>& Algorithms();

// Lookup by name; throws std::invalid_argument listing valid names.
const AlgorithmInfo& AlgorithmByName(const std::string& name);

// The runnable handle for an algorithm: its coroutine factory plus, when
// registered, its step-program twin (enabling the RunTrials fast path).
ProtocolHandle HandleFor(const AlgorithmInfo& info);

}  // namespace crmc::harness
