#include "harness/table.h"

#include <algorithm>
#include <iomanip>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace crmc::harness {

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  CRMC_REQUIRE(!columns_.empty());
}

Table::RowBuilder& Table::RowBuilder::Cell(const std::string& v) {
  cells_.push_back(v);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::Cell(const char* v) {
  cells_.emplace_back(v);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::Cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::Cell(double v, int precision) {
  cells_.push_back(FormatDouble(v, precision));
  return *this;
}

Table::RowScope::~RowScope() {
  builder_.table_.AddRow(std::move(builder_.cells_));
}

void Table::AddRow(std::vector<std::string> cells) {
  CRMC_REQUIRE_MSG(cells.size() == columns_.size(),
                   "row has " << cells.size() << " cells, table has "
                              << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void Table::PrintMarkdown(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };
  print_row(columns_);
  os << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::Print(std::ostream& os) const {
  const char* mode = std::getenv("CRMC_OUTPUT");
  if (mode != nullptr && std::string(mode) == "csv") {
    PrintCsv(os);
  } else {
    PrintMarkdown(os);
  }
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace crmc::harness
