// Markdown / CSV table rendering for bench output.
//
// Every bench binary prints the rows/series of the experiment it
// regenerates; this keeps the formatting consistent and machine-readable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crmc::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Row-building: values are formatted on insertion.
  class RowBuilder {
   public:
    RowBuilder& Cell(const std::string& v);
    RowBuilder& Cell(const char* v);
    RowBuilder& Cell(std::int64_t v);
    RowBuilder& Cell(std::int32_t v) {
      return Cell(static_cast<std::int64_t>(v));
    }
    RowBuilder& Cell(double v, int precision = 2);

   private:
    friend class Table;
    explicit RowBuilder(Table& table) : table_(table) {}
    Table& table_;
    std::vector<std::string> cells_;
  };

  // Usage: table.Row().Cell(n).Cell(c).Cell(mean); the row is committed
  // when the builder is destroyed (end of the full expression).
  class RowScope {
   public:
    explicit RowScope(Table& table) : builder_(table) {}
    ~RowScope();
    RowScope(const RowScope&) = delete;
    RowScope& operator=(const RowScope&) = delete;
    template <typename T, typename... Rest>
    RowScope& Cells(T&& first, Rest&&... rest) {
      builder_.Cell(std::forward<T>(first));
      if constexpr (sizeof...(rest) > 0) Cells(std::forward<Rest>(rest)...);
      return *this;
    }

   private:
    RowBuilder builder_;
  };

  // table.Row().Cells(a, b, c) — the row commits when the temporary dies
  // (guaranteed copy elision makes returning the non-movable scope legal).
  RowScope Row() { return RowScope(*this); }

  void AddRow(std::vector<std::string> cells);
  std::size_t num_rows() const { return rows_.size(); }

  void PrintMarkdown(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

  // Markdown unless the environment variable CRMC_OUTPUT=csv is set —
  // lets `CRMC_OUTPUT=csv ./bench_... > data.csv` feed plotting scripts
  // without touching the binaries.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper shared with benches).
std::string FormatDouble(double v, int precision = 2);

}  // namespace crmc::harness
