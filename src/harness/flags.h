// A small command-line flag parser for the crmc CLI and bench binaries.
//
// Supports `--name=value`, `--name value`, boolean `--name`, and
// positional arguments. Unknown flags are errors (typos should not be
// silently ignored in experiment tooling).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crmc::harness {

class Flags {
 public:
  // Parses argv[1..). Throws std::invalid_argument on malformed input
  // (e.g. "--=x", missing value for a known non-boolean is the caller's
  // concern via the typed getters).
  static Flags Parse(int argc, const char* const* argv);

  // Typed getters; throw std::invalid_argument when the value does not
  // parse. `Get*Or` return the default when the flag is absent.
  std::optional<std::string> GetString(const std::string& name) const;
  std::string GetStringOr(const std::string& name,
                          const std::string& fallback) const;
  std::int64_t GetIntOr(const std::string& name, std::int64_t fallback) const;
  double GetDoubleOr(const std::string& name, double fallback) const;
  bool GetBoolOr(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names that were parsed but never read — surfaced so commands can
  // reject typos after pulling their known flags.
  std::vector<std::string> UnconsumedFlags() const;

 private:
  // value is empty-string for bare boolean flags.
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace crmc::harness
