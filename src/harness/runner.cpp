#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <span>
#include <thread>

#include "sim/batch_engine.h"
#include "sim/trial_engine.h"
#include "support/assert.h"

namespace crmc::harness {

TrialSetResult RunTrials(const TrialSpec& spec, const ProtocolHandle& protocol,
                         std::int32_t trials, bool keep_runs,
                         std::int32_t threads) {
  CRMC_REQUIRE(trials >= 1);
  CRMC_REQUIRE(protocol.coroutine != nullptr);
  CRMC_REQUIRE(spec.lane_width >= 1);
  if (threads <= 0) {
    threads = static_cast<std::int32_t>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  threads = std::min(threads, trials);

  const bool batch = protocol.step_program != nullptr &&
                     spec.use_batch_engine && !keep_runs;
  // Trial-parallel lanes: workers claim blocks of lane_width consecutive
  // trials and run them as one lockstep chunk. Block boundaries only group
  // work — every trial's result is a pure function of its per-trial config,
  // so statistics are bit-identical across any threads x lane-width split.
  const bool lanes = batch && spec.lane_width > 1;
  const std::int32_t stride = lanes ? spec.lane_width : 1;

  std::vector<sim::RunResult> runs(static_cast<std::size_t>(trials));
  std::atomic<std::int32_t> next{0};
  auto worker = [&]() {
    // Per-worker scratch for the fast path: the engines and the program
    // instance are reused across every trial this worker claims.
    sim::BatchEngine batch_engine;
    batch_engine.set_fused_rounds(spec.fused_rounds);
    sim::TrialBatchEngine trial_engine(stride);
    trial_engine.set_fused_rounds(spec.fused_rounds);
    std::unique_ptr<sim::StepProgram> program;
    if (batch) program = protocol.step_program();
    std::vector<std::uint64_t> seeds;
    for (;;) {
      const std::int32_t t = next.fetch_add(stride);
      if (t >= trials) return;
      sim::EngineConfig config;
      config.population = spec.population;
      config.num_active = spec.num_active;
      config.channels = spec.channels;
      config.seed = spec.base_seed + static_cast<std::uint64_t>(t);
      config.max_rounds = spec.max_rounds;
      config.stop_when_solved = spec.stop_when_solved;
      config.record_active_counts = spec.record_active_counts;
      config.rng = spec.rng;
      config.faults = spec.faults;
      config.adversary = spec.adversary;
      config.robust = spec.robust;
      if (lanes) {
        const std::int32_t count = std::min(stride, trials - t);
        seeds.resize(static_cast<std::size_t>(count));
        for (std::int32_t i = 0; i < count; ++i) {
          seeds[static_cast<std::size_t>(i)] =
              spec.base_seed + static_cast<std::uint64_t>(t + i);
        }
        trial_engine.Run(config, *program, seeds,
                         std::span<sim::RunResult>(runs).subspan(
                             static_cast<std::size_t>(t),
                             static_cast<std::size_t>(count)));
        continue;
      }
      runs[static_cast<std::size_t>(t)] =
          batch ? batch_engine.Run(config, *program)
                : sim::Engine::Run(config, protocol.coroutine);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (std::int32_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  TrialSetResult result;
  result.solved_rounds.reserve(static_cast<std::size_t>(trials));
  for (const sim::RunResult& run : runs) {
    result.faults_injected += run.faults_injected;
    result.crashed_nodes += run.crashed_nodes;
    result.adv_jams_spent += run.adv_jams_spent;
    result.adv_jams_effective += run.adv_jams_effective;
    result.adv_rounds_held += run.adv_rounds_held;
    result.adv_jams_echo += run.adv_jams_echo;
    result.adv_jams_backoff += run.adv_jams_backoff;
    result.epochs_used += run.epochs_used;
    result.retries += run.retries;
    result.confirm_rounds += run.confirm_rounds;
    result.backoff_rounds += run.backoff_rounds;
    result.adaptive_confirm_extra += run.adaptive_confirm_extra;
    result.adaptive_backoff_trimmed += run.adaptive_backoff_trimmed;
    result.confirm_quorum_peak =
        std::max(result.confirm_quorum_peak, run.confirm_quorum_peak);
    result.rounds_total += run.rounds_executed;
    if (run.solved) {
      result.solved_rounds.push_back(run.solved_round + 1);
      if (run.confirmed) ++result.confirmed;
    } else {
      // Failed trials are counted, never folded into the round statistics:
      // a timed-out trial's rounds_executed is just the max_rounds cap.
      ++result.unsolved;
      if (run.timed_out) ++result.timed_out;
      if (run.assumption_violated) ++result.aborted;
      if (run.wedged) ++result.wedged;
      // The remainder terminated unsolved without violating an assumption:
      // the nodes exited deluded (silent failure).
      if (!run.timed_out && !run.assumption_violated) ++result.deluded;
    }
  }
  result.summary = Summarize(result.solved_rounds);
  if (keep_runs) result.runs = std::move(runs);
  return result;
}

double MeanSolvedRounds(const TrialSpec& spec, const ProtocolHandle& protocol,
                        std::int32_t trials) {
  const TrialSetResult r = RunTrials(spec, protocol, trials);
  CRMC_CHECK_MSG(r.unsolved == 0,
                 r.unsolved << " of " << trials << " trials failed to solve ("
                            << r.timed_out << " timed out, " << r.aborted
                            << " aborted)");
  return r.summary.mean;
}

}  // namespace crmc::harness
