#include "harness/registry.h"

#include <sstream>
#include <stdexcept>

#include "baselines/baselines.h"
#include "core/general.h"
#include "core/reduce.h"
#include "core/two_active.h"

namespace crmc::harness {

namespace {

sim::ProtocolFactory MakeTwoActiveDefault() {
  return core::MakeTwoActive();
}
sim::ProtocolFactory MakeGeneralDefault() { return core::MakeGeneral(); }

sim::StepProgramFactory MakeTwoActiveStep() {
  return []() { return sim::MakeTwoActiveProgram(); };
}
sim::StepProgramFactory MakeGeneralStep() {
  return []() { return sim::MakeGeneralProgram(); };
}
sim::StepProgramFactory MakeKnockoutCdStep() {
  return []() { return sim::MakeKnockoutCdProgram(); };
}

}  // namespace

const std::vector<AlgorithmInfo>& Algorithms() {
  static const std::vector<AlgorithmInfo> kAlgorithms = {
      {"two_active",
       "paper Sec. 4: optimal O(log n/log C + loglog n) for |A| = 2",
       /*requires_two_active=*/true, /*oracle=*/false,
       /*self_terminating=*/true, &MakeTwoActiveDefault, &MakeTwoActiveStep},
      {"general",
       "paper Sec. 5: O(log n/log C + loglog n * logloglog n), any |A|",
       false, false, true, &MakeGeneralDefault, &MakeGeneralStep},
      {"knockout_cd",
       "classic 1-channel CD knockout, Theta(log n); the paper's C = O(1) "
       "fallback",
       false, false, true, &core::MakeKnockoutCd, &MakeKnockoutCdStep},
      {"binary_descent_cd",
       "classic 1-channel CD binary descent over IDs, <= ceil(lg n)+1 "
       "rounds, probability 1",
       false, false, true, &baselines::MakeBinaryDescentCd},
      {"decay_no_cd",
       "Bar-Yehuda-style decay, 1 channel, no CD, Theta(log^2 n) w.h.p.",
       false, false, false, &baselines::MakeDecayNoCd},
      {"daum_multichannel_no_cd",
       "Daum-2012-flavoured multi-channel no-CD elimination + decay",
       false, false, false, &baselines::MakeDaumStyle},
      {"willard_cd",
       "Willard-1986-style density binary search, 1 channel + CD, "
       "O(loglog n) expected",
       false, false, true, &baselines::MakeWillardCd},
      {"expected_o1_multichannel",
       "geometric lottery + echo confirm, ~log n channels, no CD, O(1) "
       "expected",
       false, false, false, &baselines::MakeExpectedO1Multichannel},
      {"aloha_oracle",
       "slotted ALOHA knowing |A| exactly (clairvoyant reference)",
       false, true, true, &baselines::MakeAlohaOracle},
  };
  return kAlgorithms;
}

ProtocolHandle HandleFor(const AlgorithmInfo& info) {
  if (info.make_step != nullptr) {
    return ProtocolHandle(info.make(), info.make_step());
  }
  return ProtocolHandle(info.make());
}

const AlgorithmInfo& AlgorithmByName(const std::string& name) {
  for (const AlgorithmInfo& info : Algorithms()) {
    if (info.name == name) return info;
  }
  std::ostringstream os;
  os << "unknown algorithm '" << name << "'; available:";
  for (const AlgorithmInfo& info : Algorithms()) os << ' ' << info.name;
  throw std::invalid_argument(os.str());
}

}  // namespace crmc::harness
