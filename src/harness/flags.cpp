#include "harness/flags.h"

#include <cstdlib>
#include <stdexcept>

#include "support/assert.h"

namespace crmc::harness {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    CRMC_REQUIRE_MSG(!body.empty() && body[0] != '=',
                     "malformed flag '" << arg << "'");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; bare
    // `--name` otherwise (boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

std::optional<std::string> Flags::GetString(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::string Flags::GetStringOr(const std::string& name,
                               const std::string& fallback) const {
  return GetString(name).value_or(fallback);
}

std::int64_t Flags::GetIntOr(const std::string& name,
                             std::int64_t fallback) const {
  const auto value = GetString(name);
  if (!value.has_value()) return fallback;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(value->c_str(), &end, 10);
  CRMC_REQUIRE_MSG(end != value->c_str() && *end == '\0',
                   "flag --" << name << " expects an integer, got '"
                             << *value << "'");
  return parsed;
}

double Flags::GetDoubleOr(const std::string& name, double fallback) const {
  const auto value = GetString(name);
  if (!value.has_value()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  CRMC_REQUIRE_MSG(end != value->c_str() && *end == '\0',
                   "flag --" << name << " expects a number, got '" << *value
                             << "'");
  return parsed;
}

bool Flags::GetBoolOr(const std::string& name, bool fallback) const {
  const auto value = GetString(name);
  if (!value.has_value()) return fallback;
  if (*value == "" || *value == "true" || *value == "1") return true;
  if (*value == "false" || *value == "0") return false;
  throw std::invalid_argument("flag --" + name +
                              " expects a boolean, got '" + *value + "'");
}

std::vector<std::string> Flags::UnconsumedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!consumed_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace crmc::harness
