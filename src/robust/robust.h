// Robust execution layer: delivery confirmation, epoch retry with bounded
// exponential backoff, and phase watchdogs.
//
// E22/E23 (EXPERIMENTS.md) showed the paper's algorithms are brittle in
// exactly the way the model permits: a single reactive jam on Reduce's
// all-listen round makes every node terminate *deluded* — convinced the
// problem is solved when no lone primary delivery ever landed. The
// robustness literature (Jiang & Zheng, arXiv:2111.06650; Bender et al.,
// arXiv:2408.11275) shows jamming-robustness is bought by trading rounds
// for confirmation. This subsystem realises that trade as an engine-level
// wrapper that composes over ANY registered protocol:
//
//   1. Delivery confirmation. A round with exactly one primary-channel
//      transmitter is a *candidate*. If the transmission was delivered,
//      strong CD already acks it (the winner observes kMessage). If it was
//      suppressed (jammed/erased), the engine inserts up to
//      `confirm_attempts` echo/verify rounds: the candidate winner
//      retransmits on the primary channel while every other live node
//      listens there. An unsuppressed echo both *solves* the run (it is a
//      lone primary delivery) and *confirms* it (the winner observes
//      kMessage; the quiesced listeners witness the delivery). The
//      adversary must spend budget on every echo to keep the claim open.
//
//   2. Epoch retry with bounded exponential backoff. When an epoch fails —
//      every node terminated without a confirmed delivery (the deluded
//      exit), a watchdog expired, or a protocol assumption was violated —
//      the engine re-enters the protocol in a fresh epoch: all non-crashed
//      nodes restart with RNG streams re-salted by the epoch index, after
//      an exponentially growing pause of all-idle backoff rounds. The
//      pause is a honeypot: silence is indistinguishable from an all-listen
//      round, so reactive jammers keep spending budget on it.
//
//   3. Phase watchdogs. Per-stage round budgets derived from the w.h.p.
//      bounds of the general algorithm's pipeline (Reduce / IDReduction /
//      LeafElection) sum into a per-epoch budget; a separate stall budget
//      bounds rounds without observable progress. A jammed stage restarts
//      the epoch instead of stalling to max_rounds.
//
// Both engines (sim/engine.cpp, sim/batch_engine.cpp) drive the layer
// through the EpochDriver below at identical points of their round loops,
// so wrapped runs stay bit-exact across executors; with the layer disabled
// — or enabled over a pristine, unjammed run — execution is bit-identical
// to an unwrapped run (epoch 0 uses the unsalted seed, and the
// confirmation path inserts zero rounds when the candidate delivers).
// The *adaptive* policy (PolicyKind::kAdaptive, PR 7) closes the arms-race
// loop the static constants leave open: a wrapper-aware jammer (the
// lookahead/learning strategies) holds its budget through the honeypot and
// outlasts any fixed schedule. The adaptive policy instead sizes the
// defenses online from the adversary's *observed spend*, reusing the E20
// estimation discipline (core/estimation.h: noisy per-round signals are
// combined by a median over a fixed number of independent samples):
//
//   a. Fault-aware confirmation quorum. The per-epoch echo-suppression
//      rate — jams and erasures alike, the wrapper cannot tell and does
//      not care — is estimated as a median over the last
//      kEstimatorSamples per-epoch samples (Laplace-smoothed), and the
//      confirmation loop runs until the w.h.p. quorum ConfirmQuorum(p, n)
//      is met: the smallest k with p^k <= 1/n, clamped to
//      [spec.confirm_attempts, kMaxConfirmQuorum]. Under erasure/flaky-CD
//      a dropped echo no longer burns the whole epoch (the quorum grows
//      just enough to push the failure probability back below 1/n); under
//      a reactive jammer every suppressed echo *raises* the estimate,
//      which lengthens the exchange — one suppressed candidate can force
//      the jammer to spend up to kMaxConfirmQuorum budget or lose the
//      claim, which is what drains a honeypot-evading adversary.
//   b. Epoch budgets. Every adaptive echo round extends the epoch's
//      watchdog budget by one: the quorum exchange is the wrapper's own
//      spend-forcing and must not trip the restart watchdog.
//   c. Honeypot sizing. The backoff pause is a drain for adversaries that
//      spend on silence; one that holds through it makes the pause pure
//      overhead. Pauses after the first retry are trimmed to a single
//      probe round while the observed honeypot yield (jams landing on
//      backoff rounds) is zero, and restored to the full schedule the
//      moment the adversary is seen spending there.
//
// With PolicyKind::kStatic every knob keeps its spec value and the driver
// is bit-identical to the PR 5 wrapper; an adaptive wrapper over a
// pristine run never observes a suppression and is likewise bit-identical
// to the bare run.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "mac/channel.h"

namespace crmc::robust {

// How the wrapper's tuning knobs evolve at runtime (RobustSpec::policy).
enum class PolicyKind : std::uint8_t {
  kStatic = 0,  // PR 5 behaviour: every knob is a constant from the spec
  kAdaptive,    // knobs sized online from observed adversary spend
};

const char* ToString(PolicyKind policy);
std::optional<PolicyKind> ParsePolicyKind(std::string_view name);

// Hard ceiling on the adaptive confirmation quorum (echo rounds per
// suppressed candidate). Bounds one exchange's round cost and, dually, the
// budget an adversary can be forced to spend per candidate. Must stay
// within RobustSpec::confirm_attempts' validated range.
inline constexpr std::int32_t kMaxConfirmQuorum = 512;

// Samples in the suppression-rate median estimator (matches the E20
// estimators' default sample count; odd to avoid median ties).
inline constexpr std::int32_t kEstimatorSamples = 5;

// Engine-facing robust-execution configuration (embedded in
// sim::EngineConfig and harness::TrialSpec). Defaults are inert: enabled
// == false leaves both engines on their historical code paths.
struct RobustSpec {
  bool enabled = false;
  // Static: PR 5 constants. Adaptive: confirmation quorum, epoch budgets
  // and backoff honeypots are sized online (see file comment).
  PolicyKind policy = PolicyKind::kStatic;
  // Maximum epochs (protocol restarts count from 1). The final epoch runs
  // to its natural end — timeout, termination, or abort — with no retry.
  std::int32_t max_epochs = 8;
  // Echo/verify rounds inserted per suppressed candidate (0 disables the
  // confirmation exchange; epoch retry still applies).
  std::int32_t confirm_attempts = 3;
  // Backoff pause before epoch e (e >= 1, 0-based): min(backoff_cap,
  // backoff_base << (e - 1)) all-idle rounds. backoff_base 0 disables the
  // pause entirely.
  std::int64_t backoff_base = 2;
  std::int64_t backoff_cap = 256;
  // Per-epoch round budget for the watchdog; 0 derives it from the w.h.p.
  // stage bounds (EpochRoundBudget below).
  std::int64_t epoch_round_budget = 0;
  // Rounds without observable progress before the stall watchdog restarts
  // the epoch; 0 derives it (StallRoundBudget below).
  std::int64_t stall_round_budget = 0;

  bool Active() const { return enabled; }
  bool Adaptive() const {
    return enabled && policy == PolicyKind::kAdaptive;
  }

  // Throws std::invalid_argument, distinct message per violated
  // constraint (unit-tested). Robust tuning fields require enabled ==
  // true; the CLI surfaces these as flag errors.
  void Validate() const;
};

// Deterministic per-epoch seed: epoch 0 returns `seed` unchanged (epoch 0
// of a wrapped run is bit-identical to the unwrapped run), later epochs
// SplitMix64-mix the epoch index in, giving every restart fresh but
// reproducible per-node streams.
std::uint64_t EpochSeed(std::uint64_t seed, std::int32_t epoch);

// Backoff pause (in all-idle rounds) inserted before epoch `epoch`
// (0-based; epoch 0 has no pause).
std::int64_t BackoffRounds(const RobustSpec& spec, std::int32_t epoch);

// Per-stage w.h.p. round budgets for the general algorithm's pipeline,
// with generous constant slack (a pristine stage finishes far inside its
// budget; the watchdog only ever fires on runs an adversary has already
// derailed). Population is n, the w.h.p. parameter.
std::int64_t ReduceRoundBudget(std::int64_t population);
std::int64_t RenameRoundBudget(std::int64_t population, std::int32_t channels);
std::int64_t ElectRoundBudget(std::int64_t population, std::int32_t channels);

// The per-epoch watchdog budget: spec.epoch_round_budget when set,
// otherwise a slack multiple of the summed stage budgets.
std::int64_t EpochRoundBudget(const RobustSpec& spec, std::int64_t population,
                              std::int32_t channels);

// The stall watchdog budget: spec.stall_round_budget when set, otherwise
// O(log population) with slack — long enough that any healthy stage makes
// observable progress first.
std::int64_t StallRoundBudget(const RobustSpec& spec, std::int64_t population);

// W.h.p.-derived confirmation quorum: the smallest number of echo attempts
// k with suppress_rate^k <= 1/population, clamped to [floor_attempts,
// kMaxConfirmQuorum]. floor_attempts == 0 disables confirmation outright
// (an explicit spec choice the adaptive policy respects) and returns 0.
std::int32_t ConfirmQuorum(double suppress_rate, std::int64_t population,
                           std::int32_t floor_attempts);

// Index (into `actions`) of the round's lone primary-channel transmitter,
// or -1 if there is none. Engines call this on a candidate round to pick
// the echo-round winner; passing the coroutine engine's full action array
// yields the node id directly, passing the batch engine's dense alive-
// ordered array yields the alive index.
std::int32_t FindPrimaryWinner(std::span<const mac::Action> actions);

// Per-run robust bookkeeping, owned once per engine run and driven at
// identical points by both executors (the shared state machine is what
// keeps wrapped runs bit-exact across engines):
//
//   - CountRound() after every protocol or echo round of the epoch;
//   - NoteCandidate() when a suppressed candidate opens a confirmation
//     exchange, then NoteEchoRound(delivered, adv_jams) after each echo;
//   - NoteBackoffRound(adv_jams) after each backoff honeypot round;
//   - WatchdogExpired(stall) at the end of each full round cycle;
//   - CanRetry() / BeginNextEpoch() when an epoch fails;
//   - SeedFor(run_seed) when (re)building node state for the epoch;
//   - PauseRounds() for the backoff pause before the current epoch.
//
// Under PolicyKind::kStatic the Note* calls only record accounting and
// every knob keeps its spec value — bit-identical to the PR 5 driver.
// Under kAdaptive they feed the estimators that size confirm_attempts(),
// PauseRounds() and the watchdog budget (see file comment).
//
// With spec.enabled == false the driver is inert: WatchdogExpired and
// CanRetry are always false, and the engines never reach the other calls.
class EpochDriver {
 public:
  EpochDriver(const RobustSpec& spec, std::int64_t population,
              std::int32_t channels)
      : spec_(spec),
        population_(population),
        epoch_budget_(spec.enabled ? EpochRoundBudget(spec, population,
                                                      channels)
                                   : 0),
        stall_budget_(spec.enabled ? StallRoundBudget(spec, population) : 0) {}

  bool enabled() const { return spec_.enabled; }
  bool adaptive() const { return spec_.Adaptive(); }
  std::int32_t epoch() const { return epoch_; }
  // Static: the spec constant. Adaptive: the w.h.p. quorum for the current
  // suppression-rate estimate. The engines' confirmation loops re-evaluate
  // this bound after every echo, so an exchange escalates *while it runs*:
  // each suppressed echo raises the estimate, which raises the quorum,
  // until an echo delivers or kMaxConfirmQuorum caps the exchange.
  std::int32_t confirm_attempts() const {
    if (!adaptive()) return spec_.confirm_attempts;
    return ConfirmQuorum(SuppressionEstimate(), population_,
                         spec_.confirm_attempts);
  }
  std::int64_t epoch_budget() const { return epoch_budget_; }
  std::int64_t stall_budget() const { return stall_budget_; }

  void CountRound() { ++epoch_rounds_; }

  // A suppressed lone primary candidate opened a confirmation exchange.
  void NoteCandidate() { exchange_echoes_ = 0; }

  // One confirmation echo resolved. Always updates the hold/spend
  // accounting; under the adaptive policy also feeds the suppression
  // estimator, extends the epoch watchdog budget (the exchange is the
  // wrapper's own spend-forcing, not protocol stagnation) and tracks the
  // quorum escalation accounting.
  void NoteEchoRound(bool delivered, std::int32_t adv_jams);

  // One backoff honeypot round resolved; `adv_jams` is the observed yield.
  void NoteBackoffRound(std::int32_t adv_jams) {
    ++backoff_rounds_seen_;
    backoff_jams_seen_ += adv_jams;
  }

  bool WatchdogExpired(std::int64_t stall_streak) const {
    return spec_.enabled &&
           (epoch_rounds_ >= epoch_budget_ + budget_extension_ ||
            stall_streak >= stall_budget_);
  }

  bool CanRetry() const {
    return spec_.enabled && epoch_ + 1 < spec_.max_epochs;
  }

  void BeginNextEpoch();

  // Static: the spec's exponential schedule. Adaptive: trimmed to one
  // probe round (from the second retry on) while the observed honeypot
  // yield is zero — an adversary that holds through silence makes the
  // pause pure overhead.
  std::int64_t PauseRounds() const;
  std::uint64_t SeedFor(std::uint64_t run_seed) const {
    return EpochSeed(run_seed, epoch_);
  }

  // ---- Adaptive-policy accounting (all zero under kStatic) ----
  // Echo rounds run beyond the static confirm_attempts schedule.
  std::int64_t adaptive_confirm_extra() const {
    return adaptive_confirm_extra_;
  }
  // Backoff honeypot rounds trimmed relative to the static schedule.
  std::int64_t adaptive_backoff_trimmed() const {
    return adaptive_backoff_trimmed_;
  }
  // Largest confirmation quorum that was in force during any exchange.
  std::int32_t confirm_quorum_peak() const { return confirm_quorum_peak_; }

 private:
  // Median-of-samples estimate of the probability that an echo round is
  // suppressed (jammed or erased — the wrapper cannot tell and does not
  // care). See robust.cpp.
  double SuppressionEstimate() const;

  RobustSpec spec_;
  std::int64_t population_ = 0;
  std::int32_t epoch_ = 0;
  std::int64_t epoch_rounds_ = 0;
  std::int64_t epoch_budget_ = 0;
  std::int64_t stall_budget_ = 0;
  // Adaptive state. epoch_echo_* are the running epoch's sample; completed
  // epochs' suppression ratios live in sample_ring_ (last kEstimatorSamples
  // epochs that ran any echo).
  std::int64_t budget_extension_ = 0;   // epoch-budget credit, resets per epoch
  std::int64_t exchange_echoes_ = 0;    // echoes in the open exchange
  std::int64_t epoch_echo_rounds_ = 0;
  std::int64_t epoch_echo_failures_ = 0;
  double sample_ring_[kEstimatorSamples] = {};
  std::int32_t sample_count_ = 0;
  std::int32_t sample_next_ = 0;
  std::int64_t backoff_rounds_seen_ = 0;
  std::int64_t backoff_jams_seen_ = 0;
  std::int64_t adaptive_confirm_extra_ = 0;
  std::int64_t adaptive_backoff_trimmed_ = 0;
  std::int32_t confirm_quorum_peak_ = 0;
};

}  // namespace crmc::robust
