// Robust execution layer: delivery confirmation, epoch retry with bounded
// exponential backoff, and phase watchdogs.
//
// E22/E23 (EXPERIMENTS.md) showed the paper's algorithms are brittle in
// exactly the way the model permits: a single reactive jam on Reduce's
// all-listen round makes every node terminate *deluded* — convinced the
// problem is solved when no lone primary delivery ever landed. The
// robustness literature (Jiang & Zheng, arXiv:2111.06650; Bender et al.,
// arXiv:2408.11275) shows jamming-robustness is bought by trading rounds
// for confirmation. This subsystem realises that trade as an engine-level
// wrapper that composes over ANY registered protocol:
//
//   1. Delivery confirmation. A round with exactly one primary-channel
//      transmitter is a *candidate*. If the transmission was delivered,
//      strong CD already acks it (the winner observes kMessage). If it was
//      suppressed (jammed/erased), the engine inserts up to
//      `confirm_attempts` echo/verify rounds: the candidate winner
//      retransmits on the primary channel while every other live node
//      listens there. An unsuppressed echo both *solves* the run (it is a
//      lone primary delivery) and *confirms* it (the winner observes
//      kMessage; the quiesced listeners witness the delivery). The
//      adversary must spend budget on every echo to keep the claim open.
//
//   2. Epoch retry with bounded exponential backoff. When an epoch fails —
//      every node terminated without a confirmed delivery (the deluded
//      exit), a watchdog expired, or a protocol assumption was violated —
//      the engine re-enters the protocol in a fresh epoch: all non-crashed
//      nodes restart with RNG streams re-salted by the epoch index, after
//      an exponentially growing pause of all-idle backoff rounds. The
//      pause is a honeypot: silence is indistinguishable from an all-listen
//      round, so reactive jammers keep spending budget on it.
//
//   3. Phase watchdogs. Per-stage round budgets derived from the w.h.p.
//      bounds of the general algorithm's pipeline (Reduce / IDReduction /
//      LeafElection) sum into a per-epoch budget; a separate stall budget
//      bounds rounds without observable progress. A jammed stage restarts
//      the epoch instead of stalling to max_rounds.
//
// Both engines (sim/engine.cpp, sim/batch_engine.cpp) drive the layer
// through the EpochDriver below at identical points of their round loops,
// so wrapped runs stay bit-exact across executors; with the layer disabled
// — or enabled over a pristine, unjammed run — execution is bit-identical
// to an unwrapped run (epoch 0 uses the unsalted seed, and the
// confirmation path inserts zero rounds when the candidate delivers).
#pragma once

#include <cstdint>
#include <span>

#include "mac/channel.h"

namespace crmc::robust {

// Engine-facing robust-execution configuration (embedded in
// sim::EngineConfig and harness::TrialSpec). Defaults are inert: enabled
// == false leaves both engines on their historical code paths.
struct RobustSpec {
  bool enabled = false;
  // Maximum epochs (protocol restarts count from 1). The final epoch runs
  // to its natural end — timeout, termination, or abort — with no retry.
  std::int32_t max_epochs = 8;
  // Echo/verify rounds inserted per suppressed candidate (0 disables the
  // confirmation exchange; epoch retry still applies).
  std::int32_t confirm_attempts = 3;
  // Backoff pause before epoch e (e >= 1, 0-based): min(backoff_cap,
  // backoff_base << (e - 1)) all-idle rounds. backoff_base 0 disables the
  // pause entirely.
  std::int64_t backoff_base = 2;
  std::int64_t backoff_cap = 256;
  // Per-epoch round budget for the watchdog; 0 derives it from the w.h.p.
  // stage bounds (EpochRoundBudget below).
  std::int64_t epoch_round_budget = 0;
  // Rounds without observable progress before the stall watchdog restarts
  // the epoch; 0 derives it (StallRoundBudget below).
  std::int64_t stall_round_budget = 0;

  bool Active() const { return enabled; }

  // Throws std::invalid_argument, distinct message per violated
  // constraint (unit-tested). Robust tuning fields require enabled ==
  // true; the CLI surfaces these as flag errors.
  void Validate() const;
};

// Deterministic per-epoch seed: epoch 0 returns `seed` unchanged (epoch 0
// of a wrapped run is bit-identical to the unwrapped run), later epochs
// SplitMix64-mix the epoch index in, giving every restart fresh but
// reproducible per-node streams.
std::uint64_t EpochSeed(std::uint64_t seed, std::int32_t epoch);

// Backoff pause (in all-idle rounds) inserted before epoch `epoch`
// (0-based; epoch 0 has no pause).
std::int64_t BackoffRounds(const RobustSpec& spec, std::int32_t epoch);

// Per-stage w.h.p. round budgets for the general algorithm's pipeline,
// with generous constant slack (a pristine stage finishes far inside its
// budget; the watchdog only ever fires on runs an adversary has already
// derailed). Population is n, the w.h.p. parameter.
std::int64_t ReduceRoundBudget(std::int64_t population);
std::int64_t RenameRoundBudget(std::int64_t population, std::int32_t channels);
std::int64_t ElectRoundBudget(std::int64_t population, std::int32_t channels);

// The per-epoch watchdog budget: spec.epoch_round_budget when set,
// otherwise a slack multiple of the summed stage budgets.
std::int64_t EpochRoundBudget(const RobustSpec& spec, std::int64_t population,
                              std::int32_t channels);

// The stall watchdog budget: spec.stall_round_budget when set, otherwise
// O(log population) with slack — long enough that any healthy stage makes
// observable progress first.
std::int64_t StallRoundBudget(const RobustSpec& spec, std::int64_t population);

// Index (into `actions`) of the round's lone primary-channel transmitter,
// or -1 if there is none. Engines call this on a candidate round to pick
// the echo-round winner; passing the coroutine engine's full action array
// yields the node id directly, passing the batch engine's dense alive-
// ordered array yields the alive index.
std::int32_t FindPrimaryWinner(std::span<const mac::Action> actions);

// Per-run robust bookkeeping, owned once per engine run and driven at
// identical points by both executors (the shared state machine is what
// keeps wrapped runs bit-exact across engines):
//
//   - CountRound() after every protocol or echo round of the epoch;
//   - WatchdogExpired(stall) at the end of each full round cycle;
//   - CanRetry() / BeginNextEpoch() when an epoch fails;
//   - SeedFor(run_seed) when (re)building node state for the epoch;
//   - PauseRounds() for the backoff pause before the current epoch.
//
// With spec.enabled == false the driver is inert: WatchdogExpired and
// CanRetry are always false, and the engines never reach the other calls.
class EpochDriver {
 public:
  EpochDriver(const RobustSpec& spec, std::int64_t population,
              std::int32_t channels)
      : spec_(spec),
        epoch_budget_(spec.enabled ? EpochRoundBudget(spec, population,
                                                      channels)
                                   : 0),
        stall_budget_(spec.enabled ? StallRoundBudget(spec, population) : 0) {}

  bool enabled() const { return spec_.enabled; }
  std::int32_t epoch() const { return epoch_; }
  std::int32_t confirm_attempts() const { return spec_.confirm_attempts; }
  std::int64_t epoch_budget() const { return epoch_budget_; }
  std::int64_t stall_budget() const { return stall_budget_; }

  void CountRound() { ++epoch_rounds_; }

  bool WatchdogExpired(std::int64_t stall_streak) const {
    return spec_.enabled && (epoch_rounds_ >= epoch_budget_ ||
                             stall_streak >= stall_budget_);
  }

  bool CanRetry() const {
    return spec_.enabled && epoch_ + 1 < spec_.max_epochs;
  }

  void BeginNextEpoch() {
    ++epoch_;
    epoch_rounds_ = 0;
  }

  std::int64_t PauseRounds() const { return BackoffRounds(spec_, epoch_); }
  std::uint64_t SeedFor(std::uint64_t run_seed) const {
    return EpochSeed(run_seed, epoch_);
  }

 private:
  RobustSpec spec_;
  std::int32_t epoch_ = 0;
  std::int64_t epoch_rounds_ = 0;
  std::int64_t epoch_budget_ = 0;
  std::int64_t stall_budget_ = 0;
};

}  // namespace crmc::robust
