#include "robust/robust.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace crmc::robust {
namespace {

// Mixing constant for epoch re-salting — distinct from the fault layer's
// (mac/faults.cpp) and the adversary's (adversary/adversary.cpp) so epoch
// streams are independent of both even for colliding seeds.
constexpr std::uint64_t kEpochSeedSalt = 0xE90C4B0FF5A1D3ULL;

std::int64_t CeilLg(std::int64_t x) {
  std::int64_t bits = 0;
  std::int64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

std::int64_t CeilLgLg(std::int64_t x) { return CeilLg(CeilLg(x) + 1); }

}  // namespace

const char* ToString(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kStatic:
      return "static";
    case PolicyKind::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

std::optional<PolicyKind> ParsePolicyKind(std::string_view name) {
  if (name == "static") return PolicyKind::kStatic;
  if (name == "adaptive") return PolicyKind::kAdaptive;
  return std::nullopt;
}

void RobustSpec::Validate() const {
  if (!enabled) {
    const RobustSpec defaults;
    CRMC_REQUIRE_MSG(max_epochs == defaults.max_epochs &&
                         policy == defaults.policy &&
                         confirm_attempts == defaults.confirm_attempts &&
                         backoff_base == defaults.backoff_base &&
                         backoff_cap == defaults.backoff_cap &&
                         epoch_round_budget == defaults.epoch_round_budget &&
                         stall_round_budget == defaults.stall_round_budget,
                     "robust tuning options (--robust-policy, --max-epochs, "
                     "--confirm-attempts, --backoff, --backoff-cap, "
                     "--epoch-budget, --stall-budget) require --robust");
    return;
  }
  CRMC_REQUIRE_MSG(max_epochs >= 1,
                   "robust max_epochs must be >= 1, got " << max_epochs);
  CRMC_REQUIRE_MSG(confirm_attempts >= 0 && confirm_attempts <= 1024,
                   "robust confirm_attempts must be in [0, 1024], got "
                       << confirm_attempts);
  CRMC_REQUIRE_MSG(backoff_base >= 0,
                   "robust backoff base must be >= 0, got " << backoff_base);
  // Distinct from the base check above: a cap below the base would not
  // just be unusual, it silently degenerates the whole honeypot schedule
  // to a constant cap-length pause (BackoffRounds clamps every epoch).
  CRMC_REQUIRE_MSG(backoff_cap >= backoff_base,
                   "robust backoff cap (--backoff-cap) must be >= the "
                   "backoff base (--backoff) — a smaller cap degenerates "
                   "the honeypot schedule to a constant pause, got cap "
                       << backoff_cap << " base " << backoff_base);
  CRMC_REQUIRE_MSG(epoch_round_budget >= 0,
                   "robust epoch round budget must be >= 0 (0 derives it), "
                   "got "
                       << epoch_round_budget);
  CRMC_REQUIRE_MSG(stall_round_budget >= 0,
                   "robust stall round budget must be >= 0 (0 derives it), "
                   "got "
                       << stall_round_budget);
}

std::uint64_t EpochSeed(std::uint64_t seed, std::int32_t epoch) {
  if (epoch == 0) return seed;
  return support::SplitMix64(
             seed ^ (kEpochSeedSalt * static_cast<std::uint64_t>(epoch)))
      .Next();
}

std::int64_t BackoffRounds(const RobustSpec& spec, std::int32_t epoch) {
  if (epoch <= 0 || spec.backoff_base <= 0) return 0;
  // min(cap, base << (epoch - 1)) without shift overflow: once the shifted
  // value clears the cap the cap binds for every later epoch.
  std::int64_t pause = spec.backoff_base;
  for (std::int32_t e = 1; e < epoch && pause < spec.backoff_cap; ++e) {
    pause <<= 1;
  }
  return pause < spec.backoff_cap ? pause : spec.backoff_cap;
}

std::int64_t ReduceRoundBudget(std::int64_t population) {
  // Reduce runs 2*ceil(lglg n) iterations of 2 reps, one round per rep.
  return 4 * CeilLgLg(population);
}

std::int64_t RenameRoundBudget(std::int64_t population,
                               std::int32_t channels) {
  // IDReduction contracts the ID space by a log C' factor per iteration:
  // O(log n / log C') iterations, constant rounds each.
  const std::int64_t lg_c = CeilLg(channels) > 0 ? CeilLg(channels) : 1;
  return 16 + 8 * CeilLg(population) / lg_c;
}

std::int64_t ElectRoundBudget(std::int64_t population,
                              std::int32_t channels) {
  // LeafElection walks O(log h) tree levels, O(loglog x) rounds per level
  // (h <= C leaves, x <= n contenders).
  return 16 + 4 * (CeilLg(channels) + 1) * CeilLgLg(population);
}

std::int64_t EpochRoundBudget(const RobustSpec& spec, std::int64_t population,
                              std::int32_t channels) {
  if (spec.epoch_round_budget > 0) return spec.epoch_round_budget;
  const std::int64_t stages = ReduceRoundBudget(population) +
                              RenameRoundBudget(population, channels) +
                              ElectRoundBudget(population, channels);
  // 8x slack over the summed w.h.p. stage budgets: far beyond any pristine
  // execution, tight enough that a jammed epoch restarts long before
  // max_rounds.
  return 64 + 8 * stages;
}

std::int64_t StallRoundBudget(const RobustSpec& spec,
                              std::int64_t population) {
  if (spec.stall_round_budget > 0) return spec.stall_round_budget;
  return 32 + 4 * CeilLg(population);
}

std::int32_t ConfirmQuorum(double suppress_rate, std::int64_t population,
                           std::int32_t floor_attempts) {
  if (floor_attempts <= 0) return 0;  // confirmation explicitly disabled
  if (suppress_rate <= 0.0) return floor_attempts;
  if (suppress_rate >= 1.0) return kMaxConfirmQuorum;
  // Smallest k with p^k <= 1/n  ⇔  k >= ln(n) / -ln(p). Both engines
  // evaluate this in the same translation unit on the same inputs, so the
  // floating-point result — and therefore the quorum — is identical.
  const double n = static_cast<double>(population < 2 ? 2 : population);
  const double k = std::ceil(std::log(n) / -std::log(suppress_rate));
  if (k >= static_cast<double>(kMaxConfirmQuorum)) return kMaxConfirmQuorum;
  const auto quorum = static_cast<std::int32_t>(k);
  return std::max(quorum, floor_attempts);
}

double EpochDriver::SuppressionEstimate() const {
  // E20 estimation discipline (core/estimation.h): one noisy sample per
  // epoch, combined by a median over the last kEstimatorSamples samples.
  // Each sample is the epoch's Laplace-smoothed echo-suppression ratio
  // (failures + 1) / (echoes + 2); the running epoch contributes its
  // in-flight sample so an exchange under attack escalates immediately.
  double samples[kEstimatorSamples + 1];
  std::int32_t count = 0;
  for (std::int32_t i = 0; i < sample_count_; ++i) {
    samples[count++] = sample_ring_[i];
  }
  if (epoch_echo_rounds_ > 0) {
    samples[count++] =
        static_cast<double>(epoch_echo_failures_ + 1) /
        static_cast<double>(epoch_echo_rounds_ + 2);
  }
  if (count == 0) return 0.0;
  std::sort(samples, samples + count);
  return samples[count / 2];  // upper median for even counts
}

void EpochDriver::NoteEchoRound(bool delivered, std::int32_t adv_jams) {
  (void)adv_jams;  // echo spend is accounted by the engines' RunResult
  ++exchange_echoes_;
  if (!adaptive()) return;
  ++epoch_echo_rounds_;
  if (!delivered) ++epoch_echo_failures_;
  // The exchange is the wrapper's own spend-forcing: give the epoch
  // watchdog one round of credit per echo so a long quorum cannot trip it.
  ++budget_extension_;
  if (exchange_echoes_ > spec_.confirm_attempts) ++adaptive_confirm_extra_;
  confirm_quorum_peak_ = std::max(confirm_quorum_peak_, confirm_attempts());
}

void EpochDriver::BeginNextEpoch() {
  ++epoch_;
  epoch_rounds_ = 0;
  budget_extension_ = 0;
  if (!adaptive()) return;
  // Bank the finished epoch's suppression sample (only epochs that ran an
  // echo carry signal) into the median ring.
  if (epoch_echo_rounds_ > 0) {
    const double sample =
        static_cast<double>(epoch_echo_failures_ + 1) /
        static_cast<double>(epoch_echo_rounds_ + 2);
    sample_ring_[sample_next_] = sample;
    sample_next_ = (sample_next_ + 1) % kEstimatorSamples;
    sample_count_ = std::min(sample_count_ + 1, kEstimatorSamples);
    epoch_echo_rounds_ = 0;
    epoch_echo_failures_ = 0;
  }
  // Honeypot-trim accounting: PauseRounds() below is what the engine will
  // actually schedule for this epoch.
  adaptive_backoff_trimmed_ += BackoffRounds(spec_, epoch_) - PauseRounds();
}

std::int64_t EpochDriver::PauseRounds() const {
  const std::int64_t statically = BackoffRounds(spec_, epoch_);
  if (!adaptive() || epoch_ <= 1) return statically;
  // Honeypot sizing from observed spend: an adversary that holds through
  // silence makes the pause pure overhead — trim it to a single probe
  // round (enough to keep observing). One that spends on silence gets the
  // full drain schedule.
  if (backoff_jams_seen_ == 0 && statically > 1) return 1;
  return statically;
}

std::int32_t FindPrimaryWinner(std::span<const mac::Action> actions) {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].transmit && actions[i].channel == mac::kPrimaryChannel) {
      return static_cast<std::int32_t>(i);
    }
  }
  return -1;
}

}  // namespace crmc::robust
