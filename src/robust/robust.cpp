#include "robust/robust.h"

#include "support/assert.h"
#include "support/rng.h"

namespace crmc::robust {
namespace {

// Mixing constant for epoch re-salting — distinct from the fault layer's
// (mac/faults.cpp) and the adversary's (adversary/adversary.cpp) so epoch
// streams are independent of both even for colliding seeds.
constexpr std::uint64_t kEpochSeedSalt = 0xE90C4B0FF5A1D3ULL;

std::int64_t CeilLg(std::int64_t x) {
  std::int64_t bits = 0;
  std::int64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

std::int64_t CeilLgLg(std::int64_t x) { return CeilLg(CeilLg(x) + 1); }

}  // namespace

void RobustSpec::Validate() const {
  if (!enabled) {
    const RobustSpec defaults;
    CRMC_REQUIRE_MSG(max_epochs == defaults.max_epochs &&
                         confirm_attempts == defaults.confirm_attempts &&
                         backoff_base == defaults.backoff_base &&
                         backoff_cap == defaults.backoff_cap &&
                         epoch_round_budget == defaults.epoch_round_budget &&
                         stall_round_budget == defaults.stall_round_budget,
                     "robust tuning options (--max-epochs, "
                     "--confirm-attempts, --backoff, --backoff-cap, "
                     "--epoch-budget, --stall-budget) require --robust");
    return;
  }
  CRMC_REQUIRE_MSG(max_epochs >= 1,
                   "robust max_epochs must be >= 1, got " << max_epochs);
  CRMC_REQUIRE_MSG(confirm_attempts >= 0 && confirm_attempts <= 1024,
                   "robust confirm_attempts must be in [0, 1024], got "
                       << confirm_attempts);
  CRMC_REQUIRE_MSG(backoff_base >= 0,
                   "robust backoff base must be >= 0, got " << backoff_base);
  CRMC_REQUIRE_MSG(backoff_cap >= backoff_base,
                   "robust backoff cap must be >= the backoff base, got cap "
                       << backoff_cap << " base " << backoff_base);
  CRMC_REQUIRE_MSG(epoch_round_budget >= 0,
                   "robust epoch round budget must be >= 0 (0 derives it), "
                   "got "
                       << epoch_round_budget);
  CRMC_REQUIRE_MSG(stall_round_budget >= 0,
                   "robust stall round budget must be >= 0 (0 derives it), "
                   "got "
                       << stall_round_budget);
}

std::uint64_t EpochSeed(std::uint64_t seed, std::int32_t epoch) {
  if (epoch == 0) return seed;
  return support::SplitMix64(
             seed ^ (kEpochSeedSalt * static_cast<std::uint64_t>(epoch)))
      .Next();
}

std::int64_t BackoffRounds(const RobustSpec& spec, std::int32_t epoch) {
  if (epoch <= 0 || spec.backoff_base <= 0) return 0;
  // min(cap, base << (epoch - 1)) without shift overflow: once the shifted
  // value clears the cap the cap binds for every later epoch.
  std::int64_t pause = spec.backoff_base;
  for (std::int32_t e = 1; e < epoch && pause < spec.backoff_cap; ++e) {
    pause <<= 1;
  }
  return pause < spec.backoff_cap ? pause : spec.backoff_cap;
}

std::int64_t ReduceRoundBudget(std::int64_t population) {
  // Reduce runs 2*ceil(lglg n) iterations of 2 reps, one round per rep.
  return 4 * CeilLgLg(population);
}

std::int64_t RenameRoundBudget(std::int64_t population,
                               std::int32_t channels) {
  // IDReduction contracts the ID space by a log C' factor per iteration:
  // O(log n / log C') iterations, constant rounds each.
  const std::int64_t lg_c = CeilLg(channels) > 0 ? CeilLg(channels) : 1;
  return 16 + 8 * CeilLg(population) / lg_c;
}

std::int64_t ElectRoundBudget(std::int64_t population,
                              std::int32_t channels) {
  // LeafElection walks O(log h) tree levels, O(loglog x) rounds per level
  // (h <= C leaves, x <= n contenders).
  return 16 + 4 * (CeilLg(channels) + 1) * CeilLgLg(population);
}

std::int64_t EpochRoundBudget(const RobustSpec& spec, std::int64_t population,
                              std::int32_t channels) {
  if (spec.epoch_round_budget > 0) return spec.epoch_round_budget;
  const std::int64_t stages = ReduceRoundBudget(population) +
                              RenameRoundBudget(population, channels) +
                              ElectRoundBudget(population, channels);
  // 8x slack over the summed w.h.p. stage budgets: far beyond any pristine
  // execution, tight enough that a jammed epoch restarts long before
  // max_rounds.
  return 64 + 8 * stages;
}

std::int64_t StallRoundBudget(const RobustSpec& spec,
                              std::int64_t population) {
  if (spec.stall_round_budget > 0) return spec.stall_round_budget;
  return 32 + 4 * CeilLg(population);
}

std::int32_t FindPrimaryWinner(std::span<const mac::Action> actions) {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].transmit && actions[i].channel == mac::kPrimaryChannel) {
      return static_cast<std::int32_t>(i);
    }
  }
  return -1;
}

}  // namespace crmc::robust
