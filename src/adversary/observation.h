// What an adaptive adversary gets to see after each round.
//
// A *reactive* jammer eavesdrops on the channels before deciding where to
// spend budget. Two eavesdropping strengths are modelled:
//
//   - kFull:     per-channel transmitter counts — the adversary can tell a
//                lone delivery from a collision (the strongest adversary the
//                resource-competitive analyses consider).
//   - kActivity: the adversary only learns *which* channels were active;
//                transmitter counts are censored to -1. A strictly weaker
//                adversary, useful for sensitivity sweeps.
//
// Observations are always one round stale: the jam set for round R is
// planned from rounds < R. The adversary never sees round R's activity
// before the resolver commits it — jamming is a bet, not a veto.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "mac/channel.h"

namespace crmc::adversary {

enum class ObsMode : std::uint8_t {
  kFull = 0,      // per-channel transmitter counts
  kActivity = 1,  // active/idle only; counts censored to -1
};

inline const char* ToString(ObsMode mode) {
  return mode == ObsMode::kActivity ? "activity" : "full";
}

inline std::optional<ObsMode> ParseObsMode(std::string_view name) {
  if (name == "full") return ObsMode::kFull;
  if (name == "activity") return ObsMode::kActivity;
  return std::nullopt;
}

// One active channel as the adversary saw it. Sightings are listed in
// first-touched order (the resolver's canonical channel order), which both
// engines reproduce identically — strategy state therefore stays
// bit-identical between the coroutine and batch executors.
struct ChannelSighting {
  mac::ChannelId channel = mac::kIdleChannel;
  // Transmitter count under ObsMode::kFull; -1 (censored) under kActivity.
  std::int32_t transmitters = -1;
};

// Everything the adversary learned from one resolved round.
struct RoundObservation {
  std::int64_t round = -1;  // which round these sightings describe
  std::vector<ChannelSighting> sightings;

  bool valid() const { return round >= 0; }

  void Clear() {
    round = -1;
    sightings.clear();
  }
};

}  // namespace crmc::adversary
