// Jamming budget accounting for adaptive adversaries.
//
// The resource-competitive contention-resolution literature (Jiang & Zheng,
// arXiv:2111.06650; Chen, Jiang & Zheng, arXiv:2102.09716) models the
// adversary as an entity with a *bounded* disruption budget: it may jam at
// most T channel-rounds over the whole execution, at most K channels in any
// single round. BudgetLedger is that bound made executable — every jam a
// strategy emits is charged here, and overspending is a CRMC_CHECK (a bug
// in the strategy or the driver, never a recoverable condition).
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/assert.h"

namespace crmc::adversary {

class BudgetLedger {
 public:
  // Zero-budget ledger: every allowance is 0, nothing can ever be charged.
  BudgetLedger() = default;

  BudgetLedger(std::int64_t total, std::int32_t per_round_cap)
      : total_(total), per_round_cap_(per_round_cap) {
    CRMC_REQUIRE_MSG(total >= 0,
                     "adversary budget must be >= 0, got " << total);
    CRMC_REQUIRE_MSG(per_round_cap >= 1,
                     "adversary per-round cap must be >= 1, got "
                         << per_round_cap);
  }

  std::int64_t total() const { return total_; }
  std::int64_t spent() const { return spent_; }
  std::int64_t remaining() const { return total_ - spent_; }
  std::int32_t per_round_cap() const { return per_round_cap_; }

  // How many distinct channels the adversary may jam this round: the
  // per-round cap, the unspent budget, and the channel count all bind.
  std::int32_t RoundAllowance(std::int32_t channels) const {
    const std::int64_t cap =
        std::min<std::int64_t>({per_round_cap_, remaining(), channels});
    return static_cast<std::int32_t>(std::max<std::int64_t>(cap, 0));
  }

  // Charge one round's jams. Exceeding the cap or the remaining budget is
  // a strategy bug: the driver hands every strategy its allowance up front.
  void Charge(std::int32_t jams) {
    CRMC_CHECK_MSG(jams >= 0 && jams <= per_round_cap_,
                   "adversary spent " << jams << " jams in one round, cap "
                                      << per_round_cap_);
    CRMC_CHECK_MSG(jams <= remaining(),
                   "adversary overspent: " << jams << " jams with "
                                           << remaining() << " budget left");
    spent_ += jams;
  }

 private:
  std::int64_t total_ = 0;
  std::int64_t spent_ = 0;
  std::int32_t per_round_cap_ = 1;
};

}  // namespace crmc::adversary
