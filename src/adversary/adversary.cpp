#include "adversary/adversary.h"

#include <algorithm>
#include <cmath>

namespace crmc::adversary {
namespace {

// Mixing constant for the adversary's master seed — distinct from the fault
// layer's (mac/faults.cpp) so the jamming schedule and the oblivious fault
// draws are independent even when adv_seed == fault_seed.
constexpr std::uint64_t kAdvSeedSalt = 0xAD7E25A12B0B57ULL;
// Stream selector for the planning RNG within the adversary's master seed.
constexpr std::uint64_t kPlanStream = 0x7A3B17;

std::uint64_t AdvMasterSeed(std::uint64_t run_seed, std::uint64_t adv_seed) {
  return support::SplitMix64(run_seed ^ (kAdvSeedSalt * (adv_seed + 1)))
      .Next();
}

class PrimaryCamper final : public Adversary {
 public:
  const char* name() const override { return "primary_camper"; }
  void PlanJams(const PlanContext&,
                std::vector<mac::ChannelId>& out) override {
    out.push_back(mac::kPrimaryChannel);
  }
};

class GreedyReactive final : public Adversary {
 public:
  const char* name() const override { return "greedy_reactive"; }
  bool needs_observation() const override { return true; }

  void PlanJams(const PlanContext& ctx,
                std::vector<mac::ChannelId>& out) override {
    if (ctx.last == nullptr) {
      // Nothing observed yet (round 0, or total silence so far): the only
      // channel known to matter is the solve channel.
      out.push_back(mac::kPrimaryChannel);
      return;
    }
    // Score each sighted channel by how close last round's activity was to
    // a lone delivery: a lone transmitter is the jackpot (the protocol may
    // be converging there), two transmitters are one elimination away,
    // anything denser — or a censored activity-only sighting — is a weak
    // signal. The solve channel gets a bump (only lone deliveries *there*
    // end the run) and is always in the candidate set.
    scored_.clear();
    bool primary_sighted = false;
    for (const ChannelSighting& s : ctx.last->sightings) {
      int score = 1;
      if (s.transmitters == 1) {
        score = 3;
      } else if (s.transmitters == 2) {
        score = 2;
      }
      if (s.channel == mac::kPrimaryChannel) {
        ++score;
        primary_sighted = true;
      }
      scored_.push_back({score, s.channel});
    }
    if (!primary_sighted) scored_.push_back({1, mac::kPrimaryChannel});
    // Deterministic order: best score first, channel id breaking ties.
    std::sort(scored_.begin(), scored_.end(),
              [](const Scored& a, const Scored& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.channel < b.channel;
              });
    const auto take = std::min<std::size_t>(scored_.size(),
                                            static_cast<std::size_t>(
                                                ctx.allowance));
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(scored_[i].channel);
    }
  }

 private:
  struct Scored {
    int score;
    mac::ChannelId channel;
  };
  std::vector<Scored> scored_;
};

class RandomBudgeted final : public Adversary {
 public:
  const char* name() const override { return "random_budgeted"; }
  void PlanJams(const PlanContext& ctx,
                std::vector<mac::ChannelId>& out) override {
    // SampleWithoutReplacement returns distinct 1-based values — exactly
    // the legal channel-id range.
    support::SampleWithoutReplacement(ctx.channels, ctx.allowance, *ctx.rng,
                                      scratch_, picks_);
    for (const std::int64_t ch : picks_) {
      out.push_back(static_cast<mac::ChannelId>(ch));
    }
  }

 private:
  support::SampleScratch scratch_;
  std::vector<std::int64_t> picks_;
};

// Shared endgame logic for the stage-aware strategies: given last round's
// sightings, jam the primary channel (plus the sparsest side channels, up
// to the allowance) unless the primary was dense. Hoisted out of
// PhaseTracking so the wrapper-aware strategies below differ from it only
// in how they read *silence*. Returns false when the round was read as a
// dense broadcast stage (hold).
bool PlanEndgameJams(const PlanContext& ctx,
                     std::vector<std::pair<std::int32_t, mac::ChannelId>>&
                         side_scratch,
                     std::vector<mac::ChannelId>& out) {
  std::int32_t primary_tx = 0;  // 0: primary not sighted (all-listen)
  side_scratch.clear();
  for (const ChannelSighting& s : ctx.last->sightings) {
    if (s.channel == mac::kPrimaryChannel) {
      primary_tx = s.transmitters;
    } else if (s.transmitters < 0 || s.transmitters <= 2) {
      side_scratch.push_back({s.transmitters, s.channel});
    }
  }
  if (primary_tx >= 3) return false;  // dense broadcast stage: conserve
  out.push_back(mac::kPrimaryChannel);
  if (static_cast<std::int32_t>(out.size()) >= ctx.allowance) return true;
  // Sparsest side channels next (censored counts after known-sparse ones),
  // channel id breaking ties — deterministic across executors.
  std::sort(side_scratch.begin(), side_scratch.end(),
            [](const std::pair<std::int32_t, mac::ChannelId>& a,
               const std::pair<std::int32_t, mac::ChannelId>& b) {
              const std::int32_t ka = a.first < 0 ? 3 : a.first;
              const std::int32_t kb = b.first < 0 ? 3 : b.first;
              if (ka != kb) return ka < kb;
              return a.second < b.second;
            });
  for (const auto& [tx, ch] : side_scratch) {
    if (static_cast<std::int32_t>(out.size()) >= ctx.allowance) break;
    out.push_back(ch);
  }
  return true;
}

// Infers the general algorithm's pipeline stage from last round's activity
// pattern and concentrates budget where one jam flips the outcome (the
// ROADMAP's phase-tracking adversary, minimal version):
//   - Silence — nothing sighted, or nothing observed yet — reads as an
//     all-listen feedback round (Reduce's verdict rounds, the single most
//     fragile rounds E23 found) or as a robust-layer backoff pause. Either
//     way only the primary channel matters: jam it.
//   - A sparse primary channel (1–2 transmitters, or censored counts under
//     ObsMode::kActivity) reads as the endgame, where a lone delivery may
//     be imminent: jam primary first, then the sparsest side channels.
//   - A dense primary channel (3+ transmitters) reads as the early
//     broadcast stages, where no lone primary delivery can land and a jam
//     is wasted: spend nothing. This patience is what distinguishes
//     tracking from camping — against the general pipeline it holds its
//     budget through Reduce's dense rounds and lands it on the sparse
//     endgame the camper may already be too broke to reach.
// Deterministic: never touches ctx.rng.
class PhaseTracking final : public Adversary {
 public:
  const char* name() const override { return "phase_tracking"; }
  bool needs_observation() const override { return true; }

  void PlanJams(const PlanContext& ctx,
                std::vector<mac::ChannelId>& out) override {
    if (ctx.last == nullptr || ctx.last->sightings.empty()) {
      out.push_back(mac::kPrimaryChannel);
      return;
    }
    PlanEndgameJams(ctx, side_, out);
  }

 private:
  std::vector<std::pair<std::int32_t, mac::ChannelId>> side_;
};

// Models the robust wrapper's epoch/backoff state machine from the
// observation stream (robust/robust.h) and refuses to feed its honeypots:
//   - *Sustained* silence — two or more consecutive sighting-free observed
//     rounds — reads as a between-epoch backoff pause. HOLD: jamming an
//     idle network buys nothing, and the pause exists precisely to drain
//     reactive budgets (PhaseTracking camps the primary channel through
//     every silent round and pays the full honeypot schedule).
//   - The *first* silent round after activity still gets jammed: a single
//     silent round is indistinguishable from Reduce's all-listen verdict
//     round, the most fragile round E23 found, and the wrapper's backoff
//     pauses are never that short once epochs retry.
//   - Activity is read exactly like PhaseTracking: a sparse primary
//     sighting (1-2 transmitters, or censored) is the endgame — or a
//     confirmation echo in flight, a lone transmitter repeating after a
//     suppressed claim, each of which must be met or the claim confirms —
//     so jam primary first, then the sparsest side channels; a dense
//     primary (3+) is a broadcast stage: hold.
// Deterministic: never touches ctx.rng.
class Lookahead final : public Adversary {
 public:
  const char* name() const override { return "lookahead"; }
  bool needs_observation() const override { return true; }

  void PlanJams(const PlanContext& ctx,
                std::vector<mac::ChannelId>& out) override {
    if (ctx.last == nullptr) {
      out.push_back(mac::kPrimaryChannel);
      return;
    }
    if (ctx.last->sightings.empty()) {
      ++silence_streak_;
      if (silence_streak_ >= 2) return;  // honeypot: hold the budget
      out.push_back(mac::kPrimaryChannel);  // lone verdict-round strike
      return;
    }
    silence_streak_ = 0;
    PlanEndgameJams(ctx, side_, out);
  }

 private:
  std::int64_t silence_streak_ = 0;
  std::vector<std::pair<std::int32_t, mac::ChannelId>> side_;
};

// Lookahead still donates one jam to every backoff pause (the verdict-round
// strike on the first silent round). Learning *estimates the wrapper's
// backoff schedule* instead: every completed silence run of length >= 2
// bounded by activity on both sides is an inter-epoch gap sample, and the
// longest sample banked so far estimates the backoff cap. Once one gap is
// banked it stops paying the silence toll entirely — it holds from the very
// first silent round — and resumes striking only when a silence run exceeds
// twice the longest banked gap (the next pause of a doubling schedule):
// silence the learned schedule cannot explain reads as a stalled all-listen
// stage, not a honeypot. Deterministic: never touches ctx.rng.
class Learning final : public Adversary {
 public:
  const char* name() const override { return "learning"; }
  bool needs_observation() const override { return true; }

  void PlanJams(const PlanContext& ctx,
                std::vector<mac::ChannelId>& out) override {
    if (ctx.last == nullptr) {
      out.push_back(mac::kPrimaryChannel);
      return;
    }
    if (ctx.last->sightings.empty()) {
      ++silence_streak_;
      if (longest_gap_ == 0) {
        // No schedule banked yet: behave like Lookahead (strike the first
        // silent round, hold from the second).
        if (silence_streak_ == 1) out.push_back(mac::kPrimaryChannel);
        return;
      }
      if (silence_streak_ <= 2 * longest_gap_) return;  // explained: hold
      out.push_back(mac::kPrimaryChannel);  // beyond the learned cap
      return;
    }
    if (silence_streak_ >= 2) {
      longest_gap_ = std::max(longest_gap_, silence_streak_);
    }
    silence_streak_ = 0;
    PlanEndgameJams(ctx, side_, out);
  }

 private:
  std::int64_t silence_streak_ = 0;
  std::int64_t longest_gap_ = 0;  // largest completed inter-epoch gap
  std::vector<std::pair<std::int32_t, mac::ChannelId>> side_;
};

class ScriptedAdversary final : public Adversary {
 public:
  explicit ScriptedAdversary(std::vector<ScriptEntry> script)
      : script_(std::move(script)) {
    // Stable sort: entries for the same round keep their authored order.
    std::stable_sort(script_.begin(), script_.end(),
                     [](const ScriptEntry& a, const ScriptEntry& b) {
                       return a.round < b.round;
                     });
  }

  const char* name() const override { return "scripted"; }

  void PlanJams(const PlanContext& ctx,
                std::vector<mac::ChannelId>& out) override {
    // Skip entries for rounds already past (e.g. scheduled under a round in
    // which the budget was exhausted).
    while (cursor_ < script_.size() && script_[cursor_].round < ctx.round) {
      ++cursor_;
    }
    while (cursor_ < script_.size() && script_[cursor_].round == ctx.round &&
           static_cast<std::int32_t>(out.size()) < ctx.allowance) {
      const mac::ChannelId ch = script_[cursor_].channel;
      ++cursor_;
      if (ch > ctx.channels) continue;  // script written for a wider config
      if (std::find(out.begin(), out.end(), ch) != out.end()) continue;
      out.push_back(ch);
    }
  }

 private:
  std::vector<ScriptEntry> script_;
  std::size_t cursor_ = 0;
};

}  // namespace

const char* ToString(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kObliviousRate:
      return "oblivious_rate";
    case Kind::kPrimaryCamper:
      return "primary_camper";
    case Kind::kGreedyReactive:
      return "greedy_reactive";
    case Kind::kRandomBudgeted:
      return "random_budgeted";
    case Kind::kScripted:
      return "scripted";
    case Kind::kPhaseTracking:
      return "phase_tracking";
    case Kind::kLookahead:
      return "lookahead";
    case Kind::kLearning:
      return "learning";
  }
  return "unknown";
}

std::optional<Kind> ParseAdversaryKind(std::string_view name) {
  if (name == "none") return Kind::kNone;
  if (name == "oblivious_rate") return Kind::kObliviousRate;
  if (name == "primary_camper") return Kind::kPrimaryCamper;
  if (name == "greedy_reactive") return Kind::kGreedyReactive;
  if (name == "random_budgeted") return Kind::kRandomBudgeted;
  if (name == "scripted") return Kind::kScripted;
  if (name == "phase_tracking") return Kind::kPhaseTracking;
  if (name == "lookahead") return Kind::kLookahead;
  if (name == "learning") return Kind::kLearning;
  return std::nullopt;
}

void AdversarySpec::Validate() const {
  CRMC_REQUIRE_MSG(std::isfinite(rate) && rate >= 0.0 && rate <= 1.0,
                   "adversary rate must be in [0, 1], got " << rate);
  CRMC_REQUIRE_MSG(rate == 0.0 || kind == Kind::kObliviousRate,
                   "adversary rate only applies to --adversary "
                   "oblivious_rate, got kind "
                       << ToString(kind));
  CRMC_REQUIRE_MSG(budget >= 0,
                   "adversary budget must be >= 0, got " << budget);
  CRMC_REQUIRE_MSG(
      budget == 0 || Budgeted(),
      "adversary budget only applies to budgeted strategies; "
          << ToString(kind) << " ignores it — leave --adversary-budget unset");
  CRMC_REQUIRE_MSG(per_round_cap >= 1,
                   "adversary per-round cap must be >= 1, got "
                       << per_round_cap);
  CRMC_REQUIRE_MSG(script.empty() || kind == Kind::kScripted,
                   "a jam script only applies to the scripted adversary, "
                   "got kind "
                       << ToString(kind));
  if (kind == Kind::kScripted) {
    CRMC_REQUIRE_MSG(!script.empty(),
                     "scripted adversary requires a non-empty script");
    for (const ScriptEntry& e : script) {
      CRMC_REQUIRE_MSG(e.round >= 0 && e.channel >= 1,
                       "scripted adversary entries need round >= 0 and "
                       "channel >= 1, got round "
                           << e.round << " channel " << e.channel);
    }
  }
}

std::unique_ptr<Adversary> MakeAdversary(const AdversarySpec& spec) {
  switch (spec.kind) {
    case Kind::kNone:
    case Kind::kObliviousRate:
      return nullptr;
    case Kind::kPrimaryCamper:
      return std::make_unique<PrimaryCamper>();
    case Kind::kGreedyReactive:
      return std::make_unique<GreedyReactive>();
    case Kind::kRandomBudgeted:
      return std::make_unique<RandomBudgeted>();
    case Kind::kScripted:
      return std::make_unique<ScriptedAdversary>(spec.script);
    case Kind::kPhaseTracking:
      return std::make_unique<PhaseTracking>();
    case Kind::kLookahead:
      return std::make_unique<Lookahead>();
    case Kind::kLearning:
      return std::make_unique<Learning>();
  }
  return nullptr;
}

AdversaryRun::AdversaryRun(const AdversarySpec& spec, std::uint64_t run_seed)
    : strategy_(MakeAdversary(spec)), obs_(spec.obs) {
  if (strategy_ == nullptr) return;
  ledger_ = BudgetLedger(spec.budget, spec.per_round_cap);
  rng_ = support::RandomSource::ForStream(
      AdvMasterSeed(run_seed, spec.adv_seed), kPlanStream);
}

std::span<const mac::ChannelId> AdversaryRun::PlanRound(
    std::int64_t round, std::int32_t channels) {
  jams_.clear();
  if (strategy_ == nullptr) return {};
  const std::int32_t allowance = ledger_.RoundAllowance(channels);
  if (allowance <= 0) return {};
  PlanContext ctx;
  ctx.round = round;
  ctx.channels = channels;
  ctx.allowance = allowance;
  ctx.last = last_obs_.valid() ? &last_obs_ : nullptr;
  ctx.rng = &rng_;
  strategy_->PlanJams(ctx, jams_);
  if (jams_.empty()) ++rounds_held_;  // had allowance, chose not to spend
  CRMC_CHECK_MSG(static_cast<std::int32_t>(jams_.size()) <= allowance,
                 "strategy " << strategy_->name() << " planned "
                             << jams_.size() << " jams, allowance "
                             << allowance);
  for (std::size_t i = 0; i < jams_.size(); ++i) {
    CRMC_CHECK_MSG(jams_[i] >= 1 && jams_[i] <= channels,
                   "strategy " << strategy_->name()
                               << " planned out-of-range channel "
                               << jams_[i] << " of " << channels);
    for (std::size_t j = 0; j < i; ++j) {
      CRMC_CHECK_MSG(jams_[i] != jams_[j],
                     "strategy " << strategy_->name()
                                 << " planned duplicate channel "
                                 << jams_[i]);
    }
  }
  ledger_.Charge(static_cast<std::int32_t>(jams_.size()));
  return jams_;
}

void AdversaryRun::ObserveRound(const mac::Resolver& resolver,
                                std::int64_t round) {
  if (!needs_observation()) return;
  last_obs_.round = round;
  last_obs_.sightings.clear();
  for (const mac::ChannelId ch : resolver.touched_channels()) {
    const std::int32_t tx = resolver.ActivityOf(ch).transmitters;
    if (tx <= 0) continue;  // listener-only channels radiate nothing
    last_obs_.sightings.push_back(
        {ch, obs_ == ObsMode::kFull ? tx : -1});
  }
}

}  // namespace crmc::adversary
