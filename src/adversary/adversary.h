// Budgeted adaptive adversaries for the MAC substrate.
//
// PR 2's fault layer is *oblivious*: jam/erasure draws are i.i.d. per round
// and never look at the execution. The resource-competitive contention-
// resolution model (Jiang & Zheng, arXiv:2111.06650; Chen, Jiang & Zheng,
// arXiv:2102.09716) studies a strictly stronger opponent — a *reactive*
// jammer that watches channel activity and spends a bounded budget where it
// hurts most. This subsystem realises that opponent:
//
//   - An Adversary strategy plans, each round, which channels to jam given
//     last round's RoundObservation (observation.h) and the round allowance
//     its BudgetLedger (budget.h) grants.
//   - AdversaryRun is the per-run driver the engines own: it derives a
//     dedicated RNG stream (independent of protocol and fault streams),
//     enforces the budget/cap/validity contract on whatever the strategy
//     returns, and records observations after each resolved round.
//
// Determinism contract: the planned jam set for round R is a pure function
// of (engine seed, adv_seed, strategy, observations of rounds < R). Both
// engines call PlanRound / Observe at the same points of the round loop, so
// strategy state — and therefore the whole RunResult — stays bit-identical
// between the coroutine and batch executors.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "adversary/budget.h"
#include "adversary/observation.h"
#include "mac/channel.h"
#include "mac/resolver.h"
#include "support/rng.h"

namespace crmc::adversary {

enum class Kind : std::uint8_t {
  kNone = 0,
  // PR 2's oblivious i.i.d. jamming, expressed in adversary terms. Not
  // driven by AdversaryRun: the engines lower it onto the fault injector's
  // jam stream (sim::EffectiveFaultSpec) so configs stay bit-identical to
  // the equivalent --jam-rate runs.
  kObliviousRate,
  kPrimaryCamper,    // always spends on channel 1, the solve channel
  kGreedyReactive,   // targets likely lone deliveries from last round's view
  kRandomBudgeted,   // spends uniformly at random — the fairness baseline
  kScripted,         // replays a fixed (round, channel) script — for tests
  kPhaseTracking,    // infers the protocol stage, strikes all-listen rounds
  kLookahead,        // models the robust wrapper: holds through honeypots,
                     // strikes confirmation echoes
  kLearning,         // lookahead that estimates the backoff schedule from
                     // observed inter-epoch silence gaps
};

const char* ToString(Kind kind);
std::optional<Kind> ParseAdversaryKind(std::string_view name);

// One scripted jam: jam `channel` in round `round` (0-based).
struct ScriptEntry {
  std::int64_t round = 0;
  mac::ChannelId channel = mac::kPrimaryChannel;
};

// Engine-facing adversary configuration (embedded in sim::EngineConfig).
struct AdversarySpec {
  Kind kind = Kind::kNone;
  // Jam probability per touched channel per round — kObliviousRate only.
  double rate = 0.0;
  // Total jamming budget in channel-rounds (T) — budgeted kinds only.
  std::int64_t budget = 0;
  // At most this many channels jammed in any single round (K).
  std::int32_t per_round_cap = 1;
  // Eavesdropping strength (observation.h).
  ObsMode obs = ObsMode::kFull;
  // Selects the adversary's dedicated RNG stream: same engine seed,
  // different adv_seed ⇒ a different jamming schedule over the same
  // protocol randomness.
  std::uint64_t adv_seed = 0;
  // kScripted only: the jams to replay, (round, channel) pairs.
  std::vector<ScriptEntry> script;

  bool Active() const { return kind != Kind::kNone; }
  // Kinds realised by an engine-side AdversaryRun; kObliviousRate instead
  // lowers onto the oblivious fault injector (see Kind comment).
  bool Budgeted() const {
    return kind != Kind::kNone && kind != Kind::kObliviousRate;
  }

  // Throws std::invalid_argument (distinct message per violated constraint).
  // Cross-field checks against the rest of the engine config — including
  // the adversary-vs-jam-rate conflict — live in sim::ValidateEngineConfig.
  void Validate() const;
};

// Per-round planning inputs handed to a strategy.
struct PlanContext {
  std::int64_t round = 0;     // the round being planned (0-based)
  std::int32_t channels = 0;  // C: legal channels are [1, channels]
  // min(per-round cap, remaining budget, channels) — the hard size limit
  // on the planned jam set. Always >= 1 when PlanJams is called.
  std::int32_t allowance = 0;
  // Most recent observation (strictly earlier round), or nullptr before the
  // first observed round. Null for strategies with needs_observation()
  // false — they never get one.
  const RoundObservation* last = nullptr;
  // The adversary's dedicated RNG stream. Strategies that don't draw must
  // not touch it (determinism contract).
  support::RandomSource* rng = nullptr;
};

// Strategy interface. PlanJams appends up to ctx.allowance distinct
// channels in [1, ctx.channels] to `out` (pre-cleared by the driver); the
// driver CRMC_CHECKs those bounds and charges the ledger.
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual const char* name() const = 0;
  // Whether the strategy reads RoundObservations. Observation-free
  // strategies let the batch engine keep its fused SIMD round loop alive
  // whenever the planned jam set is empty (e.g. after budget exhaustion).
  virtual bool needs_observation() const { return false; }
  virtual void PlanJams(const PlanContext& ctx,
                        std::vector<mac::ChannelId>& out) = 0;
};

// Builds the strategy for `spec.kind`. Returns nullptr for kNone and
// kObliviousRate (not driver-backed; see Kind). `spec` must validate.
std::unique_ptr<Adversary> MakeAdversary(const AdversarySpec& spec);

// The per-run driver. Engines construct one per run, call PlanRound before
// resolving each round and ObserveRound after, and feed the returned jam
// span to mac::Resolver::Resolve.
class AdversaryRun {
 public:
  // Inactive driver: PlanRound always returns an empty span.
  AdversaryRun() = default;

  // Active iff spec.Budgeted(). The dedicated RNG stream is derived from
  // (run_seed, spec.adv_seed) and is always xoshiro-backed, like the fault
  // streams: the adversary draws O(cap) values per round, so counter-based
  // batching buys nothing, and this keeps schedules identical across
  // EngineConfig::rng kinds.
  AdversaryRun(const AdversarySpec& spec, std::uint64_t run_seed);

  bool active() const { return strategy_ != nullptr; }
  bool needs_observation() const {
    return active() && strategy_->needs_observation();
  }

  // Plans round `round`'s jam set: asks the strategy (if the allowance is
  // nonzero), enforces size/range/distinctness, charges the ledger. The
  // span stays valid until the next PlanRound call.
  std::span<const mac::ChannelId> PlanRound(std::int64_t round,
                                            std::int32_t channels);

  // Records what the adversary saw in the round just resolved (channels
  // with at least one transmitter, in the resolver's first-touched order;
  // counts censored under ObsMode::kActivity). No-op unless the strategy
  // needs observations — both engines follow the same rule, keeping
  // strategy state identical across executors.
  void ObserveRound(const mac::Resolver& resolver, std::int64_t round);

  const BudgetLedger& ledger() const { return ledger_; }

  // Rounds in which the ledger granted a positive allowance but the
  // strategy planned no jam — a deliberate *hold*. The lookahead/learning
  // strategies' honeypot evasion shows up here; a camper never holds.
  std::int64_t rounds_held() const { return rounds_held_; }

 private:
  std::unique_ptr<Adversary> strategy_;
  BudgetLedger ledger_;
  support::RandomSource rng_;
  RoundObservation last_obs_;
  std::vector<mac::ChannelId> jams_;
  ObsMode obs_ = ObsMode::kFull;
  std::int64_t rounds_held_ = 0;
};

}  // namespace crmc::adversary
