#!/usr/bin/env python3
"""Validate a BENCH_engine.json artifact and gate throughput regressions.

Usage:
    check_bench_json.py BENCH_engine.json
    check_bench_json.py NEW.json --baseline BENCH_engine.json \
        [--max-regression 0.20] [--min-speedup 1.0]

Without --baseline only the schema is validated. With --baseline, every grid
point present in both files is compared on the batch engine's trials/sec and
the check fails if any point regressed by more than --max-regression
(default 20%). Trial counts may differ between the two files (quick vs full
runs); points are keyed by (protocol, population, num_active, channels).

Exit codes: 0 ok, 1 validation/regression failure, 2 usage error.
"""

import argparse
import json
import sys

SCHEMA = "crmc.bench_engine.v1"
ENGINE_METRICS = ("seconds", "trials_per_sec", "rounds_per_sec",
                  "node_rounds_per_sec")
POINT_KEYS = ("protocol", "population", "num_active", "channels")


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate(doc, path):
    """Checks the crmc.bench_engine.v1 schema; returns the points list."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail(f"{path}: 'points' must be a non-empty array")
    for i, p in enumerate(points):
        where = f"{path}: points[{i}]"
        if not isinstance(p, dict):
            fail(f"{where}: must be an object")
        if not isinstance(p.get("protocol"), str) or not p["protocol"]:
            fail(f"{where}: 'protocol' must be a non-empty string")
        for key in ("population", "num_active", "channels", "trials"):
            v = p.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                fail(f"{where}: '{key}' must be a positive integer")
        engines = p.get("engines")
        if not isinstance(engines, dict):
            fail(f"{where}: 'engines' must be an object")
        for name in ("coroutine", "batch"):
            eng = engines.get(name)
            if not isinstance(eng, dict):
                fail(f"{where}: engines.{name} missing")
            for metric in ENGINE_METRICS:
                v = eng.get(metric)
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    fail(f"{where}: engines.{name}.{metric} must be a number")
                if v < 0:
                    fail(f"{where}: engines.{name}.{metric} is negative")
        sp = p.get("speedup_trials_per_sec")
        if not isinstance(sp, (int, float)) or isinstance(sp, bool) or sp < 0:
            fail(f"{where}: 'speedup_trials_per_sec' must be a number >= 0")
    keys = [tuple(p[k] for k in POINT_KEYS) for p in points]
    if len(set(keys)) != len(keys):
        fail(f"{path}: duplicate grid points")
    return points


def point_key(p):
    return tuple(p[k] for k in POINT_KEYS)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("artifact", help="BENCH_engine.json to validate")
    ap.add_argument("--baseline",
                    help="committed artifact to compare batch throughput "
                         "against")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="max fractional drop in batch trials/sec vs the "
                         "baseline (default 0.20)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="require batch/coroutine speedup >= this on every "
                         "point")
    args = ap.parse_args()
    if not 0.0 <= args.max_regression < 1.0:
        print("--max-regression must be in [0, 1)", file=sys.stderr)
        sys.exit(2)

    points = validate(load(args.artifact), args.artifact)
    print(f"{args.artifact}: schema ok, {len(points)} grid points")

    if args.min_speedup is not None:
        for p in points:
            sp = p["speedup_trials_per_sec"]
            if sp < args.min_speedup:
                fail(f"{p['protocol']} n={p['population']} "
                     f"C={p['channels']}: speedup {sp:.2f} < "
                     f"--min-speedup {args.min_speedup:.2f}")
        print(f"all points have speedup >= {args.min_speedup:.2f}")

    if args.baseline:
        base_points = validate(load(args.baseline), args.baseline)
        base = {point_key(p): p for p in base_points}
        compared = 0
        for p in points:
            b = base.get(point_key(p))
            if b is None:
                continue
            compared += 1
            new_rate = p["engines"]["batch"]["trials_per_sec"]
            old_rate = b["engines"]["batch"]["trials_per_sec"]
            if old_rate <= 0:
                continue
            floor = old_rate * (1.0 - args.max_regression)
            label = (f"{p['protocol']} n={p['population']} "
                     f"active={p['num_active']} C={p['channels']}")
            if new_rate < floor:
                fail(f"{label}: batch trials/sec regressed "
                     f"{new_rate:.1f} < {floor:.1f} "
                     f"(baseline {old_rate:.1f}, allowed drop "
                     f"{args.max_regression:.0%})")
            print(f"{label}: {new_rate:.1f} vs baseline {old_rate:.1f} ok")
        if compared == 0:
            fail("no grid points in common with the baseline")
        print(f"no regression > {args.max_regression:.0%} across "
              f"{compared} points")
    print("check_bench_json: OK")


if __name__ == "__main__":
    main()
