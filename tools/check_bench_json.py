#!/usr/bin/env python3
"""Validate crmc bench JSON artifacts and gate regressions.

Supports three schemas, dispatched on the artifact's "schema" field:

  crmc.bench_engine.v1   throughput grid (bench_engine_throughput --json).
      check_bench_json.py BENCH_engine.json
      check_bench_json.py NEW.json --baseline BENCH_engine.json \\
          [--max-regression 0.20] [--min-speedup 1.0]
      Without --baseline only the schema is validated. With --baseline,
      every grid point present in both files is compared on the batch
      engine's trials/sec and the check fails if any point regressed by
      more than --max-regression (default 20%). Trial counts may differ
      (quick vs full runs); points are keyed by (protocol, population,
      num_active, channels).

  crmc.bench_engine.v2   v1 plus provenance and per-kernel rates: a
      "metadata" object (cpu, compiler, dispatch, rng — non-empty strings)
      and a "kernels" array of simd microbenchmark entries (name, backend,
      lanes, items_per_sec). The grid points are unchanged, so --baseline
      works across versions in both directions (a v1 baseline gates a v2
      artifact and vice versa).

  crmc.bench_engine.v3   v2 plus the trial-parallel executor comparison:
      metadata gains "lane_width" (positive int) and every grid point whose
      protocol has a trial-parallel twin gains a "trial" object —
      lane_width, rng ("philox": both sides of the comparison run the
      executor's required generator), engines.{batch,trial_batch} with the
      usual metrics, and speedup_trials_per_sec (trial_batch vs batch).
      The top-level engines block still uses the artifact's metadata.rng,
      so --baseline keeps working across v1/v2/v3 in both directions.
      --min-trial-speedup <f> additionally requires
      trial.speedup_trials_per_sec >= f on every small-active point
      (num_active <= 16) carrying a trial block, and fails if no such
      point exists (the floor must not pass vacuously).

  crmc.bench_faults.v1   fault-degradation grid (bench_fault_tolerance
      --json). Validates the schema, cross-checks the counters
      (solved + unsolved == trials, success_rate consistent), and enforces
      jam-axis monotonicity: within each group of points identical except
      for jam_rate, success_rate must be non-increasing as jam_rate rises
      (tolerance --monotone-tolerance, default 0.05, for sampling noise).
      --baseline is not meaningful for this schema (usage error).

  crmc.bench_adversary.v1   adaptive-adversary degradation grid
      (bench_adversary --json). Validates the schema (strategy/obs names,
      budget accounting: spent jams bounded by budget * trials, effective
      jams bounded by spent), cross-checks the failure breakdown
      (timed_out + aborted + silent_failures == unsolved), and enforces
      budget-axis monotonicity: within each (protocol, strategy, obs, cap)
      group, success_rate must be non-increasing as budget_fraction rises
      (same --monotone-tolerance). --baseline is a usage error here too.

  crmc.bench_robust.v2   static-vs-adaptive wrapper grid (bench_robust
      --json): each point runs the same adversary + fault config three
      ways — bare, under the static robust wrapper, and under the
      adaptive (self-tuning) wrapper — over shared seeds. Validates all
      three breakdowns and the per-side robust accounting (confirmed <=
      solved, epochs_used == retries + trials, echo + backoff jams <=
      effective <= spent <= budget * trials, exact overhead_vs_static =
      adaptive.rounds_total / static.rounds_total), then gates the
      arms-race claims: the ADAPTIVE side must confirm >= --delivery-floor
      (default 0.99) on every point, fault compositions included; at
      least one point must pair that with an outright bare failure; and
      at least one lookahead point must show the static wrapper below the
      floor while the adaptive wrapper holds it (the witness that the
      static defense is actually beaten, not merely matched).
      --baseline is a usage error.

Self-test: check_bench_json.py --self-test runs the validators against
in-memory good/bad documents; wired into ctest so the checker itself is
under test.

Exit codes: 0 ok, 1 validation/regression failure, 2 usage error.
"""

import argparse
import json
import sys

ENGINE_SCHEMA = "crmc.bench_engine.v1"
ENGINE_SCHEMA_V2 = "crmc.bench_engine.v2"
ENGINE_SCHEMA_V3 = "crmc.bench_engine.v3"
ENGINE_SCHEMAS = (ENGINE_SCHEMA, ENGINE_SCHEMA_V2, ENGINE_SCHEMA_V3)
# --min-trial-speedup only gates small-active points: lanes-across-trials
# targets the regime where per-trial vectors are too short to fill SIMD
# lanes; at large num_active the per-trial batch path is already wide.
TRIAL_SPEEDUP_MAX_ACTIVE = 16
FAULTS_SCHEMA = "crmc.bench_faults.v1"
ADVERSARY_SCHEMA = "crmc.bench_adversary.v1"
ROBUST_SCHEMA = "crmc.bench_robust.v2"
ADVERSARY_STRATEGIES = ("oblivious_rate", "primary_camper", "greedy_reactive",
                        "random_budgeted", "scripted", "phase_tracking",
                        "lookahead", "learning")
# two_active witness points run the lookahead jammer at multiples of the
# bare round budget (it holds through honeypots, so fractions above 1.0
# are where static defense cracks); 16 is a sanity ceiling, not a claim.
MAX_BUDGET_FRACTION = 16.0
ADVERSARY_OBS_MODES = ("full", "activity")
METADATA_KEYS = ("cpu", "compiler", "dispatch", "rng")
ENGINE_METRICS = ("seconds", "trials_per_sec", "rounds_per_sec",
                  "node_rounds_per_sec")
POINT_KEYS = ("protocol", "population", "num_active", "channels")
FAULT_RATE_KEYS = ("jam_rate", "erasure_rate", "flaky_cd_rate", "crash_rate")


class ValidationFailure(Exception):
    """Raised on any artifact problem; main() turns it into exit code 1."""


def fail(msg):
    raise ValidationFailure(msg)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def _check_points_container(doc, path):
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail(f"{path}: 'points' must be a non-empty array")
    return points


def _check_positive_int(p, key, where):
    v = p.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v < 1:
        fail(f"{where}: '{key}' must be a positive integer")
    return v


def _check_count(p, key, where):
    v = p.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        fail(f"{where}: '{key}' must be a non-negative integer")
    return v


def _check_number(container, key, where, lo=None, hi=None):
    v = container.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(f"{where}: '{key}' must be a number")
    if lo is not None and v < lo:
        fail(f"{where}: '{key}' is {v}, below {lo}")
    if hi is not None and v > hi:
        fail(f"{where}: '{key}' is {v}, above {hi}")
    return v


def _validate_metadata(doc, path, require_lane_width=False):
    meta = doc.get("metadata")
    if not isinstance(meta, dict):
        fail(f"{path}: 'metadata' must be an object")
    for key in METADATA_KEYS:
        v = meta.get(key)
        if not isinstance(v, str) or not v:
            fail(f"{path}: metadata.{key} must be a non-empty string")
    if require_lane_width:
        _check_positive_int(meta, "lane_width", f"{path}: metadata")
    return meta


def _validate_kernels(doc, path):
    kernels = doc.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        fail(f"{path}: 'kernels' must be a non-empty array")
    for i, k in enumerate(kernels):
        where = f"{path}: kernels[{i}]"
        if not isinstance(k, dict):
            fail(f"{where}: must be an object")
        for key in ("name", "backend"):
            if not isinstance(k.get(key), str) or not k[key]:
                fail(f"{where}: '{key}' must be a non-empty string")
        _check_positive_int(k, "lanes", where)
        _check_number(k, "items_per_sec", where, lo=0)
    names = [(k["name"], k["backend"]) for k in kernels]
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate (kernel, backend) entries")
    return kernels


def _validate_trial_block(p, where):
    """Checks a v3 per-point 'trial' object (absent on points whose
    protocol has no trial-parallel twin)."""
    trial = p.get("trial")
    if trial is None:
        return None
    if not isinstance(trial, dict):
        fail(f"{where}: 'trial' must be an object")
    _check_positive_int(trial, "lane_width", f"{where}: trial")
    if trial.get("rng") != "philox":
        fail(f"{where}: trial.rng must be 'philox' (the executor's required "
             f"generator), got {trial.get('rng')!r}")
    engines = trial.get("engines")
    if not isinstance(engines, dict):
        fail(f"{where}: trial.engines must be an object")
    for name in ("batch", "trial_batch"):
        eng = engines.get(name)
        if not isinstance(eng, dict):
            fail(f"{where}: trial.engines.{name} missing")
        for metric in ENGINE_METRICS:
            _check_number(eng, metric, f"{where}: trial.engines.{name}", lo=0)
    _check_number(trial, "speedup_trials_per_sec", f"{where}: trial", lo=0)
    return trial


def validate_engine(doc, path, schema=ENGINE_SCHEMA):
    """Checks a crmc.bench_engine.* schema; returns the points list."""
    if schema in (ENGINE_SCHEMA_V2, ENGINE_SCHEMA_V3):
        _validate_metadata(doc, path,
                           require_lane_width=schema == ENGINE_SCHEMA_V3)
        _validate_kernels(doc, path)
    points = _check_points_container(doc, path)
    for i, p in enumerate(points):
        where = f"{path}: points[{i}]"
        if not isinstance(p, dict):
            fail(f"{where}: must be an object")
        if not isinstance(p.get("protocol"), str) or not p["protocol"]:
            fail(f"{where}: 'protocol' must be a non-empty string")
        for key in ("population", "num_active", "channels", "trials"):
            _check_positive_int(p, key, where)
        engines = p.get("engines")
        if not isinstance(engines, dict):
            fail(f"{where}: 'engines' must be an object")
        for name in ("coroutine", "batch"):
            eng = engines.get(name)
            if not isinstance(eng, dict):
                fail(f"{where}: engines.{name} missing")
            for metric in ENGINE_METRICS:
                _check_number(eng, metric, f"{where}: engines.{name}", lo=0)
        _check_number(p, "speedup_trials_per_sec", where, lo=0)
        if schema == ENGINE_SCHEMA_V3:
            _validate_trial_block(p, where)
    keys = [tuple(p[k] for k in POINT_KEYS) for p in points]
    if len(set(keys)) != len(keys):
        fail(f"{path}: duplicate grid points")
    return points


def validate_faults(doc, path):
    """Checks the crmc.bench_faults.v1 schema; returns the points list."""
    points = _check_points_container(doc, path)
    for i, p in enumerate(points):
        where = f"{path}: points[{i}]"
        if not isinstance(p, dict):
            fail(f"{where}: must be an object")
        if not isinstance(p.get("protocol"), str) or not p["protocol"]:
            fail(f"{where}: 'protocol' must be a non-empty string")
        for key in ("population", "num_active", "channels", "trials",
                    "max_rounds"):
            _check_positive_int(p, key, where)
        faults = p.get("faults")
        if not isinstance(faults, dict):
            fail(f"{where}: 'faults' must be an object")
        for key in FAULT_RATE_KEYS:
            _check_number(faults, key, f"{where}: faults", lo=0.0, hi=1.0)
        solved = _check_count(p, "solved", where)
        unsolved = _check_count(p, "unsolved", where)
        timed_out = _check_count(p, "timed_out", where)
        aborted = _check_count(p, "aborted", where)
        wedged = _check_count(p, "wedged", where)
        _check_count(p, "faults_injected", where)
        _check_count(p, "crashed_nodes", where)
        trials = p["trials"]
        if solved + unsolved != trials:
            fail(f"{where}: solved {solved} + unsolved {unsolved} "
                 f"!= trials {trials}")
        if timed_out + aborted > unsolved:
            fail(f"{where}: timed_out {timed_out} + aborted {aborted} "
                 f"exceeds unsolved {unsolved}")
        if wedged > timed_out:
            fail(f"{where}: wedged {wedged} > timed_out {timed_out}")
        rate = _check_number(p, "success_rate", where, lo=0.0, hi=1.0)
        if abs(rate - solved / trials) > 1e-9:
            fail(f"{where}: success_rate {rate} != solved/trials "
                 f"{solved / trials}")
        _check_number(p, "mean_solved_rounds", where, lo=0)
        _check_number(p, "round_inflation", where, lo=0)
    return points


def validate_adversary(doc, path):
    """Checks the crmc.bench_adversary.v1 schema; returns the points list."""
    points = _check_points_container(doc, path)
    for i, p in enumerate(points):
        where = f"{path}: points[{i}]"
        if not isinstance(p, dict):
            fail(f"{where}: must be an object")
        if not isinstance(p.get("protocol"), str) or not p["protocol"]:
            fail(f"{where}: 'protocol' must be a non-empty string")
        for key in ("population", "num_active", "channels", "trials",
                    "max_rounds"):
            _check_positive_int(p, key, where)
        adv = p.get("adversary")
        if not isinstance(adv, dict):
            fail(f"{where}: 'adversary' must be an object")
        strategy = adv.get("strategy")
        if strategy not in ADVERSARY_STRATEGIES:
            fail(f"{where}: adversary.strategy {strategy!r} not one of "
                 f"{ADVERSARY_STRATEGIES}")
        if adv.get("obs") not in ADVERSARY_OBS_MODES:
            fail(f"{where}: adversary.obs {adv.get('obs')!r} not one of "
                 f"{ADVERSARY_OBS_MODES}")
        budget = _check_count(adv, "budget", f"{where}: adversary")
        _check_number(adv, "budget_fraction", f"{where}: adversary",
                      lo=0.0, hi=1.0)
        _check_positive_int(adv, "per_round_cap", f"{where}: adversary")
        _check_number(adv, "rate", f"{where}: adversary", lo=0.0, hi=1.0)
        solved = _check_count(p, "solved", where)
        unsolved = _check_count(p, "unsolved", where)
        timed_out = _check_count(p, "timed_out", where)
        aborted = _check_count(p, "aborted", where)
        wedged = _check_count(p, "wedged", where)
        silent = _check_count(p, "silent_failures", where)
        spent = _check_count(p, "adv_jams_spent", where)
        effective = _check_count(p, "adv_jams_effective", where)
        trials = p["trials"]
        if solved + unsolved != trials:
            fail(f"{where}: solved {solved} + unsolved {unsolved} "
                 f"!= trials {trials}")
        if timed_out + aborted + silent != unsolved:
            fail(f"{where}: timed_out {timed_out} + aborted {aborted} + "
                 f"silent_failures {silent} != unsolved {unsolved}")
        if wedged > timed_out:
            fail(f"{where}: wedged {wedged} > timed_out {timed_out}")
        if effective > spent:
            fail(f"{where}: adv_jams_effective {effective} > "
                 f"adv_jams_spent {spent}")
        if strategy != "oblivious_rate" and spent > budget * trials:
            fail(f"{where}: adv_jams_spent {spent} exceeds the aggregate "
                 f"budget {budget} * {trials} trials")
        rate = _check_number(p, "success_rate", where, lo=0.0, hi=1.0)
        if abs(rate - solved / trials) > 1e-9:
            fail(f"{where}: success_rate {rate} != solved/trials "
                 f"{solved / trials}")
        _check_number(p, "mean_solved_rounds", where, lo=0)
        _check_number(p, "round_inflation", where, lo=0)
    return points


def _check_breakdown(side, trials, where):
    """Shared solved/unsolved bookkeeping for a bare or wrapped breakdown."""
    solved = _check_count(side, "solved", where)
    unsolved = _check_count(side, "unsolved", where)
    timed_out = _check_count(side, "timed_out", where)
    aborted = _check_count(side, "aborted", where)
    wedged = _check_count(side, "wedged", where)
    silent = _check_count(side, "silent_failures", where)
    if solved + unsolved != trials:
        fail(f"{where}: solved {solved} + unsolved {unsolved} "
             f"!= trials {trials}")
    if timed_out + aborted + silent != unsolved:
        fail(f"{where}: timed_out {timed_out} + aborted {aborted} + "
             f"silent_failures {silent} != unsolved {unsolved}")
    if wedged > timed_out:
        fail(f"{where}: wedged {wedged} > timed_out {timed_out}")
    rate = _check_number(side, "success_rate", where, lo=0.0, hi=1.0)
    if abs(rate - solved / trials) > 1e-9:
        fail(f"{where}: success_rate {rate} != solved/trials "
             f"{solved / trials}")
    return solved


def _check_wrapped_side(side, trials, budget, max_epochs, where):
    """A static or adaptive wrapped side: breakdown + robust + adversary
    accounting. Returns the side's confirmed_rate."""
    solved = _check_breakdown(side, trials, where)
    confirmed = _check_count(side, "confirmed", where)
    if confirmed > solved:
        fail(f"{where}: confirmed {confirmed} > solved {solved}")
    crate = _check_number(side, "confirmed_rate", where, lo=0.0, hi=1.0)
    if abs(crate - confirmed / trials) > 1e-9:
        fail(f"{where}: confirmed_rate {crate} != confirmed/trials "
             f"{confirmed / trials}")
    epochs = _check_count(side, "epochs_used", where)
    retries = _check_count(side, "retries", where)
    if epochs != retries + trials:
        fail(f"{where}: epochs_used {epochs} != retries {retries} + "
             f"trials {trials} (each trial runs retries + 1 epochs)")
    if retries > (max_epochs - 1) * trials:
        fail(f"{where}: retries {retries} exceeds (max_epochs - 1) * trials")
    _check_count(side, "confirm_rounds", where)
    _check_count(side, "backoff_rounds", where)
    _check_positive_int(side, "rounds_total", where)
    spent = _check_count(side, "adv_jams_spent", where)
    effective = _check_count(side, "adv_jams_effective", where)
    if effective > spent:
        fail(f"{where}: adv_jams_effective {effective} > "
             f"adv_jams_spent {spent}")
    if spent > budget * trials:
        fail(f"{where}: adv_jams_spent {spent} exceeds the aggregate "
             f"budget {budget} * {trials} trials")
    _check_count(side, "adv_rounds_held", where)
    echo = _check_count(side, "adv_jams_echo", where)
    backoff = _check_count(side, "adv_jams_backoff", where)
    if echo + backoff > spent:
        fail(f"{where}: adv_jams_echo {echo} + adv_jams_backoff {backoff} "
             f"exceeds adv_jams_spent {spent}")
    _check_number(side, "mean_solved_rounds", where, lo=0)
    return crate


def validate_robust(doc, path):
    """Checks the crmc.bench_robust.v2 schema; returns the points list."""
    points = _check_points_container(doc, path)
    for i, p in enumerate(points):
        where = f"{path}: points[{i}]"
        if not isinstance(p, dict):
            fail(f"{where}: must be an object")
        if not isinstance(p.get("protocol"), str) or not p["protocol"]:
            fail(f"{where}: 'protocol' must be a non-empty string")
        for key in ("population", "num_active", "channels", "trials",
                    "bare_max_rounds", "wrapped_max_rounds"):
            _check_positive_int(p, key, where)
        if p["wrapped_max_rounds"] < p["bare_max_rounds"]:
            fail(f"{where}: wrapped_max_rounds {p['wrapped_max_rounds']} < "
                 f"bare_max_rounds {p['bare_max_rounds']}")
        adv = p.get("adversary")
        if not isinstance(adv, dict):
            fail(f"{where}: 'adversary' must be an object")
        strategy = adv.get("strategy")
        if strategy not in ADVERSARY_STRATEGIES:
            fail(f"{where}: adversary.strategy {strategy!r} not one of "
                 f"{ADVERSARY_STRATEGIES}")
        if adv.get("obs") not in ADVERSARY_OBS_MODES:
            fail(f"{where}: adversary.obs {adv.get('obs')!r} not one of "
                 f"{ADVERSARY_OBS_MODES}")
        budget = _check_count(adv, "budget", f"{where}: adversary")
        _check_number(adv, "budget_fraction", f"{where}: adversary",
                      lo=0.0, hi=MAX_BUDGET_FRACTION)
        _check_positive_int(adv, "per_round_cap", f"{where}: adversary")
        faults = p.get("faults")
        if not isinstance(faults, dict):
            fail(f"{where}: 'faults' must be an object")
        if not isinstance(faults.get("name"), str) or not faults["name"]:
            fail(f"{where}: faults.name must be a non-empty string")
        for key in ("erasure_rate", "flaky_cd_rate"):
            _check_number(faults, key, f"{where}: faults", lo=0.0, hi=1.0)
        _check_count(faults, "fault_seed", f"{where}: faults")
        rob = p.get("robust")
        if not isinstance(rob, dict):
            fail(f"{where}: 'robust' must be an object")
        _check_positive_int(rob, "max_epochs", f"{where}: robust")
        _check_count(rob, "confirm_attempts", f"{where}: robust")
        base = _check_count(rob, "backoff_base", f"{where}: robust")
        cap = _check_count(rob, "backoff_cap", f"{where}: robust")
        if cap < base:
            fail(f"{where}: robust.backoff_cap {cap} < backoff_base {base}")
        trials = p["trials"]
        bare = p.get("bare")
        if not isinstance(bare, dict):
            fail(f"{where}: 'bare' must be an object")
        _check_breakdown(bare, trials, f"{where}: bare")
        for side_name in ("static", "adaptive"):
            side = p.get(side_name)
            if not isinstance(side, dict):
                fail(f"{where}: '{side_name}' must be an object")
            _check_wrapped_side(side, trials, budget, rob["max_epochs"],
                                f"{where}: {side_name}")
        adaptive = p["adaptive"]
        _check_count(adaptive, "adaptive_confirm_extra", f"{where}: adaptive")
        _check_count(adaptive, "adaptive_backoff_trimmed",
                     f"{where}: adaptive")
        _check_count(adaptive, "confirm_quorum_peak", f"{where}: adaptive")
        # The overhead ratio must be exact arithmetic over the committed
        # totals, not a hand-edited summary number.
        overhead = _check_number(p, "overhead_vs_static", where, lo=0.0)
        expected = adaptive["rounds_total"] / p["static"]["rounds_total"]
        if abs(overhead - expected) > 1e-9 * max(1.0, expected):
            fail(f"{where}: overhead_vs_static {overhead} != "
                 f"adaptive.rounds_total / static.rounds_total {expected}")
    return points


def check_delivery_floor(points, floor):
    """Every point's ADAPTIVE side must confirm at least `floor` of its
    trials — fault compositions and lookahead jamming included; at least
    one point must pair that with an outright bare failure (the headline
    claim: the adaptive wrapper delivers where the bare protocol cannot)."""
    headline = 0
    for p in points:
        crate = p["adaptive"]["confirmed_rate"]
        if crate < floor:
            a = p["adversary"]
            fail(f"{p['protocol']} {a['strategy']} budget_fraction "
                 f"{a['budget_fraction']} faults {p['faults']['name']}: "
                 f"adaptive confirmed_rate {crate:.3f} below the delivery "
                 f"floor {floor}")
        if p["bare"]["success_rate"] == 0.0 and crate >= floor:
            headline += 1
    if headline == 0:
        fail(f"no point has bare success_rate 0 with adaptive "
             f"confirmed_rate >= {floor}; the artifact does not witness "
             f"the headline claim")
    return headline


def check_lookahead_witness(points, floor):
    """At least one lookahead point must show the static wrapper below the
    delivery floor while the adaptive wrapper holds it. Without such a
    witness the artifact only shows the two policies tying — not that the
    lookahead adversary actually beats a static defense."""
    witnesses = 0
    for p in points:
        if p["adversary"]["strategy"] != "lookahead":
            continue
        if p["static"]["confirmed_rate"] < floor and \
                p["adaptive"]["confirmed_rate"] >= floor:
            witnesses += 1
    if witnesses == 0:
        fail(f"no lookahead point has static confirmed_rate < {floor} with "
             f"adaptive confirmed_rate >= {floor}; the artifact does not "
             f"witness the static wrapper being beaten")
    return witnesses


def check_budget_monotonicity(points, tolerance):
    """success_rate must not rise with budget_fraction, all else equal.

    Groups points by (protocol grid key, max_rounds, strategy, obs, cap)
    and sorts each group on budget_fraction (which doubles as the jam rate
    for oblivious_rate points). More budget can only hurt the protocol, so
    an adjacent rise beyond the tolerance is a bench or subsystem bug.
    """
    groups = {}
    for p in points:
        a = p["adversary"]
        key = (tuple(p[k] for k in POINT_KEYS), p["max_rounds"],
               a["strategy"], a["obs"], a["per_round_cap"])
        groups.setdefault(key, []).append(p)
    checked = 0
    for key, group in groups.items():
        group.sort(key=lambda p: p["adversary"]["budget_fraction"])
        for prev, cur in zip(group, group[1:]):
            checked += 1
            if cur["success_rate"] > prev["success_rate"] + tolerance:
                fail(f"{cur['protocol']} {cur['adversary']['strategy']}: "
                     f"success_rate rose from {prev['success_rate']:.3f} "
                     f"(budget_fraction "
                     f"{prev['adversary']['budget_fraction']}) to "
                     f"{cur['success_rate']:.3f} (budget_fraction "
                     f"{cur['adversary']['budget_fraction']}), tolerance "
                     f"{tolerance}")
    return checked


def check_jam_monotonicity(points, tolerance):
    """success_rate must not rise with jam_rate, all else equal."""
    groups = {}
    for p in points:
        f = p["faults"]
        key = (tuple(p[k] for k in POINT_KEYS), p["max_rounds"],
               f["erasure_rate"], f["flaky_cd_rate"], f["crash_rate"])
        groups.setdefault(key, []).append(p)
    checked = 0
    for key, group in groups.items():
        group.sort(key=lambda p: p["faults"]["jam_rate"])
        for prev, cur in zip(group, group[1:]):
            checked += 1
            if cur["success_rate"] > prev["success_rate"] + tolerance:
                fail(f"{cur['protocol']} n={cur['population']}: success_rate "
                     f"rose from {prev['success_rate']:.3f} (jam "
                     f"{prev['faults']['jam_rate']}) to "
                     f"{cur['success_rate']:.3f} (jam "
                     f"{cur['faults']['jam_rate']}), tolerance {tolerance}")
    return checked


def check_trial_speedup(points, floor, max_active=TRIAL_SPEEDUP_MAX_ACTIVE):
    """Every small-active point carrying a trial block must show the
    trial-parallel executor at >= `floor` times the per-trial batch path.
    Fails if no point qualifies — a floor nothing is measured against
    would pass vacuously."""
    gated = 0
    for p in points:
        trial = p.get("trial")
        if trial is None or p["num_active"] > max_active:
            continue
        gated += 1
        sp = trial["speedup_trials_per_sec"]
        label = (f"{p['protocol']} n={p['population']} "
                 f"active={p['num_active']} C={p['channels']}")
        if sp < floor:
            fail(f"{label}: trial executor speedup {sp:.2f} < "
                 f"--min-trial-speedup {floor:.2f}")
        print(f"{label}: trial executor speedup {sp:.2f} >= {floor:.2f} ok")
    if gated == 0:
        fail(f"no grid point with num_active <= {max_active} carries a "
             f"'trial' block; --min-trial-speedup has nothing to gate")
    return gated


def point_key(p):
    return tuple(p[k] for k in POINT_KEYS)


def check_engine_baseline(points, base_points, max_regression):
    base = {point_key(p): p for p in base_points}
    compared = 0
    for p in points:
        b = base.get(point_key(p))
        if b is None:
            continue
        compared += 1
        new_rate = p["engines"]["batch"]["trials_per_sec"]
        old_rate = b["engines"]["batch"]["trials_per_sec"]
        if old_rate <= 0:
            continue
        floor = old_rate * (1.0 - max_regression)
        label = (f"{p['protocol']} n={p['population']} "
                 f"active={p['num_active']} C={p['channels']}")
        if new_rate < floor:
            fail(f"{label}: batch trials/sec regressed "
                 f"{new_rate:.1f} < {floor:.1f} "
                 f"(baseline {old_rate:.1f}, allowed drop "
                 f"{max_regression:.0%})")
        print(f"{label}: {new_rate:.1f} vs baseline {old_rate:.1f} ok")
    if compared == 0:
        fail("no grid points in common with the baseline")
    return compared


def run_checks(args):
    doc = load(args.artifact)
    if not isinstance(doc, dict):
        fail(f"{args.artifact}: top level must be an object")
    schema = doc.get("schema")
    if schema in ENGINE_SCHEMAS:
        points = validate_engine(doc, args.artifact, schema)
        print(f"{args.artifact}: schema ok, {len(points)} grid points")
        if schema in (ENGINE_SCHEMA_V2, ENGINE_SCHEMA_V3):
            meta = doc["metadata"]
            print(f"metadata: cpu={meta['cpu']!r} dispatch={meta['dispatch']} "
                  f"rng={meta['rng']}; {len(doc['kernels'])} kernel rates")
        if args.min_trial_speedup is not None:
            if schema != ENGINE_SCHEMA_V3:
                fail(f"{args.artifact}: --min-trial-speedup needs a "
                     f"{ENGINE_SCHEMA_V3} artifact, got {schema}")
            gated = check_trial_speedup(points, args.min_trial_speedup)
            print(f"trial executor floor {args.min_trial_speedup:.2f} holds "
                  f"on {gated} small-active points")
        if args.min_speedup is not None:
            for p in points:
                sp = p["speedup_trials_per_sec"]
                if sp < args.min_speedup:
                    fail(f"{p['protocol']} n={p['population']} "
                         f"C={p['channels']}: speedup {sp:.2f} < "
                         f"--min-speedup {args.min_speedup:.2f}")
            print(f"all points have speedup >= {args.min_speedup:.2f}")
        if args.baseline:
            base_doc = load(args.baseline)
            if not isinstance(base_doc, dict):
                fail(f"{args.baseline}: top level must be an object")
            base_schema = base_doc.get("schema")
            if base_schema not in ENGINE_SCHEMAS:
                fail(f"{args.baseline}: baseline schema is {base_schema!r}, "
                     f"expected an engine schema")
            base_points = validate_engine(base_doc, args.baseline, base_schema)
            compared = check_engine_baseline(points, base_points,
                                             args.max_regression)
            print(f"no regression > {args.max_regression:.0%} across "
                  f"{compared} points")
    elif schema == FAULTS_SCHEMA:
        if args.baseline:
            print(f"--baseline is not supported for {FAULTS_SCHEMA} "
                  "(outcomes are deterministic; no timing to gate)",
                  file=sys.stderr)
            sys.exit(2)
        points = validate_faults(doc, args.artifact)
        print(f"{args.artifact}: schema ok, {len(points)} fault points")
        checked = check_jam_monotonicity(points, args.monotone_tolerance)
        print(f"jam-axis monotonicity ok across {checked} adjacent pairs")
    elif schema == ADVERSARY_SCHEMA:
        if args.baseline:
            print(f"--baseline is not supported for {ADVERSARY_SCHEMA} "
                  "(outcomes are deterministic; no timing to gate)",
                  file=sys.stderr)
            sys.exit(2)
        points = validate_adversary(doc, args.artifact)
        print(f"{args.artifact}: schema ok, {len(points)} adversary points")
        checked = check_budget_monotonicity(points, args.monotone_tolerance)
        print(f"budget-axis monotonicity ok across {checked} adjacent pairs")
    elif schema == ROBUST_SCHEMA:
        if args.baseline:
            print(f"--baseline is not supported for {ROBUST_SCHEMA} "
                  "(outcomes are deterministic; no timing to gate)",
                  file=sys.stderr)
            sys.exit(2)
        points = validate_robust(doc, args.artifact)
        print(f"{args.artifact}: schema ok, {len(points)} robust points "
              f"(overhead accounting exact on all)")
        headline = check_delivery_floor(points, args.delivery_floor)
        print(f"delivery floor {args.delivery_floor} holds on every adaptive "
              f"point; {headline} points witness bare-fails/adaptive-delivers")
        witnesses = check_lookahead_witness(points, args.delivery_floor)
        print(f"{witnesses} lookahead points witness static-loses/"
              f"adaptive-holds")
    else:
        fail(f"{args.artifact}: schema is {schema!r}, expected "
             f"{ENGINE_SCHEMA!r}, {ENGINE_SCHEMA_V2!r}, {ENGINE_SCHEMA_V3!r}, "
             f"{FAULTS_SCHEMA!r}, {ADVERSARY_SCHEMA!r} or {ROBUST_SCHEMA!r}")
    print("check_bench_json: OK")


# --------------------------------------------------------------------------
# Self-test
# --------------------------------------------------------------------------

def _engine_point(**overrides):
    p = {
        "protocol": "general", "population": 4096, "num_active": 256,
        "channels": 32, "trials": 100,
        "engines": {
            name: {"seconds": 1.0, "trials_per_sec": 100.0,
                   "rounds_per_sec": 1000.0, "node_rounds_per_sec": 1e6}
            for name in ("coroutine", "batch")
        },
        "speedup_trials_per_sec": 1.0,
    }
    p.update(overrides)
    return p


def _faults_point(jam=0.0, success=1.0, trials=100, **overrides):
    solved = round(success * trials)
    p = {
        "protocol": "general", "population": 4096, "num_active": 256,
        "channels": 32, "trials": trials, "max_rounds": 2000,
        "faults": {"jam_rate": jam, "erasure_rate": 0.0,
                   "flaky_cd_rate": 0.0, "crash_rate": 0.0},
        "solved": solved, "unsolved": trials - solved,
        "timed_out": trials - solved, "aborted": 0, "wedged": 0,
        "success_rate": solved / trials, "mean_solved_rounds": 10.0,
        "round_inflation": 1.0, "faults_injected": 0, "crashed_nodes": 0,
    }
    p.update(overrides)
    return p


def _adversary_point(strategy="primary_camper", fraction=0.0, success=1.0,
                     trials=100, budget=None, **overrides):
    solved = round(success * trials)
    if budget is None:
        budget = round(fraction * 2000 * 2)
    p = {
        "protocol": "general", "population": 4096, "num_active": 256,
        "channels": 32, "trials": trials, "max_rounds": 2000,
        "adversary": {"strategy": strategy, "obs": "full", "budget": budget,
                      "budget_fraction": fraction, "per_round_cap": 2,
                      "rate": 0.0},
        "solved": solved, "unsolved": trials - solved,
        "timed_out": trials - solved, "aborted": 0, "wedged": 0,
        "silent_failures": 0, "success_rate": solved / trials,
        "mean_solved_rounds": 10.0, "round_inflation": 1.0,
        "adv_jams_spent": min(budget, 5) * trials,
        "adv_jams_effective": 0,
    }
    p.update(overrides)
    return p


def _wrapped_side(rate, trials, budget, retries, rounds_total):
    ok = round(rate * trials)
    return {
        "solved": ok, "unsolved": trials - ok, "timed_out": trials - ok,
        "aborted": 0, "wedged": 0, "silent_failures": 0,
        "success_rate": ok / trials,
        "confirmed": ok, "confirmed_rate": ok / trials,
        "mean_solved_rounds": 10.0,
        "epochs_used": retries + trials, "retries": retries,
        "confirm_rounds": 3 * trials, "backoff_rounds": 2 * trials,
        "rounds_total": rounds_total,
        "adv_jams_spent": min(budget, 5) * trials,
        "adv_jams_effective": min(budget, 4) * trials,
        "adv_rounds_held": trials,
        "adv_jams_echo": min(budget, 3) * trials,
        "adv_jams_backoff": min(budget, 1) * trials,
    }


def _robust_point(strategy="primary_camper", fraction=0.0, bare_success=1.0,
                  static_rate=1.0, adaptive_rate=1.0, trials=100,
                  retries=0, **overrides):
    bare_solved = round(bare_success * trials)
    budget = round(fraction * 2000 * 2)
    static_side = _wrapped_side(static_rate, trials, budget, retries, 1000)
    adaptive_side = _wrapped_side(adaptive_rate, trials, budget, retries, 800)
    adaptive_side.update({"adaptive_confirm_extra": 5 * trials,
                          "adaptive_backoff_trimmed": trials,
                          "confirm_quorum_peak": 12})
    p = {
        "protocol": "general", "population": 4096, "num_active": 256,
        "channels": 32, "bare_max_rounds": 2000, "wrapped_max_rounds": 32000,
        "trials": trials,
        "adversary": {"strategy": strategy, "obs": "full", "budget": budget,
                      "budget_fraction": fraction, "per_round_cap": 2},
        "faults": {"name": "none", "erasure_rate": 0.0, "flaky_cd_rate": 0.0,
                   "fault_seed": 0},
        "robust": {"max_epochs": 32, "confirm_attempts": 3,
                   "backoff_base": 2, "backoff_cap": 1024},
        "bare": {"solved": bare_solved, "unsolved": trials - bare_solved,
                 "timed_out": 0, "aborted": 0, "wedged": 0,
                 "silent_failures": trials - bare_solved,
                 "success_rate": bare_solved / trials},
        "static": static_side,
        "adaptive": adaptive_side,
        "overhead_vs_static": 800 / 1000,
    }
    for key, value in overrides.items():
        if isinstance(value, dict) and isinstance(p.get(key), dict):
            p[key] = dict(p[key], **value)
        else:
            p[key] = value
    return p


def _expect_ok(what, fn):
    try:
        fn()
    except ValidationFailure as e:
        print(f"self-test: {what}: unexpected failure: {e}", file=sys.stderr)
        return False
    return True


def _expect_fail(what, fn, needle):
    try:
        fn()
    except ValidationFailure as e:
        if needle in str(e):
            return True
        print(f"self-test: {what}: failed with {e!r}, expected substring "
              f"{needle!r}", file=sys.stderr)
        return False
    print(f"self-test: {what}: expected a failure, got none", file=sys.stderr)
    return False


def _v2_doc(**overrides):
    doc = {
        "schema": ENGINE_SCHEMA_V2,
        "metadata": {"cpu": "Test CPU", "compiler": "g++ 0.0",
                     "dispatch": "avx2", "rng": "xoshiro"},
        "kernels": [{"name": "coin_mask", "backend": "scalar",
                     "lanes": 4096, "items_per_sec": 1e9},
                    {"name": "coin_mask", "backend": "avx2",
                     "lanes": 4096, "items_per_sec": 4e9}],
        "points": [_engine_point()],
    }
    doc.update(overrides)
    return doc


def _trial_block(speedup=2.0, lane_width=32):
    return {
        "lane_width": lane_width, "rng": "philox",
        "engines": {
            "batch": {"seconds": 1.0, "trials_per_sec": 100.0,
                      "rounds_per_sec": 1000.0, "node_rounds_per_sec": 1e6},
            "trial_batch": {"seconds": 1.0 / speedup,
                            "trials_per_sec": 100.0 * speedup,
                            "rounds_per_sec": 1000.0 * speedup,
                            "node_rounds_per_sec": 1e6 * speedup},
        },
        "speedup_trials_per_sec": speedup,
    }


def _v3_doc(**overrides):
    doc = _v2_doc()
    doc["schema"] = ENGINE_SCHEMA_V3
    doc["metadata"] = dict(doc["metadata"], lane_width=32)
    doc["points"] = [
        _engine_point(protocol="two_active", num_active=2,
                      trial=_trial_block()),
        _engine_point(),  # no trial twin: no block, legal in v3
    ]
    doc.update(overrides)
    return doc


def self_test():
    engine_doc = {"schema": ENGINE_SCHEMA, "points": [_engine_point()]}
    faults_doc = {
        "schema": FAULTS_SCHEMA,
        "points": [_faults_point(jam=0.0, success=1.0),
                   _faults_point(jam=0.2, success=0.8),
                   _faults_point(jam=0.4, success=0.5)],
    }
    rising = {
        "schema": FAULTS_SCHEMA,
        "points": [_faults_point(jam=0.0, success=0.5),
                   _faults_point(jam=0.4, success=0.9)],
    }
    bad_counts = {
        "schema": FAULTS_SCHEMA,
        "points": [_faults_point(jam=0.0, success=1.0, unsolved=5)],
    }
    bad_rate = {
        "schema": FAULTS_SCHEMA,
        "points": [_faults_point(jam=1.5)],
    }
    bad_success = {
        "schema": FAULTS_SCHEMA,
        "points": [_faults_point(jam=0.0, success=1.0, success_rate=0.5)],
    }
    v2_no_cpu = _v2_doc()
    v2_no_cpu["metadata"] = dict(v2_no_cpu["metadata"], cpu="")
    v2_bad_kernel = _v2_doc(kernels=[{"name": "coin_mask",
                                      "backend": "scalar", "lanes": 0,
                                      "items_per_sec": 1e9}])
    v2_dup_kernel = _v2_doc()
    v2_dup_kernel["kernels"] = [v2_dup_kernel["kernels"][0]] * 2
    v2_fast = _v2_doc(points=[_engine_point(
        engines={name: {"seconds": 1.0, "trials_per_sec": 200.0,
                        "rounds_per_sec": 1000.0, "node_rounds_per_sec": 1e6}
                 for name in ("coroutine", "batch")})])
    adversary_doc = {
        "schema": ADVERSARY_SCHEMA,
        "points": [_adversary_point(fraction=0.0, success=1.0),
                   _adversary_point(fraction=0.25, success=0.6),
                   _adversary_point(fraction=1.0, success=0.1)],
    }
    adv_rising = {
        "schema": ADVERSARY_SCHEMA,
        "points": [_adversary_point(fraction=0.25, success=0.4),
                   _adversary_point(fraction=1.0, success=0.9)],
    }
    adv_bad_strategy = {
        "schema": ADVERSARY_SCHEMA,
        "points": [_adversary_point(strategy="camper")],
    }
    adv_overspent = {
        "schema": ADVERSARY_SCHEMA,
        "points": [_adversary_point(fraction=0.25, budget=3,
                                    adv_jams_spent=400)],
    }
    adv_bad_breakdown = {
        "schema": ADVERSARY_SCHEMA,
        "points": [_adversary_point(fraction=0.25, success=0.5,
                                    silent_failures=10)],
    }
    adv_bad_effective = {
        "schema": ADVERSARY_SCHEMA,
        "points": [_adversary_point(fraction=0.25, adv_jams_effective=9999)],
    }
    robust_doc = {
        "schema": ROBUST_SCHEMA,
        "points": [
            _robust_point(fraction=0.0, bare_success=1.0),
            _robust_point(fraction=0.25, bare_success=0.0, retries=120),
            _robust_point(strategy="phase_tracking", fraction=0.25,
                          bare_success=0.0, retries=90),
            # The arms-race witness: lookahead beats static, adaptive holds.
            _robust_point(strategy="lookahead", fraction=1.0,
                          bare_success=0.0, static_rate=0.4, retries=400),
            _robust_point(strategy="lookahead", fraction=1.0,
                          bare_success=0.0, static_rate=0.4, retries=400,
                          faults={"name": "erasure_flaky",
                                  "erasure_rate": 0.1,
                                  "flaky_cd_rate": 0.05, "fault_seed": 7}),
        ],
    }
    robust_floor_breach = {
        "schema": ROBUST_SCHEMA,
        "points": [_robust_point(strategy="lookahead", fraction=1.0,
                                 bare_success=0.0, static_rate=0.4,
                                 adaptive_rate=0.9, retries=400)],
    }
    robust_no_headline = {
        "schema": ROBUST_SCHEMA,
        "points": [_robust_point(fraction=0.0, bare_success=1.0)],
    }
    # Both policies hold everywhere: nothing shows static actually beaten.
    robust_no_witness = [
        _robust_point(fraction=0.0, bare_success=1.0),
        _robust_point(strategy="lookahead", fraction=1.0, bare_success=0.0,
                      retries=400),
    ]
    robust_bad_breakdown = {
        "schema": ROBUST_SCHEMA,
        "points": [_robust_point(bare={"silent_failures": 7})],
    }
    robust_bad_confirmed = {
        "schema": ROBUST_SCHEMA,
        "points": [_robust_point(static={"confirmed": 150,
                                         "confirmed_rate": 1.5})],
    }
    robust_bad_epochs = {
        "schema": ROBUST_SCHEMA,
        "points": [_robust_point(retries=5, adaptive={"epochs_used": 100})],
    }
    robust_bad_overhead = {
        "schema": ROBUST_SCHEMA,
        "points": [_robust_point(overhead_vs_static=3.0)],
    }
    robust_jam_books_cooked = {
        "schema": ROBUST_SCHEMA,
        "points": [_robust_point(fraction=1.0, bare_success=0.0, retries=400,
                                 static={"adv_jams_echo": 999999})],
    }
    checks = [
        _expect_ok("engine schema accepts a valid doc",
                   lambda: validate_engine(engine_doc, "mem")),
        _expect_ok("v2 schema accepts a valid doc",
                   lambda: validate_engine(_v2_doc(), "mem",
                                           ENGINE_SCHEMA_V2)),
        _expect_fail("v2 schema rejects empty metadata.cpu",
                     lambda: validate_engine(v2_no_cpu, "mem",
                                             ENGINE_SCHEMA_V2),
                     "metadata.cpu"),
        _expect_fail("v2 schema rejects a non-positive kernel lane count",
                     lambda: validate_engine(v2_bad_kernel, "mem",
                                             ENGINE_SCHEMA_V2),
                     "lanes"),
        _expect_fail("v2 schema rejects duplicate kernel entries",
                     lambda: validate_engine(v2_dup_kernel, "mem",
                                             ENGINE_SCHEMA_V2),
                     "duplicate (kernel, backend)"),
        _expect_fail("v2 schema rejects a missing kernels array",
                     lambda: validate_engine(_v2_doc(kernels=[]), "mem",
                                             ENGINE_SCHEMA_V2),
                     "'kernels'"),
        _expect_ok("v3 schema accepts a valid doc",
                   lambda: validate_engine(_v3_doc(), "mem",
                                           ENGINE_SCHEMA_V3)),
        _expect_fail("v3 schema requires metadata.lane_width",
                     lambda: validate_engine(
                         _v3_doc(metadata={"cpu": "Test CPU",
                                           "compiler": "g++ 0.0",
                                           "dispatch": "avx2",
                                           "rng": "xoshiro"}), "mem",
                         ENGINE_SCHEMA_V3),
                     "lane_width"),
        _expect_fail("v3 schema rejects a trial block without trial_batch",
                     lambda: validate_engine(
                         _v3_doc(points=[_engine_point(
                             num_active=2,
                             trial={"lane_width": 32, "rng": "philox",
                                    "engines": {"batch": {
                                        "seconds": 1.0,
                                        "trials_per_sec": 100.0,
                                        "rounds_per_sec": 1000.0,
                                        "node_rounds_per_sec": 1e6}},
                                    "speedup_trials_per_sec": 1.0})]),
                         "mem", ENGINE_SCHEMA_V3),
                     "trial_batch missing"),
        _expect_fail("v3 schema rejects a non-philox trial rng",
                     lambda: validate_engine(
                         _v3_doc(points=[_engine_point(
                             num_active=2,
                             trial=dict(_trial_block(), rng="xoshiro"))]),
                         "mem", ENGINE_SCHEMA_V3),
                     "trial.rng"),
        _expect_ok("trial speedup floor passes above the floor",
                   lambda: check_trial_speedup(_v3_doc()["points"], 1.5)),
        _expect_fail("trial speedup floor gates a slow executor",
                     lambda: check_trial_speedup(
                         [_engine_point(num_active=2,
                                        trial=_trial_block(speedup=1.2))],
                         1.5),
                     "trial executor speedup"),
        _expect_fail("trial speedup floor refuses to pass vacuously",
                     lambda: check_trial_speedup([_engine_point()], 1.5),
                     "nothing to gate"),
        _expect_fail("trial speedup floor ignores large-active points",
                     lambda: check_trial_speedup(
                         [_engine_point(num_active=256,
                                        trial=_trial_block(speedup=9.0))],
                         1.5),
                     "nothing to gate"),
        _expect_ok("baseline check crosses schema versions",
                   lambda: check_engine_baseline(v2_fast["points"],
                                                 engine_doc["points"], 0.2)),
        _expect_fail("baseline check gates a v2 regression",
                     lambda: check_engine_baseline(engine_doc["points"],
                                                   v2_fast["points"], 0.2),
                     "regressed"),
        _expect_fail("engine schema rejects a missing engine",
                     lambda: validate_engine(
                         {"schema": ENGINE_SCHEMA,
                          "points": [_engine_point(engines={})]}, "mem"),
                     "coroutine missing"),
        _expect_ok("faults schema accepts a valid doc",
                   lambda: validate_faults(faults_doc, "mem")),
        _expect_ok("monotone check accepts a falling curve",
                   lambda: check_jam_monotonicity(faults_doc["points"], 0.05)),
        _expect_fail("monotone check rejects a rising curve",
                     lambda: check_jam_monotonicity(rising["points"], 0.05),
                     "success_rate rose"),
        _expect_fail("faults schema rejects inconsistent counts",
                     lambda: validate_faults(bad_counts, "mem"),
                     "!= trials"),
        _expect_fail("faults schema rejects out-of-range rates",
                     lambda: validate_faults(bad_rate, "mem"),
                     "above 1.0"),
        _expect_fail("faults schema rejects a wrong success_rate",
                     lambda: validate_faults(bad_success, "mem"),
                     "success_rate"),
        _expect_ok("adversary schema accepts a valid doc",
                   lambda: validate_adversary(adversary_doc, "mem")),
        _expect_ok("budget monotone check accepts a falling curve",
                   lambda: check_budget_monotonicity(
                       adversary_doc["points"], 0.05)),
        _expect_fail("budget monotone check rejects a rising curve",
                     lambda: check_budget_monotonicity(
                         adv_rising["points"], 0.05),
                     "success_rate rose"),
        _expect_fail("adversary schema rejects an unknown strategy",
                     lambda: validate_adversary(adv_bad_strategy, "mem"),
                     "adversary.strategy"),
        _expect_fail("adversary schema rejects an overspent budget",
                     lambda: validate_adversary(adv_overspent, "mem"),
                     "exceeds the aggregate budget"),
        _expect_fail("adversary schema rejects a broken failure breakdown",
                     lambda: validate_adversary(adv_bad_breakdown, "mem"),
                     "!= unsolved"),
        _expect_fail("adversary schema rejects effective > spent",
                     lambda: validate_adversary(adv_bad_effective, "mem"),
                     "adv_jams_effective"),
        _expect_ok("robust v2 schema accepts a valid doc (incl. lookahead "
                   "and fault compositions)",
                   lambda: validate_robust(robust_doc, "mem")),
        _expect_ok("delivery floor passes on the adaptive side",
                   lambda: check_delivery_floor(robust_doc["points"], 0.99)),
        _expect_fail("delivery floor rejects an under-floor adaptive point",
                     lambda: check_delivery_floor(
                         robust_floor_breach["points"], 0.99),
                     "below the delivery floor"),
        _expect_fail("delivery floor demands a bare-fails headline point",
                     lambda: check_delivery_floor(
                         robust_no_headline["points"], 0.99),
                     "headline"),
        _expect_ok("lookahead witness accepts static-loses/adaptive-holds",
                   lambda: check_lookahead_witness(robust_doc["points"],
                                                   0.99)),
        _expect_fail("lookahead witness rejects an all-ties grid",
                     lambda: check_lookahead_witness(robust_no_witness, 0.99),
                     "witness the static wrapper being beaten"),
        _expect_fail("robust schema rejects a broken bare breakdown",
                     lambda: validate_robust(robust_bad_breakdown, "mem"),
                     "!= unsolved"),
        _expect_fail("robust schema rejects confirmed > solved",
                     lambda: validate_robust(robust_bad_confirmed, "mem"),
                     "> solved"),
        _expect_fail("robust schema rejects broken epoch accounting",
                     lambda: validate_robust(robust_bad_epochs, "mem"),
                     "epochs_used"),
        _expect_fail("robust schema rejects a cooked overhead ratio",
                     lambda: validate_robust(robust_bad_overhead, "mem"),
                     "overhead_vs_static"),
        _expect_fail("robust schema rejects echo+backoff jams beyond spent",
                     lambda: validate_robust(robust_jam_books_cooked, "mem"),
                     "adv_jams_echo"),
    ]
    if not all(checks):
        print("check_bench_json: self-test FAILED", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_json: self-test OK ({len(checks)} checks)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("artifact", nargs="?",
                    help="bench JSON artifact to validate")
    ap.add_argument("--baseline",
                    help="committed engine artifact to compare batch "
                         "throughput against")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="max fractional drop in batch trials/sec vs the "
                         "baseline (default 0.20)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="require batch/coroutine speedup >= this on every "
                         "point")
    ap.add_argument("--min-trial-speedup", type=float, default=None,
                    help="require the v3 trial-parallel executor speedup "
                         ">= this on every small-active point carrying a "
                         "trial block (num_active <= "
                         f"{TRIAL_SPEEDUP_MAX_ACTIVE})")
    ap.add_argument("--monotone-tolerance", type=float, default=0.05,
                    help="allowed success_rate rise between adjacent jam "
                         "rates (default 0.05)")
    ap.add_argument("--delivery-floor", type=float, default=0.99,
                    help="minimum wrapped confirmed_rate required on every "
                         "robust point (default 0.99)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the validator's own unit checks and exit")
    args = ap.parse_args()
    if args.self_test:
        self_test()
        return
    if not args.artifact:
        print("an artifact path is required unless --self-test", file=sys.stderr)
        sys.exit(2)
    if not 0.0 <= args.max_regression < 1.0:
        print("--max-regression must be in [0, 1)", file=sys.stderr)
        sys.exit(2)
    if args.monotone_tolerance < 0.0:
        print("--monotone-tolerance must be >= 0", file=sys.stderr)
        sys.exit(2)
    if not 0.0 <= args.delivery_floor <= 1.0:
        print("--delivery-floor must be in [0, 1]", file=sys.stderr)
        sys.exit(2)

    try:
        run_checks(args)
    except ValidationFailure as e:
        print(f"check_bench_json: FAIL: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
