// crmc — command-line front end for the library.
//
//   crmc run   [--algo general] [--active 100] [--population 1048576]
//              [--channels 64] [--seed 1] [--cd strong|receiver|none]
//              [--trace] [--run-to-completion]
//              [--jam-rate P] [--erasure-rate P] [--flaky-cd P]
//              [--crash-rate P] [--fault-seed S]
//              [--adversary NAME] [--adversary-budget B] [--adversary-cap K]
//              [--adversary-obs activity|full] [--adversary-rate P]
//              [--adversary-seed S]
//   crmc race  [--active 2] [--population N] [--channels C] [--trials 200]
//   crmc sweep --vary channels --values 2,8,32,128,512
//              [--algo general] [--active 4096] [--population N]
//              [--trials 100] [--quantile 0.95]
//   crmc estimate [--active 512] [--population N] [--channels 64]
//              [--estimator geometric|density]
//   crmc drain [--packets 16] [--population N] [--channels C] [--seed 1]
//   crmc list
//
// Set CRMC_OUTPUT=csv for machine-readable tables.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/estimation.h"
#include "core/k_selection.h"
#include "harness/flags.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "robust/robust.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "simd/dispatch.h"
#include "support/rng.h"

namespace {

using namespace crmc;

[[noreturn]] void Usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: crmc <command> [flags]\n"
      "commands:\n"
      "  run       one execution; prints outcome, phases, optional trace\n"
      "  race      all algorithms on one instance (mean/p95/max rounds)\n"
      "  sweep     one algorithm across a parameter range\n"
      "  estimate  active-count estimation (geometric or density)\n"
      "  drain     k-selection: deliver every active node's packet\n"
      "  simd      kernel backends: compiled/available/active\n"
      "            (--require-vector exits 1 unless a vector backend is\n"
      "            active — the perf tier's dispatch canary)\n"
      "  list      registered algorithms\n"
      "common flags: --active N  --population N  --channels C  --seed S\n"
      "              --simd scalar|sse4.2|avx2|auto (force kernel backend)\n"
      "run flags:    --algo NAME  --cd strong|receiver|none  --trace\n"
      "              --run-to-completion  --rng xoshiro|philox\n"
      "              --jam-rate P --erasure-rate P --flaky-cd P\n"
      "              --crash-rate P --fault-seed S   (oblivious faults)\n"
      "adversary flags (run/race/sweep — budgeted reactive jamming):\n"
      "              --adversary none|oblivious_rate|primary_camper|\n"
      "                          greedy_reactive|random_budgeted|\n"
      "                          phase_tracking|lookahead|learning\n"
      "              --adversary-budget B (total channel-rounds)\n"
      "              --adversary-cap K    (max channels jammed per round)\n"
      "              --adversary-obs activity|full (eavesdropping strength)\n"
      "              --adversary-rate P   (oblivious_rate only)\n"
      "              --adversary-seed S   (selects the jamming schedule)\n"
      "robust flags (run/race/sweep — confirmed-delivery wrapper):\n"
      "              --robust             (enable the robust layer)\n"
      "              --robust-policy static|adaptive (self-tuning quorum\n"
      "                          and honeypot sizing; default static)\n"
      "              --max-epochs E       (protocol restarts, default 8)\n"
      "              --confirm-attempts A (echo rounds per candidate)\n"
      "              --backoff B          (backoff base, idle rounds)\n"
      "              --backoff-cap B      (backoff ceiling)\n"
      "              --epoch-budget R     (watchdog rounds/epoch; 0 derives)\n"
      "              --stall-budget R     (stall watchdog; 0 derives)\n"
      "sweep flags:  --algo NAME --vary channels|active --values a,b,c\n"
      "              --trials T --quantile Q\n"
      "race/sweep:   --max-rounds R caps every trial\n"
      "              --threads N splits trials over N worker threads\n"
      "              (0 = hardware concurrency; statistics are identical\n"
      "              for every N — trials are seed-indexed, not\n"
      "              thread-indexed)\n"
      "              --rng xoshiro|philox picks the draw generator\n"
      "              --no-batch forces the coroutine engine (the batch\n"
      "              fast path is bit-exact, so results are identical)\n"
      "              --no-fused forces the generic materialized round path\n"
      "              (disables StepProgram::FastRound; bit-exact, for\n"
      "              debugging the fused fast rounds without a rebuild)\n"
      "              --lanes W runs W trials per SIMD lockstep chunk on\n"
      "              the trial-parallel executor (requires --rng philox;\n"
      "              statistics are identical for every W)\n";
  std::exit(2);
}

mac::CdModel ParseCd(const std::string& name) {
  if (name == "strong") return mac::CdModel::kStrong;
  if (name == "receiver") return mac::CdModel::kReceiverOnly;
  if (name == "none") return mac::CdModel::kNone;
  Usage("unknown CD model '" + name + "'");
}

std::vector<std::int64_t> ParseValues(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  if (out.empty()) Usage("--values expects a comma-separated list");
  return out;
}

support::RngKind ParseRng(const std::string& name) {
  const std::optional<support::RngKind> kind = support::ParseRngKind(name);
  if (!kind) Usage("unknown rng '" + name + "' (xoshiro|philox)");
  return *kind;
}

// Global --simd flag: force the kernel dispatch backend before any trial
// runs. "auto" re-probes the CPU; anything unavailable is a hard error so
// a script asking for avx2 never silently measures scalar.
void ApplySimdFlag(const harness::Flags& flags) {
  const std::optional<std::string> name = flags.GetString("simd");
  if (!name) return;
  const std::optional<simd::Backend> backend = simd::ParseBackend(*name);
  if (!backend) Usage("unknown simd backend '" + *name + "'");
  if (!simd::SetBackend(*backend)) {
    Usage("simd backend '" + *name +
          "' is not available in this build/CPU");
  }
}

// Shared adversary flag block (run/race/sweep). The spec's own Validate and
// ValidateEngineConfig do the real checking; this only parses.
adversary::AdversarySpec ParseAdversaryFlags(const harness::Flags& flags) {
  adversary::AdversarySpec spec;
  const std::string name = flags.GetStringOr("adversary", "none");
  const std::optional<adversary::Kind> kind =
      adversary::ParseAdversaryKind(name);
  if (!kind || *kind == adversary::Kind::kScripted) {
    Usage("unknown adversary '" + name +
          "' (none|oblivious_rate|primary_camper|greedy_reactive|"
          "random_budgeted|phase_tracking|lookahead|learning)");
  }
  spec.kind = *kind;
  spec.rate = flags.GetDoubleOr("adversary-rate", 0.0);
  spec.budget = flags.GetIntOr("adversary-budget", 0);
  spec.per_round_cap =
      static_cast<std::int32_t>(flags.GetIntOr("adversary-cap", 1));
  spec.adv_seed =
      static_cast<std::uint64_t>(flags.GetIntOr("adversary-seed", 0));
  const std::string obs = flags.GetStringOr("adversary-obs", "full");
  const std::optional<adversary::ObsMode> mode =
      adversary::ParseObsMode(obs);
  if (!mode) Usage("unknown adversary-obs '" + obs + "' (activity|full)");
  spec.obs = *mode;
  return spec;
}

// Shared robust flag block (run/race/sweep). RobustSpec::Validate rejects
// tuning flags given without --robust with a distinct config error.
robust::RobustSpec ParseRobustFlags(const harness::Flags& flags) {
  robust::RobustSpec spec;
  spec.enabled = flags.GetBoolOr("robust", false);
  if (const std::optional<std::string> policy =
          flags.GetString("robust-policy")) {
    const std::optional<robust::PolicyKind> kind =
        robust::ParsePolicyKind(*policy);
    if (!kind) {
      Usage("unknown robust policy '" + *policy +
            "' (expected static|adaptive)");
    }
    spec.policy = *kind;
  }
  spec.max_epochs =
      static_cast<std::int32_t>(flags.GetIntOr("max-epochs", spec.max_epochs));
  spec.confirm_attempts = static_cast<std::int32_t>(
      flags.GetIntOr("confirm-attempts", spec.confirm_attempts));
  spec.backoff_base = flags.GetIntOr("backoff", spec.backoff_base);
  spec.backoff_cap = flags.GetIntOr("backoff-cap", spec.backoff_cap);
  spec.epoch_round_budget =
      flags.GetIntOr("epoch-budget", spec.epoch_round_budget);
  spec.stall_round_budget =
      flags.GetIntOr("stall-budget", spec.stall_round_budget);
  return spec;
}

sim::EngineConfig BaseConfig(const harness::Flags& flags) {
  sim::EngineConfig config;
  config.num_active =
      static_cast<std::int32_t>(flags.GetIntOr("active", 100));
  config.population = flags.GetIntOr("population", 1 << 20);
  config.channels =
      static_cast<std::int32_t>(flags.GetIntOr("channels", 64));
  config.seed = static_cast<std::uint64_t>(flags.GetIntOr("seed", 1));
  return config;
}

void RejectUnknownFlags(const harness::Flags& flags) {
  const auto unknown = flags.UnconsumedFlags();
  if (!unknown.empty()) Usage("unknown flag --" + unknown.front());
}

int CmdList() {
  harness::Table table({"name", "description"});
  for (const harness::AlgorithmInfo& info : harness::Algorithms()) {
    table.Row().Cells(info.name, info.description);
  }
  table.Print(std::cout);
  return 0;
}

int CmdRun(const harness::Flags& flags) {
  sim::EngineConfig config = BaseConfig(flags);
  const std::string algo = flags.GetStringOr("algo", "general");
  config.cd_model = ParseCd(flags.GetStringOr("cd", "strong"));
  config.record_trace = flags.GetBoolOr("trace", false);
  config.stop_when_solved = !flags.GetBoolOr("run-to-completion", false);
  config.max_rounds = flags.GetIntOr("max-rounds", 4'000'000);
  config.faults.jam_rate = flags.GetDoubleOr("jam-rate", 0.0);
  config.faults.erasure_rate = flags.GetDoubleOr("erasure-rate", 0.0);
  config.faults.flaky_cd_rate = flags.GetDoubleOr("flaky-cd", 0.0);
  config.faults.crash_rate = flags.GetDoubleOr("crash-rate", 0.0);
  config.faults.fault_seed =
      static_cast<std::uint64_t>(flags.GetIntOr("fault-seed", 0));
  config.adversary = ParseAdversaryFlags(flags);
  config.robust = ParseRobustFlags(flags);
  config.rng = ParseRng(flags.GetStringOr("rng", "xoshiro"));
  RejectUnknownFlags(flags);

  const harness::AlgorithmInfo& info = harness::AlgorithmByName(algo);
  if (info.requires_two_active && config.num_active != 2) {
    std::cerr << "note: " << algo << " is specified for --active 2; "
              << "forcing it\n";
    config.num_active = 2;
  }
  const sim::RunResult r = sim::Engine::Run(config, info.make());

  if (config.record_trace) {
    sim::RenderTrace(r.trace,
                     std::min<mac::ChannelId>(config.channels, 100), 80,
                     std::cout);
    std::cout << "\n";
  }
  if (r.solved) {
    std::cout << "solved in round " << r.solved_round + 1 << "\n";
  } else if (r.assumption_violated) {
    std::cout << "ABORTED after " << r.rounds_executed
              << " rounds (fault broke a protocol assumption)\n";
  } else {
    std::cout << "NOT solved within " << r.rounds_executed << " rounds";
    if (r.wedged) std::cout << " (wedged: " << r.stall_rounds
                            << " trailing stall rounds)";
    std::cout << "\n";
  }
  std::cout << "rounds executed: " << r.rounds_executed
            << ", transmissions: " << r.total_transmissions
            << " (max per node " << r.max_node_transmissions << ")\n";
  if (config.faults.Any() ||
      config.adversary.kind == adversary::Kind::kObliviousRate) {
    std::cout << "faults injected: " << r.faults_injected << " (jams "
              << r.jams_injected << ", erasures " << r.erasures_injected
              << ", cd flips " << r.cd_flips_injected << ", crashes "
              << r.crashed_nodes << ")\n";
  }
  if (config.adversary.Budgeted()) {
    std::cout << "adversary " << adversary::ToString(config.adversary.kind)
              << ": spent " << r.adv_jams_spent << "/"
              << config.adversary.budget << " jams, " << r.adv_jams_effective
              << " suppressed a lone delivery, held " << r.adv_rounds_held
              << " rounds (echo jams " << r.adv_jams_echo << ", backoff jams "
              << r.adv_jams_backoff << ")\n";
  }
  if (config.robust.enabled) {
    std::cout << "robust: " << (r.confirmed ? "confirmed" : "UNCONFIRMED")
              << ", epochs " << r.epochs_used << " (retries " << r.retries
              << "), confirm rounds " << r.confirm_rounds
              << ", backoff rounds " << r.backoff_rounds << "\n";
    if (config.robust.Adaptive()) {
      std::cout << "adaptive policy: quorum peak " << r.confirm_quorum_peak
                << ", extra echoes " << r.adaptive_confirm_extra
                << ", honeypot rounds trimmed " << r.adaptive_backoff_trimmed
                << "\n";
    }
  }
  for (const char* phase : {"reduce_done", "rename_done", "elect_done"}) {
    const std::int64_t mark = r.LastPhaseMark(phase);
    // Marks record the round index after the step = rounds consumed.
    if (mark >= 0) std::cout << phase << " after round " << mark << "\n";
  }
  return r.solved ? 0 : 1;
}

int CmdRace(const harness::Flags& flags) {
  harness::TrialSpec spec;
  spec.num_active = static_cast<std::int32_t>(flags.GetIntOr("active", 100));
  spec.population = flags.GetIntOr("population", 1 << 20);
  spec.channels = static_cast<std::int32_t>(flags.GetIntOr("channels", 64));
  spec.max_rounds = flags.GetIntOr("max-rounds", spec.max_rounds);
  spec.use_batch_engine = !flags.GetBoolOr("no-batch", false);
  spec.fused_rounds = !flags.GetBoolOr("no-fused", false);
  spec.lane_width = static_cast<std::int32_t>(flags.GetIntOr("lanes", 1));
  spec.rng = ParseRng(flags.GetStringOr("rng", "xoshiro"));
  spec.adversary = ParseAdversaryFlags(flags);
  spec.robust = ParseRobustFlags(flags);
  const auto trials = static_cast<std::int32_t>(flags.GetIntOr("trials", 200));
  const auto threads =
      static_cast<std::int32_t>(flags.GetIntOr("threads", 0));
  RejectUnknownFlags(flags);

  // Under an adversary the failure *breakdown* is the story (timeouts vs
  // wedged livelocks vs deluded silent exits) plus how much budget the
  // jammer actually landed. With the robust wrapper on, confirmed
  // deliveries and epoch consumption join the table.
  const bool adv = spec.adversary.Budgeted();
  const bool rob = spec.robust.enabled;
  std::vector<std::string> columns{"algorithm", "mean", "p95", "max",
                                   "unsolved"};
  if (adv) {
    columns.insert(columns.end(), {"timed_out", "wedged", "deluded",
                                   "adv_spent", "adv_effective"});
  }
  if (rob) columns.insert(columns.end(), {"confirmed", "epochs"});
  harness::Table table(columns);
  for (const harness::AlgorithmInfo& info : harness::Algorithms()) {
    if (info.requires_two_active && spec.num_active != 2) continue;
    const harness::TrialSetResult r = harness::RunTrials(
        spec, harness::HandleFor(info), trials, /*keep_runs=*/false, threads);
    auto row = table.Row();
    row.Cells(info.name, r.summary.mean, r.summary.p95, r.summary.max,
              static_cast<std::int64_t>(r.unsolved));
    if (adv) {
      row.Cells(static_cast<std::int64_t>(r.timed_out),
                static_cast<std::int64_t>(r.wedged),
                static_cast<std::int64_t>(r.deluded), r.adv_jams_spent,
                r.adv_jams_effective);
    }
    if (rob) {
      row.Cells(static_cast<std::int64_t>(r.confirmed), r.epochs_used);
    }
  }
  table.Print(std::cout);
  return 0;
}

int CmdSweep(const harness::Flags& flags) {
  const std::string algo = flags.GetStringOr("algo", "general");
  const std::string vary = flags.GetStringOr("vary", "channels");
  const auto values =
      ParseValues(flags.GetStringOr("values", "2,8,32,128,512,2048"));
  const auto trials = static_cast<std::int32_t>(flags.GetIntOr("trials", 100));
  const double quantile = flags.GetDoubleOr("quantile", 0.95);
  harness::TrialSpec base;
  base.num_active = static_cast<std::int32_t>(flags.GetIntOr("active", 4096));
  base.population = flags.GetIntOr("population", 1 << 20);
  base.channels = static_cast<std::int32_t>(flags.GetIntOr("channels", 64));
  base.max_rounds = flags.GetIntOr("max-rounds", base.max_rounds);
  base.use_batch_engine = !flags.GetBoolOr("no-batch", false);
  base.fused_rounds = !flags.GetBoolOr("no-fused", false);
  base.lane_width = static_cast<std::int32_t>(flags.GetIntOr("lanes", 1));
  base.rng = ParseRng(flags.GetStringOr("rng", "xoshiro"));
  base.adversary = ParseAdversaryFlags(flags);
  base.robust = ParseRobustFlags(flags);
  const auto threads =
      static_cast<std::int32_t>(flags.GetIntOr("threads", 0));
  RejectUnknownFlags(flags);
  if (vary != "channels" && vary != "active") {
    Usage("--vary must be 'channels' or 'active'");
  }

  const harness::ProtocolHandle handle =
      harness::HandleFor(harness::AlgorithmByName(algo));
  harness::Table table({vary, "mean", "q" + harness::FormatDouble(quantile, 2),
                        "max"});
  for (const std::int64_t v : values) {
    harness::TrialSpec spec = base;
    if (vary == "channels") {
      spec.channels = static_cast<std::int32_t>(v);
    } else {
      spec.num_active = static_cast<std::int32_t>(v);
    }
    const harness::TrialSetResult r = harness::RunTrials(
        spec, handle, trials, /*keep_runs=*/false, threads);
    table.Row().Cells(v, r.summary.mean,
                      harness::Quantile(r.solved_rounds, quantile),
                      r.summary.max);
  }
  table.Print(std::cout);
  return 0;
}

int CmdEstimate(const harness::Flags& flags) {
  sim::EngineConfig config = BaseConfig(flags);
  const std::string estimator =
      flags.GetStringOr("estimator", "geometric");
  RejectUnknownFlags(flags);
  config.stop_when_solved = false;
  const auto factory = estimator == "geometric"
                           ? core::MakeGeometricEstimateOnly()
                       : estimator == "density"
                           ? core::MakeDensityEstimateOnly()
                           : (Usage("unknown estimator '" + estimator + "'"),
                              sim::ProtocolFactory{});
  const sim::RunResult r = sim::Engine::Run(config, factory);
  const auto exponents = r.MetricValues("estimate_log2");
  std::cout << "agreed estimate: 2^" << exponents.front() << " = "
            << (std::int64_t{1} << exponents.front()) << "  (true |A| = "
            << config.num_active << ") in " << r.rounds_executed
            << " rounds\n";
  return 0;
}

int CmdDrain(const harness::Flags& flags) {
  sim::EngineConfig config = BaseConfig(flags);
  config.num_active =
      static_cast<std::int32_t>(flags.GetIntOr("packets", 16));
  RejectUnknownFlags(flags);
  config.stop_when_solved = false;
  config.max_rounds = 16'000'000;
  const sim::RunResult r =
      sim::Engine::Run(config, core::MakeKSelection());
  std::cout << "delivered " << r.MetricValues("delivered_instance").size()
            << "/" << config.num_active << " packets in "
            << r.rounds_executed << " rounds\n";
  return r.all_terminated ? 0 : 1;
}

int CmdSimd(const harness::Flags& flags) {
  const bool require_vector = flags.GetBoolOr("require-vector", false);
  RejectUnknownFlags(flags);
  harness::Table table({"backend", "compiled", "available", "active"});
  const simd::Backend active = simd::ActiveBackend();
  const struct {
    simd::Backend backend;
    bool compiled;
  } rows[] = {
      {simd::Backend::kScalar, true},
#if defined(CRMC_SIMD_HAS_SSE42)
      {simd::Backend::kSse42, true},
#else
      {simd::Backend::kSse42, false},
#endif
#if defined(CRMC_SIMD_HAS_AVX2)
      {simd::Backend::kAvx2, true},
#else
      {simd::Backend::kAvx2, false},
#endif
  };
  for (const auto& row : rows) {
    table.Row().Cells(simd::ToString(row.backend),
                      row.compiled ? "yes" : "no",
                      simd::BackendAvailable(row.backend) ? "yes" : "no",
                      row.backend == active ? "yes" : "no");
  }
  table.Print(std::cout);
  if (require_vector && active == simd::Backend::kScalar) {
    std::cerr << "error: --require-vector, but dispatch is scalar\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];
  const harness::Flags flags = harness::Flags::Parse(argc - 1, argv + 1);
  try {
    ApplySimdFlag(flags);
    if (command == "list") return CmdList();
    if (command == "run") return CmdRun(flags);
    if (command == "race") return CmdRace(flags);
    if (command == "sweep") return CmdSweep(flags);
    if (command == "estimate") return CmdEstimate(flags);
    if (command == "drain") return CmdDrain(flags);
    if (command == "simd") return CmdSimd(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  Usage("unknown command '" + command + "'");
}
