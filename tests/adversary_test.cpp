// Tests for the budgeted adaptive-adversary subsystem (src/adversary/):
// spec validation (including the jam-rate conflict bugfix), BudgetLedger
// never overspending (property test), resolver-level jam semantics,
// scripted replay determinism, zero-budget purity, oblivious_rate
// equivalence, and batch-vs-coroutine parity under every strategy for both
// RNG kinds.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/budget.h"
#include "adversary/observation.h"
#include "core/general.h"
#include "core/two_active.h"
#include "mac/channel.h"
#include "mac/resolver.h"
#include "robust/robust.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/step_program.h"
#include "sim/task.h"
#include "support/rng.h"

namespace crmc {
namespace {

using adversary::AdversaryRun;
using adversary::AdversarySpec;
using adversary::BudgetLedger;
using adversary::Kind;
using adversary::ObsMode;
using adversary::ScriptEntry;
using mac::Action;
using mac::Feedback;
using mac::Message;
using mac::Resolver;
using mac::RoundSummary;

// --- parsing and validation ------------------------------------------------

TEST(AdversarySpecTest, KindNamesRoundTrip) {
  for (const Kind kind :
       {Kind::kNone, Kind::kObliviousRate, Kind::kPrimaryCamper,
        Kind::kGreedyReactive, Kind::kRandomBudgeted, Kind::kScripted,
        Kind::kPhaseTracking, Kind::kLookahead, Kind::kLearning}) {
    const auto parsed = adversary::ParseAdversaryKind(adversary::ToString(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(adversary::ParseAdversaryKind("camper").has_value());
  EXPECT_FALSE(adversary::ParseObsMode("both").has_value());
  EXPECT_EQ(*adversary::ParseObsMode("activity"), ObsMode::kActivity);
  EXPECT_EQ(*adversary::ParseObsMode("full"), ObsMode::kFull);
}

std::string ThrownMessage(const AdversarySpec& spec) {
  try {
    spec.Validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(AdversarySpecTest, DefaultIsInactiveAndValid) {
  const AdversarySpec spec;
  EXPECT_FALSE(spec.Active());
  EXPECT_FALSE(spec.Budgeted());
  EXPECT_NO_THROW(spec.Validate());
}

TEST(AdversarySpecTest, ValidateRejectsEachConstraintDistinctly) {
  AdversarySpec spec;
  spec.kind = Kind::kObliviousRate;
  spec.rate = 1.5;
  EXPECT_NE(ThrownMessage(spec).find("rate must be in [0, 1]"),
            std::string::npos);
  spec = AdversarySpec{};
  spec.kind = Kind::kGreedyReactive;
  spec.rate = 0.5;
  EXPECT_NE(ThrownMessage(spec).find("only applies to --adversary"),
            std::string::npos);
  spec = AdversarySpec{};
  spec.kind = Kind::kPrimaryCamper;
  spec.budget = -1;
  EXPECT_NE(ThrownMessage(spec).find("budget must be >= 0"),
            std::string::npos);
  spec = AdversarySpec{};
  spec.kind = Kind::kObliviousRate;
  spec.budget = 10;
  EXPECT_NE(ThrownMessage(spec).find("budget only applies"),
            std::string::npos);
  spec = AdversarySpec{};
  spec.kind = Kind::kRandomBudgeted;
  spec.per_round_cap = 0;
  EXPECT_NE(ThrownMessage(spec).find("cap must be >= 1"), std::string::npos);
  spec = AdversarySpec{};
  spec.kind = Kind::kPrimaryCamper;
  spec.script.push_back({0, 1});
  EXPECT_NE(ThrownMessage(spec).find("script only applies"),
            std::string::npos);
  spec = AdversarySpec{};
  spec.kind = Kind::kScripted;
  EXPECT_NE(ThrownMessage(spec).find("non-empty script"), std::string::npos);
  spec.script.push_back({-1, 1});
  EXPECT_NE(ThrownMessage(spec).find("round >= 0"), std::string::npos);
}

// The satellite bugfix: an adversary combined with an explicit jam_rate must
// be a distinct hard error from ValidateEngineConfig, never silent
// double-jamming.
TEST(AdversarySpecTest, ObliviousRatePlusJamRateIsDistinctConfigError) {
  sim::EngineConfig config;
  config.num_active = 2;
  config.adversary.kind = Kind::kObliviousRate;
  config.adversary.rate = 0.1;
  config.faults.jam_rate = 0.2;
  try {
    sim::ValidateEngineConfig(config);
    FAIL() << "conflicting config must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("conflicting fault configuration"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("oblivious_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("--jam-rate"), std::string::npos) << what;
  }
}

TEST(AdversarySpecTest, ReactiveAdversaryPlusJamRateAlsoConflicts) {
  sim::EngineConfig config;
  config.num_active = 2;
  config.adversary.kind = Kind::kGreedyReactive;
  config.adversary.budget = 5;
  config.faults.jam_rate = 0.2;
  EXPECT_THROW(sim::ValidateEngineConfig(config), std::invalid_argument);
  // Other fault kinds compose fine with an adversary.
  config.faults.jam_rate = 0.0;
  config.faults.erasure_rate = 0.1;
  config.faults.crash_rate = 0.01;
  EXPECT_NO_THROW(sim::ValidateEngineConfig(config));
}

TEST(AdversarySpecTest, ScriptChannelBeyondNetworkRejected) {
  sim::EngineConfig config;
  config.num_active = 2;
  config.channels = 4;
  config.adversary.kind = Kind::kScripted;
  config.adversary.budget = 1;
  config.adversary.script.push_back({0, 9});
  EXPECT_THROW(sim::ValidateEngineConfig(config), std::invalid_argument);
  config.adversary.script.back().channel = 4;
  EXPECT_NO_THROW(sim::ValidateEngineConfig(config));
}

// --- BudgetLedger ----------------------------------------------------------

TEST(BudgetLedgerTest, AllowanceBindsOnCapRemainingAndChannels) {
  BudgetLedger ledger(/*total=*/5, /*per_round_cap=*/3);
  EXPECT_EQ(ledger.RoundAllowance(/*channels=*/8), 3);   // cap binds
  EXPECT_EQ(ledger.RoundAllowance(/*channels=*/2), 2);   // channels bind
  ledger.Charge(3);
  EXPECT_EQ(ledger.spent(), 3);
  EXPECT_EQ(ledger.RoundAllowance(8), 2);  // remaining budget binds
  ledger.Charge(2);
  EXPECT_EQ(ledger.remaining(), 0);
  EXPECT_EQ(ledger.RoundAllowance(8), 0);
}

TEST(BudgetLedgerTest, ZeroBudgetLedgerGrantsNothing) {
  const BudgetLedger ledger;
  EXPECT_EQ(ledger.RoundAllowance(64), 0);
  EXPECT_EQ(ledger.total(), 0);
}

// Property test: across thousands of randomized (strategy, budget, cap,
// channels) configurations, the driver never lets a strategy overspend the
// budget, exceed the per-round cap, or emit an invalid jam set.
TEST(BudgetLedgerTest, DriverNeverOverspendsAcross2000Seeds) {
  support::RandomSource meta(0xB0D6E7);
  for (int trial = 0; trial < 2000; ++trial) {
    AdversarySpec spec;
    const std::int64_t pick = meta.UniformInt(0, 6);
    spec.kind = pick == 0   ? Kind::kPrimaryCamper
                : pick == 1 ? Kind::kGreedyReactive
                : pick == 2 ? Kind::kRandomBudgeted
                : pick == 3 ? Kind::kPhaseTracking
                : pick == 4 ? Kind::kLookahead
                : pick == 5 ? Kind::kLearning
                            : Kind::kScripted;
    spec.budget = meta.UniformInt(0, 40);
    spec.per_round_cap = static_cast<std::int32_t>(meta.UniformInt(1, 6));
    spec.adv_seed = static_cast<std::uint64_t>(trial);
    const auto channels = static_cast<std::int32_t>(meta.UniformInt(1, 12));
    if (spec.kind == Kind::kScripted) {
      const std::int64_t entries = meta.UniformInt(1, 30);
      for (std::int64_t e = 0; e < entries; ++e) {
        spec.script.push_back(
            {meta.UniformInt(0, 19),
             static_cast<mac::ChannelId>(meta.UniformInt(1, channels))});
      }
    }
    AdversaryRun run(spec, /*run_seed=*/0x5EED + trial);
    ASSERT_TRUE(run.active());
    std::int64_t total = 0;
    for (std::int64_t round = 0; round < 20; ++round) {
      const auto jams = run.PlanRound(round, channels);
      ASSERT_LE(static_cast<std::int64_t>(jams.size()), spec.per_round_cap);
      ASSERT_LE(static_cast<std::int32_t>(jams.size()), channels);
      for (std::size_t i = 0; i < jams.size(); ++i) {
        ASSERT_GE(jams[i], 1);
        ASSERT_LE(jams[i], channels);
        for (std::size_t j = 0; j < i; ++j) ASSERT_NE(jams[i], jams[j]);
      }
      total += static_cast<std::int64_t>(jams.size());
      ASSERT_LE(total, spec.budget);
      ASSERT_EQ(run.ledger().spent(), total);
    }
    // Once the budget is gone, every further round plans nothing.
    if (run.ledger().remaining() == 0) {
      EXPECT_TRUE(run.PlanRound(99, channels).empty());
    }
  }
}

// --- resolver-level jam semantics ------------------------------------------

TEST(AdversaryResolver, JamForcesCollisionAndSuppressesLoneDelivery) {
  Resolver r(4);
  std::vector<Feedback> fb;
  const std::vector<mac::ChannelId> jams{1};
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Transmit(1, Message{5}), Action::Listen(1),
                          Action::Transmit(2, Message{7})},
      fb, nullptr, jams);
  EXPECT_TRUE(fb[0].Collision());  // lone transmitter drowned by the jam
  EXPECT_TRUE(fb[1].Collision());
  EXPECT_TRUE(fb[2].MessageHeard());  // channel 2 untouched by the jam
  EXPECT_EQ(s.primary_transmitters, 1);
  EXPECT_FALSE(s.primary_lone_delivered);
  EXPECT_EQ(s.lone_deliveries, 1);  // channel 2 only
  EXPECT_EQ(s.adv_jams, 1);
  EXPECT_EQ(s.adv_jams_effective, 1);
}

TEST(AdversaryResolver, JamOnCollisionOrEmptyChannelSpendsWithoutEffect) {
  Resolver r(4);
  std::vector<Feedback> fb;
  const std::vector<mac::ChannelId> jams{2, 3};  // 2: collision, 3: empty
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Transmit(1, Message{5}),
                          Action::Transmit(2), Action::Transmit(2)},
      fb, nullptr, jams);
  EXPECT_TRUE(fb[0].MessageHeard());  // primary unaffected
  EXPECT_TRUE(fb[1].Collision());
  EXPECT_TRUE(fb[2].Collision());
  EXPECT_TRUE(s.primary_lone_delivered);
  EXPECT_EQ(s.adv_jams, 2);
  EXPECT_EQ(s.adv_jams_effective, 0);  // neither jam met a lone transmitter
}

TEST(AdversaryResolver, JamMarkOnUntouchedChannelClearsNextRound) {
  Resolver r(4);
  std::vector<Feedback> fb;
  // Round 1: jam channel 3, which nobody touches.
  r.Resolve(std::vector<Action>{Action::Transmit(1, Message{1})}, fb, nullptr,
            std::vector<mac::ChannelId>{3});
  // Round 2: a lone transmission on channel 3 must deliver — the stale jam
  // mark may not leak across rounds.
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Transmit(3, Message{9}), Action::Listen(3)},
      fb);
  EXPECT_TRUE(fb[0].MessageHeard());
  EXPECT_TRUE(fb[1].MessageHeard());
  EXPECT_EQ(s.lone_deliveries, 1);
  EXPECT_EQ(s.adv_jams, 0);
}

TEST(AdversaryResolver, ObliviousDrawsSkipAdversaryJammedChannels) {
  // erasure_rate 1 would erase every lone delivery; on the adversary-jammed
  // channel no oblivious draw happens at all, so the feedback is the jam's
  // collision, not an erasure's silence — and the fault counters stay 0 for
  // that channel.
  mac::FaultSpec spec;
  spec.erasure_rate = 1.0;
  mac::FaultInjector inj(spec, /*run_seed=*/1);
  Resolver r(4);
  std::vector<Feedback> fb;
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Transmit(1, Message{5}),
                          Action::Transmit(2, Message{6})},
      fb, &inj, std::vector<mac::ChannelId>{1});
  EXPECT_TRUE(fb[0].Collision());        // adversary jam, not erasure
  EXPECT_TRUE(fb[1].Silence());          // oblivious erasure still fires
  EXPECT_EQ(inj.counters().erasures, 1);  // channel 2 only
  EXPECT_EQ(s.adv_jams_effective, 1);
  EXPECT_EQ(s.lone_deliveries, 0);
}

// --- engine-level semantics ------------------------------------------------

sim::Task<void> TransmitPrimaryForever(sim::NodeContext& ctx) {
  for (;;) co_await ctx.Transmit(mac::kPrimaryChannel);
}

sim::EngineConfig OneForeverConfig(std::int64_t max_rounds) {
  sim::EngineConfig config;
  config.population = 8;
  config.num_active = 1;
  config.channels = 4;
  config.max_rounds = max_rounds;
  config.seed = 42;
  return config;
}

TEST(AdversaryEngine, ScriptedJamDelaysSolveByExactlyItsRounds) {
  // One lone transmitter solves in round 0 pristine; a scripted jam on the
  // primary channel in rounds 0 and 1 pushes the solve to round 2.
  sim::EngineConfig config = OneForeverConfig(10);
  config.adversary.kind = Kind::kScripted;
  config.adversary.budget = 2;
  config.adversary.script = {{0, 1}, {1, 1}};
  const sim::RunResult r = sim::Engine::Run(config, [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  });
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.solved_round, 2);
  EXPECT_EQ(r.adv_jams_spent, 2);
  EXPECT_EQ(r.adv_jams_effective, 2);
}

TEST(AdversaryEngine, ScriptedJamOnIdleChannelIsSpentButIneffective) {
  sim::EngineConfig config = OneForeverConfig(10);
  config.adversary.kind = Kind::kScripted;
  config.adversary.budget = 1;
  config.adversary.script = {{0, 3}};  // nobody transmits on channel 3
  const sim::RunResult r = sim::Engine::Run(config, [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  });
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.solved_round, 0);
  EXPECT_EQ(r.adv_jams_spent, 1);
  EXPECT_EQ(r.adv_jams_effective, 0);
}

TEST(AdversaryEngine, BudgetTruncatesScript) {
  sim::EngineConfig config = OneForeverConfig(10);
  config.adversary.kind = Kind::kScripted;
  config.adversary.budget = 1;  // script asks for 2 jams; only 1 affordable
  config.adversary.script = {{0, 1}, {1, 1}};
  const sim::RunResult r = sim::Engine::Run(config, [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  });
  EXPECT_EQ(r.solved_round, 1);
  EXPECT_EQ(r.adv_jams_spent, 1);
}

TEST(AdversaryEngine, PrimaryCamperHoldsTheSolveChannelWhileBudgetLasts) {
  sim::EngineConfig config = OneForeverConfig(20);
  config.adversary.kind = Kind::kPrimaryCamper;
  config.adversary.budget = 7;
  const sim::RunResult r = sim::Engine::Run(config, [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  });
  EXPECT_EQ(r.solved_round, 7);  // exactly budget-many suppressed rounds
  EXPECT_EQ(r.adv_jams_spent, 7);
  EXPECT_EQ(r.adv_jams_effective, 7);
}

// --- lookahead and learning strategies -------------------------------------

// Drives an AdversaryRun by hand through a scripted activity pattern and
// checks the wrapper-aware strategies' hold/strike decisions round by round.
struct StrategyHarness {
  explicit StrategyHarness(Kind kind) : resolver(4) {
    AdversarySpec spec;
    spec.kind = kind;
    spec.budget = 1000;
    spec.per_round_cap = 3;
    run = AdversaryRun(spec, /*run_seed=*/0xC0FFEE);
  }

  // Plans the next round, resolves `actions` under the planned jams, and
  // feeds the observation back. Returns the planned jam set.
  std::vector<mac::ChannelId> Step(std::vector<Action> actions) {
    const auto jams = run.PlanRound(round, /*channels=*/4);
    const std::vector<mac::ChannelId> planned(jams.begin(), jams.end());
    std::vector<Feedback> fb;
    resolver.Resolve(actions, fb, nullptr, planned);
    run.ObserveRound(resolver, round);
    ++round;
    return planned;
  }

  Resolver resolver;
  AdversaryRun run;
  std::int64_t round = 0;
};

const std::vector<Action> kSilent{Action::Listen(1)};

TEST(AdversaryStrategies, LookaheadStrikesVerdictRoundThenHoldsHoneypots) {
  StrategyHarness h(Kind::kLookahead);
  // No observation yet: the opening round is jammed like a verdict round.
  EXPECT_EQ(h.Step(kSilent), std::vector<mac::ChannelId>{1});
  // First silent round observed -> lone strike on primary (a robust-layer
  // verdict/echo round also looks like this; the strike is worth one jam).
  EXPECT_EQ(h.Step(kSilent), std::vector<mac::ChannelId>{1});
  // Silence streak >= 2 reads as a backoff honeypot: hold, indefinitely.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(h.Step(kSilent).empty());
  EXPECT_EQ(h.run.rounds_held(), 3);
  EXPECT_EQ(h.run.ledger().spent(), 2);
  // Activity resumes this round; the plan itself still sees silence (hold),
  // the strike lands next round once the activity has been observed.
  EXPECT_TRUE(h.Step({Action::Transmit(1, Message{1}), Action::Transmit(2),
                      Action::Transmit(2), Action::Transmit(3, Message{3})})
                  .empty());
  // Observed sparse activity triggers the endgame strike: primary first,
  // then side channels sparsest-first (ch3 with 1 tx before ch2 with 2).
  EXPECT_EQ(
      h.Step({Action::Transmit(1), Action::Transmit(1), Action::Transmit(1)}),
      (std::vector<mac::ChannelId>{1, 3, 2}));
  // The dense primary (3+ tx) just observed reads as broadcast: hold.
  EXPECT_TRUE(h.Step(kSilent).empty());
  EXPECT_EQ(h.run.rounds_held(), 5);
}

TEST(AdversaryStrategies, LearningBanksTheGapAndStopsPayingTheSilenceToll) {
  StrategyHarness h(Kind::kLearning);
  EXPECT_EQ(h.Step(kSilent), std::vector<mac::ChannelId>{1});  // opening
  // Pre-bank, learning behaves exactly like lookahead: strike the first
  // silent round, hold from the second.
  EXPECT_EQ(h.Step(kSilent), std::vector<mac::ChannelId>{1});
  EXPECT_TRUE(h.Step(kSilent).empty());
  EXPECT_TRUE(h.Step({Action::Transmit(1, Message{9})}).empty());
  // That completed 3-round silence run, bounded by activity, banks
  // longest_gap = 3. From now on silence up to 2*3 = 6 rounds is explained
  // by the learned doubling schedule: no first-round toll, pure hold.
  EXPECT_EQ(h.Step(kSilent), std::vector<mac::ChannelId>{1});  // endgame
  const std::int64_t spent_before = h.run.ledger().spent();
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(h.Step(kSilent).empty());
  EXPECT_EQ(h.run.ledger().spent(), spent_before);
  // The 7th silent round exceeds the learned cap: silence the schedule
  // cannot explain reads as a stalled all-listen stage — strike.
  EXPECT_EQ(h.Step(kSilent), std::vector<mac::ChannelId>{1});
}

TEST(AdversaryStrategies, HoldAccountingCountsAllowanceRoundsWithoutJams) {
  // A camper never holds; an exhausted ledger never holds (no allowance).
  sim::EngineConfig config = OneForeverConfig(20);
  config.adversary.kind = Kind::kPrimaryCamper;
  config.adversary.budget = 7;
  const sim::RunResult camper =
      sim::Engine::Run(config, [](sim::NodeContext& ctx) {
        return TransmitPrimaryForever(ctx);
      });
  EXPECT_EQ(camper.adv_rounds_held, 0);
}

// --- determinism and purity ------------------------------------------------

void ExpectIdenticalRuns(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.solved_round, b.solved_round);
  EXPECT_EQ(a.all_solved_rounds, b.all_solved_rounds);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.all_terminated, b.all_terminated);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.max_node_transmissions, b.max_node_transmissions);
  EXPECT_DOUBLE_EQ(a.mean_node_transmissions, b.mean_node_transmissions);
  EXPECT_EQ(a.jams_injected, b.jams_injected);
  EXPECT_EQ(a.erasures_injected, b.erasures_injected);
  EXPECT_EQ(a.cd_flips_injected, b.cd_flips_injected);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.adv_jams_spent, b.adv_jams_spent);
  EXPECT_EQ(a.adv_jams_effective, b.adv_jams_effective);
  EXPECT_EQ(a.stall_rounds, b.stall_rounds);
  EXPECT_EQ(a.wedged, b.wedged);
  EXPECT_EQ(a.assumption_violated, b.assumption_violated);
  EXPECT_EQ(a.epochs_used, b.epochs_used);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.confirm_rounds, b.confirm_rounds);
  EXPECT_EQ(a.backoff_rounds, b.backoff_rounds);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(a.adv_rounds_held, b.adv_rounds_held);
  EXPECT_EQ(a.adv_jams_echo, b.adv_jams_echo);
  EXPECT_EQ(a.adv_jams_backoff, b.adv_jams_backoff);
  EXPECT_EQ(a.adaptive_confirm_extra, b.adaptive_confirm_extra);
  EXPECT_EQ(a.adaptive_backoff_trimmed, b.adaptive_backoff_trimmed);
  EXPECT_EQ(a.confirm_quorum_peak, b.confirm_quorum_peak);
}

TEST(AdversaryEngine, ScriptedReplayIsDeterministic) {
  sim::EngineConfig config;
  config.population = 1024;
  config.num_active = 16;
  config.channels = 8;
  config.max_rounds = 200;
  config.seed = 77;
  config.adversary.kind = Kind::kScripted;
  config.adversary.budget = 6;
  config.adversary.per_round_cap = 2;
  config.adversary.script = {{0, 1}, {0, 2}, {3, 1}, {5, 4}, {7, 1}, {9, 2}};
  const auto factory = core::MakeGeneral();
  const sim::RunResult first = sim::Engine::Run(config, factory);
  const sim::RunResult second = sim::Engine::Run(config, factory);
  ExpectIdenticalRuns(first, second);
  EXPECT_GT(first.adv_jams_spent, 0);
}

TEST(AdversaryEngine, ZeroBudgetIsBitIdenticalToPristine) {
  // A budgeted adversary with nothing to spend must leave no trace — the
  // run is bit-identical to one without the adversary layer, coroutine and
  // batch engines alike.
  sim::EngineConfig pristine;
  pristine.population = 1 << 12;
  pristine.num_active = 32;
  pristine.channels = 16;
  pristine.max_rounds = 2000;
  pristine.record_trace = true;
  for (const Kind kind : {Kind::kPrimaryCamper, Kind::kGreedyReactive,
                          Kind::kRandomBudgeted, Kind::kPhaseTracking}) {
    for (std::uint64_t seed = 900; seed < 910; ++seed) {
      pristine.seed = seed;
      sim::EngineConfig adv = pristine;
      adv.adversary.kind = kind;
      adv.adversary.budget = 0;
      const auto factory = core::MakeGeneral();
      const sim::RunResult base = sim::Engine::Run(pristine, factory);
      const sim::RunResult guarded = sim::Engine::Run(adv, factory);
      ExpectIdenticalRuns(base, guarded);
      ASSERT_EQ(base.trace.size(), guarded.trace.size());
      EXPECT_EQ(guarded.adv_jams_spent, 0);
    }
  }
}

TEST(AdversaryEngine, ObliviousRateIsBitIdenticalToJamRate) {
  sim::EngineConfig jammed;
  jammed.population = 1 << 12;
  jammed.num_active = 32;
  jammed.channels = 16;
  jammed.max_rounds = 2000;
  jammed.faults.jam_rate = 0.08;
  jammed.faults.fault_seed = 5;
  sim::EngineConfig lowered = jammed;
  lowered.faults.jam_rate = 0.0;
  lowered.adversary.kind = Kind::kObliviousRate;
  lowered.adversary.rate = 0.08;
  const auto factory = core::MakeGeneral();
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    jammed.seed = seed;
    lowered.seed = seed;
    const sim::RunResult a = sim::Engine::Run(jammed, factory);
    const sim::RunResult b = sim::Engine::Run(lowered, factory);
    ExpectIdenticalRuns(a, b);
    EXPECT_EQ(b.adv_jams_spent, 0);  // oblivious jams land in jams_injected
  }
}

TEST(AdversaryEngine, AdvSeedSelectsADifferentSchedule) {
  sim::EngineConfig config;
  config.population = 1 << 10;
  config.num_active = 2;
  config.channels = 8;
  config.max_rounds = 400;
  config.seed = 11;
  config.adversary.kind = Kind::kRandomBudgeted;
  config.adversary.budget = 64;
  config.adversary.per_round_cap = 4;
  const auto factory = core::MakeTwoActive();
  config.adversary.adv_seed = 1;
  const sim::RunResult a = sim::Engine::Run(config, factory);
  config.adversary.adv_seed = 2;
  const sim::RunResult b = sim::Engine::Run(config, factory);
  // Same protocol randomness, different jamming schedule: some observable
  // difference must appear across a handful of statistics.
  EXPECT_TRUE(a.solved_round != b.solved_round ||
              a.total_transmissions != b.total_transmissions ||
              a.adv_jams_effective != b.adv_jams_effective);
}

// --- batch-vs-coroutine parity under every strategy ------------------------

void CheckAdversaryParity(sim::EngineConfig config,
                          const sim::ProtocolFactory& coroutine,
                          sim::StepProgram& program, int seeds,
                          std::uint64_t seed_base = 41'000) {
  sim::BatchEngine engine;
  for (int t = 0; t < seeds; ++t) {
    config.seed = seed_base + static_cast<std::uint64_t>(t);
    const sim::RunResult coro = sim::Engine::Run(config, coroutine);
    const sim::RunResult batch = engine.Run(config, program);
    SCOPED_TRACE(::testing::Message() << "seed=" << config.seed);
    ExpectIdenticalRuns(coro, batch);
    if (::testing::Test::HasFailure()) break;
  }
}

AdversarySpec StrategySpec(Kind kind) {
  AdversarySpec spec;
  spec.kind = kind;
  spec.budget = 24;
  spec.per_round_cap = kind == Kind::kPrimaryCamper ? 1 : 3;
  return spec;
}

sim::EngineConfig TwoActiveConfig(support::RngKind rng) {
  sim::EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.max_rounds = 4000;
  config.rng = rng;
  return config;
}

sim::EngineConfig GeneralConfig(support::RngKind rng) {
  sim::EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 4000;
  config.rng = rng;
  return config;
}

TEST(AdversaryParity, TwoActiveCamper2000Seeds) {
  sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kPrimaryCamper);
  auto program = sim::MakeTwoActiveProgram();
  CheckAdversaryParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(AdversaryParity, TwoActiveGreedy2000Seeds) {
  sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kGreedyReactive);
  auto program = sim::MakeTwoActiveProgram();
  CheckAdversaryParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(AdversaryParity, TwoActiveRandom2000Seeds) {
  sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kRandomBudgeted);
  auto program = sim::MakeTwoActiveProgram();
  CheckAdversaryParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(AdversaryParity, TwoActivePhaseTracking2000Seeds) {
  sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kPhaseTracking);
  auto program = sim::MakeTwoActiveProgram();
  CheckAdversaryParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(AdversaryParity, TwoActiveLookahead2000Seeds) {
  sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kLookahead);
  auto program = sim::MakeTwoActiveProgram();
  CheckAdversaryParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(AdversaryParity, TwoActiveLearning2000Seeds) {
  sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kLearning);
  auto program = sim::MakeTwoActiveProgram();
  CheckAdversaryParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(AdversaryParity, TwoActiveAllStrategiesPhilox) {
  for (const Kind kind :
       {Kind::kPrimaryCamper, Kind::kGreedyReactive, Kind::kRandomBudgeted,
        Kind::kPhaseTracking, Kind::kLookahead, Kind::kLearning}) {
    sim::EngineConfig config = TwoActiveConfig(support::RngKind::kPhilox);
    config.adversary = StrategySpec(kind);
    auto program = sim::MakeTwoActiveProgram();
    CheckAdversaryParity(config, core::MakeTwoActive(), *program, 700);
  }
}

TEST(AdversaryParity, GeneralAllStrategiesBothRngKinds) {
  for (const support::RngKind rng :
       {support::RngKind::kXoshiro, support::RngKind::kPhilox}) {
    for (const Kind kind :
         {Kind::kPrimaryCamper, Kind::kGreedyReactive, Kind::kRandomBudgeted,
          Kind::kPhaseTracking, Kind::kLookahead, Kind::kLearning}) {
      sim::EngineConfig config = GeneralConfig(rng);
      config.adversary = StrategySpec(kind);
      auto program = sim::MakeGeneralProgram();
      CheckAdversaryParity(config, core::MakeGeneral(), *program, 150);
    }
  }
}

// The wrapper-aware strategies only earn their name against the robust
// layer: these parity suites drive the fabricated backoff/echo rounds (the
// code paths that split adv_jams into echo/backoff and feed the adaptive
// estimators) through both engines, static and adaptive policy alike.
robust::RobustSpec ParityWrapper(robust::PolicyKind policy) {
  robust::RobustSpec spec;
  spec.enabled = true;
  spec.policy = policy;
  spec.max_epochs = 8;
  spec.confirm_attempts = 2;
  return spec;
}

TEST(AdversaryParity, RobustStaticLookaheadTwoActive) {
  for (const Kind kind : {Kind::kLookahead, Kind::kLearning}) {
    sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
    config.adversary = StrategySpec(kind);
    config.robust = ParityWrapper(robust::PolicyKind::kStatic);
    auto program = sim::MakeTwoActiveProgram();
    CheckAdversaryParity(config, core::MakeTwoActive(), *program, 600);
  }
}

TEST(AdversaryParity, RobustAdaptiveAllStrategiesTwoActive) {
  for (const Kind kind :
       {Kind::kPrimaryCamper, Kind::kPhaseTracking, Kind::kLookahead,
        Kind::kLearning}) {
    sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
    config.adversary = StrategySpec(kind);
    config.adversary.budget = 200;  // enough to provoke epoch retries
    config.robust = ParityWrapper(robust::PolicyKind::kAdaptive);
    auto program = sim::MakeTwoActiveProgram();
    CheckAdversaryParity(config, core::MakeTwoActive(), *program, 600);
  }
}

TEST(AdversaryParity, RobustAdaptiveLookaheadGeneralBothRngKinds) {
  for (const support::RngKind rng :
       {support::RngKind::kXoshiro, support::RngKind::kPhilox}) {
    for (const Kind kind : {Kind::kLookahead, Kind::kLearning}) {
      sim::EngineConfig config = GeneralConfig(rng);
      config.adversary = StrategySpec(kind);
      config.adversary.budget = 400;
      config.robust = ParityWrapper(robust::PolicyKind::kAdaptive);
      auto program = sim::MakeGeneralProgram();
      CheckAdversaryParity(config, core::MakeGeneral(), *program, 100);
    }
  }
}

TEST(AdversaryParity, RobustAdaptiveLookaheadComposedWithFaults) {
  // Erasures + flaky CD over the adaptive wrapper and the lookahead
  // adversary together: the full ISSUE 7 composition, both engines.
  sim::EngineConfig config = GeneralConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kLookahead);
  config.adversary.budget = 300;
  config.robust = ParityWrapper(robust::PolicyKind::kAdaptive);
  config.faults.erasure_rate = 0.05;
  config.faults.flaky_cd_rate = 0.02;
  config.faults.fault_seed = 9;
  auto program = sim::MakeGeneralProgram();
  CheckAdversaryParity(config, core::MakeGeneral(), *program, 100);
}

TEST(AdversaryParity, GeneralActivityObservationGreedy) {
  sim::EngineConfig config = GeneralConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kGreedyReactive);
  config.adversary.obs = ObsMode::kActivity;
  auto program = sim::MakeGeneralProgram();
  CheckAdversaryParity(config, core::MakeGeneral(), *program, 200);
}

TEST(AdversaryParity, GreedyComposedWithObliviousFaults) {
  // The adversary must stay bit-exact when layered on top of the PR 2 fault
  // machinery (erasures, flaky CD, crashes — everything except jam_rate,
  // which conflicts by design).
  sim::EngineConfig config = GeneralConfig(support::RngKind::kXoshiro);
  config.adversary = StrategySpec(Kind::kGreedyReactive);
  config.faults.erasure_rate = 0.02;
  config.faults.flaky_cd_rate = 0.01;
  config.faults.crash_rate = 0.001;
  config.faults.fault_seed = 3;
  auto program = sim::MakeGeneralProgram();
  CheckAdversaryParity(config, core::MakeGeneral(), *program, 200);
}

TEST(AdversaryParity, ScriptedParityTwoActive) {
  sim::EngineConfig config = TwoActiveConfig(support::RngKind::kXoshiro);
  config.adversary.kind = Kind::kScripted;
  config.adversary.budget = 8;
  config.adversary.per_round_cap = 2;
  config.adversary.script = {{0, 1}, {1, 2}, {2, 1}, {2, 3},
                             {4, 1}, {6, 5}, {8, 1}, {9, 2}};
  auto program = sim::MakeTwoActiveProgram();
  CheckAdversaryParity(config, core::MakeTwoActive(), *program, 500);
}

}  // namespace
}  // namespace crmc
