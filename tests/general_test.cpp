// End-to-end tests for the general algorithm (Section 5, Theorem 4).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/baselines.h"
#include "core/general.h"
#include "core/id_reduction.h"
#include "harness/runner.h"
#include "support/rng.h"
#include "sim/engine.h"

namespace crmc::core {
namespace {

sim::RunResult RunGeneral(std::int32_t num_active, std::int64_t population,
                          std::int32_t channels, std::uint64_t seed,
                          bool stop_when_solved = true,
                          GeneralParams params = {}) {
  sim::EngineConfig config;
  config.num_active = num_active;
  config.population = population;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = stop_when_solved;
  config.max_rounds = 2'000'000;
  return sim::Engine::Run(config, MakeGeneral(params));
}

using GridParams = std::tuple<std::int32_t, std::int32_t>;
class GeneralSweep : public ::testing::TestWithParam<GridParams> {};

TEST_P(GeneralSweep, SolvesAndTerminatesForAllSizes) {
  const auto [num_active, channels] = GetParam();
  const std::int64_t population =
      std::max<std::int64_t>(num_active, 1 << 12);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunGeneral(num_active, population, channels,
                                        seed, /*stop_when_solved=*/false);
    ASSERT_TRUE(r.solved) << "|A|=" << num_active << " C=" << channels
                          << " seed=" << seed;
    ASSERT_TRUE(r.all_terminated);
    ASSERT_FALSE(r.timed_out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneralSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3, 7, 32, 200,
                                                       1500),
                       ::testing::Values<std::int32_t>(1, 2, 8, 32, 129,
                                                       1024)));

TEST(General, ExactlyOneLeaderWhenRunToCompletion) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const sim::RunResult r =
        RunGeneral(100, 1 << 14, 64, seed, /*stop_when_solved=*/false);
    int leaders = 0;
    for (const auto& report : r.node_reports) {
      if (report.phase_marks.count("leader")) ++leaders;
    }
    // The fallback-free path always crowns exactly one leader; the engine
    // solving earlier (e.g. a lone confirm broadcast) is also fine, but
    // never more than one claimant.
    EXPECT_LE(leaders, 1) << "seed=" << seed;
    EXPECT_TRUE(r.solved);
  }
}

TEST(General, LargePopulationSmallActiveSet) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunGeneral(3, 1 << 22, 256, seed, false);
    ASSERT_TRUE(r.solved);
    ASSERT_TRUE(r.all_terminated);
  }
}

TEST(General, HugeActiveSetSolves) {
  const sim::RunResult r = RunGeneral(1 << 16, 1 << 16, 512, 42);
  EXPECT_TRUE(r.solved);
}

TEST(General, RoundsTrackTheBoundShape) {
  harness::TrialSpec spec;
  for (const std::int64_t n :
       {std::int64_t{1} << 12, std::int64_t{1} << 18}) {
    for (const std::int32_t c : {16, 256, 2048}) {
      spec.population = n;
      spec.num_active = static_cast<std::int32_t>(std::min<std::int64_t>(
          n, 4096));
      spec.channels = c;
      const double mean = harness::MeanSolvedRounds(spec, MakeGeneral(), 30);
      const double bound = baselines::GeneralBoundRounds(
          static_cast<double>(n), static_cast<double>(c));
      EXPECT_LE(mean, 6.0 * bound + 25.0) << "n=" << n << " C=" << c;
    }
  }
}

TEST(General, StepPhaseMarksAreOrdered) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunGeneral(500, 1 << 16, 128, seed, false);
    const std::int64_t reduce = r.LastPhaseMark("reduce_done");
    ASSERT_GE(reduce, 1) << "seed=" << seed;
    const std::int64_t rename = r.LastPhaseMark("rename_done");
    if (rename >= 0) {
      EXPECT_GT(rename, reduce);
      const std::int64_t elect = r.LastPhaseMark("elect_done");
      if (elect >= 0) {
        EXPECT_GT(elect, rename);
      }
    }
  }
}

TEST(General, FewChannelsUsesFallbackAndSolves) {
  // C < min_channels: the paper's single-channel fallback.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunGeneral(256, 1 << 12, 4, seed, false);
    ASSERT_TRUE(r.solved);
    ASSERT_TRUE(r.all_terminated);
    // Fallback never reaches the step markers.
    EXPECT_EQ(r.LastPhaseMark("reduce_done"), -1);
  }
}

TEST(General, DeterministicGivenSeed) {
  const sim::RunResult a = RunGeneral(300, 1 << 14, 64, 5);
  const sim::RunResult b = RunGeneral(300, 1 << 14, 64, 5);
  EXPECT_EQ(a.solved_round, b.solved_round);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
}

TEST(General, MoreChannelsShortenTheRenamingStep) {
  // The C-dependence of Theorem 4 lives in the IDReduction step
  // (O(log n / log C)). Reduce usually crowns a leader on its own (its
  // knockout cascade hits a lone transmitter w.c.p. — the later steps are
  // what make the bound w.h.p.), so measure the renaming step in isolation
  // via the standalone IDReduction protocol.
  auto renaming_rounds = [](std::int32_t channels) {
    harness::TrialSpec spec;
    spec.num_active = 24;  // a typical post-Reduce survivor count
    spec.population = 1 << 18;
    spec.channels = channels;
    spec.stop_when_solved = false;
    const harness::TrialSetResult r = harness::RunTrials(
        spec, core::MakeIdReductionOnly(), 60, /*keep_runs=*/true);
    double total = 0;
    for (const auto& run : r.runs) {
      total += static_cast<double>(run.rounds_executed);
    }
    return total / static_cast<double>(r.runs.size());
  };
  const double slow = renaming_rounds(8);
  const double fast = renaming_rounds(2048);
  EXPECT_LT(fast, slow);
}

TEST(General, Stress_ManySeedsManyShapes) {
  // A broad hunt for synchronization bugs: the PROTO_CHECKs inside every
  // step abort loudly on any desync, so simply completing is the assert.
  support::RandomSource shape_rng(0xdeadbeef);
  for (int trial = 0; trial < 60; ++trial) {
    const auto num_active =
        static_cast<std::int32_t>(shape_rng.UniformInt(1, 3000));
    const auto channels =
        static_cast<std::int32_t>(shape_rng.UniformInt(1, 3000));
    const std::int64_t population = std::max<std::int64_t>(
        num_active, std::int64_t{1} << shape_rng.UniformInt(10, 22));
    const sim::RunResult r =
        RunGeneral(num_active, population, channels,
                   static_cast<std::uint64_t>(trial) + 1, false);
    ASSERT_TRUE(r.solved) << "|A|=" << num_active << " C=" << channels
                          << " n=" << population << " trial=" << trial;
    ASSERT_TRUE(r.all_terminated);
  }
}

TEST(General, AblationForceBinarySearchStillCorrect) {
  GeneralParams params;
  params.leaf_election.force_binary_search = true;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r =
        RunGeneral(200, 1 << 14, 256, seed, false, params);
    ASSERT_TRUE(r.solved) << "seed=" << seed;
    ASSERT_TRUE(r.all_terminated);
  }
}

}  // namespace
}  // namespace crmc::core
