// RNG correctness tests: Philox4x32-10 known-answer vectors (Random123),
// the counter-based draw contract, batch-sampler bit parity against the
// scalar RandomSource calls, and chi-square uniformity smoke tests for
// BatchUniformInt / BatchBernoulli under both generator kinds.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/rng.h"

namespace crmc::support {
namespace {

// ---------------------------------------------------------------------------
// Philox known-answer tests. Vectors from the Random123 distribution
// (kat_vectors, philox4x32-10): counter words c0..c3, key words k0..k1.
// These pin the exact round function — a transposed multiplier pair or a
// swapped output lane would pass every statistical test and silently break
// cross-implementation reproducibility.
// ---------------------------------------------------------------------------

void ExpectBlock(std::uint32_t c0, std::uint32_t c1, std::uint32_t c2,
                 std::uint32_t c3, std::uint32_t k0, std::uint32_t k1,
                 std::array<std::uint32_t, 4> want) {
  std::uint32_t got[4] = {};
  Philox4x32::Block(c0, c1, c2, c3, k0, k1, got);
  EXPECT_EQ(got[0], want[0]);
  EXPECT_EQ(got[1], want[1]);
  EXPECT_EQ(got[2], want[2]);
  EXPECT_EQ(got[3], want[3]);
}

TEST(Philox, Random123KnownAnswers) {
  ExpectBlock(0, 0, 0, 0, 0, 0, {0x6627e8d5u, 0xe169c58du, 0xbc57ac4cu,
                                 0x9b00dbd8u});
  ExpectBlock(0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu,
              0xffffffffu,
              {0x408f276du, 0x41c83b0eu, 0xa20bc7c6u, 0x6d5451fdu});
  ExpectBlock(0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u, 0xa4093822u,
              0x299f31d0u,
              {0xd16cfe09u, 0x94fdccebu, 0x5001e420u, 0x24126ea1u});
}

TEST(Philox, BlockU64PacksWordPairs) {
  // BlockU64's contract: out[0] = w0 | (w1 << 32), out[1] = w2 | (w3 << 32)
  // with counter (block_lo, block_hi, stream_lo, stream_hi).
  const std::uint64_t key = 0x0123456789abcdefULL;
  const std::uint64_t stream = 0xfedcba9876543210ULL;
  const std::uint64_t block = 0x1122334455667788ULL;
  std::uint32_t words[4] = {};
  Philox4x32::Block(static_cast<std::uint32_t>(block),
                    static_cast<std::uint32_t>(block >> 32),
                    static_cast<std::uint32_t>(stream),
                    static_cast<std::uint32_t>(stream >> 32),
                    static_cast<std::uint32_t>(key),
                    static_cast<std::uint32_t>(key >> 32), words);
  std::uint64_t out[2] = {};
  Philox4x32::BlockU64(key, stream, block, out);
  EXPECT_EQ(out[0], words[0] | (static_cast<std::uint64_t>(words[1]) << 32));
  EXPECT_EQ(out[1], words[2] | (static_cast<std::uint64_t>(words[3]) << 32));
}

TEST(Philox, CounterBasedDrawsAreRandomAccess) {
  // Draw i of a philox stream is a pure function of (key, stream, i):
  // sequential NextU64 calls must reproduce BlockU64 halves, and
  // SkipPhiloxDraws must land on the same values a sequential reader sees.
  RandomSource seq = RandomSource::ForStream(0x5eedULL, 7, RngKind::kPhilox);
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 64; ++i) draws.push_back(seq.NextU64());

  for (int i = 0; i < 64; ++i) {
    std::uint64_t block[2] = {};
    Philox4x32::BlockU64(seq.philox_key(), seq.philox_stream(),
                         static_cast<std::uint64_t>(i) >> 1, block);
    EXPECT_EQ(draws[static_cast<std::size_t>(i)], block[i & 1]) << "draw " << i;
  }

  RandomSource skip = RandomSource::ForStream(0x5eedULL, 7, RngKind::kPhilox);
  skip.SkipPhiloxDraws(37);
  EXPECT_EQ(skip.NextU64(), draws[37]);
  EXPECT_EQ(skip.NextU64(), draws[38]);
}

TEST(Philox, ForStreamMatchesRawKeyFactory) {
  RandomSource a = RandomSource::ForStream(0xabcdefULL, 11, RngKind::kPhilox);
  RandomSource b = RandomSource::FromPhiloxKey(a.philox_key(), 11);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

// ---------------------------------------------------------------------------
// Batch samplers: bit parity with the scalar RandomSource calls under both
// generator kinds (the contract every SIMD kernel inherits).
// ---------------------------------------------------------------------------

TEST(BatchSamplers, UniformIntMatchesScalarBothKinds) {
  for (const RngKind kind : {RngKind::kXoshiro, RngKind::kPhilox}) {
    RandomSource a = RandomSource::ForStream(99, 3, kind);
    RandomSource b = RandomSource::ForStream(99, 3, kind);
    // An awkward range exercises Lemire rejection; 1..64 is the channel
    // pick; the huge range exercises the high-word path.
    const std::vector<std::pair<std::int64_t, std::int64_t>> ranges = {
        {0, 2}, {1, 64}, {-5, 37}, {0, (std::int64_t{1} << 62) + 12345}};
    for (const auto& [lo, hi] : ranges) {
      const BatchUniformInt dist(lo, hi);
      for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(dist.Draw(a), b.UniformInt(lo, hi));
      }
    }
    EXPECT_EQ(a.NextU64(), b.NextU64());  // streams stayed in lockstep
  }
}

TEST(BatchSamplers, BernoulliMatchesScalarBothKinds) {
  for (const RngKind kind : {RngKind::kXoshiro, RngKind::kPhilox}) {
    RandomSource a = RandomSource::ForStream(123, 9, kind);
    RandomSource b = RandomSource::ForStream(123, 9, kind);
    for (const double p : {-0.25, 0.0, 1e-9, 0.5, 0.75, 1.0 - 1e-12, 1.0}) {
      const BatchBernoulli coin(p);
      for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(coin.Draw(a), b.Bernoulli(p));
      }
    }
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(BatchSamplers, FixedOutcomesConsumeNoDraw) {
  RandomSource rs = RandomSource::ForStream(1, 1, RngKind::kPhilox);
  const std::uint64_t before = rs.philox_draws();
  EXPECT_FALSE(BatchBernoulli(0.0).Draw(rs));
  EXPECT_TRUE(BatchBernoulli(1.0).Draw(rs));
  EXPECT_FALSE(BatchBernoulli(-3.0).Draw(rs));
  EXPECT_TRUE(BatchBernoulli(2.0).Draw(rs));
  EXPECT_EQ(rs.philox_draws(), before);
}

// ---------------------------------------------------------------------------
// Chi-square uniformity smoke tests. Deterministic seeds, so these are
// regression tests against a distributional bug (biased threshold, dropped
// word, lane mixup), not flaky statistical assertions. Bounds are the
// p ~= 0.001 critical values with headroom.
// ---------------------------------------------------------------------------

TEST(ChiSquare, BatchUniformIntBothKinds) {
  constexpr int kBins = 64;
  constexpr int kDraws = 64 * 1000;
  for (const RngKind kind : {RngKind::kXoshiro, RngKind::kPhilox}) {
    RandomSource rs = RandomSource::ForStream(0xc41ULL, 5, kind);
    const BatchUniformInt dist(1, kBins);
    std::array<int, kBins> counts = {};
    for (int i = 0; i < kDraws; ++i) {
      const std::int64_t v = dist.Draw(rs);
      ASSERT_GE(v, 1);
      ASSERT_LE(v, kBins);
      ++counts[static_cast<std::size_t>(v - 1)];
    }
    const double expected = static_cast<double>(kDraws) / kBins;
    double chi2 = 0.0;
    for (const int c : counts) {
      const double d = c - expected;
      chi2 += d * d / expected;
    }
    // df = 63; the 0.999 quantile is ~106.
    EXPECT_LT(chi2, 120.0) << "kind=" << ToString(kind);
  }
}

TEST(ChiSquare, BatchBernoulliBothKinds) {
  constexpr int kDraws = 100000;
  for (const RngKind kind : {RngKind::kXoshiro, RngKind::kPhilox}) {
    for (const double p : {0.01, 0.3, 0.5, 0.97}) {
      RandomSource rs = RandomSource::ForStream(0xb00ULL, 2, kind);
      const BatchBernoulli coin(p);
      int successes = 0;
      for (int i = 0; i < kDraws; ++i) successes += coin.Draw(rs) ? 1 : 0;
      const double e1 = kDraws * p;
      const double e0 = kDraws * (1.0 - p);
      const double d1 = successes - e1;
      const double chi2 = d1 * d1 / e1 + d1 * d1 / e0;
      // df = 1; the 0.999 quantile is ~10.8.
      EXPECT_LT(chi2, 12.0) << "kind=" << ToString(kind) << " p=" << p;
    }
  }
}

// ---------------------------------------------------------------------------
// SampleWithoutReplacement tiny-k fast path: must be draw-for-draw and
// value-for-value identical to the general sparse Fisher-Yates loop.
// ---------------------------------------------------------------------------

// Reference transcription of the general loop for k = 2 (low[] starts as
// the identity and the displacement table holds at most one entry).
void ReferenceSampleTwo(std::int64_t population, RandomSource& rng,
                        std::int64_t out[2]) {
  std::int64_t low[2] = {0, 1};
  std::int64_t table_key = -1;
  std::int64_t table_val = 0;
  for (std::int64_t i = 0; i < 2; ++i) {
    const std::int64_t j = rng.UniformInt(i, population - 1);
    const std::int64_t value_i = low[i];
    std::int64_t value_j;
    if (j < 2) {
      value_j = low[j];
      low[j] = value_i;
    } else {
      value_j = table_key == j ? table_val : j;
      table_key = j;
      table_val = value_i;
    }
    out[i] = value_j + 1;
  }
}

TEST(SampleWithoutReplacement, TinyKMatchesGeneralLoop) {
  SampleScratch scratch;
  std::vector<std::int64_t> out;
  // population == k takes the identity shortcut before the tiny-k path, so
  // start at 3 to actually exercise the unrolled branch.
  for (const std::int64_t population : {3, 4, 5, 1000}) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      RandomSource a = RandomSource::ForStream(seed, 0);
      RandomSource b = RandomSource::ForStream(seed, 0);
      SampleWithoutReplacement(population, 2, a, scratch, out);
      std::int64_t want[2] = {};
      ReferenceSampleTwo(population, b, want);
      ASSERT_EQ(out.size(), 2u);
      EXPECT_EQ(out[0], want[0]) << "pop=" << population << " seed=" << seed;
      EXPECT_EQ(out[1], want[1]) << "pop=" << population << " seed=" << seed;
      EXPECT_NE(out[0], out[1]);
      EXPECT_EQ(a.NextU64(), b.NextU64());  // same number of draws consumed
    }
  }
}

}  // namespace
}  // namespace crmc::support
