// Tests for the CLI flag parser.
#include <gtest/gtest.h>

#include <vector>

#include "harness/flags.h"

namespace crmc::harness {
namespace {

Flags ParseArgs(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceSyntax) {
  const Flags f = ParseArgs({"--a=1", "--b", "2", "--c", "hello"});
  EXPECT_EQ(f.GetIntOr("a", 0), 1);
  EXPECT_EQ(f.GetIntOr("b", 0), 2);
  EXPECT_EQ(f.GetStringOr("c", ""), "hello");
}

TEST(Flags, BooleanForms) {
  const Flags f =
      ParseArgs({"--x", "--y=true", "--z=false", "--w", "--v=1"});
  EXPECT_TRUE(f.GetBoolOr("x", false));
  EXPECT_TRUE(f.GetBoolOr("y", false));
  EXPECT_FALSE(f.GetBoolOr("z", true));
  EXPECT_TRUE(f.GetBoolOr("w", false));
  EXPECT_TRUE(f.GetBoolOr("v", false));
  EXPECT_FALSE(f.GetBoolOr("absent", false));
  EXPECT_THROW((void)ParseArgs({"--b=yes"}).GetBoolOr("b", false),
               std::invalid_argument);
}

TEST(Flags, BareFlagFollowedByFlagIsBoolean) {
  const Flags f = ParseArgs({"--verbose", "--count=3"});
  EXPECT_TRUE(f.GetBoolOr("verbose", false));
  EXPECT_EQ(f.GetIntOr("count", 0), 3);
}

TEST(Flags, Positional) {
  const Flags f = ParseArgs({"cmd", "--n=5", "target"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "cmd");
  EXPECT_EQ(f.positional()[1], "target");
}

TEST(Flags, TypeErrors) {
  const Flags f = ParseArgs({"--n=abc", "--d=1.5x"});
  EXPECT_THROW(f.GetIntOr("n", 0), std::invalid_argument);
  EXPECT_THROW(f.GetDoubleOr("d", 0.0), std::invalid_argument);
}

TEST(Flags, Doubles) {
  const Flags f = ParseArgs({"--q=0.95"});
  EXPECT_DOUBLE_EQ(f.GetDoubleOr("q", 0.0), 0.95);
  EXPECT_DOUBLE_EQ(f.GetDoubleOr("missing", 0.5), 0.5);
}

TEST(Flags, MalformedFlagRejected) {
  EXPECT_THROW(ParseArgs({"--=x"}), std::invalid_argument);
  EXPECT_THROW(ParseArgs({"--"}), std::invalid_argument);
}

TEST(Flags, UnconsumedTracking) {
  const Flags f = ParseArgs({"--used=1", "--typo=2"});
  (void)f.GetIntOr("used", 0);
  const auto unknown = f.UnconsumedFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, LastValueWins) {
  const Flags f = ParseArgs({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetIntOr("n", 0), 2);
}

}  // namespace
}  // namespace crmc::harness
