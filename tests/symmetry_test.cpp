// Tests for the symmetry-breaking cap module (the lower bound's one-round
// core), including a Monte-Carlo differential check of the exact formula.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/symmetry.h"
#include "support/rng.h"

namespace crmc::baselines {
namespace {

TEST(Symmetry, OptimalStrategyAchievesTheCap) {
  for (const std::int32_t c : {1, 2, 4, 16, 256}) {
    const RoundStrategy s = RoundStrategy::Optimal(c);
    EXPECT_NEAR(BreakProbability(s), OptimalBreakProbability(c), 1e-12)
        << "C=" << c;
    // All-transmit-uniform is strictly suboptimal (for C > 1): 1 - 1/C
    // versus C/(C+1).
    const RoundStrategy uniform = RoundStrategy::UniformTransmit(c);
    EXPECT_NEAR(BreakProbability(uniform),
                1.0 - 1.0 / static_cast<double>(c), 1e-12);
    if (c > 1) {
      EXPECT_LT(BreakProbability(uniform), OptimalBreakProbability(c));
    }
  }
}

TEST(Symmetry, NoSimplexCornerBeatsTheCap) {
  // Exhaustive-ish grid over two-channel strategies: tau1, tau2, lambda on
  // a 1/60 lattice. Nothing exceeds C/(C+1).
  const double cap = OptimalBreakProbability(2);
  double best = 0.0;
  constexpr int kSteps = 60;
  for (int i = 0; i <= kSteps; ++i) {
    for (int j = 0; i + j <= kSteps; ++j) {
      RoundStrategy s;
      const double t1 = static_cast<double>(i) / kSteps;
      const double t2 = static_cast<double>(j) / kSteps;
      s.transmit = {t1, t2};
      s.listen = {1.0 - t1 - t2, 0.0};
      best = std::max(best, BreakProbability(s));
    }
  }
  EXPECT_LE(best, cap + 1e-9);
  EXPECT_GE(best, cap - 1e-3);  // the lattice includes (1/3, 1/3, 1/3)
}

TEST(Symmetry, SingleChannelStrategiesCapAtHalf) {
  // With C = 1, break requires one tx + one listen: p = 2 t (1 - t) <= 1/2.
  RoundStrategy s;
  s.transmit = {0.5};
  s.listen = {0.5};
  EXPECT_NEAR(BreakProbability(s), 0.5, 1e-12);
  s.transmit = {0.9};
  s.listen = {0.1};
  EXPECT_NEAR(BreakProbability(s), 2 * 0.9 * 0.1, 1e-12);
}

TEST(Symmetry, TooMuchListeningIsWasteful) {
  // The optimal listening reserve is 1/(C+1); half listening overshoots
  // and lowers the break chance when channels are plentiful.
  const std::int32_t c = 8;
  RoundStrategy all_tx = RoundStrategy::UniformTransmit(c);
  RoundStrategy half_listen;
  half_listen.transmit.assign(8, 0.5 / 8.0);
  half_listen.listen.assign(8, 0.5 / 8.0);
  EXPECT_GT(BreakProbability(all_tx), BreakProbability(half_listen));
  EXPECT_GT(BreakProbability(RoundStrategy::Optimal(c)),
            BreakProbability(all_tx));
}

TEST(Symmetry, RejectsMalformedStrategies) {
  RoundStrategy bad;
  bad.transmit = {0.2};
  bad.listen = {0.2};  // sums to 0.4
  EXPECT_THROW(BreakProbability(bad), std::invalid_argument);
  RoundStrategy mismatched;
  mismatched.transmit = {1.0};
  mismatched.listen = {};
  EXPECT_THROW(BreakProbability(mismatched), std::invalid_argument);
}

TEST(Symmetry, HillClimbNeverBeatsTheAnalyticOptimum) {
  for (const std::int32_t c : {1, 2, 4, 16, 64}) {
    const double found = SearchBestBreakProbability(c, 6, 3000);
    const double optimum = OptimalBreakProbability(c);
    EXPECT_LE(found, optimum + 1e-9) << "C=" << c;
    // And the search should come close to it (within 2%).
    EXPECT_GE(found, optimum - 0.02) << "C=" << c;
  }
}

TEST(Symmetry, ImpliedBoundMatchesLogNOverLogC) {
  // With p = C/(C+1) the implied bound is log(n)/log(C+1).
  for (const std::int32_t c : {2, 16, 1024}) {
    const double n = 1 << 20;
    const double p = OptimalBreakProbability(c);
    const double bound = ImpliedRoundLowerBound(n, p);
    const double expected =
        std::ceil(std::log(n) / std::log(static_cast<double>(c) + 1.0));
    EXPECT_NEAR(bound, expected, 1.0) << "C=" << c;
  }
  EXPECT_THROW(ImpliedRoundLowerBound(1.0, 0.5), std::invalid_argument);
}

// Differential check: the closed-form break probability matches a direct
// Monte-Carlo of the outcome calculus.
TEST(Symmetry, FormulaMatchesMonteCarlo) {
  support::RandomSource rng(0x51a1);
  RoundStrategy s;
  s.transmit = {0.3, 0.1, 0.05};
  s.listen = {0.25, 0.2, 0.1};
  const double exact = BreakProbability(s);

  auto draw = [&]() {
    // Returns (channel, is_tx) drawn from the strategy.
    double u = rng.UniformDouble();
    for (std::size_t c = 0; c < s.transmit.size(); ++c) {
      if (u < s.transmit[c]) return std::pair<int, bool>{(int)c, true};
      u -= s.transmit[c];
      if (u < s.listen[c]) return std::pair<int, bool>{(int)c, false};
      u -= s.listen[c];
    }
    return std::pair<int, bool>{0, true};  // numeric slack
  };
  constexpr int kTrials = 400000;
  int broken = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto a = draw();
    const auto b = draw();
    const bool both_listen = !a.second && !b.second;
    const bool same_channel_tx =
        a.second && b.second && a.first == b.first;
    if (!both_listen && !same_channel_tx) ++broken;
  }
  EXPECT_NEAR(static_cast<double>(broken) / kTrials, exact, 0.005);
}

}  // namespace
}  // namespace crmc::baselines
