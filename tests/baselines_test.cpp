// Tests for the baseline algorithms and the analytic bound curves.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "harness/runner.h"
#include "sim/engine.h"
#include "support/bits.h"

namespace crmc::baselines {
namespace {

sim::RunResult RunBaseline(const sim::ProtocolFactory& factory,
                           std::int32_t num_active, std::int64_t population,
                           std::int32_t channels, std::uint64_t seed,
                           bool stop_when_solved = true) {
  sim::EngineConfig config;
  config.num_active = num_active;
  config.population = population;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = stop_when_solved;
  config.max_rounds = 2'000'000;
  return sim::Engine::Run(config, factory);
}

// --- binary descent -----------------------------------------------------------

class DescentSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(DescentSweep, SolvesWithinCeilLgNPlusOneRounds) {
  const std::int32_t num_active = GetParam();
  const std::int64_t population = 1 << 12;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const sim::RunResult r = RunBaseline(MakeBinaryDescentCd(), num_active,
                                         population, 1, seed, false);
    ASSERT_TRUE(r.solved) << "seed=" << seed;
    ASSERT_TRUE(r.all_terminated);
    EXPECT_LE(r.solved_round,
              support::CeilLog2(static_cast<std::uint64_t>(population)) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DescentSweep,
                         ::testing::Values(1, 2, 3, 17, 256, 4000));

TEST(BinaryDescent, SolvedByTheSmallestActiveId) {
  // Probability-1 guarantee: the descent isolates the smallest active
  // unique ID. We can't observe IDs directly from the result, but we can
  // check the deterministic round count: it's at most ceil(lg n) + 1 and
  // identical across seeds with the same ID draw (solved_round varies only
  // via the sampled IDs).
  const sim::RunResult a =
      RunBaseline(MakeBinaryDescentCd(), 10, 1024, 1, 7);
  const sim::RunResult b =
      RunBaseline(MakeBinaryDescentCd(), 10, 1024, 1, 7);
  EXPECT_EQ(a.solved_round, b.solved_round);
}

// --- decay ---------------------------------------------------------------------

class DecaySweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(DecaySweep, EventuallySolves) {
  const std::int32_t num_active = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const sim::RunResult r = RunBaseline(MakeDecayNoCd(), num_active,
                                         1 << 12, 1, seed);
    ASSERT_TRUE(r.solved) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DecaySweep,
                         ::testing::Values(1, 2, 9, 100, 2048));

TEST(Decay, RoundsAreRoughlyLogSquared) {
  harness::TrialSpec spec;
  spec.population = 1 << 12;
  spec.num_active = 1 << 12;
  spec.channels = 1;
  const double mean = harness::MeanSolvedRounds(spec, MakeDecayNoCd(), 40);
  const double lg = 12.0;
  EXPECT_LE(mean, 8.0 * lg * lg);
  EXPECT_GE(mean, 2.0);
}

// --- Daum-style multichannel ---------------------------------------------------

class DaumSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {
};

TEST_P(DaumSweep, EventuallySolves) {
  const auto [num_active, channels] = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const sim::RunResult r = RunBaseline(MakeDaumStyle(), num_active,
                                         1 << 12, channels, seed);
    ASSERT_TRUE(r.solved)
        << "|A|=" << num_active << " C=" << channels << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DaumSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(2, 50, 1000),
                       ::testing::Values<std::int32_t>(1, 2, 16, 128)));

TEST(DaumStyle, ChannelsTameTheTail) {
  // Multi-channel elimination buys its advantage in the tail (the bound is
  // O(log^2 n / C + log n) w.h.p., versus decay's Theta(log^2 n)): compare
  // high quantiles, not means.
  auto tail = [](std::int32_t channels) {
    harness::TrialSpec spec;
    spec.population = 1 << 14;
    spec.num_active = 1 << 14;
    spec.channels = channels;
    const harness::TrialSetResult r =
        harness::RunTrials(spec, MakeDaumStyle(), 150);
    EXPECT_EQ(r.unsolved, 0);
    return harness::Quantile(r.solved_rounds, 0.95);
  };
  const double single = tail(1);
  const double multi = tail(256);
  // The multichannel variant pays 2x per density sweep (lottery slots), so
  // require it to beat the single channel tail only after normalizing that
  // factor away; in practice it wins outright at the 95th percentile.
  EXPECT_LT(multi, 2.0 * single);
}

// --- ALOHA oracle ---------------------------------------------------------------

TEST(AlohaOracle, SolvesQuicklyKnowingTheActiveCount) {
  harness::TrialSpec spec;
  spec.population = 1 << 16;
  spec.num_active = 1 << 10;
  spec.channels = 1;
  const double mean = harness::MeanSolvedRounds(spec, MakeAlohaOracle(), 60);
  // Per-round success probability approaches 1/e; mean should be small.
  EXPECT_LE(mean, 12.0);
}

TEST(AlohaOracle, TerminatesItself) {
  const sim::RunResult r =
      RunBaseline(MakeAlohaOracle(), 64, 64, 1, 3, /*stop=*/false);
  EXPECT_TRUE(r.solved);
  EXPECT_TRUE(r.all_terminated);
}

// --- analytic curves -------------------------------------------------------------

TEST(Bounds, LowerBoundShape) {
  // log n / log C term dominates for small C.
  EXPECT_GT(LowerBoundRounds(1 << 20, 4), LowerBoundRounds(1 << 20, 1024));
  // Monotone in n.
  EXPECT_GT(LowerBoundRounds(1 << 24, 64), LowerBoundRounds(1 << 12, 64));
  // With C = n the loglog floor dominates: bound ~ 1 + lglg n.
  const double floor_bound = LowerBoundRounds(1 << 16, 1 << 16);
  EXPECT_NEAR(floor_bound, 1.0 + 4.0, 0.5);
}

TEST(Bounds, GeneralBoundDominatesLowerBound) {
  for (const double n : {1e3, 1e6, 1e9}) {
    for (const double c : {2.0, 64.0, 4096.0}) {
      EXPECT_GE(GeneralBoundRounds(n, c) + 1e-9, LowerBoundRounds(n, c));
    }
  }
}

TEST(Bounds, TwoActiveBoundEqualsLowerBound) {
  EXPECT_DOUBLE_EQ(TwoActiveBoundRounds(1e6, 64.0),
                   LowerBoundRounds(1e6, 64.0));
}

}  // namespace
}  // namespace crmc::baselines
