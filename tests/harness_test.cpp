// Tests for the experiment harness: stats, runner, tables, registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "harness/json_writer.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "mac/channel.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::harness {
namespace {

TEST(Stats, SummaryOfKnownValues) {
  const Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 5);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SummaryHandlesEmptyAndSingleton) {
  const Summary empty = Summarize({});
  EXPECT_EQ(empty.count, 0);
  const Summary one = Summarize({7});
  EXPECT_EQ(one.count, 1);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.p95, 7.0);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0, 10}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({0, 10, 20, 30}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({0, 10, 20, 30}, 1.0), 30.0);
  EXPECT_THROW(Quantile({1}, 1.5), std::invalid_argument);
}

TEST(Stats, UnorderedInputIsSorted) {
  const Summary s = Summarize({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i + 7.0);
  }
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, LinearFitDegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitLinear({}, {}).slope, 0.0);
  EXPECT_DOUBLE_EQ(FitLinear({1.0}, {2.0}).slope, 0.0);
  // Vertical data (all x equal) cannot be fit.
  EXPECT_DOUBLE_EQ(FitLinear({3.0, 3.0}, {1.0, 2.0}).slope, 0.0);
  EXPECT_THROW(FitLinear({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Stats, BootstrapCiCoversTheMean) {
  std::vector<std::int64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(10 + (i % 5));
  const ConfidenceInterval ci = BootstrapMeanCi(values);
  EXPECT_LT(ci.lower, 12.0);
  EXPECT_GT(ci.upper, 12.0);
  EXPECT_LT(ci.upper - ci.lower, 1.0);  // tight for 500 near-constant values
}

TEST(Stats, BootstrapCiDegenerateInputs) {
  const ConfidenceInterval empty = BootstrapMeanCi({});
  EXPECT_DOUBLE_EQ(empty.lower, 0.0);
  EXPECT_DOUBLE_EQ(empty.upper, 0.0);
  const ConfidenceInterval one = BootstrapMeanCi({7});
  EXPECT_DOUBLE_EQ(one.lower, 7.0);
  EXPECT_DOUBLE_EQ(one.upper, 7.0);
  EXPECT_THROW(BootstrapMeanCi({1, 2}, 1.5), std::invalid_argument);
}

TEST(Stats, BootstrapCiIsDeterministic) {
  std::vector<std::int64_t> values{1, 5, 9, 2, 8, 4, 7};
  const ConfidenceInterval a = BootstrapMeanCi(values);
  const ConfidenceInterval b = BootstrapMeanCi(values);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Stats, AsciiHistogramShapes) {
  const std::string h = AsciiHistogram({1, 1, 1, 2, 2, 9}, 3, 10);
  // Three bins covering 1..9; the first (values 1 and 2) holds 5 entries.
  EXPECT_NE(h.find("##########"), std::string::npos);  // peak bin full bar
  EXPECT_NE(h.find(" 5\n"), std::string::npos);
  EXPECT_NE(h.find(" 1\n"), std::string::npos);
  EXPECT_EQ(AsciiHistogram({}), "(no data)\n");
  // Single-value input collapses to one bin.
  const std::string single = AsciiHistogram({4, 4, 4});
  EXPECT_NE(single.find(" 3\n"), std::string::npos);
}

TEST(Table, PrintHonoursCrmcOutputEnv) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  {
    ::setenv("CRMC_OUTPUT", "csv", 1);
    std::ostringstream os;
    t.Print(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
    ::unsetenv("CRMC_OUTPUT");
  }
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("|"), std::string::npos);  // markdown
}

TEST(Table, MarkdownLayout) {
  Table t({"n", "C", "rounds"});
  t.AddRow({"1024", "16", "12.50"});
  std::ostringstream os;
  t.PrintMarkdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| n"), std::string::npos);
  EXPECT_NE(out.find("12.50"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
}

TEST(Table, CsvLayout) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RowScopeCommitsOnDestruction) {
  Table t({"x", "y"});
  { Table::RowScope(t).Cells(std::int64_t{5}, 2.5); }
  EXPECT_EQ(t.num_rows(), 1u);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n5,2.50\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(Json, WriterProducesWellFormedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema").Value("crmc.bench_engine.v1");
  w.Key("count").Value(std::int64_t{3});
  w.Key("rate").Value(12.5);
  w.Key("ok").Value(true);
  w.Key("points").BeginArray();
  w.BeginObject();
  w.Key("name").Value("a");
  w.EndObject();
  w.Value(std::int64_t{7});
  w.EndArray();
  w.Key("empty").BeginArray().EndArray();
  w.EndObject();
  w.Finish();
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\": \"crmc.bench_engine.v1\""),
            std::string::npos);
  EXPECT_NE(out.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"rate\": 12.5"), std::string::npos);
  EXPECT_NE(out.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(out.find("\"empty\": []"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
  // Balanced braces/brackets (no string cells contain them here).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  std::ostringstream os;
  JsonWriter w(os);
  w.Value("quote \" here");
  w.Finish();
  EXPECT_EQ(os.str(), "\"quote \\\" here\"\n");
}

TEST(Json, RejectsMisnesting) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginObject();
    EXPECT_THROW(w.Value(std::int64_t{1}), std::invalid_argument);  // no Key
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginArray();
    EXPECT_THROW(w.Key("x"), std::invalid_argument);  // key in array
    EXPECT_THROW(w.EndObject(), std::invalid_argument);
    EXPECT_THROW(w.Finish(), std::invalid_argument);  // open scope
  }
}

TEST(Runner, CollectsSolvedRounds) {
  TrialSpec spec;
  spec.num_active = 2;
  spec.population = 1 << 10;
  spec.channels = 16;
  const TrialSetResult r =
      RunTrials(spec, AlgorithmByName("two_active").make(), 20);
  EXPECT_EQ(r.unsolved, 0);
  EXPECT_EQ(r.summary.count, 20);
  EXPECT_GE(r.summary.min, 1);
}

TEST(Runner, SingleThreadMatchesMultiThread) {
  TrialSpec spec;
  spec.num_active = 2;
  spec.population = 1 << 10;
  spec.channels = 16;
  const auto factory = AlgorithmByName("two_active").make();
  const TrialSetResult a = RunTrials(spec, factory, 16, false, 1);
  const TrialSetResult b = RunTrials(spec, factory, 16, false, 8);
  EXPECT_EQ(Summarize(a.solved_rounds).mean, Summarize(b.solved_rounds).mean);
}

// Satellite of ISSUE 1: the per-trial seed derivation makes the solved
// rounds a pure function of the spec — the thread count must not reorder
// or change them, on either engine path.
TEST(Runner, ThreadCountPreservesSolvedRoundsExactly) {
  TrialSpec spec;
  spec.num_active = 48;
  spec.population = 1 << 12;
  spec.channels = 32;
  const ProtocolHandle handle = HandleFor(AlgorithmByName("general"));
  const TrialSetResult a = RunTrials(spec, handle, 64, false, 1);
  const TrialSetResult b = RunTrials(spec, handle, 64, false, 8);
  EXPECT_EQ(a.solved_rounds, b.solved_rounds);
  EXPECT_EQ(a.unsolved, b.unsolved);

  spec.use_batch_engine = false;  // and on the coroutine oracle
  const TrialSetResult c = RunTrials(spec, handle, 64, false, 1);
  const TrialSetResult d = RunTrials(spec, handle, 64, false, 8);
  EXPECT_EQ(c.solved_rounds, d.solved_rounds);
  // The fast path reproduced the oracle bit-exactly.
  EXPECT_EQ(a.solved_rounds, c.solved_rounds);
}

// Satellite of ISSUE 3: the same determinism contract under the
// counter-based generator and with the fault layer active — the full
// statistics (round list, failure breakdown, fault counters) must be a
// pure function of the spec regardless of thread count.
TEST(Runner, ThreadCountDeterministicPhiloxAndFaults) {
  TrialSpec spec;
  spec.num_active = 48;
  spec.population = 1 << 12;
  spec.channels = 32;
  spec.rng = support::RngKind::kPhilox;
  spec.max_rounds = 2000;
  spec.faults.jam_rate = 0.1;
  spec.faults.crash_rate = 0.005;
  const ProtocolHandle handle = HandleFor(AlgorithmByName("general"));
  const TrialSetResult a = RunTrials(spec, handle, 64, false, 1);
  const TrialSetResult b = RunTrials(spec, handle, 64, false, 8);
  EXPECT_EQ(a.solved_rounds, b.solved_rounds);
  EXPECT_EQ(a.unsolved, b.unsolved);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
}

TEST(Runner, BatchFastPathMatchesCoroutineOracle) {
  TrialSpec spec;
  spec.num_active = 2;
  spec.population = 1 << 10;
  spec.channels = 16;
  const ProtocolHandle handle = HandleFor(AlgorithmByName("two_active"));
  const TrialSetResult fast = RunTrials(spec, handle, 200);
  spec.use_batch_engine = false;
  const TrialSetResult oracle = RunTrials(spec, handle, 200);
  EXPECT_EQ(fast.solved_rounds, oracle.solved_rounds);
  EXPECT_EQ(fast.unsolved, oracle.unsolved);
}

// Failed trials must be reported as counts, not folded into the round
// statistics: a trial capped at max_rounds would otherwise drag the mean
// toward the cap.
// Deterministically unsolvable: every activated node transmits on the
// primary channel forever, so no round ever has a lone delivery. The round
// cap must surface as failure *counts*, never as samples in the statistics.
sim::Task<void> CollidePrimaryForever(sim::NodeContext& ctx) {
  for (;;) co_await ctx.Transmit(mac::kPrimaryChannel);
}

TEST(Runner, TimedOutTrialsAreCountedNotAveraged) {
  TrialSpec spec;
  spec.num_active = 2;
  spec.population = 256;
  spec.channels = 8;
  spec.max_rounds = 5;
  const ProtocolHandle handle(
      [](sim::NodeContext& ctx) { return CollidePrimaryForever(ctx); });
  const TrialSetResult r = RunTrials(spec, handle, 20);
  EXPECT_EQ(r.unsolved, 20);
  EXPECT_EQ(r.timed_out, 20);
  EXPECT_EQ(r.aborted, 0);
  EXPECT_TRUE(r.solved_rounds.empty());
  EXPECT_EQ(r.summary.count, 0);  // the cap never entered the statistics
}

TEST(Runner, FaultySweepKeepsFailureBreakdown) {
  TrialSpec spec;
  spec.num_active = 2;
  spec.population = 256;
  spec.channels = 8;
  spec.max_rounds = 40;
  spec.faults.jam_rate = 1.0;  // nothing is ever delivered
  const ProtocolHandle handle = HandleFor(AlgorithmByName("two_active"));
  const TrialSetResult r = RunTrials(spec, handle, 10);
  EXPECT_EQ(r.unsolved, 10);
  EXPECT_EQ(r.timed_out + r.aborted, 10);
  EXPECT_GT(r.faults_injected, 0);
  EXPECT_TRUE(r.solved_rounds.empty());
  // And the batch fast path agrees on the breakdown.
  spec.use_batch_engine = false;
  const TrialSetResult oracle = RunTrials(spec, handle, 10);
  EXPECT_EQ(r.timed_out, oracle.timed_out);
  EXPECT_EQ(r.aborted, oracle.aborted);
  EXPECT_EQ(r.wedged, oracle.wedged);
  EXPECT_EQ(r.faults_injected, oracle.faults_injected);
}

TEST(Runner, KeepRunsRetainsResults) {
  TrialSpec spec;
  spec.num_active = 2;
  spec.population = 256;
  spec.channels = 8;
  const TrialSetResult r =
      RunTrials(spec, AlgorithmByName("two_active").make(), 5, true);
  EXPECT_EQ(r.runs.size(), 5u);
}

TEST(Registry, AllAlgorithmsListedAndConstructible) {
  EXPECT_GE(Algorithms().size(), 9u);
  for (const AlgorithmInfo& info : Algorithms()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
    ASSERT_NE(info.make, nullptr);
    EXPECT_TRUE(static_cast<bool>(info.make()));  // factory is callable
  }
}

TEST(Registry, StepProgramTwinsRegistered) {
  for (const char* name : {"two_active", "general", "knockout_cd"}) {
    const AlgorithmInfo& info = AlgorithmByName(name);
    ASSERT_NE(info.make_step, nullptr) << name;
    const auto program = info.make_step()();
    ASSERT_NE(program, nullptr) << name;
    EXPECT_EQ(program->name(), info.name);
    EXPECT_TRUE(program->identical_draw_order()) << name;
    EXPECT_TRUE(static_cast<bool>(HandleFor(info).step_program)) << name;
  }
  // Baselines without a columnar twin yield a coroutine-only handle.
  const AlgorithmInfo& decay = AlgorithmByName("decay_no_cd");
  EXPECT_EQ(decay.make_step, nullptr);
  EXPECT_FALSE(static_cast<bool>(HandleFor(decay).step_program));
}

TEST(Registry, LookupByName) {
  EXPECT_EQ(AlgorithmByName("general").name, "general");
  EXPECT_TRUE(AlgorithmByName("two_active").requires_two_active);
  EXPECT_TRUE(AlgorithmByName("aloha_oracle").oracle);
  EXPECT_THROW(AlgorithmByName("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace crmc::harness
