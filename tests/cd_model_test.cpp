// Tests for the collision-detection model variants (Section 2's taxonomy):
// resolver semantics under each model, and the ablation showing the
// paper's algorithms rely on *strong* CD specifically.
#include <gtest/gtest.h>

#include <vector>

#include "core/two_active.h"
#include "support/assert.h"
#include "harness/registry.h"
#include "mac/channel.h"
#include "mac/resolver.h"
#include "sim/engine.h"

namespace crmc {
namespace {

using mac::Action;
using mac::CdModel;
using mac::Feedback;
using mac::Message;
using mac::Resolver;

std::vector<Feedback> ResolveAll(Resolver& resolver,
                                 const std::vector<Action>& actions) {
  std::vector<Feedback> fb;
  resolver.Resolve(actions, fb);
  return fb;
}

TEST(CdModels, ReceiverOnlyBlindsTransmitters) {
  Resolver r(2, CdModel::kReceiverOnly);
  // Lone transmitter: receivers get the message, the transmitter nothing.
  auto fb = ResolveAll(r, {Action::Transmit(1, Message{9}),
                           Action::Listen(1)});
  EXPECT_TRUE(fb[0].Silence());  // transmitter learns nothing
  EXPECT_TRUE(fb[1].MessageHeard());
  EXPECT_EQ(fb[1].message.payload, 9u);
  // Collision: receivers do detect it.
  fb = ResolveAll(r, {Action::Transmit(1), Action::Transmit(1),
                      Action::Listen(1)});
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].Silence());
  EXPECT_TRUE(fb[2].Collision());
}

TEST(CdModels, NoCdCollisionsReadAsSilence) {
  Resolver r(2, CdModel::kNone);
  auto fb = ResolveAll(r, {Action::Transmit(1), Action::Transmit(1),
                           Action::Listen(1)});
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].Silence());
  EXPECT_TRUE(fb[2].Silence());  // collision indistinguishable from idle
  // A clean message still gets through.
  fb = ResolveAll(r, {Action::Transmit(2, Message{5}), Action::Listen(2)});
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].MessageHeard());
}

TEST(CdModels, SolvedDetectionIsModelIndependent) {
  // "Solved" is defined by transmissions, not by what nodes perceive.
  for (const CdModel model :
       {CdModel::kStrong, CdModel::kReceiverOnly, CdModel::kNone}) {
    sim::EngineConfig config;
    config.num_active = 1;
    config.channels = 1;
    config.seed = 1;
    config.cd_model = model;
    const sim::RunResult r = sim::Engine::Run(
        config, [](sim::NodeContext& ctx) -> sim::ProtocolTask {
          co_await ctx.Transmit(mac::kPrimaryChannel);
        });
    EXPECT_TRUE(r.solved) << ToString(model);
    EXPECT_EQ(r.solved_round, 0);
  }
}

// The ablation: TwoActive needs transmitter-side CD. Under receiver-only
// CD a transmitter reads its own transmission back as silence — feedback
// that is impossible in the model the algorithm was designed for — and the
// protocol detects the broken assumption and aborts the run. Under strong
// CD the same seeds always solve.
TEST(CdAblation, TwoActiveRequiresStrongCd) {
  constexpr int kSeeds = 40;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    sim::EngineConfig config;
    config.num_active = 2;
    config.population = 1 << 16;
    config.channels = 64;
    config.seed = seed;
    config.max_rounds = 200;  // ~20x the strong-CD completion time
    config.cd_model = CdModel::kStrong;
    EXPECT_TRUE(sim::Engine::Run(config, core::MakeTwoActive()).solved)
        << "seed=" << seed;
    config.cd_model = CdModel::kReceiverOnly;
    EXPECT_THROW(sim::Engine::Run(config, core::MakeTwoActive()),
                 support::ProtocolAssumptionViolation)
        << "seed=" << seed;
  }
}

// The no-CD baselines only act on clean messages, so degrading the model
// from strong CD to none must not change their behaviour at all.
TEST(CdModels, NoCdBaselinesAreModelOblivious) {
  for (const char* name : {"decay_no_cd", "daum_multichannel_no_cd",
                           "expected_o1_multichannel"}) {
    const auto factory = harness::AlgorithmByName(name).make();
    sim::EngineConfig config;
    config.num_active = 50;
    config.population = 1 << 10;
    config.channels = 16;
    config.seed = 77;
    config.max_rounds = 500000;
    config.cd_model = CdModel::kStrong;
    const sim::RunResult strong = sim::Engine::Run(config, factory);
    config.cd_model = CdModel::kNone;
    const sim::RunResult none = sim::Engine::Run(config, factory);
    EXPECT_EQ(strong.solved_round, none.solved_round) << name;
    EXPECT_EQ(strong.total_transmissions, none.total_transmissions) << name;
  }
}

TEST(CdModels, NoCdStillSolvableByDecay) {
  sim::EngineConfig config;
  config.num_active = 100;
  config.population = 1 << 10;
  config.channels = 1;
  config.cd_model = CdModel::kNone;
  config.max_rounds = 500000;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const sim::RunResult r = sim::Engine::Run(
        config, harness::AlgorithmByName("decay_no_cd").make());
    ASSERT_TRUE(r.solved) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace crmc
