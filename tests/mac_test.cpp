// Unit tests for the MAC model: per-round resolution semantics.
#include <gtest/gtest.h>

#include <vector>

#include "mac/channel.h"
#include "mac/resolver.h"

namespace crmc::mac {
namespace {

std::vector<Feedback> ResolveAll(Resolver& resolver,
                                 const std::vector<Action>& actions) {
  std::vector<Feedback> fb;
  resolver.Resolve(actions, fb);
  return fb;
}

TEST(Resolver, SilenceWhenNobodyTransmits) {
  Resolver r(4);
  const auto fb = ResolveAll(r, {Action::Listen(1), Action::Listen(1)});
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].Silence());
}

TEST(Resolver, LoneTransmitterDeliversMessageToEveryone) {
  Resolver r(4);
  const auto fb = ResolveAll(
      r, {Action::Transmit(2, Message{99}), Action::Listen(2),
          Action::Listen(2)});
  // The transmitter hears its own message back (strong CD semantics).
  EXPECT_TRUE(fb[0].MessageHeard());
  EXPECT_EQ(fb[0].message.payload, 99u);
  EXPECT_TRUE(fb[1].MessageHeard());
  EXPECT_EQ(fb[1].message.payload, 99u);
  EXPECT_TRUE(fb[2].MessageHeard());
}

TEST(Resolver, TwoTransmittersCollide) {
  Resolver r(4);
  const auto fb =
      ResolveAll(r, {Action::Transmit(3), Action::Transmit(3),
                     Action::Listen(3)});
  EXPECT_TRUE(fb[0].Collision());
  EXPECT_TRUE(fb[1].Collision());
  EXPECT_TRUE(fb[2].Collision());
}

TEST(Resolver, ChannelsAreIndependent) {
  Resolver r(4);
  const auto fb = ResolveAll(
      r, {Action::Transmit(1, Message{7}), Action::Transmit(2),
          Action::Transmit(2), Action::Listen(3), Action::Listen(4)});
  EXPECT_TRUE(fb[0].MessageHeard());
  EXPECT_TRUE(fb[1].Collision());
  EXPECT_TRUE(fb[2].Collision());
  EXPECT_TRUE(fb[3].Silence());
  EXPECT_TRUE(fb[4].Silence());
}

TEST(Resolver, IdleNodesObserveNothing) {
  Resolver r(2);
  const auto fb = ResolveAll(r, {Action::Idle(), Action::Transmit(1)});
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].MessageHeard());
}

TEST(Resolver, SummaryCountsPrimaryTransmitters) {
  Resolver r(3);
  std::vector<Feedback> fb;
  const RoundSummary s1 = r.Resolve(
      std::vector<Action>{Action::Transmit(1), Action::Transmit(2),
                          Action::Listen(1)},
      fb);
  EXPECT_EQ(s1.primary_transmitters, 1);
  EXPECT_EQ(s1.total_transmissions, 2);
  EXPECT_EQ(s1.total_participants, 3);

  const RoundSummary s2 = r.Resolve(
      std::vector<Action>{Action::Transmit(1), Action::Transmit(1)}, fb);
  EXPECT_EQ(s2.primary_transmitters, 2);
}

TEST(Resolver, StateResetsBetweenRounds) {
  Resolver r(2);
  std::vector<Feedback> fb;
  r.Resolve(std::vector<Action>{Action::Transmit(1), Action::Transmit(1)},
            fb);
  EXPECT_TRUE(fb[0].Collision());
  r.Resolve(std::vector<Action>{Action::Listen(1), Action::Listen(1)}, fb);
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].Silence());
}

TEST(Resolver, ActivityOfReportsCounts) {
  Resolver r(3);
  std::vector<Feedback> fb;
  r.Resolve(std::vector<Action>{Action::Transmit(2), Action::Listen(2),
                                Action::Listen(2)},
            fb);
  EXPECT_EQ(r.ActivityOf(2).transmitters, 1);
  EXPECT_EQ(r.ActivityOf(2).listeners, 2);
  EXPECT_EQ(r.ActivityOf(1).transmitters, 0);
}

TEST(Resolver, RejectsZeroChannels) {
  EXPECT_THROW(Resolver(0), std::invalid_argument);
}

TEST(Resolver, ManyTransmittersStillCollision) {
  Resolver r(1);
  std::vector<Action> actions(50, Action::Transmit(1));
  std::vector<Feedback> fb;
  r.Resolve(actions, fb);
  for (const Feedback& f : fb) EXPECT_TRUE(f.Collision());
}

// The resolver clears only the channels the *previous* round touched. A
// channel that collided in round 1 and has no transmitter in round 2 must
// come back clean: no stale activity in feedback, touched_channels, or
// ActivityOf. (BatchEngine leans on this: it hands the resolver a different
// alive-prefix of actions every round and reuses it across whole trials.)
TEST(Resolver, ScratchStateDoesNotLeakAcrossRounds) {
  Resolver r(8);
  std::vector<Feedback> fb;
  // Round 1: collision on channel 5, lone message on channel 2.
  r.Resolve(std::vector<Action>{Action::Transmit(5), Action::Transmit(5),
                                Action::Transmit(2, Message{9})},
            fb);
  ASSERT_EQ(r.touched_channels().size(), 2u);
  EXPECT_TRUE(fb[0].Collision());

  // Round 2: nobody transmits on 5; a fresh listener there must observe
  // silence, not round-1's collision, and channel 2 must be forgotten.
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Listen(5), Action::Transmit(7)}, fb);
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].MessageHeard());
  EXPECT_EQ(s.total_transmissions, 1);
  EXPECT_EQ(r.touched_channels(), (std::vector<ChannelId>{5, 7}));
  EXPECT_EQ(r.ActivityOf(5).transmitters, 0);
  EXPECT_EQ(r.ActivityOf(5).listeners, 1);
  EXPECT_EQ(r.ActivityOf(2).transmitters, 0);
  EXPECT_EQ(r.ActivityOf(2).listeners, 0);
}

// ---------------------------------------------------------------------------
// CdModel::kReceiverOnly edge cases: half-duplex radios never sense their
// own channel, so a transmitter learns nothing — even when it is the lone
// sender, and even when there is nobody listening at all.
// ---------------------------------------------------------------------------

TEST(ResolverReceiverOnly, LoneTransmitterObservesNothing) {
  Resolver r(4, CdModel::kReceiverOnly);
  const auto fb = ResolveAll(
      r, {Action::Transmit(1, Message{42}), Action::Listen(1)});
  // The sender's own message was delivered, but half-duplex hardware
  // reports the blank default observation (reads as silence) to it.
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_EQ(fb[0].message.payload, 0u);
  // The listener still hears the message: receiving is unimpaired.
  EXPECT_TRUE(fb[1].MessageHeard());
  EXPECT_EQ(fb[1].message.payload, 42u);
}

TEST(ResolverReceiverOnly, TwoTransmittersZeroListeners) {
  Resolver r(4, CdModel::kReceiverOnly);
  const auto fb =
      ResolveAll(r, {Action::Transmit(2), Action::Transmit(2)});
  // A collision happened, but with no receivers on the channel *nobody*
  // observes it; both colliders read blank feedback.
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].Silence());
  EXPECT_FALSE(fb[0].Collision());
  EXPECT_FALSE(fb[1].Collision());
  // The model-level summary still knows the truth (solved-detection is
  // engine ground truth, not node observation).
  EXPECT_EQ(r.ActivityOf(2).transmitters, 2);
}

TEST(ResolverReceiverOnly, ListenerStillSeesCollision) {
  Resolver r(4, CdModel::kReceiverOnly);
  const auto fb = ResolveAll(
      r, {Action::Transmit(3), Action::Transmit(3), Action::Listen(3)});
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].Silence());
  EXPECT_TRUE(fb[2].Collision());
}

// Pristine-path invariants of the new RoundSummary delivery fields.
TEST(Resolver, SummaryCountsLoneDeliveries) {
  Resolver r(4);
  std::vector<Feedback> fb;
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Transmit(1), Action::Transmit(2),
                          Action::Transmit(3), Action::Transmit(3)},
      fb);
  EXPECT_EQ(s.lone_deliveries, 2);  // channels 1 and 2; 3 collided
  EXPECT_TRUE(s.primary_lone_delivered);

  const RoundSummary s2 = r.Resolve(
      std::vector<Action>{Action::Transmit(1), Action::Transmit(1)}, fb);
  EXPECT_EQ(s2.lone_deliveries, 0);
  EXPECT_FALSE(s2.primary_lone_delivered);
}

}  // namespace
}  // namespace crmc::mac
