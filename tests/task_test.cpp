// Unit tests for the coroutine Task machinery itself (lifetime, moves,
// exceptions, deep nesting) — exercised against a minimal manual driver
// rather than the full engine, so failures localize.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "sim/task.h"

namespace crmc::sim {
namespace {

// Tasks are lazy: nothing runs until awaited/resumed.
Task<int> SetFlagAndReturn(bool* flag, int value) {
  *flag = true;
  co_return value;
}

Task<void> AwaitInner(bool* flag, int* out) {
  *out = co_await SetFlagAndReturn(flag, 41);
}

TEST(Task, LazyStart) {
  bool ran = false;
  int out = 0;
  {
    Task<void> task = AwaitInner(&ran, &out);
    EXPECT_FALSE(ran);  // not started yet
    task.Resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(task.Done());
    EXPECT_EQ(out, 41);
  }
}

TEST(Task, DestroyWithoutRunningLeaksNothing) {
  // Destroying a never-started task must destroy the frame (verified by
  // parameter destructors running).
  struct Probe {
    std::shared_ptr<int> token;
  };
  auto token = std::make_shared<int>(7);
  struct Fn {
    static Task<void> Run(Probe p) {
      (void)p;
      co_return;
    }
  };
  {
    Task<void> task = Fn::Run(Probe{token});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);  // frame destroyed with the task
}

TEST(Task, MoveTransfersOwnership) {
  bool ran = false;
  int out = 0;
  Task<void> a = AwaitInner(&ran, &out);
  Task<void> b = std::move(a);
  EXPECT_FALSE(a.Valid());
  EXPECT_TRUE(b.Valid());
  b.Resume();
  EXPECT_TRUE(b.Done());
  EXPECT_EQ(out, 41);

  // Move-assignment destroys the previous task.
  Task<void> c = AwaitInner(&ran, &out);
  c = AwaitInner(&ran, &out);
  EXPECT_TRUE(c.Valid());
}

Task<int> Throwing() {
  throw std::runtime_error("inner failure");
  co_return 0;  // unreachable
}

Task<void> CatchesInner(std::string* what) {
  try {
    (void)co_await Throwing();
  } catch (const std::runtime_error& e) {
    *what = e.what();
  }
}

TEST(Task, InnerExceptionPropagatesToAwaiter) {
  std::string what;
  Task<void> task = CatchesInner(&what);
  task.Resume();
  EXPECT_TRUE(task.Done());
  EXPECT_EQ(what, "inner failure");
}

Task<void> ThrowsDirectly() {
  throw std::logic_error("top failure");
  co_return;  // unreachable
}

TEST(Task, TopLevelExceptionViaRethrowIfFailed) {
  Task<void> task = ThrowsDirectly();
  task.Resume();
  EXPECT_TRUE(task.Done());
  EXPECT_THROW(task.RethrowIfFailed(), std::logic_error);
}

// Deep nesting: symmetric transfer must not consume native stack — 100k
// nested awaits would overflow a stack-based implementation. The
// tail-call that makes handle-returning await_suspend stackless is only
// guaranteed under optimization, so unoptimized (Debug/sanitizer) builds
// run a shallow version.
Task<int> Nest(int depth) {
  if (depth == 0) co_return 1;
  const int below = co_await Nest(depth - 1);
  co_return below + 1;
}

Task<void> RunNest(int depth, int* out) { *out = co_await Nest(depth); }

// ASan (and other sanitizers) insert instrumented frames that defeat the
// symmetric-transfer tail call, so sanitized builds also take the shallow
// path even when optimized.
#if defined(__SANITIZE_ADDRESS__)
#define CRMC_TASK_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CRMC_TASK_TEST_SANITIZED 1
#endif
#endif

TEST(Task, DeepNestingDoesNotOverflowTheStack) {
#if defined(NDEBUG) && !defined(CRMC_TASK_TEST_SANITIZED)
  constexpr int kDepth = 100000;
#else
  constexpr int kDepth = 500;
#endif
  int out = 0;
  Task<void> task = RunNest(kDepth, &out);
  task.Resume();
  EXPECT_TRUE(task.Done());
  EXPECT_EQ(out, kDepth + 1);
}

Task<std::string> ValueCategories() { co_return std::string(1000, 'x'); }

Task<void> MovesValue(std::size_t* len) {
  const std::string s = co_await ValueCategories();
  *len = s.size();
}

TEST(Task, ReturnsMoveOnlyFriendlyValues) {
  std::size_t len = 0;
  Task<void> task = MovesValue(&len);
  task.Resume();
  EXPECT_EQ(len, 1000u);
}

}  // namespace
}  // namespace crmc::sim
