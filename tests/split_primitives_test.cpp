// Isolated tests for the Section 5.3 communication primitives, driven with
// synthetic cohort layouts (no LeafElection on top): CheckLevel verdicts
// and SplitSearch results are compared against brute force over the cohort
// positions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/split_primitives.h"
#include "sim/engine.h"
#include "support/rng.h"
#include "tree/channel_tree.h"

namespace crmc::core {
namespace {

using tree::ChannelTree;

// A synthetic cohort layout: `cohorts[i]` lists the leaves of cohort i in
// cID order (index 0 is the master). All cohorts must have equal size and
// the layout must satisfy Property 11 (each cohort's leaves share an
// ancestor at a common level, distinct across cohorts).
struct Layout {
  std::vector<std::vector<std::int32_t>> cohorts;
  std::int32_t num_leaves = 0;
  std::int32_t cnode_level = 0;  // common level of the cohort nodes
};

// Brute force: the smallest level at which all cohorts' ancestors are
// distinct (using each cohort's node = the LCA of its members).
std::int32_t BruteForceSplitLevel(const Layout& layout) {
  const ChannelTree tr(layout.num_leaves);
  std::vector<std::int32_t> cnodes;
  for (const auto& cohort : layout.cohorts) {
    cnodes.push_back(tr.AncestorAtLevel(cohort[0], layout.cnode_level));
  }
  for (std::int32_t level = 1; level <= layout.cnode_level; ++level) {
    std::set<std::int32_t> seen;
    bool distinct = true;
    for (const std::int32_t cnode : cnodes) {
      if (!seen.insert(cnode >> (layout.cnode_level - level)).second) {
        distinct = false;
        break;
      }
    }
    if (distinct) return level;
  }
  return layout.cnode_level;
}

// Runs SplitSearch for every member of every cohort simultaneously and
// returns the level each node computed (all must agree).
std::vector<std::int32_t> RunSplitSearch(const Layout& layout,
                                         bool force_binary = false) {
  const ChannelTree tr(layout.num_leaves);
  std::int32_t total = 0;
  for (const auto& cohort : layout.cohorts) {
    total += static_cast<std::int32_t>(cohort.size());
  }

  // Flatten (cohort, member) into engine node indices.
  struct NodeSetup {
    CohortView view;
  };
  std::vector<NodeSetup> setups;
  for (const auto& cohort : layout.cohorts) {
    for (std::size_t member = 0; member < cohort.size(); ++member) {
      CohortView view;
      view.leaf = cohort[member];
      view.cid = static_cast<std::int32_t>(member) + 1;
      view.cohort_size = static_cast<std::int32_t>(cohort.size());
      view.cnode_heap =
          tr.AncestorAtLevel(cohort[0], layout.cnode_level);
      view.cnode_level = layout.cnode_level;
      setups.push_back(NodeSetup{view});
    }
  }

  sim::EngineConfig config;
  config.num_active = total;
  config.population = std::max<std::int64_t>(total, layout.num_leaves);
  config.channels = tr.num_tree_nodes();
  config.seed = 1;
  config.stop_when_solved = false;
  config.max_rounds = 50000;

  struct Protocol {
    static sim::Task<void> Run(sim::NodeContext& ctx, ChannelTree tr,
                               CohortView view, bool force_binary) {
      const std::int32_t level =
          co_await SplitSearch(ctx, tr, view, force_binary);
      ctx.RecordMetric("split_level", level);
    }
  };
  const sim::RunResult result = sim::Engine::Run(
      config, [&](sim::NodeContext& ctx) {
        const CohortView view =
            setups[static_cast<std::size_t>(ctx.index())].view;
        return Protocol::Run(ctx, tr, view, force_binary);
      });
  std::vector<std::int32_t> levels;
  for (const auto v : result.MetricValues("split_level")) {
    levels.push_back(static_cast<std::int32_t>(v));
  }
  return levels;
}

TEST(SplitSearch, TwoSingletonCohortsSiblingLeaves) {
  // Leaves 5, 6 of an 8-leaf tree share their level-2 parent: the split
  // level is 3.
  Layout layout;
  layout.num_leaves = 8;
  layout.cnode_level = 3;
  layout.cohorts = {{5}, {6}};
  const auto levels = RunSplitSearch(layout);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0], 3);
  EXPECT_EQ(levels[1], 3);
  EXPECT_EQ(BruteForceSplitLevel(layout), 3);
}

TEST(SplitSearch, TwoSingletonCohortsOppositeSubtrees) {
  // Leaves 1 and 8 diverge at the root: split level 1.
  Layout layout;
  layout.num_leaves = 8;
  layout.cnode_level = 3;
  layout.cohorts = {{1}, {8}};
  const auto levels = RunSplitSearch(layout);
  for (const auto l : levels) EXPECT_EQ(l, 1);
}

TEST(SplitSearch, LargeCohortsAboveLeafLevel) {
  // Two cohorts of size 4 whose cohort nodes sit at level 2 of a 32-leaf
  // tree (level-2 nodes 4 and 5 — siblings, split level 2... nodes 4 and
  // 5 are children of node 2, so they diverge at level 2).
  Layout layout;
  layout.num_leaves = 32;
  layout.cnode_level = 2;
  // Cohort under level-2 node 4 (leaves 1..8) and node 5 (leaves 9..16):
  // members may be any leaves below the cohort node.
  layout.cohorts = {{1, 3, 6, 8}, {9, 12, 13, 16}};
  const auto levels = RunSplitSearch(layout);
  ASSERT_EQ(levels.size(), 8u);
  for (const auto l : levels) EXPECT_EQ(l, 2);
  EXPECT_EQ(BruteForceSplitLevel(layout), 2);
}

// Randomized property: generate valid layouts and compare against brute
// force, with and without the cohort acceleration.
TEST(SplitSearch, RandomLayoutsMatchBruteForce) {
  support::RandomSource rng(0x5eed5);
  for (int trial = 0; trial < 120; ++trial) {
    const std::int32_t height = static_cast<std::int32_t>(
        rng.UniformInt(2, 8));
    const std::int32_t num_leaves = 1 << height;
    const ChannelTree tr(num_leaves);
    // Cohort size 2^s, cohort nodes at level `cnode_level`.
    const std::int32_t s = static_cast<std::int32_t>(rng.UniformInt(0, 3));
    const std::int32_t size = 1 << s;
    const std::int32_t cnode_level =
        static_cast<std::int32_t>(rng.UniformInt(1, height));
    const std::int32_t nodes_at_level = 1 << cnode_level;
    const std::int32_t leaves_per_node = num_leaves / nodes_at_level;
    if (leaves_per_node < size) continue;  // cohort wouldn't fit
    const auto num_cohorts = static_cast<std::int64_t>(
        rng.UniformInt(2, std::min(nodes_at_level, 12)));
    // Choose distinct cohort nodes at cnode_level.
    const auto chosen = support::SampleWithoutReplacement(
        nodes_at_level, num_cohorts, rng);
    Layout layout;
    layout.num_leaves = num_leaves;
    layout.cnode_level = cnode_level;
    for (const auto node_pos : chosen) {
      // Leaves under level-cnode_level node at position node_pos (1-based):
      const std::int32_t first_leaf =
          static_cast<std::int32_t>((node_pos - 1)) * leaves_per_node + 1;
      const auto members = support::SampleWithoutReplacement(
          leaves_per_node, size, rng);
      std::vector<std::int32_t> cohort;
      for (const auto m : members) {
        cohort.push_back(first_leaf + static_cast<std::int32_t>(m) - 1);
      }
      layout.cohorts.push_back(std::move(cohort));
    }
    const std::int32_t expected = BruteForceSplitLevel(layout);
    for (const bool force_binary : {false, true}) {
      const auto levels = RunSplitSearch(layout, force_binary);
      ASSERT_FALSE(levels.empty());
      for (const auto l : levels) {
        ASSERT_EQ(l, expected)
            << "trial=" << trial << " L=" << num_leaves << " size=" << size
            << " level=" << cnode_level << " binary=" << force_binary;
      }
    }
  }
}

TEST(SplitSearch, RefinementCountMatchesSnir) {
  // Fully-occupied sibling cohorts at the leaf level of a tall tree: the
  // refinement count must be within the ceil(log(h)/log(p+1)) prediction.
  Layout layout;
  layout.num_leaves = 1 << 10;
  layout.cnode_level = 10;
  layout.cohorts = {{1}, {2}};
  const ChannelTree tr(layout.num_leaves);

  for (const std::int32_t size : {1, 2, 4, 8}) {
    // Build two cohorts of `size` adjacent leaves under distinct parents.
    layout.cohorts.clear();
    std::vector<std::int32_t> a, b;
    for (std::int32_t i = 0; i < size; ++i) {
      a.push_back(1 + i);
      b.push_back(layout.num_leaves / 2 + 1 + i);
    }
    const std::int32_t cohort_level =
        10 - (size == 1 ? 0 : (size == 2 ? 1 : (size == 4 ? 2 : 3)));
    layout.cnode_level = cohort_level;
    layout.cohorts = {a, b};

    std::int32_t total = 2 * size;
    sim::EngineConfig config;
    config.num_active = total;
    config.population = layout.num_leaves;
    config.channels = tr.num_tree_nodes();
    config.seed = 1;
    config.stop_when_solved = false;
    struct Protocol {
      static sim::Task<void> Run(sim::NodeContext& ctx, ChannelTree tr,
                                 CohortView view) {
        std::int64_t refinements = 0;
        (void)co_await SplitSearch(ctx, tr, view, false, &refinements);
        ctx.RecordMetric("refinements", refinements);
      }
    };
    const sim::RunResult result = sim::Engine::Run(
        config, [&](sim::NodeContext& ctx) {
          const std::int32_t idx = ctx.index();
          const bool second = idx >= size;
          const auto& cohort = layout.cohorts[second ? 1 : 0];
          CohortView view;
          view.leaf = cohort[static_cast<std::size_t>(idx % size)];
          view.cid = (idx % size) + 1;
          view.cohort_size = size;
          view.cnode_heap =
              tr.AncestorAtLevel(cohort[0], layout.cnode_level);
          view.cnode_level = layout.cnode_level;
          return Protocol::Run(ctx, tr, view);
        });
    const auto refinements = result.MetricValues("refinements");
    ASSERT_FALSE(refinements.empty());
    const double predicted = std::ceil(
        std::log2(static_cast<double>(layout.cnode_level) + 1.0) /
        std::log2(static_cast<double>(size) + 1.0));
    for (const auto r : refinements) {
      EXPECT_LE(r, static_cast<std::int64_t>(predicted) + 1)
          << "size=" << size;
    }
  }
}

}  // namespace
}  // namespace crmc::core
