// Tests for k-selection (repeated contention resolution / queue draining).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/k_selection.h"
#include "sim/engine.h"

namespace crmc::core {
namespace {

sim::RunResult Drain(std::int32_t num_active, std::int64_t population,
                     std::int32_t channels, std::uint64_t seed,
                     KSelectionParams params = {}) {
  sim::EngineConfig config;
  config.num_active = num_active;
  config.population = population;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = false;  // the run ends when the queue drains
  config.max_rounds = 8'000'000;
  return sim::Engine::Run(config, MakeKSelection(params));
}

using GridParams = std::tuple<std::int32_t, std::int32_t>;
class KSelectionSweep : public ::testing::TestWithParam<GridParams> {};

TEST_P(KSelectionSweep, DeliversEveryPacketExactlyOnce) {
  const auto [num_active, channels] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::RunResult r =
        Drain(num_active, 1 << 12, channels, seed);
    ASSERT_TRUE(r.all_terminated)
        << "|A|=" << num_active << " C=" << channels << " seed=" << seed;
    ASSERT_FALSE(r.timed_out);
    // Every node recorded the instance in which it delivered.
    const auto instances = r.MetricValues("delivered_instance");
    ASSERT_EQ(static_cast<std::int32_t>(instances.size()), num_active);
    // Instances are distinct: one delivery per instance.
    std::set<std::int64_t> distinct(instances.begin(), instances.end());
    EXPECT_EQ(distinct.size(), instances.size());
    // The engine saw at least one lone primary transmission per packet.
    EXPECT_GE(static_cast<std::int32_t>(r.all_solved_rounds.size()),
              num_active);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KSelectionSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 5, 24),
                       ::testing::Values<std::int32_t>(1, 8, 64)));

TEST(KSelection, InstancesAreConsecutiveFromOne) {
  const sim::RunResult r = Drain(10, 1 << 10, 32, 3);
  auto instances = r.MetricValues("delivered_instance");
  std::set<std::int64_t> distinct(instances.begin(), instances.end());
  ASSERT_EQ(distinct.size(), 10u);
  // One delivery per instance, no skipped instances: 1..10.
  EXPECT_EQ(*distinct.begin(), 1);
  EXPECT_EQ(*distinct.rbegin(), 10);
}

TEST(KSelection, RoundsScaleLinearlyInK) {
  const std::int64_t b = DefaultInstanceRounds(1 << 12, 64);
  for (const std::int32_t k : {2, 8, 32}) {
    const sim::RunResult r = Drain(k, 1 << 12, 64, 7);
    ASSERT_TRUE(r.all_terminated);
    EXPECT_EQ(r.rounds_executed, k * b) << "k=" << k;
  }
}

TEST(KSelection, CustomInstanceBudgetHonoured) {
  KSelectionParams params;
  params.instance_rounds = 200;
  const sim::RunResult r = Drain(4, 1 << 10, 32, 5, params);
  ASSERT_TRUE(r.all_terminated);
  EXPECT_EQ(r.rounds_executed, 4 * 200);
  // Deliveries land exactly on instance boundaries.
  for (const auto round : r.MetricValues("delivered_instance")) {
    EXPECT_GE(round, 1);
    EXPECT_LE(round, 4);
  }
  for (std::size_t i = 0; i < r.all_solved_rounds.size(); ++i) {
    // Delivery rounds are at offsets 199, 399, 599, 799 (mod 200 == 199)
    // — plus possibly earlier accidental solves inside elections.
    SUCCEED();
  }
  int boundary_deliveries = 0;
  for (const auto round : r.all_solved_rounds) {
    if ((round + 1) % 200 == 0) ++boundary_deliveries;
  }
  EXPECT_EQ(boundary_deliveries, 4);
}

TEST(KSelection, DeterministicGivenSeed) {
  const sim::RunResult a = Drain(12, 1 << 10, 16, 9);
  const sim::RunResult b = Drain(12, 1 << 10, 16, 9);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.MetricValues("delivered_instance"),
            b.MetricValues("delivered_instance"));
}

TEST(KSelection, SinglePacketDeliversInOneInstance) {
  const sim::RunResult r = Drain(1, 1 << 10, 16, 2);
  ASSERT_TRUE(r.all_terminated);
  const auto instances = r.MetricValues("delivered_instance");
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0], 1);
}

}  // namespace
}  // namespace crmc::core
