// Tests for execution tracing and energy (per-node transmission)
// accounting in the engine.
#include <gtest/gtest.h>

#include <sstream>

#include "core/two_active.h"
#include "mac/channel.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace crmc::sim {
namespace {

using mac::kPrimaryChannel;

Task<void> ScriptedPair(NodeContext& ctx) {
  if (ctx.index() == 0) {
    co_await ctx.Transmit(2, mac::Message{1});  // round 0: lone tx on ch 2
    co_await ctx.Transmit(3);                   // round 1: collision on ch 3
    co_await ctx.Transmit(kPrimaryChannel);     // round 2: lone tx on ch 1
  } else {
    co_await ctx.Listen(2);
    co_await ctx.Transmit(3);
    co_await ctx.Listen(kPrimaryChannel);
  }
}

TEST(Trace, RecordsTouchedChannelsPerRound) {
  EngineConfig config;
  config.num_active = 2;
  config.channels = 3;
  config.seed = 1;
  config.record_trace = true;
  config.stop_when_solved = false;
  const RunResult r = Engine::Run(config, [](NodeContext& ctx) {
    return ScriptedPair(ctx);
  });
  ASSERT_EQ(r.trace.size(), 3u);

  ASSERT_EQ(r.trace[0].events.size(), 1u);
  EXPECT_EQ(r.trace[0].events[0].channel, 2);
  EXPECT_EQ(r.trace[0].events[0].transmitters, 1);
  EXPECT_EQ(r.trace[0].events[0].listeners, 1);

  ASSERT_EQ(r.trace[1].events.size(), 1u);
  EXPECT_EQ(r.trace[1].events[0].channel, 3);
  EXPECT_EQ(r.trace[1].events[0].transmitters, 2);

  ASSERT_EQ(r.trace[2].events.size(), 1u);
  EXPECT_EQ(r.trace[2].events[0].channel, 1);
  EXPECT_EQ(r.trace[2].events[0].transmitters, 1);
}

TEST(Trace, RenderProducesLegendAndMarks) {
  EngineConfig config;
  config.num_active = 2;
  config.channels = 3;
  config.seed = 1;
  config.record_trace = true;
  config.stop_when_solved = false;
  const RunResult r = Engine::Run(config, [](NodeContext& ctx) {
    return ScriptedPair(ctx);
  });
  std::ostringstream os;
  RenderTrace(r.trace, 3, 10, os);
  const std::string out = os.str();
  EXPECT_NE(out.find('m'), std::string::npos);  // lone tx on channel 2
  EXPECT_NE(out.find('X'), std::string::npos);  // collision on channel 3
  EXPECT_NE(out.find('M'), std::string::npos);  // solving primary tx
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Trace, ElidesRoundsBeyondCap) {
  std::vector<RoundTrace> trace(20);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].round = static_cast<std::int64_t>(i);
  }
  std::ostringstream os;
  RenderTrace(trace, 4, 5, os);
  EXPECT_NE(os.str().find("15 more rounds elided"), std::string::npos);
}

TEST(Trace, OffByDefault) {
  EngineConfig config;
  config.num_active = 2;
  config.channels = 3;
  config.seed = 1;
  config.stop_when_solved = false;
  const RunResult r = Engine::Run(config, [](NodeContext& ctx) {
    return ScriptedPair(ctx);
  });
  EXPECT_TRUE(r.trace.empty());
}

TEST(Energy, PerNodeTransmissionAccounting) {
  EngineConfig config;
  config.num_active = 2;
  config.channels = 3;
  config.seed = 1;
  config.stop_when_solved = false;
  config.record_node_transmissions = true;
  const RunResult r = Engine::Run(config, [](NodeContext& ctx) {
    return ScriptedPair(ctx);
  });
  ASSERT_EQ(r.node_transmissions.size(), 2u);
  EXPECT_EQ(r.node_transmissions[0], 3);  // node 0 transmitted every round
  EXPECT_EQ(r.node_transmissions[1], 1);
  EXPECT_EQ(r.max_node_transmissions, 3);
  EXPECT_DOUBLE_EQ(r.mean_node_transmissions, 2.0);
  EXPECT_EQ(r.total_transmissions, 4);
}

TEST(Energy, TwoActiveEnergyIsSmall) {
  // Each TwoActive node transmits once per renaming attempt, once per
  // search probe, and the winner once more: energy stays in the same
  // O(log n/log C + loglog n) envelope as time.
  EngineConfig config;
  config.num_active = 2;
  config.population = 1 << 20;
  config.channels = 256;
  config.stop_when_solved = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    config.seed = seed;
    const RunResult r = Engine::Run(config, core::MakeTwoActive());
    EXPECT_LE(r.max_node_transmissions, r.rounds_executed);
    EXPECT_GE(r.max_node_transmissions, 2);
  }
}

}  // namespace
}  // namespace crmc::sim
