// Trial-parallel executor parity suite: TrialBatchEngine against the
// per-trial BatchEngine and the coroutine oracle.
//
// The executor's contract is bit-exactness per trial: running W seeds as
// lockstep SIMD lanes must reproduce every per-trial result field exactly,
// for every lane width, SIMD backend, and (lane-fusible or fallback)
// config. The sweeps below cover 2000+ seeds on the headline two_active
// shape plus the duel, channel-cap, run-to-completion, timeout and
// instrumentation variants, the per-lane fallback for faults / adversaries
// / protocols without a trial program, the philox-only rejection, and the
// threads x lane-width statistics identity at the harness level.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/general.h"
#include "core/two_active.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "robust/robust.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/step_program.h"
#include "sim/trial_engine.h"
#include "simd/dispatch.h"
#include "support/rng.h"

namespace crmc::sim {
namespace {

void ExpectSameResult(const RunResult& want, const RunResult& got,
                      std::uint64_t seed, const char* label) {
  SCOPED_TRACE(::testing::Message() << label << " seed=" << seed);
  EXPECT_EQ(want.solved, got.solved);
  EXPECT_EQ(want.solved_round, got.solved_round);
  EXPECT_EQ(want.all_solved_rounds, got.all_solved_rounds);
  EXPECT_EQ(want.rounds_executed, got.rounds_executed);
  EXPECT_EQ(want.timed_out, got.timed_out);
  EXPECT_EQ(want.all_terminated, got.all_terminated);
  EXPECT_EQ(want.total_transmissions, got.total_transmissions);
  EXPECT_EQ(want.jams_injected, got.jams_injected);
  EXPECT_EQ(want.erasures_injected, got.erasures_injected);
  EXPECT_EQ(want.cd_flips_injected, got.cd_flips_injected);
  EXPECT_EQ(want.faults_injected, got.faults_injected);
  EXPECT_EQ(want.crashed_nodes, got.crashed_nodes);
  EXPECT_EQ(want.adv_jams_spent, got.adv_jams_spent);
  EXPECT_EQ(want.adv_jams_effective, got.adv_jams_effective);
  EXPECT_EQ(want.adv_rounds_held, got.adv_rounds_held);
  EXPECT_EQ(want.adv_jams_echo, got.adv_jams_echo);
  EXPECT_EQ(want.adv_jams_backoff, got.adv_jams_backoff);
  EXPECT_EQ(want.epochs_used, got.epochs_used);
  EXPECT_EQ(want.retries, got.retries);
  EXPECT_EQ(want.confirm_rounds, got.confirm_rounds);
  EXPECT_EQ(want.backoff_rounds, got.backoff_rounds);
  EXPECT_EQ(want.confirmed, got.confirmed);
  EXPECT_EQ(want.adaptive_confirm_extra, got.adaptive_confirm_extra);
  EXPECT_EQ(want.adaptive_backoff_trimmed, got.adaptive_backoff_trimmed);
  EXPECT_EQ(want.confirm_quorum_peak, got.confirm_quorum_peak);
  EXPECT_EQ(want.stall_rounds, got.stall_rounds);
  EXPECT_EQ(want.wedged, got.wedged);
  EXPECT_EQ(want.assumption_violated, got.assumption_violated);
  EXPECT_EQ(want.max_node_transmissions, got.max_node_transmissions);
  EXPECT_DOUBLE_EQ(want.mean_node_transmissions, got.mean_node_transmissions);
  EXPECT_EQ(want.node_transmissions, got.node_transmissions);
}

// Runs `seeds` trials through the trial-parallel executor (one Run call —
// the engine chunks internally), the per-trial BatchEngine, and the
// coroutine oracle, requiring three-way bit-exact agreement per seed. The
// executor's fused_rounds must also match the per-trial batch engine's:
// on the lane path every round is fused, exactly like a pristine per-trial
// FastRound run; on the fallback path the trials literally run on a
// BatchEngine.
void CheckTrialParity(EngineConfig config, const ProtocolFactory& coroutine,
                      StepProgram& program, int seeds,
                      std::int32_t lane_width = 32,
                      std::uint64_t seed_base = 10'000) {
  config.rng = support::RngKind::kPhilox;
  TrialBatchEngine trial_engine(lane_width);
  BatchEngine batch_engine;
  std::vector<std::uint64_t> seed_list(static_cast<std::size_t>(seeds));
  for (int t = 0; t < seeds; ++t) {
    seed_list[static_cast<std::size_t>(t)] =
        seed_base + static_cast<std::uint64_t>(t);
  }
  std::vector<RunResult> lanes(seed_list.size());
  trial_engine.Run(config, program, seed_list, lanes);
  for (std::size_t t = 0; t < seed_list.size(); ++t) {
    config.seed = seed_list[t];
    const RunResult batch = batch_engine.Run(config, program);
    ExpectSameResult(batch, lanes[t], config.seed, "trial-vs-batch");
    EXPECT_EQ(batch.fused_rounds, lanes[t].fused_rounds);
    const RunResult coro = Engine::Run(config, coroutine);
    ExpectSameResult(coro, lanes[t], config.seed, "trial-vs-coroutine");
    if (::testing::Test::HasFailure()) break;  // one seed's dump is enough
  }
}

TEST(TrialEngineParity, TwoActive2000Seeds) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(TrialEngineParity, TwoActiveSingleChannelDuel) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 2;
  config.channels = 1;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 500);
}

// Duel mode has no |A| = 2 restriction: the lane path must handle a wide
// coin-flip population per lane. Six nodes still solve fast (a round wins
// with probability 6/64), so lanes retire by solving.
TEST(TrialEngineParity, DuelManyNodes) {
  EngineConfig config;
  config.population = 1 << 12;
  config.num_active = 6;
  config.channels = 1;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 300);
}

// 48 duelling nodes almost never produce a lone transmitter (48 * 2^-48
// per round — the flat-coin duel is the |A| = 2 degradation, not a
// knockout), so every engine must agree on the timeout path while the
// lane plane is 48 slots wide.
TEST(TrialEngineParity, DuelManyNodesTimeout) {
  EngineConfig config;
  config.population = 1 << 12;
  config.num_active = 48;
  config.channels = 1;
  config.max_rounds = 64;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 300);
}

TEST(TrialEngineParity, TwoActiveChannelCap) {
  EngineConfig config;
  config.population = 1 << 14;
  config.num_active = 2;
  config.channels = 1024;
  core::TwoActiveParams params;
  params.channel_cap = 48;  // non-power-of-two cap -> FloorPow2 = 32
  auto program = MakeTwoActiveProgram(params);
  CheckTrialParity(config, core::MakeTwoActive(params), *program, 300);
}

TEST(TrialEngineParity, TwoActiveRunToCompletion) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.stop_when_solved = false;  // lanes retire on termination instead
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 500);
}

TEST(TrialEngineParity, TwoActiveTimeout) {
  EngineConfig config;
  config.population = 1 << 16;
  config.num_active = 2;
  config.channels = 4;  // tall tree, tight cap: plenty of timed-out lanes
  config.max_rounds = 3;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 500);
}

TEST(TrialEngineParity, TwoActiveNodeTransmissions) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.record_node_transmissions = true;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 300);
}

// Lane-width sweep including widths that do not divide the seed count:
// chunking must be invisible in the results.
TEST(TrialEngineParity, LaneWidthInvisible) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.rng = support::RngKind::kPhilox;
  auto program = MakeTwoActiveProgram();
  std::vector<std::uint64_t> seeds(137);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    seeds[t] = 90'000 + static_cast<std::uint64_t>(t);
  }
  TrialBatchEngine wide(64);
  std::vector<RunResult> want(seeds.size());
  wide.Run(config, *program, seeds, want);
  for (const std::int32_t width : {1, 3, 32}) {
    TrialBatchEngine engine(width);
    std::vector<RunResult> got(seeds.size());
    engine.Run(config, *program, seeds, got);
    for (std::size_t t = 0; t < seeds.size(); ++t) {
      ExpectSameResult(want[t], got[t], seeds[t], "lane-width");
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// All compiled SIMD backends must produce the same lanes bit-exactly (the
// sanitizer tier runs this suite too, giving every backend a sanitized
// trial-executor pass).
TEST(TrialEngineParity, AllBackendsBitExact) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  auto program = MakeTwoActiveProgram();
  const simd::Backend original = simd::ActiveBackend();
  for (const simd::Backend backend :
       {simd::Backend::kScalar, simd::Backend::kSse42, simd::Backend::kAvx2}) {
    if (!simd::BackendAvailable(backend)) continue;
    SCOPED_TRACE(simd::ToString(backend));
    simd::SetBackend(backend);
    CheckTrialParity(config, core::MakeTwoActive(), *program, 300);
    if (::testing::Test::HasFailure()) break;
  }
  simd::SetBackend(original);
}

// ---------------------------------------------------------------------------
// Fallback coverage: configs outside the lane-fusible set must run per
// trial on the batch path — bit-exact against solo runs, lane width
// notwithstanding.
// ---------------------------------------------------------------------------

TEST(TrialEngineFallback, FaultsFallBackPerLane) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.max_rounds = 500;
  config.faults.jam_rate = 0.15;
  config.faults.flaky_cd_rate = 0.05;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 300);
}

TEST(TrialEngineFallback, AdversaryFallsBackPerLane) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.max_rounds = 4000;
  config.adversary.kind = adversary::Kind::kPrimaryCamper;
  config.adversary.budget = 8;
  config.adversary.per_round_cap = 2;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 300);
}

TEST(TrialEngineFallback, RobustWrapperFallsBackPerLane) {
  // --robust + --lanes W: the wrapper's fabricated rounds are outside the
  // lane-fusible set, so every trial must take the per-lane fallback and
  // stay bit-exact against lane width 1 (and the coroutine oracle) — for
  // both policies, with the wrapper-aware adversary in the loop.
  for (const robust::PolicyKind policy :
       {robust::PolicyKind::kStatic, robust::PolicyKind::kAdaptive}) {
    SCOPED_TRACE(robust::ToString(policy));
    EngineConfig config;
    config.population = 256;
    config.num_active = 2;
    config.channels = 16;
    config.max_rounds = 4000;
    config.robust.enabled = true;
    config.robust.policy = policy;
    config.robust.max_epochs = 4;
    config.robust.epoch_round_budget = 64;
    config.adversary.kind = adversary::Kind::kLookahead;
    config.adversary.budget = 40;
    config.adversary.per_round_cap = 2;
    auto program = MakeTwoActiveProgram();
    CheckTrialParity(config, core::MakeTwoActive(), *program, 200);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(TrialEngineFallback, RobustLaneWidthInvisibleAtHarnessLevel) {
  // The harness-level satellite: RunTrials with --robust and lane width 8
  // must aggregate bit-identically to lane width 1 — confirmations, epoch
  // bookkeeping, and the adaptive/hold accounting included.
  harness::TrialSpec spec;
  spec.population = 256;
  spec.num_active = 2;
  spec.channels = 16;
  spec.max_rounds = 4000;
  spec.rng = support::RngKind::kPhilox;
  spec.robust.enabled = true;
  spec.robust.policy = robust::PolicyKind::kAdaptive;
  spec.adversary.kind = adversary::Kind::kLearning;
  spec.adversary.budget = 30;
  const harness::ProtocolHandle handle(core::MakeTwoActive(),
                                       [] { return MakeTwoActiveProgram(); });
  spec.lane_width = 1;
  const harness::TrialSetResult narrow =
      harness::RunTrials(spec, handle, 64, false, 2);
  spec.lane_width = 8;
  const harness::TrialSetResult wide =
      harness::RunTrials(spec, handle, 64, false, 3);
  EXPECT_EQ(narrow.solved_rounds, wide.solved_rounds);
  EXPECT_EQ(narrow.unsolved, wide.unsolved);
  EXPECT_EQ(narrow.confirmed, wide.confirmed);
  EXPECT_EQ(narrow.epochs_used, wide.epochs_used);
  EXPECT_EQ(narrow.retries, wide.retries);
  EXPECT_EQ(narrow.confirm_rounds, wide.confirm_rounds);
  EXPECT_EQ(narrow.backoff_rounds, wide.backoff_rounds);
  EXPECT_EQ(narrow.adv_jams_spent, wide.adv_jams_spent);
  EXPECT_EQ(narrow.adv_rounds_held, wide.adv_rounds_held);
  EXPECT_EQ(narrow.adv_jams_echo, wide.adv_jams_echo);
  EXPECT_EQ(narrow.adv_jams_backoff, wide.adv_jams_backoff);
  EXPECT_EQ(narrow.adaptive_confirm_extra, wide.adaptive_confirm_extra);
  EXPECT_EQ(narrow.adaptive_backoff_trimmed, wide.adaptive_backoff_trimmed);
  EXPECT_EQ(narrow.confirm_quorum_peak, wide.confirm_quorum_peak);
  EXPECT_EQ(narrow.rounds_total, wide.rounds_total);
}

TEST(TrialEngineFallback, ProtocolWithoutTrialProgram) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  auto program = MakeGeneralProgram();
  CheckTrialParity(config, core::MakeGeneral(), *program, 200);
}

TEST(TrialEngineFallback, NonDuelWideActiveSetFallsBack) {
  // two_active has a trial program, but its non-duel lane path only covers
  // |A| = 2; a wider active set must fall back wholesale (TrialProgram
  // Reset declines), still bit-exact.
  EngineConfig config;
  config.population = 1024;
  config.num_active = 5;
  config.channels = 16;
  // Five transmitters break the |A| = 2 model once a renamed pair reaches
  // its final round with an interloper present (CRMC_PROTO_CHECK throws on
  // pristine runs in every engine, by design). Three rounds is one rename
  // plus at most two search rounds — final rounds never execute, so every
  // engine times out identically instead.
  config.max_rounds = 3;
  auto program = MakeTwoActiveProgram();
  CheckTrialParity(config, core::MakeTwoActive(), *program, 100);
}

TEST(TrialEngineFallback, NoFusedRoundsFallsBack) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.rng = support::RngKind::kPhilox;
  auto program = MakeTwoActiveProgram();
  TrialBatchEngine trial_engine;
  trial_engine.set_fused_rounds(false);
  BatchEngine generic;
  generic.set_fused_rounds(false);
  std::vector<std::uint64_t> seeds(100);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    seeds[t] = 70'000 + static_cast<std::uint64_t>(t);
  }
  std::vector<RunResult> lanes(seeds.size());
  trial_engine.Run(config, *program, seeds, lanes);
  for (std::size_t t = 0; t < seeds.size(); ++t) {
    config.seed = seeds[t];
    const RunResult want = generic.Run(config, *program);
    ExpectSameResult(want, lanes[t], config.seed, "no-fused");
    EXPECT_EQ(lanes[t].fused_rounds, 0);
    if (::testing::Test::HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Contract checks.
// ---------------------------------------------------------------------------

TEST(TrialEngine, RejectsXoshiro) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.rng = support::RngKind::kXoshiro;
  auto program = MakeTwoActiveProgram();
  TrialBatchEngine engine;
  std::vector<std::uint64_t> seeds{1, 2, 3};
  std::vector<RunResult> results(seeds.size());
  try {
    engine.Run(config, *program, seeds, results);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("philox"), std::string::npos);
  }
}

TEST(TrialEngine, RejectsBadConfig) {
  auto program = MakeTwoActiveProgram();
  TrialBatchEngine engine;
  std::vector<std::uint64_t> seeds{1};
  std::vector<RunResult> results(1);
  EngineConfig config;
  config.num_active = 0;
  config.rng = support::RngKind::kPhilox;
  EXPECT_THROW(engine.Run(config, *program, seeds, results),
               std::invalid_argument);
  EXPECT_THROW(TrialBatchEngine(0), std::exception);
}

// ---------------------------------------------------------------------------
// Harness integration: RunTrials with lane_width > 1 must produce the same
// statistics as lane width 1 for every thread count — trials are
// seed-indexed, so the threads x lane-width sharding grid is invisible.
// ---------------------------------------------------------------------------

TEST(TrialEngineHarness, ThreadsTimesLaneWidthIdentity) {
  harness::TrialSpec spec;
  spec.population = 256;
  spec.num_active = 2;
  spec.channels = 16;
  spec.rng = support::RngKind::kPhilox;
  const harness::ProtocolHandle handle =
      harness::HandleFor(harness::AlgorithmByName("two_active"));
  constexpr std::int32_t kTrials = 301;  // not a multiple of any lane width
  spec.lane_width = 1;
  const harness::TrialSetResult want =
      harness::RunTrials(spec, handle, kTrials, /*keep_runs=*/false,
                         /*threads=*/1);
  for (const std::int32_t threads : {1, 3}) {
    for (const std::int32_t lanes : {4, 32}) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " lanes=" << lanes);
      spec.lane_width = lanes;
      const harness::TrialSetResult got =
          harness::RunTrials(spec, handle, kTrials, /*keep_runs=*/false,
                             threads);
      EXPECT_EQ(want.solved_rounds, got.solved_rounds);
      EXPECT_EQ(want.unsolved, got.unsolved);
      EXPECT_EQ(want.timed_out, got.timed_out);
      EXPECT_EQ(want.wedged, got.wedged);
      EXPECT_EQ(want.deluded, got.deluded);
      EXPECT_DOUBLE_EQ(want.summary.mean, got.summary.mean);
      EXPECT_EQ(want.summary.max, got.summary.max);
    }
  }
}

}  // namespace
}  // namespace crmc::sim
