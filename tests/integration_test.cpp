// Cross-module integration tests: every registered algorithm on shared
// scenarios, model-safety properties, and cross-algorithm sanity relations.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "harness/registry.h"
#include "harness/runner.h"
#include "sim/engine.h"

namespace crmc {
namespace {

using harness::AlgorithmByName;
using harness::AlgorithmInfo;
using harness::Algorithms;

sim::RunResult RunAlgo(const AlgorithmInfo& info, std::int32_t num_active,
                       std::int64_t population, std::int32_t channels,
                       std::uint64_t seed) {
  sim::EngineConfig config;
  config.num_active = num_active;
  config.population = population;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = true;
  config.max_rounds = 3'000'000;
  return sim::Engine::Run(config, info.make());
}

// Every registered algorithm solves a moderate instance.
class AllAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAlgorithms, SolvesAModerateInstance) {
  const AlgorithmInfo& info = AlgorithmByName(GetParam());
  const std::int32_t num_active = info.requires_two_active ? 2 : 50;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::RunResult r = RunAlgo(info, num_active, 1 << 12, 32, seed);
    ASSERT_TRUE(r.solved) << info.name << " seed=" << seed;
  }
}

TEST_P(AllAlgorithms, SolvesOnASingleChannel) {
  const AlgorithmInfo& info = AlgorithmByName(GetParam());
  const std::int32_t num_active = info.requires_two_active ? 2 : 20;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::RunResult r = RunAlgo(info, num_active, 1 << 10, 1, seed);
    ASSERT_TRUE(r.solved) << info.name << " seed=" << seed;
  }
}

TEST_P(AllAlgorithms, SolvedImpliesLonePrimaryTransmission) {
  // The engine's solved flag is definitionally a lone transmission on the
  // primary channel; re-run without early stop and confirm the protocol
  // also terminates for self-terminating algorithms.
  const AlgorithmInfo& info = AlgorithmByName(GetParam());
  if (!info.self_terminating) GTEST_SKIP();
  sim::EngineConfig config;
  config.num_active = info.requires_two_active ? 2 : 30;
  config.population = 1 << 10;
  config.channels = 16;
  config.seed = 9;
  config.stop_when_solved = false;
  config.max_rounds = 3'000'000;
  const sim::RunResult r = sim::Engine::Run(config, info.make());
  EXPECT_TRUE(r.solved) << info.name;
  EXPECT_TRUE(r.all_terminated) << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllAlgorithms,
    ::testing::Values("two_active", "general", "knockout_cd",
                      "binary_descent_cd", "decay_no_cd",
                      "daum_multichannel_no_cd", "willard_cd",
                      "expected_o1_multichannel", "aloha_oracle"));

// The paper's headline comparison: with many channels and CD, the paper's
// algorithms beat the single-channel and no-CD baselines.
TEST(CrossAlgorithm, PaperBeatsBaselinesAtScale) {
  // The paper's advantage is a w.h.p. guarantee, so compare worst cases
  // over many trials: binary descent's solved round is geometric-tailed
  // (rate 1/2 per round — max over 20000 trials lands around lg 20000
  // ~ 14), while TwoActive's worst case is renaming (geometric with rate
  // 1/1024) plus a log log search: max stays in single digits.
  harness::TrialSpec spec;
  spec.population = 1 << 20;
  spec.num_active = 2;
  spec.channels = 1024;
  constexpr int kTrials = 20000;
  const harness::TrialSetResult two_active = harness::RunTrials(
      spec, AlgorithmByName("two_active").make(), kTrials);
  const harness::TrialSetResult descent = harness::RunTrials(
      spec, AlgorithmByName("binary_descent_cd").make(), kTrials);
  ASSERT_EQ(two_active.unsolved, 0);
  ASSERT_EQ(descent.unsolved, 0);
  EXPECT_LT(two_active.summary.max, descent.summary.max);
}

TEST(CrossAlgorithm, GeneralBeatsDecayAndDaum) {
  harness::TrialSpec spec;
  spec.population = 1 << 14;
  spec.num_active = 1 << 14;
  spec.channels = 256;
  constexpr int kTrials = 15;
  const double general = harness::MeanSolvedRounds(
      spec, AlgorithmByName("general").make(), kTrials);
  const double decay = harness::MeanSolvedRounds(
      spec, AlgorithmByName("decay_no_cd").make(), kTrials);
  const double daum = harness::MeanSolvedRounds(
      spec, AlgorithmByName("daum_multichannel_no_cd").make(), kTrials);
  EXPECT_LT(general, decay);
  EXPECT_LT(general, daum);
}

// Liveness property: no algorithm ever deadlocks with zero participants —
// runs always end solved (or, for non-terminating baselines, keep running).
TEST(CrossAlgorithm, NoRunDiesUnsolved) {
  for (const AlgorithmInfo& info : Algorithms()) {
    const std::int32_t num_active = info.requires_two_active ? 2 : 17;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const sim::RunResult r = RunAlgo(info, num_active, 512, 8, seed);
      ASSERT_TRUE(r.solved || r.timed_out) << info.name << " seed=" << seed;
      ASSERT_TRUE(r.solved) << info.name << " timed out, seed=" << seed;
    }
  }
}

// Determinism across the whole registry.
TEST(CrossAlgorithm, EveryAlgorithmIsSeedDeterministic) {
  for (const AlgorithmInfo& info : Algorithms()) {
    const std::int32_t num_active = info.requires_two_active ? 2 : 25;
    const sim::RunResult a = RunAlgo(info, num_active, 1 << 10, 16, 1234);
    const sim::RunResult b = RunAlgo(info, num_active, 1 << 10, 16, 1234);
    EXPECT_EQ(a.solved_round, b.solved_round) << info.name;
    EXPECT_EQ(a.total_transmissions, b.total_transmissions) << info.name;
  }
}

}  // namespace
}  // namespace crmc
