// Unit tests for src/support: bit math and RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "support/bits.h"
#include "support/rng.h"
#include "support/small_vector.h"

namespace crmc::support {
namespace {

TEST(Bits, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(std::uint64_t{1} << 63), 63);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(Bits, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(48));
  EXPECT_EQ(FloorPow2(1), 1u);
  EXPECT_EQ(FloorPow2(63), 32u);
  EXPECT_EQ(FloorPow2(64), 64u);
  EXPECT_EQ(CeilPow2(63), 64u);
  EXPECT_EQ(CeilPow2(64), 64u);
  EXPECT_EQ(CeilPow2(65), 128u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 3), 0);
  EXPECT_EQ(CeilDiv(1, 3), 1);
  EXPECT_EQ(CeilDiv(3, 3), 1);
  EXPECT_EQ(CeilDiv(4, 3), 2);
  EXPECT_EQ(CeilDiv(9, 3), 3);
}

TEST(Bits, CeilLgLg) {
  // lg lg 4 = 1, lg lg 16 = 2, lg lg 256 = 3, lg lg 65536 = 4.
  EXPECT_EQ(CeilLgLg(2), 1);  // clamped to >= 1
  EXPECT_EQ(CeilLgLg(4), 1);
  EXPECT_EQ(CeilLgLg(16), 2);
  EXPECT_EQ(CeilLgLg(17), 3);  // ceil(lg ceil(lg 17)) = ceil(lg 5) = 3
  EXPECT_EQ(CeilLgLg(256), 3);
  EXPECT_EQ(CeilLgLg(65536), 4);
  EXPECT_EQ(CeilLgLg(std::uint64_t{1} << 32), 5);
}

TEST(Rng, Deterministic) {
  RandomSource a(42);
  RandomSource b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, StreamsDiffer) {
  RandomSource a = RandomSource::ForStream(7, 1);
  RandomSource b = RandomSource::ForStream(7, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformIntRange) {
  RandomSource rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 17);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 17);
  }
  // Degenerate range.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  RandomSource rng(99);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(rng.UniformInt(0, kBuckets - 1))];
  }
  // Chi-squared with 15 dof; 99.9th percentile ~ 37.7.
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 45.0) << "uniformity chi-squared too large";
}

TEST(Rng, BernoulliMatchesProbability) {
  RandomSource rng(123);
  constexpr int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kSamples;
  EXPECT_NEAR(rate, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, UniformDoubleInUnitInterval) {
  RandomSource rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Sampling, WithoutReplacementIsDistinctAndInRange) {
  RandomSource rng(77);
  const auto sample = SampleWithoutReplacement(1000000, 500, rng);
  ASSERT_EQ(sample.size(), 500u);
  std::set<std::int64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 500u);
  for (const std::int64_t v : sample) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000000);
  }
}

TEST(Sampling, FullPopulationIsPermutation) {
  RandomSource rng(3);
  const auto sample = SampleWithoutReplacement(64, 64, rng);
  std::set<std::int64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 64u);
  EXPECT_EQ(*distinct.begin(), 1);
  EXPECT_EQ(*distinct.rbegin(), 64);
}

TEST(Sampling, MarginalsAreUniform) {
  // Each value of [1, 20] should appear in a 5-element sample with
  // probability 1/4.
  RandomSource rng(11);
  std::vector<int> counts(21, 0);
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    for (const std::int64_t v : SampleWithoutReplacement(20, 5, rng)) {
      ++counts[static_cast<std::size_t>(v)];
    }
  }
  for (int v = 1; v <= 20; ++v) {
    const double rate = static_cast<double>(counts[v]) / kTrials;
    EXPECT_NEAR(rate, 0.25, 0.02) << "value " << v;
  }
}

TEST(Sampling, RejectsBadArguments) {
  RandomSource rng(1);
  EXPECT_THROW(SampleWithoutReplacement(5, 6, rng), std::invalid_argument);
  EXPECT_THROW(SampleWithoutReplacement(5, -1, rng), std::invalid_argument);
}

TEST(Sampling, FullPopulationShortcutIsIdentityAndDrawsNothing) {
  RandomSource rng(42);
  RandomSource twin(42);
  const std::vector<std::int64_t> ids =
      SampleWithoutReplacement(128, 128, rng);
  ASSERT_EQ(ids.size(), 128u);
  for (std::int64_t i = 0; i < 128; ++i) {
    EXPECT_EQ(ids[static_cast<std::size_t>(i)], i + 1);
  }
  // The shortcut consumed no randomness: the stream is untouched.
  EXPECT_EQ(rng.NextU64(), twin.NextU64());
}

// The batch samplers must consume the generator exactly like their scalar
// twins and return identical results — the BatchEngine parity guarantee
// bottoms out here.
TEST(Rng, BatchUniformIntMatchesScalar) {
  const std::pair<std::int64_t, std::int64_t> ranges[] = {
      {1, 64}, {1, 7}, {0, 0}, {-5, 5}, {1, 1000000007}};
  for (const auto& [lo, hi] : ranges) {
    RandomSource scalar(123);
    RandomSource batch(123);
    const BatchUniformInt draw(lo, hi);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_EQ(scalar.UniformInt(lo, hi), draw.Draw(batch))
          << "range [" << lo << ", " << hi << "] draw " << i;
    }
  }
}

TEST(Rng, BatchBernoulliMatchesScalar) {
  for (const double p : {0.5, 1e-3, 0.999, 1.0 / 3.0, 0.25}) {
    RandomSource scalar(9);
    RandomSource batch(9);
    const BatchBernoulli draw(p);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_EQ(scalar.Bernoulli(p), draw.Draw(batch))
          << "p=" << p << " draw " << i;
    }
  }
}

TEST(Rng, BatchBernoulliDegenerateConsumesNoDraw) {
  RandomSource used(5);
  RandomSource twin(5);
  const BatchBernoulli never(0.0);
  const BatchBernoulli always(1.0);
  EXPECT_FALSE(never.Draw(used));
  EXPECT_TRUE(always.Draw(used));
  // Matches RandomSource::Bernoulli, which early-outs without a draw.
  EXPECT_EQ(used.NextU64(), twin.NextU64());
}

TEST(SmallVector, InlineThenSpill) {
  SmallVector<std::int64_t, 2> v;
  EXPECT_TRUE(v.empty());
  v.push_back(7);
  v.push_back(8);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v.back(), 8);
  for (std::int64_t i = 0; i < 100; ++i) v.push_back(i);  // heap spill
  EXPECT_EQ(v.size(), 102u);
  EXPECT_EQ(v[1], 8);
  EXPECT_EQ(v[2], 0);
  EXPECT_EQ(v.back(), 99);
}

TEST(SmallVector, CopyMoveEquality) {
  SmallVector<std::int64_t, 2> a;
  a.push_back(1);
  SmallVector<std::int64_t, 2> b = a;  // inline copy
  EXPECT_TRUE(a == b);
  b.push_back(2);
  EXPECT_FALSE(a == b);

  for (std::int64_t i = 0; i < 50; ++i) a.push_back(i);  // spilled source
  SmallVector<std::int64_t, 2> c = a;                    // heap copy
  EXPECT_TRUE(a == c);
  SmallVector<std::int64_t, 2> d = std::move(a);  // heap steal
  EXPECT_TRUE(c == d);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd reset
  a = d;                   // reassign after move-out
  EXPECT_TRUE(a == c);
  d = std::move(b);  // inline move over a heap target
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d[1], 2);
}

}  // namespace
}  // namespace crmc::support
