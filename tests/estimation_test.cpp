// Tests for the active-count estimators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/estimation.h"
#include "sim/engine.h"

namespace crmc::core {
namespace {

struct EstimateStats {
  std::vector<std::int64_t> exponents;  // one agreed value per trial
};

EstimateStats Collect(const sim::ProtocolFactory& factory,
                      std::int32_t num_active, std::int64_t population,
                      std::int32_t channels, int trials) {
  EstimateStats stats;
  for (int t = 0; t < trials; ++t) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.population = population;
    config.channels = channels;
    config.seed = static_cast<std::uint64_t>(t) + 1;
    config.stop_when_solved = false;
    config.max_rounds = 100000;
    const sim::RunResult r = sim::Engine::Run(config, factory);
    EXPECT_TRUE(r.all_terminated);
    const auto values = r.MetricValues("estimate_log2");
    EXPECT_EQ(static_cast<std::int32_t>(values.size()), num_active);
    // Agreement: every node reports the same exponent.
    std::set<std::int64_t> distinct(values.begin(), values.end());
    EXPECT_EQ(distinct.size(), 1u) << "trial " << t;
    stats.exponents.push_back(values.front());
  }
  return stats;
}

double MedianError(const EstimateStats& stats, std::int32_t num_active) {
  // |exponent - lg |A||, median over trials.
  std::vector<double> errors;
  const double truth = std::log2(static_cast<double>(num_active));
  for (const auto e : stats.exponents) {
    errors.push_back(std::abs(static_cast<double>(e) - truth));
  }
  std::sort(errors.begin(), errors.end());
  return errors[errors.size() / 2];
}

using Params = std::tuple<std::int32_t, const char*>;
class EstimatorSweep : public ::testing::TestWithParam<Params> {};

TEST_P(EstimatorSweep, ConstantFactorAccuracy) {
  const auto [num_active, which] = GetParam();
  const bool geometric = which[0] == 'g';
  const auto factory = geometric ? MakeGeometricEstimateOnly()
                                 : MakeDensityEstimateOnly();
  const std::int32_t channels = geometric ? 32 : 1;
  const EstimateStats stats =
      Collect(factory, num_active, 1 << 16, channels, 40);
  // Median (over trials) absolute error of the exponent <= 3, i.e. the
  // typical estimate is within a factor of 8 — constant-factor as claimed.
  EXPECT_LE(MedianError(stats, num_active), 3.0)
      << which << " |A|=" << num_active;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EstimatorSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 4, 32, 256, 4096),
                       ::testing::Values("geometric", "density")));

TEST(GeometricEstimate, SaturatesAtChannelBudget) {
  // With only 4 channels the estimator can't see above level 4: estimates
  // for huge |A| clamp near lg C rather than lg |A|.
  const EstimateStats stats =
      Collect(MakeGeometricEstimateOnly(), 4096, 1 << 16, 4, 20);
  for (const auto e : stats.exponents) EXPECT_LE(e, 4);
}

TEST(GeometricEstimate, RoundCostIsLogLog) {
  sim::EngineConfig config;
  config.num_active = 500;
  config.population = 1 << 20;
  config.channels = 64;
  config.seed = 1;
  config.stop_when_solved = false;
  EstimationParams params;
  params.samples = 1;
  const sim::RunResult r =
      sim::Engine::Run(config, MakeGeometricEstimateOnly(params));
  // One sample = one binary search over <= 21 levels: <= 6 probes.
  EXPECT_LE(r.rounds_executed, 6);
}

TEST(DensityEstimate, RoundCostIsLogLogPerSample) {
  sim::EngineConfig config;
  config.num_active = 500;
  config.population = 1 << 20;
  config.channels = 1;
  config.seed = 1;
  config.stop_when_solved = false;
  EstimationParams params;
  params.samples = 3;
  const sim::RunResult r =
      sim::Engine::Run(config, MakeDensityEstimateOnly(params));
  // Each sample's search is <= ceil(lg 21) + 1 probes.
  EXPECT_LE(r.rounds_executed, 3 * 6);
}

TEST(Estimators, DeterministicGivenSeed) {
  for (const auto& factory :
       {MakeGeometricEstimateOnly(), MakeDensityEstimateOnly()}) {
    sim::EngineConfig config;
    config.num_active = 64;
    config.population = 1 << 12;
    config.channels = 16;
    config.seed = 77;
    config.stop_when_solved = false;
    const sim::RunResult a = sim::Engine::Run(config, factory);
    const sim::RunResult b = sim::Engine::Run(config, factory);
    EXPECT_EQ(a.MetricValues("estimate_log2"),
              b.MetricValues("estimate_log2"));
  }
}

TEST(Estimators, RejectBadParams) {
  EstimationParams bad;
  bad.samples = 0;
  sim::EngineConfig config;
  config.num_active = 2;
  config.channels = 4;
  config.seed = 1;
  EXPECT_THROW(sim::Engine::Run(config, MakeGeometricEstimateOnly(bad)),
               std::invalid_argument);
}

}  // namespace
}  // namespace crmc::core
