// Tests for the Section 3 non-simultaneous wakeup transform.
#include <gtest/gtest.h>

#include <vector>

#include "core/general.h"
#include "core/reduce.h"
#include "core/two_active.h"
#include "core/wakeup_transform.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace crmc::core {
namespace {

sim::RunResult RunStaggered(const std::vector<std::int64_t>& delays,
                            const sim::ProtocolFactory& inner,
                            std::int64_t population, std::int32_t channels,
                            std::uint64_t seed) {
  sim::EngineConfig config;
  config.num_active = static_cast<std::int32_t>(delays.size());
  config.population = population;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = true;
  config.max_rounds = 1'000'000;
  return sim::Engine::Run(config, MakeWakeupTransform(delays, inner));
}

TEST(WakeupTransform, SimultaneousWakeStillSolves) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunStaggered({0, 0}, MakeTwoActive(), 1 << 12,
                                          64, seed);
    ASSERT_TRUE(r.solved) << "seed=" << seed;
  }
}

TEST(WakeupTransform, StaggeredTwoNodesSolve) {
  // The late waker must hear the early starter's beacon and bow out; the
  // lone starter's own beacon is a lone primary transmission, solving the
  // problem. Delays differing by >= 1 exercise every relative parity.
  for (std::int64_t gap = 1; gap <= 5; ++gap) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const sim::RunResult r = RunStaggered({0, gap}, MakeTwoActive(),
                                            1 << 12, 64, seed);
      ASSERT_TRUE(r.solved) << "gap=" << gap << " seed=" << seed;
      // A single starter beacons alone at its third active round.
      EXPECT_EQ(r.solved_round, 2) << "gap=" << gap;
    }
  }
}

TEST(WakeupTransform, ManyNodesMixedDelaysSolve) {
  support::RandomSource rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::int64_t> delays(40);
    for (auto& d : delays) d = rng.UniformInt(0, 6);
    const sim::RunResult r =
        RunStaggered(delays, MakeGeneral(), 1 << 12, 64,
                     static_cast<std::uint64_t>(trial) + 1);
    ASSERT_TRUE(r.solved) << "trial=" << trial;
  }
}

TEST(WakeupTransform, AllSameDelaySolvesLikeShiftedRun) {
  // Everyone waking at round 5 behaves like a simultaneous run shifted by
  // 5 + 2 listening rounds, at a 2x round cost for the protocol itself.
  std::vector<std::int64_t> delays(64, 5);
  const sim::RunResult staggered =
      RunStaggered(delays, MakeGeneral(), 1 << 12, 64, 7);
  ASSERT_TRUE(staggered.solved);

  sim::EngineConfig config;
  config.num_active = 64;
  config.population = 1 << 12;
  config.channels = 64;
  config.seed = 7;
  const sim::RunResult plain = sim::Engine::Run(config, MakeGeneral());
  ASSERT_TRUE(plain.solved);
  // Factor-2 overhead plus the 5-round delay and the 2 listening rounds
  // plus the leading beacon.
  EXPECT_LE(staggered.solved_round, 2 * plain.solved_round + 10);
}

TEST(WakeupTransform, LateWakersDoNotDisturbEarlierCohort) {
  // One early node (delay 0) and many late nodes. The early node starts
  // alone: its first beacon solves the problem at round 2, regardless of
  // how many nodes pile in afterwards.
  std::vector<std::int64_t> delays(32, 4);
  delays[0] = 0;
  const sim::RunResult r =
      RunStaggered(delays, MakeGeneral(), 1 << 12, 64, 11);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.solved_round, 2);
}

TEST(WakeupTransform, RejectsWrongDelayCount) {
  sim::EngineConfig config;
  config.num_active = 3;
  config.channels = 4;
  config.seed = 1;
  EXPECT_THROW(
      sim::Engine::Run(config, MakeWakeupTransform({0, 1}, MakeGeneral())),
      std::invalid_argument);
}

}  // namespace
}  // namespace crmc::core
