// Scalar-vs-vector bit-exactness for the simd kernel layer: every kernel
// must produce identical outputs AND leave identical per-lane RNG state
// under every backend available on this binary+CPU. Backends are forced
// via simd::SetBackend, so on an AVX2 host a single run covers scalar,
// SSE4.2, and AVX2.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "support/rng.h"

namespace crmc::simd {
namespace {

using support::BatchBernoulli;
using support::BatchUniformInt;
using support::RandomSource;
using support::RngKind;

std::vector<Backend> AvailableBackends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kScalar, Backend::kSse42, Backend::kAvx2}) {
    if (BackendAvailable(b)) out.push_back(b);
  }
  return out;
}

// Restores the prior dispatch choice on scope exit so test order can't leak
// a forced backend into other suites in the same binary.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : prior_(ActiveBackend()) {
    EXPECT_TRUE(SetBackend(b));
  }
  ~ScopedBackend() { SetBackend(prior_); }

 private:
  Backend prior_;
};

std::vector<RandomSource> MakeLanes(std::size_t n, RngKind kind,
                                    std::uint64_t master = 0x5eedULL) {
  std::vector<RandomSource> rng(n);
  SeedStreams(master, 1, kind, rng);
  // Stagger the draw counters so kernels are exercised at odd block
  // offsets, not just counter zero.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < i % 5; ++d) rng[i].NextU64();
  }
  return rng;
}

void ExpectSameLaneState(std::vector<RandomSource>& a,
                         std::vector<RandomSource>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Drawing once from each compares the full generator state for both
    // kinds (counter + key for philox, state words for xoshiro).
    EXPECT_EQ(a[i].NextU64(), b[i].NextU64()) << "lane " << i;
  }
}

TEST(SeedStreams, MatchesForStreamEveryBackendBothKinds) {
  const std::size_t kLanes = 133;  // odd size: exercises the vector tail
  for (const RngKind kind : {RngKind::kXoshiro, RngKind::kPhilox}) {
    for (const Backend backend : AvailableBackends()) {
      ScopedBackend forced(backend);
      std::vector<RandomSource> got(kLanes);
      SeedStreams(0xfeedface12345678ULL, 17, kind, got);
      for (std::size_t i = 0; i < kLanes; ++i) {
        RandomSource want = RandomSource::ForStream(
            0xfeedface12345678ULL, 17 + static_cast<std::uint64_t>(i), kind);
        for (int d = 0; d < 8; ++d) {
          EXPECT_EQ(got[i].NextU64(), want.NextU64())
              << ToString(backend) << " kind=" << support::ToString(kind)
              << " lane=" << i << " draw=" << d;
        }
      }
    }
  }
}

TEST(CoinMask, BitExactAcrossBackends) {
  const std::size_t kLanes = 519;
  std::vector<std::int32_t> alive(kLanes);
  std::iota(alive.begin(), alive.end(), 0);
  for (const RngKind kind : {RngKind::kXoshiro, RngKind::kPhilox}) {
    for (const double p : {0.0, 0.37, 0.5, 1.0}) {
      const BatchBernoulli coin(p);
      // Scalar reference: the exact Draw() loop.
      std::vector<RandomSource> ref_rng = MakeLanes(kLanes, kind);
      std::vector<std::uint8_t> ref_mask(kLanes);
      std::int64_t ref_successes = 0;
      for (std::size_t i = 0; i < kLanes; ++i) {
        ref_mask[i] = coin.Draw(ref_rng[i]) ? 1 : 0;
        ref_successes += ref_mask[i];
      }
      for (const Backend backend : AvailableBackends()) {
        ScopedBackend forced(backend);
        std::vector<RandomSource> rng = MakeLanes(kLanes, kind);
        std::vector<std::uint8_t> mask(kLanes, 0xcc);
        const std::int64_t successes = CoinMask(coin, rng, alive, mask);
        EXPECT_EQ(successes, ref_successes)
            << ToString(backend) << " kind=" << support::ToString(kind)
            << " p=" << p;
        EXPECT_EQ(mask, ref_mask) << ToString(backend) << " p=" << p;
        ExpectSameLaneState(rng, ref_rng);
        // ref_rng advanced one draw in ExpectSameLaneState; rebuild it for
        // the next backend by replaying the reference.
        ref_rng = MakeLanes(kLanes, kind);
        for (std::size_t i = 0; i < kLanes; ++i) coin.Draw(ref_rng[i]);
      }
    }
  }
}

TEST(UniformFill, BitExactAcrossBackends) {
  const std::size_t kLanes = 519;
  std::vector<std::int32_t> alive(kLanes);
  std::iota(alive.begin(), alive.end(), 0);
  for (const RngKind kind : {RngKind::kXoshiro, RngKind::kPhilox}) {
    // 1..64 is the power-of-two channel pick; 1..37 forces Lemire
    // rejection on some lanes, which is where a vector epilogue bug hides.
    const std::vector<std::pair<std::int64_t, std::int64_t>> ranges = {
        {1, 64}, {1, 37}, {0, 2}};
    for (const auto& [lo, hi] : ranges) {
      const BatchUniformInt dist(lo, hi);
      std::vector<RandomSource> ref_rng = MakeLanes(kLanes, kind);
      std::vector<std::int32_t> ref_out(kLanes);
      for (std::size_t i = 0; i < kLanes; ++i) {
        ref_out[i] = static_cast<std::int32_t>(dist.Draw(ref_rng[i]));
      }
      for (const Backend backend : AvailableBackends()) {
        ScopedBackend forced(backend);
        std::vector<RandomSource> rng = MakeLanes(kLanes, kind);
        std::vector<std::int32_t> out(kLanes, -1);
        UniformFill(dist, rng, alive, out);
        EXPECT_EQ(out, ref_out)
            << ToString(backend) << " kind=" << support::ToString(kind)
            << " range=[" << lo << "," << hi << "]";
        ExpectSameLaneState(rng, ref_rng);
        ref_rng = MakeLanes(kLanes, kind);
        for (std::size_t i = 0; i < kLanes; ++i) dist.Draw(ref_rng[i]);
      }
    }
  }
}

TEST(CoinMask, SparseAliveSubset) {
  // alive need not be the identity: lanes are a strided subset and the
  // untouched lanes' RNG state must not move.
  const std::size_t kLanes = 257;
  std::vector<std::int32_t> alive;
  for (std::size_t i = 0; i < kLanes; i += 3) {
    alive.push_back(static_cast<std::int32_t>(i));
  }
  const BatchBernoulli coin(0.43);
  std::vector<RandomSource> ref_rng = MakeLanes(kLanes, RngKind::kPhilox);
  std::vector<std::uint8_t> ref_mask(alive.size());
  for (std::size_t k = 0; k < alive.size(); ++k) {
    ref_mask[k] =
        coin.Draw(ref_rng[static_cast<std::size_t>(alive[k])]) ? 1 : 0;
  }
  for (const Backend backend : AvailableBackends()) {
    ScopedBackend forced(backend);
    std::vector<RandomSource> rng = MakeLanes(kLanes, RngKind::kPhilox);
    std::vector<std::uint8_t> mask(alive.size());
    CoinMask(coin, rng, alive, mask);
    EXPECT_EQ(mask, ref_mask) << ToString(backend);
    for (std::size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(rng[i].philox_draws(), ref_rng[i].philox_draws())
          << ToString(backend) << " lane " << i;
    }
  }
}

TEST(CompactKeep, MatchesScalarReferenceAcrossBackendsAndSizes) {
  // Sizes straddle the inline tiny-input fast path (<= 16) and the
  // dispatch path, including vector-width remainders.
  for (const std::size_t n : {0u, 1u, 2u, 15u, 16u, 17u, 31u, 32u, 100u,
                              255u, 256u, 1000u}) {
    for (std::uint32_t pattern = 0; pattern < 8; ++pattern) {
      std::vector<std::int32_t> ids(n);
      std::vector<std::uint8_t> drop(n);
      for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<std::int32_t>(i * 7 + 1);
        // Mix of runs and isolated drops keyed by the pattern.
        drop[i] = static_cast<std::uint8_t>(
            ((i * 2654435761u + pattern * 0x9e3779b9u) >> 13) & 1);
      }
      std::vector<std::int32_t> want;
      for (std::size_t i = 0; i < n; ++i) {
        if (drop[i] == 0) want.push_back(ids[i]);
      }
      for (const Backend backend : AvailableBackends()) {
        ScopedBackend forced(backend);
        std::vector<std::int32_t> got = ids;
        const std::size_t kept = CompactKeep(got, drop);
        ASSERT_EQ(kept, want.size())
            << ToString(backend) << " n=" << n << " pattern=" << pattern;
        got.resize(kept);
        EXPECT_EQ(got, want)
            << ToString(backend) << " n=" << n << " pattern=" << pattern;
      }
    }
  }
}

TEST(ClassifyChannels, MatchesScalarReferenceAcrossBackends) {
  const std::int32_t kChannels = 64;
  for (const std::size_t n : {1u, 2u, 7u, 8u, 9u, 64u, 100u, 513u}) {
    std::vector<std::int32_t> channels(n);
    for (std::size_t i = 0; i < n; ++i) {
      channels[i] =
          1 + static_cast<std::int32_t>((i * 2654435761u >> 8) % kChannels);
    }
    // Reference classification by direct histogram.
    std::vector<int> hist(static_cast<std::size_t>(kChannels) + 1, 0);
    for (const std::int32_t c : channels) ++hist[static_cast<std::size_t>(c)];
    std::int64_t want_lone = 0;
    for (std::int32_t c = 1; c <= kChannels; ++c) {
      if (hist[static_cast<std::size_t>(c)] == 1) ++want_lone;
    }
    std::vector<std::uint8_t> want_lone_mask(n);
    for (std::size_t i = 0; i < n; ++i) {
      want_lone_mask[i] =
          hist[static_cast<std::size_t>(channels[i])] == 1 ? 1 : 0;
    }
    for (const std::int32_t primary : {1, 7, kChannels}) {
      const bool want_primary =
          hist[static_cast<std::size_t>(primary)] == 1;
      for (const Backend backend : AvailableBackends()) {
        ScopedBackend forced(backend);
        std::vector<std::uint16_t> counts(
            static_cast<std::size_t>(kChannels) + 3, 0);
        std::vector<std::int32_t> touched;
        std::vector<std::uint8_t> lone(n, 0xcc);
        const Occupancy occ =
            ClassifyChannels(channels, primary, counts, touched, lone);
        EXPECT_EQ(occ.lone_channels, want_lone)
            << ToString(backend) << " n=" << n;
        EXPECT_EQ(occ.primary_lone, want_primary)
            << ToString(backend) << " n=" << n << " primary=" << primary;
        EXPECT_EQ(lone, want_lone_mask) << ToString(backend) << " n=" << n;
        // Contract: counts is sparsely re-zeroed before returning, so the
        // scratch can be handed straight to the next round.
        for (std::size_t c = 0; c < counts.size(); ++c) {
          EXPECT_EQ(counts[c], 0) << ToString(backend) << " counts[" << c
                                  << "] not re-zeroed";
        }
      }
    }
  }
}

TEST(Dispatch, ParseAndAvailability) {
  EXPECT_EQ(ParseBackend("scalar"), Backend::kScalar);
  EXPECT_EQ(ParseBackend("sse4.2"), Backend::kSse42);
  EXPECT_EQ(ParseBackend("sse42"), Backend::kSse42);
  EXPECT_EQ(ParseBackend("avx2"), Backend::kAvx2);
  EXPECT_EQ(ParseBackend("auto"), DetectBackend());
  EXPECT_FALSE(ParseBackend("mmx").has_value());
  // Scalar is always compiled and always runnable.
  EXPECT_TRUE(BackendAvailable(Backend::kScalar));
  // The memoized auto choice must itself be available.
  EXPECT_TRUE(BackendAvailable(DetectBackend()));
}

}  // namespace
}  // namespace crmc::simd
