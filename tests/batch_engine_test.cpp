// Parity suite: BatchEngine + step programs against the coroutine engine.
//
// Every shipped step program declares identical_draw_order(), so each seed
// must reproduce the coroutine run *bit-exactly* — same solved round, same
// round count, same transmission totals, same trace. The loops below sweep
// thousands of seeds per program (ISSUE 1 requires >= 2000 for TwoActive
// and the general algorithm).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/general.h"
#include "core/id_reduction.h"
#include "core/leaf_election.h"
#include "core/reduce.h"
#include "core/two_active.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/step_program.h"
#include "support/rng.h"

namespace crmc::sim {
namespace {

void ExpectSameResult(const RunResult& coro, const RunResult& batch,
                      std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed);
  EXPECT_EQ(coro.solved, batch.solved);
  EXPECT_EQ(coro.solved_round, batch.solved_round);
  EXPECT_EQ(coro.all_solved_rounds, batch.all_solved_rounds);
  EXPECT_EQ(coro.rounds_executed, batch.rounds_executed);
  EXPECT_EQ(coro.timed_out, batch.timed_out);
  EXPECT_EQ(coro.all_terminated, batch.all_terminated);
  EXPECT_EQ(coro.total_transmissions, batch.total_transmissions);
  EXPECT_EQ(coro.jams_injected, batch.jams_injected);
  EXPECT_EQ(coro.erasures_injected, batch.erasures_injected);
  EXPECT_EQ(coro.cd_flips_injected, batch.cd_flips_injected);
  EXPECT_EQ(coro.faults_injected, batch.faults_injected);
  EXPECT_EQ(coro.crashed_nodes, batch.crashed_nodes);
  EXPECT_EQ(coro.stall_rounds, batch.stall_rounds);
  EXPECT_EQ(coro.wedged, batch.wedged);
  EXPECT_EQ(coro.assumption_violated, batch.assumption_violated);
  EXPECT_EQ(coro.max_node_transmissions, batch.max_node_transmissions);
  EXPECT_DOUBLE_EQ(coro.mean_node_transmissions,
                   batch.mean_node_transmissions);
  EXPECT_EQ(coro.active_counts, batch.active_counts);
  EXPECT_EQ(coro.node_transmissions, batch.node_transmissions);
  ASSERT_EQ(coro.trace.size(), batch.trace.size());
  for (std::size_t i = 0; i < coro.trace.size(); ++i) {
    EXPECT_EQ(coro.trace[i].round, batch.trace[i].round);
    ASSERT_EQ(coro.trace[i].events.size(), batch.trace[i].events.size());
    for (std::size_t e = 0; e < coro.trace[i].events.size(); ++e) {
      EXPECT_EQ(coro.trace[i].events[e].channel,
                batch.trace[i].events[e].channel);
      EXPECT_EQ(coro.trace[i].events[e].transmitters,
                batch.trace[i].events[e].transmitters);
      EXPECT_EQ(coro.trace[i].events[e].listeners,
                batch.trace[i].events[e].listeners);
    }
  }
}

// Runs `seeds` seeds of `config` through both engines and requires
// bit-exact agreement. The BatchEngine and program instances are reused
// across seeds, exercising the scratch-reuse path a Monte-Carlo sweep
// takes.
void CheckParity(EngineConfig config, const ProtocolFactory& coroutine,
                 StepProgram& program, int seeds,
                 std::uint64_t seed_base = 10'000) {
  BatchEngine engine;
  for (int t = 0; t < seeds; ++t) {
    config.seed = seed_base + static_cast<std::uint64_t>(t);
    const RunResult coro = Engine::Run(config, coroutine);
    const RunResult batch = engine.Run(config, program);
    ExpectSameResult(coro, batch, config.seed);
    if (::testing::Test::HasFailure()) break;  // one seed's dump is enough
  }
}

TEST(BatchEngineParity, TwoActive2000Seeds) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  auto program = MakeTwoActiveProgram();
  EXPECT_TRUE(program->identical_draw_order());
  CheckParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(BatchEngineParity, TwoActiveSingleChannelDuel) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 2;
  config.channels = 1;
  auto program = MakeTwoActiveProgram();
  CheckParity(config, core::MakeTwoActive(), *program, 500);
}

TEST(BatchEngineParity, TwoActiveChannelCap) {
  EngineConfig config;
  config.population = 1 << 14;
  config.num_active = 2;
  config.channels = 1024;
  core::TwoActiveParams params;
  params.channel_cap = 48;  // non-power-of-two cap -> FloorPow2 = 32
  auto program = MakeTwoActiveProgram(params);
  CheckParity(config, core::MakeTwoActive(params), *program, 300);
}

TEST(BatchEngineParity, General2000Seeds) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  auto program = MakeGeneralProgram();
  EXPECT_TRUE(program->identical_draw_order());
  CheckParity(config, core::MakeGeneral(), *program, 2000);
}

TEST(BatchEngineParity, GeneralLargePopulation) {
  EngineConfig config;
  config.population = 1 << 20;
  config.num_active = 128;
  config.channels = 256;
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 200);
}

TEST(BatchEngineParity, GeneralFewChannelsFallback) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 32;
  config.channels = 4;  // effective channels < min_channels -> knockout
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 500);
}

TEST(BatchEngineParity, GeneralRecordsEverything) {
  EngineConfig config;
  config.population = 4096;
  config.num_active = 48;
  config.channels = 64;
  config.record_active_counts = true;
  config.record_trace = true;
  config.record_node_transmissions = true;
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 100);
}

TEST(BatchEngineParity, GeneralRunToCompletion) {
  EngineConfig config;
  config.population = 512;
  config.num_active = 16;
  config.channels = 32;
  config.stop_when_solved = false;  // run every node to termination
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 200);
}

TEST(BatchEngineParity, GeneralTimeout) {
  EngineConfig config;
  config.population = 1 << 16;
  config.num_active = 256;
  config.channels = 64;
  config.max_rounds = 4;  // stop mid-Reduce
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 100);
}

TEST(BatchEngineParity, ReduceOnly) {
  EngineConfig config;
  config.population = 4096;
  config.num_active = 32;
  config.channels = 1;
  config.stop_when_solved = false;
  auto program = MakeReduceProgram();
  CheckParity(config, core::MakeReduceOnly(), *program, 500);
}

TEST(BatchEngineParity, IdReductionOnly) {
  EngineConfig config;
  config.population = 1 << 16;
  config.num_active = 16;
  config.channels = 64;
  config.stop_when_solved = false;
  auto program = MakeIdReductionProgram();
  CheckParity(config, core::MakeIdReductionOnly(), *program, 500);
}

TEST(BatchEngineParity, KnockoutCd) {
  EngineConfig config;
  config.population = 1 << 12;
  config.num_active = 64;
  config.channels = 1;
  auto program = MakeKnockoutCdProgram();
  CheckParity(config, core::MakeKnockoutCd(), *program, 500);
}

// LeafElection is deterministic given the leaf assignment (it draws no
// randomness), so parity is swept over random distinct-leaf cohorts
// instead of seeds.
void CheckLeafElectionParity(bool force_binary) {
  constexpr std::int32_t kNumLeaves = 16;
  support::RandomSource leaf_rng(424242);
  for (int rep = 0; rep < 100; ++rep) {
    const auto k = static_cast<std::int32_t>(leaf_rng.UniformInt(1, 12));
    const std::vector<std::int64_t> sampled =
        support::SampleWithoutReplacement(kNumLeaves, k, leaf_rng);
    std::vector<std::int32_t> leaves(sampled.begin(), sampled.end());

    EngineConfig config;
    config.num_active = k;
    config.channels = 2 * kNumLeaves - 1;
    config.seed = 1000 + static_cast<std::uint64_t>(rep);
    core::LeafElectionParams params;
    params.force_binary_search = force_binary;
    auto program = MakeLeafElectionProgram(leaves, kNumLeaves, params);
    const RunResult coro = Engine::Run(
        config, core::MakeLeafElectionOnly(leaves, kNumLeaves, params));
    const RunResult batch = BatchEngine::RunOnce(config, *program);
    ExpectSameResult(coro, batch, config.seed);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BatchEngineParity, LeafElection) { CheckLeafElectionParity(false); }

TEST(BatchEngineParity, LeafElectionForceBinary) {
  CheckLeafElectionParity(true);
}

// ---------------------------------------------------------------------------
// Fault-injection parity: the adversary's draws come from dedicated streams
// keyed on the action sequence, so faulty runs must stay bit-exact too —
// including the fault counters, crash compaction, the stall watchdog, and
// the graceful assumption-violation abort.
// ---------------------------------------------------------------------------

TEST(BatchEngineFaultParity, TwoActiveUnderFaults2000Seeds) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.max_rounds = 500;
  config.faults.jam_rate = 0.15;
  config.faults.flaky_cd_rate = 0.05;
  auto program = MakeTwoActiveProgram();
  CheckParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(BatchEngineFaultParity, GeneralUnderJamming) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 2000;
  config.faults.jam_rate = 0.2;
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 300);
}

TEST(BatchEngineFaultParity, GeneralUnderCrashes) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 2000;
  config.faults.crash_rate = 0.01;
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 300);
}

TEST(BatchEngineFaultParity, GeneralUnderAllFaults) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 2000;
  config.faults.jam_rate = 0.1;
  config.faults.erasure_rate = 0.05;  // triggers assumption-violation aborts
  config.faults.flaky_cd_rate = 0.02;
  config.faults.crash_rate = 0.005;
  config.faults.fault_seed = 7;
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 300);
}

TEST(BatchEngineFaultParity, KnockoutUnderFlakyCd) {
  EngineConfig config;
  config.population = 1 << 12;
  config.num_active = 64;
  config.channels = 1;
  config.max_rounds = 2000;
  config.faults.flaky_cd_rate = 0.05;
  auto program = MakeKnockoutCdProgram();
  CheckParity(config, core::MakeKnockoutCd(), *program, 200);
}

// The fault_seed must select a different adversary over the same protocol
// randomness — and the same fault_seed must reproduce the same run.
TEST(BatchEngineFaultParity, FaultSeedSelectsAdversary) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 2000;
  config.seed = 42;
  config.faults.jam_rate = 0.3;
  auto program = MakeGeneralProgram();
  BatchEngine engine;
  const RunResult a0 = engine.Run(config, *program);
  config.faults.fault_seed = 1;
  const RunResult a1 = engine.Run(config, *program);
  config.faults.fault_seed = 0;
  const RunResult again = engine.Run(config, *program);
  EXPECT_EQ(a0.rounds_executed, again.rounds_executed);
  EXPECT_EQ(a0.jams_injected, again.jams_injected);
  EXPECT_EQ(a0.solved_round, again.solved_round);
  // Different adversaries virtually never jam the exact same schedule.
  EXPECT_TRUE(a0.rounds_executed != a1.rounds_executed ||
              a0.jams_injected != a1.jams_injected ||
              a0.solved_round != a1.solved_round);
}

// ---------------------------------------------------------------------------
// Philox mode (ISSUE 3): config.rng = kPhilox swaps every stream onto the
// counter-based generator the simd kernels vectorize. The parity contract
// is unchanged — both engines must agree bit-exactly on every seed,
// including under faults.
// ---------------------------------------------------------------------------

TEST(BatchEnginePhiloxParity, TwoActive2000Seeds) {
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.rng = support::RngKind::kPhilox;
  auto program = MakeTwoActiveProgram();
  CheckParity(config, core::MakeTwoActive(), *program, 2000);
}

TEST(BatchEnginePhiloxParity, General2000Seeds) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.rng = support::RngKind::kPhilox;
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 2000);
}

TEST(BatchEnginePhiloxParity, KnockoutCd) {
  EngineConfig config;
  config.population = 1 << 12;
  config.num_active = 128;
  config.channels = 1;
  config.rng = support::RngKind::kPhilox;
  auto program = MakeKnockoutCdProgram();
  CheckParity(config, core::MakeKnockoutCd(), *program, 200);
}

TEST(BatchEnginePhiloxParity, GeneralUnderAllFaults) {
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 2000;
  config.rng = support::RngKind::kPhilox;
  config.faults.jam_rate = 0.1;
  config.faults.erasure_rate = 0.05;
  config.faults.flaky_cd_rate = 0.02;
  config.faults.crash_rate = 0.005;
  config.faults.fault_seed = 7;
  auto program = MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 300);
}

TEST(BatchEnginePhiloxParity, DistinctFromXoshiroStreams) {
  // Sanity: the two kinds are different generators, not aliases — a sweep
  // under philox must diverge from the same sweep under xoshiro.
  EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  auto program = MakeGeneralProgram();
  BatchEngine engine;
  int differing = 0;
  for (int t = 0; t < 50; ++t) {
    config.seed = 31'000 + static_cast<std::uint64_t>(t);
    config.rng = support::RngKind::kXoshiro;
    const RunResult x = engine.Run(config, *program);
    config.rng = support::RngKind::kPhilox;
    const RunResult p = engine.Run(config, *program);
    if (x.solved_round != p.solved_round ||
        x.total_transmissions != p.total_transmissions) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

// The fused-round fast path must be a pure optimisation: disabling it and
// re-running the same seeds through the generic per-round loop has to give
// identical results on every program that uses it.
TEST(BatchEngine, FusedRoundsMatchGenericPath) {
  for (const support::RngKind kind :
       {support::RngKind::kXoshiro, support::RngKind::kPhilox}) {
    for (const bool two_active : {true, false}) {
      EngineConfig config;
      config.population = two_active ? 1 << 12 : 1024;
      config.num_active = two_active ? 2 : 64;
      config.channels = 64;
      config.rng = kind;
      auto program = two_active ? MakeTwoActiveProgram() : MakeGeneralProgram();
      BatchEngine fused;
      BatchEngine generic;
      generic.set_fused_rounds(false);
      for (int t = 0; t < 300; ++t) {
        config.seed = 52'000 + static_cast<std::uint64_t>(t);
        const RunResult a = fused.Run(config, *program);
        const RunResult b = generic.Run(config, *program);
        ExpectSameResult(a, b, config.seed);
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fused-round accounting, and re-fusing after a materialized adversary jam
// (the adv_perturbed pin used to be permanent: one jam sent the rest of the
// run down the generic path even after the lanes healed).
// ---------------------------------------------------------------------------

TEST(BatchEngineFused, CounterCountsEveryFusedRound) {
  EngineConfig config;
  config.population = 1 << 12;
  config.num_active = 2;
  config.channels = 16;
  auto program = MakeTwoActiveProgram();
  BatchEngine fused;
  BatchEngine generic;
  generic.set_fused_rounds(false);
  for (int t = 0; t < 200; ++t) {
    config.seed = 61'000 + static_cast<std::uint64_t>(t);
    const RunResult a = fused.Run(config, *program);
    // Pristine two_active fuses every round, the solving round included.
    EXPECT_EQ(a.fused_rounds, a.rounds_executed);
    const RunResult b = generic.Run(config, *program);
    EXPECT_EQ(b.fused_rounds, 0);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BatchEngineFused, ScriptedJamReFusesDuel) {
  // C = 1 duel: the duel is *always* in lockstep, so a scripted jam costs
  // the generic path exactly its own round — the very next planned round
  // re-fuses. That gives an exact formula for the counter: every executed
  // round is fused except the jammed ones.
  EngineConfig config;
  config.population = 1024;
  config.num_active = 2;
  config.channels = 1;
  config.adversary.kind = adversary::Kind::kScripted;
  config.adversary.budget = 2;
  config.adversary.per_round_cap = 1;
  config.adversary.script.push_back({2, 1});
  config.adversary.script.push_back({5, 1});
  auto program = MakeTwoActiveProgram();
  BatchEngine engine;
  for (int t = 0; t < 500; ++t) {
    config.seed = 62'000 + static_cast<std::uint64_t>(t);
    const RunResult batch = engine.Run(config, *program);
    std::int64_t jammed = 0;
    for (const std::int64_t r : {2, 5}) {
      if (r < batch.rounds_executed) ++jammed;
    }
    EXPECT_EQ(batch.fused_rounds, batch.rounds_executed - jammed)
        << "seed=" << config.seed
        << " rounds_executed=" << batch.rounds_executed;
    const RunResult coro = Engine::Run(config, core::MakeTwoActive());
    ExpectSameResult(coro, batch, config.seed);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BatchEngineFused, ScriptedJamReFusesMultiChannel) {
  // C = 16: a single jam in round 1 lands mid-rename/search, where it may
  // genuinely split the pair's phases (those runs stay generic — correct).
  // But on a healthy fraction of seeds the lanes stay or return to
  // lockstep, and the LockstepRestored probe must re-fuse them: more fused
  // rounds than the single pre-jam round. Without re-fusing the counter
  // could never exceed 1 on any seed.
  EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 16;
  config.adversary.kind = adversary::Kind::kScripted;
  config.adversary.budget = 1;
  config.adversary.script.push_back({1, 1});
  auto program = MakeTwoActiveProgram();
  BatchEngine engine;
  int eligible = 0;
  int refused = 0;
  for (int t = 0; t < 500; ++t) {
    config.seed = 63'000 + static_cast<std::uint64_t>(t);
    const RunResult batch = engine.Run(config, *program);
    const RunResult coro = Engine::Run(config, core::MakeTwoActive());
    ExpectSameResult(coro, batch, config.seed);
    if (::testing::Test::HasFailure()) return;
    if (batch.rounds_executed < 3) continue;  // no post-jam round executed
    ++eligible;
    // Round 0 fused, round 1 was the jam's generic round: any further
    // fused round means the run re-fused.
    if (batch.fused_rounds > 1) ++refused;
  }
  ASSERT_GT(eligible, 0);
  EXPECT_GT(refused, eligible / 4)
      << refused << " of " << eligible << " eligible runs re-fused";
}

// Scratch reuse across *different* shapes: one engine instance must give
// the same answers as fresh instances when the channel count (and thus the
// resolver) changes between runs.
TEST(BatchEngine, ScratchReuseAcrossShapes) {
  auto program = MakeGeneralProgram();
  BatchEngine shared;
  for (int t = 0; t < 20; ++t) {
    EngineConfig config;
    config.population = 2048;
    config.num_active = (t % 2 == 0) ? 24 : 96;
    config.channels = (t % 2 == 0) ? 64 : 16;
    config.seed = 777 + static_cast<std::uint64_t>(t);
    const RunResult reused = shared.Run(config, *program);
    const RunResult fresh = BatchEngine::RunOnce(config, *program);
    ExpectSameResult(fresh, reused, config.seed);
  }
}

TEST(BatchEngine, RejectsBadConfig) {
  auto program = MakeGeneralProgram();
  BatchEngine engine;
  EngineConfig config;
  config.num_active = 0;
  EXPECT_THROW(engine.Run(config, *program), std::invalid_argument);
  config.num_active = 8;
  config.population = 4;  // population < num_active
  EXPECT_THROW(engine.Run(config, *program), std::invalid_argument);
}

}  // namespace
}  // namespace crmc::sim
