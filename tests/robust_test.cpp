// Tests for the robust execution layer (src/robust/): spec validation with
// distinct config errors, epoch seeding and backoff helpers, wrapped-run
// purity (a wrapped pristine run is bit-identical to an unwrapped one),
// delivery-confirmation semantics against a camping jammer, watchdog-forced
// epoch retries, scripted-adversary restart determinism across engines and
// RNG kinds, the deluded failure bucket, and batch-vs-coroutine parity for
// wrapped runs under reactive adversaries and oblivious faults.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/general.h"
#include "core/two_active.h"
#include "harness/runner.h"
#include "mac/channel.h"
#include "robust/robust.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/step_program.h"
#include "sim/task.h"
#include "support/rng.h"

namespace crmc {
namespace {

using adversary::AdversarySpec;
using adversary::Kind;
using mac::Action;
using robust::RobustSpec;

// --- spec validation --------------------------------------------------------

std::string ThrownMessage(const RobustSpec& spec) {
  try {
    spec.Validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(RobustSpecTest, DefaultIsInertAndValid) {
  const RobustSpec spec;
  EXPECT_FALSE(spec.Active());
  EXPECT_NO_THROW(spec.Validate());
}

TEST(RobustSpecTest, ValidateRejectsEachConstraintDistinctly) {
  RobustSpec spec;
  spec.max_epochs = 4;  // tuning without --robust
  EXPECT_NE(ThrownMessage(spec).find("require --robust"), std::string::npos);
  spec = RobustSpec{};
  spec.enabled = true;
  spec.max_epochs = 0;
  EXPECT_NE(ThrownMessage(spec).find("max_epochs must be >= 1"),
            std::string::npos);
  spec = RobustSpec{};
  spec.enabled = true;
  spec.confirm_attempts = -1;
  EXPECT_NE(ThrownMessage(spec).find("confirm_attempts must be in [0, 1024]"),
            std::string::npos);
  spec.confirm_attempts = 2000;
  EXPECT_NE(ThrownMessage(spec).find("confirm_attempts must be in [0, 1024]"),
            std::string::npos);
  spec = RobustSpec{};
  spec.enabled = true;
  spec.backoff_base = -1;
  EXPECT_NE(ThrownMessage(spec).find("backoff base must be >= 0"),
            std::string::npos);
  spec = RobustSpec{};
  spec.enabled = true;
  spec.backoff_base = 8;
  spec.backoff_cap = 4;
  // The message must name both flags (the CLI surfaces it verbatim) and be
  // distinct from the backoff-base check.
  EXPECT_NE(ThrownMessage(spec).find(
                "backoff cap (--backoff-cap) must be >= the backoff base "
                "(--backoff)"),
            std::string::npos);
  // A --backoff-cap below even the *default* base of 2 must be rejected the
  // same way (the historically silent degenerate honeypot schedule).
  spec = RobustSpec{};
  spec.enabled = true;
  spec.backoff_cap = 1;
  EXPECT_NE(ThrownMessage(spec).find("--backoff-cap"), std::string::npos);
  spec = RobustSpec{};
  spec.enabled = false;
  spec.policy = robust::PolicyKind::kAdaptive;  // tuning without --robust
  EXPECT_NE(ThrownMessage(spec).find("require --robust"), std::string::npos);
  spec = RobustSpec{};
  spec.enabled = true;
  spec.epoch_round_budget = -1;
  EXPECT_NE(ThrownMessage(spec).find("epoch round budget must be >= 0"),
            std::string::npos);
  spec = RobustSpec{};
  spec.enabled = true;
  spec.stall_round_budget = -1;
  EXPECT_NE(ThrownMessage(spec).find("stall round budget must be >= 0"),
            std::string::npos);
}

TEST(RobustSpecTest, PolicyNamesRoundTrip) {
  for (const robust::PolicyKind policy :
       {robust::PolicyKind::kStatic, robust::PolicyKind::kAdaptive}) {
    const auto parsed = robust::ParsePolicyKind(robust::ToString(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(robust::ParsePolicyKind("dynamic").has_value());
  RobustSpec spec;
  EXPECT_FALSE(spec.Adaptive());  // off by default, and off when disabled
  spec.policy = robust::PolicyKind::kAdaptive;
  EXPECT_FALSE(spec.Adaptive());
  spec.enabled = true;
  EXPECT_TRUE(spec.Adaptive());
}

TEST(RobustSpecTest, EngineConfigValidationCoversRobust) {
  sim::EngineConfig config;
  config.num_active = 2;
  config.robust.enabled = true;
  config.robust.max_epochs = 0;
  EXPECT_THROW(sim::ValidateEngineConfig(config), std::invalid_argument);
  config.robust.max_epochs = 4;
  EXPECT_NO_THROW(sim::ValidateEngineConfig(config));
}

// --- helper functions -------------------------------------------------------

TEST(RobustHelpers, EpochSeedZeroIsIdentityAndLaterEpochsDiffer) {
  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL}) {
    EXPECT_EQ(robust::EpochSeed(seed, 0), seed);
    std::vector<std::uint64_t> salted{seed};
    for (std::int32_t e = 1; e < 6; ++e) {
      const std::uint64_t s = robust::EpochSeed(seed, e);
      for (const std::uint64_t prev : salted) EXPECT_NE(s, prev);
      salted.push_back(s);
    }
  }
}

TEST(RobustHelpers, BackoffGrowsGeometricallyToTheCap) {
  RobustSpec spec;
  spec.backoff_base = 2;
  spec.backoff_cap = 16;
  EXPECT_EQ(robust::BackoffRounds(spec, 0), 0);
  EXPECT_EQ(robust::BackoffRounds(spec, 1), 2);
  EXPECT_EQ(robust::BackoffRounds(spec, 2), 4);
  EXPECT_EQ(robust::BackoffRounds(spec, 3), 8);
  EXPECT_EQ(robust::BackoffRounds(spec, 4), 16);
  EXPECT_EQ(robust::BackoffRounds(spec, 5), 16);   // cap binds
  EXPECT_EQ(robust::BackoffRounds(spec, 40), 16);  // no shift overflow
  spec.backoff_base = 0;
  EXPECT_EQ(robust::BackoffRounds(spec, 3), 0);  // base 0 disables the pause
}

TEST(RobustHelpers, WatchdogBudgetsDeriveOrObeyOverrides) {
  RobustSpec spec;
  spec.enabled = true;
  const std::int64_t derived = robust::EpochRoundBudget(spec, 1 << 20, 64);
  EXPECT_GT(derived, robust::ReduceRoundBudget(1 << 20) +
                         robust::RenameRoundBudget(1 << 20, 64) +
                         robust::ElectRoundBudget(1 << 20, 64));
  spec.epoch_round_budget = 123;
  EXPECT_EQ(robust::EpochRoundBudget(spec, 1 << 20, 64), 123);
  EXPECT_GT(robust::StallRoundBudget(RobustSpec{}, 1 << 20), 0);
  spec.stall_round_budget = 9;
  EXPECT_EQ(robust::StallRoundBudget(spec, 1 << 20), 9);
  // Budgets grow with the instance — a bigger population buys more rounds.
  EXPECT_GT(robust::EpochRoundBudget(RobustSpec{}, 1 << 20, 64),
            robust::EpochRoundBudget(RobustSpec{}, 1 << 8, 64));
}

TEST(RobustHelpers, ConfirmQuorumEscalatesWithSuppressionAndClamps) {
  // No observed suppression: the static floor stands.
  EXPECT_EQ(robust::ConfirmQuorum(0.0, 1 << 16, 3), 3);
  EXPECT_EQ(robust::ConfirmQuorum(-0.5, 1 << 16, 3), 3);
  // confirm_attempts 0 disables the exchange under every estimate.
  EXPECT_EQ(robust::ConfirmQuorum(0.9, 1 << 16, 0), 0);
  // The w.h.p. bound: smallest k with p^k <= 1/n. At p = 0.5, n = 2^16
  // that is exactly 16 attempts.
  EXPECT_EQ(robust::ConfirmQuorum(0.5, 1 << 16, 3), 16);
  // Quorum grows monotonically with the suppression estimate...
  EXPECT_GT(robust::ConfirmQuorum(0.9, 1 << 16, 3),
            robust::ConfirmQuorum(0.5, 1 << 16, 3));
  // ...and with the population (more nodes, stronger w.h.p. target).
  EXPECT_GT(robust::ConfirmQuorum(0.5, 1 << 20, 3),
            robust::ConfirmQuorum(0.5, 1 << 10, 3));
  // A certain-suppression estimate clamps at the hard ceiling instead of
  // demanding infinitely many echoes; tiny populations stay well-defined.
  EXPECT_EQ(robust::ConfirmQuorum(1.0, 1 << 16, 3), robust::kMaxConfirmQuorum);
  EXPECT_EQ(robust::ConfirmQuorum(0.999999, 1 << 16, 3),
            robust::kMaxConfirmQuorum);
  EXPECT_GE(robust::ConfirmQuorum(0.5, 1, 3), 3);
  // The floor binds whenever the derived k is smaller.
  EXPECT_EQ(robust::ConfirmQuorum(0.01, 4, 5), 5);
}

TEST(RobustHelpers, FindPrimaryWinnerPicksTheLoneTransmitter) {
  std::vector<Action> actions(4);
  EXPECT_EQ(robust::FindPrimaryWinner(actions), -1);
  actions[2] = Action::Transmit(mac::kPrimaryChannel);
  EXPECT_EQ(robust::FindPrimaryWinner(actions), 2);
  actions[1] = Action::Transmit(3);  // side-channel transmit is not primary
  EXPECT_EQ(robust::FindPrimaryWinner(actions), 2);
}

// --- shared run comparison --------------------------------------------------

void ExpectIdenticalRuns(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.solved_round, b.solved_round);
  EXPECT_EQ(a.all_solved_rounds, b.all_solved_rounds);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.all_terminated, b.all_terminated);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(a.max_node_transmissions, b.max_node_transmissions);
  EXPECT_DOUBLE_EQ(a.mean_node_transmissions, b.mean_node_transmissions);
  EXPECT_EQ(a.jams_injected, b.jams_injected);
  EXPECT_EQ(a.erasures_injected, b.erasures_injected);
  EXPECT_EQ(a.cd_flips_injected, b.cd_flips_injected);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.adv_jams_spent, b.adv_jams_spent);
  EXPECT_EQ(a.adv_jams_effective, b.adv_jams_effective);
  EXPECT_EQ(a.stall_rounds, b.stall_rounds);
  EXPECT_EQ(a.wedged, b.wedged);
  EXPECT_EQ(a.assumption_violated, b.assumption_violated);
  EXPECT_EQ(a.epochs_used, b.epochs_used);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.confirm_rounds, b.confirm_rounds);
  EXPECT_EQ(a.backoff_rounds, b.backoff_rounds);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(a.adv_rounds_held, b.adv_rounds_held);
  EXPECT_EQ(a.adv_jams_echo, b.adv_jams_echo);
  EXPECT_EQ(a.adv_jams_backoff, b.adv_jams_backoff);
  EXPECT_EQ(a.adaptive_confirm_extra, b.adaptive_confirm_extra);
  EXPECT_EQ(a.adaptive_backoff_trimmed, b.adaptive_backoff_trimmed);
  EXPECT_EQ(a.confirm_quorum_peak, b.confirm_quorum_peak);
}

// Wrapped-vs-unwrapped comparison: the execution must be bit-identical; the
// robust accounting fields legitimately differ (the wrapper reports its own
// epoch bookkeeping) and are checked by the caller.
void ExpectSameExecution(const sim::RunResult& bare,
                         const sim::RunResult& wrapped) {
  EXPECT_EQ(bare.solved, wrapped.solved);
  EXPECT_EQ(bare.solved_round, wrapped.solved_round);
  EXPECT_EQ(bare.all_solved_rounds, wrapped.all_solved_rounds);
  EXPECT_EQ(bare.rounds_executed, wrapped.rounds_executed);
  EXPECT_EQ(bare.timed_out, wrapped.timed_out);
  EXPECT_EQ(bare.all_terminated, wrapped.all_terminated);
  EXPECT_EQ(bare.total_transmissions, wrapped.total_transmissions);
  EXPECT_EQ(bare.max_node_transmissions, wrapped.max_node_transmissions);
  EXPECT_EQ(bare.stall_rounds, wrapped.stall_rounds);
  EXPECT_EQ(bare.wedged, wrapped.wedged);
  EXPECT_EQ(bare.assumption_violated, wrapped.assumption_violated);
}

// --- wrapped-run purity -----------------------------------------------------

TEST(RobustEngine, WrappedPristineRunIsBitIdenticalToUnwrapped) {
  // Acceptance gate: --robust over a pristine (unjammed) run inserts zero
  // rounds and re-salts nothing — epoch 0 uses the unsalted seed, so the
  // execution is bit-identical to an unwrapped run in both engines.
  sim::EngineConfig bare;
  bare.population = 1 << 12;
  bare.num_active = 32;
  bare.channels = 16;
  bare.max_rounds = 2000;
  for (const support::RngKind rng :
       {support::RngKind::kXoshiro, support::RngKind::kPhilox}) {
    bare.rng = rng;
    sim::EngineConfig wrapped = bare;
    wrapped.robust.enabled = true;
    const auto factory = core::MakeGeneral();
    auto program = sim::MakeGeneralProgram();
    sim::BatchEngine engine;
    for (std::uint64_t seed = 7'000; seed < 7'010; ++seed) {
      bare.seed = seed;
      wrapped.seed = seed;
      SCOPED_TRACE(::testing::Message() << "seed=" << seed);
      const sim::RunResult base = sim::Engine::Run(bare, factory);
      const sim::RunResult coro = sim::Engine::Run(wrapped, factory);
      const sim::RunResult batch = engine.Run(wrapped, *program);
      ExpectSameExecution(base, coro);
      ExpectIdenticalRuns(coro, batch);
      EXPECT_EQ(coro.epochs_used, 1);
      EXPECT_EQ(coro.retries, 0);
      EXPECT_EQ(coro.confirm_rounds, 0);
      EXPECT_EQ(coro.backoff_rounds, 0);
      EXPECT_TRUE(coro.confirmed);  // solved pristine => confirmed
    }
  }
}

TEST(RobustEngine, WrappedZeroBudgetAdversaryIsAlsoPristine) {
  sim::EngineConfig bare;
  bare.population = 256;
  bare.num_active = 2;
  bare.channels = 16;
  bare.max_rounds = 2000;
  sim::EngineConfig wrapped = bare;
  wrapped.robust.enabled = true;
  wrapped.adversary.kind = Kind::kPrimaryCamper;
  wrapped.adversary.budget = 0;
  const auto factory = core::MakeTwoActive();
  for (std::uint64_t seed = 8'000; seed < 8'020; ++seed) {
    bare.seed = seed;
    wrapped.seed = seed;
    const sim::RunResult base = sim::Engine::Run(bare, factory);
    const sim::RunResult guarded = sim::Engine::Run(wrapped, factory);
    ExpectSameExecution(base, guarded);
    EXPECT_EQ(guarded.adv_jams_spent, 0);
    EXPECT_EQ(guarded.epochs_used, 1);
  }
}

// --- delivery confirmation --------------------------------------------------

sim::Task<void> TransmitPrimaryForever(sim::NodeContext& ctx) {
  for (;;) co_await ctx.Transmit(mac::kPrimaryChannel);
}

sim::EngineConfig OneForeverConfig(std::int64_t max_rounds) {
  sim::EngineConfig config;
  config.population = 8;
  config.num_active = 1;
  config.channels = 4;
  config.max_rounds = max_rounds;
  config.seed = 42;
  return config;
}

TEST(RobustEngine, EchoRoundsForceTheCamperToSpendOnEveryClaim) {
  // One lone transmitter vs a camper with budget 7. Bare: the camper jams
  // rounds 0..6, round 7 delivers. Wrapped with confirm_attempts 3: every
  // suppressed candidate spawns echo rounds the camper must also jam —
  //   round 0 protocol (jam, 6 left), rounds 1-3 echoes (jams, 3 left),
  //   round 4 protocol (jam, 2 left), rounds 5-6 echoes (jams, 0 left),
  //   round 7 echo: unjammed, delivers => solved and confirmed.
  // Same budget, same solve round, but 6 of the 8 rounds were confirmation
  // exchanges the adversary had to pay for.
  const auto protocol = [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  };
  sim::EngineConfig bare = OneForeverConfig(40);
  bare.adversary.kind = Kind::kPrimaryCamper;
  bare.adversary.budget = 7;
  const sim::RunResult plain = sim::Engine::Run(bare, protocol);
  EXPECT_EQ(plain.solved_round, 7);

  sim::EngineConfig wrapped = bare;
  wrapped.robust.enabled = true;  // confirm_attempts defaults to 3
  const sim::RunResult r = sim::Engine::Run(wrapped, protocol);
  EXPECT_TRUE(r.solved);
  EXPECT_TRUE(r.confirmed);
  EXPECT_EQ(r.solved_round, 7);
  EXPECT_EQ(r.confirm_rounds, 6);
  EXPECT_EQ(r.adv_jams_spent, 7);
  EXPECT_EQ(r.adv_jams_effective, 7);
  EXPECT_EQ(r.epochs_used, 1);
  EXPECT_EQ(r.retries, 0);
}

TEST(RobustEngine, ConfirmAttemptsZeroDisablesTheEchoExchange) {
  sim::EngineConfig config = OneForeverConfig(40);
  config.adversary.kind = Kind::kPrimaryCamper;
  config.adversary.budget = 7;
  config.robust.enabled = true;
  config.robust.confirm_attempts = 0;
  const sim::RunResult r = sim::Engine::Run(config, [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  });
  EXPECT_EQ(r.solved_round, 7);  // identical to the bare camper run
  EXPECT_EQ(r.confirm_rounds, 0);
  EXPECT_TRUE(r.confirmed);
}

// --- adaptive policy ---------------------------------------------------------

TEST(RobustAdaptive, PristineAdaptiveRunIsBitIdenticalToStatic) {
  // Acceptance gate for ISSUE 7: with nothing to adapt to (no suppression,
  // no retries), --robust-policy adaptive must be bit-identical to the
  // static wrapper — and therefore to the bare run — on both engines. The
  // estimators only ever see data once an echo round happens.
  sim::EngineConfig wrapped;
  wrapped.population = 1 << 12;
  wrapped.num_active = 32;
  wrapped.channels = 16;
  wrapped.max_rounds = 2000;
  wrapped.robust.enabled = true;
  for (const support::RngKind rng :
       {support::RngKind::kXoshiro, support::RngKind::kPhilox}) {
    wrapped.rng = rng;
    sim::EngineConfig adaptive = wrapped;
    adaptive.robust.policy = robust::PolicyKind::kAdaptive;
    const auto factory = core::MakeGeneral();
    auto program = sim::MakeGeneralProgram();
    sim::BatchEngine engine;
    for (std::uint64_t seed = 61'000; seed < 61'010; ++seed) {
      wrapped.seed = seed;
      adaptive.seed = seed;
      SCOPED_TRACE(::testing::Message() << "seed=" << seed);
      const sim::RunResult stat = sim::Engine::Run(wrapped, factory);
      const sim::RunResult coro = sim::Engine::Run(adaptive, factory);
      const sim::RunResult batch = engine.Run(adaptive, *program);
      ExpectIdenticalRuns(stat, coro);
      ExpectIdenticalRuns(coro, batch);
      EXPECT_EQ(coro.adaptive_confirm_extra, 0);
      EXPECT_EQ(coro.adaptive_backoff_trimmed, 0);
      EXPECT_TRUE(coro.confirmed);
    }
  }
}

TEST(RobustAdaptive, QuorumEscalatesWithinTheExchangeAndDrainsTheJammer) {
  // One lone transmitter vs a camper with budget 7, adaptive policy. The
  // first suppressed claim opens an echo exchange whose loop bound is
  // re-evaluated every round: each jammed echo raises the suppression
  // estimate, which raises the quorum, which keeps the exchange alive —
  // the camper must keep paying until it is broke, inside ONE exchange.
  //   round 0 protocol (jam, 6 left), rounds 1..6 echoes (all jammed, 0
  //   left), round 7 echo: unjammed, delivers => confirmed, epoch 0.
  // The static wrapper solves this too (see EchoRoundsForceTheCamper...)
  // but needs a second protocol candidate; adaptive never lets go.
  sim::EngineConfig config = OneForeverConfig(40);
  config.adversary.kind = Kind::kPrimaryCamper;
  config.adversary.budget = 7;
  config.robust.enabled = true;
  config.robust.policy = robust::PolicyKind::kAdaptive;  // floor stays 3
  const sim::RunResult r = sim::Engine::Run(config, [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  });
  EXPECT_TRUE(r.solved);
  EXPECT_TRUE(r.confirmed);
  EXPECT_EQ(r.solved_round, 7);
  EXPECT_EQ(r.confirm_rounds, 7);  // one exchange of 7 echoes
  EXPECT_EQ(r.epochs_used, 1);
  EXPECT_EQ(r.adv_jams_spent, 7);
  EXPECT_EQ(r.adv_jams_echo, 6);       // echo strikes (protocol round apart)
  EXPECT_GT(r.confirm_quorum_peak, 3);  // escalated beyond the floor
  EXPECT_GT(r.adaptive_confirm_extra, 0);
  // The watchdog budget was extended per adaptive echo — the exchange must
  // not have tripped an epoch retry.
  EXPECT_EQ(r.retries, 0);
}

TEST(RobustAdaptive, HoneypotTrimsWhenTheAdversaryNeverSpendsOnBackoff) {
  // Same forced-retry setup as EpochWatchdogForcesDeterministicRetries
  // (static: backoff pauses 2 then 4 rounds). No adversary ever jams a
  // backoff round, so from epoch 2 on the adaptive policy trims the
  // honeypot to a single probe round: pauses 2 then 1, three rounds
  // reclaimed, same solve.
  sim::EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 4000;
  config.seed = 204;
  config.robust.enabled = true;
  config.robust.policy = robust::PolicyKind::kAdaptive;
  config.robust.max_epochs = 3;
  config.robust.epoch_round_budget = 8;
  const sim::RunResult coro = sim::Engine::Run(config, core::MakeGeneral());
  EXPECT_TRUE(coro.solved);
  EXPECT_TRUE(coro.confirmed);
  EXPECT_EQ(coro.retries, 2);
  EXPECT_EQ(coro.backoff_rounds, 3);
  EXPECT_EQ(coro.adaptive_backoff_trimmed, 3);
  sim::BatchEngine engine;
  auto program = sim::MakeGeneralProgram();
  const sim::RunResult batch = engine.Run(config, *program);
  ExpectIdenticalRuns(coro, batch);
}

TEST(RobustAdaptive, HarnessAggregatesAdaptiveAndHoldAccounting) {
  harness::TrialSpec spec;
  spec.population = 256;
  spec.num_active = 1;
  spec.channels = 4;
  spec.max_rounds = 200;
  spec.use_batch_engine = false;  // num_active 1 custom protocol: coroutine
  spec.adversary.kind = Kind::kPrimaryCamper;
  spec.adversary.budget = 7;
  spec.robust.enabled = true;
  spec.robust.policy = robust::PolicyKind::kAdaptive;
  const harness::TrialSetResult r = harness::RunTrials(
      spec,
      sim::ProtocolFactory([](sim::NodeContext& ctx) {
        return TransmitPrimaryForever(ctx);
      }),
      4);
  EXPECT_EQ(r.confirmed, 4);
  EXPECT_EQ(r.adv_jams_echo, 4 * 6);
  EXPECT_GT(r.confirm_quorum_peak, 3);
  EXPECT_GT(r.adaptive_confirm_extra, 0);
  EXPECT_GT(r.rounds_total, 0);
}

// --- watchdogs and epoch retry ----------------------------------------------

TEST(RobustEngine, EpochWatchdogForcesDeterministicRetries) {
  // An epoch budget far below the solve time kills epochs 0 and 1 after
  // exactly 8 rounds each; the final epoch (no retry left) runs to its
  // natural end and solves. Backoff pauses 2 then 4 rounds (base 2).
  sim::EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 4000;
  // Seed chosen so neither epoch 0 nor the re-salted epoch 1 gets a lucky
  // lone delivery inside the 8-round budget (the general algorithm can
  // solve in as few as 3 rounds when one node lands alone on primary).
  config.seed = 204;
  config.robust.enabled = true;
  config.robust.max_epochs = 3;
  config.robust.epoch_round_budget = 8;
  const sim::RunResult coro = sim::Engine::Run(config, core::MakeGeneral());
  EXPECT_TRUE(coro.solved);
  EXPECT_TRUE(coro.confirmed);
  EXPECT_EQ(coro.retries, 2);
  EXPECT_EQ(coro.epochs_used, 3);
  EXPECT_EQ(coro.backoff_rounds, 6);
  sim::BatchEngine engine;
  auto program = sim::MakeGeneralProgram();
  const sim::RunResult batch = engine.Run(config, *program);
  ExpectIdenticalRuns(coro, batch);
}

TEST(RobustEngine, ScriptedRestartReplayIsDeterministicAcrossEnginesAndRngs) {
  // Scripted jams plus a tight epoch budget force restarts; the whole
  // multi-epoch execution (restart rounds, re-salted streams, backoff
  // schedule) must replay bit-identically run-over-run, across both
  // engines, for both RNG kinds.
  for (const support::RngKind rng :
       {support::RngKind::kXoshiro, support::RngKind::kPhilox}) {
    sim::EngineConfig config;
    config.population = 1024;
    config.num_active = 64;
    config.channels = 64;
    config.max_rounds = 4000;
    config.rng = rng;
    config.adversary.kind = Kind::kScripted;
    config.adversary.budget = 12;
    config.adversary.script = {{0, 1}, {1, 1}, {2, 1}, {3, 1},
                               {4, 1}, {5, 1}, {6, 1}, {7, 1},
                               {8, 1}, {9, 1}, {10, 1}, {11, 1}};
    config.robust.enabled = true;
    config.robust.max_epochs = 4;
    config.robust.epoch_round_budget = 12;
    const auto factory = core::MakeGeneral();
    auto program = sim::MakeGeneralProgram();
    sim::BatchEngine engine;
    for (std::uint64_t seed = 21'000; seed < 21'030; ++seed) {
      config.seed = seed;
      SCOPED_TRACE(::testing::Message()
                   << "rng=" << (rng == support::RngKind::kXoshiro ? "xoshiro"
                                                                   : "philox")
                   << " seed=" << seed);
      const sim::RunResult first = sim::Engine::Run(config, factory);
      const sim::RunResult again = sim::Engine::Run(config, factory);
      const sim::RunResult batch = engine.Run(config, *program);
      ExpectIdenticalRuns(first, again);
      ExpectIdenticalRuns(first, batch);
      // The scripted jams hold the primary channel for all of epoch 0's
      // 12-round budget, so at least one restart is forced; later (clean)
      // epochs may solve inside the budget, so the exact count varies.
      EXPECT_GE(first.retries, 1);
      EXPECT_EQ(first.epochs_used, first.retries + 1);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// --- the headline: wrapped solves confirmed where bare fails ----------------

TEST(RobustEngine, WrappedSolvesConfirmedWhereBareFailsOutright) {
  // A camper with budget >= max_rounds suppresses every candidate: the bare
  // run cannot solve. The wrapper retries epochs until the jammer's budget
  // is drained (backoff and echo rounds are honeypots it keeps paying for),
  // then a clean epoch solves with confirmation.
  sim::EngineConfig bare;
  bare.population = 1024;
  bare.num_active = 64;
  bare.channels = 64;
  bare.max_rounds = 100;
  bare.adversary.kind = Kind::kPrimaryCamper;
  bare.adversary.budget = 200;
  sim::EngineConfig wrapped = bare;
  wrapped.max_rounds = 20'000;
  wrapped.robust.enabled = true;
  wrapped.robust.max_epochs = 8;
  wrapped.robust.epoch_round_budget = 400;
  const auto factory = core::MakeGeneral();
  auto program = sim::MakeGeneralProgram();
  sim::BatchEngine engine;
  for (std::uint64_t seed = 31'000; seed < 31'005; ++seed) {
    bare.seed = seed;
    wrapped.seed = seed;
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const sim::RunResult broken = sim::Engine::Run(bare, factory);
    EXPECT_FALSE(broken.solved);
    const sim::RunResult coro = sim::Engine::Run(wrapped, factory);
    EXPECT_TRUE(coro.solved);
    EXPECT_TRUE(coro.confirmed);
    EXPECT_GT(coro.retries, 0);
    const sim::RunResult batch = engine.Run(wrapped, *program);
    ExpectIdenticalRuns(coro, batch);
  }
}

// --- harness breakdown ------------------------------------------------------

TEST(RobustHarness, DeludedBucketCountsSilentFailures) {
  // Regression for the silent-failure asymmetry: jammed TwoActive runs where
  // both nodes terminate believing the problem solved used to vanish into
  // the generic unsolved count. They now land in the deluded bucket, which
  // is exactly the unsolved trials that neither timed out nor aborted.
  harness::TrialSpec spec;
  spec.population = 4096;
  spec.num_active = 2;
  spec.channels = 16;
  spec.max_rounds = 64;
  spec.adversary.kind = Kind::kPrimaryCamper;
  spec.adversary.budget = 80;
  const harness::TrialSetResult r =
      harness::RunTrials(spec, core::MakeTwoActive(), 40);
  EXPECT_EQ(r.unsolved, 40);
  EXPECT_GT(r.deluded, 0);
  EXPECT_EQ(r.deluded, r.unsolved - r.timed_out - r.aborted);
}

TEST(RobustHarness, PristineWrappedTrialsConfirmWithoutOverhead) {
  harness::TrialSpec spec;
  spec.population = 4096;
  spec.num_active = 2;
  spec.channels = 16;
  spec.max_rounds = 2000;
  spec.robust.enabled = true;
  const harness::TrialSetResult r =
      harness::RunTrials(spec, core::MakeTwoActive(), 20);
  EXPECT_EQ(r.unsolved, 0);
  EXPECT_EQ(r.confirmed, 20);
  EXPECT_EQ(r.epochs_used, 20);  // one epoch per trial
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.confirm_rounds, 0);
  EXPECT_EQ(r.backoff_rounds, 0);
  EXPECT_EQ(r.deluded, 0);
}

// --- batch-vs-coroutine parity for wrapped runs ----------------------------

void CheckParity(sim::EngineConfig config,
                 const sim::ProtocolFactory& coroutine,
                 sim::StepProgram& program, int seeds,
                 std::uint64_t seed_base) {
  sim::BatchEngine engine;
  for (int t = 0; t < seeds; ++t) {
    config.seed = seed_base + static_cast<std::uint64_t>(t);
    const sim::RunResult coro = sim::Engine::Run(config, coroutine);
    const sim::RunResult batch = engine.Run(config, program);
    SCOPED_TRACE(::testing::Message() << "seed=" << config.seed);
    ExpectIdenticalRuns(coro, batch);
    if (::testing::Test::HasFailure()) break;
  }
}

AdversarySpec StrategySpec(Kind kind) {
  AdversarySpec spec;
  spec.kind = kind;
  spec.budget = 24;
  spec.per_round_cap = kind == Kind::kPrimaryCamper ? 1 : 3;
  return spec;
}

TEST(RobustParity, WrappedTwoActiveAllStrategies) {
  for (const Kind kind : {Kind::kPrimaryCamper, Kind::kGreedyReactive,
                          Kind::kRandomBudgeted, Kind::kPhaseTracking}) {
    sim::EngineConfig config;
    config.population = 256;
    config.num_active = 2;
    config.channels = 16;
    config.max_rounds = 4000;
    config.adversary = StrategySpec(kind);
    config.robust.enabled = true;
    auto program = sim::MakeTwoActiveProgram();
    CheckParity(config, core::MakeTwoActive(), *program, 400, 51'000);
  }
}

TEST(RobustParity, WrappedGeneralAllStrategiesBothRngKinds) {
  for (const support::RngKind rng :
       {support::RngKind::kXoshiro, support::RngKind::kPhilox}) {
    for (const Kind kind : {Kind::kPrimaryCamper, Kind::kGreedyReactive,
                            Kind::kPhaseTracking}) {
      sim::EngineConfig config;
      config.population = 1024;
      config.num_active = 64;
      config.channels = 64;
      config.max_rounds = 4000;
      config.rng = rng;
      config.adversary = StrategySpec(kind);
      config.robust.enabled = true;
      auto program = sim::MakeGeneralProgram();
      CheckParity(config, core::MakeGeneral(), *program, 100, 52'000);
    }
  }
}

TEST(RobustParity, MultiEpochRunsWithCrashesStayBitExact) {
  // The hardest parity surface: oblivious faults (including node crashes,
  // which persist across epoch restarts) composed with a camper strong
  // enough to force retries. Both engines must agree on every epoch's
  // restart set, fabricated rounds, and final accounting.
  sim::EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 20'000;
  config.adversary.kind = Kind::kPrimaryCamper;
  config.adversary.budget = 200;
  config.faults.erasure_rate = 0.02;
  config.faults.flaky_cd_rate = 0.01;
  config.faults.crash_rate = 0.001;
  config.faults.fault_seed = 3;
  config.robust.enabled = true;
  config.robust.max_epochs = 8;
  config.robust.epoch_round_budget = 400;
  auto program = sim::MakeGeneralProgram();
  CheckParity(config, core::MakeGeneral(), *program, 60, 53'000);
}

}  // namespace
}  // namespace crmc
