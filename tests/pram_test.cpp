// Tests for the CREW PRAM simulator and Snir's parallel search.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "pram/crew_pram.h"
#include "pram/snir_search.h"
#include "support/rng.h"

namespace crmc::pram {
namespace {

TEST(CrewPram, MemoryStartsZeroed) {
  CrewPram pram(2, 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(pram.Peek(i), 0);
}

TEST(CrewPram, PokeAndPeek) {
  CrewPram pram(1, 4);
  pram.Poke(2, 99);
  EXPECT_EQ(pram.Peek(2), 99);
}

TEST(CrewPram, WritesApplyAtEndOfStep) {
  CrewPram pram(2, 4);
  pram.Poke(0, 10);
  // Both processors read cell 0 (concurrent read is fine); processor i
  // writes to cell i+1. Reads must see the start-of-step snapshot.
  pram.Step([](CrewPram::ProcessorView& v) {
    const Cell seen = v.Read(0);
    v.Write(static_cast<std::size_t>(v.id()) + 1, seen + v.id());
  });
  EXPECT_EQ(pram.Peek(1), 10);
  EXPECT_EQ(pram.Peek(2), 11);
  EXPECT_EQ(pram.steps_executed(), 1);
}

TEST(CrewPram, ReadsSeeSnapshotNotConcurrentWrites) {
  CrewPram pram(2, 4);
  pram.Poke(0, 5);
  pram.Step([](CrewPram::ProcessorView& v) {
    if (v.id() == 0) v.Write(0, 77);
    // Processor 1 reads cell 0 in the same step: must still see 5.
    if (v.id() == 1) v.Write(1, v.Read(0));
  });
  EXPECT_EQ(pram.Peek(0), 77);
  EXPECT_EQ(pram.Peek(1), 5);
}

TEST(CrewPram, ExclusiveWriteViolationThrows) {
  CrewPram pram(2, 4);
  EXPECT_THROW(pram.Step([](CrewPram::ProcessorView& v) {
    v.Write(3, v.id());  // both write cell 3
  }),
               CrewViolation);
}

TEST(CrewPram, SameValueConcurrentWriteStillViolates) {
  // CREW (not CRCW-common): equal values do not excuse the conflict.
  CrewPram pram(2, 4);
  EXPECT_THROW(pram.Step([](CrewPram::ProcessorView& v) { v.Write(3, 1); }),
               CrewViolation);
}

TEST(CrewPram, AccessCountersTrack) {
  CrewPram pram(3, 4);
  pram.Step([](CrewPram::ProcessorView& v) {
    (void)v.Read(0);
    v.Write(static_cast<std::size_t>(v.id()), 1);
  });
  EXPECT_EQ(pram.total_reads(), 3);
  EXPECT_EQ(pram.total_writes(), 3);
}

// --- Snir search -------------------------------------------------------------

std::vector<std::int64_t> SortedArray(std::size_t n) {
  std::vector<std::int64_t> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<std::int64_t>(2 * i);
  return a;
}

TEST(SnirSearch, MatchesStdLowerBoundExhaustively) {
  const auto a = SortedArray(33);  // values 0, 2, ..., 64
  for (std::int64_t key = -1; key <= 66; ++key) {
    const auto expected = static_cast<std::size_t>(
        std::lower_bound(a.begin(), a.end(), key) - a.begin());
    for (const std::int32_t p : {1, 2, 3, 5, 8}) {
      EXPECT_EQ(ParallelLowerBound(a, key, p), expected)
          << "key=" << key << " p=" << p;
    }
  }
}

TEST(SnirSearch, EmptyAndSingletonArrays) {
  const std::vector<std::int64_t> empty;
  EXPECT_EQ(ParallelLowerBound(empty, 5, 3), 0u);
  const std::vector<std::int64_t> one{10};
  EXPECT_EQ(ParallelLowerBound(one, 5, 3), 0u);
  EXPECT_EQ(ParallelLowerBound(one, 10, 3), 0u);
  EXPECT_EQ(ParallelLowerBound(one, 11, 3), 1u);
}

TEST(SnirSearch, DuplicateKeysFindFirst) {
  const std::vector<std::int64_t> a{1, 3, 3, 3, 3, 7, 7, 9};
  EXPECT_EQ(ParallelLowerBound(a, 3, 4), 1u);
  EXPECT_EQ(ParallelLowerBound(a, 7, 4), 5u);
}

TEST(SnirSearch, RandomizedAgainstStdLowerBound) {
  support::RandomSource rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::size_t>(rng.UniformInt(0, 300));
    std::vector<std::int64_t> a(n);
    for (auto& v : a) v = rng.UniformInt(-50, 50);
    std::sort(a.begin(), a.end());
    const std::int64_t key = rng.UniformInt(-60, 60);
    const auto p = static_cast<std::int32_t>(rng.UniformInt(1, 16));
    const auto expected = static_cast<std::size_t>(
        std::lower_bound(a.begin(), a.end(), key) - a.begin());
    ASSERT_EQ(ParallelLowerBound(a, key, p), expected)
        << "n=" << n << " key=" << key << " p=" << p;
  }
}

// The headline property (experiment E13): iteration count is within the
// ceil(log(N+1)/log(p+1)) bound.
using IterationBoundParams = std::tuple<std::size_t, std::int32_t>;
class SnirIterationBound
    : public ::testing::TestWithParam<IterationBoundParams> {};

TEST_P(SnirIterationBound, WithinPredictedIterations) {
  const auto [n, p] = GetParam();
  const auto a = SortedArray(n);
  support::RandomSource rng(n * 31 + static_cast<std::uint64_t>(p));
  for (int trial = 0; trial < 16; ++trial) {
    const std::int64_t key = rng.UniformInt(-2, static_cast<std::int64_t>(2 * n) + 2);
    SearchStats stats;
    ParallelLowerBound(a, key, p, &stats);
    EXPECT_LE(stats.iterations, PredictedIterations(n, p) + 1)
        << "n=" << n << " p=" << p << " key=" << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnirIterationBound,
    ::testing::Combine(::testing::Values<std::size_t>(1, 7, 64, 255, 1024,
                                                      10000),
                       ::testing::Values<std::int32_t>(1, 2, 4, 15, 63)));

TEST(SnirSearch, MoreProcessorsNeverSlower) {
  const auto a = SortedArray(4096);
  SearchStats s1, s8, s64;
  ParallelLowerBound(a, 3000, 1, &s1);
  ParallelLowerBound(a, 3000, 8, &s8);
  ParallelLowerBound(a, 3000, 64, &s64);
  EXPECT_LE(s8.iterations, s1.iterations);
  EXPECT_LE(s64.iterations, s8.iterations);
  // Binary search baseline: p = 1 needs about lg 4096 = 12 iterations.
  EXPECT_GE(s1.iterations, 10);
  EXPECT_LE(s1.iterations, 13);
  // 64 processors: log(4097)/log(65) ~ 2.
  EXPECT_LE(s64.iterations, 2);
}

}  // namespace
}  // namespace crmc::pram
