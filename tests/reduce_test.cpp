// Tests for the Reduce step (Section 5.1, Theorem 5) and the single-channel
// knockout fallback.
#include <gtest/gtest.h>

#include <cmath>

#include "core/reduce.h"
#include "harness/runner.h"
#include "sim/engine.h"
#include "support/bits.h"

namespace crmc::core {
namespace {

sim::RunResult RunReduceOnly(std::int32_t num_active, std::int64_t population,
                             std::uint64_t seed) {
  sim::EngineConfig config;
  config.num_active = num_active;
  config.population = population;
  config.channels = 1;
  config.seed = seed;
  config.stop_when_solved = false;  // run the fixed schedule to completion
  config.record_active_counts = true;
  return sim::Engine::Run(config, MakeReduceOnly());
}

std::int64_t SurvivorCount(const sim::RunResult& r) {
  std::int64_t survivors = 0;
  for (const auto& report : r.node_reports) {
    if (report.phase_marks.count("reduce_survivor") ||
        report.phase_marks.count("reduce_leader")) {
      ++survivors;
    }
  }
  return survivors;
}

TEST(Reduce, ScheduleLengthIsTwiceCeilLgLg) {
  // ceil(lg lg 2^16) = 4 iterations, 2 rounds each. If a lone transmitter
  // happens to appear mid-schedule it becomes leader and everyone else goes
  // inactive, ending the run early — otherwise the schedule is exactly 8
  // rounds. Both outcomes must occur across seeds.
  int full_runs = 0;
  int early_leaders = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const sim::RunResult r = RunReduceOnly(64, 1 << 16, seed);
    EXPECT_TRUE(r.all_terminated);
    bool leader = false;
    for (const auto& report : r.node_reports) {
      if (report.phase_marks.count("reduce_leader")) leader = true;
    }
    if (leader) {
      ++early_leaders;
      EXPECT_LE(r.rounds_executed, 8);
    } else {
      ++full_runs;
      EXPECT_EQ(r.rounds_executed, 8);
    }
  }
  EXPECT_GT(full_runs, 0);
  EXPECT_GT(early_leaders, 0);
}

TEST(Reduce, AtLeastOneNodeSurvives) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const sim::RunResult r = RunReduceOnly(256, 1 << 12, seed);
    EXPECT_GE(SurvivorCount(r), 1) << "seed=" << seed;
  }
}

class ReduceSurvivors : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ReduceSurvivors, EndsWithOLogNSurvivors) {
  const std::int32_t num_active = GetParam();
  const auto population = static_cast<std::int64_t>(num_active);
  const double log_n = std::log2(static_cast<double>(population));
  // Theorem 5: survivors in [1, alpha*beta*log n] w.h.p. We allow a
  // generous alpha*beta of 12.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::RunResult r = RunReduceOnly(num_active, population, seed);
    const std::int64_t survivors = SurvivorCount(r);
    EXPECT_GE(survivors, 1) << "seed=" << seed;
    EXPECT_LE(survivors, static_cast<std::int64_t>(12.0 * log_n) + 4)
        << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSurvivors,
                         ::testing::Values(2, 8, 64, 512, 4096, 32768));

TEST(Reduce, ActiveCountNeverIncreases) {
  const sim::RunResult r = RunReduceOnly(1024, 1024, 3);
  for (std::size_t i = 1; i < r.active_counts.size(); ++i) {
    EXPECT_LE(r.active_counts[i], r.active_counts[i - 1]);
  }
}

TEST(Reduce, SmallPopulationDegenerates) {
  // |A| = 1: the lone node transmits with probability 1/n; it either
  // becomes leader (solving the problem) or survives silently.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunReduceOnly(1, 4, seed);
    EXPECT_TRUE(r.all_terminated);
    EXPECT_EQ(SurvivorCount(r), 1);
  }
}

TEST(Reduce, PopulationMuchLargerThanActives) {
  // n = 2^20 possible, only 16 woke up: the early rounds (p = 1/n-hat) are
  // almost surely silent, and the knockout must still leave >= 1 node.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::RunResult r = RunReduceOnly(16, 1 << 20, seed);
    EXPECT_GE(SurvivorCount(r), 1);
  }
}

TEST(Reduce, LeaderImpliesSolved) {
  // Whenever some node reports reduce_leader, the engine must have seen a
  // lone primary transmission that round.
  int leaders_seen = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const sim::RunResult r = RunReduceOnly(32, 64, seed);
    for (const auto& report : r.node_reports) {
      auto it = report.phase_marks.find("reduce_leader");
      if (it != report.phase_marks.end()) {
        ++leaders_seen;
        EXPECT_TRUE(r.solved);
        EXPECT_LE(r.solved_round, it->second);
      }
    }
  }
  EXPECT_GT(leaders_seen, 0) << "schedule never produced a lone transmitter "
                                "in 200 seeds; suspicious";
}

// --- KnockoutCd fallback -----------------------------------------------------

class KnockoutSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(KnockoutSweep, SolvesForAllSizes) {
  const std::int32_t num_active = GetParam();
  sim::EngineConfig config;
  config.num_active = num_active;
  config.channels = 1;
  config.stop_when_solved = false;
  config.max_rounds = 200000;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    config.seed = seed;
    const sim::RunResult r = sim::Engine::Run(config, MakeKnockoutCd());
    ASSERT_TRUE(r.solved) << "seed=" << seed;
    ASSERT_TRUE(r.all_terminated);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KnockoutSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

TEST(KnockoutCd, RoundsScaleLogarithmically) {
  harness::TrialSpec spec;
  spec.channels = 1;
  spec.num_active = 1 << 14;
  spec.population = 1 << 14;
  const double mean = harness::MeanSolvedRounds(spec, MakeKnockoutCd(), 40);
  // Expected ~ lg(16384) = 14 halvings plus a constant tail.
  EXPECT_LE(mean, 60.0);
  EXPECT_GE(mean, 8.0);
}

}  // namespace
}  // namespace crmc::core
