// Tests for the IDReduction step (Section 5.2, Theorem 6) and an empirical
// check of the balls-in-bins lemma (Lemma 9).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/channel_budget.h"
#include "core/id_reduction.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace crmc::core {
namespace {

sim::RunResult RunIdrOnly(std::int32_t num_active, std::int64_t population,
                          std::int32_t channels, std::uint64_t seed) {
  sim::EngineConfig config;
  config.num_active = num_active;
  config.population = population;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = false;
  config.max_rounds = 500000;
  return sim::Engine::Run(config, MakeIdReductionOnly());
}

struct IdrOutcome {
  std::vector<std::int64_t> ids;      // adopted unique IDs
  std::int64_t renamed_round = -1;    // round the renaming was confirmed
  bool leader = false;                // some node won via a reduction round
};

IdrOutcome Inspect(const sim::RunResult& r) {
  IdrOutcome out;
  for (const auto& report : r.node_reports) {
    auto mark = report.phase_marks.find("idr_renamed");
    if (mark != report.phase_marks.end()) {
      out.renamed_round = std::max(out.renamed_round, mark->second);
    }
    if (report.phase_marks.count("idr_leader")) out.leader = true;
    for (const auto& [key, value] : report.metrics) {
      if (key == "idr_id") out.ids.push_back(value);
    }
  }
  return out;
}

class IdReductionSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {
};

TEST_P(IdReductionSweep, RenamesWithDistinctIdsInRange) {
  const auto [num_active, channels] = GetParam();
  const std::int32_t half =
      EffectiveChannels(channels, /*population=*/1 << 20) / 2;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const sim::RunResult r = RunIdrOnly(num_active, 1 << 20, channels, seed);
    ASSERT_TRUE(r.all_terminated) << "seed=" << seed;
    const IdrOutcome out = Inspect(r);
    if (out.leader) {
      // A reduction round produced a lone transmitter; the problem is
      // solved and no renaming is required.
      ASSERT_TRUE(r.solved);
      continue;
    }
    ASSERT_GE(out.ids.size(), 1u) << "seed=" << seed;
    ASSERT_LE(static_cast<std::int32_t>(out.ids.size()), half);
    std::set<std::int64_t> distinct(out.ids.begin(), out.ids.end());
    EXPECT_EQ(distinct.size(), out.ids.size()) << "duplicate IDs";
    for (const auto id : out.ids) {
      EXPECT_GE(id, 1);
      EXPECT_LE(id, half);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IdReductionSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 5, 20, 60),
                       ::testing::Values<std::int32_t>(8, 32, 128, 1024)));

TEST(IdReduction, AllSurvivorsFinishSameRound) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const sim::RunResult r = RunIdrOnly(24, 1 << 16, 64, seed);
    std::set<std::int64_t> rounds;
    for (const auto& report : r.node_reports) {
      auto mark = report.phase_marks.find("idr_renamed");
      if (mark != report.phase_marks.end()) rounds.insert(mark->second);
    }
    if (!rounds.empty()) {
      EXPECT_EQ(rounds.size(), 1u)
          << "survivors left IDReduction in different rounds, seed=" << seed;
    }
  }
}

TEST(IdReduction, SingleNodeRenamesImmediatelyAndSolves) {
  // |A| = 1: alone on any channel, and its confirmation broadcast is a lone
  // primary transmission.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunIdrOnly(1, 1 << 10, 32, seed);
    EXPECT_TRUE(r.solved);
    EXPECT_EQ(r.solved_round, 1);  // the confirm round of the first pair
  }
}

TEST(IdReduction, PaperKnockDivisorStillTerminates) {
  IdReductionParams params;
  params.knock_divisor = 144.0;  // the paper's constant (k clamps to 2)
  sim::EngineConfig config;
  config.num_active = 40;
  config.population = 1 << 16;
  config.channels = 256;
  config.stop_when_solved = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const sim::RunResult r =
        sim::Engine::Run(config, MakeIdReductionOnly(params));
    EXPECT_TRUE(r.all_terminated) << "seed=" << seed;
  }
}

TEST(IdReduction, RequiresEnoughChannels) {
  sim::EngineConfig config;
  config.num_active = 4;
  config.channels = 2;
  config.seed = 1;
  // RunIdReduction demands >= 4 effective channels.
  EXPECT_THROW(
      sim::Engine::Run(config,
                       [](sim::NodeContext& ctx) -> sim::ProtocolTask {
                         (void)co_await RunIdReduction(ctx, 2,
                                                       IdReductionParams{});
                       }),
      std::invalid_argument);
}

// --- Lemma 9 (balls in bins), checked by direct Monte Carlo -----------------

TEST(BallsInBins, LonelyBallProbabilityMatchesLemma9) {
  // Throw b balls into m bins with b = m/beta, beta >= 3. Lemma 9: the
  // probability that NO ball is alone is < 2^(-b/2).
  support::RandomSource rng(555);
  const std::int64_t m = 240;
  for (const std::int64_t beta : {3, 6, 12}) {
    const std::int64_t b = m / beta;
    const int trials = 20000;
    int no_lonely = 0;
    std::vector<int> bins(static_cast<std::size_t>(m));
    for (int t = 0; t < trials; ++t) {
      std::fill(bins.begin(), bins.end(), 0);
      for (std::int64_t i = 0; i < b; ++i) {
        ++bins[static_cast<std::size_t>(rng.UniformInt(0, m - 1))];
      }
      bool lonely = false;
      for (const int count : bins) {
        if (count == 1) {
          lonely = true;
          break;
        }
      }
      if (!lonely) ++no_lonely;
    }
    const double rate = static_cast<double>(no_lonely) / trials;
    const double bound = std::pow(2.0, -static_cast<double>(b) / 2.0);
    EXPECT_LE(rate, std::max(bound, 5.0 / trials))
        << "beta=" << beta << " b=" << b;
  }
}

}  // namespace
}  // namespace crmc::core
