// Differential and randomized fuzz tests.
//
// 1. Resolver vs a naive reference implementation, over random action
//    batches and every CD model.
// 2. Random protocols through the engine: invariants (feedback validity,
//    conservation of transmissions, solved definition, determinism) must
//    hold for arbitrary well-formed behaviour.
// 3. Random RobustSpec / AdversarySpec configurations through the Validate*
//    layer: every rejection must be a std::invalid_argument with a
//    non-empty message (never a crash or a foreign exception type), and
//    every accepted config must survive a short engine run without
//    aborting.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/two_active.h"
#include "mac/channel.h"
#include "mac/resolver.h"
#include "robust/robust.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace crmc {
namespace {

using mac::Action;
using mac::CdModel;
using mac::Feedback;
using mac::Message;
using mac::Observation;

// Straight-line reference semantics from Section 3 of the paper.
std::vector<Feedback> ReferenceResolve(const std::vector<Action>& actions,
                                       CdModel model) {
  std::map<mac::ChannelId, std::vector<std::size_t>> transmitters;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].channel != mac::kIdleChannel && actions[i].transmit) {
      transmitters[actions[i].channel].push_back(i);
    }
  }
  std::vector<Feedback> out(actions.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    if (a.channel == mac::kIdleChannel) continue;
    const auto it = transmitters.find(a.channel);
    const std::size_t count = it == transmitters.end() ? 0 : it->second.size();
    Feedback fb;
    if (count == 0) {
      fb.observation = Observation::kSilence;
    } else if (count == 1) {
      fb.observation = Observation::kMessage;
      fb.message = actions[it->second.front()].message;
    } else {
      fb.observation = Observation::kCollision;
    }
    if (model == CdModel::kReceiverOnly && a.transmit) fb = Feedback{};
    if (model == CdModel::kNone) {
      if (a.transmit || fb.observation == Observation::kCollision) {
        fb = Feedback{};
      }
    }
    out[i] = fb;
  }
  return out;
}

TEST(ResolverFuzz, MatchesReferenceAcrossModelsAndBatches) {
  support::RandomSource rng(0xf022);
  mac::Resolver strong(16, CdModel::kStrong);
  mac::Resolver receiver(16, CdModel::kReceiverOnly);
  mac::Resolver none(16, CdModel::kNone);
  std::vector<Feedback> got;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.UniformInt(1, 40));
    std::vector<Action> actions(n);
    for (Action& a : actions) {
      const std::int64_t kind = rng.UniformInt(0, 3);
      if (kind == 0) {
        a = Action::Idle();
      } else if (kind == 1) {
        a = Action::Listen(
            static_cast<mac::ChannelId>(rng.UniformInt(1, 16)));
      } else {
        a = Action::Transmit(
            static_cast<mac::ChannelId>(rng.UniformInt(1, 16)),
            Message{rng.NextU64() % 1000});
      }
    }
    for (auto* resolver : {&strong, &receiver, &none}) {
      resolver->Resolve(actions, got);
      const auto expected = ReferenceResolve(actions, resolver->cd_model());
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(static_cast<int>(got[i].observation),
                  static_cast<int>(expected[i].observation))
            << "trial=" << trial << " node=" << i << " model="
            << ToString(resolver->cd_model());
        if (got[i].observation == Observation::kMessage) {
          ASSERT_EQ(got[i].message.payload, expected[i].message.payload);
        }
      }
    }
  }
}

// A protocol driven by its own RNG: every round, pick idle/listen/transmit
// on a random channel; terminate after a random number of rounds. The
// engine must uphold its invariants for any such behaviour.
sim::Task<void> ChaoticProtocol(sim::NodeContext& ctx) {
  const std::int64_t lifetime = ctx.rng().UniformInt(1, 60);
  std::int64_t observed_messages = 0;
  for (std::int64_t r = 0; r < lifetime; ++r) {
    const std::int64_t kind = ctx.rng().UniformInt(0, 2);
    Feedback fb;
    if (kind == 0) {
      fb = co_await ctx.Sleep();
      if (!fb.Silence()) throw std::logic_error("idle must observe nothing");
    } else if (kind == 1) {
      fb = co_await ctx.Listen(
          static_cast<mac::ChannelId>(ctx.rng().UniformInt(1, ctx.channels())));
    } else {
      fb = co_await ctx.Transmit(
          static_cast<mac::ChannelId>(ctx.rng().UniformInt(1, ctx.channels())),
          Message{static_cast<std::uint64_t>(ctx.index())});
      if (fb.Silence()) {
        throw std::logic_error("a transmitter's channel cannot be silent");
      }
    }
    if (fb.MessageHeard()) ++observed_messages;
  }
  ctx.RecordMetric("messages", observed_messages);
}

TEST(EngineFuzz, InvariantsHoldUnderChaoticProtocols) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    sim::EngineConfig config;
    config.num_active = 30;
    config.channels = 8;
    config.seed = seed;
    config.stop_when_solved = false;
    config.record_node_transmissions = true;
    const sim::RunResult r = sim::Engine::Run(
        config, [](sim::NodeContext& ctx) { return ChaoticProtocol(ctx); });
    ASSERT_TRUE(r.all_terminated);
    // Conservation: per-node counts sum to the total.
    std::int64_t sum = 0;
    for (const auto tx : r.node_transmissions) sum += tx;
    ASSERT_EQ(sum, r.total_transmissions);
    ASSERT_LE(r.max_node_transmissions, r.rounds_executed);
    // solved_round consistency.
    if (r.solved) {
      ASSERT_GE(r.solved_round, 0);
      ASSERT_LT(r.solved_round, r.rounds_executed);
    } else {
      ASSERT_EQ(r.solved_round, -1);
    }
  }
}

TEST(EngineFuzz, ChaoticRunsAreDeterministic) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto run = [&] {
      sim::EngineConfig config;
      config.num_active = 25;
      config.channels = 6;
      config.seed = seed;
      config.stop_when_solved = false;
      return sim::Engine::Run(config, [](sim::NodeContext& ctx) {
        return ChaoticProtocol(ctx);
      });
    };
    const sim::RunResult a = run();
    const sim::RunResult b = run();
    ASSERT_EQ(a.total_transmissions, b.total_transmissions);
    ASSERT_EQ(a.rounds_executed, b.rounds_executed);
    ASSERT_EQ(a.solved_round, b.solved_round);
    ASSERT_EQ(a.MetricValues("messages"), b.MetricValues("messages"));
  }
}

// --- config-space fuzz: Validate* as the only gate --------------------------

robust::RobustSpec RandomRobustSpec(support::RandomSource& rng) {
  robust::RobustSpec spec;
  spec.enabled = rng.UniformInt(0, 3) > 0;  // bias towards enabled
  spec.policy = rng.UniformInt(0, 1) == 0 ? robust::PolicyKind::kStatic
                                          : robust::PolicyKind::kAdaptive;
  spec.max_epochs = static_cast<std::int32_t>(rng.UniformInt(-2, 12));
  spec.confirm_attempts = static_cast<std::int32_t>(rng.UniformInt(-2, 1200));
  spec.backoff_base = rng.UniformInt(-2, 12);
  spec.backoff_cap = rng.UniformInt(-2, 64);
  spec.epoch_round_budget = rng.UniformInt(-2, 300);
  spec.stall_round_budget = rng.UniformInt(-2, 300);
  return spec;
}

adversary::AdversarySpec RandomAdversarySpec(support::RandomSource& rng,
                                             std::int32_t channels) {
  adversary::AdversarySpec spec;
  const std::int64_t pick = rng.UniformInt(0, 7);
  using adversary::Kind;
  spec.kind = pick == 0   ? Kind::kNone
              : pick == 1 ? Kind::kObliviousRate
              : pick == 2 ? Kind::kPrimaryCamper
              : pick == 3 ? Kind::kGreedyReactive
              : pick == 4 ? Kind::kRandomBudgeted
              : pick == 5 ? Kind::kPhaseTracking
              : pick == 6 ? Kind::kLookahead
                          : Kind::kLearning;
  if (rng.UniformInt(0, 3) == 0) {
    spec.rate = static_cast<double>(rng.UniformInt(-1, 12)) / 10.0;
  }
  if (rng.UniformInt(0, 1) == 0) spec.budget = rng.UniformInt(-3, 60);
  spec.per_round_cap = static_cast<std::int32_t>(rng.UniformInt(-1, 6));
  spec.obs = rng.UniformInt(0, 1) == 0 ? adversary::ObsMode::kFull
                                       : adversary::ObsMode::kActivity;
  spec.adv_seed = rng.NextU64();
  if (rng.UniformInt(0, 7) == 0) {
    const std::int64_t entries = rng.UniformInt(1, 5);
    for (std::int64_t e = 0; e < entries; ++e) {
      spec.script.push_back(
          {rng.UniformInt(-1, 20),
           static_cast<mac::ChannelId>(rng.UniformInt(0, channels + 2))});
    }
  }
  return spec;
}

TEST(ConfigFuzz, ValidateIsTheOnlyGateAndAcceptedConfigsRun) {
  // 1500 random (RobustSpec, AdversarySpec) pairs. Contract under fuzz:
  // Validate*/ValidateEngineConfig either throws std::invalid_argument
  // with a non-empty what() or accepts; no other exception type, no
  // CRMC_CHECK abort. Accepted configs must then survive a short real run
  // — the validators, not the engine internals, are the config gate.
  support::RandomSource rng(0xC0F16);
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 1500; ++trial) {
    sim::EngineConfig config;
    config.population = 64;
    config.num_active = 2;
    config.channels = 4;
    config.max_rounds = 300;
    config.seed = static_cast<std::uint64_t>(trial);
    config.robust = RandomRobustSpec(rng);
    config.adversary = RandomAdversarySpec(rng, config.channels);
    if (rng.UniformInt(0, 7) == 0) {
      config.faults.jam_rate = 0.05;  // may conflict with the adversary
    }
    bool ok = false;
    try {
      sim::ValidateEngineConfig(config);
      ok = true;
    } catch (const std::invalid_argument& e) {
      ASSERT_FALSE(std::string(e.what()).empty()) << "trial=" << trial;
      ++rejected;
    }
    // Anything else (std::logic_error from a CRMC_CHECK, bad_alloc, ...)
    // propagates and fails the test.
    if (!ok) continue;
    ++accepted;
    const sim::RunResult r = sim::Engine::Run(config, core::MakeTwoActive());
    ASSERT_GE(r.rounds_executed, 0) << "trial=" << trial;
  }
  // The generator must actually exercise both sides of the gate.
  EXPECT_GT(accepted, 100);
  EXPECT_GT(rejected, 100);
}

}  // namespace
}  // namespace crmc
