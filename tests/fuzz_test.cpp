// Differential and randomized fuzz tests.
//
// 1. Resolver vs a naive reference implementation, over random action
//    batches and every CD model.
// 2. Random protocols through the engine: invariants (feedback validity,
//    conservation of transmissions, solved definition, determinism) must
//    hold for arbitrary well-formed behaviour.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "mac/channel.h"
#include "mac/resolver.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace crmc {
namespace {

using mac::Action;
using mac::CdModel;
using mac::Feedback;
using mac::Message;
using mac::Observation;

// Straight-line reference semantics from Section 3 of the paper.
std::vector<Feedback> ReferenceResolve(const std::vector<Action>& actions,
                                       CdModel model) {
  std::map<mac::ChannelId, std::vector<std::size_t>> transmitters;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i].channel != mac::kIdleChannel && actions[i].transmit) {
      transmitters[actions[i].channel].push_back(i);
    }
  }
  std::vector<Feedback> out(actions.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    if (a.channel == mac::kIdleChannel) continue;
    const auto it = transmitters.find(a.channel);
    const std::size_t count = it == transmitters.end() ? 0 : it->second.size();
    Feedback fb;
    if (count == 0) {
      fb.observation = Observation::kSilence;
    } else if (count == 1) {
      fb.observation = Observation::kMessage;
      fb.message = actions[it->second.front()].message;
    } else {
      fb.observation = Observation::kCollision;
    }
    if (model == CdModel::kReceiverOnly && a.transmit) fb = Feedback{};
    if (model == CdModel::kNone) {
      if (a.transmit || fb.observation == Observation::kCollision) {
        fb = Feedback{};
      }
    }
    out[i] = fb;
  }
  return out;
}

TEST(ResolverFuzz, MatchesReferenceAcrossModelsAndBatches) {
  support::RandomSource rng(0xf022);
  mac::Resolver strong(16, CdModel::kStrong);
  mac::Resolver receiver(16, CdModel::kReceiverOnly);
  mac::Resolver none(16, CdModel::kNone);
  std::vector<Feedback> got;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.UniformInt(1, 40));
    std::vector<Action> actions(n);
    for (Action& a : actions) {
      const std::int64_t kind = rng.UniformInt(0, 3);
      if (kind == 0) {
        a = Action::Idle();
      } else if (kind == 1) {
        a = Action::Listen(
            static_cast<mac::ChannelId>(rng.UniformInt(1, 16)));
      } else {
        a = Action::Transmit(
            static_cast<mac::ChannelId>(rng.UniformInt(1, 16)),
            Message{rng.NextU64() % 1000});
      }
    }
    for (auto* resolver : {&strong, &receiver, &none}) {
      resolver->Resolve(actions, got);
      const auto expected = ReferenceResolve(actions, resolver->cd_model());
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(static_cast<int>(got[i].observation),
                  static_cast<int>(expected[i].observation))
            << "trial=" << trial << " node=" << i << " model="
            << ToString(resolver->cd_model());
        if (got[i].observation == Observation::kMessage) {
          ASSERT_EQ(got[i].message.payload, expected[i].message.payload);
        }
      }
    }
  }
}

// A protocol driven by its own RNG: every round, pick idle/listen/transmit
// on a random channel; terminate after a random number of rounds. The
// engine must uphold its invariants for any such behaviour.
sim::Task<void> ChaoticProtocol(sim::NodeContext& ctx) {
  const std::int64_t lifetime = ctx.rng().UniformInt(1, 60);
  std::int64_t observed_messages = 0;
  for (std::int64_t r = 0; r < lifetime; ++r) {
    const std::int64_t kind = ctx.rng().UniformInt(0, 2);
    Feedback fb;
    if (kind == 0) {
      fb = co_await ctx.Sleep();
      if (!fb.Silence()) throw std::logic_error("idle must observe nothing");
    } else if (kind == 1) {
      fb = co_await ctx.Listen(
          static_cast<mac::ChannelId>(ctx.rng().UniformInt(1, ctx.channels())));
    } else {
      fb = co_await ctx.Transmit(
          static_cast<mac::ChannelId>(ctx.rng().UniformInt(1, ctx.channels())),
          Message{static_cast<std::uint64_t>(ctx.index())});
      if (fb.Silence()) {
        throw std::logic_error("a transmitter's channel cannot be silent");
      }
    }
    if (fb.MessageHeard()) ++observed_messages;
  }
  ctx.RecordMetric("messages", observed_messages);
}

TEST(EngineFuzz, InvariantsHoldUnderChaoticProtocols) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    sim::EngineConfig config;
    config.num_active = 30;
    config.channels = 8;
    config.seed = seed;
    config.stop_when_solved = false;
    config.record_node_transmissions = true;
    const sim::RunResult r = sim::Engine::Run(
        config, [](sim::NodeContext& ctx) { return ChaoticProtocol(ctx); });
    ASSERT_TRUE(r.all_terminated);
    // Conservation: per-node counts sum to the total.
    std::int64_t sum = 0;
    for (const auto tx : r.node_transmissions) sum += tx;
    ASSERT_EQ(sum, r.total_transmissions);
    ASSERT_LE(r.max_node_transmissions, r.rounds_executed);
    // solved_round consistency.
    if (r.solved) {
      ASSERT_GE(r.solved_round, 0);
      ASSERT_LT(r.solved_round, r.rounds_executed);
    } else {
      ASSERT_EQ(r.solved_round, -1);
    }
  }
}

TEST(EngineFuzz, ChaoticRunsAreDeterministic) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto run = [&] {
      sim::EngineConfig config;
      config.num_active = 25;
      config.channels = 6;
      config.seed = seed;
      config.stop_when_solved = false;
      return sim::Engine::Run(config, [](sim::NodeContext& ctx) {
        return ChaoticProtocol(ctx);
      });
    };
    const sim::RunResult a = run();
    const sim::RunResult b = run();
    ASSERT_EQ(a.total_transmissions, b.total_transmissions);
    ASSERT_EQ(a.rounds_executed, b.rounds_executed);
    ASSERT_EQ(a.solved_round, b.solved_round);
    ASSERT_EQ(a.MetricValues("messages"), b.MetricValues("messages"));
  }
}

}  // namespace
}  // namespace crmc
