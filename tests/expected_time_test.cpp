// Tests for the expected-time algorithms (Willard's density search and the
// expected-O(1) multichannel lottery the paper's conclusion references).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.h"
#include "core/reduce.h"
#include "harness/runner.h"
#include "sim/engine.h"

namespace crmc::baselines {
namespace {

sim::RunResult RunOnce(const sim::ProtocolFactory& factory,
                       std::int32_t num_active, std::int64_t population,
                       std::int32_t channels, std::uint64_t seed,
                       bool stop_when_solved = true) {
  sim::EngineConfig config;
  config.num_active = num_active;
  config.population = population;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = stop_when_solved;
  config.max_rounds = 2'000'000;
  return sim::Engine::Run(config, factory);
}

class WillardSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(WillardSweep, SolvesAndSelfTerminates) {
  const std::int32_t num_active = GetParam();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunOnce(MakeWillardCd(), num_active, 1 << 14,
                                     1, seed, /*stop=*/false);
    ASSERT_TRUE(r.solved) << "seed=" << seed;
    ASSERT_TRUE(r.all_terminated) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WillardSweep,
                         ::testing::Values(1, 2, 3, 17, 300, 8192));

TEST(Willard, ExpectedTimeBeatsKnockoutAtScale) {
  // Willard's density search is O(loglog n) expected; the knockout needs
  // ~lg |A| halvings. At |A| = 2^14 the gap is decisive in the mean.
  harness::TrialSpec spec;
  spec.population = 1 << 14;
  spec.num_active = 1 << 14;
  spec.channels = 1;
  const double willard =
      harness::MeanSolvedRounds(spec, MakeWillardCd(), 60);
  const double knockout =
      harness::MeanSolvedRounds(spec, core::MakeKnockoutCd(), 60);
  EXPECT_LT(willard, knockout);
  EXPECT_LE(willard, 12.0);  // ~ a couple of lglg(2^14) ~ 4-round searches
}

class ExpectedO1Sweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t>> {
};

TEST_P(ExpectedO1Sweep, SolvesForAllSizes) {
  const auto [num_active, channels] = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const sim::RunResult r = RunOnce(MakeExpectedO1Multichannel(),
                                     num_active, 1 << 14, channels, seed);
    ASSERT_TRUE(r.solved)
        << "|A|=" << num_active << " C=" << channels << " seed=" << seed;
  }
}

// The scheme needs ~lg |A| channels (the conclusion's "as few as log n
// channels"); pairs with C below that are excluded — there is no level a
// lone shouter can own, so the expected time genuinely diverges.
INSTANTIATE_TEST_SUITE_P(
    Grid, ExpectedO1Sweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(2, 4), std::make_tuple(5, 4),
                      std::make_tuple(5, 16), std::make_tuple(100, 16),
                      std::make_tuple(100, 64), std::make_tuple(5000, 16),
                      std::make_tuple(5000, 64)));

TEST(ExpectedO1, MeanIsFlatInPopulation) {
  // The conclusion's point: expected time is O(1) — independent of n —
  // once ~lg n channels exist. Means across three decades of |A| should
  // stay within a small constant band.
  harness::TrialSpec spec;
  spec.channels = 20;
  constexpr int kTrials = 300;
  double means[3];
  int i = 0;
  for (const std::int32_t a : {64, 1024, 16384}) {
    spec.population = 1 << 16;
    spec.num_active = a;
    means[i++] =
        harness::MeanSolvedRounds(spec, MakeExpectedO1Multichannel(),
                                  kTrials);
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_LE(means[j], 40.0) << "mean " << j << " = " << means[j];
  }
  EXPECT_LE(std::abs(means[0] - means[2]), 25.0)
      << means[0] << " vs " << means[2];
}

TEST(ExpectedO1, ExpectedVersusWhpTradeoff) {
  // Expected-time algorithms pay at the tail: the p99 / mean ratio should
  // be much larger than for the w.h.p.-bounded knockout.
  harness::TrialSpec spec;
  spec.population = 1 << 12;
  spec.num_active = 1 << 12;
  spec.channels = 16;
  constexpr int kTrials = 400;
  const harness::TrialSetResult fast =
      harness::RunTrials(spec, MakeExpectedO1Multichannel(), kTrials);
  spec.channels = 1;
  const harness::TrialSetResult knockout =
      harness::RunTrials(spec, core::MakeKnockoutCd(), kTrials);
  ASSERT_EQ(fast.unsolved, 0);
  ASSERT_EQ(knockout.unsolved, 0);
  const double fast_ratio = fast.summary.p99 / fast.summary.mean;
  const double knockout_ratio = knockout.summary.p99 / knockout.summary.mean;
  EXPECT_GT(fast_ratio, knockout_ratio);
}

}  // namespace
}  // namespace crmc::baselines
