// Unit + property tests for the channel tree.
#include <gtest/gtest.h>

#include <vector>

#include "tree/channel_tree.h"

namespace crmc::tree {
namespace {

TEST(ChannelTree, BasicDimensions) {
  const ChannelTree t(8);
  EXPECT_EQ(t.num_leaves(), 8);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.num_tree_nodes(), 15);
}

TEST(ChannelTree, SingleLeafDegenerates) {
  const ChannelTree t(1);
  EXPECT_EQ(t.height(), 0);
  EXPECT_EQ(t.num_tree_nodes(), 1);
  EXPECT_EQ(t.LeafHeapIndex(1), 1);
  EXPECT_EQ(t.AncestorAtLevel(1, 0), 1);
}

TEST(ChannelTree, RejectsNonPowerOfTwo) {
  EXPECT_THROW(ChannelTree(6), std::invalid_argument);
  EXPECT_THROW(ChannelTree(0), std::invalid_argument);
}

TEST(ChannelTree, LeafHeapIndices) {
  const ChannelTree t(8);
  EXPECT_EQ(t.LeafHeapIndex(1), 8);
  EXPECT_EQ(t.LeafHeapIndex(8), 15);
  EXPECT_THROW(t.LeafHeapIndex(0), std::invalid_argument);
  EXPECT_THROW(t.LeafHeapIndex(9), std::invalid_argument);
}

TEST(ChannelTree, AncestorsOfLeafFive) {
  const ChannelTree t(8);  // heap leaf index of 5 is 12
  EXPECT_EQ(t.AncestorAtLevel(5, 3), 12);
  EXPECT_EQ(t.AncestorAtLevel(5, 2), 6);
  EXPECT_EQ(t.AncestorAtLevel(5, 1), 3);
  EXPECT_EQ(t.AncestorAtLevel(5, 0), 1);
}

TEST(ChannelTree, IndexWithinLevelMatchesPaperFormula) {
  // The paper's SplitCheck assigns node with ID id to channel
  // ceil(id / 2^(lg C - m)) at level m.
  const ChannelTree t(16);
  const int h = t.height();
  for (int id = 1; id <= 16; ++id) {
    for (int m = 0; m <= h; ++m) {
      const int expected = (id + (1 << (h - m)) - 1) / (1 << (h - m));
      EXPECT_EQ(t.IndexWithinLevel(id, m), expected)
          << "id=" << id << " level=" << m;
    }
  }
}

TEST(ChannelTree, RowChannels) {
  const ChannelTree t(8);
  EXPECT_EQ(t.RowChannel(0), 1);
  EXPECT_EQ(t.RowChannel(1), 2);
  EXPECT_EQ(t.RowChannel(2), 4);
  EXPECT_EQ(t.RowChannel(3), 8);
}

TEST(ChannelTree, IsLeftChild) {
  EXPECT_TRUE(ChannelTree::IsLeftChild(2));
  EXPECT_FALSE(ChannelTree::IsLeftChild(3));
  EXPECT_TRUE(ChannelTree::IsLeftChild(14));
  EXPECT_FALSE(ChannelTree::IsLeftChild(15));
}

// Property: two leaves share their level-m ancestor iff m is at most the
// level of their lowest common ancestor — verified against a brute-force
// LCA computed by walking heap parents.
TEST(ChannelTree, SharedAncestorMatchesBruteForceLca) {
  const ChannelTree t(32);
  const int h = t.height();
  auto lca_level = [&](int a, int b) {
    int x = t.LeafHeapIndex(a);
    int y = t.LeafHeapIndex(b);
    int level = h;
    while (x != y) {
      x /= 2;
      y /= 2;
      --level;
    }
    return level;
  };
  for (int a = 1; a <= 32; ++a) {
    for (int b = 1; b <= 32; ++b) {
      const int shared_up_to = lca_level(a, b);
      for (int m = 0; m <= h; ++m) {
        const bool shared = t.AncestorAtLevel(a, m) == t.AncestorAtLevel(b, m);
        EXPECT_EQ(shared, m <= shared_up_to)
            << "a=" << a << " b=" << b << " m=" << m;
      }
    }
  }
}

// Property: at the LCA level + 1, exactly one of two distinct leaves
// descends through the left child — the TwoActive winner rule.
TEST(ChannelTree, ExactlyOneLeftChildBelowLca) {
  const ChannelTree t(64);
  const int h = t.height();
  for (int a = 1; a <= 64; ++a) {
    for (int b = a + 1; b <= 64; ++b) {
      int x = t.LeafHeapIndex(a);
      int y = t.LeafHeapIndex(b);
      int level = h;
      while (x != y) {
        x /= 2;
        y /= 2;
        --level;
      }
      const int divergence = level + 1;
      const bool a_left = t.AncestorIsLeftChild(a, divergence);
      const bool b_left = t.AncestorIsLeftChild(b, divergence);
      EXPECT_NE(a_left, b_left) << "a=" << a << " b=" << b;
    }
  }
}

// Property: channel assignments of distinct tree nodes are distinct and
// cover [1, 2L-1].
TEST(ChannelTree, ChannelAssignmentIsBijective) {
  const ChannelTree t(16);
  std::vector<bool> seen(static_cast<std::size_t>(t.num_tree_nodes()) + 1,
                         false);
  for (int node = 1; node <= t.num_tree_nodes(); ++node) {
    const auto ch = t.ChannelOf(node);
    ASSERT_GE(ch, 1);
    ASSERT_LE(ch, t.num_tree_nodes());
    EXPECT_FALSE(seen[static_cast<std::size_t>(ch)]);
    seen[static_cast<std::size_t>(ch)] = true;
  }
}

TEST(ChannelTree, RootIsPrimaryChannel) {
  const ChannelTree t(8);
  EXPECT_EQ(t.ChannelOf(t.AncestorAtLevel(5, 0)), mac::kPrimaryChannel);
}

}  // namespace
}  // namespace crmc::tree
