// Unit tests for the adversarial fault-injection layer (mac/faults.h):
// spec validation, per-fault channel semantics, engine-level crash/stall/
// abort accounting, and zero-rate purity.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/general.h"
#include "core/two_active.h"
#include "mac/channel.h"
#include "mac/faults.h"
#include "mac/resolver.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"
#include "support/assert.h"

namespace crmc {
namespace {

using mac::Action;
using mac::FaultInjector;
using mac::FaultSpec;
using mac::Feedback;
using mac::Message;
using mac::Resolver;
using mac::RoundSummary;

std::string ThrownMessage(const FaultSpec& spec) {
  try {
    spec.Validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(FaultSpec, DefaultIsInactiveAndValid) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.Any());
  EXPECT_NO_THROW(spec.Validate());
}

TEST(FaultSpec, ValidateRejectsEachRateDistinctly) {
  FaultSpec spec;
  spec.jam_rate = 1.5;
  EXPECT_NE(ThrownMessage(spec).find("jam_rate"), std::string::npos);
  spec = FaultSpec{};
  spec.erasure_rate = -0.1;
  EXPECT_NE(ThrownMessage(spec).find("erasure_rate"), std::string::npos);
  spec = FaultSpec{};
  spec.flaky_cd_rate = 2.0;
  EXPECT_NE(ThrownMessage(spec).find("flaky_cd_rate"), std::string::npos);
  spec = FaultSpec{};
  spec.crash_rate = -1.0;
  EXPECT_NE(ThrownMessage(spec).find("crash_rate"), std::string::npos);
}

TEST(FaultSpec, AnyDetectsEachRate) {
  FaultSpec spec;
  spec.jam_rate = 0.1;
  EXPECT_TRUE(spec.Any());
  spec = FaultSpec{};
  spec.crash_rate = 0.1;
  EXPECT_TRUE(spec.Any());
  spec = FaultSpec{};
  spec.fault_seed = 99;  // a seed alone is not a fault
  EXPECT_FALSE(spec.Any());
}

// --- resolver-level channel faults ----------------------------------------

TEST(FaultInjection, CertainJamForcesCollisionEverywhere) {
  FaultSpec spec;
  spec.jam_rate = 1.0;
  FaultInjector inj(spec, /*run_seed=*/1);
  Resolver r(4);
  std::vector<Feedback> fb;
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Transmit(1, Message{5}), Action::Listen(1),
                          Action::Listen(3)},
      fb, &inj);
  // Lone transmitter on the primary channel, but the jam drowns it: every
  // participant observes collision and the round does not solve.
  EXPECT_TRUE(fb[0].Collision());
  EXPECT_TRUE(fb[1].Collision());
  EXPECT_TRUE(fb[2].Collision());
  EXPECT_EQ(s.primary_transmitters, 1);
  EXPECT_FALSE(s.primary_lone_delivered);
  EXPECT_EQ(s.lone_deliveries, 0);
  EXPECT_EQ(inj.counters().jams, 2);  // channels 1 and 3
  EXPECT_EQ(inj.counters().Total(), 2);
}

TEST(FaultInjection, CertainErasureSilencesLoneTransmitter) {
  FaultSpec spec;
  spec.erasure_rate = 1.0;
  FaultInjector inj(spec, 1);
  Resolver r(4);
  std::vector<Feedback> fb;
  const RoundSummary s = r.Resolve(
      std::vector<Action>{Action::Transmit(1, Message{5}), Action::Listen(1),
                          Action::Transmit(2), Action::Transmit(2)},
      fb, &inj);
  // Channel 1's lone message is dropped: everyone there observes silence —
  // including the transmitter, which under strong CD is feedback the model
  // says is impossible.
  EXPECT_TRUE(fb[0].Silence());
  EXPECT_TRUE(fb[1].Silence());
  // A collision is not a lone message; erasure does not apply to channel 2.
  EXPECT_TRUE(fb[2].Collision());
  EXPECT_TRUE(fb[3].Collision());
  EXPECT_FALSE(s.primary_lone_delivered);
  EXPECT_EQ(s.lone_deliveries, 0);
  EXPECT_EQ(inj.counters().erasures, 1);
}

TEST(FaultInjection, CertainFlakyCdFlipsEveryObservation) {
  FaultSpec spec;
  spec.flaky_cd_rate = 1.0;
  FaultInjector inj(spec, 1);
  Resolver r(4);
  std::vector<Feedback> fb;
  r.Resolve(std::vector<Action>{
                Action::Transmit(1, Message{9}),  // lone message -> collision
                Action::Listen(2),                // silence -> collision
                Action::Transmit(3), Action::Transmit(3),  // collision ->
                                                           // silence
                Action::Idle()},                  // idle: no detector at all
            fb, &inj);
  EXPECT_TRUE(fb[0].Collision());
  EXPECT_EQ(fb[0].message.payload, 0u);  // corrupted payload is cleared
  EXPECT_TRUE(fb[1].Collision());
  EXPECT_TRUE(fb[2].Silence());
  EXPECT_TRUE(fb[3].Silence());
  EXPECT_TRUE(fb[4].Silence());
  EXPECT_EQ(inj.counters().cd_flips, 4);  // one per non-idle participant
}

TEST(FaultInjection, NullInjectorMatchesInactiveInjector) {
  // An all-zero spec consumes no randomness, so feeding the injector to the
  // resolver must be indistinguishable from not having one.
  FaultSpec spec;
  spec.fault_seed = 123;
  FaultInjector inj(spec, 1);
  EXPECT_FALSE(inj.active());
  Resolver r1(4), r2(4);
  std::vector<Feedback> fb1, fb2;
  const std::vector<Action> actions{Action::Transmit(1, Message{7}),
                                    Action::Listen(1), Action::Transmit(2)};
  const RoundSummary s1 = r1.Resolve(actions, fb1, &inj);
  const RoundSummary s2 = r2.Resolve(actions, fb2);
  EXPECT_EQ(s1.lone_deliveries, s2.lone_deliveries);
  EXPECT_EQ(s1.primary_lone_delivered, s2.primary_lone_delivered);
  for (std::size_t i = 0; i < fb1.size(); ++i) {
    EXPECT_EQ(fb1[i].observation, fb2[i].observation);
    EXPECT_EQ(fb1[i].message, fb2[i].message);
  }
  EXPECT_EQ(inj.counters().Total(), 0);
}

// --- engine-level semantics ------------------------------------------------

sim::Task<void> TransmitPrimaryForever(sim::NodeContext& ctx) {
  for (;;) co_await ctx.Transmit(mac::kPrimaryChannel);
}

sim::EngineConfig TwoForeverConfig(std::int64_t max_rounds) {
  sim::EngineConfig config;
  config.num_active = 2;
  config.channels = 2;
  config.max_rounds = max_rounds;
  return config;
}

TEST(FaultEngine, CertainCrashKillsEveryoneInRoundZero) {
  sim::EngineConfig config = TwoForeverConfig(100);
  config.faults.crash_rate = 1.0;
  const sim::RunResult r = sim::Engine::Run(config, [](sim::NodeContext& ctx) {
    return TransmitPrimaryForever(ctx);
  });
  EXPECT_EQ(r.crashed_nodes, 2);
  EXPECT_EQ(r.rounds_executed, 0);  // nobody survived to round 0's actions
  EXPECT_FALSE(r.solved);
  EXPECT_FALSE(r.timed_out);
  // Crashed nodes never ran to completion.
  EXPECT_FALSE(r.all_terminated);
}

TEST(FaultEngine, StallWatchdogFlagsWedgedRuns) {
  // Two nodes colliding on the primary channel forever: no lone delivery,
  // no termination — every round is a stall round.
  const sim::RunResult r =
      sim::Engine::Run(TwoForeverConfig(50), [](sim::NodeContext& ctx) {
        return TransmitPrimaryForever(ctx);
      });
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.stall_rounds, 50);
  EXPECT_TRUE(r.wedged);
}

sim::Task<void> TransmitTwiceThenStop(sim::NodeContext& ctx) {
  co_await ctx.Transmit(mac::kPrimaryChannel);
  co_await ctx.Transmit(mac::kPrimaryChannel);
}

TEST(FaultEngine, TerminationCountsAsProgress) {
  // Both nodes terminate after two rounds: the run ends with zero trailing
  // stall and is not wedged even though it never solved.
  const sim::RunResult r =
      sim::Engine::Run(TwoForeverConfig(50), [](sim::NodeContext& ctx) {
        return TransmitTwiceThenStop(ctx);
      });
  EXPECT_FALSE(r.solved);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(r.stall_rounds, 0);
  EXPECT_FALSE(r.wedged);
}

TEST(FaultEngine, CertainJamNeverSolvesButRunsGracefully) {
  sim::EngineConfig config;
  config.population = 256;
  config.num_active = 2;
  config.channels = 8;
  config.max_rounds = 200;
  config.faults.jam_rate = 1.0;
  sim::RunResult r;
  ASSERT_NO_THROW(r = sim::Engine::Run(config, core::MakeTwoActive()));
  EXPECT_FALSE(r.solved);
  EXPECT_TRUE(r.timed_out || r.assumption_violated);
  EXPECT_GT(r.jams_injected, 0);
}

TEST(FaultEngine, ErasureAbortIsGracefulUnderActiveFaults) {
  // erasure_rate = 1 guarantees no lone message is ever delivered, so the
  // run cannot solve; a strong-CD protocol observing the impossible
  // silence-while-transmitting surfaces ProtocolAssumptionViolation, which
  // active fault injection converts into a graceful abort.
  sim::EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 500;
  config.faults.erasure_rate = 1.0;
  sim::RunResult r;
  ASSERT_NO_THROW(r = sim::Engine::Run(config, core::MakeGeneral()));
  EXPECT_FALSE(r.solved);
  EXPECT_TRUE(r.assumption_violated || r.timed_out);
  EXPECT_GT(r.erasures_injected, 0);
}

TEST(FaultEngine, FaultyRunsAreDeterministic) {
  sim::EngineConfig config;
  config.population = 1024;
  config.num_active = 64;
  config.channels = 64;
  config.max_rounds = 2000;
  config.seed = 99;
  config.faults.jam_rate = 0.2;
  config.faults.crash_rate = 0.01;
  config.faults.flaky_cd_rate = 0.02;
  const sim::RunResult a = sim::Engine::Run(config, core::MakeGeneral());
  const sim::RunResult b = sim::Engine::Run(config, core::MakeGeneral());
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.solved_round, b.solved_round);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.jams_injected, b.jams_injected);
  EXPECT_EQ(a.cd_flips_injected, b.cd_flips_injected);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.stall_rounds, b.stall_rounds);
}

TEST(FaultEngine, ZeroRatesAreBitIdenticalToNoFaultLayer) {
  sim::EngineConfig pristine;
  pristine.population = 1024;
  pristine.num_active = 64;
  pristine.channels = 64;
  pristine.seed = 4242;
  sim::EngineConfig zeroed = pristine;
  zeroed.faults.fault_seed = 0xdeadbeef;  // still inactive: all rates zero
  const sim::RunResult a = sim::Engine::Run(pristine, core::MakeGeneral());
  const sim::RunResult b = sim::Engine::Run(zeroed, core::MakeGeneral());
  EXPECT_EQ(a.solved_round, b.solved_round);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  EXPECT_EQ(b.faults_injected, 0);
  EXPECT_EQ(b.crashed_nodes, 0);
  EXPECT_FALSE(b.assumption_violated);
}

TEST(FaultEngine, RejectsBadFaultRates) {
  sim::EngineConfig config = TwoForeverConfig(10);
  config.faults.jam_rate = 1.01;
  EXPECT_THROW(sim::Engine::Run(config,
                                [](sim::NodeContext& ctx) {
                                  return TransmitPrimaryForever(ctx);
                                }),
               std::invalid_argument);
}

}  // namespace
}  // namespace crmc
