// The strongest LeafElection correctness test: the MAC simulation — with
// all of its channel choreography, row broadcasts, and cohort bookkeeping —
// must agree exactly with the pure reference model of the Section 5.3
// cohort dynamics, on every subset of a small tree and on random subsets of
// large trees.
#include <gtest/gtest.h>

#include <vector>

#include "core/leaf_election.h"
#include "core/leaf_election_model.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace crmc::core {
namespace {

struct Observed {
  std::int32_t winner_leaf = 0;
  std::int64_t phases = 0;
};

Observed Simulate(const std::vector<std::int32_t>& leaves,
                  std::int32_t num_leaves) {
  sim::EngineConfig config;
  config.num_active = static_cast<std::int32_t>(leaves.size());
  config.population = std::max<std::int64_t>(
      static_cast<std::int64_t>(leaves.size()), num_leaves);
  config.channels = 2 * num_leaves - 1;
  config.seed = 1;
  config.stop_when_solved = false;
  config.max_rounds = 200000;
  const sim::RunResult r =
      sim::Engine::Run(config, MakeLeafElectionOnly(leaves, num_leaves, {}));
  Observed out;
  for (const auto& report : r.node_reports) {
    for (const auto& [key, value] : report.metrics) {
      if (key == "le_winner_leaf") {
        out.winner_leaf = static_cast<std::int32_t>(value);
      }
      if (key == "le_phases") out.phases = value;
    }
  }
  return out;
}

TEST(LeafElectionModel, MatchesSimulationExhaustivelyOn16Leaves) {
  constexpr std::int32_t kLeaves = 16;
  for (unsigned mask = 1; mask < (1u << kLeaves); mask += 7) {
    // Step 7 covers 9362 of the 65535 subsets, including all densities.
    std::vector<std::int32_t> leaves;
    for (std::int32_t leaf = 1; leaf <= kLeaves; ++leaf) {
      if (mask & (1u << (leaf - 1))) leaves.push_back(leaf);
    }
    const LeafElectionPrediction predicted =
        PredictLeafElection(leaves, kLeaves);
    const Observed observed = Simulate(leaves, kLeaves);
    ASSERT_EQ(observed.winner_leaf, predicted.winner_leaf)
        << "mask=" << mask;
    ASSERT_EQ(observed.phases, predicted.phases) << "mask=" << mask;
  }
}

TEST(LeafElectionModel, MatchesSimulationExhaustivelyOnAllSubsetsOf8) {
  constexpr std::int32_t kLeaves = 8;
  for (unsigned mask = 1; mask < (1u << kLeaves); ++mask) {
    std::vector<std::int32_t> leaves;
    for (std::int32_t leaf = 1; leaf <= kLeaves; ++leaf) {
      if (mask & (1u << (leaf - 1))) leaves.push_back(leaf);
    }
    const LeafElectionPrediction predicted =
        PredictLeafElection(leaves, kLeaves);
    const Observed observed = Simulate(leaves, kLeaves);
    ASSERT_EQ(observed.winner_leaf, predicted.winner_leaf)
        << "mask=" << mask;
    ASSERT_EQ(observed.phases, predicted.phases) << "mask=" << mask;
  }
}

TEST(LeafElectionModel, MatchesSimulationOnRandomLargeTrees) {
  support::RandomSource rng(0xfeed);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int32_t num_leaves = 1 << rng.UniformInt(3, 10);  // 8..1024
    const auto count =
        static_cast<std::int64_t>(rng.UniformInt(1, std::min(num_leaves, 300)));
    const auto sample =
        support::SampleWithoutReplacement(num_leaves, count, rng);
    const std::vector<std::int32_t> leaves(sample.begin(), sample.end());
    const LeafElectionPrediction predicted =
        PredictLeafElection(leaves, num_leaves);
    const Observed observed = Simulate(leaves, num_leaves);
    ASSERT_EQ(observed.winner_leaf, predicted.winner_leaf)
        << "trial=" << trial << " L=" << num_leaves << " x=" << count;
    ASSERT_EQ(observed.phases, predicted.phases) << "trial=" << trial;
  }
}

TEST(LeafElectionModel, SingleLeafWinsInOnePhase) {
  const LeafElectionPrediction p = PredictLeafElection({13}, 32);
  EXPECT_EQ(p.winner_leaf, 13);
  EXPECT_EQ(p.phases, 1);
}

TEST(LeafElectionModel, SiblingPairLeftLeafWins) {
  // Leaves 5 and 6 share a parent in an 8-leaf tree (heap 12, 13 -> parent
  // 6): the left child's occupant wins.
  const LeafElectionPrediction p = PredictLeafElection({5, 6}, 8);
  EXPECT_EQ(p.winner_leaf, 5);
  EXPECT_EQ(p.phases, 2);
}

TEST(LeafElectionModel, RejectsDuplicates) {
  EXPECT_THROW(PredictLeafElection({3, 3}, 8), std::invalid_argument);
  EXPECT_THROW(PredictLeafElection({}, 8), std::invalid_argument);
}

}  // namespace
}  // namespace crmc::core
