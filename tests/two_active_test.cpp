// Tests for the TwoActive algorithm (Section 4).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/baselines.h"
#include "core/two_active.h"
#include "harness/runner.h"
#include "sim/engine.h"

namespace crmc::core {
namespace {

sim::RunResult RunOnce(std::int64_t population, std::int32_t channels,
                       std::uint64_t seed, bool stop_when_solved = true) {
  sim::EngineConfig config;
  config.population = population;
  config.num_active = 2;
  config.channels = channels;
  config.seed = seed;
  config.stop_when_solved = stop_when_solved;
  config.max_rounds = 1'000'000;
  return sim::Engine::Run(config, MakeTwoActive());
}

// Exhaustive-ish correctness sweep: (n, C) grid x many seeds.
using SweepParams = std::tuple<std::int64_t, std::int32_t>;
class TwoActiveSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(TwoActiveSweep, SolvesAndTerminates) {
  const auto [population, channels] = GetParam();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const sim::RunResult r = RunOnce(population, channels, seed,
                                     /*stop_when_solved=*/false);
    ASSERT_TRUE(r.solved) << "n=" << population << " C=" << channels
                          << " seed=" << seed;
    ASSERT_TRUE(r.all_terminated);
    ASSERT_FALSE(r.timed_out);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwoActiveSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(2, 3, 8, 100, 1024,
                                                       100000),
                       ::testing::Values<std::int32_t>(1, 2, 3, 4, 7, 16, 64,
                                                       1024)));

TEST(TwoActive, SolvesWithMoreChannelsThanNodes) {
  // The C > n case: the algorithm must cap itself to ~n channels.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const sim::RunResult r = RunOnce(/*population=*/4, /*channels=*/4096,
                                     seed, false);
    ASSERT_TRUE(r.solved);
    ASSERT_TRUE(r.all_terminated);
  }
}

TEST(TwoActive, RoundsTrackTheBoundShape) {
  // Mean rounds should be within a small constant of
  // log n / log C + log log n (Theorem 1). Generous constants: the test
  // checks the shape, not the paper's hidden constant.
  harness::TrialSpec spec;
  spec.num_active = 2;
  for (const std::int64_t n : {std::int64_t{1} << 10, std::int64_t{1} << 16,
                               std::int64_t{1} << 20}) {
    for (const std::int32_t c : {4, 64, 1024}) {
      spec.population = n;
      spec.channels = c;
      spec.base_seed = 0xabc;
      const double mean =
          harness::MeanSolvedRounds(spec, MakeTwoActive(), 60);
      const double bound = baselines::TwoActiveBoundRounds(
          static_cast<double>(n), static_cast<double>(c));
      EXPECT_LE(mean, 4.0 * bound + 8.0) << "n=" << n << " C=" << c;
      EXPECT_GE(mean, 1.0);
    }
  }
}

TEST(TwoActive, MoreChannelsShrinkTheTail) {
  // The theorem is a w.h.p. bound: means are uninformative (a node that
  // happens to pick channel 1 alone during renaming "solves" the problem
  // early, which is *more* likely with few channels). Compare the 99.9th
  // percentile of the protocol's own completion time instead: with C = 2
  // the renaming tail is ~log2(1/eps) rounds, with C = 1024 it collapses.
  auto completion_tail = [](std::int32_t channels) {
    harness::TrialSpec spec;
    spec.num_active = 2;
    spec.population = std::int64_t{1} << 20;
    spec.channels = channels;
    spec.stop_when_solved = false;  // measure algorithm completion
    const harness::TrialSetResult r =
        harness::RunTrials(spec, MakeTwoActive(), 5000, true);
    std::vector<std::int64_t> completions;
    completions.reserve(r.runs.size());
    for (const auto& run : r.runs) completions.push_back(run.rounds_executed);
    return harness::Quantile(completions, 0.999);
  };
  const double tail_c2 = completion_tail(2);
  const double tail_c1024 = completion_tail(1024);
  EXPECT_LT(tail_c1024, tail_c2);
}

TEST(TwoActive, SingleChannelFallbackSolves) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const sim::RunResult r = RunOnce(1024, 1, seed, false);
    ASSERT_TRUE(r.solved);
    ASSERT_TRUE(r.all_terminated);
  }
}

TEST(TwoActive, PhaseMarksOrdered) {
  const sim::RunResult r = RunOnce(1 << 16, 64, 7, false);
  const std::int64_t rename = r.LastPhaseMark("rename_done");
  const std::int64_t search = r.LastPhaseMark("search_done");
  const std::int64_t solved = r.LastPhaseMark("solved");
  ASSERT_GE(rename, 1);
  EXPECT_GT(search, rename);
  EXPECT_EQ(solved, search + 1);
  EXPECT_EQ(r.solved_round, solved - 1);  // winner transmitted that round
}

TEST(TwoActive, ExactlyOneWinnerClaimsVictory) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const sim::RunResult r = RunOnce(1 << 14, 64, seed, false);
    int winners = 0;
    for (const auto& report : r.node_reports) {
      if (report.phase_marks.count("solved")) ++winners;
    }
    EXPECT_EQ(winners, 1) << "seed=" << seed;
  }
}

TEST(TwoActive, Stress_LargePopulationManySeeds) {
  // n = 2^30: the ID space and tree math must hold far beyond the sizes
  // other tests use.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const sim::RunResult r =
        RunOnce(std::int64_t{1} << 30, 4096, seed, false);
    ASSERT_TRUE(r.solved) << "seed=" << seed;
    ASSERT_TRUE(r.all_terminated);
  }
}

TEST(TwoActive, DeterministicGivenSeed) {
  const sim::RunResult a = RunOnce(1 << 14, 32, 99);
  const sim::RunResult b = RunOnce(1 << 14, 32, 99);
  EXPECT_EQ(a.solved_round, b.solved_round);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
}

TEST(TwoActive, SearchPhaseIsLogLog) {
  // Step 2 alone takes at most lg lg C' + 2 rounds (a binary search over
  // lg C' + 1 levels) plus the winning broadcast.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::RunResult r = RunOnce(1 << 20, 1024, seed, false);
    const std::int64_t rename = r.LastPhaseMark("rename_done");
    const std::int64_t search = r.LastPhaseMark("search_done");
    const double levels = std::log2(std::log2(1024.0) + 1);
    EXPECT_LE(search - rename, static_cast<std::int64_t>(levels) + 3)
        << "seed=" << seed;
  }
}

TEST(TwoActive, ChannelCapParameterLimitsChannels) {
  // With channel_cap = 2 on a 1024-channel network the renaming step has 2
  // channels; the completion-time tail must be worse than uncapped.
  TwoActiveParams capped;
  capped.channel_cap = 2;
  harness::TrialSpec spec;
  spec.num_active = 2;
  spec.population = 1 << 16;
  spec.channels = 1024;
  spec.stop_when_solved = false;
  auto completion_tail = [&](const sim::ProtocolFactory& factory) {
    const harness::TrialSetResult r =
        harness::RunTrials(spec, factory, 4000, true);
    std::vector<std::int64_t> completions;
    for (const auto& run : r.runs) completions.push_back(run.rounds_executed);
    return harness::Quantile(completions, 0.999);
  };
  const double slow = completion_tail(MakeTwoActive(capped));
  const double fast = completion_tail(MakeTwoActive());
  EXPECT_LT(fast, slow);
}

}  // namespace
}  // namespace crmc::core
