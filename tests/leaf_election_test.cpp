// Tests for LeafElection (Section 5.3): exhaustive correctness over small
// trees, determinism, round bounds, and the coalescing-cohorts ablation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/leaf_election.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace crmc::core {
namespace {

struct ElectionRun {
  sim::RunResult result;
  std::vector<std::int64_t> winner_leaves;  // leaves that claimed leadership
  std::int64_t phases = 0;
};

ElectionRun RunElection(const std::vector<std::int32_t>& leaves,
                        std::int32_t num_leaves, std::uint64_t seed = 1,
                        LeafElectionParams params = {}) {
  sim::EngineConfig config;
  config.num_active = static_cast<std::int32_t>(leaves.size());
  config.population = std::max<std::int64_t>(
      static_cast<std::int64_t>(leaves.size()), num_leaves);
  config.channels = 2 * num_leaves - 1;
  config.seed = seed;
  config.stop_when_solved = false;
  config.max_rounds = 100000;
  ElectionRun run;
  run.result = sim::Engine::Run(
      config, MakeLeafElectionOnly(leaves, num_leaves, params));
  for (const auto& report : run.result.node_reports) {
    for (const auto& [key, value] : report.metrics) {
      if (key == "le_winner_leaf") run.winner_leaves.push_back(value);
      if (key == "le_phases") run.phases = value;
    }
  }
  return run;
}

// Exhaustive: every nonempty subset of the 8 leaves of a 15-channel tree
// elects exactly one leader, and the run both solves and terminates.
TEST(LeafElection, ExhaustiveOverAllSubsetsOfEightLeaves) {
  constexpr std::int32_t kLeaves = 8;
  for (unsigned mask = 1; mask < (1u << kLeaves); ++mask) {
    std::vector<std::int32_t> leaves;
    for (std::int32_t leaf = 1; leaf <= kLeaves; ++leaf) {
      if (mask & (1u << (leaf - 1))) leaves.push_back(leaf);
    }
    const ElectionRun run = RunElection(leaves, kLeaves);
    ASSERT_TRUE(run.result.solved) << "mask=" << mask;
    ASSERT_TRUE(run.result.all_terminated) << "mask=" << mask;
    ASSERT_EQ(run.winner_leaves.size(), 1u) << "mask=" << mask;
    // The winner must be one of the occupied leaves.
    ASSERT_TRUE(std::find(leaves.begin(), leaves.end(),
                          static_cast<std::int32_t>(run.winner_leaves[0])) !=
                leaves.end())
        << "mask=" << mask;
  }
}

// LeafElection is deterministic: the winner depends only on the leaf set.
TEST(LeafElection, WinnerIndependentOfSeed) {
  const std::vector<std::int32_t> leaves{2, 5, 11, 14, 23, 32};
  const ElectionRun a = RunElection(leaves, 32, /*seed=*/1);
  const ElectionRun b = RunElection(leaves, 32, /*seed=*/999);
  ASSERT_EQ(a.winner_leaves.size(), 1u);
  ASSERT_EQ(b.winner_leaves.size(), 1u);
  EXPECT_EQ(a.winner_leaves[0], b.winner_leaves[0]);
  EXPECT_EQ(a.result.rounds_executed, b.result.rounds_executed);
}

TEST(LeafElection, SingleNodeWinsImmediately) {
  const ElectionRun run = RunElection({5}, 8);
  EXPECT_TRUE(run.result.solved);
  EXPECT_EQ(run.result.solved_round, 0);  // lone master on the root channel
  ASSERT_EQ(run.winner_leaves.size(), 1u);
  EXPECT_EQ(run.winner_leaves[0], 5);
  EXPECT_EQ(run.phases, 1);
}

TEST(LeafElection, FullOccupancySolves) {
  std::vector<std::int32_t> leaves(64);
  for (std::int32_t i = 0; i < 64; ++i) leaves[static_cast<std::size_t>(i)] = i + 1;
  const ElectionRun run = RunElection(leaves, 64);
  EXPECT_TRUE(run.result.solved);
  ASSERT_EQ(run.winner_leaves.size(), 1u);
  // With all leaves occupied the cohorts pair perfectly: lg 64 + 1 phases.
  EXPECT_EQ(run.phases, 7);
}

TEST(LeafElection, RandomSubsetsOnLargerTrees) {
  support::RandomSource rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int32_t num_leaves = 1 << rng.UniformInt(1, 7);  // 2..128
    const auto count =
        static_cast<std::int64_t>(rng.UniformInt(1, num_leaves));
    const auto sample =
        support::SampleWithoutReplacement(num_leaves, count, rng);
    std::vector<std::int32_t> leaves(sample.begin(), sample.end());
    const ElectionRun run =
        RunElection(leaves, num_leaves, static_cast<std::uint64_t>(trial));
    ASSERT_TRUE(run.result.solved)
        << "trial=" << trial << " L=" << num_leaves << " x=" << count;
    ASSERT_EQ(run.winner_leaves.size(), 1u);
  }
}

TEST(LeafElection, PhaseCountIsLogOfOccupancy) {
  // Corollary 15: at most lg x + 1 phases for x starting nodes.
  support::RandomSource rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    const std::int32_t num_leaves = 256;
    const auto count = static_cast<std::int64_t>(rng.UniformInt(2, 200));
    const auto sample =
        support::SampleWithoutReplacement(num_leaves, count, rng);
    std::vector<std::int32_t> leaves(sample.begin(), sample.end());
    const ElectionRun run =
        RunElection(leaves, num_leaves, static_cast<std::uint64_t>(trial));
    const auto bound = static_cast<std::int64_t>(
        std::floor(std::log2(static_cast<double>(count)))) + 2;
    EXPECT_LE(run.phases, bound) << "x=" << count;
  }
}

TEST(LeafElection, RoundBoundLogHLogLogX) {
  // Theorem 17 shape: total rounds <= c * (log h * log log x + log x) for a
  // modest constant. (The additive log x covers the per-phase constant
  // rounds: root check + pairing.)
  support::RandomSource rng(4242);
  for (const std::int32_t num_leaves : {64, 512, 2048}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto count = static_cast<std::int64_t>(
          rng.UniformInt(2, std::min<std::int64_t>(num_leaves, 256)));
      const auto sample =
          support::SampleWithoutReplacement(num_leaves, count, rng);
      std::vector<std::int32_t> leaves(sample.begin(), sample.end());
      const ElectionRun run =
          RunElection(leaves, num_leaves, static_cast<std::uint64_t>(trial));
      const double h = std::log2(static_cast<double>(num_leaves));
      const double lgx = std::log2(static_cast<double>(count));
      const double bound =
          10.0 * (std::log2(h + 1) * std::log2(lgx + 2) + lgx) + 20.0;
      EXPECT_LE(static_cast<double>(run.result.rounds_executed), bound)
          << "L=" << num_leaves << " x=" << count;
    }
  }
}

TEST(LeafElection, AblationBinarySearchIsSlowerForManyNodes) {
  // Force-binary SplitSearch must still be correct, but with many cohorts
  // the (p+1)-ary search wins on rounds.
  LeafElectionParams binary;
  binary.force_binary_search = true;
  std::vector<std::int32_t> leaves;
  for (std::int32_t leaf = 1; leaf <= 256; ++leaf) leaves.push_back(leaf);
  const std::int32_t num_leaves = 4096;
  // Spread the 256 nodes over the 4096 leaves deterministically.
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    leaves[i] = static_cast<std::int32_t>(1 + 16 * i);
  }
  const ElectionRun fast = RunElection(leaves, num_leaves, 1);
  const ElectionRun slow = RunElection(leaves, num_leaves, 1, binary);
  ASSERT_TRUE(fast.result.solved);
  ASSERT_TRUE(slow.result.solved);
  EXPECT_EQ(fast.winner_leaves, slow.winner_leaves);
  EXPECT_LT(fast.result.rounds_executed, slow.result.rounds_executed);
}

TEST(LeafElection, PhaseStatsRecordDoublingCohorts) {
  LeafElectionParams params;
  params.record_phase_stats = true;
  std::vector<std::int32_t> leaves;
  for (std::int32_t leaf = 1; leaf <= 32; ++leaf) leaves.push_back(leaf);
  sim::EngineConfig config;
  config.num_active = 32;
  config.population = 32;
  config.channels = 63;
  config.seed = 1;
  config.stop_when_solved = false;
  const sim::RunResult r = sim::Engine::Run(
      config, MakeLeafElectionOnly(leaves, 32, params));
  // Find the winner's report: it participated in every phase.
  for (const auto& report : r.node_reports) {
    if (!report.phase_marks.count("le_leader")) continue;
    std::vector<std::int64_t> sizes;
    for (const auto& [key, value] : report.metrics) {
      if (key == "le_csize") sizes.push_back(value);
    }
    ASSERT_EQ(sizes.size(), 5u);  // phases with a search: 32 -> 1 cohort
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_EQ(sizes[i], std::int64_t{1} << i);  // 1, 2, 4, 8, 16
    }
  }
}

TEST(LeafElection, RejectsBadArguments) {
  sim::EngineConfig config;
  config.num_active = 1;
  config.channels = 3;
  config.seed = 1;
  // Leaf out of range.
  EXPECT_THROW(sim::Engine::Run(
                   config, MakeLeafElectionOnly({5}, /*num_leaves=*/2)),
               std::invalid_argument);
  // Tree too large for the channel budget (needs 2*8-1 = 15 > 3).
  EXPECT_THROW(sim::Engine::Run(
                   config, MakeLeafElectionOnly({1}, /*num_leaves=*/8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace crmc::core
