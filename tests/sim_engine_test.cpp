// Tests for the coroutine protocol machinery and the lockstep engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "mac/channel.h"
#include "sim/engine.h"
#include "sim/node_context.h"
#include "sim/task.h"

namespace crmc::sim {
namespace {

using mac::Feedback;
using mac::kPrimaryChannel;

Task<void> TransmitRandomly(NodeContext& ctx);
Task<void> StopAfterTransmitting(NodeContext& ctx);

EngineConfig Config(std::int32_t num_active, std::int32_t channels,
                    std::uint64_t seed = 1) {
  EngineConfig c;
  c.num_active = num_active;
  c.channels = channels;
  c.seed = seed;
  return c;
}

// --- basic engine behaviour ------------------------------------------------

Task<void> TransmitOnceOnPrimary(NodeContext& ctx) {
  co_await ctx.Transmit(kPrimaryChannel);
}

TEST(Engine, LoneTransmitterSolvesInRoundZero) {
  const RunResult r = Engine::Run(Config(1, 1), [](NodeContext& ctx) {
    return TransmitOnceOnPrimary(ctx);
  });
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.solved_round, 0);
  EXPECT_EQ(r.rounds_executed, 1);
  EXPECT_EQ(r.total_transmissions, 1);
}

TEST(Engine, TwoTransmittersDoNotSolve) {
  const RunResult r = Engine::Run(Config(2, 1), [](NodeContext& ctx) {
    return TransmitOnceOnPrimary(ctx);
  });
  EXPECT_FALSE(r.solved);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(r.rounds_executed, 1);
}

Task<void> TransmitForever(NodeContext& ctx) {
  for (;;) co_await ctx.Transmit(2);
}

TEST(Engine, MaxRoundsStopsNonTerminatingProtocols) {
  EngineConfig c = Config(2, 2);
  c.max_rounds = 50;
  const RunResult r = Engine::Run(c, [](NodeContext& ctx) {
    return TransmitForever(ctx);
  });
  EXPECT_FALSE(r.solved);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.rounds_executed, 50);
  EXPECT_FALSE(r.all_terminated);
}

// Feedback is delivered correctly across rounds.
Task<void> ObserveThenReport(NodeContext& ctx) {
  // Round 0: node 0 transmits alone on channel 2, node 1 listens there.
  Feedback fb;
  if (ctx.index() == 0) {
    fb = co_await ctx.Transmit(2, mac::Message{42});
  } else {
    fb = co_await ctx.Listen(2);
  }
  if (!fb.MessageHeard() || fb.message.payload != 42) {
    throw std::runtime_error("wrong feedback in round 0");
  }
  // Round 1: both transmit on channel 2 -> collision for both.
  fb = co_await ctx.Transmit(2);
  if (!fb.Collision()) throw std::runtime_error("expected collision");
  // Round 2: both idle; node 0 listens on silent channel 1.
  if (ctx.index() == 0) {
    fb = co_await ctx.Listen(kPrimaryChannel);
    if (!fb.Silence()) throw std::runtime_error("expected silence");
  } else {
    co_await ctx.Sleep();
  }
}

TEST(Engine, DeliversObservationsAcrossRounds) {
  const RunResult r = Engine::Run(Config(2, 2), [](NodeContext& ctx) {
    return ObserveThenReport(ctx);
  });
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(r.rounds_executed, 3);
}

// --- nested tasks (steps) ---------------------------------------------------

Task<int> CountCollisions(NodeContext& ctx, int rounds) {
  int collisions = 0;
  for (int i = 0; i < rounds; ++i) {
    const Feedback fb = co_await ctx.Transmit(2);
    if (fb.Collision()) ++collisions;
  }
  co_return collisions;
}

Task<void> NestedProtocol(NodeContext& ctx) {
  const int first = co_await CountCollisions(ctx, 3);
  const int second = co_await CountCollisions(ctx, 2);
  ctx.RecordMetric("collisions", first + second);
}

TEST(Engine, NestedStepsComposeAndReturnValues) {
  const RunResult r = Engine::Run(Config(2, 2), [](NodeContext& ctx) {
    return NestedProtocol(ctx);
  });
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(r.rounds_executed, 5);
  const auto values = r.MetricValues("collisions");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 5);  // both nodes collide in every round
  EXPECT_EQ(values[1], 5);
}

Task<int> ThrowingStep(NodeContext& ctx) {
  co_await ctx.Listen(kPrimaryChannel);
  throw std::runtime_error("step failed");
}

Task<void> ProtocolCatchingStepException(NodeContext& ctx) {
  try {
    (void)co_await ThrowingStep(ctx);
  } catch (const std::runtime_error&) {
    ctx.MarkPhase("caught");
  }
}

TEST(Engine, StepExceptionsPropagateToAwaiter) {
  const RunResult r = Engine::Run(Config(1, 1), [](NodeContext& ctx) {
    return ProtocolCatchingStepException(ctx);
  });
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(r.LastPhaseMark("caught"), 1);
}

Task<void> ThrowingProtocol(NodeContext& ctx) {
  co_await ctx.Listen(kPrimaryChannel);
  throw std::logic_error("protocol bug");
}

TEST(Engine, ProtocolExceptionsEscapeRun) {
  EXPECT_THROW(Engine::Run(Config(1, 1),
                           [](NodeContext& ctx) {
                             return ThrowingProtocol(ctx);
                           }),
               std::logic_error);
}

// --- context plumbing --------------------------------------------------------

Task<void> RecordIdentity(NodeContext& ctx) {
  ctx.RecordMetric("index", ctx.index());
  ctx.RecordMetric("unique_id", ctx.unique_id());
  ctx.RecordMetric("population", ctx.population());
  ctx.RecordMetric("channels", ctx.channels());
  co_await ctx.Sleep();
}

TEST(Engine, ContextExposesModelParameters) {
  EngineConfig c = Config(3, 7);
  c.population = 100;
  const RunResult r = Engine::Run(c, [](NodeContext& ctx) {
    return RecordIdentity(ctx);
  });
  const auto populations = r.MetricValues("population");
  const auto channels = r.MetricValues("channels");
  ASSERT_EQ(populations.size(), 3u);
  for (const auto v : populations) EXPECT_EQ(v, 100);
  for (const auto v : channels) EXPECT_EQ(v, 7);

  const auto ids = r.MetricValues("unique_id");
  ASSERT_EQ(ids.size(), 3u);
  std::set<std::int64_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (const auto v : ids) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(Engine, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    EngineConfig c = Config(5, 4, seed);
    c.stop_when_solved = true;
    c.max_rounds = 100000;
    return Engine::Run(c, [](NodeContext& ctx) -> Task<void> {
      return TransmitRandomly(ctx);
    });
  };
  const RunResult a = run(7);
  const RunResult b = run(7);
  const RunResult c = run(8);
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.solved_round, b.solved_round);
  EXPECT_EQ(a.total_transmissions, b.total_transmissions);
  // Different seed should (almost surely) differ somewhere.
  EXPECT_TRUE(a.solved_round != c.solved_round ||
              a.total_transmissions != c.total_transmissions);
}

Task<void> TransmitRandomly(NodeContext& ctx) {
  for (;;) {
    const auto ch =
        static_cast<mac::ChannelId>(ctx.rng().UniformInt(1, ctx.channels()));
    if (ctx.rng().Bernoulli(0.5)) {
      co_await ctx.Transmit(ch);
    } else {
      co_await ctx.Listen(ch);
    }
  }
}

// --- phase marks and active counts -------------------------------------------

Task<void> MarkedProtocol(NodeContext& ctx) {
  co_await ctx.Listen(kPrimaryChannel);
  co_await ctx.Listen(kPrimaryChannel);
  ctx.MarkPhase("after_two");
  co_await ctx.Listen(kPrimaryChannel);
  ctx.MarkPhase("after_three");
}

TEST(Engine, PhaseMarksRecordRounds) {
  const RunResult r = Engine::Run(Config(1, 1), [](NodeContext& ctx) {
    return MarkedProtocol(ctx);
  });
  EXPECT_EQ(r.LastPhaseMark("after_two"), 2);
  EXPECT_EQ(r.LastPhaseMark("after_three"), 3);
  EXPECT_EQ(r.LastPhaseMark("missing"), -1);
}

Task<void> StopAfter(NodeContext& ctx, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await ctx.Listen(kPrimaryChannel);
}

TEST(Engine, ActiveCountsTrackTerminations) {
  EngineConfig c = Config(3, 1);
  c.record_active_counts = true;
  const RunResult r = Engine::Run(c, [](NodeContext& ctx) {
    return StopAfter(ctx, ctx.index() + 1);
  });
  // Node i listens for i+1 rounds: counts at round starts are 3, 2, 1.
  ASSERT_EQ(r.active_counts.size(), 3u);
  EXPECT_EQ(r.active_counts[0], 3);
  EXPECT_EQ(r.active_counts[1], 2);
  EXPECT_EQ(r.active_counts[2], 1);
}

// --- auto-beacon mode (wakeup-transform support) ------------------------------

Task<void> BeaconedListener(NodeContext& ctx) {
  ctx.SetAutoBeacon(true);
  // Three protocol rounds; the engine interleaves a primary-channel beacon
  // before each one.
  for (int i = 0; i < 3; ++i) {
    const Feedback fb = co_await ctx.Listen(2);
    ctx.RecordMetric("obs", static_cast<std::int64_t>(fb.observation));
  }
  ctx.SetAutoBeacon(false);
  co_await ctx.Listen(2);  // no beacon precedes this one
}

TEST(Engine, AutoBeaconInterleavesPrimaryTransmissions) {
  EngineConfig c = Config(1, 2);
  c.stop_when_solved = false;
  c.record_trace = true;
  const RunResult r = Engine::Run(c, [](NodeContext& ctx) {
    return BeaconedListener(ctx);
  });
  EXPECT_TRUE(r.all_terminated);
  // beacon, listen, beacon, listen, beacon, listen, then the bare listen.
  EXPECT_EQ(r.rounds_executed, 7);
  ASSERT_EQ(r.trace.size(), 7u);
  for (std::size_t round = 0; round < 7; ++round) {
    const bool beacon_round = round % 2 == 0 && round < 6;
    bool primary_tx = false;
    for (const auto& ev : r.trace[round].events) {
      if (ev.channel == mac::kPrimaryChannel && ev.transmitters == 1) {
        primary_tx = true;
      }
    }
    EXPECT_EQ(primary_tx, beacon_round) << "round " << round;
  }
  // The lone node's beacons are lone primary transmissions: solved at 0.
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.solved_round, 0);
  // The protocol's own feedback stream is untouched by the beacons.
  for (const auto v : r.MetricValues("obs")) {
    EXPECT_EQ(v, static_cast<std::int64_t>(mac::Observation::kSilence));
  }
}

Task<void> BeaconedTalkers(NodeContext& ctx) {
  ctx.SetAutoBeacon(true);
  // Protocol rounds where both nodes transmit on channel 2 (collision).
  for (int i = 0; i < 2; ++i) {
    const Feedback fb = co_await ctx.Transmit(2);
    if (!fb.Collision()) throw std::runtime_error("expected collision");
  }
  ctx.SetAutoBeacon(false);
}

TEST(Engine, AutoBeaconKeepsNodesInLockstep) {
  EngineConfig c = Config(2, 2);
  c.stop_when_solved = false;
  const RunResult r = Engine::Run(c, [](NodeContext& ctx) {
    return BeaconedTalkers(ctx);
  });
  // Two beacons (colliding on the primary channel) + two protocol rounds.
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(r.rounds_executed, 4);
  EXPECT_FALSE(r.solved);  // beacons collide; protocol rounds are off-primary
  EXPECT_EQ(r.total_transmissions, 8);
}

TEST(Engine, RejectsBadConfig) {
  EXPECT_THROW(Engine::Run(Config(0, 1), nullptr), std::invalid_argument);
  EngineConfig bad_pop = Config(5, 1);
  bad_pop.population = 3;
  EXPECT_THROW(Engine::Run(bad_pop,
                           [](NodeContext& ctx) {
                             return TransmitOnceOnPrimary(ctx);
                           }),
               std::invalid_argument);
}

// Each constraint rejects with its own message, so a bad sweep config names
// the field at fault instead of a generic "invalid config".
TEST(Engine, RejectsBadConfigWithDistinctMessages) {
  const auto message_for = [](const EngineConfig& config) -> std::string {
    try {
      ValidateEngineConfig(config);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_for(Config(0, 1)).find("activated node"),
            std::string::npos);
  EXPECT_NE(message_for(Config(2, 0)).find("channel"), std::string::npos);
  EngineConfig bad_rounds = Config(2, 1);
  bad_rounds.max_rounds = 0;
  EXPECT_NE(message_for(bad_rounds).find("max_rounds"), std::string::npos);
  EngineConfig bad_pop = Config(5, 1);
  bad_pop.population = 3;
  EXPECT_NE(message_for(bad_pop).find("exceeds population"),
            std::string::npos);
  EXPECT_EQ(message_for(Config(2, 1)), "");  // a valid config passes
}

TEST(Engine, StopWhenSolvedFalseRunsToCompletion) {
  EngineConfig c = Config(1, 1);
  c.stop_when_solved = false;
  const RunResult r = Engine::Run(c, [](NodeContext& ctx) {
    return StopAfterTransmitting(ctx);
  });
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.solved_round, 0);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_EQ(r.rounds_executed, 3);
}

Task<void> StopAfterTransmitting(NodeContext& ctx) {
  co_await ctx.Transmit(kPrimaryChannel);  // solves in round 0
  co_await ctx.Listen(kPrimaryChannel);
  co_await ctx.Listen(kPrimaryChannel);
}

// --- RunResult accessors ----------------------------------------------------

// Node i idles i rounds, then marks "ready" (at round i) and records one
// metric; node 0 additionally records a second, private metric.
Task<void> MarkAndMeasure(NodeContext& ctx) {
  for (std::int64_t i = 0; i < ctx.index(); ++i) co_await ctx.Sleep();
  ctx.MarkPhase("ready");
  ctx.RecordMetric("twice_index", ctx.index() * 2);
  if (ctx.index() == 0) ctx.RecordMetric("only_zero", 7);
  co_await ctx.Sleep();
}

// The accessors answer from a linear scan on small runs and from a lazily
// built one-pass index on large ones; both paths must agree on the same
// semantics (max across nodes for marks, node order for metrics).
void CheckReportAccessors(std::int32_t num_active) {
  EngineConfig c = Config(num_active, 1);
  c.stop_when_solved = false;
  const RunResult r = Engine::Run(c, [](NodeContext& ctx) {
    return MarkAndMeasure(ctx);
  });
  ASSERT_EQ(r.node_reports.size(), static_cast<std::size_t>(num_active));

  EXPECT_EQ(r.LastPhaseMark("ready"), num_active - 1);
  EXPECT_EQ(r.LastPhaseMark("missing"), -1);

  const std::vector<std::int64_t> twice = r.MetricValues("twice_index");
  ASSERT_EQ(twice.size(), static_cast<std::size_t>(num_active));
  for (std::int32_t i = 0; i < num_active; ++i) {
    EXPECT_EQ(twice[static_cast<std::size_t>(i)], 2 * i);  // node order
  }
  EXPECT_EQ(r.MetricValues("only_zero"), (std::vector<std::int64_t>{7}));
  EXPECT_TRUE(r.MetricValues("missing").empty());

  // Repeated queries (served from the cached index when large) agree.
  EXPECT_EQ(r.LastPhaseMark("ready"), num_active - 1);
  EXPECT_EQ(r.MetricValues("twice_index"), twice);
}

TEST(RunResultAccessors, SmallRunUsesLinearScan) { CheckReportAccessors(4); }

TEST(RunResultAccessors, LargeRunUsesIndex) { CheckReportAccessors(40); }

}  // namespace
}  // namespace crmc::sim
