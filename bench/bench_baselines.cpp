// E8 (Table 4): cross-model comparison — the paper's Related Work table,
// measured.
//
// Four model corners: {single, multi} channel x {CD, no CD}, plus the
// clairvoyant ALOHA reference. Solved-round distributions on common
// instances. Means are dominated by lucky early wins; the ordering the
// theory predicts shows in the p99/max columns.
#include <iostream>

#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 150;
  std::cout << "# E8 / Table 4 — algorithms across model assumptions ("
            << kTrials << " trials)\n";

  for (const std::int32_t num_active : {2, 512, 8192}) {
    const std::int64_t n = std::int64_t{1} << 16;
    const std::int32_t c = 256;
    std::cout << "\n## |A| = " << num_active << ", n = 2^16, C = " << c
              << "\n\n";
    harness::Table table({"algorithm", "model", "mean", "p95", "p99", "max"});
    for (const harness::AlgorithmInfo& info : harness::Algorithms()) {
      if (info.requires_two_active && num_active != 2) continue;
      harness::TrialSpec spec;
      spec.population = n;
      spec.num_active = num_active;
      spec.channels = c;
      spec.max_rounds = 4'000'000;
      const harness::TrialSetResult r =
          harness::RunTrials(spec, info.make(), kTrials);
      const char* model =
          info.name == "two_active" || info.name == "general"
              ? "multi + CD (this paper)"
          : info.name == "knockout_cd" || info.name == "binary_descent_cd"
              ? "single + CD"
          : info.name == "willard_cd"  ? "single + CD (expected-time)"
          : info.name == "decay_no_cd" ? "single, no CD"
          : info.name == "daum_multichannel_no_cd" ? "multi, no CD"
          : info.name == "expected_o1_multichannel"
              ? "multi, no CD (expected-time)"
              : "oracle";
      table.Row().Cells(info.name, model, r.summary.mean, r.summary.p95,
                        r.summary.p99, r.summary.max);
    }
    table.Print(std::cout);
  }
  std::cout
      << "\ntail ordering predicted by theory (multi+CD <= single+CD < "
         "no-CD variants) holds asymptotically;\nat n = 2^16 the general "
         "algorithm's per-phase constants still mask part of its advantage "
         "over single+CD\n(log n/log C + loglog n loglog log n ~ 10 vs "
         "log n = 16 — see EXPERIMENTS.md for the crossover discussion).\n";
  return 0;
}
