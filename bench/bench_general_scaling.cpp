// E3 (Figure 2): round complexity of the general algorithm vs n, |A|, C.
//
// Theorem 4: O(log n / log C + loglog n * logloglog n) w.h.p. We report
// solved-round mean / p95 / p99 and the constant-free bound value. The
// active-set size |A| barely matters (Reduce flattens it in O(loglog n)
// rounds) — that insensitivity is itself part of the theorem's shape.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "baselines/baselines.h"
#include "core/general.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 120;
  std::cout << "# E3 / Figure 2 — general algorithm rounds vs n, |A|, C ("
            << kTrials << " trials)\n\n";

  harness::Table fig({"n", "|A|", "C", "mean", "p95", "p99", "max", "bound",
                      "p99/bound"});
  for (const std::int64_t n :
       {std::int64_t{1} << 10, std::int64_t{1} << 14, std::int64_t{1} << 18}) {
    const auto lg = static_cast<std::int32_t>(std::log2((double)n));
    const std::vector<std::int32_t> actives = {
        lg,                                                   // ~log n
        static_cast<std::int32_t>(std::sqrt((double)n)),      // sqrt n
        static_cast<std::int32_t>(std::min<std::int64_t>(n, 1 << 14))};
    for (const std::int32_t a : actives) {
      for (const std::int32_t c : {16, 256, 2048}) {
        harness::TrialSpec spec;
        spec.population = n;
        spec.num_active = a;
        spec.channels = c;
        const harness::TrialSetResult r =
            harness::RunTrials(spec, core::MakeGeneral(), kTrials);
        const double bound = baselines::GeneralBoundRounds(
            static_cast<double>(n), static_cast<double>(c));
        fig.Row().Cells(n, a, c, r.summary.mean, r.summary.p95,
                        r.summary.p99, r.summary.max, bound,
                        r.summary.p99 / bound);
      }
    }
  }
  fig.Print(std::cout);
  std::cout << "\nshape check: rows with the same C stay flat in |A| and "
               "grow (sub-)logarithmically in n;\nthe p99/bound column "
               "staying O(1) is the reproduction of Theorem 4.\n";
  return 0;
}
