// E18: energy complexity — transmissions per node.
//
// In radio networks the scarce resource is often transmission energy, not
// time. The engine counts per-node transmissions; this bench reports the
// mean and worst per-node budget each algorithm spends before the problem
// is solved, plus total on-air transmissions.
#include <iostream>
#include <vector>

#include "harness/registry.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "sim/engine.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 150;
  std::cout << "# E18 — energy (transmissions until solved, " << kTrials
            << " trials, n = 2^16, C = 128)\n";

  for (const std::int32_t num_active : {2, 1024}) {
    std::cout << "\n## |A| = " << num_active << "\n\n";
    harness::Table table({"algorithm", "max tx/node (mean)",
                          "max tx/node (p95)", "mean tx/node",
                          "total tx (mean)", "rounds (mean)"});
    for (const harness::AlgorithmInfo& info : harness::Algorithms()) {
      if (info.requires_two_active && num_active != 2) continue;
      std::vector<std::int64_t> max_tx;
      double mean_tx = 0;
      double total_tx = 0;
      double rounds = 0;
      for (int t = 0; t < kTrials; ++t) {
        sim::EngineConfig config;
        config.num_active = num_active;
        config.population = 1 << 16;
        config.channels = 128;
        config.seed = static_cast<std::uint64_t>(t) + 1;
        config.max_rounds = 2'000'000;
        const sim::RunResult r = sim::Engine::Run(config, info.make());
        max_tx.push_back(r.max_node_transmissions);
        mean_tx += r.mean_node_transmissions;
        total_tx += static_cast<double>(r.total_transmissions);
        rounds += static_cast<double>(r.solved_round + 1);
      }
      const harness::Summary s = harness::Summarize(max_tx);
      table.Row().Cells(info.name, s.mean, s.p95, mean_tx / kTrials,
                        total_tx / kTrials, rounds / kTrials);
    }
    table.Print(std::cout);
  }
  std::cout << "\nthe paper's algorithms keep the per-node budget within "
               "their round bounds (a node transmits at most once per "
               "round), while dense knockouts burn a transmission per "
               "round per surviving node.\n";
  return 0;
}
