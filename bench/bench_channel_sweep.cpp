// E4 (Figure 3): rounds vs channel count at fixed n, with the lower-bound
// curve overlaid.
//
// As C grows, the log n / log C term decays until the log log n floor
// dominates — the defining shape of the paper's result. Shown for the
// two-active case (tail quantile: the metric of Theorem 1) and the general
// case.
#include <iostream>
#include <vector>

#include "baselines/baselines.h"
#include "core/general.h"
#include "core/two_active.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr std::int64_t kPopulation = std::int64_t{1} << 20;

  std::cout << "# E4 / Figure 3 — rounds vs C at n = 2^20\n\n";
  std::cout << "## two-active case (completion rounds, 3000 trials)\n\n";
  harness::Table two({"C", "complete mean", "complete p99.9",
                      "lower bound"});
  for (const std::int32_t c : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                               2048, 4096}) {
    harness::TrialSpec spec;
    spec.population = kPopulation;
    spec.num_active = 2;
    spec.channels = c;
    spec.stop_when_solved = false;
    const harness::TrialSetResult r =
        harness::RunTrials(spec, core::MakeTwoActive(), 3000, true);
    std::vector<std::int64_t> completions;
    for (const auto& run : r.runs) completions.push_back(run.rounds_executed);
    two.Row().Cells(c, harness::Summarize(completions).mean,
                    harness::Quantile(completions, 0.999),
                    baselines::LowerBoundRounds(
                        static_cast<double>(kPopulation),
                        static_cast<double>(c)));
  }
  two.Print(std::cout);

  std::cout << "\n## general case, |A| = 4096 (solved rounds, 150 trials)\n\n";
  harness::Table gen({"C", "mean", "p95", "p99", "lower bound",
                      "thm 4 bound"});
  for (const std::int32_t c : {2, 8, 32, 128, 512, 2048}) {
    harness::TrialSpec spec;
    spec.population = kPopulation;
    spec.num_active = 4096;
    spec.channels = c;
    const harness::TrialSetResult r =
        harness::RunTrials(spec, core::MakeGeneral(), 150);
    gen.Row().Cells(c, r.summary.mean, r.summary.p95, r.summary.p99,
                    baselines::LowerBoundRounds(
                        static_cast<double>(kPopulation),
                        static_cast<double>(c)),
                    baselines::GeneralBoundRounds(
                        static_cast<double>(kPopulation),
                        static_cast<double>(c)));
  }
  gen.Print(std::cout);
  std::cout << "\nexpected shape: the completion tail falls like "
               "log n / log C and flattens at the loglog floor,\nmirroring "
               "the lower-bound column.\n";
  return 0;
}
