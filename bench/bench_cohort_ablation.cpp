// E12 (Figure 6, ablation): what coalescing cohorts buy.
//
// LeafElection with the (p+1)-ary SplitSearch vs the same algorithm forced
// to binary-search every phase. The paper's speedup turns
// O(log h * log x) into O(log h * log log x): as the occupancy x grows the
// gap widens. Deterministic given the leaf set, so a handful of random
// sets per point suffices.
#include <iostream>
#include <vector>

#include "core/leaf_election.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace {

double MeanRounds(const std::vector<std::vector<std::int32_t>>& leaf_sets,
                  std::int32_t num_leaves, bool force_binary) {
  using namespace crmc;
  double total = 0;
  for (std::size_t i = 0; i < leaf_sets.size(); ++i) {
    sim::EngineConfig config;
    config.num_active = static_cast<std::int32_t>(leaf_sets[i].size());
    config.population = num_leaves;
    config.channels = 2 * num_leaves - 1;
    config.seed = i + 1;
    config.stop_when_solved = false;
    core::LeafElectionParams params;
    params.force_binary_search = force_binary;
    const sim::RunResult r = sim::Engine::Run(
        config,
        core::MakeLeafElectionOnly(leaf_sets[i], num_leaves, params));
    total += static_cast<double>(r.rounds_executed);
  }
  return total / static_cast<double>(leaf_sets.size());
}

}  // namespace

int main() {
  using namespace crmc;

  constexpr std::int32_t kLeaves = 4096;  // h = 12
  constexpr int kSets = 12;

  std::cout << "# E12 / Figure 6 — coalescing cohorts vs per-phase binary "
               "search (L = " << kLeaves << ", mean over " << kSets
            << " random leaf sets)\n\n";

  harness::Table table({"occupancy x", "cohort (p+1)-ary rounds",
                        "binary-ablation rounds", "speedup"});
  support::RandomSource rng(0xab1a7e);
  for (const std::int32_t x : {8, 32, 128, 512, 2048}) {
    std::vector<std::vector<std::int32_t>> sets;
    for (int s = 0; s < kSets; ++s) {
      const auto sample = support::SampleWithoutReplacement(kLeaves, x, rng);
      sets.emplace_back(sample.begin(), sample.end());
    }
    const double cohort = MeanRounds(sets, kLeaves, false);
    const double binary = MeanRounds(sets, kLeaves, true);
    table.Row().Cells(x, cohort, binary, binary / cohort);
  }
  table.Print(std::cout);
  std::cout << "\nthe ablation grows like log x * log h while the real "
               "algorithm's search cost shrinks per phase — the wedge is "
               "the paper's Section 5.3 contribution.\n";
  return 0;
}
