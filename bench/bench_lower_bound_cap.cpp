// E21: the lower bound's one-round core, numerically.
//
// [Newport, DISC 2014] — the bound the paper matches — shows contention
// resolution with C channels and CD needs Omega(log n / log C + loglog n)
// rounds. The log n / log C term reduces (for two anonymous nodes) to a
// one-round fact: no strategy detectably breaks symmetry with probability
// above C/(C+1). We search the strategy space numerically and print the
// best found against the analytic cap, plus the w.h.p. round count it
// implies — next to what TwoActive actually achieves.
#include <cmath>
#include <iostream>

#include "baselines/symmetry.h"
#include "core/two_active.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  std::cout << "# E21 — the per-round symmetry-breaking cap (n = 2^20)\n\n";

  harness::Table table({"C", "best found P(break)", "analytic cap C/(C+1)",
                        "implied lower bound (rounds)",
                        "TwoActive completion p99.9"});
  for (const std::int32_t c : {2, 4, 16, 64, 256, 1024}) {
    const double found = baselines::SearchBestBreakProbability(
        c, /*restarts=*/8, /*steps=*/4000);
    const double cap = baselines::OptimalBreakProbability(c);
    const double implied =
        baselines::ImpliedRoundLowerBound(std::pow(2.0, 20.0), cap);

    harness::TrialSpec spec;
    spec.population = std::int64_t{1} << 20;
    spec.num_active = 2;
    spec.channels = c;
    spec.stop_when_solved = false;
    const harness::TrialSetResult r =
        harness::RunTrials(spec, core::MakeTwoActive(), 4000, true);
    std::vector<std::int64_t> completions;
    for (const auto& run : r.runs) completions.push_back(run.rounds_executed);

    table.Row().Cells(c, harness::FormatDouble(found, 5),
                      harness::FormatDouble(cap, 5), implied,
                      harness::Quantile(completions, 0.999));
  }
  table.Print(std::cout);
  std::cout << "\nno searched strategy beats C/(C+1), so w.h.p. symmetry "
               "breaking needs ~log n / log C rounds of renaming — and "
               "TwoActive's measured tail sits a loglog-sized search above "
               "that floor, matching Theorem 1 against the bound it is "
               "optimal for.\n";
  return 0;
}
