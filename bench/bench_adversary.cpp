// E23: resource-competitive degradation under budgeted adaptive jamming.
//
// Sweeps the adaptive-adversary subsystem (src/adversary/) across the
// paper's two algorithms and measures how much contention-resolution delay
// each jamming *strategy* buys per unit of budget: success rate, failure
// breakdown, round-count inflation relative to the adversary-free runs,
// and the fraction of the budget that actually suppressed a lone delivery
// (spent vs effective jams — the resource-competitive currency).
//
// The budget axis is a fraction of the maximum spendable budget
// (max_rounds * per_round_cap), so strategies are compared at equal
// resource levels; the oblivious E22-style jammer (rate = fraction) rides
// along as the non-adaptive baseline.
//
//   (default)        prints the degradation table.
//   --json <path>    also writes the machine-readable artifact (schema
//                    crmc.bench_adversary.v1) consumed by
//                    tools/check_bench_json.py. `--quick` shrinks trial
//                    counts for CI; `--trials-scale <f>` scales them.
//
// Outcomes are simulated rounds, not wall time, so the artifact is
// deterministic for a given mode and the validator's budget-axis
// monotonicity check is exact.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "harness/flags.h"
#include "harness/json_writer.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "support/assert.h"

namespace {

using namespace crmc;

struct BenchProtocol {
  const char* name;
  std::int64_t population;
  std::int32_t num_active;
  std::int32_t channels;
  std::int32_t trials;       // full-mode trial count; scaled by --quick
  std::int64_t max_rounds;   // tight enough that heavy jamming times out
  std::int32_t per_round_cap;  // K: channels the adversary may jam per round
};

// TwoActive is nearly un-delayable by a cap-1 jammer (it escapes to side
// channels), which is exactly the claim worth measuring; General's
// Reduce stage collapses under a single well-placed jam, the other
// extreme. max_rounds stays at the E22 values so the two artifacts are
// comparable point-for-point.
const BenchProtocol kProtocols[] = {
    {"two_active", 1 << 16, 2, 32, 600, 64, 1},
    {"general", 1 << 14, 128, 64, 300, 2000, 4},
};

// Budget axis: fraction of the maximum spendable budget
// (max_rounds * per_round_cap). 0 doubles as the pristine baseline for the
// inflation column; 1.0 lets the strategy jam at its cap every round. The
// axis is dense near 0 because that is where the gradient lives: both
// algorithms solve in a handful of rounds pristine, so a budget of a few
// jams is already a large fraction of the fight — by f=0.25 every budgeted
// strategy has all the budget it can spend before the run decides.
const double kBudgetFractions[] = {0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0};

const adversary::Kind kStrategies[] = {
    adversary::Kind::kPrimaryCamper,
    adversary::Kind::kGreedyReactive,
    adversary::Kind::kRandomBudgeted,
};

constexpr std::uint64_t kSeedBase = 0xad7e25abe4cULL;

struct PointResult {
  BenchProtocol protocol;
  adversary::AdversarySpec adversary;
  double budget_fraction = 0.0;
  std::int32_t trials = 0;
  harness::TrialSetResult result;
  double round_inflation = 0.0;  // vs the protocol's adversary-free mean
};

PointResult RunPoint(const BenchProtocol& p,
                     const adversary::AdversarySpec& spec, double fraction,
                     double scale) {
  PointResult out;
  out.protocol = p;
  out.adversary = spec;
  out.budget_fraction = fraction;
  out.trials = std::max(
      std::int32_t{20},
      static_cast<std::int32_t>(static_cast<double>(p.trials) * scale));
  harness::TrialSpec trial;
  trial.population = p.population;
  trial.num_active = p.num_active;
  trial.channels = p.channels;
  trial.max_rounds = p.max_rounds;
  trial.base_seed = kSeedBase;
  trial.adversary = spec;
  const harness::AlgorithmInfo& info = harness::AlgorithmByName(p.name);
  out.result = harness::RunTrials(trial, harness::HandleFor(info), out.trials);
  return out;
}

adversary::AdversarySpec SpecFor(adversary::Kind kind, const BenchProtocol& p,
                                 double fraction) {
  adversary::AdversarySpec spec;
  spec.kind = kind;
  if (kind == adversary::Kind::kObliviousRate) {
    spec.rate = fraction;
  } else {
    spec.per_round_cap = p.per_round_cap;
    spec.budget = std::llround(fraction *
                               static_cast<double>(p.max_rounds) *
                               static_cast<double>(p.per_round_cap));
  }
  return spec;
}

double SuccessRate(const PointResult& pt) {
  return static_cast<double>(pt.result.solved_rounds.size()) /
         static_cast<double>(pt.trials);
}

void WritePoint(harness::JsonWriter& w, const PointResult& pt) {
  const harness::TrialSetResult& r = pt.result;
  w.BeginObject();
  w.Key("protocol").Value(pt.protocol.name);
  w.Key("population").Value(pt.protocol.population);
  w.Key("num_active").Value(static_cast<std::int64_t>(pt.protocol.num_active));
  w.Key("channels").Value(static_cast<std::int64_t>(pt.protocol.channels));
  w.Key("max_rounds").Value(pt.protocol.max_rounds);
  w.Key("trials").Value(static_cast<std::int64_t>(pt.trials));
  w.Key("adversary").BeginObject();
  w.Key("strategy").Value(adversary::ToString(pt.adversary.kind));
  w.Key("obs").Value(adversary::ToString(pt.adversary.obs));
  w.Key("budget").Value(pt.adversary.budget);
  w.Key("budget_fraction").Value(pt.budget_fraction);
  w.Key("per_round_cap")
      .Value(static_cast<std::int64_t>(pt.adversary.per_round_cap));
  w.Key("rate").Value(pt.adversary.rate);
  w.EndObject();
  w.Key("solved").Value(static_cast<std::int64_t>(r.solved_rounds.size()));
  w.Key("unsolved").Value(static_cast<std::int64_t>(r.unsolved));
  w.Key("timed_out").Value(static_cast<std::int64_t>(r.timed_out));
  w.Key("aborted").Value(static_cast<std::int64_t>(r.aborted));
  w.Key("wedged").Value(static_cast<std::int64_t>(r.wedged));
  w.Key("silent_failures").Value(static_cast<std::int64_t>(r.deluded));
  w.Key("success_rate").Value(SuccessRate(pt));
  w.Key("mean_solved_rounds")
      .Value(r.solved_rounds.empty() ? 0.0 : r.summary.mean);
  w.Key("round_inflation").Value(pt.round_inflation);
  w.Key("adv_jams_spent").Value(r.adv_jams_spent);
  w.Key("adv_jams_effective").Value(r.adv_jams_effective);
  w.EndObject();
}

std::string AdversaryLabel(const PointResult& pt) {
  std::string label = adversary::ToString(pt.adversary.kind);
  if (pt.adversary.kind == adversary::Kind::kObliviousRate) {
    label += " rate=" + harness::FormatDouble(pt.adversary.rate, 2);
  } else {
    label += " f=" + harness::FormatDouble(pt.budget_fraction, 2);
  }
  return label;
}

int RunBench(const harness::Flags& flags) {
  const bool json_mode = flags.GetString("json").has_value();
  const std::string path = json_mode ? *flags.GetString("json") : "";
  const bool quick = flags.GetBoolOr("quick", false);
  const double scale = flags.GetDoubleOr("trials-scale", quick ? 0.25 : 1.0);
  CRMC_REQUIRE_MSG(scale > 0.0, "--trials-scale must be positive");
  const auto unconsumed = flags.UnconsumedFlags();
  if (!unconsumed.empty()) {
    std::cerr << "unknown flag: --" << unconsumed.front() << "\n";
    return 2;
  }

  std::vector<PointResult> points;
  for (const BenchProtocol& p : kProtocols) {
    // Budget sweep per budgeted strategy; fraction 0 (budget 0, bit-exact
    // pristine) anchors the inflation baseline for the whole protocol.
    double baseline_mean = 0.0;
    for (const adversary::Kind kind : kStrategies) {
      for (const double fraction : kBudgetFractions) {
        PointResult pt = RunPoint(p, SpecFor(kind, p, fraction), fraction,
                                  scale);
        const bool solved_any = !pt.result.solved_rounds.empty();
        if (fraction == 0.0 && solved_any && baseline_mean == 0.0) {
          baseline_mean = pt.result.summary.mean;
        }
        if (baseline_mean > 0.0 && solved_any) {
          pt.round_inflation = pt.result.summary.mean / baseline_mean;
        }
        points.push_back(std::move(pt));
      }
    }
    // Non-adaptive anchor: the E22 oblivious jammer at rate = fraction
    // (expected spend ~= fraction of every touched channel, no budget).
    for (const double fraction : kBudgetFractions) {
      if (fraction == 0.0) continue;  // identical to the pristine points
      PointResult pt = RunPoint(
          p, SpecFor(adversary::Kind::kObliviousRate, p, fraction), fraction,
          scale);
      if (baseline_mean > 0.0 && !pt.result.solved_rounds.empty()) {
        pt.round_inflation = pt.result.summary.mean / baseline_mean;
      }
      points.push_back(std::move(pt));
    }
  }

  harness::Table table({"protocol", "adversary", "budget", "trials",
                        "success", "timeout", "abort", "silent",
                        "mean rounds", "inflation", "spent", "effective"});
  for (const PointResult& pt : points) {
    const harness::TrialSetResult& r = pt.result;
    table.Row().Cells(
        pt.protocol.name, AdversaryLabel(pt), pt.adversary.budget,
        static_cast<std::int64_t>(pt.trials),
        harness::FormatDouble(SuccessRate(pt), 3),
        static_cast<std::int64_t>(r.timed_out),
        static_cast<std::int64_t>(r.aborted),
        static_cast<std::int64_t>(r.deluded),
        harness::FormatDouble(
            r.solved_rounds.empty() ? 0.0 : r.summary.mean, 1),
        harness::FormatDouble(pt.round_inflation, 2), r.adv_jams_spent,
        r.adv_jams_effective);
  }
  table.Print(std::cout);

  if (json_mode) {
    CRMC_REQUIRE_MSG(!path.empty(), "--json requires a file path");
    std::ofstream out(path);
    CRMC_REQUIRE_MSG(out.good(), "cannot open --json path " << path);
    harness::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema").Value("crmc.bench_adversary.v1");
    w.Key("mode").Value(quick ? "quick" : "full");
    w.Key("points").BeginArray();
    for (const PointResult& pt : points) WritePoint(w, pt);
    w.EndArray();
    w.EndObject();
    w.Finish();
    CRMC_REQUIRE_MSG(out.good(), "write failed for " << path);
    out.close();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const harness::Flags flags = harness::Flags::Parse(argc, argv);
    return RunBench(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
