// E20: active-count estimation quality and cost.
//
// The sibling problem of contention resolution: all active nodes agree on
// a constant-factor estimate of |A|. Geometric (multichannel, one round
// per probe) vs density (single channel, Willard-style). Reported:
// distribution of the estimated exponent against lg |A|, and round cost.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/estimation.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "sim/engine.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 200;
  std::cout << "# E20 — estimating |A| (n = 2^16, " << kTrials
            << " trials, 5-sample median)\n\n";

  harness::Table table({"estimator", "C", "|A|", "lg|A|", "exp p25",
                        "exp median", "exp p75", "rounds"});
  struct Setup {
    const char* name;
    std::int32_t channels;
    sim::ProtocolFactory factory;
  };
  const Setup setups[] = {
      {"geometric", 64, core::MakeGeometricEstimateOnly()},
      {"density", 1, core::MakeDensityEstimateOnly()},
  };
  for (const Setup& setup : setups) {
    for (const std::int32_t a : {1, 8, 64, 512, 4096, 32768}) {
      std::vector<std::int64_t> exponents;
      double rounds = 0;
      for (int t = 0; t < kTrials; ++t) {
        sim::EngineConfig config;
        config.num_active = a;
        config.population = 1 << 16;
        config.channels = setup.channels;
        config.seed = static_cast<std::uint64_t>(t) + 1;
        config.stop_when_solved = false;
        const sim::RunResult r = sim::Engine::Run(config, setup.factory);
        exponents.push_back(r.MetricValues("estimate_log2").front());
        rounds += static_cast<double>(r.rounds_executed);
      }
      table.Row().Cells(setup.name, setup.channels, a,
                        std::log2(static_cast<double>(a)),
                        harness::Quantile(exponents, 0.25),
                        harness::Quantile(exponents, 0.5),
                        harness::Quantile(exponents, 0.75),
                        rounds / kTrials);
    }
  }
  table.Print(std::cout);
  std::cout << "\nmedian exponents track lg|A| within a couple of units "
               "(constant-factor estimates) at O(loglog n)-round cost.\n";
  return 0;
}
