// E15: collision-detection model ablation.
//
// The paper's lower-bound landscape (Section 2) is organized by CD
// capability and channel count. This bench measures the same algorithm
// families under each CD model our MAC supports:
//   - strong CD: the paper's algorithms run and hit their bounds;
//   - receiver-only CD: the paper's algorithms *detect* the broken
//     assumption and abort (counted below);
//   - no CD: only the no-CD algorithms function; their costs show the
//     price of losing the collision detector.
#include <iostream>

#include "core/two_active.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "sim/engine.h"
#include "support/assert.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 200;
  std::cout << "# E15 — what each CD model supports (n = 2^16, C = 64, "
            << kTrials << " trials)\n\n";

  harness::Table table({"algorithm", "cd model", "status", "mean rounds",
                        "p95"});
  struct Case {
    const char* algo;
    std::int32_t num_active;
  };
  const Case cases[] = {{"two_active", 2},
                        {"general", 512},
                        {"knockout_cd", 512},
                        {"decay_no_cd", 512},
                        {"daum_multichannel_no_cd", 512}};
  for (const Case& c : cases) {
    for (const mac::CdModel model :
         {mac::CdModel::kStrong, mac::CdModel::kReceiverOnly,
          mac::CdModel::kNone}) {
      const auto factory = harness::AlgorithmByName(c.algo).make();
      int solved = 0;
      int aborted = 0;
      std::vector<std::int64_t> rounds;
      for (int t = 0; t < kTrials; ++t) {
        sim::EngineConfig config;
        config.num_active = c.num_active;
        config.population = 1 << 16;
        config.channels = 64;
        config.seed = static_cast<std::uint64_t>(t) + 1;
        config.max_rounds = 300000;
        config.cd_model = model;
        try {
          const sim::RunResult r = sim::Engine::Run(config, factory);
          if (r.solved) {
            ++solved;
            rounds.push_back(r.solved_round + 1);
          }
        } catch (const support::ProtocolAssumptionViolation&) {
          ++aborted;
        }
      }
      std::string status;
      if (aborted == kTrials) {
        status = "assumption violated";
      } else if (solved == kTrials) {
        status = "solves";
      } else {
        status = "solves " + std::to_string(solved) + "/" +
                 std::to_string(kTrials);
      }
      const harness::Summary s = harness::Summarize(rounds);
      table.Row().Cells(c.algo, mac::ToString(model), status,
                        rounds.empty() ? 0.0 : s.mean,
                        rounds.empty() ? 0.0 : s.p95);
    }
  }
  table.Print(std::cout);
  std::cout << "\nthe paper's algorithms are exactly the strong-CD rows; "
               "stripping transmitter-side detection breaks them (by "
               "design, loudly), while the no-CD baselines are oblivious "
               "to the model.\n";
  return 0;
}
