// E25: the static-vs-adaptive wrapper arms race under lookahead jamming
// (supersedes the E24 v1 artifact).
//
// Every grid point runs THREE sides over the same seed set: bare (the E23
// round budget, no wrapper), the static robust wrapper (PR 5 defaults:
// fixed confirm quorum, fixed honeypot schedule), and the adaptive wrapper
// (robust::PolicyKind::kAdaptive — suppression-estimated confirm quorum,
// spend-aware honeypot sizing). The grid sweeps adversary strategy
// (primary_camper / phase_tracking / lookahead) x budget fraction x fault
// composition (pristine, and erasure+flaky-CD to exercise the fault-aware
// confirmation path).
//
// The headline claims this artifact backs, machine-checked by
// tools/check_bench_json.py (schema crmc.bench_robust.v2):
//   1. The lookahead adversary — which models the wrapper's state machine
//      and refuses to spend into honeypots — drives the static wrapper's
//      confirmed-delivery rate below 0.99 on at least one witness point.
//   2. The adaptive wrapper restores confirmed delivery >= 0.99 on every
//      point of the grid, fault compositions included.
//   3. Adaptivity is not free lunch accounting: overhead_vs_static (the
//      ratio of total rounds executed, failed trials included at their
//      round cap) is tracked per point and must stay positive and exact.
//
//   (default)        prints the three-way table.
//   --json <path>    also writes the machine-readable artifact. `--quick`
//                    shrinks trial counts for CI; `--trials-scale <f>`
//                    scales them.
//
// Outcomes are simulated rounds, not wall time, so the artifact is
// deterministic for a given mode and the validator's gates are exact.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "harness/flags.h"
#include "harness/json_writer.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "mac/faults.h"
#include "robust/robust.h"
#include "support/assert.h"

namespace {

using namespace crmc;

struct BenchProtocol {
  const char* name;
  std::int64_t population;
  std::int32_t num_active;
  std::int32_t channels;
  std::int32_t trials;          // full-mode trial count; scaled by --quick
  std::int64_t bare_rounds;     // E23 budget: tight, heavy jamming kills it
  std::int64_t wrapped_rounds;  // room for epoch retries + budget drain
  std::int32_t per_round_cap;
  const double* fractions;  // budget grid, as fractions of bare*cap
  std::size_t num_fractions;
};

// two_active climbs past fraction 1.0: the lookahead adversary wastes
// almost nothing against the *static* wrapper (it holds through honeypots
// and strikes only verdict/echo rounds), so the budget where static
// defense cracks is a multiple of the bare round budget, not a fraction
// of it. fraction 2.0 (budget 128) is the witness knee; 4.0 saturates.
const double kTwoActiveFractions[] = {0.0, 0.5, 2.0, 4.0};
// general keeps the E24 scale: full fraction = 8000 channel-rounds.
const double kGeneralFractions[] = {0.0, 0.25, 1.0};

// Same populations/instances as E23/E24 so the bare sides stay comparable
// point-for-point with the other artifacts.
const BenchProtocol kProtocols[] = {
    {"two_active", 1 << 16, 2, 32, 600, 64, 4096, 1, kTwoActiveFractions,
     std::size(kTwoActiveFractions)},
    {"general", 1 << 14, 128, 64, 300, 2000, 32'000, 4, kGeneralFractions,
     std::size(kGeneralFractions)},
};

// primary_camper and phase_tracking are the strongest pre-lookahead
// spenders (E23); lookahead is the model-aware strategy this PR adds.
// greedy_reactive is dominated by phase_tracking and dropped to keep the
// three-sided grid affordable.
const adversary::Kind kStrategies[] = {
    adversary::Kind::kPrimaryCamper,
    adversary::Kind::kPhaseTracking,
    adversary::Kind::kLookahead,
};

struct FaultComp {
  const char* name;
  mac::FaultSpec spec;
};

FaultComp MakeErasureFlaky() {
  FaultComp comp;
  comp.name = "erasure_flaky";
  comp.spec.erasure_rate = 0.1;
  comp.spec.flaky_cd_rate = 0.05;
  comp.spec.fault_seed = 7;
  return comp;
}

const FaultComp kFaultComps[] = {
    {"none", mac::FaultSpec{}},
    MakeErasureFlaky(),
};

constexpr std::uint64_t kSeedBase = 0xe24c0f19dULL;

robust::RobustSpec WrapperSpec(robust::PolicyKind policy) {
  robust::RobustSpec spec;
  spec.enabled = true;
  spec.policy = policy;
  spec.max_epochs = 32;
  // 1024 lets the static honeypot schedule outgrow any budget on the grid
  // while staying far inside wrapped_rounds (see E24 notes). The adaptive
  // side starts from the same schedule and resizes it online.
  spec.backoff_cap = 1024;
  return spec;  // confirm/watchdog tuning stays at the defaults
}

struct PointResult {
  BenchProtocol protocol;
  adversary::AdversarySpec adversary;
  FaultComp faults;
  robust::RobustSpec robust;  // the static spec; adaptive differs in policy
  double budget_fraction = 0.0;
  std::int32_t trials = 0;
  harness::TrialSetResult bare;
  harness::TrialSetResult fixed;     // static wrapper
  harness::TrialSetResult adaptive;  // adaptive wrapper
  // Total-cost ratio: adaptive rounds_total / static rounds_total, failed
  // trials included at their round cap. The artifact's honest price tag
  // for adaptivity.
  double overhead_vs_static = 0.0;
};

harness::TrialSetResult RunSide(const BenchProtocol& p,
                                const adversary::AdversarySpec& adv,
                                const mac::FaultSpec& faults,
                                std::int64_t max_rounds,
                                const robust::RobustSpec& robust,
                                std::int32_t trials) {
  harness::TrialSpec trial;
  trial.population = p.population;
  trial.num_active = p.num_active;
  trial.channels = p.channels;
  trial.max_rounds = max_rounds;
  trial.base_seed = kSeedBase;
  trial.faults = faults;
  trial.adversary = adv;
  trial.robust = robust;
  const harness::AlgorithmInfo& info = harness::AlgorithmByName(p.name);
  return harness::RunTrials(trial, harness::HandleFor(info), trials);
}

PointResult RunPoint(const BenchProtocol& p, adversary::Kind kind,
                     const FaultComp& faults, double fraction, double scale) {
  PointResult out;
  out.protocol = p;
  out.faults = faults;
  out.budget_fraction = fraction;
  out.robust = WrapperSpec(robust::PolicyKind::kStatic);
  out.trials = std::max(
      std::int32_t{20},
      static_cast<std::int32_t>(static_cast<double>(p.trials) * scale));
  out.adversary.kind = kind;
  out.adversary.per_round_cap = p.per_round_cap;
  out.adversary.budget =
      std::llround(fraction * static_cast<double>(p.bare_rounds) *
                   static_cast<double>(p.per_round_cap));
  out.bare = RunSide(p, out.adversary, faults.spec, p.bare_rounds,
                     robust::RobustSpec{}, out.trials);
  out.fixed = RunSide(p, out.adversary, faults.spec, p.wrapped_rounds,
                      out.robust, out.trials);
  out.adaptive = RunSide(p, out.adversary, faults.spec, p.wrapped_rounds,
                         WrapperSpec(robust::PolicyKind::kAdaptive),
                         out.trials);
  if (out.fixed.rounds_total > 0) {
    out.overhead_vs_static =
        static_cast<double>(out.adaptive.rounds_total) /
        static_cast<double>(out.fixed.rounds_total);
  }
  return out;
}

double Rate(std::int32_t count, std::int32_t trials) {
  return static_cast<double>(count) / static_cast<double>(trials);
}

void WriteBreakdown(harness::JsonWriter& w, const harness::TrialSetResult& r,
                    std::int32_t trials) {
  w.Key("solved").Value(static_cast<std::int64_t>(r.solved_rounds.size()));
  w.Key("unsolved").Value(static_cast<std::int64_t>(r.unsolved));
  w.Key("timed_out").Value(static_cast<std::int64_t>(r.timed_out));
  w.Key("aborted").Value(static_cast<std::int64_t>(r.aborted));
  w.Key("wedged").Value(static_cast<std::int64_t>(r.wedged));
  w.Key("silent_failures").Value(static_cast<std::int64_t>(r.deluded));
  w.Key("success_rate")
      .Value(Rate(static_cast<std::int32_t>(r.solved_rounds.size()), trials));
}

// The wrapped-side block shared by the static and adaptive sides.
void WriteWrappedSide(harness::JsonWriter& w, const harness::TrialSetResult& r,
                      std::int32_t trials) {
  WriteBreakdown(w, r, trials);
  w.Key("confirmed").Value(static_cast<std::int64_t>(r.confirmed));
  w.Key("confirmed_rate").Value(Rate(r.confirmed, trials));
  w.Key("mean_solved_rounds")
      .Value(r.solved_rounds.empty() ? 0.0 : r.summary.mean);
  w.Key("epochs_used").Value(r.epochs_used);
  w.Key("retries").Value(r.retries);
  w.Key("confirm_rounds").Value(r.confirm_rounds);
  w.Key("backoff_rounds").Value(r.backoff_rounds);
  w.Key("rounds_total").Value(r.rounds_total);
  w.Key("adv_jams_spent").Value(r.adv_jams_spent);
  w.Key("adv_jams_effective").Value(r.adv_jams_effective);
  w.Key("adv_rounds_held").Value(r.adv_rounds_held);
  w.Key("adv_jams_echo").Value(r.adv_jams_echo);
  w.Key("adv_jams_backoff").Value(r.adv_jams_backoff);
}

void WritePoint(harness::JsonWriter& w, const PointResult& pt) {
  w.BeginObject();
  w.Key("protocol").Value(pt.protocol.name);
  w.Key("population").Value(pt.protocol.population);
  w.Key("num_active").Value(static_cast<std::int64_t>(pt.protocol.num_active));
  w.Key("channels").Value(static_cast<std::int64_t>(pt.protocol.channels));
  w.Key("bare_max_rounds").Value(pt.protocol.bare_rounds);
  w.Key("wrapped_max_rounds").Value(pt.protocol.wrapped_rounds);
  w.Key("trials").Value(static_cast<std::int64_t>(pt.trials));
  w.Key("adversary").BeginObject();
  w.Key("strategy").Value(adversary::ToString(pt.adversary.kind));
  w.Key("obs").Value(adversary::ToString(pt.adversary.obs));
  w.Key("budget").Value(pt.adversary.budget);
  w.Key("budget_fraction").Value(pt.budget_fraction);
  w.Key("per_round_cap")
      .Value(static_cast<std::int64_t>(pt.adversary.per_round_cap));
  w.EndObject();
  w.Key("faults").BeginObject();
  w.Key("name").Value(pt.faults.name);
  w.Key("erasure_rate").Value(pt.faults.spec.erasure_rate);
  w.Key("flaky_cd_rate").Value(pt.faults.spec.flaky_cd_rate);
  w.Key("fault_seed")
      .Value(static_cast<std::int64_t>(pt.faults.spec.fault_seed));
  w.EndObject();
  w.Key("robust").BeginObject();
  w.Key("max_epochs").Value(static_cast<std::int64_t>(pt.robust.max_epochs));
  w.Key("confirm_attempts")
      .Value(static_cast<std::int64_t>(pt.robust.confirm_attempts));
  w.Key("backoff_base").Value(pt.robust.backoff_base);
  w.Key("backoff_cap").Value(pt.robust.backoff_cap);
  w.EndObject();
  w.Key("bare").BeginObject();
  WriteBreakdown(w, pt.bare, pt.trials);
  w.EndObject();
  w.Key("static").BeginObject();
  WriteWrappedSide(w, pt.fixed, pt.trials);
  w.EndObject();
  w.Key("adaptive").BeginObject();
  WriteWrappedSide(w, pt.adaptive, pt.trials);
  w.Key("adaptive_confirm_extra").Value(pt.adaptive.adaptive_confirm_extra);
  w.Key("adaptive_backoff_trimmed")
      .Value(pt.adaptive.adaptive_backoff_trimmed);
  w.Key("confirm_quorum_peak")
      .Value(static_cast<std::int64_t>(pt.adaptive.confirm_quorum_peak));
  w.EndObject();
  w.Key("overhead_vs_static").Value(pt.overhead_vs_static);
  w.EndObject();
}

int RunBench(const harness::Flags& flags) {
  const bool json_mode = flags.GetString("json").has_value();
  const std::string path = json_mode ? *flags.GetString("json") : "";
  const bool quick = flags.GetBoolOr("quick", false);
  const double scale = flags.GetDoubleOr("trials-scale", quick ? 0.25 : 1.0);
  CRMC_REQUIRE_MSG(scale > 0.0, "--trials-scale must be positive");
  const auto unconsumed = flags.UnconsumedFlags();
  if (!unconsumed.empty()) {
    std::cerr << "unknown flag: --" << unconsumed.front() << "\n";
    return 2;
  }

  std::vector<PointResult> points;
  for (const BenchProtocol& p : kProtocols) {
    for (const adversary::Kind kind : kStrategies) {
      for (const FaultComp& comp : kFaultComps) {
        for (std::size_t i = 0; i < p.num_fractions; ++i) {
          points.push_back(RunPoint(p, kind, comp, p.fractions[i], scale));
        }
      }
    }
  }

  harness::Table table({"protocol", "adversary", "faults", "budget", "trials",
                        "bare ok", "static ok", "adaptive ok", "adpt mean",
                        "ovh vs static", "quorum pk", "adpt spent"});
  for (const PointResult& pt : points) {
    table.Row().Cells(
        pt.protocol.name,
        std::string(adversary::ToString(pt.adversary.kind)) + " f=" +
            harness::FormatDouble(pt.budget_fraction, 2),
        pt.faults.name, pt.adversary.budget,
        static_cast<std::int64_t>(pt.trials),
        harness::FormatDouble(
            Rate(static_cast<std::int32_t>(pt.bare.solved_rounds.size()),
                 pt.trials),
            3),
        harness::FormatDouble(Rate(pt.fixed.confirmed, pt.trials), 3),
        harness::FormatDouble(Rate(pt.adaptive.confirmed, pt.trials), 3),
        harness::FormatDouble(
            pt.adaptive.solved_rounds.empty() ? 0.0 : pt.adaptive.summary.mean,
            1),
        harness::FormatDouble(pt.overhead_vs_static, 2),
        static_cast<std::int64_t>(pt.adaptive.confirm_quorum_peak),
        pt.adaptive.adv_jams_spent);
  }
  table.Print(std::cout);

  if (json_mode) {
    CRMC_REQUIRE_MSG(!path.empty(), "--json requires a file path");
    std::ofstream out(path);
    CRMC_REQUIRE_MSG(out.good(), "cannot open --json path " << path);
    harness::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema").Value("crmc.bench_robust.v2");
    w.Key("mode").Value(quick ? "quick" : "full");
    w.Key("points").BeginArray();
    for (const PointResult& pt : points) WritePoint(w, pt);
    w.EndArray();
    w.EndObject();
    w.Finish();
    CRMC_REQUIRE_MSG(out.good(), "write failed for " << path);
    out.close();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const harness::Flags flags = harness::Flags::Parse(argc, argv);
    return RunBench(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
