// E24: confirmed delivery under budgeted jamming — the robust wrapper
// versus the bare protocols.
//
// Re-runs the E23 degradation configurations (bench_adversary.cpp) twice
// per point: bare (the E23 round budget, no wrapper) and wrapped (the
// robust layer from src/robust/ with an extended round budget so epoch
// retries have room). The headline claim this artifact backs: at budget
// fractions where the bare protocols fail every trial, the wrapped runs
// still achieve >= 99% *confirmed* delivery — the adversary's budget
// drains against echo rounds and backoff honeypots until a clean epoch
// lands a confirmed lone delivery.
//
//   (default)        prints the wrapped-vs-bare table.
//   --json <path>    also writes the machine-readable artifact (schema
//                    crmc.bench_robust.v1) consumed by
//                    tools/check_bench_json.py, which gates the >= 0.99
//                    delivery floor and overhead monotonicity. `--quick`
//                    shrinks trial counts for CI; `--trials-scale <f>`
//                    scales them.
//
// Outcomes are simulated rounds, not wall time, so the artifact is
// deterministic for a given mode and the validator's gates are exact.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "harness/flags.h"
#include "harness/json_writer.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "robust/robust.h"
#include "support/assert.h"

namespace {

using namespace crmc;

struct BenchProtocol {
  const char* name;
  std::int64_t population;
  std::int32_t num_active;
  std::int32_t channels;
  std::int32_t trials;        // full-mode trial count; scaled by --quick
  std::int64_t bare_rounds;   // E23 budget: tight, heavy jamming kills it
  std::int64_t wrapped_rounds;  // room for epoch retries + budget drain
  std::int32_t per_round_cap;
};

// Same populations/instances as E23 (bench_adversary.cpp) so the bare
// halves of the two artifacts are comparable point-for-point. The wrapped
// round budget is sized so even a full-fraction jammer (budget =
// bare_rounds * cap) drains before retries run out: every protocol or
// fabricated round it fails to skip costs it budget.
const BenchProtocol kProtocols[] = {
    {"two_active", 1 << 16, 2, 32, 600, 64, 4096, 1},
    {"general", 1 << 14, 128, 64, 300, 2000, 32'000, 4},
};

const double kBudgetFractions[] = {0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0};

// The three adaptive strategies; oblivious_rate is excluded (it has no
// budget to drain, so the wrapper's honeypot economics do not apply).
const adversary::Kind kStrategies[] = {
    adversary::Kind::kPrimaryCamper,
    adversary::Kind::kGreedyReactive,
    adversary::Kind::kPhaseTracking,
};

constexpr std::uint64_t kSeedBase = 0xe24c0f19dULL;

robust::RobustSpec WrapperSpec() {
  robust::RobustSpec spec;
  spec.enabled = true;
  spec.max_epochs = 32;
  // The default cap (256) tops out the honeypot at ~6.6k backoff rounds
  // over 32 epochs — less than a full-fraction general jammer's 8000
  // budget. 1024 lets the pauses outgrow any budget on the grid while
  // staying far inside wrapped_rounds.
  spec.backoff_cap = 1024;
  return spec;  // confirm/watchdog tuning stays at the defaults
}

struct PointResult {
  BenchProtocol protocol;
  adversary::AdversarySpec adversary;
  robust::RobustSpec robust;
  double budget_fraction = 0.0;
  std::int32_t trials = 0;
  harness::TrialSetResult bare;
  harness::TrialSetResult wrapped;
  double round_overhead = 0.0;  // wrapped mean vs the pristine wrapped mean
};

harness::TrialSetResult RunSide(const BenchProtocol& p,
                                const adversary::AdversarySpec& adv,
                                std::int64_t max_rounds,
                                const robust::RobustSpec& robust,
                                std::int32_t trials) {
  harness::TrialSpec trial;
  trial.population = p.population;
  trial.num_active = p.num_active;
  trial.channels = p.channels;
  trial.max_rounds = max_rounds;
  trial.base_seed = kSeedBase;
  trial.adversary = adv;
  trial.robust = robust;
  const harness::AlgorithmInfo& info = harness::AlgorithmByName(p.name);
  return harness::RunTrials(trial, harness::HandleFor(info), trials);
}

PointResult RunPoint(const BenchProtocol& p, adversary::Kind kind,
                     double fraction, double scale) {
  PointResult out;
  out.protocol = p;
  out.budget_fraction = fraction;
  out.robust = WrapperSpec();
  out.trials = std::max(
      std::int32_t{20},
      static_cast<std::int32_t>(static_cast<double>(p.trials) * scale));
  out.adversary.kind = kind;
  out.adversary.per_round_cap = p.per_round_cap;
  out.adversary.budget =
      std::llround(fraction * static_cast<double>(p.bare_rounds) *
                   static_cast<double>(p.per_round_cap));
  out.bare = RunSide(p, out.adversary, p.bare_rounds, robust::RobustSpec{},
                     out.trials);
  out.wrapped =
      RunSide(p, out.adversary, p.wrapped_rounds, out.robust, out.trials);
  return out;
}

double Rate(std::int32_t count, std::int32_t trials) {
  return static_cast<double>(count) / static_cast<double>(trials);
}

void WriteBreakdown(harness::JsonWriter& w, const harness::TrialSetResult& r,
                    std::int32_t trials) {
  w.Key("solved").Value(static_cast<std::int64_t>(r.solved_rounds.size()));
  w.Key("unsolved").Value(static_cast<std::int64_t>(r.unsolved));
  w.Key("timed_out").Value(static_cast<std::int64_t>(r.timed_out));
  w.Key("aborted").Value(static_cast<std::int64_t>(r.aborted));
  w.Key("wedged").Value(static_cast<std::int64_t>(r.wedged));
  w.Key("silent_failures").Value(static_cast<std::int64_t>(r.deluded));
  w.Key("success_rate")
      .Value(Rate(static_cast<std::int32_t>(r.solved_rounds.size()), trials));
}

void WritePoint(harness::JsonWriter& w, const PointResult& pt) {
  w.BeginObject();
  w.Key("protocol").Value(pt.protocol.name);
  w.Key("population").Value(pt.protocol.population);
  w.Key("num_active").Value(static_cast<std::int64_t>(pt.protocol.num_active));
  w.Key("channels").Value(static_cast<std::int64_t>(pt.protocol.channels));
  w.Key("bare_max_rounds").Value(pt.protocol.bare_rounds);
  w.Key("wrapped_max_rounds").Value(pt.protocol.wrapped_rounds);
  w.Key("trials").Value(static_cast<std::int64_t>(pt.trials));
  w.Key("adversary").BeginObject();
  w.Key("strategy").Value(adversary::ToString(pt.adversary.kind));
  w.Key("obs").Value(adversary::ToString(pt.adversary.obs));
  w.Key("budget").Value(pt.adversary.budget);
  w.Key("budget_fraction").Value(pt.budget_fraction);
  w.Key("per_round_cap")
      .Value(static_cast<std::int64_t>(pt.adversary.per_round_cap));
  w.EndObject();
  w.Key("robust").BeginObject();
  w.Key("max_epochs").Value(static_cast<std::int64_t>(pt.robust.max_epochs));
  w.Key("confirm_attempts")
      .Value(static_cast<std::int64_t>(pt.robust.confirm_attempts));
  w.Key("backoff_base").Value(pt.robust.backoff_base);
  w.Key("backoff_cap").Value(pt.robust.backoff_cap);
  w.EndObject();
  w.Key("bare").BeginObject();
  WriteBreakdown(w, pt.bare, pt.trials);
  w.EndObject();
  w.Key("wrapped").BeginObject();
  WriteBreakdown(w, pt.wrapped, pt.trials);
  w.Key("confirmed").Value(static_cast<std::int64_t>(pt.wrapped.confirmed));
  w.Key("confirmed_rate").Value(Rate(pt.wrapped.confirmed, pt.trials));
  w.Key("mean_solved_rounds")
      .Value(pt.wrapped.solved_rounds.empty() ? 0.0
                                              : pt.wrapped.summary.mean);
  w.Key("round_overhead").Value(pt.round_overhead);
  w.Key("epochs_used").Value(pt.wrapped.epochs_used);
  w.Key("retries").Value(pt.wrapped.retries);
  w.Key("confirm_rounds").Value(pt.wrapped.confirm_rounds);
  w.Key("backoff_rounds").Value(pt.wrapped.backoff_rounds);
  w.Key("adv_jams_spent").Value(pt.wrapped.adv_jams_spent);
  w.Key("adv_jams_effective").Value(pt.wrapped.adv_jams_effective);
  w.EndObject();
  w.EndObject();
}

int RunBench(const harness::Flags& flags) {
  const bool json_mode = flags.GetString("json").has_value();
  const std::string path = json_mode ? *flags.GetString("json") : "";
  const bool quick = flags.GetBoolOr("quick", false);
  const double scale = flags.GetDoubleOr("trials-scale", quick ? 0.25 : 1.0);
  CRMC_REQUIRE_MSG(scale > 0.0, "--trials-scale must be positive");
  const auto unconsumed = flags.UnconsumedFlags();
  if (!unconsumed.empty()) {
    std::cerr << "unknown flag: --" << unconsumed.front() << "\n";
    return 2;
  }

  std::vector<PointResult> points;
  for (const BenchProtocol& p : kProtocols) {
    // The pristine wrapped run (fraction 0, bit-identical to an unwrapped
    // pristine run) anchors the overhead ratio for the whole protocol.
    double baseline_mean = 0.0;
    for (const adversary::Kind kind : kStrategies) {
      for (const double fraction : kBudgetFractions) {
        PointResult pt = RunPoint(p, kind, fraction, scale);
        const bool solved_any = !pt.wrapped.solved_rounds.empty();
        if (fraction == 0.0 && solved_any && baseline_mean == 0.0) {
          baseline_mean = pt.wrapped.summary.mean;
        }
        if (baseline_mean > 0.0 && solved_any) {
          pt.round_overhead = pt.wrapped.summary.mean / baseline_mean;
        }
        points.push_back(std::move(pt));
      }
    }
  }

  harness::Table table({"protocol", "adversary", "budget", "trials",
                        "bare ok", "bare silent", "wrapped ok",
                        "mean rounds", "overhead", "epochs", "spent"});
  for (const PointResult& pt : points) {
    table.Row().Cells(
        pt.protocol.name,
        std::string(adversary::ToString(pt.adversary.kind)) + " f=" +
            harness::FormatDouble(pt.budget_fraction, 2),
        pt.adversary.budget, static_cast<std::int64_t>(pt.trials),
        harness::FormatDouble(
            Rate(static_cast<std::int32_t>(pt.bare.solved_rounds.size()),
                 pt.trials),
            3),
        static_cast<std::int64_t>(pt.bare.deluded),
        harness::FormatDouble(Rate(pt.wrapped.confirmed, pt.trials), 3),
        harness::FormatDouble(
            pt.wrapped.solved_rounds.empty() ? 0.0 : pt.wrapped.summary.mean,
            1),
        harness::FormatDouble(pt.round_overhead, 2),
        harness::FormatDouble(static_cast<double>(pt.wrapped.epochs_used) /
                                  static_cast<double>(pt.trials),
                              2),
        pt.wrapped.adv_jams_spent);
  }
  table.Print(std::cout);

  if (json_mode) {
    CRMC_REQUIRE_MSG(!path.empty(), "--json requires a file path");
    std::ofstream out(path);
    CRMC_REQUIRE_MSG(out.good(), "cannot open --json path " << path);
    harness::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema").Value("crmc.bench_robust.v1");
    w.Key("mode").Value(quick ? "quick" : "full");
    w.Key("points").BeginArray();
    for (const PointResult& pt : points) WritePoint(w, pt);
    w.EndArray();
    w.EndObject();
    w.Finish();
    CRMC_REQUIRE_MSG(out.good(), "write failed for " << path);
    out.close();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const harness::Flags flags = harness::Flags::Parse(argc, argv);
    return RunBench(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
