// E22: degradation under adversarial faults.
//
// Sweeps the fault-injection layer (mac/faults.h) across representative
// protocols and measures how contention resolution degrades: success rate,
// failure breakdown (timed out / wedged / assumption aborted), and
// round-count inflation relative to the same protocol's fault-free runs.
//
//   (default)        prints the degradation table.
//   --json <path>    also writes the machine-readable artifact (schema
//                    crmc.bench_faults.v1) consumed by
//                    tools/check_bench_json.py. `--quick` shrinks trial
//                    counts for CI; `--trials-scale <f>` scales them.
//
// Unlike bench_engine_throughput this measures simulated outcomes, not wall
// time, so the artifact is deterministic for a given mode: the jam-axis
// monotonicity check in the validator is exact, not a timing gate.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "harness/json_writer.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "support/assert.h"

namespace {

using namespace crmc;

struct BenchProtocol {
  const char* name;
  std::int64_t population;
  std::int32_t num_active;
  std::int32_t channels;
  std::int32_t trials;      // full-mode trial count; scaled by --quick
  std::int64_t max_rounds;  // tight enough that heavy jamming times out
};

// TwoActive and General are the paper's algorithms; the no-CD baselines
// anchor the comparison the robustness literature makes (faulty CD vs no
// CD at all). max_rounds is a handful of fault-free solve times so the
// curves show timeouts instead of waiting out 4M-round caps.
const BenchProtocol kProtocols[] = {
    {"two_active", 1 << 16, 2, 32, 600, 64},
    {"general", 1 << 14, 128, 64, 300, 2000},
    {"decay_no_cd", 1 << 14, 64, 1, 150, 4000},
    {"daum_multichannel_no_cd", 1 << 14, 64, 64, 150, 4000},
};

const double kJamRates[] = {0.0, 0.1, 0.2, 0.4, 0.6};

// Extra axes, swept on General only (the full-stack algorithm): erasures
// break the strong-CD assumption outright, flaky CD corrupts it, crashes
// thin the active set.
const double kErasureRates[] = {0.05, 0.2};
const double kFlakyRates[] = {0.02, 0.1};
const double kCrashRates[] = {0.01, 0.05};

constexpr std::uint64_t kSeedBase = 0xfa1175eedULL;

struct PointResult {
  BenchProtocol protocol;
  mac::FaultSpec faults;
  std::int32_t trials = 0;
  harness::TrialSetResult result;
  double round_inflation = 0.0;  // vs the protocol's fault-free mean
};

PointResult RunPoint(const BenchProtocol& p, const mac::FaultSpec& faults,
                     double scale) {
  PointResult out;
  out.protocol = p;
  out.faults = faults;
  out.trials = std::max(
      std::int32_t{20},
      static_cast<std::int32_t>(static_cast<double>(p.trials) * scale));
  harness::TrialSpec spec;
  spec.population = p.population;
  spec.num_active = p.num_active;
  spec.channels = p.channels;
  spec.max_rounds = p.max_rounds;
  spec.base_seed = kSeedBase;
  spec.faults = faults;
  const harness::AlgorithmInfo& info = harness::AlgorithmByName(p.name);
  out.result = harness::RunTrials(spec, harness::HandleFor(info), out.trials);
  return out;
}

double SuccessRate(const PointResult& pt) {
  return static_cast<double>(pt.result.solved_rounds.size()) /
         static_cast<double>(pt.trials);
}

void WritePoint(harness::JsonWriter& w, const PointResult& pt) {
  const harness::TrialSetResult& r = pt.result;
  w.BeginObject();
  w.Key("protocol").Value(pt.protocol.name);
  w.Key("population").Value(pt.protocol.population);
  w.Key("num_active").Value(static_cast<std::int64_t>(pt.protocol.num_active));
  w.Key("channels").Value(static_cast<std::int64_t>(pt.protocol.channels));
  w.Key("max_rounds").Value(pt.protocol.max_rounds);
  w.Key("trials").Value(static_cast<std::int64_t>(pt.trials));
  w.Key("faults").BeginObject();
  w.Key("jam_rate").Value(pt.faults.jam_rate);
  w.Key("erasure_rate").Value(pt.faults.erasure_rate);
  w.Key("flaky_cd_rate").Value(pt.faults.flaky_cd_rate);
  w.Key("crash_rate").Value(pt.faults.crash_rate);
  w.EndObject();
  w.Key("solved").Value(static_cast<std::int64_t>(r.solved_rounds.size()));
  w.Key("unsolved").Value(static_cast<std::int64_t>(r.unsolved));
  w.Key("timed_out").Value(static_cast<std::int64_t>(r.timed_out));
  w.Key("aborted").Value(static_cast<std::int64_t>(r.aborted));
  w.Key("wedged").Value(static_cast<std::int64_t>(r.wedged));
  w.Key("success_rate").Value(SuccessRate(pt));
  w.Key("mean_solved_rounds")
      .Value(r.solved_rounds.empty() ? 0.0 : r.summary.mean);
  w.Key("round_inflation").Value(pt.round_inflation);
  w.Key("faults_injected").Value(r.faults_injected);
  w.Key("crashed_nodes").Value(r.crashed_nodes);
  w.EndObject();
}

std::string FaultLabel(const mac::FaultSpec& f) {
  std::string label;
  const auto add = [&label](const char* tag, double v) {
    if (v <= 0.0) return;
    if (!label.empty()) label += " ";
    label += tag;
    label += harness::FormatDouble(v, 2);
  };
  add("jam=", f.jam_rate);
  add("erase=", f.erasure_rate);
  add("flaky=", f.flaky_cd_rate);
  add("crash=", f.crash_rate);
  return label.empty() ? "none" : label;
}

int RunBench(const harness::Flags& flags) {
  const bool json_mode = flags.GetString("json").has_value();
  const std::string path = json_mode ? *flags.GetString("json") : "";
  const bool quick = flags.GetBoolOr("quick", false);
  const double scale = flags.GetDoubleOr("trials-scale", quick ? 0.25 : 1.0);
  CRMC_REQUIRE_MSG(scale > 0.0, "--trials-scale must be positive");
  const auto unconsumed = flags.UnconsumedFlags();
  if (!unconsumed.empty()) {
    std::cerr << "unknown flag: --" << unconsumed.front() << "\n";
    return 2;
  }

  std::vector<PointResult> points;
  for (const BenchProtocol& p : kProtocols) {
    // Jam sweep; the jam=0 point doubles as the inflation baseline.
    double baseline_mean = 0.0;
    for (const double jam : kJamRates) {
      mac::FaultSpec faults;
      faults.jam_rate = jam;
      PointResult pt = RunPoint(p, faults, scale);
      const bool solved_any = !pt.result.solved_rounds.empty();
      if (jam == 0.0 && solved_any) baseline_mean = pt.result.summary.mean;
      if (baseline_mean > 0.0 && solved_any) {
        pt.round_inflation = pt.result.summary.mean / baseline_mean;
      }
      points.push_back(std::move(pt));
    }
    if (std::string(p.name) != "general") continue;
    for (const double rate : kErasureRates) {
      mac::FaultSpec faults;
      faults.erasure_rate = rate;
      points.push_back(RunPoint(p, faults, scale));
    }
    for (const double rate : kFlakyRates) {
      mac::FaultSpec faults;
      faults.flaky_cd_rate = rate;
      points.push_back(RunPoint(p, faults, scale));
    }
    for (const double rate : kCrashRates) {
      mac::FaultSpec faults;
      faults.crash_rate = rate;
      points.push_back(RunPoint(p, faults, scale));
    }
  }

  harness::Table table({"protocol", "faults", "trials", "success", "timeout",
                        "abort", "wedged", "mean rounds", "inflation"});
  for (const PointResult& pt : points) {
    const harness::TrialSetResult& r = pt.result;
    table.Row().Cells(
        pt.protocol.name, FaultLabel(pt.faults),
        static_cast<std::int64_t>(pt.trials),
        harness::FormatDouble(SuccessRate(pt), 3),
        static_cast<std::int64_t>(r.timed_out),
        static_cast<std::int64_t>(r.aborted),
        static_cast<std::int64_t>(r.wedged),
        harness::FormatDouble(
            r.solved_rounds.empty() ? 0.0 : r.summary.mean, 1),
        harness::FormatDouble(pt.round_inflation, 2));
  }
  table.Print(std::cout);

  if (json_mode) {
    CRMC_REQUIRE_MSG(!path.empty(), "--json requires a file path");
    std::ofstream out(path);
    CRMC_REQUIRE_MSG(out.good(), "cannot open --json path " << path);
    harness::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema").Value("crmc.bench_faults.v1");
    w.Key("mode").Value(quick ? "quick" : "full");
    w.Key("points").BeginArray();
    for (const PointResult& pt : points) WritePoint(w, pt);
    w.EndArray();
    w.EndObject();
    w.Finish();
    CRMC_REQUIRE_MSG(out.good(), "write failed for " << path);
    out.close();
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const harness::Flags flags = harness::Flags::Parse(argc, argv);
    return RunBench(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
