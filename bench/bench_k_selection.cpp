// E19: k-selection (queue draining) by repeated contention resolution.
//
// Per-packet cost is one instance of the general algorithm plus padding,
// i.e. O(log n / log C + loglog n logloglog n) rounds per packet — so the
// multichannel speedup of the paper compounds linearly in k. Compared
// against draining with the single-channel knockout (per-packet Theta(log
// n)).
#include <iostream>

#include "core/k_selection.h"
#include "core/reduce.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "sim/engine.h"

namespace {

// Queue draining with the classic knockout instead of the paper's
// algorithm. Each packet is one knockout contest on the primary channel;
// nodes knocked out of the current contest spectate (listen) until they
// hear the winning lone transmission, then everyone re-enters for the next
// packet — which keeps the contests synchronized without fixed-length
// instances.
crmc::sim::Task<void> KnockoutDrain(crmc::sim::NodeContext& ctx) {
  using crmc::mac::Feedback;
  using crmc::mac::kPrimaryChannel;
  for (;;) {
    // In the contest.
    bool contending = true;
    bool contest_over = false;
    while (contending && !contest_over) {
      if (ctx.rng().Bernoulli(0.5)) {
        const Feedback fb = co_await ctx.Transmit(kPrimaryChannel);
        if (fb.MessageHeard()) co_return;  // delivered our packet
        // Collision: still contending.
      } else {
        const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
        if (fb.MessageHeard()) contest_over = true;  // someone delivered
        if (fb.Collision()) contending = false;      // knocked out
      }
    }
    // Spectate until the current contest produces its winner.
    while (!contest_over) {
      const Feedback fb = co_await ctx.Listen(kPrimaryChannel);
      if (fb.MessageHeard()) contest_over = true;
    }
  }
}

}  // namespace

int main() {
  using namespace crmc;

  constexpr int kTrials = 30;
  std::cout << "# E19 — queue draining (k-selection), n = 2^16, "
            << kTrials << " trials\n\n";

  harness::Table table({"packets k", "C", "paper: rounds", "rounds/packet",
                        "knockout drain: rounds", "rounds/packet"});
  for (const std::int32_t k : {4, 16, 64}) {
    for (const std::int32_t c : {16, 256}) {
      double paper_rounds = 0;
      double knockout_rounds = 0;
      for (int t = 0; t < kTrials; ++t) {
        sim::EngineConfig config;
        config.num_active = k;
        config.population = 1 << 16;
        config.channels = c;
        config.seed = static_cast<std::uint64_t>(t) + 1;
        config.stop_when_solved = false;
        config.max_rounds = 8'000'000;
        const sim::RunResult paper =
            sim::Engine::Run(config, core::MakeKSelection());
        paper_rounds += static_cast<double>(paper.rounds_executed);

        config.channels = 1;
        const sim::RunResult knock = sim::Engine::Run(
            config,
            [](sim::NodeContext& ctx) { return KnockoutDrain(ctx); });
        knockout_rounds += static_cast<double>(knock.rounds_executed);
      }
      table.Row().Cells(k, c, paper_rounds / kTrials,
                        paper_rounds / kTrials / k,
                        knockout_rounds / kTrials,
                        knockout_rounds / kTrials / k);
    }
  }
  table.Print(std::cout);
  std::cout << "\nper-packet cost is flat in k for both; the paper's "
               "per-packet cost shrinks with C while the knockout's is "
               "pinned at Theta(log n). Note the paper column pays the "
               "fixed instance padding (a w.h.p. budget), so its raw "
               "numbers exceed the knockout's at small n — the win is the "
               "C-scaling, not the constant.\n";
  return 0;
}
