// E13 (Figure 7): Snir's CREW parallel search on the PRAM substrate.
//
// Iterations to locate a key in a sorted array of N cells with p
// processors, against the ceil(log2(N+1)/log2(p+1)) prediction — the same
// recurrence that governs SplitSearch once cohorts reach size p.
#include <iostream>
#include <vector>

#include "harness/table.h"
#include "pram/snir_search.h"
#include "support/rng.h"

int main() {
  using namespace crmc;

  std::cout << "# E13 / Figure 7 — Snir (p+1)-ary search iterations "
               "(mean over 64 random keys)\n\n";

  harness::Table table({"N", "p", "iterations (mean)", "iterations (max)",
                        "predicted ceil(log(N+1)/log(p+1))"});
  support::RandomSource rng(0x5171);
  for (const std::size_t n : {std::size_t{1} << 8, std::size_t{1} << 12,
                              std::size_t{1} << 16}) {
    std::vector<std::int64_t> sorted(n);
    for (std::size_t i = 0; i < n; ++i) {
      sorted[i] = static_cast<std::int64_t>(3 * i);
    }
    for (const std::int32_t p : {1, 3, 7, 15, 63, 255}) {
      double sum = 0;
      std::int64_t worst = 0;
      constexpr int kKeys = 64;
      for (int k = 0; k < kKeys; ++k) {
        const std::int64_t key =
            rng.UniformInt(-3, static_cast<std::int64_t>(3 * n) + 3);
        pram::SearchStats stats;
        pram::ParallelLowerBound(sorted, key, p, &stats);
        sum += static_cast<double>(stats.iterations);
        worst = std::max(worst, stats.iterations);
      }
      table.Row().Cells(static_cast<std::int64_t>(n), p, sum / kKeys, worst,
                        pram::PredictedIterations(n, p));
    }
  }
  table.Print(std::cout);
  std::cout << "\nmeasured iterations track the prediction: the speedup "
               "LeafElection inherits by simulating this search with "
               "cohorts of size p.\n";
  return 0;
}
