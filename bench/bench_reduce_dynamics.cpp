// E9 (Figure 5): survivor dynamics of the Reduce knockout.
//
// Theorem 5: after 2*ceil(lg lg n) rounds the active count sits in
// [1, alpha*log n] w.h.p. We trace the mean number of still-active nodes
// at the start of every round, and summarize the endpoint distribution
// against log n.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/reduce.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 40;
  std::cout << "# E9 / Figure 5 — Reduce survivor curves (" << kTrials
            << " trials, mean actives at round start)\n\n";

  for (const std::int64_t n : {std::int64_t{1} << 10, std::int64_t{1} << 13,
                               std::int64_t{1} << 16}) {
    harness::TrialSpec spec;
    spec.population = n;
    spec.num_active = static_cast<std::int32_t>(n);
    spec.channels = 1;
    spec.stop_when_solved = false;
    spec.record_active_counts = true;
    const harness::TrialSetResult result = harness::RunTrials(
        spec, core::MakeReduceOnly(), kTrials, /*keep_runs=*/true);

    std::size_t max_rounds = 0;
    for (const auto& run : result.runs) {
      max_rounds = std::max(max_rounds, run.active_counts.size());
    }
    std::cout << "## n = |A| = " << n << "\n\n";
    // A run ends before the schedule when a lone transmitter becomes
    // leader; per-round statistics are over the runs still going.
    harness::Table table({"round", "runs still going", "mean active",
                          "min", "max"});
    for (std::size_t round = 0; round < max_rounds; ++round) {
      double sum = 0;
      std::int64_t lo = n, hi = 0;
      int going = 0;
      for (const auto& run : result.runs) {
        if (round >= run.active_counts.size()) continue;
        const std::int64_t v = run.active_counts[round];
        sum += static_cast<double>(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        ++going;
      }
      table.Row().Cells(static_cast<std::int64_t>(round + 1),
                        static_cast<std::int64_t>(going),
                        going ? sum / going : 0.0, lo, hi);
    }
    table.Print(std::cout);

    // Endpoint survivor counts, split by how the run ended.
    std::vector<std::int64_t> full_schedule;
    int early_leader = 0;
    for (const auto& run : result.runs) {
      std::int64_t survivors = 0;
      bool leader = false;
      for (const auto& report : run.node_reports) {
        if (report.phase_marks.count("reduce_survivor")) ++survivors;
        if (report.phase_marks.count("reduce_leader")) leader = true;
      }
      if (leader) {
        ++early_leader;  // the knockout solved the problem outright
      } else {
        full_schedule.push_back(survivors);
      }
    }
    std::cout << "\nruns where the knockout itself elected a leader: "
              << early_leader << "/" << kTrials << "\n";
    if (!full_schedule.empty()) {
      const harness::Summary end = harness::Summarize(full_schedule);
      std::cout << "survivors when the full schedule ran: mean " << end.mean
                << ", max " << end.max << "  (log2 n = "
                << std::log2(static_cast<double>(n)) << ")\n";
    }
    std::cout << "\n";
  }
  std::cout << "Theorem 5's guarantee is the full-schedule endpoint "
               "staying within O(log n); the early-leader runs are the "
               "knockout over-delivering.\n";
  return 0;
}
