// E16/E17: expected time vs w.h.p. time — the trade-off the paper's
// conclusion discusses ("the best expected time solutions are really fast,
// reaching O(1) expected complexity with as few as log n channels").
//
// E16: Willard's density search vs the knockout on one channel with CD:
// better mean, worse tail.
// E17: the expected-O(1) multichannel lottery: means flat in |A| once
// ~log n channels exist; tails heavy — exactly why the paper's w.h.p.
// metric is a different regime.
#include <iostream>

#include "baselines/baselines.h"
#include "core/general.h"
#include "core/reduce.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  // Trial counts scale inversely with |A| so every row costs roughly the
  // same number of simulated node-rounds.
  auto trials_for = [](std::int32_t a) {
    return a >= 65536 ? 120 : a >= 4096 ? 500 : 2000;
  };
  std::cout << "# E16 — expected vs w.h.p. on one channel with CD "
            << "(n = |A|)\n\n";
  {
    harness::Table table({"algorithm", "|A|", "mean", "p99", "p99.9",
                          "p99/mean"});
    for (const std::int32_t a : {256, 4096, 65536}) {
      for (const char* which : {"willard", "knockout"}) {
        harness::TrialSpec spec;
        spec.population = a;
        spec.num_active = a;
        spec.channels = 1;
        const auto factory = which[0] == 'w'
                                 ? baselines::MakeWillardCd()
                                 : core::MakeKnockoutCd();
        const harness::TrialSetResult r =
            harness::RunTrials(spec, factory, trials_for(a));
        table.Row().Cells(which, a, r.summary.mean, r.summary.p99,
                          harness::Quantile(r.solved_rounds, 0.999),
                          r.summary.p99 / r.summary.mean);
      }
    }
    table.Print(std::cout);
  }

  std::cout << "\n# E17 — expected-O(1) multichannel lottery vs the "
               "paper's w.h.p. algorithm (C = 24, n = 2^16)\n\n";
  {
    harness::Table table({"algorithm", "|A|", "mean", "p99", "p99.9",
                          "max"});
    for (const std::int32_t a : {16, 256, 4096, 65536}) {
      harness::TrialSpec spec;
      spec.population = 1 << 16;
      spec.num_active = a;
      spec.channels = 24;
      const harness::TrialSetResult lottery = harness::RunTrials(
          spec, baselines::MakeExpectedO1Multichannel(), trials_for(a));
      table.Row().Cells("expected_o1 (no CD)", a, lottery.summary.mean,
                        lottery.summary.p99,
                        harness::Quantile(lottery.solved_rounds, 0.999),
                        lottery.summary.max);
      const harness::TrialSetResult paper =
          harness::RunTrials(spec, core::MakeGeneral(), trials_for(a));
      table.Row().Cells("general (CD, whp)", a, paper.summary.mean,
                        paper.summary.p99,
                        harness::Quantile(paper.solved_rounds, 0.999),
                        paper.summary.max);
    }
    table.Print(std::cout);
  }
  std::cout << "\nexpected-time schemes hold their means flat but their "
               "tails stretch; the paper's algorithms cap the tail — the "
               "two regimes the conclusion contrasts.\n";
  return 0;
}
