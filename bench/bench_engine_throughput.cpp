// E14: simulator cost model (google-benchmark).
//
// Wall-clock throughput of the engine itself: node-rounds per second for a
// representative protocol at several scales, plus the raw MAC resolver.
// This is the denominator behind every other experiment's runtime.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/general.h"
#include "core/reduce.h"
#include "mac/resolver.h"
#include "sim/engine.h"

namespace {

using namespace crmc;

void BM_EngineKnockout(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::int64_t node_rounds = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.channels = 1;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = sim::Engine::Run(config, core::MakeKnockoutCd());
    benchmark::DoNotOptimize(r.rounds_executed);
    node_rounds += r.total_transmissions + r.rounds_executed * num_active;
  }
  state.SetItemsProcessed(node_rounds);
  state.SetLabel("items = node-rounds (approx)");
}
BENCHMARK(BM_EngineKnockout)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EngineGeneral(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.population = 1 << 20;
    config.channels = 256;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = sim::Engine::Run(config, core::MakeGeneral());
    benchmark::DoNotOptimize(r.rounds_executed);
  }
}
BENCHMARK(BM_EngineGeneral)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ResolverRound(benchmark::State& state) {
  const auto participants = static_cast<std::int32_t>(state.range(0));
  mac::Resolver resolver(1024);
  std::vector<mac::Action> actions(
      static_cast<std::size_t>(participants));
  for (std::int32_t i = 0; i < participants; ++i) {
    actions[static_cast<std::size_t>(i)] =
        (i % 3 == 0) ? mac::Action::Transmit(1 + i % 1024)
                     : mac::Action::Listen(1 + i % 1024);
  }
  std::vector<mac::Feedback> feedback;
  for (auto _ : state) {
    const mac::RoundSummary s = resolver.Resolve(actions, feedback);
    benchmark::DoNotOptimize(s.total_transmissions);
  }
  state.SetItemsProcessed(state.iterations() * participants);
}
BENCHMARK(BM_ResolverRound)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
