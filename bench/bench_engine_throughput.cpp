// E14: simulator cost model.
//
// Two modes:
//
//   (default)        google-benchmark microbenchmarks: node-rounds per
//                    second for representative protocols plus the raw MAC
//                    resolver. This is the denominator behind every other
//                    experiment's runtime.
//
//   --json <path>    engine-vs-engine throughput grid: runs the coroutine
//                    oracle (sim::Engine) and the columnar fast path
//                    (sim::BatchEngine) over identical seeds across an
//                    n x C grid, times the simd kernels per backend, and
//                    writes the machine-readable artifact (schema
//                    crmc.bench_engine.v3) consumed by
//                    tools/check_bench_json.py. `--quick` shrinks trial
//                    counts for CI; `--trials-scale <f>` scales them;
//                    `--rng xoshiro|philox` picks the draw generator for
//                    both engines (default xoshiro, matching the v1
//                    baseline generator so speedups isolate engine work;
//                    philox is the counter-based reproducibility mode);
//                    `--lanes W` sets the trial-parallel lane width.
//
// v3 adds a `trial` block to every grid point whose protocol ships a
// trial-parallel twin (sim::TrialBatchEngine): the per-trial batch path and
// the trial-parallel executor timed over the SAME seeds, both under philox
// (the executor's required generator), so the executor comparison is at
// equal RNG and isolates the lanes-across-trials win. The top-level
// engines.{coroutine,batch} block keeps the --rng generator (default
// xoshiro) so v1/v2 baselines stay directly comparable.
//
// The grid mode also cross-checks that both engines solved every trial in
// the same round — the throughput comparison is only meaningful if the two
// engines are running the *same* Monte-Carlo experiment.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/general.h"
#include "core/reduce.h"
#include "harness/flags.h"
#include "harness/json_writer.h"
#include "harness/registry.h"
#include "harness/table.h"
#include "mac/resolver.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/step_program.h"
#include "sim/trial_engine.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "support/assert.h"
#include "support/rng.h"

namespace {

using namespace crmc;

// ---------------------------------------------------------------------------
// JSON grid mode.
// ---------------------------------------------------------------------------

struct GridPoint {
  const char* protocol;
  std::int64_t population;
  std::int32_t num_active;
  std::int32_t channels;
  std::int32_t trials;  // full-mode trial count; scaled by --quick
};

// The grid spans small/medium/large populations and channel counts for the
// protocols with columnar twins. The (general, 65536, 1024, 64) point is the
// acceptance benchmark quoted in docs/MODEL.md.
const GridPoint kGrid[] = {
    {"two_active", 1 << 16, 2, 64, 3000},
    {"two_active", 1 << 20, 2, 1024, 2000},
    {"knockout_cd", 1 << 12, 1024, 1, 60},
    {"general", 1 << 12, 256, 32, 300},
    {"general", 1 << 16, 1024, 64, 120},
    {"general", 1 << 20, 4096, 256, 24},
};

struct EngineStats {
  double seconds = 0.0;
  std::int64_t rounds = 0;       // sum of rounds_executed
  std::int64_t node_rounds = 0;  // sum of rounds_executed * num_active
  // Checksum over per-trial outcomes; must agree between engines.
  std::int64_t outcome_checksum = 0;
};

double Rate(std::int64_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

constexpr std::uint64_t kSeedBase = 0xbe9c40;

// Each point is timed kTimingReps times and the best (smallest) wall time
// kept: the regression gate in tools/check_bench_json.py only fires on
// slowdowns, so downward noise from scheduler interference is what must be
// suppressed. The reps are NOT back-to-back — RunJsonGrid interleaves them
// across whole passes over the grid, because scheduler/clock slow windows
// on shared hosts last about as long as one grid pass: consecutive reps of
// one point would all land in the same window, while reps a pass apart
// sample independent ones.
constexpr int kTimingReps = 5;

// One timed pass of `trials` trials over `run_trial`.
template <typename RunTrial>
EngineStats TimeOnePass(std::int32_t trials, std::int32_t num_active,
                        RunTrial&& run_trial) {
  EngineStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (std::int32_t t = 0; t < trials; ++t) {
    const sim::RunResult r =
        run_trial(kSeedBase + static_cast<std::uint64_t>(t));
    stats.rounds += r.rounds_executed;
    stats.node_rounds += r.rounds_executed * num_active;
    stats.outcome_checksum +=
        r.rounds_executed * 131 + (r.solved ? r.solved_round : -1);
  }
  const auto end = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(end - start).count();
  return stats;
}

// One timed pass of the trial-parallel executor over the whole seed set
// (one Run call — the engine chunks into lanes internally). The timed
// window covers exactly the work TimeOnePass times per trial; the
// accumulation below is identical so the outcome checksums are comparable
// engine-to-engine.
EngineStats TimeTrialPass(sim::TrialBatchEngine& engine,
                          const sim::EngineConfig& config,
                          sim::StepProgram& program,
                          const std::vector<std::uint64_t>& seeds,
                          std::vector<sim::RunResult>& results,
                          std::int32_t num_active) {
  EngineStats stats;
  const auto start = std::chrono::steady_clock::now();
  engine.Run(config, program, seeds, results);
  const auto end = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(end - start).count();
  for (const sim::RunResult& r : results) {
    stats.rounds += r.rounds_executed;
    stats.node_rounds += r.rounds_executed * num_active;
    stats.outcome_checksum +=
        r.rounds_executed * 131 + (r.solved ? r.solved_round : -1);
  }
  return stats;
}

// Folds one pass into the best-so-far slot (first pass wins outright).
void KeepBest(EngineStats& best, const EngineStats& pass, bool first) {
  if (first || pass.seconds < best.seconds) best = pass;
}

void WriteEngineStats(harness::JsonWriter& w, const EngineStats& s,
                      std::int32_t trials) {
  w.BeginObject();
  w.Key("seconds").Value(s.seconds);
  w.Key("trials_per_sec").Value(Rate(trials, s.seconds));
  w.Key("rounds_per_sec").Value(Rate(s.rounds, s.seconds));
  w.Key("node_rounds_per_sec").Value(Rate(s.node_rounds, s.seconds));
  w.EndObject();
}

std::string CpuModelName() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() &&
               (line[start] == ' ' || line[start] == '\t')) {
          ++start;
        }
        return line.substr(start);
      }
    }
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Per-kernel microbenchmarks: lanes/sec for each simd kernel under every
// backend available on this binary+CPU. The workload is fixed (4096 lanes,
// philox draws) so numbers are comparable across backends and across
// machines of the same ISA.
// ---------------------------------------------------------------------------

struct KernelTiming {
  const char* name;
  simd::Backend backend;
  std::int64_t lanes;
  double items_per_sec;
};

constexpr std::size_t kKernelLanes = 4096;
constexpr int kKernelReps = 3;

template <typename Body>
double TimeKernelRate(std::int64_t items_per_iter, int iters, Body&& body) {
  double best_rate = 0.0;
  for (int rep = 0; rep < kKernelReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body();
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - start).count();
    best_rate = std::max(best_rate, Rate(items_per_iter * iters, secs));
  }
  return best_rate;
}

void RunKernelBenches(std::vector<KernelTiming>& out) {
  const simd::Backend prior = simd::ActiveBackend();

  std::vector<support::RandomSource> rng;
  rng.reserve(kKernelLanes);
  for (std::size_t i = 0; i < kKernelLanes; ++i) {
    rng.push_back(support::RandomSource::ForStream(
        0x5eed, static_cast<std::uint64_t>(i) + 1,
        support::RngKind::kPhilox));
  }
  std::vector<std::int32_t> lanes_idx(kKernelLanes);
  for (std::size_t i = 0; i < kKernelLanes; ++i) {
    lanes_idx[i] = static_cast<std::int32_t>(i);
  }
  const support::BatchBernoulli coin(0.5);
  const support::BatchUniformInt dist(1, 64);
  std::vector<std::uint8_t> mask(kKernelLanes);
  std::vector<std::int32_t> fill(kKernelLanes);

  // Compaction input: ~half the lanes dropped in a scattered pattern. The
  // work buffer is re-filled from a template each iteration (same memcpy
  // for every backend, so relative numbers stay meaningful).
  std::vector<sim::NodeId> ids_template(kKernelLanes);
  std::vector<std::uint8_t> drop(kKernelLanes);
  std::vector<sim::NodeId> ids(kKernelLanes);
  for (std::size_t i = 0; i < kKernelLanes; ++i) {
    ids_template[i] = static_cast<sim::NodeId>(i);
    drop[i] = static_cast<std::uint8_t>(
        (static_cast<std::uint32_t>(i) * 2654435761u >> 16) & 1u);
  }

  constexpr std::int32_t kChannels = 64;
  std::vector<mac::ChannelId> channels(kKernelLanes);
  for (std::size_t i = 0; i < kKernelLanes; ++i) {
    channels[i] = static_cast<mac::ChannelId>(
        1 + (static_cast<std::uint32_t>(i) * 2654435761u >> 8) % kChannels);
  }
  std::vector<std::uint16_t> counts(
      static_cast<std::size_t>(kChannels) + 3, 0);
  std::vector<std::int32_t> touched;
  touched.reserve(kKernelLanes);
  std::vector<std::uint8_t> lone(kKernelLanes);

  const simd::Backend backends[] = {simd::Backend::kScalar,
                                    simd::Backend::kSse42,
                                    simd::Backend::kAvx2};
  for (const simd::Backend b : backends) {
    if (!simd::BackendAvailable(b)) continue;
    CRMC_CHECK(simd::SetBackend(b));
    const auto lanes = static_cast<std::int64_t>(kKernelLanes);

    out.push_back({"coin_mask", b, lanes,
                   TimeKernelRate(lanes, 1000, [&] {
                     const std::int64_t tx =
                         simd::CoinMask(coin, rng, lanes_idx, mask);
                     benchmark::DoNotOptimize(tx);
                   })});
    out.push_back({"uniform_fill", b, lanes,
                   TimeKernelRate(lanes, 1000, [&] {
                     simd::UniformFill(dist, rng, lanes_idx, fill);
                     benchmark::DoNotOptimize(fill.data());
                   })});
    out.push_back({"compact_keep", b, lanes,
                   TimeKernelRate(lanes, 2000, [&] {
                     std::copy(ids_template.begin(), ids_template.end(),
                               ids.begin());
                     const std::size_t w = simd::CompactKeep(ids, drop);
                     benchmark::DoNotOptimize(w);
                   })});
    out.push_back({"classify_channels", b, lanes,
                   TimeKernelRate(lanes, 1000, [&] {
                     const simd::Occupancy occ = simd::ClassifyChannels(
                         channels, mac::kPrimaryChannel, counts, touched,
                         lone);
                     benchmark::DoNotOptimize(occ.lone_channels);
                   })});
  }

  // SeedStreams shares the scalar expansion on every backend (see
  // kernels.cpp), so it is timed once per kind rather than per backend.
  // Xoshiro seeding is the engine-setup path the grid runs; philox shares
  // the SplitMix64 premix but skips the state fill.
  {
    const auto lanes = static_cast<std::int64_t>(kKernelLanes);
    std::vector<support::RandomSource> seeded(kKernelLanes);
    out.push_back({"seed_streams_xoshiro", simd::Backend::kScalar, lanes,
                   TimeKernelRate(lanes, 1000, [&] {
                     simd::SeedStreams(0x5eed, 1, support::RngKind::kXoshiro,
                                       seeded);
                     benchmark::DoNotOptimize(seeded.data());
                   })});
    out.push_back({"seed_streams_philox", simd::Backend::kScalar, lanes,
                   TimeKernelRate(lanes, 1000, [&] {
                     simd::SeedStreams(0x5eed, 1, support::RngKind::kPhilox,
                                       seeded);
                     benchmark::DoNotOptimize(seeded.data());
                   })});
  }
  CRMC_CHECK(simd::SetBackend(prior));
}

int RunJsonGrid(const harness::Flags& flags) {
  const std::string path = *flags.GetString("json");
  CRMC_REQUIRE_MSG(!path.empty(), "--json requires a file path");
  const bool quick = flags.GetBoolOr("quick", false);
  double scale = flags.GetDoubleOr("trials-scale", quick ? 0.25 : 1.0);
  CRMC_REQUIRE_MSG(scale > 0.0, "--trials-scale must be positive");
  const std::string rng_name = flags.GetStringOr("rng", "xoshiro");
  const std::optional<support::RngKind> rng_kind =
      support::ParseRngKind(rng_name);
  CRMC_REQUIRE_MSG(rng_kind.has_value(),
                   "--rng must be xoshiro or philox, got " << rng_name);
  const auto lane_width = static_cast<std::int32_t>(
      flags.GetIntOr("lanes", sim::TrialBatchEngine::kDefaultLaneWidth));
  CRMC_REQUIRE_MSG(lane_width >= 1,
                   "--lanes must be >= 1, got " << lane_width);
  const auto unconsumed = flags.UnconsumedFlags();
  if (!unconsumed.empty()) {
    std::cerr << "unknown flag: --" << unconsumed.front() << "\n";
    return 2;
  }

  harness::Table table({"protocol", "n", "active", "C", "trials",
                        "coroutine trials/s", "batch trials/s", "speedup"});

  std::ofstream out(path);
  CRMC_REQUIRE_MSG(out.good(), "cannot open --json path " << path);
  harness::JsonWriter w(out);
  w.BeginObject();
  w.Key("schema").Value("crmc.bench_engine.v3");
  w.Key("mode").Value(quick ? "quick" : "full");
  w.Key("metadata").BeginObject();
  w.Key("cpu").Value(CpuModelName());
  w.Key("compiler").Value(__VERSION__);
  w.Key("dispatch").Value(simd::ToString(simd::ActiveBackend()));
  w.Key("rng").Value(support::ToString(*rng_kind));
  w.Key("lane_width").Value(static_cast<std::int64_t>(lane_width));
  w.EndObject();
  w.Key("points").BeginArray();

  // Per-point state persists across the interleaved timing passes below;
  // the engine + program reuse matches how harness::RunTrials sweeps.
  struct PointRun {
    const GridPoint* p = nullptr;
    std::int32_t trials = 0;
    sim::ProtocolFactory factory;
    std::unique_ptr<sim::StepProgram> program;
    sim::EngineConfig config;
    sim::BatchEngine engine;
    EngineStats coro;
    EngineStats batch;
    // v3 trial-parallel comparison (points with a TrialProgram twin only):
    // batch vs trial executor over the same seeds, both under philox.
    bool has_trial = false;
    sim::EngineConfig philox_config;
    std::unique_ptr<sim::TrialBatchEngine> trial_engine;
    std::vector<std::uint64_t> seeds;
    std::vector<sim::RunResult> trial_results;
    EngineStats batch_philox;
    EngineStats trial;
  };
  std::vector<std::unique_ptr<PointRun>> points;
  for (const GridPoint& p : kGrid) {
    auto pr = std::make_unique<PointRun>();
    pr->p = &p;
    pr->trials = std::max(
        std::int32_t{10},
        static_cast<std::int32_t>(static_cast<double>(p.trials) * scale));
    const harness::AlgorithmInfo& info = harness::AlgorithmByName(p.protocol);
    CRMC_REQUIRE_MSG(info.make_step != nullptr,
                     p.protocol << " has no columnar twin");
    pr->factory = info.make();
    pr->program = info.make_step()();
    pr->config.population = p.population;
    pr->config.num_active = p.num_active;
    pr->config.channels = p.channels;
    pr->config.rng = *rng_kind;
    pr->has_trial = pr->program->MakeTrialProgram() != nullptr;
    if (pr->has_trial) {
      pr->philox_config = pr->config;
      pr->philox_config.rng = support::RngKind::kPhilox;
      pr->trial_engine = std::make_unique<sim::TrialBatchEngine>(lane_width);
      pr->seeds.resize(static_cast<std::size_t>(pr->trials));
      for (std::int32_t t = 0; t < pr->trials; ++t) {
        pr->seeds[static_cast<std::size_t>(t)] =
            kSeedBase + static_cast<std::uint64_t>(t);
      }
      pr->trial_results.resize(pr->seeds.size());
    }
    points.push_back(std::move(pr));
  }

  // kTimingReps passes over the whole grid; each pass times every point
  // once on each engine and the per-point best is kept (see the comment at
  // kTimingReps for why the reps are spread across passes). Pass 0 is
  // preceded by one untimed warm-up batch per point and engine: the first
  // pass otherwise runs on cold caches, an untrained branch predictor, and
  // (on power-managed hosts) a lower clock, which used to bias it low by
  // up to 2x.
  for (int rep = 0; rep < kTimingReps; ++rep) {
    for (const std::unique_ptr<PointRun>& pr : points) {
      auto run_coro = [&](std::uint64_t seed) {
        pr->config.seed = seed;
        return sim::Engine::Run(pr->config, pr->factory);
      };
      auto run_batch = [&](std::uint64_t seed) {
        pr->config.seed = seed;
        return pr->engine.Run(pr->config, *pr->program);
      };
      if (rep == 0) {
        for (std::int32_t t = 0; t < pr->trials; ++t) {
          (void)run_coro(kSeedBase + static_cast<std::uint64_t>(t));
        }
      }
      KeepBest(pr->coro,
               TimeOnePass(pr->trials, pr->p->num_active, run_coro), rep == 0);
      if (rep == 0) {
        for (std::int32_t t = 0; t < pr->trials; ++t) {
          (void)run_batch(kSeedBase + static_cast<std::uint64_t>(t));
        }
      }
      KeepBest(pr->batch,
               TimeOnePass(pr->trials, pr->p->num_active, run_batch),
               rep == 0);
      if (!pr->has_trial) continue;
      // v3 comparison passes: per-trial batch and trial-parallel executor
      // over the same seeds, both under philox (equal-RNG comparison). The
      // two engines ALTERNATE A/B within the rep rather than each being
      // timed once: the ratio between them is what the artifact gate
      // checks, and a fixed ordering (trial always last, right after
      // seconds of hot coroutine work) let scheduler/clock windows bias
      // the ratio systematically. Alternating pairs sample the same
      // windows for both sides; KeepBest still takes the per-engine best.
      auto run_batch_philox = [&](std::uint64_t seed) {
        pr->philox_config.seed = seed;
        return pr->engine.Run(pr->philox_config, *pr->program);
      };
      if (rep == 0) {
        for (std::int32_t t = 0; t < pr->trials; ++t) {
          (void)run_batch_philox(kSeedBase + static_cast<std::uint64_t>(t));
        }
        pr->trial_engine->Run(pr->philox_config, *pr->program, pr->seeds,
                              pr->trial_results);
      }
      constexpr int kAbPairs = 3;
      for (int sub = 0; sub < kAbPairs; ++sub) {
        KeepBest(pr->batch_philox,
                 TimeOnePass(pr->trials, pr->p->num_active, run_batch_philox),
                 rep == 0 && sub == 0);
        KeepBest(pr->trial,
                 TimeTrialPass(*pr->trial_engine, pr->philox_config,
                               *pr->program, pr->seeds, pr->trial_results,
                               pr->p->num_active),
                 rep == 0 && sub == 0);
      }
    }
  }

  harness::Table trial_table({"protocol", "n", "active", "C", "lanes",
                              "batch(philox) trials/s", "trial trials/s",
                              "speedup"});
  for (const std::unique_ptr<PointRun>& point : points) {
    const GridPoint& p = *point->p;
    const std::int32_t trials = point->trials;
    const EngineStats& coro = point->coro;
    const EngineStats& batch = point->batch;
    CRMC_CHECK_MSG(coro.outcome_checksum == batch.outcome_checksum,
                   "engine divergence at " << p.protocol << " n="
                                           << p.population);

    const double speedup =
        Rate(trials, batch.seconds) / std::max(Rate(trials, coro.seconds), 1e-12);
    table.Row().Cells(p.protocol, p.population,
                      static_cast<std::int64_t>(p.num_active),
                      static_cast<std::int64_t>(p.channels),
                      static_cast<std::int64_t>(trials),
                      harness::FormatDouble(Rate(trials, coro.seconds), 1),
                      harness::FormatDouble(Rate(trials, batch.seconds), 1),
                      harness::FormatDouble(speedup, 2));

    w.BeginObject();
    w.Key("protocol").Value(p.protocol);
    w.Key("population").Value(p.population);
    w.Key("num_active").Value(static_cast<std::int64_t>(p.num_active));
    w.Key("channels").Value(static_cast<std::int64_t>(p.channels));
    w.Key("trials").Value(static_cast<std::int64_t>(trials));
    w.Key("engines").BeginObject();
    w.Key("coroutine");
    WriteEngineStats(w, coro, trials);
    w.Key("batch");
    WriteEngineStats(w, batch, trials);
    w.EndObject();
    w.Key("speedup_trials_per_sec").Value(speedup);
    if (point->has_trial) {
      // The executor must be running the same Monte-Carlo experiment as
      // the per-trial batch path — bit-exactness is what makes the
      // speedup a like-for-like number.
      CRMC_CHECK_MSG(
          point->trial.outcome_checksum == point->batch_philox.outcome_checksum,
          "trial executor divergence at " << p.protocol << " n="
                                          << p.population);
      const double trial_speedup =
          Rate(trials, point->trial.seconds) /
          std::max(Rate(trials, point->batch_philox.seconds), 1e-12);
      trial_table.Row().Cells(
          p.protocol, p.population, static_cast<std::int64_t>(p.num_active),
          static_cast<std::int64_t>(p.channels),
          static_cast<std::int64_t>(lane_width),
          harness::FormatDouble(Rate(trials, point->batch_philox.seconds), 1),
          harness::FormatDouble(Rate(trials, point->trial.seconds), 1),
          harness::FormatDouble(trial_speedup, 2));
      w.Key("trial").BeginObject();
      w.Key("lane_width").Value(static_cast<std::int64_t>(lane_width));
      w.Key("rng").Value("philox");
      w.Key("engines").BeginObject();
      w.Key("batch");
      WriteEngineStats(w, point->batch_philox, trials);
      w.Key("trial_batch");
      WriteEngineStats(w, point->trial, trials);
      w.EndObject();
      w.Key("speedup_trials_per_sec").Value(trial_speedup);
      w.EndObject();
    }
    w.EndObject();
  }

  w.EndArray();

  std::vector<KernelTiming> kernels;
  RunKernelBenches(kernels);
  harness::Table ktable({"kernel", "backend", "lanes", "Mitems/s"});
  w.Key("kernels").BeginArray();
  for (const KernelTiming& k : kernels) {
    ktable.Row().Cells(k.name, simd::ToString(k.backend), k.lanes,
                       harness::FormatDouble(k.items_per_sec / 1e6, 1));
    w.BeginObject();
    w.Key("name").Value(k.name);
    w.Key("backend").Value(simd::ToString(k.backend));
    w.Key("lanes").Value(k.lanes);
    w.Key("items_per_sec").Value(k.items_per_sec);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Finish();
  CRMC_REQUIRE_MSG(out.good(), "write failed for " << path);
  out.close();

  table.Print(std::cout);
  trial_table.Print(std::cout);
  ktable.Print(std::cout);
  std::cout << "wrote " << path << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// google-benchmark mode (default).
// ---------------------------------------------------------------------------

void BM_EngineKnockout(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::int64_t node_rounds = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.channels = 1;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = sim::Engine::Run(config, core::MakeKnockoutCd());
    benchmark::DoNotOptimize(r.rounds_executed);
    node_rounds += r.total_transmissions + r.rounds_executed * num_active;
  }
  state.SetItemsProcessed(node_rounds);
  state.SetLabel("items = node-rounds (approx)");
}
BENCHMARK(BM_EngineKnockout)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EngineGeneral(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.population = 1 << 20;
    config.channels = 256;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = sim::Engine::Run(config, core::MakeGeneral());
    benchmark::DoNotOptimize(r.rounds_executed);
  }
}
BENCHMARK(BM_EngineGeneral)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BatchEngineGeneral(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::uint64_t seed = 1;
  sim::BatchEngine engine;
  const auto program = sim::MakeGeneralProgram();
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.population = 1 << 20;
    config.channels = 256;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = engine.Run(config, *program);
    benchmark::DoNotOptimize(r.rounds_executed);
  }
}
BENCHMARK(BM_BatchEngineGeneral)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ResolverRound(benchmark::State& state) {
  const auto participants = static_cast<std::int32_t>(state.range(0));
  mac::Resolver resolver(1024);
  std::vector<mac::Action> actions(
      static_cast<std::size_t>(participants));
  for (std::int32_t i = 0; i < participants; ++i) {
    actions[static_cast<std::size_t>(i)] =
        (i % 3 == 0) ? mac::Action::Transmit(1 + i % 1024)
                     : mac::Action::Listen(1 + i % 1024);
  }
  std::vector<mac::Feedback> feedback;
  for (auto _ : state) {
    const mac::RoundSummary s = resolver.Resolve(actions, feedback);
    benchmark::DoNotOptimize(s.total_transmissions);
  }
  state.SetItemsProcessed(state.iterations() * participants);
}
BENCHMARK(BM_ResolverRound)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) json_mode = true;
  }
  if (json_mode) {
    try {
      const harness::Flags flags = harness::Flags::Parse(argc, argv);
      return RunJsonGrid(flags);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
