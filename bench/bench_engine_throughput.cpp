// E14: simulator cost model.
//
// Two modes:
//
//   (default)        google-benchmark microbenchmarks: node-rounds per
//                    second for representative protocols plus the raw MAC
//                    resolver. This is the denominator behind every other
//                    experiment's runtime.
//
//   --json <path>    engine-vs-engine throughput grid: runs the coroutine
//                    oracle (sim::Engine) and the columnar fast path
//                    (sim::BatchEngine) over identical seeds across an
//                    n x C grid and writes the machine-readable artifact
//                    (schema crmc.bench_engine.v1) consumed by
//                    tools/check_bench_json.py. `--quick` shrinks trial
//                    counts for CI; `--trials-scale <f>` scales them.
//
// The grid mode also cross-checks that both engines solved every trial in
// the same round — the throughput comparison is only meaningful if the two
// engines are running the *same* Monte-Carlo experiment.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/general.h"
#include "core/reduce.h"
#include "harness/flags.h"
#include "harness/json_writer.h"
#include "harness/registry.h"
#include "harness/table.h"
#include "mac/resolver.h"
#include "sim/batch_engine.h"
#include "sim/engine.h"
#include "sim/step_program.h"
#include "support/assert.h"

namespace {

using namespace crmc;

// ---------------------------------------------------------------------------
// JSON grid mode.
// ---------------------------------------------------------------------------

struct GridPoint {
  const char* protocol;
  std::int64_t population;
  std::int32_t num_active;
  std::int32_t channels;
  std::int32_t trials;  // full-mode trial count; scaled by --quick
};

// The grid spans small/medium/large populations and channel counts for the
// protocols with columnar twins. The (general, 65536, 1024, 64) point is the
// acceptance benchmark quoted in docs/MODEL.md.
const GridPoint kGrid[] = {
    {"two_active", 1 << 16, 2, 64, 3000},
    {"two_active", 1 << 20, 2, 1024, 2000},
    {"knockout_cd", 1 << 12, 1024, 1, 60},
    {"general", 1 << 12, 256, 32, 300},
    {"general", 1 << 16, 1024, 64, 120},
    {"general", 1 << 20, 4096, 256, 24},
};

struct EngineStats {
  double seconds = 0.0;
  std::int64_t rounds = 0;       // sum of rounds_executed
  std::int64_t node_rounds = 0;  // sum of rounds_executed * num_active
  // Checksum over per-trial outcomes; must agree between engines.
  std::int64_t outcome_checksum = 0;
};

double Rate(std::int64_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

constexpr std::uint64_t kSeedBase = 0xbe9c40;

// Each timing loop is repeated and the best (smallest) wall time kept:
// the regression gate in tools/check_bench_json.py only fires on slowdowns,
// so downward noise from scheduler interference is what must be suppressed.
constexpr int kTimingReps = 3;

template <typename RunTrial>
EngineStats TimeTrials(std::int32_t trials, std::int32_t num_active,
                       RunTrial&& run_trial) {
  EngineStats best;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    EngineStats stats;
    const auto start = std::chrono::steady_clock::now();
    for (std::int32_t t = 0; t < trials; ++t) {
      const sim::RunResult r =
          run_trial(kSeedBase + static_cast<std::uint64_t>(t));
      stats.rounds += r.rounds_executed;
      stats.node_rounds += r.rounds_executed * num_active;
      stats.outcome_checksum +=
          r.rounds_executed * 131 + (r.solved ? r.solved_round : -1);
    }
    const auto end = std::chrono::steady_clock::now();
    stats.seconds = std::chrono::duration<double>(end - start).count();
    if (rep == 0 || stats.seconds < best.seconds) best = stats;
  }
  return best;
}

void WriteEngineStats(harness::JsonWriter& w, const EngineStats& s,
                      std::int32_t trials) {
  w.BeginObject();
  w.Key("seconds").Value(s.seconds);
  w.Key("trials_per_sec").Value(Rate(trials, s.seconds));
  w.Key("rounds_per_sec").Value(Rate(s.rounds, s.seconds));
  w.Key("node_rounds_per_sec").Value(Rate(s.node_rounds, s.seconds));
  w.EndObject();
}

int RunJsonGrid(const harness::Flags& flags) {
  const std::string path = *flags.GetString("json");
  CRMC_REQUIRE_MSG(!path.empty(), "--json requires a file path");
  const bool quick = flags.GetBoolOr("quick", false);
  double scale = flags.GetDoubleOr("trials-scale", quick ? 0.25 : 1.0);
  CRMC_REQUIRE_MSG(scale > 0.0, "--trials-scale must be positive");
  const auto unconsumed = flags.UnconsumedFlags();
  if (!unconsumed.empty()) {
    std::cerr << "unknown flag: --" << unconsumed.front() << "\n";
    return 2;
  }

  harness::Table table({"protocol", "n", "active", "C", "trials",
                        "coroutine trials/s", "batch trials/s", "speedup"});

  std::ofstream out(path);
  CRMC_REQUIRE_MSG(out.good(), "cannot open --json path " << path);
  harness::JsonWriter w(out);
  w.BeginObject();
  w.Key("schema").Value("crmc.bench_engine.v1");
  w.Key("mode").Value(quick ? "quick" : "full");
  w.Key("points").BeginArray();

  for (const GridPoint& p : kGrid) {
    const std::int32_t trials = std::max(
        std::int32_t{10},
        static_cast<std::int32_t>(static_cast<double>(p.trials) * scale));
    const harness::AlgorithmInfo& info = harness::AlgorithmByName(p.protocol);
    CRMC_REQUIRE_MSG(info.make_step != nullptr,
                     p.protocol << " has no columnar twin");
    const sim::ProtocolFactory factory = info.make();
    const std::unique_ptr<sim::StepProgram> program = info.make_step()();

    sim::EngineConfig config;
    config.population = p.population;
    config.num_active = p.num_active;
    config.channels = p.channels;

    // Warm-up: one trial per engine so first-touch page faults and scratch
    // growth are excluded from the timed section.
    sim::BatchEngine batch_engine;
    {
      sim::EngineConfig warm = config;
      warm.seed = kSeedBase;
      (void)sim::Engine::Run(warm, factory);
      (void)batch_engine.Run(warm, *program);
    }

    const EngineStats coro =
        TimeTrials(trials, p.num_active, [&](std::uint64_t seed) {
          config.seed = seed;
          return sim::Engine::Run(config, factory);
        });
    const EngineStats batch =
        TimeTrials(trials, p.num_active, [&](std::uint64_t seed) {
          config.seed = seed;
          return batch_engine.Run(config, *program);
        });
    CRMC_CHECK_MSG(coro.outcome_checksum == batch.outcome_checksum,
                   "engine divergence at " << p.protocol << " n="
                                           << p.population);

    const double speedup =
        Rate(trials, batch.seconds) / std::max(Rate(trials, coro.seconds), 1e-12);
    table.Row().Cells(p.protocol, p.population,
                      static_cast<std::int64_t>(p.num_active),
                      static_cast<std::int64_t>(p.channels),
                      static_cast<std::int64_t>(trials),
                      harness::FormatDouble(Rate(trials, coro.seconds), 1),
                      harness::FormatDouble(Rate(trials, batch.seconds), 1),
                      harness::FormatDouble(speedup, 2));

    w.BeginObject();
    w.Key("protocol").Value(p.protocol);
    w.Key("population").Value(p.population);
    w.Key("num_active").Value(static_cast<std::int64_t>(p.num_active));
    w.Key("channels").Value(static_cast<std::int64_t>(p.channels));
    w.Key("trials").Value(static_cast<std::int64_t>(trials));
    w.Key("engines").BeginObject();
    w.Key("coroutine");
    WriteEngineStats(w, coro, trials);
    w.Key("batch");
    WriteEngineStats(w, batch, trials);
    w.EndObject();
    w.Key("speedup_trials_per_sec").Value(speedup);
    w.EndObject();
  }

  w.EndArray();
  w.EndObject();
  w.Finish();
  CRMC_REQUIRE_MSG(out.good(), "write failed for " << path);
  out.close();

  table.Print(std::cout);
  std::cout << "wrote " << path << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// google-benchmark mode (default).
// ---------------------------------------------------------------------------

void BM_EngineKnockout(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::int64_t node_rounds = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.channels = 1;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = sim::Engine::Run(config, core::MakeKnockoutCd());
    benchmark::DoNotOptimize(r.rounds_executed);
    node_rounds += r.total_transmissions + r.rounds_executed * num_active;
  }
  state.SetItemsProcessed(node_rounds);
  state.SetLabel("items = node-rounds (approx)");
}
BENCHMARK(BM_EngineKnockout)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EngineGeneral(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.population = 1 << 20;
    config.channels = 256;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = sim::Engine::Run(config, core::MakeGeneral());
    benchmark::DoNotOptimize(r.rounds_executed);
  }
}
BENCHMARK(BM_EngineGeneral)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BatchEngineGeneral(benchmark::State& state) {
  const auto num_active = static_cast<std::int32_t>(state.range(0));
  std::uint64_t seed = 1;
  sim::BatchEngine engine;
  const auto program = sim::MakeGeneralProgram();
  for (auto _ : state) {
    sim::EngineConfig config;
    config.num_active = num_active;
    config.population = 1 << 20;
    config.channels = 256;
    config.seed = seed++;
    config.stop_when_solved = false;
    const sim::RunResult r = engine.Run(config, *program);
    benchmark::DoNotOptimize(r.rounds_executed);
  }
}
BENCHMARK(BM_BatchEngineGeneral)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ResolverRound(benchmark::State& state) {
  const auto participants = static_cast<std::int32_t>(state.range(0));
  mac::Resolver resolver(1024);
  std::vector<mac::Action> actions(
      static_cast<std::size_t>(participants));
  for (std::int32_t i = 0; i < participants; ++i) {
    actions[static_cast<std::size_t>(i)] =
        (i % 3 == 0) ? mac::Action::Transmit(1 + i % 1024)
                     : mac::Action::Listen(1 + i % 1024);
  }
  std::vector<mac::Feedback> feedback;
  for (auto _ : state) {
    const mac::RoundSummary s = resolver.Resolve(actions, feedback);
    benchmark::DoNotOptimize(s.total_transmissions);
  }
  state.SetItemsProcessed(state.iterations() * participants);
}
BENCHMARK(BM_ResolverRound)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) json_mode = true;
  }
  if (json_mode) {
    try {
      const harness::Flags flags = harness::Flags::Parse(argc, argv);
      return RunJsonGrid(flags);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
