// E5 (Table 2): per-step round budgets of the general algorithm.
//
// Theorem 5: Reduce runs exactly 2*ceil(lg lg n) rounds. Theorem 6:
// IDReduction finishes in O(log n / log C). Theorem 17: LeafElection in
// O(log h * log log x). We run to completion, read the phase marks, and
// also report how often the problem was already solved inside each step
// (Reduce usually wins outright — the later steps carry the w.h.p.
// guarantee).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/general.h"
#include "harness/runner.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 300;
  std::cout << "# E5 / Table 2 — step budgets (" << kTrials
            << " completion runs per row)\n\n";

  harness::Table table({"n", "|A|", "C", "reduce rounds", "idr mean",
                        "idr p95", "elect mean", "solved in: reduce %",
                        "idr %", "elect %"});
  for (const std::int64_t n : {std::int64_t{1} << 12, std::int64_t{1} << 16,
                               std::int64_t{1} << 20}) {
    for (const std::int32_t c : {32, 256, 2048}) {
      harness::TrialSpec spec;
      spec.population = n;
      spec.num_active = static_cast<std::int32_t>(
          std::min<std::int64_t>(n, 4096));
      spec.channels = c;
      spec.stop_when_solved = false;
      const harness::TrialSetResult result =
          harness::RunTrials(spec, core::MakeGeneral(), kTrials, true);

      double reduce_rounds = 0;
      double idr_sum = 0, elect_sum = 0;
      std::vector<std::int64_t> idr_durations;
      int idr_runs = 0, elect_runs = 0;
      int solved_reduce = 0, solved_idr = 0, solved_elect = 0;
      for (const auto& run : result.runs) {
        const std::int64_t reduce = run.LastPhaseMark("reduce_done");
        const std::int64_t rename = run.LastPhaseMark("rename_done");
        const std::int64_t elect = run.LastPhaseMark("elect_done");
        // Phase marks record the round index *after* the step, i.e. the
        // number of rounds consumed. Runs that elect a leader inside
        // Reduce exit the schedule early; the full fixed schedule length
        // is the max across runs.
        reduce_rounds = std::max(reduce_rounds, static_cast<double>(reduce));
        if (rename > reduce) {
          idr_sum += static_cast<double>(rename - reduce);
          idr_durations.push_back(rename - reduce);
          ++idr_runs;
        }
        if (elect > rename && rename >= 0) {
          elect_sum += static_cast<double>(elect - rename);
          ++elect_runs;
        }
        if (run.solved) {
          if (rename < 0 || run.solved_round <= reduce) {
            ++solved_reduce;
          } else if (elect < 0 || run.solved_round <= rename) {
            ++solved_idr;
          } else {
            ++solved_elect;
          }
        }
      }
      table.Row().Cells(
          n, spec.num_active, c, reduce_rounds,
          idr_runs ? idr_sum / idr_runs : 0.0,
          idr_runs ? harness::Quantile(idr_durations, 0.95) : 0.0,
          elect_runs ? elect_sum / elect_runs : 0.0,
          100.0 * solved_reduce / kTrials, 100.0 * solved_idr / kTrials,
          100.0 * solved_elect / kTrials);
    }
  }
  table.Print(std::cout);
  std::cout << "\nreduce rounds = 2*ceil(lg lg n) exactly; idr shrinks "
               "with log C; elect is loglog-sized.\n";
  return 0;
}
