// E10 (Table 5): the balls-in-bins machinery behind IDReduction.
//
// Part A — Lemma 9 directly: throw b = m/beta balls into m bins; the
// probability that no ball lands alone must be below 2^(-b/2).
// Part B — Lemma 10 end to end: once |A| <= C/6, renaming succeeds within
// O(log n / log C) rounds w.h.p.; we measure IDReduction's completion
// rounds as a function of the starting |A| / C ratio.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "core/id_reduction.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "support/rng.h"

int main() {
  using namespace crmc;

  std::cout << "# E10 / Table 5 — renaming and balls-in-bins\n\n";
  std::cout << "## Part A: Lemma 9 (no lonely ball), 200k trials per row\n\n";
  {
    harness::Table table({"bins m", "beta", "balls b", "P(no lonely ball)",
                          "lemma bound 2^(-b/2)"});
    support::RandomSource rng(0xba115);
    // Small bin counts keep the failure probability measurable: the lemma
    // bound decays as 2^(-b/2), so by m ~ 100 both sides vanish.
    for (const std::int64_t m : {12, 24, 48, 96}) {
      for (const std::int64_t beta : {3, 6, 12}) {
        if (m / beta < 2) continue;
        const std::int64_t b = m / beta;
        constexpr int kTrials = 200000;
        int no_lonely = 0;
        std::vector<int> bins(static_cast<std::size_t>(m));
        for (int t = 0; t < kTrials; ++t) {
          std::fill(bins.begin(), bins.end(), 0);
          for (std::int64_t i = 0; i < b; ++i) {
            ++bins[static_cast<std::size_t>(rng.UniformInt(0, m - 1))];
          }
          bool lonely = false;
          for (const int count : bins) {
            if (count == 1) {
              lonely = true;
              break;
            }
          }
          if (!lonely) ++no_lonely;
        }
        table.Row().Cells(
            m, beta, b,
            harness::FormatDouble(
                static_cast<double>(no_lonely) / kTrials, 5),
            harness::FormatDouble(
                std::pow(2.0, -static_cast<double>(b) / 2.0), 5));
      }
    }
    table.Print(std::cout);
  }

  std::cout << "\n## Part B: IDReduction completion rounds vs |A|/C "
               "(400 trials, n = 2^16)\n\n";
  {
    harness::Table table({"C", "|A|", "|A| / (C/6)", "mean rounds",
                          "p95", "max"});
    for (const std::int32_t c : {64, 512}) {
      for (const double load : {0.25, 1.0, 4.0, 16.0}) {
        const auto a = static_cast<std::int32_t>(
            std::max(1.0, load * c / 6.0));
        harness::TrialSpec spec;
        spec.population = std::int64_t{1} << 16;
        spec.num_active = a;
        spec.channels = c;
        spec.stop_when_solved = false;
        const harness::TrialSetResult r = harness::RunTrials(
            spec, core::MakeIdReductionOnly(), 400, true);
        std::vector<std::int64_t> rounds;
        for (const auto& run : r.runs) rounds.push_back(run.rounds_executed);
        const harness::Summary s = harness::Summarize(rounds);
        table.Row().Cells(c, a, load, s.mean, s.p95, s.max);
      }
    }
    table.Print(std::cout);
  }
  std::cout << "\nbelow the C/6 threshold renaming lands almost instantly "
               "(Lemma 10); above it, the interleaved knockouts first pay "
               "the O(log n/log C) reduction of Lemma 7.\n";
  return 0;
}
