// E11 (Table 6): cost of the non-simultaneous wakeup transform (Section 3).
//
// The transform promises a factor-2 slowdown plus a constant. We run the
// general algorithm under the transform with increasingly staggered wakeup
// schedules and compare against the simultaneous-start baseline.
#include <iostream>
#include <vector>

#include "core/general.h"
#include "core/wakeup_transform.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "sim/engine.h"
#include "support/rng.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 150;
  constexpr std::int32_t kNodes = 256;
  constexpr std::int64_t kPopulation = std::int64_t{1} << 16;
  constexpr std::int32_t kChannels = 128;

  std::cout << "# E11 / Table 6 — wakeup transform overhead ("
            << kTrials << " trials, |A| = " << kNodes << ")\n\n";

  // Simultaneous baseline.
  harness::TrialSpec base;
  base.population = kPopulation;
  base.num_active = kNodes;
  base.channels = kChannels;
  const harness::TrialSetResult baseline =
      harness::RunTrials(base, core::MakeGeneral(), kTrials);

  // Section 3's promise: 2x the underlying protocol plus the wakeup
  // spread, the two listening rounds, and the leading beacon.
  harness::Table table({"max wakeup spread", "mean solved round", "p95",
                        "2x bound on p95"});
  table.Row().Cells(static_cast<std::int64_t>(0), baseline.summary.mean,
                    baseline.summary.p95, baseline.summary.p95);

  for (const std::int64_t spread : {1, 4, 16, 64}) {
    std::vector<std::int64_t> rounds;
    for (int trial = 0; trial < kTrials; ++trial) {
      support::RandomSource rng(
          static_cast<std::uint64_t>(spread) * 1000 + trial);
      std::vector<std::int64_t> delays(kNodes);
      for (auto& d : delays) d = rng.UniformInt(0, spread);
      sim::EngineConfig config;
      config.population = kPopulation;
      config.num_active = kNodes;
      config.channels = kChannels;
      config.seed = static_cast<std::uint64_t>(trial) + 1;
      const sim::RunResult r = sim::Engine::Run(
          config, core::MakeWakeupTransform(delays, core::MakeGeneral()));
      if (r.solved) rounds.push_back(r.solved_round + 1);
    }
    const harness::Summary s = harness::Summarize(rounds);
    table.Row().Cells(spread, s.mean, s.p95,
                      2.0 * baseline.summary.p95 +
                          static_cast<double>(spread) + 3.0);
  }
  table.Print(std::cout);
  std::cout << "\nthe measured p95 stays below 2x the simultaneous p95 "
               "plus spread + 3 (two listening rounds and the leading "
               "beacon); first-waker cohorts often solve much earlier "
               "because a lone starter's first beacon already wins.\n";
  return 0;
}
