// E1 (Figure 1) + E2 (Table 1): TwoActive round complexity.
//
// Figure 1: protocol completion rounds of TwoActive vs n for several C.
// The metric is the algorithm's own completion round (run to termination),
// whose distribution realizes the Theorem 1 bound; solved_round means are
// polluted by accidental early primary-channel wins and are reported for
// context only.
//
// Table 1: tail comparison against the classic single-channel CD descent:
// the paper's speedup is in the guaranteed (high-quantile) rounds.
#include <iostream>
#include <vector>

#include "baselines/baselines.h"
#include "core/two_active.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "harness/table.h"

int main() {
  using namespace crmc;

  constexpr int kTrials = 600;

  std::cout << "# E1 / Figure 1 — TwoActive rounds vs n and C\n"
            << "metric: protocol completion round (mean / p99 over "
            << kTrials << " trials); 'bound' = log n/log C + loglog n "
            << "(constant-free)\n\n";

  harness::Table fig1({"n", "C", "complete mean", "complete p99",
                       "solved mean", "bound", "mean/bound"});
  for (const std::int64_t n :
       {std::int64_t{1} << 8, std::int64_t{1} << 12, std::int64_t{1} << 16,
        std::int64_t{1} << 20, std::int64_t{1} << 24}) {
    for (const std::int32_t c : {4, 16, 64, 256, 1024}) {
      harness::TrialSpec spec;
      spec.population = n;
      spec.num_active = 2;
      spec.channels = c;
      spec.stop_when_solved = false;
      const harness::TrialSetResult result =
          harness::RunTrials(spec, core::MakeTwoActive(), kTrials, true);
      std::vector<std::int64_t> completions;
      std::vector<std::int64_t> solved;
      for (const auto& run : result.runs) {
        completions.push_back(run.rounds_executed);
        if (run.solved) solved.push_back(run.solved_round + 1);
      }
      const harness::Summary comp = harness::Summarize(completions);
      const harness::Summary sol = harness::Summarize(solved);
      const double bound = baselines::TwoActiveBoundRounds(
          static_cast<double>(n), static_cast<double>(c));
      fig1.Row().Cells(n, c, comp.mean, comp.p99, sol.mean, bound,
                       comp.mean / bound);
    }
  }
  fig1.Print(std::cout);

  std::cout << "\n# E2 / Table 1 — TwoActive vs single-channel CD descent "
               "(worst case over trials)\n\n";
  harness::Table tab1({"n", "C", "two_active max", "descent max",
                       "tail speedup"});
  constexpr int kTailTrials = 20000;
  for (const std::int64_t n : {std::int64_t{1} << 16, std::int64_t{1} << 20,
                               std::int64_t{1} << 24}) {
    for (const std::int32_t c : {64, 1024}) {
      harness::TrialSpec spec;
      spec.population = n;
      spec.num_active = 2;
      spec.channels = c;
      const harness::TrialSetResult ours =
          harness::RunTrials(spec, core::MakeTwoActive(), kTailTrials);
      harness::TrialSpec base = spec;
      base.channels = 1;
      const harness::TrialSetResult descent = harness::RunTrials(
          base, baselines::MakeBinaryDescentCd(), kTailTrials);
      tab1.Row().Cells(
          n, c, ours.summary.max, descent.summary.max,
          static_cast<double>(descent.summary.max) /
              static_cast<double>(ours.summary.max));
    }
  }
  tab1.Print(std::cout);
  return 0;
}
